// Command cwc-bench regenerates the paper's evaluation: every figure
// (Fig. 3–6) and Table I, as text tables or CSV. It also carries the
// repo's machine-readable performance reports and the CI bench-regression
// gate.
//
//	cwc-bench -exp all
//	cwc-bench -exp fig3 -format csv
//	cwc-bench -exp table1 -seed 7
//	cwc-bench -exp pr3 -pr3-out BENCH_PR3.json   # stat-farm throughput report
//	cwc-bench -exp pr4 -pr4-out BENCH_PR4.json   # local vs distributed throughput
//	cwc-bench -write-baseline BENCH_BASELINE.json
//	cwc-bench -compare BENCH_BASELINE.json       # exits 1 on >20% ns/op or any allocs/op regression
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"cwcflow/internal/bench"
	"cwcflow/internal/buildinfo"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cwc-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		exp           = flag.String("exp", "all", "experiment: fig3, fig4, fig5, fig6top, fig6bottom, table1, ablation, pr3, pr4, all")
		format        = flag.String("format", "text", "output format: text or csv")
		seed          = flag.Int64("seed", 1, "workload noise seed")
		quanta        = flag.Int("scale-quanta", 0, "override quanta per trajectory (0 = publication parameters)")
		pr3Out        = flag.String("pr3-out", "BENCH_PR3.json", "output path of the -exp pr3 report")
		pr4Out        = flag.String("pr4-out", "BENCH_PR4.json", "output path of the -exp pr4 report")
		writeBaseline = flag.String("write-baseline", "", "measure the pinned hot-path benchmarks and write the baseline to this path")
		compare       = flag.String("compare", "", "measure the pinned hot-path benchmarks and gate against this baseline (exit 1 on regression)")
		tolerance     = flag.Float64("bench-tolerance", 0.20, "allowed fractional ns/op regression in -compare")
		showVersion   = flag.Bool("version", false, "print the build version and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Println("cwc-bench", buildinfo.Version)
		return nil
	}
	if *writeBaseline != "" || *compare != "" {
		return runBaseline(*writeBaseline, *compare, *tolerance)
	}
	sc := bench.Scale{Quanta: *quanta}
	w := os.Stdout

	writeExp := func(e *bench.Experiment) error {
		defer fmt.Fprintln(w)
		if *format == "csv" {
			return e.WriteCSV(w)
		}
		return e.WriteText(w)
	}

	want := func(name string) bool { return *exp == "all" || *exp == name }
	ran := false

	if want("fig3") {
		ran = true
		for _, engines := range []int{1, 4} {
			e, err := bench.Fig3(engines, *seed, sc)
			if err != nil {
				return err
			}
			if err := writeExp(e); err != nil {
				return err
			}
		}
	}
	if want("fig4") {
		ran = true
		top, bottom, err := bench.Fig4(*seed, sc)
		if err != nil {
			return err
		}
		if err := writeExp(top); err != nil {
			return err
		}
		if err := writeExp(bottom); err != nil {
			return err
		}
	}
	if want("fig5") {
		ran = true
		e, err := bench.Fig5(*seed, sc)
		if err != nil {
			return err
		}
		if err := writeExp(e); err != nil {
			return err
		}
	}
	if want("fig6top") || want("fig6") {
		ran = true
		e, err := bench.Fig6Top(*seed, sc)
		if err != nil {
			return err
		}
		if err := writeExp(e); err != nil {
			return err
		}
	}
	if want("fig6bottom") || want("fig6") {
		ran = true
		e, err := bench.Fig6Bottom(*seed, sc)
		if err != nil {
			return err
		}
		if err := writeExp(e); err != nil {
			return err
		}
	}
	if want("table1") {
		ran = true
		res, err := bench.Table1(*seed, sc)
		if err != nil {
			return err
		}
		if err := writeTable1(w, res, *format); err != nil {
			return err
		}
	}
	if want("ablation") {
		ran = true
		sched, err := bench.AblationScheduling(*seed, sc)
		if err != nil {
			return err
		}
		if err := writeExp(sched); err != nil {
			return err
		}
		quantum, err := bench.AblationQuantum(*seed)
		if err != nil {
			return err
		}
		if err := writeExp(quantum); err != nil {
			return err
		}
		ssa, err := bench.AblationSSA()
		if err != nil {
			return err
		}
		if err := writeExp(ssa); err != nil {
			return err
		}
		tap, err := bench.AblationRawTap(*seed)
		if err != nil {
			return err
		}
		if err := writeExp(tap); err != nil {
			return err
		}
	}
	// The pr3 throughput report runs only when asked for by name: unlike
	// the figures it measures live wall-clock behaviour of this host, so
	// it is a CI artifact step, not part of the "all" figure regeneration.
	if *exp == "pr3" {
		ran = true
		rep, err := bench.PR3()
		if err != nil {
			return err
		}
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if err := os.WriteFile(*pr3Out, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "cwc-bench: wrote %s (analysis %.0f windows/sec, %.1f allocs/op; serve 1→4 engines %.2fx)\n",
			*pr3Out, rep.AnalyseWindow.WindowsPerSec, rep.AnalyseWindow.AllocsPerOp, rep.ServeMultiJob.Speedup)
	}
	// The pr4 throughput report likewise runs only by name: it spins up an
	// in-process two-worker cluster and measures this host's wall clock.
	if *exp == "pr4" {
		ran = true
		rep, err := bench.PR4()
		if err != nil {
			return err
		}
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if err := os.WriteFile(*pr4Out, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "cwc-bench: wrote %s (local %.0f w/s, 2-worker distributed %.0f w/s, %.2fx, %d remote tasks)\n",
			*pr4Out, rep.LocalWindowsPerSec, rep.Distributed2WindowsPerSec, rep.Speedup, rep.RemoteTasksDone)
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", *exp)
	}
	return nil
}

// runBaseline implements -write-baseline and -compare: the CI
// bench-regression gate over the pinned hot-path benchmarks.
func runBaseline(writePath, comparePath string, tolerance float64) error {
	current, err := bench.MeasureBaseline()
	if err != nil {
		return err
	}
	if writePath != "" {
		data, err := json.MarshalIndent(current, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if err := os.WriteFile(writePath, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "cwc-bench: wrote baseline %s (%d benchmarks, calibration %.0f ns)\n",
			writePath, len(current.Benchmarks), current.CalibrationNs)
	}
	if comparePath == "" {
		return nil
	}
	data, err := os.ReadFile(comparePath)
	if err != nil {
		return err
	}
	var baseline bench.BaselineReport
	if err := json.Unmarshal(data, &baseline); err != nil {
		return fmt.Errorf("decoding baseline %s: %w", comparePath, err)
	}
	violations := bench.CompareBaseline(&baseline, current, tolerance)
	for name, pt := range current.Benchmarks {
		base := baseline.Benchmarks[name]
		fmt.Fprintf(os.Stderr, "cwc-bench: %-16s %10.0f ns/op (baseline %10.0f)  %6.1f allocs/op (baseline %.1f)\n",
			name, pt.NsPerOp, base.NsPerOp, pt.AllocsPerOp, base.AllocsPerOp)
	}
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "cwc-bench: REGRESSION:", v)
		}
		return fmt.Errorf("bench-regression gate failed: %d violation(s)", len(violations))
	}
	fmt.Fprintln(os.Stderr, "cwc-bench: bench-regression gate passed")
	return nil
}

func writeTable1(w io.Writer, res bench.Table1Result, format string) error {
	if format == "csv" {
		if _, err := fmt.Fprintln(w, "nsims,cpu_q10,cpu_q1,gpu_q10,gpu_q1"); err != nil {
			return err
		}
		for _, r := range res.Rows {
			if _, err := fmt.Fprintf(w, "%d,%.1f,%.1f,%.1f,%.1f\n",
				r.NSims, r.CPUQ10, r.CPUQ1, r.GPUQ10, r.GPUQ1); err != nil {
				return err
			}
		}
		return nil
	}
	return res.WriteText(w)
}
