// Command cwc-serve runs the CWC simulation job service: an HTTP server
// that accepts simulation jobs, schedules their trajectories onto one
// shared simulation worker pool — and, when remote sim workers are
// configured, shards trajectory quanta across the cluster — streaming
// windowed statistics back incrementally while the jobs run.
//
//	cwc-serve -listen :8080 -sim-workers 8
//
//	# cluster mode: start cwc-dist workers first, then point serve at them
//	cwc-dist worker -listen 127.0.0.1:7001 -sim-workers 4
//	cwc-dist worker -listen 127.0.0.1:7002 -sim-workers 4
//	cwc-serve -listen :8080 -workers 127.0.0.1:7001,127.0.0.1:7002
//
//	# submit a job
//	curl -s localhost:8080/jobs -d '{"model":"neurospora","omega":100,
//	  "trajectories":64,"end":48,"period":0.5,"window":16}'
//
//	# follow its windows as NDJSON while it runs
//	curl -sN localhost:8080/jobs/job-000001/stream
//
//	# check progress / ETA, then fetch the buffered result
//	curl -s localhost:8080/jobs/job-000001
//	curl -s 'localhost:8080/jobs/job-000001/result?wait=true'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"cwcflow/internal/buildinfo"
	"cwcflow/internal/obs"
	"cwcflow/internal/serve"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cwc-serve:", err)
		os.Exit(1)
	}
}

// parseTenantWeights turns "alice=3,bob=1" into per-tenant configs.
func parseTenantWeights(s string) (map[string]serve.TenantConfig, error) {
	if s == "" {
		return nil, nil
	}
	tenants := make(map[string]serve.TenantConfig)
	for _, pair := range strings.Split(s, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		name, val, ok := strings.Cut(pair, "=")
		if !ok {
			return nil, fmt.Errorf("-tenant-weights entry %q is not name=weight", pair)
		}
		w, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("-tenant-weights %q: weight must be a positive number", pair)
		}
		cfg := tenants[strings.TrimSpace(name)]
		cfg.Weight = w
		tenants[strings.TrimSpace(name)] = cfg
	}
	return tenants, nil
}

func run() error {
	var (
		listen         = flag.String("listen", ":8080", "HTTP listen address")
		simWorkers     = flag.Int("sim-workers", runtime.GOMAXPROCS(0), "local shared simulation pool width")
		workers        = flag.String("workers", "", "comma-separated remote sim worker addresses (cwc-dist worker)")
		workerInflight = flag.Int("worker-inflight", 8, "max trajectories in flight per remote worker")
		workerTimeout  = flag.Duration("worker-timeout", 30*time.Second, "declare a silent remote worker dead after this long")
		workerTTL      = flag.Duration("worker-ttl", 15*time.Second, "heartbeat window for dynamically registered workers")
		statEngines    = flag.Int("stat-engines", runtime.GOMAXPROCS(0), "shared statistical engine farm width")
		queueDepth     = flag.Int("queue-depth", 16, "pool internal queue depth")
		sampleBuffer   = flag.Int("sample-buffer", 64, "per-job ingress high-water mark (batches)")
		resultBuffer   = flag.Int("result-buffer", 1024, "per-job retained windows")
		subBuffer      = flag.Int("subscriber-buffer", 256, "per-stream-client window mailbox")
		maxJobs        = flag.Int("max-jobs", 64, "maximum concurrently active jobs")
		maxCompleted   = flag.Int("max-completed", 256, "finished jobs retained before eviction")
		maxTraj        = flag.Int("max-trajectories", 4096, "maximum trajectories per job")
		maxCuts        = flag.Int("max-cuts", 1_000_000, "maximum samples per trajectory (end/period)")
		dataDir        = flag.String("data-dir", "", "durable job store directory (empty = in-memory only, nothing survives a restart)")
		ckptSamples    = flag.Int("checkpoint-samples", 16, "journal a trajectory checkpoint every N samples (with -data-dir)")
		replicaID      = flag.String("replica-id", "", "this server's identity in a replicated tier sharing -data-dir; enables job leases and failover (empty = standalone)")
		leaseTTL       = flag.Duration("lease-ttl", 10*time.Second, "job-ownership lease duration (with -replica-id); a crashed replica's jobs fail over after at most this long")
		advertiseURL   = flag.String("advertise-url", "", "base URL other replicas redirect/proxy to for jobs this replica owns, e.g. http://host:8080 (with -replica-id)")
		failoverScan   = flag.Duration("failover-scan", 0, "lease-directory scan interval for adopting orphaned jobs (0 = lease-ttl/2; with -replica-id)")
		drainGrace     = flag.Duration("drain-grace", 150*time.Millisecond, "time a drain or handoff waits for in-flight quanta to checkpoint at a boundary before releasing leases")
		rebalanceScan  = flag.Duration("rebalance-scan", 0, "load-rebalancing scan interval (0 = 4×lease-ttl, negative disables; with -replica-id)")
		rebalanceGap   = flag.Int("rebalance-margin", 2, "minimum owned-job surplus a peer must have before this replica requests a handoff from it")
		scheduler      = flag.String("scheduler", "fifo", "quantum dispatch discipline: fifo (arrival order) or wfq (weighted fair share across tenants)")
		tenantConc     = flag.Int("default-tenant-concurrency", 0, "per-tenant running-job cap; submissions beyond it queue with a position (0 = unlimited)")
		tenantQueue    = flag.Int("default-tenant-queue", 16, "per-tenant admission queue depth; submissions beyond it get 429")
		tenantBudget   = flag.Int64("default-tenant-budget", 0, "per-tenant sample budget (trajectories×cuts over admitted jobs); submissions beyond it get 429 (0 = unlimited)")
		tenantWeights  = flag.String("tenant-weights", "", "per-tenant wfq weights, e.g. 'alice=3,bob=1' (others get weight 1)")
		cacheMax       = flag.Int("cache-max-entries", 1024, "content-addressed result cache index size (LRU; digests of completed specs)")
		noCache        = flag.Bool("no-cache", false, "disable the result cache and in-flight attach: every submission simulates")
		debugAddr      = flag.String("debug-addr", "", "separate listen address for GET /metrics and /debug/pprof (empty = disabled; /metrics also serves on the main listener)")
		showVersion    = flag.Bool("version", false, "print the build version and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Println("cwc-serve", buildinfo.Version)
		return nil
	}

	var workerAddrs []string
	if *workers != "" {
		for _, a := range strings.Split(*workers, ",") {
			a = strings.TrimSpace(a)
			if a == "" {
				continue
			}
			// -workers used to be the pool width; fail loudly on a bare
			// number instead of dialing a nonsense "address" forever.
			if !strings.Contains(a, ":") {
				return fmt.Errorf("-workers takes remote sim worker addresses (host:port, comma-separated), got %q; the local pool width is -sim-workers", a)
			}
			workerAddrs = append(workerAddrs, a)
		}
	}
	tenants, err := parseTenantWeights(*tenantWeights)
	if err != nil {
		return err
	}
	svc, err := serve.New(serve.Options{
		Workers:                  *simWorkers,
		StatEngines:              *statEngines,
		QueueDepth:               *queueDepth,
		SampleBuffer:             *sampleBuffer,
		ResultBuffer:             *resultBuffer,
		SubscriberBuffer:         *subBuffer,
		MaxJobs:                  *maxJobs,
		MaxCompleted:             *maxCompleted,
		MaxTrajectories:          *maxTraj,
		MaxCuts:                  *maxCuts,
		WorkerAddrs:              workerAddrs,
		WorkerInFlight:           *workerInflight,
		WorkerTimeout:            *workerTimeout,
		WorkerTTL:                *workerTTL,
		DataDir:                  *dataDir,
		CheckpointSamples:        *ckptSamples,
		ReplicaID:                *replicaID,
		LeaseTTL:                 *leaseTTL,
		AdvertiseURL:             *advertiseURL,
		FailoverScan:             *failoverScan,
		DrainGrace:               *drainGrace,
		RebalanceScan:            *rebalanceScan,
		RebalanceMargin:          *rebalanceGap,
		Scheduler:                *scheduler,
		DefaultTenantConcurrency: *tenantConc,
		DefaultTenantQueue:       *tenantQueue,
		DefaultTenantBudget:      *tenantBudget,
		Tenants:                  tenants,
		CacheMaxEntries:          *cacheMax,
		NoCache:                  *noCache,
		Version:                  buildinfo.Version,
		Logf:                     log.Printf,
	})
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Addr: *listen, Handler: svc.Handler()}
	if *debugAddr != "" {
		// Metrics and pprof on their own listener: the debug surface can
		// stay off the load balancer (and off the public interface) while
		// the job API is exposed.
		dbgSrv := &http.Server{Addr: *debugAddr, Handler: obs.NewDebugMux(svc.Metrics())}
		go func() {
			if err := dbgSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, "cwc-serve: debug listener:", err)
			}
		}()
		defer dbgSrv.Close()
		fmt.Fprintf(os.Stderr, "cwc-serve: metrics and pprof on %s\n", *debugAddr)
	}

	// SIGINT and SIGTERM both take the graceful path: fail the in-memory
	// jobs (without journaling shutdown as a job outcome), drain HTTP, and
	// fsync+close the journal so the next start resumes cleanly.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "cwc-serve %s: listening on %s with %d pool workers, %d stat engines, %d remote sim workers\n",
		buildinfo.Version, *listen, svc.Workers(), svc.StatEngines(), len(workerAddrs))
	if *dataDir != "" {
		fmt.Fprintf(os.Stderr, "cwc-serve: durable job store at %s (checkpoint every %d samples)\n", *dataDir, *ckptSamples)
	}
	if *replicaID != "" {
		fmt.Fprintf(os.Stderr, "cwc-serve: replica %q in tier at %s (lease ttl %s)\n", *replicaID, *dataDir, *leaseTTL)
	}

	select {
	case err := <-errc:
		svc.Close()
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "cwc-serve: shutting down")
	// Close the service first. A replica drains: it checkpoints every
	// owned job, releases each lease with a handoff pointer and nudges the
	// peers to adopt immediately, so a rolling restart moves streams in
	// one adoption instead of a lease-TTL wait. A standalone durable
	// server fails the running jobs without journaling the shutdown as a
	// job outcome, and resumes them on the next start. Either way every
	// open stream ends with a terminal event, so Shutdown drains the HTTP
	// connections promptly instead of timing out behind blocked streams,
	// and Close performs the final journal fsync.
	svc.Close()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	err = httpSrv.Shutdown(shutdownCtx)
	if errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "cwc-serve: shutdown timeout, in-flight connections were closed forcibly")
		return nil
	}
	return err
}
