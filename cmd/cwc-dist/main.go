// Command cwc-dist runs the distributed CWC simulator: a master process
// that spreads the simulation farm over sim-worker processes (the paper's
// farm of simulation pipelines) and runs the analysis pipeline locally.
//
// Start workers first, then the master:
//
//	cwc-dist worker -listen 127.0.0.1:7001 -sim-workers 4
//	cwc-dist worker -listen 127.0.0.1:7002 -sim-workers 4
//	cwc-dist master -workers 127.0.0.1:7001,127.0.0.1:7002 \
//	         -model neurospora -trajectories 128 -end 48 -period 0.5
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"cwcflow/internal/core"
	"cwcflow/internal/dff"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cwc-dist:", err)
		os.Exit(1)
	}
}

func run() error {
	if len(os.Args) < 2 {
		return fmt.Errorf("usage: cwc-dist worker|master [flags]")
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	switch os.Args[1] {
	case "worker":
		return runWorker(ctx, os.Args[2:])
	case "master":
		return runMaster(ctx, os.Args[2:])
	default:
		return fmt.Errorf("unknown subcommand %q (want worker or master)", os.Args[1])
	}
}

func runWorker(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("worker", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:7001", "address to listen on")
	simWorkers := fs.Int("sim-workers", 4, "local simulation farm width")
	if err := fs.Parse(args); err != nil {
		return err
	}
	l, err := dff.Listen(*listen)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "sim worker listening on %s (%d engines); ^C to stop\n", l.Addr(), *simWorkers)
	err = core.ServeSimWorker(ctx, l, *simWorkers, func(err error) {
		fmt.Fprintln(os.Stderr, "job error:", err)
	})
	if err == context.Canceled {
		return nil
	}
	return err
}

func runMaster(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("master", flag.ContinueOnError)
	var (
		workers     = fs.String("workers", "", "comma-separated sim worker addresses")
		model       = fs.String("model", "neurospora", "model name (see cwc-sim -help)")
		omega       = fs.Float64("omega", 100, "system size")
		traj        = fs.Int("trajectories", 128, "Monte Carlo ensemble size")
		end         = fs.Float64("end", 48, "simulated horizon")
		quantum     = fs.Float64("quantum", 0, "simulation quantum (0 = one sampling period)")
		period      = fs.Float64("period", 0.5, "sampling period τ")
		statEngines = fs.Int("stat-engines", 4, "statistics farm width on the master")
		winSize     = fs.Int("window", 16, "sliding window size (cuts)")
		seed        = fs.Int64("seed", 1, "base RNG seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workers == "" {
		return fmt.Errorf("master needs -workers")
	}
	addrs := strings.Split(*workers, ",")
	cfg := core.Config{
		Trajectories: *traj,
		End:          *end,
		Quantum:      *quantum,
		Period:       *period,
		StatEngines:  *statEngines,
		WindowSize:   *winSize,
		BaseSeed:     *seed,
	}
	start := time.Now()
	info, err := core.RunDistributed(ctx, cfg, core.ModelRef{Name: *model, Omega: *omega}, addrs,
		core.CSVDisplay(os.Stdout, nil))
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr,
		"done in %v over %d workers: %d trajectories, %d cuts, %d windows, %d samples, %d reactions\n",
		time.Since(start).Round(time.Millisecond), len(addrs),
		info.Trajectories, info.Cuts, info.Windows, info.Samples, info.Reactions)
	return nil
}
