// Command cwc-dist runs the distributed CWC simulator: a master process
// that spreads the simulation farm over sim-worker processes (the paper's
// farm of simulation pipelines) and runs the analysis pipeline locally.
//
// Start workers first, then the master:
//
//	cwc-dist worker -listen 127.0.0.1:7001 -sim-workers 4
//	cwc-dist worker -listen 127.0.0.1:7002 -sim-workers 4
//	cwc-dist master -workers 127.0.0.1:7001,127.0.0.1:7002 \
//	         -model neurospora -trajectories 128 -end 48 -period 0.5
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"time"

	"cwcflow/internal/buildinfo"
	"cwcflow/internal/core"
	"cwcflow/internal/dff"
	"cwcflow/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cwc-dist:", err)
		os.Exit(1)
	}
}

func run() error {
	if len(os.Args) < 2 {
		return fmt.Errorf("usage: cwc-dist worker|master [flags] (or -version)")
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	switch os.Args[1] {
	case "worker":
		return runWorker(ctx, os.Args[2:])
	case "master":
		return runMaster(ctx, os.Args[2:])
	case "version", "-version", "--version":
		fmt.Println("cwc-dist", buildinfo.Version)
		return nil
	default:
		return fmt.Errorf("unknown subcommand %q (want worker or master)", os.Args[1])
	}
}

func runWorker(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("worker", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:7001", "address to listen on")
	simWorkers := fs.Int("sim-workers", 4, "local simulation farm width")
	register := fs.String("register", "", "cwc-serve base URL to register with (heartbeats every ttl/3)")
	advertise := fs.String("advertise", "", "dialable address to advertise when registering (default the listen address)")
	inflight := fs.Int("inflight", 0, "in-flight trajectory cap to advertise (0 = server default)")
	maxJobs := fs.Int("max-jobs", 0, "maximum concurrent job connections served (0 = unlimited); excess connections are refused and rerouted by the master")
	debugAddr := fs.String("debug-addr", "", "HTTP listen address for GET /metrics and /debug/pprof (empty = disabled)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	l, err := dff.Listen(*listen)
	if err != nil {
		return err
	}
	addr := *advertise
	if addr == "" {
		addr = l.Addr().String()
	}
	if *register != "" {
		go heartbeat(ctx, *register, addr, *inflight)
	}
	reg := obs.NewRegistry()
	metrics := core.WorkerMetrics{
		Quantum: reg.Histogram("cwc_worker_quantum_seconds", "Service time of one simulation quantum on this worker."),
		Tasks:   reg.Counter("cwc_worker_tasks_total", "Trajectories completed by this worker."),
		Jobs:    reg.Gauge("cwc_worker_jobs", "Job streams currently served."),
	}
	if *debugAddr != "" {
		go serveDebug("worker", *debugAddr, reg)
	}
	fmt.Fprintf(os.Stderr, "sim worker listening on %s (%d engines); ^C to stop\n", l.Addr(), *simWorkers)
	err = core.ServeSimWorkerOpts(ctx, l, core.SimWorkerOptions{
		SimWorkers: *simWorkers,
		MaxJobs:    *maxJobs,
		Resolver:   core.FactoryFor,
		OnError:    func(err error) { fmt.Fprintln(os.Stderr, "job error:", err) },
		Origin:     addr,
		Metrics:    metrics,
	})
	if err == context.Canceled {
		return nil
	}
	return err
}

// serveDebug runs the metrics+pprof listener for one process role; a bind
// failure is reported, never fatal — observability must not take the
// worker down.
func serveDebug(role, addr string, reg *obs.Registry) {
	if err := http.ListenAndServe(addr, obs.NewDebugMux(reg)); err != nil {
		fmt.Fprintf(os.Stderr, "cwc-dist %s: debug listener: %v\n", role, err)
	}
}

// heartbeat registers the worker with a cwc-serve instance and keeps the
// registration fresh: POST /workers/register doubles as the heartbeat, and
// the server replies with the TTL that paces the next beat. A bounded
// client keeps a hung server from wedging the loop, and rejections are
// logged instead of silently dropping the worker out of the cluster.
func heartbeat(ctx context.Context, base, addr string, inflight int) {
	client := &http.Client{Timeout: 5 * time.Second}
	interval := 5 * time.Second
	body := fmt.Sprintf(`{"addr":%q,"cap":%d}`, addr, inflight)
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			base+"/workers/register", strings.NewReader(body))
		if err != nil {
			fmt.Fprintln(os.Stderr, "register:", err)
			return
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		switch {
		case err != nil:
			if ctx.Err() != nil {
				return
			}
			fmt.Fprintln(os.Stderr, "register:", err)
		case resp.StatusCode != http.StatusOK:
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
			resp.Body.Close()
			fmt.Fprintf(os.Stderr, "register: server rejected %s: %s %s\n", addr, resp.Status, strings.TrimSpace(string(msg)))
		default:
			var ack struct {
				TTLSeconds float64 `json:"ttl_seconds"`
			}
			if json.NewDecoder(resp.Body).Decode(&ack) == nil && ack.TTLSeconds > 0 {
				interval = time.Duration(ack.TTLSeconds / 3 * float64(time.Second))
			}
			resp.Body.Close()
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(interval):
		}
	}
}

func runMaster(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("master", flag.ContinueOnError)
	var (
		workers     = fs.String("workers", "", "comma-separated sim worker addresses")
		model       = fs.String("model", "neurospora", "model name (see cwc-sim -help)")
		omega       = fs.Float64("omega", 100, "system size")
		traj        = fs.Int("trajectories", 128, "Monte Carlo ensemble size")
		end         = fs.Float64("end", 48, "simulated horizon")
		quantum     = fs.Float64("quantum", 0, "simulation quantum (0 = one sampling period)")
		period      = fs.Float64("period", 0.5, "sampling period τ")
		statEngines = fs.Int("stat-engines", 4, "statistics farm width on the master")
		winSize     = fs.Int("window", 16, "sliding window size (cuts)")
		seed        = fs.Int64("seed", 1, "base RNG seed")
		idleTimeout = fs.Duration("worker-timeout", 0, "fail the run if a worker sends nothing for this long (0 = wait forever)")
		debugAddr   = fs.String("debug-addr", "", "HTTP listen address for GET /metrics and /debug/pprof (empty = disabled)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workers == "" {
		return fmt.Errorf("master needs -workers")
	}
	addrs := strings.Split(*workers, ",")
	cfg := core.Config{
		Trajectories:      *traj,
		End:               *end,
		Quantum:           *quantum,
		Period:            *period,
		StatEngines:       *statEngines,
		WindowSize:        *winSize,
		BaseSeed:          *seed,
		WorkerIdleTimeout: *idleTimeout,
	}
	display := core.CSVDisplay(os.Stdout, nil)
	if *debugAddr != "" {
		reg := obs.NewRegistry()
		windows := reg.Counter("cwc_master_windows_total", "Windows published by this run.")
		csv := display
		display = func(ws core.WindowStat) error {
			windows.Inc()
			return csv(ws)
		}
		go serveDebug("master", *debugAddr, reg)
	}
	start := time.Now()
	info, err := core.RunDistributed(ctx, cfg, core.ModelRef{Name: *model, Omega: *omega}, addrs, display)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr,
		"done in %v over %d workers: %d trajectories, %d cuts, %d windows, %d samples, %d reactions\n",
		time.Since(start).Round(time.Millisecond), len(addrs),
		info.Trajectories, info.Cuts, info.Windows, info.Samples, info.Reactions)
	return nil
}
