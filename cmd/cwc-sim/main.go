// Command cwc-sim runs the CWC simulation-analysis pipeline on shared
// memory (optionally offloading the simulation stage to the simulated
// GPGPU device) and streams per-cut statistics as CSV to stdout.
//
// Example:
//
//	cwc-sim -model neurospora -omega 100 -trajectories 64 -end 48 \
//	        -period 0.5 -workers 8 -stat-engines 2
//	cwc-sim -model neurospora-cwc -trajectories 32 -end 24 -gpu
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"cwcflow/internal/buildinfo"
	"cwcflow/internal/core"
	"cwcflow/internal/gpu"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cwc-sim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		model       = flag.String("model", "neurospora", "model: neurospora, neurospora-nrm, neurospora-cwc, lotka-volterra, sir, schlogl, enzyme")
		omega       = flag.Float64("omega", 100, "system size (molecules per concentration unit) for models that take one")
		traj        = flag.Int("trajectories", 64, "Monte Carlo ensemble size")
		end         = flag.Float64("end", 48, "simulated horizon (model time units)")
		quantum     = flag.Float64("quantum", 0, "simulation quantum (0 = one sampling period)")
		period      = flag.Float64("period", 0.5, "sampling period τ")
		workers     = flag.Int("workers", 4, "simulation farm width")
		statEngines = flag.Int("stat-engines", 2, "statistics farm width")
		winSize     = flag.Int("window", 16, "sliding window size (cuts)")
		winStep     = flag.Int("step", 0, "sliding window step (0 = tumbling)")
		kmeans      = flag.Int("kmeans", 0, "cluster trajectories into k groups per window (0 = off)")
		periodWin   = flag.Int("period-halfwin", 0, "peak-detector half window for period analysis (0 = off)")
		seed        = flag.Int64("seed", 1, "base RNG seed")
		useGPU      = flag.Bool("gpu", false, "offload the simulation stage to the simulated K40 device")
		showVersion = flag.Bool("version", false, "print the build version and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Println("cwc-sim", buildinfo.Version)
		return nil
	}

	factory, err := core.FactoryFor(core.ModelRef{Name: *model, Omega: *omega})
	if err != nil {
		return err
	}
	cfg := core.Config{
		Factory:       factory,
		Trajectories:  *traj,
		End:           *end,
		Quantum:       *quantum,
		Period:        *period,
		SimWorkers:    *workers,
		StatEngines:   *statEngines,
		WindowSize:    *winSize,
		WindowStep:    *winStep,
		KMeansK:       *kmeans,
		PeriodHalfWin: *periodWin,
		BaseSeed:      *seed,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	display := core.CSVDisplay(os.Stdout, nil)
	start := time.Now()
	var info core.RunInfo
	if *useGPU {
		dev, err := gpu.NewDevice(gpu.TeslaK40())
		if err != nil {
			return err
		}
		var ginfo core.GPUInfo
		info, ginfo, err = core.RunGPU(ctx, cfg, dev, display)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "gpu: %d kernel launches, %.3fs simulated device time, %.1f%% SIMT utilisation\n",
			ginfo.Launches, ginfo.SimTime, 100*ginfo.Utilization)
	} else {
		info, err = core.Run(ctx, cfg, display)
		if err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr,
		"done in %v: %d trajectories, %d cuts, %d windows, %d samples, %d reactions%s\n",
		time.Since(start).Round(time.Millisecond),
		info.Trajectories, info.Cuts, info.Windows, info.Samples, info.Reactions,
		deadNote(info.DeadTasks))
	return nil
}

func deadNote(n int) string {
	if n == 0 {
		return ""
	}
	return fmt.Sprintf(" (%d trajectories reached a dead state)", n)
}
