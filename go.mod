module cwcflow

go 1.24.0
