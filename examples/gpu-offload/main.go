// GPU offload: runs the same Neurospora ensemble twice — once on the
// goroutine simulation farm, once offloaded to the simulated Tesla K40
// SIMT device — verifies the results are bit-identical, and reports the
// device's divergence profile for two quantum sizes (the Table I effect:
// small quanta mean more kernel launches but fresher re-balancing).
//
//	go run ./examples/gpu-offload
package main

import (
	"context"
	"fmt"
	"log"

	"cwcflow/internal/core"
	"cwcflow/internal/gpu"
)

func main() {
	factory, err := core.FactoryFor(core.ModelRef{Name: "neurospora", Omega: 50})
	if err != nil {
		log.Fatal(err)
	}
	base := core.Config{
		Factory:      factory,
		Trajectories: 64,
		End:          24,
		Period:       0.5,
		SimWorkers:   4,
		StatEngines:  2,
		WindowSize:   16,
		BaseSeed:     5,
	}

	collect := func(run func(display func(core.WindowStat) error) error) []float64 {
		var means []float64
		if err := run(func(ws core.WindowStat) error {
			for k := range ws.PerCut {
				means = append(means, ws.PerCut[k][0].Mean)
			}
			return nil
		}); err != nil {
			log.Fatal(err)
		}
		return means
	}

	cpu := collect(func(d func(core.WindowStat) error) error {
		_, err := core.Run(context.Background(), base, d)
		return err
	})

	dev, err := gpu.NewDevice(gpu.TeslaK40())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("quantum  launches  simulated device time  SIMT utilisation  results")
	for _, quantum := range []float64{0.5, 5} {
		cfg := base
		cfg.Quantum = quantum
		var ginfo core.GPUInfo
		gpuMeans := collect(func(d func(core.WindowStat) error) error {
			var err error
			_, ginfo, err = core.RunGPU(context.Background(), cfg, dev, d)
			return err
		})
		status := "identical to CPU"
		if len(gpuMeans) != len(cpu) {
			status = "MISMATCH (length)"
		} else {
			for i := range cpu {
				if gpuMeans[i] != cpu[i] {
					status = "MISMATCH (values)"
					break
				}
			}
		}
		fmt.Printf("%7.1f  %8d  %20.4fs  %15.1f%%  %s\n",
			quantum, ginfo.Launches, ginfo.SimTime, 100*ginfo.Utilization, status)
	}
	fmt.Println("\noffloading is functionally transparent; only the timing profile changes")
}
