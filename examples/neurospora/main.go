// Neurospora: the paper's headline workload. Simulates the circadian
// frq-gene oscillator (Leloup–Gonze–Goldbeter) as a Monte Carlo ensemble,
// runs the on-line analysis pipeline with period detection, and prints the
// ensemble's free-running period (≈21.5 h) plus an ASCII plot of the mean
// frq-mRNA trajectory.
//
//	go run ./examples/neurospora
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"strings"

	"cwcflow/internal/core"
	"cwcflow/internal/models"
)

func main() {
	const (
		omega = 100.0
		hours = 120.0
		tau   = 0.5
	)
	factory, err := core.FactoryFor(core.ModelRef{Name: "neurospora", Omega: omega})
	if err != nil {
		log.Fatal(err)
	}
	nCuts := int(hours/tau) + 1
	cfg := core.Config{
		Factory:       factory,
		Trajectories:  24,
		End:           hours,
		Quantum:       2,
		Period:        tau,
		SimWorkers:    4,
		StatEngines:   2,
		WindowSize:    nCuts, // single window covering the whole run
		WindowStep:    nCuts,
		Species:       []int{models.NeuroM},
		PeriodHalfWin: 10,
		BaseSeed:      7,
	}

	var meanM []float64
	var period core.WindowStat
	_, err = core.Run(context.Background(), cfg, func(ws core.WindowStat) error {
		for k := 0; k < ws.NumCuts; k++ {
			meanM = append(meanM, ws.PerCut[k][0].Mean)
		}
		period = ws
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Neurospora frq oscillator, Ω=%.0f, %d trajectories, %.0f h\n\n",
		omega, cfg.Trajectories, hours)
	plot(meanM, tau, 16)
	if len(period.Period) > 0 && period.Period[0].N > 0 {
		p := period.Period[0]
		fmt.Printf("\nfree-running period: %.1f ± %.1f h over %d trajectories (literature: ~21.5 h)\n",
			p.Mean, math.Sqrt(p.Var), p.N)
	} else {
		fmt.Println("\nno period detected (run too short?)")
	}
}

// plot renders xs as a crude ASCII time series, height rows tall.
func plot(xs []float64, dt float64, height int) {
	if len(xs) == 0 {
		return
	}
	lo, hi := xs[0], xs[0]
	for _, v := range xs {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if hi == lo {
		hi = lo + 1
	}
	width := len(xs)
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for c, v := range xs {
		r := int(float64(height-1) * (v - lo) / (hi - lo))
		grid[height-1-r][c] = '*'
	}
	fmt.Printf("%6.1f ┤ mean frq mRNA copies\n", hi)
	for _, row := range grid {
		fmt.Printf("       │%s\n", string(row))
	}
	fmt.Printf("%6.1f └%s\n", lo, strings.Repeat("─", width))
	fmt.Printf("        0 h%sto %.0f h (every %.1f h)\n", strings.Repeat(" ", width-20), float64(len(xs)-1)*dt, dt)
}
