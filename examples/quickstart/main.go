// Quickstart: simulate a stochastic SIR epidemic with the full
// simulation-analysis pipeline and print the ensemble mean trajectory.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"cwcflow/internal/core"
	"cwcflow/internal/gillespie"
	"cwcflow/internal/models"
	"cwcflow/internal/sim"
)

func main() {
	// An SIR epidemic: 1000 people, 10 initially infectious, R0 = 3.
	system := models.SIR(1000, 10, 0.3, 0.1)

	cfg := core.Config{
		// One independent stochastic engine per trajectory.
		Factory: func(_ int, seed int64) (sim.Simulator, error) {
			return gillespie.NewDirect(system, seed)
		},
		Trajectories: 32,  // Monte Carlo ensemble size
		End:          100, // days
		Period:       5,   // sample every 5 days
		SimWorkers:   4,   // simulation farm width
		StatEngines:  2,   // statistics farm width
		WindowSize:   8,   // cuts per analysis window
		BaseSeed:     42,
	}

	fmt.Println("day   mean_S  mean_I  mean_R   std_I")
	_, err := core.Run(context.Background(), cfg, func(ws core.WindowStat) error {
		// WindowStats stream out while simulations are still running.
		dt := 0.0
		if ws.NumCuts > 1 {
			dt = (ws.TimeHi - ws.TimeLo) / float64(ws.NumCuts-1)
		}
		for k := 0; k < ws.NumCuts; k++ {
			s, i, r := ws.PerCut[k][0], ws.PerCut[k][1], ws.PerCut[k][2]
			fmt.Printf("%4.0f  %6.1f  %6.1f  %6.1f  %6.1f\n",
				ws.TimeLo+float64(k)*dt, s.Mean, i.Mean, r.Mean, math.Sqrt(i.Var))
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}
