// Distributed: spins up an in-process virtual cluster — three sim-worker
// servers on loopback TCP — and drives the distributed CWC simulator
// against it: the master streams trajectory assignments out, merges the
// returned sample streams, and runs alignment + statistics locally. The
// same pipeline code as the shared-memory version; only the endpoints
// changed (the paper's porting claim, §IV-B).
//
//	go run ./examples/distributed
package main

import (
	"context"
	"fmt"
	"log"

	"cwcflow/internal/core"
	"cwcflow/internal/dff"
)

func main() {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Virtual cluster: three workers, two sim engines each.
	var addrs []string
	for i := 0; i < 3; i++ {
		l, err := dff.Listen("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		addrs = append(addrs, l.Addr().String())
		go func() {
			_ = core.ServeSimWorker(ctx, l, 2, func(err error) {
				log.Println("worker error:", err)
			})
		}()
	}
	fmt.Println("virtual cluster:", addrs)

	cfg := core.Config{
		Trajectories: 60,
		End:          24,
		Quantum:      2,
		Period:       0.5,
		StatEngines:  2,
		WindowSize:   16,
		BaseSeed:     99,
	}
	model := core.ModelRef{Name: "neurospora", Omega: 50}

	windows := 0
	info, err := core.RunDistributed(ctx, cfg, model, addrs, func(ws core.WindowStat) error {
		windows++
		last := ws.NumCuts - 1
		fmt.Printf("window %2d: t=[%5.1f,%5.1f]  mean M at window end: %7.2f (±%5.2f across %d trajectories)\n",
			windows, ws.TimeLo, ws.TimeHi,
			ws.PerCut[last][0].Mean, ws.PerCut[last][0].Max-ws.PerCut[last][0].Min,
			ws.PerCut[last][0].N)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmaster summary: %d trajectories over %d workers, %d cuts, %d samples, %d reactions\n",
		info.Trajectories, len(addrs), info.Cuts, info.Samples, info.Reactions)
}
