// Bistable clustering: runs an ensemble of Schlögl-model trajectories —
// the canonical bistable chemical system — and uses the pipeline's k-means
// statistical engine to separate the two metastable modes on-line, per
// analysis window. This is the "k-means filter" of the paper's Fig. 2
// exercised on a system where clustering is actually informative.
//
//	go run ./examples/bistable-clustering
package main

import (
	"context"
	"fmt"
	"log"

	"cwcflow/internal/core"
	"cwcflow/internal/gillespie"
	"cwcflow/internal/models"
	"cwcflow/internal/sim"
)

func main() {
	system := models.Schlogl()
	cfg := core.Config{
		Factory: func(_ int, seed int64) (sim.Simulator, error) {
			return gillespie.NewDirect(system, seed)
		},
		Trajectories: 48,
		End:          12,
		Quantum:      0.25,
		Period:       0.25,
		SimWorkers:   4,
		StatEngines:  2,
		WindowSize:   8,
		KMeansK:      2,
		BaseSeed:     1234,
	}

	fmt.Println("Schlögl bistable system: k-means over the trajectory ensemble")
	fmt.Println("window        t    low-mode (size)  high-mode (size)  unsplit?")
	_, err := core.Run(context.Background(), cfg, func(ws core.WindowStat) error {
		km := ws.KMeans
		if km == nil || len(km.Centroids) == 0 {
			return nil
		}
		// Order the two centroids by X count.
		loC, hiC := 0, 0
		for j := range km.Centroids {
			if km.Centroids[j][0] < km.Centroids[loC][0] {
				loC = j
			}
			if km.Centroids[j][0] > km.Centroids[hiC][0] {
				hiC = j
			}
		}
		sizes := make([]int, len(km.Centroids))
		for _, a := range km.Assign {
			sizes[a]++
		}
		note := ""
		if loC == hiC || km.Centroids[hiC][0]-km.Centroids[loC][0] < 100 {
			note = "modes not yet separated"
		}
		fmt.Printf("%6d  %7.2f  %10.0f (%2d)  %11.0f (%2d)  %s\n",
			ws.Start, ws.TimeHi,
			km.Centroids[loC][0], sizes[loC],
			km.Centroids[hiC][0], sizes[hiC], note)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nexpected: modes near X≈90 and X≈560 once trajectories commit to a basin")
}
