package cwcflow_test

import (
	"context"
	"hash/fnv"
	"math"
	"testing"

	"cwcflow/internal/core"
	"cwcflow/internal/sim"
)

// sampleHash digests one sample. The per-sample hashes are XOR-combined by
// the caller, so the ensemble digest is independent of the order in which
// the farm's collector happens to interleave trajectories.
func sampleHash(s sim.Sample) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(u uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(u >> (8 * i))
		}
		h.Write(buf[:])
	}
	put(uint64(s.Traj))
	put(uint64(s.Index))
	put(math.Float64bits(s.Time))
	for _, x := range s.State {
		put(uint64(x))
	}
	return h.Sum64()
}

// TestPipelineTrajectoriesBitIdentical pins the full shared-memory
// pipeline's raw sample stream for a fixed BaseSeed, bit-for-bit,
// regardless of worker count or scheduling. The constant was regenerated
// once for the PCG RNG swap (snapshotable gillespie.RNG replacing
// math/rand, PR 5) and must stay stable from here on: durable-store
// resume depends on re-built trajectories replaying identically.
func TestPipelineTrajectoriesBitIdentical(t *testing.T) {
	const want = uint64(0x1c25845ca7217334)

	factory, err := core.FactoryFor(core.ModelRef{Name: "neurospora", Omega: 50})
	if err != nil {
		t.Fatal(err)
	}
	var digest uint64
	var n int
	cfg := core.Config{
		Factory:      factory,
		Trajectories: 16,
		End:          12,
		Period:       0.5,
		SimWorkers:   4,
		StatEngines:  2,
		WindowSize:   8,
		BaseSeed:     1,
		RawSink: func(s sim.Sample) error {
			digest ^= sampleHash(s)
			n++
			return nil
		},
	}
	if _, err := core.Run(context.Background(), cfg, nil); err != nil {
		t.Fatal(err)
	}
	const wantSamples = 16 * 25 // 16 trajectories × samples at 0, 0.5, …, 12
	if n != wantSamples {
		t.Fatalf("raw sink saw %d samples, want %d", n, wantSamples)
	}
	if got := digest; got != want {
		t.Fatalf("ensemble digest = %#x, want %#x (pipeline no longer bit-identical for fixed seed)", got, want)
	}
}
