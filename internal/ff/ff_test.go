package ff

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func ints(n int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = i
	}
	return s
}

func TestMapNode(t *testing.T) {
	double := MapNode(func(v int) (int, error) { return 2 * v, nil })
	got, err := Collect(context.Background(), SourceSlice(ints(100)), double)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Fatalf("len = %d, want 100", len(got))
	}
	for i, v := range got {
		if v != 2*i {
			t.Fatalf("got[%d] = %d, want %d", i, v, 2*i)
		}
	}
}

func TestFilterNode(t *testing.T) {
	even := FilterNode(func(v int) bool { return v%2 == 0 })
	got, err := Collect(context.Background(), SourceSlice(ints(10)), even)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 2, 4, 6, 8}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestComposePreservesOrder(t *testing.T) {
	inc := MapNode(func(v int) (int, error) { return v + 1, nil })
	sq := MapNode(func(v int) (int, error) { return v * v, nil })
	p := Compose(inc, sq)
	got, err := Collect(context.Background(), SourceSlice(ints(50)), p)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		want := (i + 1) * (i + 1)
		if v != want {
			t.Fatalf("got[%d] = %d, want %d", i, v, want)
		}
	}
}

func TestComposeThreeStages(t *testing.T) {
	a := MapNode(func(v int) (int, error) { return v + 1, nil })
	b := MapNode(func(v int) (int, error) { return v * 2, nil })
	c := MapNode(func(v int) (string, error) { return fmt.Sprintf("#%d", v), nil })
	p := Compose(Compose(a, b), c)
	got, err := Collect(context.Background(), SourceSlice([]int{1, 2, 3}), p)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"#4", "#6", "#8"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestComposeErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	bad := MapNode(func(v int) (int, error) {
		if v == 7 {
			return 0, boom
		}
		return v, nil
	})
	id := MapNode(func(v int) (int, error) { return v, nil })
	_, err := Collect(context.Background(), SourceSlice(ints(100)), Compose(bad, id))
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
}

func TestComposeSecondStageError(t *testing.T) {
	boom := errors.New("late boom")
	id := MapNode(func(v int) (int, error) { return v, nil })
	bad := MapNode(func(v int) (int, error) {
		if v == 3 {
			return 0, boom
		}
		return v, nil
	})
	_, err := Collect(context.Background(), SourceSlice(ints(100)), Compose(id, bad))
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
}

func farmPolicies() []struct {
	name string
	opts []Option
} {
	return []struct {
		name string
		opts []Option
	}{
		{"on-demand", []Option{WithPolicy(OnDemand)}},
		{"round-robin", []Option{WithPolicy(RoundRobin)}},
		{"round-robin-spsc", []Option{WithPolicy(RoundRobin), WithSPSCLinks()}},
		{"ordered", []Option{WithOrdered()}},
		{"on-demand-deep", []Option{WithPolicy(OnDemand), WithQueueDepth(16)}},
	}
}

func TestFarmAllPoliciesCompleteness(t *testing.T) {
	const n = 500
	for _, tc := range farmPolicies() {
		t.Run(tc.name, func(t *testing.T) {
			farm := NewFarm(4, func(int) Worker[int, int] {
				return Transform(func(v int) (int, error) { return v * 3, nil })
			}, tc.opts...)
			got, err := Collect(context.Background(), SourceSlice(ints(n)), farm)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != n {
				t.Fatalf("len = %d, want %d", len(got), n)
			}
			sort.Ints(got)
			for i, v := range got {
				if v != 3*i {
					t.Fatalf("sorted got[%d] = %d, want %d", i, v, 3*i)
				}
			}
		})
	}
}

func TestFarmOrderedPreservesOrder(t *testing.T) {
	farm := NewFarm(8, func(int) Worker[int, int] {
		return Transform(func(v int) (int, error) { return v, nil })
	}, WithOrdered())
	got, err := Collect(context.Background(), SourceSlice(ints(300)), farm)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got[%d] = %d: order not preserved", i, v)
		}
	}
}

func TestFarmOrderedMultiOutput(t *testing.T) {
	// Each task k emits k%3 outputs; ordered farm must keep groups
	// contiguous and in task order.
	farm := NewFarm(4, func(int) Worker[int, string] {
		return WorkerFunc[int, string](func(_ context.Context, task int, emit Emit[string]) error {
			for j := 0; j < task%3; j++ {
				if err := emit(fmt.Sprintf("%d.%d", task, j)); err != nil {
					return err
				}
			}
			return nil
		})
	}, WithOrdered())
	got, err := Collect(context.Background(), SourceSlice(ints(30)), farm)
	if err != nil {
		t.Fatal(err)
	}
	var want []string
	for task := 0; task < 30; task++ {
		for j := 0; j < task%3; j++ {
			want = append(want, fmt.Sprintf("%d.%d", task, j))
		}
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestFarmWorkerError(t *testing.T) {
	boom := errors.New("worker boom")
	for _, tc := range farmPolicies() {
		t.Run(tc.name, func(t *testing.T) {
			farm := NewFarm(3, func(int) Worker[int, int] {
				return Transform(func(v int) (int, error) {
					if v == 42 {
						return 0, boom
					}
					return v, nil
				})
			}, tc.opts...)
			_, err := Collect(context.Background(), SourceSlice(ints(200)), farm)
			if !errors.Is(err, boom) {
				t.Fatalf("err = %v, want %v", err, boom)
			}
		})
	}
}

func TestFarmContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	farm := NewFarm(2, func(int) Worker[int, int] {
		return Transform(func(v int) (int, error) { return v, nil })
	})
	n := 0
	err := Run(ctx, SourceFunc(1_000_000, func(i int) int { return i }), farm, func(int) error {
		n++
		if n == 10 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestFarmSingleWorkerDegeneratesToSequential(t *testing.T) {
	var order []int
	farm := NewFarm(1, func(int) Worker[int, int] {
		return Transform(func(v int) (int, error) { return v, nil })
	})
	err := Run(context.Background(), SourceSlice(ints(100)), farm, func(v int) error {
		order = append(order, v)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("single-worker farm reordered: got[%d]=%d", i, v)
		}
	}
}

func TestFarmProperty_NoLossNoDuplication(t *testing.T) {
	f := func(values []int32, workers uint8) bool {
		w := int(workers%7) + 1
		farm := NewFarm(w, func(int) Worker[int32, int32] {
			return Transform(func(v int32) (int32, error) { return v, nil })
		})
		got, err := Collect(context.Background(), SourceSlice(values), farm)
		if err != nil {
			return false
		}
		if len(got) != len(values) {
			return false
		}
		count := make(map[int32]int)
		for _, v := range values {
			count[v]++
		}
		for _, v := range got {
			count[v]--
		}
		for _, c := range count {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestFarmFeedbackCountdown(t *testing.T) {
	// Each task is a countdown: worker decrements and feeds back until zero,
	// emitting one output at zero. Exercises termination with in-flight
	// rescheduled tasks.
	farm := NewFarmFeedback(4, func(int) FeedbackWorker[int, string] {
		return FeedbackWorkerFunc[int, string](func(_ context.Context, task int, emit Emit[string]) (*int, error) {
			if task == 0 {
				return nil, emit("done")
			}
			next := task - 1
			return &next, nil
		})
	})
	got, err := Collect(context.Background(), SourceSlice([]int{3, 0, 5, 1, 7}), farm)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("outputs = %d, want 5 (one per task)", len(got))
	}
}

func TestFarmFeedbackEmitsDuringSteps(t *testing.T) {
	// Worker emits a sample at every step, like a simulation engine
	// emitting per-quantum results. Total outputs = sum of (task+1).
	farm := NewFarmFeedback(3, func(int) FeedbackWorker[int, int] {
		return FeedbackWorkerFunc[int, int](func(_ context.Context, task int, emit Emit[int]) (*int, error) {
			if err := emit(task); err != nil {
				return nil, err
			}
			if task == 0 {
				return nil, nil
			}
			next := task - 1
			return &next, nil
		})
	})
	tasks := []int{2, 4, 0, 1}
	got, err := Collect(context.Background(), SourceSlice(tasks), farm)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, v := range tasks {
		want += v + 1
	}
	if len(got) != want {
		t.Fatalf("outputs = %d, want %d", len(got), want)
	}
}

func TestFarmFeedbackError(t *testing.T) {
	boom := errors.New("feedback boom")
	farm := NewFarmFeedback(2, func(int) FeedbackWorker[int, int] {
		return FeedbackWorkerFunc[int, int](func(_ context.Context, task int, _ Emit[int]) (*int, error) {
			if task == 13 {
				return nil, boom
			}
			if task > 20 {
				next := task - 1
				return &next, nil
			}
			return nil, nil
		})
	})
	_, err := Collect(context.Background(), SourceSlice(ints(50)), farm)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
}

func TestFarmFeedbackProperty_OneCompletionPerTask(t *testing.T) {
	f := func(steps []uint8, workers uint8) bool {
		w := int(workers%5) + 1
		tasks := make([]int, len(steps))
		for i, s := range steps {
			tasks[i] = int(s % 16)
		}
		var completions atomic.Int64
		farm := NewFarmFeedback(w, func(int) FeedbackWorker[int, struct{}] {
			return FeedbackWorkerFunc[int, struct{}](func(_ context.Context, task int, _ Emit[struct{}]) (*int, error) {
				if task == 0 {
					completions.Add(1)
					return nil, nil
				}
				next := task - 1
				return &next, nil
			})
		})
		_, err := Collect(context.Background(), SourceSlice(tasks), farm)
		return err == nil && completions.Load() == int64(len(tasks))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestNodeFarmMergesReplicas(t *testing.T) {
	node := NewNodeFarm(3, func(replica int) Node[int, int] {
		return MapNode(func(v int) (int, error) { return v, nil })
	})
	got, err := Collect(context.Background(), SourceSlice(ints(200)), node)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 200 {
		t.Fatalf("len = %d, want 200", len(got))
	}
	sort.Ints(got)
	for i, v := range got {
		if v != i {
			t.Fatalf("lost/duplicated element at %d: %d", i, v)
		}
	}
}

func TestTee(t *testing.T) {
	var side []int
	tee := Tee(func(v int) error { side = append(side, v); return nil })
	got, err := Collect(context.Background(), SourceSlice(ints(10)), tee)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != fmt.Sprint(side) {
		t.Fatalf("main %v != side %v", got, side)
	}
}

func TestPolicyString(t *testing.T) {
	if OnDemand.String() != "on-demand" || RoundRobin.String() != "round-robin" {
		t.Fatal("Policy.String mismatch")
	}
	if Policy(99).String() != "unknown" {
		t.Fatal("unknown policy should stringify to unknown")
	}
}

func BenchmarkFarmOnDemand(b *testing.B) {
	benchFarm(b, WithPolicy(OnDemand))
}

func BenchmarkFarmRoundRobin(b *testing.B) {
	benchFarm(b, WithPolicy(RoundRobin))
}

func BenchmarkFarmRoundRobinSPSC(b *testing.B) {
	benchFarm(b, WithPolicy(RoundRobin), WithSPSCLinks())
}

func BenchmarkFarmOrdered(b *testing.B) {
	benchFarm(b, WithOrdered())
}

func benchFarm(b *testing.B, opts ...Option) {
	farm := NewFarm(4, func(int) Worker[int, int] {
		return Transform(func(v int) (int, error) {
			// Small synthetic grain.
			s := 0
			for i := 0; i < 64; i++ {
				s += v * i
			}
			return s, nil
		})
	}, opts...)
	b.ResetTimer()
	err := Run(context.Background(), SourceFunc(b.N, func(i int) int { return i }), farm, func(int) error { return nil })
	if err != nil {
		b.Fatal(err)
	}
}
