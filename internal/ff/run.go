package ff

import "context"

// Source produces a stream with no input. The function must return once all
// values are emitted (or on emit error); the runtime closes the stream.
type Source[T any] func(ctx context.Context, emit Emit[T]) error

// SourceSlice emits the items of a slice in order.
func SourceSlice[T any](items []T) Source[T] {
	return func(_ context.Context, emit Emit[T]) error {
		for _, v := range items {
			if err := emit(v); err != nil {
				return err
			}
		}
		return nil
	}
}

// SourceFunc emits n values produced by gen(i).
func SourceFunc[T any](n int, gen func(i int) T) Source[T] {
	return func(_ context.Context, emit Emit[T]) error {
		for i := 0; i < n; i++ {
			if err := emit(gen(i)); err != nil {
				return err
			}
		}
		return nil
	}
}

// Run drives a complete graph: source → node → sink. The sink is called
// sequentially (never concurrently). Run blocks until the graph drains or
// fails, and returns the first error.
func Run[In, Out any](ctx context.Context, src Source[In], node Node[In, Out], sink func(Out) error) error {
	cfg := newConfig(nil)
	input := make(chan In, cfg.queueDepth)
	g := newGroup(ctx)
	g.Go(func(ctx context.Context) error {
		defer close(input)
		return src(ctx, emitTo(ctx, input))
	})
	g.Go(func(ctx context.Context) error {
		return node.Run(ctx, input, func(v Out) error {
			if err := ctx.Err(); err != nil {
				return err
			}
			return sink(v)
		})
	})
	return g.Wait()
}

// Collect runs a graph and gathers all outputs into a slice, in emission
// order. Intended for tests and small workloads.
func Collect[In, Out any](ctx context.Context, src Source[In], node Node[In, Out]) ([]Out, error) {
	var out []Out
	err := Run(ctx, src, node, func(v Out) error {
		out = append(out, v)
		return nil
	})
	return out, err
}
