package ff

import "context"

// FeedbackWorker processes one task and may hand a continuation task back to
// the farm dispatcher (FastFlow's farm-with-feedback). DoStep may emit any
// number of outputs; a non-nil feedback re-enters the dispatch queue and the
// task stays in flight, a nil feedback marks the task complete.
//
// This is the skeleton behind the CWC simulation farm: a simulation engine
// advances a trajectory by one simulation quantum, emits the samples
// produced in that quantum, and reschedules the (partially advanced)
// simulation task along the feedback channel until its end time is reached.
type FeedbackWorker[In, Out any] interface {
	DoStep(ctx context.Context, task In, emit Emit[Out]) (feedback *In, err error)
}

// FeedbackWorkerFunc adapts a function to the FeedbackWorker interface.
type FeedbackWorkerFunc[In, Out any] func(ctx context.Context, task In, emit Emit[Out]) (*In, error)

// DoStep implements FeedbackWorker.
func (f FeedbackWorkerFunc[In, Out]) DoStep(ctx context.Context, task In, emit Emit[Out]) (*In, error) {
	return f(ctx, task, emit)
}

// FarmFeedback is a task farm whose workers can reschedule tasks back to the
// dispatcher. Scheduling is on-demand (the only policy that makes sense with
// feedback-induced load imbalance). The farm terminates when the external
// input stream is exhausted and no task is in flight.
type FarmFeedback[In, Out any] struct {
	n       int
	factory func(workerID int) FeedbackWorker[In, Out]
	cfg     config
}

// NewFarmFeedback builds a feedback farm of n workers.
func NewFarmFeedback[In, Out any](n int, factory func(workerID int) FeedbackWorker[In, Out], opts ...Option) *FarmFeedback[In, Out] {
	if n < 1 {
		n = 1
	}
	return &FarmFeedback[In, Out]{n: n, factory: factory, cfg: newConfig(opts)}
}

// NWorkers returns the degree of parallelism.
func (f *FarmFeedback[In, Out]) NWorkers() int { return f.n }

// Run implements Node.
func (f *FarmFeedback[In, Out]) Run(ctx context.Context, in <-chan In, emit Emit[Out]) error {
	taskq := make(chan In, f.cfg.queueDepth) // shared on-demand queue
	fbq := make(chan In, f.n)                // worker → dispatcher reschedules
	completions := make(chan struct{}, f.n)  // worker → dispatcher task-done
	collect := make(chan Out, f.cfg.queueDepth)

	g := newGroup(ctx)

	// Dispatcher: merges the external stream and the feedback stream into
	// the shared task queue, tracking in-flight tasks for termination. The
	// local pending buffer guarantees the dispatcher is always ready to
	// drain feedback, which rules out the classic feedback-cycle deadlock.
	g.Go(func(ctx context.Context) error {
		defer close(taskq)
		var pending []In
		inflight := 0
		external := in
		for external != nil || inflight > 0 {
			var sendCh chan In
			var sendVal In
			if len(pending) > 0 {
				sendCh = taskq
				sendVal = pending[0]
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case t, ok := <-external:
				if !ok {
					external = nil
					continue
				}
				inflight++
				pending = append(pending, t)
			case t := <-fbq:
				pending = append(pending, t)
			case <-completions:
				inflight--
			case sendCh <- sendVal:
				pending = pending[1:]
			}
		}
		return nil
	})

	workers := newGroup(g.ctx)
	for w := 0; w < f.n; w++ {
		worker := f.factory(w)
		workers.Go(func(ctx context.Context) error {
			wemit := emitTo(ctx, collect)
			for {
				task, ok, err := recvOne(ctx, taskq)
				if err != nil {
					return err
				}
				if !ok {
					return nil
				}
				fb, err := worker.DoStep(ctx, task, wemit)
				if err != nil {
					return err
				}
				if fb != nil {
					select {
					case fbq <- *fb:
					case <-ctx.Done():
						return ctx.Err()
					}
				} else {
					select {
					case completions <- struct{}{}:
					case <-ctx.Done():
						return ctx.Err()
					}
				}
			}
		})
	}
	g.Go(func(ctx context.Context) error {
		defer close(collect)
		return workers.Wait()
	})
	g.Go(func(ctx context.Context) error {
		return runCollector(ctx, collect, emit)
	})
	return g.Wait()
}
