package ff

import "context"

// FeedbackWorker processes one task and may hand a continuation task back to
// the farm dispatcher (FastFlow's farm-with-feedback). DoStep may emit any
// number of outputs; a non-nil feedback re-enters the dispatch queue and the
// task stays in flight, a nil feedback marks the task complete.
//
// This is the skeleton behind the CWC simulation farm: a simulation engine
// advances a trajectory by one simulation quantum, emits the samples
// produced in that quantum, and reschedules the (partially advanced)
// simulation task along the feedback channel until its end time is reached.
type FeedbackWorker[In, Out any] interface {
	DoStep(ctx context.Context, task In, emit Emit[Out]) (feedback *In, err error)
}

// FeedbackWorkerFunc adapts a function to the FeedbackWorker interface.
type FeedbackWorkerFunc[In, Out any] func(ctx context.Context, task In, emit Emit[Out]) (*In, error)

// DoStep implements FeedbackWorker.
func (f FeedbackWorkerFunc[In, Out]) DoStep(ctx context.Context, task In, emit Emit[Out]) (*In, error) {
	return f(ctx, task, emit)
}

// TaskQueue is the dispatcher's pending-task buffer. The default is a
// plain FIFO; injecting a different implementation changes which pending
// task the farm dispatches next (e.g. weighted fair queueing across
// tenants) without touching the farm's dataflow. Implementations need not
// be goroutine-safe: the dispatcher is the only goroutine that calls them.
type TaskQueue[In any] interface {
	Push(In)
	Pop() (In, bool)
	Len() int
}

// sliceQueue is the default TaskQueue: global arrival order, the exact
// dispatch behaviour the farm had before queues were pluggable.
type sliceQueue[In any] struct {
	items []In
}

func (q *sliceQueue[In]) Push(v In) { q.items = append(q.items, v) }

func (q *sliceQueue[In]) Pop() (In, bool) {
	var zero In
	if len(q.items) == 0 {
		return zero, false
	}
	v := q.items[0]
	q.items[0] = zero
	q.items = q.items[1:]
	return v, true
}

func (q *sliceQueue[In]) Len() int { return len(q.items) }

// FarmFeedback is a task farm whose workers can reschedule tasks back to the
// dispatcher. Scheduling is on-demand (the only policy that makes sense with
// feedback-induced load imbalance). The farm terminates when the external
// input stream is exhausted and no task is in flight.
type FarmFeedback[In, Out any] struct {
	n       int
	factory func(workerID int) FeedbackWorker[In, Out]
	cfg     config
	queue   TaskQueue[In]
}

// NewFarmFeedback builds a feedback farm of n workers.
func NewFarmFeedback[In, Out any](n int, factory func(workerID int) FeedbackWorker[In, Out], opts ...Option) *FarmFeedback[In, Out] {
	if n < 1 {
		n = 1
	}
	return &FarmFeedback[In, Out]{n: n, factory: factory, cfg: newConfig(opts)}
}

// SetTaskQueue replaces the dispatcher's pending-task buffer. Must be
// called before Run. A nil queue restores the default FIFO.
func (f *FarmFeedback[In, Out]) SetTaskQueue(q TaskQueue[In]) { f.queue = q }

// NWorkers returns the degree of parallelism.
func (f *FarmFeedback[In, Out]) NWorkers() int { return f.n }

// Run implements Node.
func (f *FarmFeedback[In, Out]) Run(ctx context.Context, in <-chan In, emit Emit[Out]) error {
	taskqDepth := f.cfg.queueDepth
	if f.queue != nil {
		// A pluggable scheduler decides dispatch order at the moment a
		// worker asks for work: buffering dispatched tasks would re-impose
		// arrival order downstream of the queue and void its policy, so
		// dispatch is a rendezvous (at most one committed task in flight).
		taskqDepth = 0
	}
	taskq := make(chan In, taskqDepth)      // shared on-demand queue
	fbq := make(chan In, f.n)               // worker → dispatcher reschedules
	completions := make(chan struct{}, f.n) // worker → dispatcher task-done
	collect := make(chan Out, f.cfg.queueDepth)

	g := newGroup(ctx)

	// Dispatcher: merges the external stream and the feedback stream into
	// the pending queue, tracking in-flight tasks for termination. The
	// unbounded pending queue guarantees the dispatcher is always ready to
	// drain feedback, which rules out the classic feedback-cycle deadlock.
	//
	// The held-item pattern commits to the queue's choice one task at a
	// time: the dispatcher pops the next task only when its hands are
	// empty, then offers exactly that task until a worker takes it.
	// Dispatch is therefore non-preemptive — a fair queue shapes the order
	// tasks leave the pending set, not tasks already offered.
	g.Go(func(ctx context.Context) error {
		defer close(taskq)
		queue := f.queue
		if queue == nil {
			queue = &sliceQueue[In]{}
		}
		var held In
		haveHeld := false
		inflight := 0
		external := in
		for external != nil || inflight > 0 {
			if !haveHeld {
				held, haveHeld = queue.Pop()
			}
			var sendCh chan In
			if haveHeld {
				sendCh = taskq
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case t, ok := <-external:
				if !ok {
					external = nil
					continue
				}
				inflight++
				queue.Push(t)
			case t := <-fbq:
				queue.Push(t)
			case <-completions:
				inflight--
			case sendCh <- held:
				haveHeld = false
			}
		}
		return nil
	})

	workers := newGroup(g.ctx)
	for w := 0; w < f.n; w++ {
		worker := f.factory(w)
		workers.Go(func(ctx context.Context) error {
			wemit := emitTo(ctx, collect)
			for {
				task, ok, err := recvOne(ctx, taskq)
				if err != nil {
					return err
				}
				if !ok {
					return nil
				}
				fb, err := worker.DoStep(ctx, task, wemit)
				if err != nil {
					return err
				}
				if fb != nil {
					select {
					case fbq <- *fb:
					case <-ctx.Done():
						return ctx.Err()
					}
				} else {
					select {
					case completions <- struct{}{}:
					case <-ctx.Done():
						return ctx.Err()
					}
				}
			}
		})
	}
	g.Go(func(ctx context.Context) error {
		defer close(collect)
		return workers.Wait()
	})
	g.Go(func(ctx context.Context) error {
		return runCollector(ctx, collect, emit)
	})
	return g.Wait()
}
