package ff

import "context"

// Compose connects two nodes into a pipeline stage: the output stream of
// first becomes the input stream of second. Both nodes run concurrently;
// the connecting channel capacity is controlled by WithQueueDepth (default
// 1, matching the near-synchronous channels FastFlow pipelines use).
//
// Compose returns a Node, so pipelines of any length are built by nesting:
//
//	p := ff.Compose(a, ff.Compose(b, c))
func Compose[A, B, C any](first Node[A, B], second Node[B, C], opts ...Option) Node[A, C] {
	cfg := newConfig(opts)
	return NodeFunc[A, C](func(ctx context.Context, in <-chan A, emit Emit[C]) error {
		mid := make(chan B, cfg.queueDepth)
		g := newGroup(ctx)
		g.Go(func(ctx context.Context) error {
			defer close(mid)
			return first.Run(ctx, in, emitTo(ctx, mid))
		})
		g.Go(func(ctx context.Context) error {
			return second.Run(ctx, mid, func(v C) error {
				select {
				case <-ctx.Done():
					return ctx.Err()
				default:
				}
				return emit(v)
			})
		})
		return g.Wait()
	})
}

// Tee duplicates every input value to the downstream emit and to a side
// callback, useful for tapping a stream (e.g. raw-results persistence while
// the analysis pipeline keeps running).
func Tee[T any](side func(T) error) Node[T, T] {
	return NodeFunc[T, T](func(ctx context.Context, in <-chan T, emit Emit[T]) error {
		for {
			v, ok, err := recvOne(ctx, in)
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
			if err := side(v); err != nil {
				return err
			}
			if err := emit(v); err != nil {
				return err
			}
		}
	})
}
