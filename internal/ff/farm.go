package ff

import (
	"context"
	"runtime"

	"cwcflow/internal/ff/spsc"
)

// Farm replicates a Worker across n parallel instances, dispatching the
// input stream over them and collecting their outputs on a single stream
// (emitter → workers → collector, the FastFlow task-farm skeleton).
//
// Scheduling is configurable: OnDemand (default, auto-balancing) or
// RoundRobin; WithOrdered yields an ofarm whose collector releases results
// in task order. A Farm is itself a Node and can appear anywhere in a graph.
type Farm[In, Out any] struct {
	n       int
	factory func(workerID int) Worker[In, Out]
	cfg     config
}

// NewFarm builds a farm of n workers. The factory is called once per worker
// with the worker index, allowing per-worker state (e.g. a private RNG).
func NewFarm[In, Out any](n int, factory func(workerID int) Worker[In, Out], opts ...Option) *Farm[In, Out] {
	if n < 1 {
		n = 1
	}
	return &Farm[In, Out]{n: n, factory: factory, cfg: newConfig(opts)}
}

// NWorkers returns the degree of parallelism.
func (f *Farm[In, Out]) NWorkers() int { return f.n }

// Run implements Node.
func (f *Farm[In, Out]) Run(ctx context.Context, in <-chan In, emit Emit[Out]) error {
	if f.cfg.ordered {
		return f.runOrdered(ctx, in, emit)
	}
	switch f.cfg.policy {
	case RoundRobin:
		if f.cfg.spscLinks {
			return f.runRoundRobinSPSC(ctx, in, emit)
		}
		return f.runRoundRobin(ctx, in, emit)
	default:
		return f.runOnDemand(ctx, in, emit)
	}
}

// runOnDemand shares the input channel across all workers: an idle worker
// picks up the next task, which auto-balances uneven service times.
func (f *Farm[In, Out]) runOnDemand(ctx context.Context, in <-chan In, emit Emit[Out]) error {
	collect := make(chan Out, f.cfg.queueDepth)
	g := newGroup(ctx)

	workers := newGroup(g.ctx)
	for w := 0; w < f.n; w++ {
		worker := f.factory(w)
		workers.Go(func(ctx context.Context) error {
			wemit := emitTo(ctx, collect)
			for {
				task, ok, err := recvOne(ctx, in)
				if err != nil {
					return err
				}
				if !ok {
					return nil
				}
				if err := worker.Do(ctx, task, wemit); err != nil {
					return err
				}
			}
		})
	}
	g.Go(func(ctx context.Context) error {
		defer close(collect)
		return workers.Wait()
	})
	g.Go(func(ctx context.Context) error {
		return runCollector(ctx, collect, emit)
	})
	return g.Wait()
}

// runRoundRobin cycles tasks over dedicated per-worker queues.
func (f *Farm[In, Out]) runRoundRobin(ctx context.Context, in <-chan In, emit Emit[Out]) error {
	queues := make([]chan In, f.n)
	for i := range queues {
		queues[i] = make(chan In, f.cfg.queueDepth)
	}
	collect := make(chan Out, f.cfg.queueDepth)
	g := newGroup(ctx)

	// Dispatcher.
	g.Go(func(ctx context.Context) error {
		defer func() {
			for _, q := range queues {
				close(q)
			}
		}()
		next := 0
		for {
			task, ok, err := recvOne(ctx, in)
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
			select {
			case queues[next] <- task:
			case <-ctx.Done():
				return ctx.Err()
			}
			next = (next + 1) % f.n
		}
	})

	workers := newGroup(g.ctx)
	for w := 0; w < f.n; w++ {
		worker := f.factory(w)
		q := queues[w]
		workers.Go(func(ctx context.Context) error {
			wemit := emitTo(ctx, collect)
			for {
				task, ok, err := recvOne(ctx, q)
				if err != nil {
					return err
				}
				if !ok {
					return nil
				}
				if err := worker.Do(ctx, task, wemit); err != nil {
					return err
				}
			}
		})
	}
	g.Go(func(ctx context.Context) error {
		defer close(collect)
		return workers.Wait()
	})
	g.Go(func(ctx context.Context) error {
		return runCollector(ctx, collect, emit)
	})
	return g.Wait()
}

// runRoundRobinSPSC is runRoundRobin with lock-free SPSC links instead of
// native channels on the dispatcher→worker and worker→collector edges.
// Each such edge is single-producer/single-consumer by construction, which
// is exactly the setting the spsc building block targets.
func (f *Farm[In, Out]) runRoundRobinSPSC(ctx context.Context, in <-chan In, emit Emit[Out]) error {
	depth := f.cfg.queueDepth
	if depth < 2 {
		depth = 2
	}
	queues := make([]*spsc.Chan[In], f.n)
	rets := make([]*spsc.Chan[Out], f.n)
	for i := range queues {
		queues[i] = spsc.NewChan[In](depth)
		rets[i] = spsc.NewChan[Out](depth)
	}
	g := newGroup(ctx)

	g.Go(func(ctx context.Context) error {
		defer func() {
			for _, q := range queues {
				q.Close()
			}
		}()
		next := 0
		for {
			task, ok, err := recvOne(ctx, in)
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
			if err := queues[next].Send(task); err != nil {
				// The queue is closed only by a failing worker's
				// cancellation bridge; step aside and let the worker's
				// error surface from the workers group instead of racing
				// it with a secondary dispatch error.
				return nil
			}
			next = (next + 1) % f.n
		}
	})

	workers := newGroup(g.ctx)
	for w := 0; w < f.n; w++ {
		worker := f.factory(w)
		q := queues[w]
		ret := rets[w]
		workers.Go(func(ctx context.Context) error {
			// SPSC Send/Recv are context-blind, so bridge cancellation by
			// closing both endpoints: this unparks this worker (Recv),
			// the dispatcher (Send on a full queue) and the collector.
			stop := context.AfterFunc(ctx, func() {
				q.Close()
				ret.Close()
			})
			defer stop()
			defer ret.Close()
			wemit := func(v Out) error {
				if err := ctx.Err(); err != nil {
					return err
				}
				return ret.Send(v)
			}
			for {
				task, ok := q.Recv()
				if !ok {
					return ctx.Err()
				}
				if err := ctx.Err(); err != nil {
					return err
				}
				if err := worker.Do(ctx, task, wemit); err != nil {
					return err
				}
			}
		})
	}
	// Collector: polls the per-worker return queues so that a worker with
	// no pending output can never stall the others (a blocking round-robin
	// would deadlock the farm on uneven 0..n output cardinalities).
	g.Go(func(ctx context.Context) error {
		open := f.n
		done := make([]bool, f.n)
		for open > 0 {
			progressed := false
			for w := 0; w < f.n; w++ {
				if done[w] {
					continue
				}
				v, ok, closed := rets[w].TryRecv()
				switch {
				case ok:
					progressed = true
					if err := emit(v); err != nil {
						return err
					}
				case closed:
					done[w] = true
					open--
					progressed = true
				}
			}
			if !progressed {
				if err := ctx.Err(); err != nil {
					return err
				}
				runtime.Gosched()
			}
		}
		return nil
	})
	g.Go(func(ctx context.Context) error {
		return workers.Wait()
	})
	return g.Wait()
}

// taggedGroup carries the outputs a worker produced for one input task.
// The first output is stored inline: in the overwhelmingly common 1:1 case
// (one result per task, e.g. one WindowStat per window) a group costs no
// allocation, and only 2+-output tasks spill into the rest slice.
type taggedGroup[Out any] struct {
	seq   uint64
	n     int
	first Out
	rest  []Out
}

// add records one output of the group's task.
func (g *taggedGroup[Out]) add(v Out) {
	if g.n == 0 {
		g.first = v
	} else {
		g.rest = append(g.rest, v)
	}
	g.n++
}

// flush emits the group's outputs in production order.
func (g *taggedGroup[Out]) flush(emit Emit[Out]) error {
	if g.n == 0 {
		return nil
	}
	if err := emit(g.first); err != nil {
		return err
	}
	for _, v := range g.rest {
		if err := emit(v); err != nil {
			return err
		}
	}
	return nil
}

// runOrdered implements the ordered farm (ofarm): the collector releases the
// outputs of task k, contiguously, before any output of task k+1.
func (f *Farm[In, Out]) runOrdered(ctx context.Context, in <-chan In, emit Emit[Out]) error {
	type taggedTask struct {
		seq  uint64
		task In
	}
	taskq := make(chan taggedTask, f.cfg.queueDepth)
	collect := make(chan taggedGroup[Out], f.cfg.queueDepth)
	g := newGroup(ctx)

	// Tagger.
	g.Go(func(ctx context.Context) error {
		defer close(taskq)
		var seq uint64
		for {
			task, ok, err := recvOne(ctx, in)
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
			select {
			case taskq <- taggedTask{seq: seq, task: task}:
			case <-ctx.Done():
				return ctx.Err()
			}
			seq++
		}
	})

	workers := newGroup(g.ctx)
	for w := 0; w < f.n; w++ {
		worker := f.factory(w)
		workers.Go(func(ctx context.Context) error {
			// One group cell per worker, reset per task: the common
			// one-output case crosses to the collector without allocating.
			var grp taggedGroup[Out]
			buffered := func(v Out) error {
				grp.add(v)
				return nil
			}
			for {
				tt, ok, err := recvOne(ctx, taskq)
				if err != nil {
					return err
				}
				if !ok {
					return nil
				}
				// Fresh group; rest must not be reused after the send below
				// (the collector owns it), so it is dropped, not truncated.
				grp = taggedGroup[Out]{seq: tt.seq}
				if err := worker.Do(ctx, tt.task, buffered); err != nil {
					return err
				}
				select {
				case collect <- grp:
				case <-ctx.Done():
					return ctx.Err()
				}
			}
		})
	}
	g.Go(func(ctx context.Context) error {
		defer close(collect)
		return workers.Wait()
	})

	// Reordering collector.
	g.Go(func(ctx context.Context) error {
		pendingBySeq := make(map[uint64]taggedGroup[Out])
		var next uint64
		release := func() error {
			for {
				grp, ok := pendingBySeq[next]
				if !ok {
					return nil
				}
				delete(pendingBySeq, next)
				if err := grp.flush(emit); err != nil {
					return err
				}
				next++
			}
		}
		for {
			grp, ok, err := recvOne(ctx, collect)
			if err != nil {
				return err
			}
			if !ok {
				// Flush anything ready (there should be nothing out of
				// order left if all workers completed cleanly).
				return release()
			}
			pendingBySeq[grp.seq] = grp
			if err := release(); err != nil {
				return err
			}
		}
	})
	return g.Wait()
}

// runCollector serializes the concurrent worker emissions into ordered calls
// of the downstream emit (which therefore never sees concurrency).
func runCollector[Out any](ctx context.Context, collect <-chan Out, emit Emit[Out]) error {
	for {
		v, ok, err := recvOne(ctx, collect)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if err := emit(v); err != nil {
			return err
		}
	}
}

// NewNodeFarm replicates a full stream Node across n instances sharing the
// input stream (on-demand) and merging their outputs. Unlike Farm, each
// replica is a long-lived stream transformer, so stateful nodes (e.g. whole
// inner pipelines) can be farmed — this is the "farm of simulation
// pipelines" structure the distributed CWC simulator uses.
func NewNodeFarm[In, Out any](n int, factory func(replica int) Node[In, Out], opts ...Option) Node[In, Out] {
	if n < 1 {
		n = 1
	}
	cfg := newConfig(opts)
	return NodeFunc[In, Out](func(ctx context.Context, in <-chan In, emit Emit[Out]) error {
		collect := make(chan Out, cfg.queueDepth)
		g := newGroup(ctx)
		replicas := newGroup(g.ctx)
		for i := 0; i < n; i++ {
			node := factory(i)
			replicas.Go(func(ctx context.Context) error {
				return node.Run(ctx, in, emitTo(ctx, collect))
			})
		}
		g.Go(func(ctx context.Context) error {
			defer close(collect)
			return replicas.Wait()
		})
		g.Go(func(ctx context.Context) error {
			return runCollector(ctx, collect, emit)
		})
		return g.Wait()
	})
}
