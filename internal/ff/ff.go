// Package ff is a pattern-based stream-parallel runtime in the spirit of
// FastFlow, built on goroutines and channels.
//
// The package mirrors FastFlow's layered design:
//
//   - Building blocks: Node (a stream transformer), Emit (a
//     backpressure-aware output function), and the lock-free SPSC queues in
//     the spsc subpackage.
//   - Core patterns: Compose (pipeline), Farm (task-farm with pluggable
//     scheduling), FarmFeedback (farm whose workers can reschedule tasks
//     back to the dispatcher), implemented here; the GPU-oriented
//     stencilReduce pattern lives in the stencil subpackage.
//   - High-level patterns: ParallelFor, Map, Reduce, MapReduce and
//     DivideAndConquer in the parallel subpackage.
//
// All patterns are themselves Nodes, so they compose freely: a Farm can be a
// pipeline stage, a pipeline can be a farm worker, and so on. Every pattern
// honours context cancellation and propagates the first error raised by any
// of its components, cancelling the rest of the graph.
package ff

import "context"

// Emit publishes one value downstream. It blocks if the consumer is slower
// (backpressure) and returns a non-nil error only when the graph is being
// torn down (context cancelled or a peer failed); after a non-nil return the
// caller should stop producing and return promptly.
type Emit[T any] func(v T) error

// Node is a stream transformer: it consumes values from in until the channel
// is closed (or the context is cancelled) and publishes results via emit.
//
// A Node must not close over the channel: closing is the runtime's job.
// Returning a non-nil error tears down the enclosing graph.
type Node[In, Out any] interface {
	Run(ctx context.Context, in <-chan In, emit Emit[Out]) error
}

// NodeFunc adapts a function to the Node interface.
type NodeFunc[In, Out any] func(ctx context.Context, in <-chan In, emit Emit[Out]) error

// Run implements Node.
func (f NodeFunc[In, Out]) Run(ctx context.Context, in <-chan In, emit Emit[Out]) error {
	return f(ctx, in, emit)
}

// Worker processes one task at a time inside a Farm. Do may emit zero or
// more outputs per task.
type Worker[In, Out any] interface {
	Do(ctx context.Context, task In, emit Emit[Out]) error
}

// WorkerFunc adapts a function to the Worker interface.
type WorkerFunc[In, Out any] func(ctx context.Context, task In, emit Emit[Out]) error

// Do implements Worker.
func (f WorkerFunc[In, Out]) Do(ctx context.Context, task In, emit Emit[Out]) error {
	return f(ctx, task, emit)
}

// Transform lifts a pure 1:1 function into a Worker.
func Transform[In, Out any](f func(In) (Out, error)) Worker[In, Out] {
	return WorkerFunc[In, Out](func(_ context.Context, task In, emit Emit[Out]) error {
		v, err := f(task)
		if err != nil {
			return err
		}
		return emit(v)
	})
}

// MapNode lifts a pure 1:1 function into a sequential pipeline stage.
func MapNode[In, Out any](f func(In) (Out, error)) Node[In, Out] {
	return NodeFunc[In, Out](func(ctx context.Context, in <-chan In, emit Emit[Out]) error {
		for {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case v, ok := <-in:
				if !ok {
					return nil
				}
				out, err := f(v)
				if err != nil {
					return err
				}
				if err := emit(out); err != nil {
					return err
				}
			}
		}
	})
}

// FilterNode passes through only the values for which keep returns true.
func FilterNode[T any](keep func(T) bool) Node[T, T] {
	return NodeFunc[T, T](func(ctx context.Context, in <-chan T, emit Emit[T]) error {
		for {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case v, ok := <-in:
				if !ok {
					return nil
				}
				if !keep(v) {
					continue
				}
				if err := emit(v); err != nil {
					return err
				}
			}
		}
	})
}

// emitTo returns an Emit that writes to out, aborting on ctx cancellation.
func emitTo[T any](ctx context.Context, out chan<- T) Emit[T] {
	return func(v T) error {
		select {
		case out <- v:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// recvOne reads one value, honouring cancellation. ok=false means the
// channel closed; err!=nil means the context fired first.
func recvOne[T any](ctx context.Context, in <-chan T) (v T, ok bool, err error) {
	select {
	case <-ctx.Done():
		return v, false, ctx.Err()
	case v, ok = <-in:
		return v, ok, nil
	}
}
