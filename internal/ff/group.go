package ff

import (
	"context"
	"sync"
)

// Group runs goroutines under a shared context, cancelling all of them on
// the first error and reporting that error from Wait — a minimal errgroup
// kept in-tree to avoid a dependency on golang.org/x/sync. All the
// pattern runtimes in this package are built on it, and it is exported for
// graph assemblies (e.g. the distributed master) that need the same
// teardown discipline.
type Group struct {
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	once sync.Once
	err  error
}

// NewGroup returns a group whose goroutines run under a context derived
// from parent.
func NewGroup(parent context.Context) *Group {
	ctx, cancel := context.WithCancel(parent)
	return &Group{ctx: ctx, cancel: cancel}
}

// Context returns the group's context (cancelled on first error or Wait).
func (g *Group) Context() context.Context { return g.ctx }

// Go runs f in a goroutine. The first non-nil error cancels the group
// context.
func (g *Group) Go(f func(ctx context.Context) error) {
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		if err := f(g.ctx); err != nil {
			g.once.Do(func() {
				g.err = err
				g.cancel()
			})
		}
	}()
}

// Wait blocks until all goroutines finish and returns the first error.
func (g *Group) Wait() error {
	g.wg.Wait()
	g.cancel()
	return g.err
}

// newGroup is the internal alias used by the pattern implementations.
func newGroup(parent context.Context) *Group { return NewGroup(parent) }
