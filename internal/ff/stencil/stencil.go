// Package stencil implements the stencilReduce core pattern: an iterative
// data-parallel computation that, at each iteration, maps a kernel over all
// elements (with read access to the whole previous generation, i.e. any
// neighbourhood) and reduces the new generation to a scalar that drives the
// termination condition.
//
// stencilReduce is the single GPU-specific core pattern of the runtime
// (FastFlow uses it to model "most of the interesting GPGPU computations"):
// the map phase can be offloaded to a simulated SIMT device, in which case
// the run also accounts simulated device time, or executed by a pool of
// goroutines on the host.
package stencil

import (
	"context"
	"errors"

	"cwcflow/internal/ff/parallel"
	"cwcflow/internal/gpu"
)

// Kernel computes element i of the next generation from the whole previous
// generation. It must not mutate prev.
type Kernel[T any] func(i int, prev []T) T

// Reduce folds the new generation into a scalar via Extract/Combine;
// Combine must be associative with identity Identity.
type Reduce[T, R any] struct {
	Identity R
	Extract  func(T) R
	Combine  func(R, R) R
}

// Condition decides whether to run another iteration, given the iteration
// index just completed (0-based) and its reduction value.
type Condition[R any] func(iter int, reduced R) bool

// Options configure the executor of the map phase.
type Options struct {
	// Workers is the host pool size when no device is configured.
	Workers int
	// Device, when non-nil, offloads the map phase to the simulated GPGPU.
	Device *gpu.Device
	// Cost reports the abstract cost of computing element i, used by the
	// device timing model. Nil means uniform cost 1.
	Cost func(i int) float64
}

// Result reports the outcome of a stencilReduce run.
type Result[T, R any] struct {
	// Data is the final generation.
	Data []T
	// Reduced is the reduction of the final generation.
	Reduced R
	// Iterations is the number of map+reduce rounds executed.
	Iterations int
	// DeviceTime is the total simulated device time in seconds (zero when
	// running on the host).
	DeviceTime float64
	// DeviceUtilization is the busy/lockstep ratio across all launches
	// (1.0 when running on the host or when no divergence occurred).
	DeviceUtilization float64
}

// Run executes the stencilReduce loop: it keeps iterating while cond returns
// true, double-buffering the generations. The input slice is not modified.
func Run[T, R any](ctx context.Context, data []T, k Kernel[T], red Reduce[T, R], cond Condition[R], opts Options) (Result[T, R], error) {
	var res Result[T, R]
	if k == nil || red.Extract == nil || red.Combine == nil || cond == nil {
		return res, errors.New("stencil: kernel, reduce and condition must be non-nil")
	}
	if opts.Workers < 1 {
		opts.Workers = 1
	}
	cur := append([]T(nil), data...)
	next := make([]T, len(data))

	var busy, lockstep float64
	for iter := 0; ; iter++ {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		if opts.Device != nil {
			stats, err := opts.Device.Launch(ctx, len(cur), func(i int) (float64, error) {
				next[i] = k(i, cur)
				if opts.Cost != nil {
					return opts.Cost(i), nil
				}
				return 1, nil
			})
			if err != nil {
				return res, err
			}
			res.DeviceTime += stats.SimTime
			busy += stats.BusyCost
			lockstep += stats.LockstepCost
		} else {
			err := parallel.For(ctx, opts.Workers, len(cur), 0, func(i int) error {
				next[i] = k(i, cur)
				return nil
			})
			if err != nil {
				return res, err
			}
		}
		// Reduction of the new generation.
		reduced, err := parallel.MapReduce(ctx, opts.Workers, next,
			func(v T) (R, error) { return red.Extract(v), nil },
			red.Identity, red.Combine)
		if err != nil {
			return res, err
		}
		cur, next = next, cur
		res.Iterations = iter + 1
		res.Reduced = reduced
		if !cond(iter, reduced) {
			break
		}
	}
	res.Data = cur
	if lockstep > 0 {
		res.DeviceUtilization = busy / lockstep
	} else {
		res.DeviceUtilization = 1
	}
	return res, nil
}
