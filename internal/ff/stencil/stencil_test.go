package stencil

import (
	"context"
	"math"
	"testing"
	"testing/quick"

	"cwcflow/internal/gpu"
)

func sumReduce() Reduce[float64, float64] {
	return Reduce[float64, float64]{
		Identity: 0,
		Extract:  func(v float64) float64 { return v },
		Combine:  func(a, b float64) float64 { return a + b },
	}
}

// diffusionKernel is a 1D 3-point heat stencil with reflective borders.
func diffusionKernel(i int, prev []float64) float64 {
	left := prev[max(i-1, 0)]
	right := prev[min(i+1, len(prev)-1)]
	return 0.25*left + 0.5*prev[i] + 0.25*right
}

func TestDiffusionConservesMass(t *testing.T) {
	data := make([]float64, 64)
	data[32] = 1000
	res, err := Run(context.Background(), data, diffusionKernel, sumReduce(),
		func(iter int, _ float64) bool { return iter < 49 },
		Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 50 {
		t.Fatalf("iterations = %d, want 50", res.Iterations)
	}
	if math.Abs(res.Reduced-1000) > 1e-6 {
		t.Fatalf("mass = %g, want 1000 (diffusion must conserve)", res.Reduced)
	}
	// The peak must have spread: centre below initial, neighbours above 0.
	if res.Data[32] >= 1000 || res.Data[20] <= 0 {
		t.Fatalf("no diffusion happened: centre=%g data[20]=%g", res.Data[32], res.Data[20])
	}
}

func TestInputNotMutated(t *testing.T) {
	data := []float64{1, 2, 3, 4}
	orig := append([]float64(nil), data...)
	_, err := Run(context.Background(), data, diffusionKernel, sumReduce(),
		func(iter int, _ float64) bool { return iter < 3 },
		Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if data[i] != orig[i] {
			t.Fatalf("input mutated at %d: %g != %g", i, data[i], orig[i])
		}
	}
}

func TestConditionStopsImmediately(t *testing.T) {
	data := []float64{1, 2, 3}
	res, err := Run(context.Background(), data, diffusionKernel, sumReduce(),
		func(int, float64) bool { return false },
		Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 1 {
		t.Fatalf("iterations = %d, want 1 (condition checked after first round)", res.Iterations)
	}
}

func TestConvergenceCondition(t *testing.T) {
	// Iterate until the max element drops below a threshold.
	maxReduce := Reduce[float64, float64]{
		Identity: 0,
		Extract:  func(v float64) float64 { return v },
		Combine:  math.Max,
	}
	data := make([]float64, 128)
	data[64] = 100
	res, err := Run(context.Background(), data, diffusionKernel, maxReduce,
		func(_ int, m float64) bool { return m > 5 },
		Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reduced > 5 {
		t.Fatalf("converged max = %g, want <= 5", res.Reduced)
	}
	if res.Iterations < 2 {
		t.Fatalf("expected several iterations, got %d", res.Iterations)
	}
}

func TestNilKernelRejected(t *testing.T) {
	_, err := Run[int, int](context.Background(), []int{1}, nil,
		Reduce[int, int]{Extract: func(v int) int { return v }, Combine: func(a, b int) int { return a + b }},
		func(int, int) bool { return false }, Options{})
	if err == nil {
		t.Fatal("want error for nil kernel")
	}
}

func TestHostAndDeviceAgree(t *testing.T) {
	dev, err := gpu.NewDevice(gpu.DeviceConfig{
		SMs: 2, CoresPerSM: 64, WarpSize: 32,
		LaunchOverhead: 1e-6, SecondsPerCost: 1e-9,
	})
	if err != nil {
		t.Fatal(err)
	}
	data := make([]float64, 100)
	for i := range data {
		data[i] = float64(i % 13)
	}
	cond := func(iter int, _ float64) bool { return iter < 9 }

	host, err := Run(context.Background(), data, diffusionKernel, sumReduce(), cond, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	gpuRes, err := Run(context.Background(), data, diffusionKernel, sumReduce(), cond, Options{Device: dev})
	if err != nil {
		t.Fatal(err)
	}
	if host.Iterations != gpuRes.Iterations {
		t.Fatalf("iterations differ: host %d, device %d", host.Iterations, gpuRes.Iterations)
	}
	for i := range host.Data {
		if math.Abs(host.Data[i]-gpuRes.Data[i]) > 1e-12 {
			t.Fatalf("results diverge at %d: host %g, device %g", i, host.Data[i], gpuRes.Data[i])
		}
	}
	if gpuRes.DeviceTime <= 0 {
		t.Fatal("device run reported no simulated time")
	}
	if host.DeviceTime != 0 {
		t.Fatal("host run reported device time")
	}
}

func TestDeviceDivergenceAccounting(t *testing.T) {
	dev, err := gpu.NewDevice(gpu.DeviceConfig{
		SMs: 1, CoresPerSM: 32, WarpSize: 32,
		LaunchOverhead: 0, SecondsPerCost: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	data := make([]float64, 32)
	res, err := Run(context.Background(), data,
		func(i int, prev []float64) float64 { return prev[i] },
		sumReduce(),
		func(int, float64) bool { return false },
		Options{
			Device: dev,
			Cost: func(i int) float64 {
				if i == 0 {
					return 10
				}
				return 1
			},
		})
	if err != nil {
		t.Fatal(err)
	}
	wantUtil := (10.0 + 31.0) / 320.0
	if math.Abs(res.DeviceUtilization-wantUtil) > 1e-12 {
		t.Fatalf("utilization = %g, want %g", res.DeviceUtilization, wantUtil)
	}
}

// TestProperty_HostWorkersIrrelevant: the functional result must be
// identical for any worker count.
func TestProperty_HostWorkersIrrelevant(t *testing.T) {
	f := func(seed []byte, workers uint8) bool {
		if len(seed) == 0 {
			return true
		}
		data := make([]float64, len(seed))
		for i, b := range seed {
			data[i] = float64(b)
		}
		w := int(workers%6) + 1
		cond := func(iter int, _ float64) bool { return iter < 4 }
		a, err := Run(context.Background(), data, diffusionKernel, sumReduce(), cond, Options{Workers: 1})
		if err != nil {
			return false
		}
		b, err := Run(context.Background(), data, diffusionKernel, sumReduce(), cond, Options{Workers: w})
		if err != nil {
			return false
		}
		for i := range a.Data {
			if a.Data[i] != b.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkStencilHost(b *testing.B) {
	data := make([]float64, 4096)
	data[2048] = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := Run(context.Background(), data, diffusionKernel, sumReduce(),
			func(iter int, _ float64) bool { return iter < 4 }, Options{Workers: 4})
		if err != nil {
			b.Fatal(err)
		}
	}
}
