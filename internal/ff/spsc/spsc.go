// Package spsc implements a bounded lock-free single-producer/single-consumer
// FIFO queue, the base building block of the stream runtime.
//
// The design follows the classic Lamport circular buffer refined with
// cache-line padding and release/acquire atomics, mirroring the
// SPSC queues FastFlow builds its shared-memory channels on. One goroutine
// may call Push (the producer) and one goroutine may call Pop (the
// consumer); any other usage is a data race by contract.
//
// Two interfaces are provided:
//
//   - Queue[T]: non-blocking TryPush/TryPop primitives.
//   - Chan[T]: blocking Send/Recv built on Queue with bounded spinning
//     followed by parking, plus Close semantics comparable to native
//     channels. Chan is what the farm runtime uses when configured with
//     SPSC links instead of native channels.
package spsc

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// cacheLinePad separates hot atomics to avoid false sharing between the
// producer-owned and consumer-owned halves of the queue header.
type cacheLinePad struct{ _ [64]byte }

// Queue is a bounded lock-free SPSC FIFO.
//
// The zero value is not usable; construct with NewQueue.
type Queue[T any] struct {
	buf  []slot[T]
	mask uint64

	_    cacheLinePad
	head atomic.Uint64 // next index to pop (consumer-owned)
	_    cacheLinePad
	tail atomic.Uint64 // next index to push (producer-owned)
	_    cacheLinePad

	// Cached copies to reduce cross-core traffic: the producer caches the
	// consumer's head, the consumer caches the producer's tail.
	cachedHead uint64 // producer-local
	_          cacheLinePad
	cachedTail uint64 // consumer-local
	_          cacheLinePad
}

type slot[T any] struct {
	val T
}

// NewQueue returns an SPSC queue with capacity rounded up to the next power
// of two (minimum 2).
func NewQueue[T any](capacity int) *Queue[T] {
	if capacity < 2 {
		capacity = 2
	}
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &Queue[T]{
		buf:  make([]slot[T], n),
		mask: uint64(n - 1),
	}
}

// Cap returns the queue capacity.
func (q *Queue[T]) Cap() int { return len(q.buf) }

// Len returns a point-in-time element count. It is exact only when called
// from the producer or consumer goroutine while the other side is quiescent.
func (q *Queue[T]) Len() int {
	t := q.tail.Load()
	h := q.head.Load()
	return int(t - h)
}

// TryPush appends v and reports whether there was room. Producer-side only.
func (q *Queue[T]) TryPush(v T) bool {
	t := q.tail.Load()
	if t-q.cachedHead >= uint64(len(q.buf)) {
		q.cachedHead = q.head.Load()
		if t-q.cachedHead >= uint64(len(q.buf)) {
			return false
		}
	}
	q.buf[t&q.mask].val = v
	q.tail.Store(t + 1) // release: publishes the slot write
	return true
}

// TryPop removes the oldest element and reports whether one was available.
// Consumer-side only.
func (q *Queue[T]) TryPop() (T, bool) {
	var zero T
	h := q.head.Load()
	if h >= q.cachedTail {
		q.cachedTail = q.tail.Load() // acquire
		if h >= q.cachedTail {
			return zero, false
		}
	}
	v := q.buf[h&q.mask].val
	q.buf[h&q.mask].val = zero // drop reference for GC
	q.head.Store(h + 1)
	return v, true
}

// Chan is a blocking SPSC channel with close semantics, built on Queue.
//
// Send and Recv first spin a bounded number of iterations (the common
// fast path under load), then fall back to parking on a condition variable
// so an idle endpoint does not burn a core.
type Chan[T any] struct {
	q      *Queue[T]
	closed atomic.Bool

	mu       sync.Mutex
	sendWait bool
	recvWait bool
	sendCond *sync.Cond
	recvCond *sync.Cond
}

// spinBudget is the number of TryPush/TryPop attempts before parking.
// Small enough to stay polite on oversubscribed machines, large enough to
// cover the few-hundred-nanosecond window of a concurrent peer operation.
const spinBudget = 128

// NewChan returns a blocking SPSC channel with the given capacity.
func NewChan[T any](capacity int) *Chan[T] {
	c := &Chan[T]{q: NewQueue[T](capacity)}
	c.sendCond = sync.NewCond(&c.mu)
	c.recvCond = sync.NewCond(&c.mu)
	return c
}

// ErrClosed is returned by Send on a closed channel.
type ErrClosed struct{}

func (ErrClosed) Error() string { return "spsc: send on closed channel" }

// Send blocks until v is enqueued, or returns ErrClosed if the channel has
// been closed. Producer-side only.
func (c *Chan[T]) Send(v T) error {
	for {
		for i := 0; i < spinBudget; i++ {
			if c.closed.Load() {
				return ErrClosed{}
			}
			if c.q.TryPush(v) {
				c.wakeRecv()
				return nil
			}
			if i%16 == 15 {
				runtime.Gosched() // give the consumer a chance on few-core machines
			}
		}
		// Park until the consumer frees a slot.
		c.mu.Lock()
		if c.closed.Load() {
			c.mu.Unlock()
			return ErrClosed{}
		}
		if c.q.TryPush(v) {
			c.mu.Unlock()
			c.wakeRecv()
			return nil
		}
		c.sendWait = true
		c.sendCond.Wait()
		c.mu.Unlock()
	}
}

// Recv blocks until an element is available, returning ok=false once the
// channel is closed and drained. Consumer-side only.
func (c *Chan[T]) Recv() (T, bool) {
	for {
		for i := 0; i < spinBudget; i++ {
			if v, ok := c.q.TryPop(); ok {
				c.wakeSend()
				return v, true
			}
			if c.closed.Load() {
				// Re-check after observing close: a concurrent Send may
				// have enqueued before the close flag was set.
				if v, ok := c.q.TryPop(); ok {
					c.wakeSend()
					return v, true
				}
				var zero T
				return zero, false
			}
			if i%16 == 15 {
				runtime.Gosched()
			}
		}
		c.mu.Lock()
		if v, ok := c.q.TryPop(); ok {
			c.mu.Unlock()
			c.wakeSend()
			return v, true
		}
		if c.closed.Load() {
			c.mu.Unlock()
			var zero T
			return zero, false
		}
		c.recvWait = true
		c.recvCond.Wait()
		c.mu.Unlock()
	}
}

// TryRecv is the non-blocking variant of Recv. It returns (v, true, false)
// when an element was available, (zero, false, false) when the channel is
// momentarily empty, and (zero, false, true) when it is closed and drained.
// Consumer-side only.
func (c *Chan[T]) TryRecv() (v T, ok bool, closed bool) {
	if v, ok := c.q.TryPop(); ok {
		c.wakeSend()
		return v, true, false
	}
	if c.closed.Load() {
		// Re-check: a Send may have raced ahead of the close flag.
		if v, ok := c.q.TryPop(); ok {
			c.wakeSend()
			return v, true, false
		}
		var zero T
		return zero, false, true
	}
	var zero T
	return zero, false, false
}

// Close marks the channel closed. Pending elements remain receivable.
// Close is idempotent and may be called by either endpoint.
func (c *Chan[T]) Close() {
	if c.closed.Swap(true) {
		return
	}
	c.mu.Lock()
	c.sendCond.Broadcast()
	c.recvCond.Broadcast()
	c.sendWait = false
	c.recvWait = false
	c.mu.Unlock()
}

func (c *Chan[T]) wakeRecv() {
	c.mu.Lock()
	if c.recvWait {
		c.recvWait = false
		c.recvCond.Broadcast()
	}
	c.mu.Unlock()
}

func (c *Chan[T]) wakeSend() {
	c.mu.Lock()
	if c.sendWait {
		c.sendWait = false
		c.sendCond.Broadcast()
	}
	c.mu.Unlock()
}
