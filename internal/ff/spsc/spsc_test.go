package spsc

import (
	"runtime"
	"sync"
	"testing"
	"testing/quick"
)

func TestQueueCapacityRounding(t *testing.T) {
	tests := []struct {
		in, want int
	}{
		{0, 2}, {1, 2}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {1000, 1024},
	}
	for _, tt := range tests {
		if got := NewQueue[int](tt.in).Cap(); got != tt.want {
			t.Errorf("NewQueue(%d).Cap() = %d, want %d", tt.in, got, tt.want)
		}
	}
}

func TestQueuePushPopSequential(t *testing.T) {
	q := NewQueue[int](4)
	if _, ok := q.TryPop(); ok {
		t.Fatal("TryPop on empty queue succeeded")
	}
	for i := 0; i < 4; i++ {
		if !q.TryPush(i) {
			t.Fatalf("TryPush(%d) failed on non-full queue", i)
		}
	}
	if q.TryPush(99) {
		t.Fatal("TryPush succeeded on full queue")
	}
	if got := q.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	for i := 0; i < 4; i++ {
		v, ok := q.TryPop()
		if !ok || v != i {
			t.Fatalf("TryPop = (%d,%v), want (%d,true)", v, ok, i)
		}
	}
	if _, ok := q.TryPop(); ok {
		t.Fatal("TryPop on drained queue succeeded")
	}
}

func TestQueueWraparound(t *testing.T) {
	q := NewQueue[int](2)
	for round := 0; round < 1000; round++ {
		if !q.TryPush(round) {
			t.Fatalf("round %d: push failed", round)
		}
		v, ok := q.TryPop()
		if !ok || v != round {
			t.Fatalf("round %d: pop = (%d,%v)", round, v, ok)
		}
	}
}

// TestQueueConcurrentFIFO checks the core SPSC contract: with one producer
// and one consumer, every element arrives exactly once, in order.
func TestQueueConcurrentFIFO(t *testing.T) {
	const n = 20000
	q := NewQueue[int](64)
	done := make(chan error, 1)
	go func() {
		expect := 0
		for expect < n {
			if v, ok := q.TryPop(); ok {
				if v != expect {
					done <- errOutOfOrder{got: v, want: expect}
					return
				}
				expect++
			} else {
				runtime.Gosched() // single-core friendliness: let the producer run
			}
		}
		done <- nil
	}()
	for i := 0; i < n; {
		if q.TryPush(i) {
			i++
		} else {
			runtime.Gosched()
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

type errOutOfOrder struct{ got, want int }

func (e errOutOfOrder) Error() string {
	return "out of order"
}

// TestQueueProperty_FIFOPreserved: for any sequence of values, pushing them
// through a concurrent producer/consumer pair yields the same sequence.
func TestQueueProperty_FIFOPreserved(t *testing.T) {
	f := func(values []int64, capExp uint8) bool {
		capacity := 2 << (capExp % 8)
		q := NewQueue[int64](capacity)
		out := make([]int64, 0, len(values))
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for len(out) < len(values) {
				if v, ok := q.TryPop(); ok {
					out = append(out, v)
				} else {
					runtime.Gosched()
				}
			}
		}()
		for i := 0; i < len(values); {
			if q.TryPush(values[i]) {
				i++
			} else {
				runtime.Gosched()
			}
		}
		wg.Wait()
		if len(out) != len(values) {
			return false
		}
		for i := range values {
			if out[i] != values[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestChanSendRecv(t *testing.T) {
	c := NewChan[string](4)
	go func() {
		for _, s := range []string{"a", "b", "c"} {
			if err := c.Send(s); err != nil {
				t.Errorf("Send: %v", err)
			}
		}
		c.Close()
	}()
	var got []string
	for {
		v, ok := c.Recv()
		if !ok {
			break
		}
		got = append(got, v)
	}
	want := []string{"a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestChanCloseUnblocksReceiver(t *testing.T) {
	c := NewChan[int](2)
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, ok := c.Recv(); ok {
			t.Error("Recv on closed empty channel returned ok=true")
		}
	}()
	c.Close()
	<-done
}

func TestChanSendAfterClose(t *testing.T) {
	c := NewChan[int](2)
	c.Close()
	if err := c.Send(1); err == nil {
		t.Fatal("Send after Close returned nil error")
	}
}

func TestChanDrainAfterClose(t *testing.T) {
	c := NewChan[int](8)
	for i := 0; i < 5; i++ {
		if err := c.Send(i); err != nil {
			t.Fatal(err)
		}
	}
	c.Close()
	for i := 0; i < 5; i++ {
		v, ok := c.Recv()
		if !ok || v != i {
			t.Fatalf("Recv %d = (%d,%v)", i, v, ok)
		}
	}
	if _, ok := c.Recv(); ok {
		t.Fatal("Recv after drain returned ok=true")
	}
}

func TestChanBackpressure(t *testing.T) {
	// A slow consumer must not lose elements when the producer outruns it.
	c := NewChan[int](2)
	const n = 10000
	go func() {
		for i := 0; i < n; i++ {
			if err := c.Send(i); err != nil {
				t.Errorf("Send: %v", err)
				return
			}
		}
		c.Close()
	}()
	expect := 0
	for {
		v, ok := c.Recv()
		if !ok {
			break
		}
		if v != expect {
			t.Fatalf("Recv = %d, want %d", v, expect)
		}
		expect++
	}
	if expect != n {
		t.Fatalf("received %d elements, want %d", expect, n)
	}
}

func BenchmarkSPSCQueue(b *testing.B) {
	q := NewQueue[int](1024)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for seen := 0; seen < b.N; {
			if _, ok := q.TryPop(); ok {
				seen++
			} else {
				runtime.Gosched()
			}
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; {
		if q.TryPush(i) {
			i++
		} else {
			runtime.Gosched()
		}
	}
	<-done
}

func BenchmarkSPSCChan(b *testing.B) {
	c := NewChan[int](1024)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for seen := 0; seen < b.N; seen++ {
			if _, ok := c.Recv(); !ok {
				return
			}
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Send(i); err != nil {
			b.Fatal(err)
		}
	}
	<-done
}

// BenchmarkNativeChan is the baseline the SPSC queue is compared against.
func BenchmarkNativeChan(b *testing.B) {
	c := make(chan int, 1024)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range c {
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c <- i
	}
	close(c)
	<-done
}
