// Package parallel provides the high-level data-parallel patterns of the
// runtime — ParallelFor, Map, Reduce, MapReduce and DivideAndConquer —
// built on the core farm/pipeline skeletons, mirroring FastFlow's
// high-level pattern layer.
package parallel

import (
	"context"
	"fmt"

	"cwcflow/internal/ff"
)

// span is a half-open index range [lo, hi) processed as one grain.
type span struct{ lo, hi int }

// grains cuts [0,n) into chunks of the given grain size (grain<=0 selects
// an automatic grain of n/(8*workers), minimum 1).
func grains(n, grain, workers int) []span {
	if n <= 0 {
		return nil
	}
	if grain <= 0 {
		grain = n / (8 * workers)
		if grain < 1 {
			grain = 1
		}
	}
	out := make([]span, 0, (n+grain-1)/grain)
	for lo := 0; lo < n; lo += grain {
		hi := lo + grain
		if hi > n {
			hi = n
		}
		out = append(out, span{lo, hi})
	}
	return out
}

// For runs body(i) for every i in [0,n) using the given number of workers.
// Iterations are distributed on demand in chunks of grain (grain<=0 picks
// one automatically). The first error cancels the loop.
func For(ctx context.Context, workers, n, grain int, body func(i int) error) error {
	if workers < 1 {
		workers = 1
	}
	if workers == 1 || n <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := body(i); err != nil {
				return err
			}
		}
		return nil
	}
	farm := ff.NewFarm(workers, func(int) ff.Worker[span, struct{}] {
		return ff.WorkerFunc[span, struct{}](func(ctx context.Context, s span, _ ff.Emit[struct{}]) error {
			for i := s.lo; i < s.hi; i++ {
				if err := body(i); err != nil {
					return err
				}
			}
			return nil
		})
	})
	return ff.Run(ctx, ff.SourceSlice(grains(n, grain, workers)), farm, func(struct{}) error { return nil })
}

// Map applies f to every element of in, producing a new slice in index
// order. Workers share nothing, so f may be arbitrarily stateful per call.
func Map[In, Out any](ctx context.Context, workers int, in []In, f func(In) (Out, error)) ([]Out, error) {
	out := make([]Out, len(in))
	err := For(ctx, workers, len(in), 0, func(i int) error {
		v, err := f(in[i])
		if err != nil {
			return fmt.Errorf("map element %d: %w", i, err)
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Reduce folds in with an associative combine function, using a two-level
// scheme: per-worker partial folds followed by a sequential final fold.
// combine must be associative; id is its identity element.
func Reduce[T any](ctx context.Context, workers int, in []T, id T, combine func(T, T) T) (T, error) {
	if len(in) == 0 {
		return id, nil
	}
	if workers < 1 {
		workers = 1
	}
	spans := grains(len(in), 0, workers)
	partials := make([]T, len(spans))
	farm := ff.NewFarm(workers, func(int) ff.Worker[int, struct{}] {
		return ff.WorkerFunc[int, struct{}](func(_ context.Context, si int, _ ff.Emit[struct{}]) error {
			acc := id
			for i := spans[si].lo; i < spans[si].hi; i++ {
				acc = combine(acc, in[i])
			}
			partials[si] = acc
			return nil
		})
	})
	err := ff.Run(ctx, ff.SourceFunc(len(spans), func(i int) int { return i }), farm, func(struct{}) error { return nil })
	if err != nil {
		var zero T
		return zero, err
	}
	acc := id
	for _, p := range partials {
		acc = combine(acc, p)
	}
	return acc, nil
}

// MapReduce maps every element through f and folds the results with
// combine, fusing the two phases per worker (no intermediate slice).
func MapReduce[In, Out any](ctx context.Context, workers int, in []In, f func(In) (Out, error), id Out, combine func(Out, Out) Out) (Out, error) {
	if len(in) == 0 {
		return id, nil
	}
	if workers < 1 {
		workers = 1
	}
	spans := grains(len(in), 0, workers)
	partials := make([]Out, len(spans))
	farm := ff.NewFarm(workers, func(int) ff.Worker[int, struct{}] {
		return ff.WorkerFunc[int, struct{}](func(_ context.Context, si int, _ ff.Emit[struct{}]) error {
			acc := id
			for i := spans[si].lo; i < spans[si].hi; i++ {
				v, err := f(in[i])
				if err != nil {
					return fmt.Errorf("mapreduce element %d: %w", i, err)
				}
				acc = combine(acc, v)
			}
			partials[si] = acc
			return nil
		})
	})
	err := ff.Run(ctx, ff.SourceFunc(len(spans), func(i int) int { return i }), farm, func(struct{}) error { return nil })
	if err != nil {
		var zero Out
		return zero, err
	}
	acc := id
	for _, p := range partials {
		acc = combine(acc, p)
	}
	return acc, nil
}

// DCConfig describes a divide-and-conquer computation over problems P with
// results R.
type DCConfig[P, R any] struct {
	// IsBase reports whether the problem is small enough to solve directly.
	IsBase func(P) bool
	// Solve solves a base-case problem.
	Solve func(P) (R, error)
	// Divide splits a non-base problem into subproblems.
	Divide func(P) []P
	// Conquer merges subproblem results (in Divide order).
	Conquer func([]R) (R, error)
}

// DivideAndConquer evaluates the D&C computation with bounded parallelism.
// Subproblems are solved by a worker pool fed through an unbounded local
// work list, so arbitrarily deep recursions cannot deadlock the pool.
func DivideAndConquer[P, R any](ctx context.Context, workers int, cfg DCConfig[P, R], problem P) (R, error) {
	var zero R
	if cfg.IsBase == nil || cfg.Solve == nil || cfg.Divide == nil || cfg.Conquer == nil {
		return zero, fmt.Errorf("parallel: DCConfig has nil fields")
	}
	if workers < 1 {
		workers = 1
	}
	if workers == 1 {
		return dcSeq(ctx, cfg, problem)
	}
	sem := make(chan struct{}, workers)
	return dcPar(ctx, cfg, problem, sem)
}

func dcSeq[P, R any](ctx context.Context, cfg DCConfig[P, R], p P) (R, error) {
	var zero R
	if err := ctx.Err(); err != nil {
		return zero, err
	}
	if cfg.IsBase(p) {
		return cfg.Solve(p)
	}
	subs := cfg.Divide(p)
	results := make([]R, len(subs))
	for i, sp := range subs {
		r, err := dcSeq(ctx, cfg, sp)
		if err != nil {
			return zero, err
		}
		results[i] = r
	}
	return cfg.Conquer(results)
}

// dcPar recursively forks subproblems when a worker slot is available,
// falling back to sequential evaluation otherwise (work-first semantics,
// like a nested fork/join with a bounded pool).
func dcPar[P, R any](ctx context.Context, cfg DCConfig[P, R], p P, sem chan struct{}) (R, error) {
	var zero R
	if err := ctx.Err(); err != nil {
		return zero, err
	}
	if cfg.IsBase(p) {
		return cfg.Solve(p)
	}
	subs := cfg.Divide(p)
	results := make([]R, len(subs))
	errs := make([]error, len(subs))
	done := make(chan int, len(subs))
	launched := 0
	for i, sp := range subs {
		select {
		case sem <- struct{}{}:
			launched++
			go func(i int, sp P) {
				defer func() { <-sem }()
				results[i], errs[i] = dcPar(ctx, cfg, sp, sem)
				done <- i
			}(i, sp)
		default:
			results[i], errs[i] = dcPar(ctx, cfg, sp, sem)
		}
	}
	for j := 0; j < launched; j++ {
		<-done
	}
	for _, err := range errs {
		if err != nil {
			return zero, err
		}
	}
	return cfg.Conquer(results)
}
