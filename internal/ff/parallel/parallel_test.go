package parallel

import (
	"context"
	"errors"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func TestGrains(t *testing.T) {
	tests := []struct {
		n, grain, workers int
		wantChunks        int
	}{
		{0, 0, 4, 0},
		{10, 3, 4, 4},
		{10, 10, 4, 1},
		{10, 100, 4, 1},
		{100, 0, 4, 100 / (100 / 32)}, // auto grain = 100/32 = 3 → 34 chunks
	}
	for _, tt := range tests {
		got := grains(tt.n, tt.grain, tt.workers)
		// Verify coverage regardless of chunk count.
		covered := 0
		last := 0
		for _, s := range got {
			if s.lo != last {
				t.Fatalf("grains(%d,%d,%d): gap at %d", tt.n, tt.grain, tt.workers, last)
			}
			covered += s.hi - s.lo
			last = s.hi
		}
		if covered != tt.n {
			t.Fatalf("grains(%d,%d,%d): covered %d", tt.n, tt.grain, tt.workers, covered)
		}
	}
}

func TestForCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 9} {
		const n = 1000
		var mu sync.Mutex
		seen := make([]bool, n)
		err := For(context.Background(), workers, n, 7, func(i int) error {
			mu.Lock()
			defer mu.Unlock()
			if seen[i] {
				return errors.New("index visited twice")
			}
			seen[i] = true
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, ok := range seen {
			if !ok {
				t.Fatalf("workers=%d: index %d not visited", workers, i)
			}
		}
	}
}

func TestForError(t *testing.T) {
	boom := errors.New("body boom")
	err := For(context.Background(), 4, 100, 1, func(i int) error {
		if i == 55 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
}

func TestForZeroIterations(t *testing.T) {
	called := false
	if err := For(context.Background(), 4, 0, 0, func(int) error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Fatal("body called for n=0")
	}
}

func TestMapOrderPreserved(t *testing.T) {
	in := make([]int, 500)
	for i := range in {
		in[i] = i
	}
	out, err := Map(context.Background(), 4, in, func(v int) (int, error) { return v * v, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapError(t *testing.T) {
	boom := errors.New("map boom")
	_, err := Map(context.Background(), 3, []int{1, 2, 3}, func(v int) (int, error) {
		if v == 2 {
			return 0, boom
		}
		return v, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
}

func TestReduceSum(t *testing.T) {
	in := make([]int, 10000)
	want := 0
	for i := range in {
		in[i] = i
		want += i
	}
	for _, workers := range []int{1, 2, 8} {
		got, err := Reduce(context.Background(), workers, in, 0, func(a, b int) int { return a + b })
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("workers=%d: sum = %d, want %d", workers, got, want)
		}
	}
}

func TestReduceEmpty(t *testing.T) {
	got, err := Reduce(context.Background(), 4, nil, 42, func(a, b int) int { return a + b })
	if err != nil || got != 42 {
		t.Fatalf("Reduce(empty) = (%d, %v), want (42, nil)", got, err)
	}
}

func TestReduceProperty_MatchesSequential(t *testing.T) {
	f := func(values []int32, workers uint8) bool {
		w := int(workers%8) + 1
		in := make([]int64, len(values))
		var want int64
		for i, v := range values {
			in[i] = int64(v)
			want += int64(v)
		}
		got, err := Reduce(context.Background(), w, in, 0, func(a, b int64) int64 { return a + b })
		return err == nil && got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMapReduce(t *testing.T) {
	in := []string{"a", "bb", "ccc", "dddd"}
	got, err := MapReduce(context.Background(), 3, in,
		func(s string) (int, error) { return len(s), nil },
		0, func(a, b int) int { return a + b })
	if err != nil {
		t.Fatal(err)
	}
	if got != 10 {
		t.Fatalf("got %d, want 10", got)
	}
}

func TestMapReduceError(t *testing.T) {
	boom := errors.New("mr boom")
	_, err := MapReduce(context.Background(), 2, []int{1, 2, 3},
		func(v int) (int, error) {
			if v == 3 {
				return 0, boom
			}
			return v, nil
		},
		0, func(a, b int) int { return a + b })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
}

func mergesortConfig() DCConfig[[]int, []int] {
	return DCConfig[[]int, []int]{
		IsBase: func(p []int) bool { return len(p) <= 8 },
		Solve: func(p []int) ([]int, error) {
			out := append([]int(nil), p...)
			sort.Ints(out)
			return out, nil
		},
		Divide: func(p []int) [][]int {
			mid := len(p) / 2
			return [][]int{p[:mid], p[mid:]}
		},
		Conquer: func(rs [][]int) ([]int, error) {
			a, b := rs[0], rs[1]
			out := make([]int, 0, len(a)+len(b))
			i, j := 0, 0
			for i < len(a) && j < len(b) {
				if a[i] <= b[j] {
					out = append(out, a[i])
					i++
				} else {
					out = append(out, b[j])
					j++
				}
			}
			out = append(out, a[i:]...)
			out = append(out, b[j:]...)
			return out, nil
		},
	}
}

func TestDivideAndConquerMergesort(t *testing.T) {
	in := make([]int, 1000)
	for i := range in {
		in[i] = (i * 7919) % 1000
	}
	for _, workers := range []int{1, 2, 4} {
		got, err := DivideAndConquer(context.Background(), workers, mergesortConfig(), in)
		if err != nil {
			t.Fatal(err)
		}
		if !sort.IntsAreSorted(got) {
			t.Fatalf("workers=%d: result not sorted", workers)
		}
		if len(got) != len(in) {
			t.Fatalf("workers=%d: len %d, want %d", workers, len(got), len(in))
		}
	}
}

func TestDivideAndConquerProperty_SortsAnything(t *testing.T) {
	f := func(values []int, workers uint8) bool {
		w := int(workers%4) + 1
		got, err := DivideAndConquer(context.Background(), w, mergesortConfig(), values)
		if err != nil {
			return false
		}
		if len(got) != len(values) {
			return false
		}
		return sort.IntsAreSorted(got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDivideAndConquerNilConfig(t *testing.T) {
	_, err := DivideAndConquer(context.Background(), 2, DCConfig[int, int]{}, 1)
	if err == nil {
		t.Fatal("want error for nil config fields")
	}
}

func BenchmarkParallelForGrain1(b *testing.B)    { benchFor(b, 1) }
func BenchmarkParallelForGrain64(b *testing.B)   { benchFor(b, 64) }
func BenchmarkParallelForGrainAuto(b *testing.B) { benchFor(b, 0) }

func benchFor(b *testing.B, grain int) {
	sink := make([]int64, 256)
	err := For(context.Background(), 4, b.N, grain, func(i int) error {
		sink[i%256] += int64(i)
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}
