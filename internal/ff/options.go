package ff

// Policy selects how a Farm dispatches tasks to workers.
type Policy int

const (
	// OnDemand lets idle workers steal the next task from a shared
	// short queue: the auto-balancing policy, best for tasks with uneven
	// service times (FastFlow's on-demand scheduling).
	OnDemand Policy = iota
	// RoundRobin statically cycles tasks over per-worker queues, the
	// lowest-overhead policy for even workloads.
	RoundRobin
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case OnDemand:
		return "on-demand"
	case RoundRobin:
		return "round-robin"
	default:
		return "unknown"
	}
}

type config struct {
	queueDepth int
	policy     Policy
	ordered    bool
	spscLinks  bool
}

func newConfig(opts []Option) config {
	cfg := config{queueDepth: 1, policy: OnDemand}
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// Option configures a pattern.
type Option func(*config)

// WithQueueDepth sets the capacity of the internal channels connecting
// pattern components. Depth 1 gives the tightest load balancing; larger
// depths trade balance for throughput on fine-grained streams.
func WithQueueDepth(n int) Option {
	return func(c *config) {
		if n < 0 {
			n = 0
		}
		c.queueDepth = n
	}
}

// WithPolicy selects the farm scheduling policy.
func WithPolicy(p Policy) Option {
	return func(c *config) { c.policy = p }
}

// WithOrdered makes the farm collector release results in input order
// (FastFlow's ofarm). Each task may emit any number of outputs; the outputs
// of task k are released, contiguously, before those of task k+1.
func WithOrdered() Option {
	return func(c *config) { c.ordered = true }
}

// WithSPSCLinks replaces the native channels between the farm dispatcher and
// the workers with the lock-free SPSC queues from the spsc subpackage.
// Only meaningful with the RoundRobin policy, where every link is
// single-producer/single-consumer by construction.
func WithSPSCLinks() Option {
	return func(c *config) { c.spscLinks = true }
}
