package lease

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"cwcflow/internal/chaos"
)

// fakeClock is a settable clock shared by the managers in a test.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newClock() *fakeClock { return &fakeClock{t: time.Unix(1000, 0)} }

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func manager(t *testing.T, dir, owner string, clk *fakeClock, in *chaos.Injector) *Manager {
	t.Helper()
	m, err := NewManager(Options{
		Dir: dir, Owner: owner, URL: "http://" + owner + ".test",
		TTL: 10 * time.Second, Now: clk.now, Chaos: in,
	})
	if err != nil {
		t.Fatalf("NewManager(%s): %v", owner, err)
	}
	return m
}

func TestAcquireRenewReleaseLifecycle(t *testing.T) {
	dir, clk := t.TempDir(), newClock()
	a := manager(t, dir, "a", clk, nil)

	l, err := a.Acquire("job-a-000001")
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	if l.Epoch != 1 || l.Owner != "a" || l.URL != "http://a.test" {
		t.Fatalf("fresh lease = %+v", l)
	}
	if err := a.Check("job-a-000001"); err != nil {
		t.Fatalf("Check while held: %v", err)
	}

	clk.advance(5 * time.Second)
	r, err := a.Renew("job-a-000001")
	if err != nil {
		t.Fatalf("Renew: %v", err)
	}
	if r.Epoch != 1 || r.Expires <= l.Expires {
		t.Fatalf("renewed lease = %+v (was %+v)", r, l)
	}

	a.Release("job-a-000001")
	if err := a.Check("job-a-000001"); err == nil {
		t.Fatal("Check passed after Release")
	}
	disk, ok, err := a.Get("job-a-000001")
	if err != nil || !ok {
		t.Fatalf("Get after Release: %v %v", ok, err)
	}
	if !disk.Released || disk.Owner != "a" {
		t.Fatalf("released lease should keep owner: %+v", disk)
	}
}

func TestLiveForeignLeaseIsHeld(t *testing.T) {
	dir, clk := t.TempDir(), newClock()
	a, b := manager(t, dir, "a", clk, nil), manager(t, dir, "b", clk, nil)

	if _, err := a.Acquire("job-x"); err != nil {
		t.Fatalf("a.Acquire: %v", err)
	}
	_, err := b.Acquire("job-x")
	var held *HeldError
	if !errors.As(err, &held) {
		t.Fatalf("b.Acquire = %v, want *HeldError", err)
	}
	if held.Lease.Owner != "a" || held.Lease.URL != "http://a.test" {
		t.Fatalf("HeldError lease = %+v", held.Lease)
	}
}

func TestStealAfterExpiryBumpsEpochAndFencesZombie(t *testing.T) {
	dir, clk := t.TempDir(), newClock()
	a, b := manager(t, dir, "a", clk, nil), manager(t, dir, "b", clk, nil)

	if _, err := a.Acquire("job-x"); err != nil {
		t.Fatalf("a.Acquire: %v", err)
	}
	clk.advance(11 * time.Second) // past a's TTL

	// a fences itself by its own clock before b even steals.
	if err := a.Check("job-x"); err == nil {
		t.Fatal("a.Check passed after expiry")
	}

	stolen, err := b.Acquire("job-x")
	if err != nil {
		t.Fatalf("b.Acquire after expiry: %v", err)
	}
	if stolen.Epoch != 2 || stolen.Owner != "b" {
		t.Fatalf("stolen lease = %+v, want epoch 2 owner b", stolen)
	}

	// The zombie's renew observes the advanced epoch and loses.
	if _, err := a.Renew("job-x"); !errors.Is(err, ErrLost) {
		t.Fatalf("a.Renew = %v, want ErrLost", err)
	}
	if _, ok := a.Held("job-x"); ok {
		t.Fatal("lost lease still in a's held set")
	}
}

func TestSelfReacquireAfterRestartBumpsEpoch(t *testing.T) {
	dir, clk := t.TempDir(), newClock()
	a := manager(t, dir, "a", clk, nil)
	if _, err := a.Acquire("job-x"); err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	// "Restart": a fresh manager with the same owner id and an empty
	// held set must re-acquire its own live lease at a higher epoch.
	a2 := manager(t, dir, "a", clk, nil)
	l, err := a2.Acquire("job-x")
	if err != nil {
		t.Fatalf("self re-acquire: %v", err)
	}
	if l.Epoch != 2 {
		t.Fatalf("self re-acquire epoch = %d, want 2", l.Epoch)
	}
}

func TestReleasedLeaseIsImmediatelyStealable(t *testing.T) {
	dir, clk := t.TempDir(), newClock()
	a, b := manager(t, dir, "a", clk, nil), manager(t, dir, "b", clk, nil)
	if _, err := a.Acquire("job-x"); err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	a.Release("job-x")
	l, err := b.Acquire("job-x")
	if err != nil {
		t.Fatalf("steal of released lease: %v", err)
	}
	if l.Epoch != 2 || l.Owner != "b" {
		t.Fatalf("lease = %+v", l)
	}
}

func TestChaosEarlyExpirySteal(t *testing.T) {
	dir, clk := t.TempDir(), newClock()
	in := chaos.New(1)
	in.Arm(chaos.LeaseExpireEarly, chaos.Rule{Prob: 1})
	a, b := manager(t, dir, "a", clk, nil), manager(t, dir, "b", clk, in)

	if _, err := a.Acquire("job-x"); err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	ls, err := b.List()
	if err != nil || len(ls) != 1 {
		t.Fatalf("List = %v, %v", ls, err)
	}
	if !b.Stealable(ls[0]) {
		t.Fatal("chaos-armed manager should see the live lease as stealable")
	}
	stolen, err := b.Acquire("job-x")
	if err != nil {
		t.Fatalf("chaos steal: %v", err)
	}
	if stolen.Epoch != 2 {
		t.Fatalf("chaos steal epoch = %d, want 2", stolen.Epoch)
	}
	// a is still alive and unexpired by its own clock, but its next
	// renew loses to the advanced epoch.
	if _, err := a.Renew("job-x"); !errors.Is(err, ErrLost) {
		t.Fatalf("zombie Renew = %v, want ErrLost", err)
	}
}

// Concurrent acquires of an expired lease must elect exactly one new
// owner per epoch (the O_EXCL lock file is the arbiter).
func TestConcurrentStealElectsOneOwner(t *testing.T) {
	dir, clk := t.TempDir(), newClock()
	a := manager(t, dir, "a", clk, nil)
	if _, err := a.Acquire("job-x"); err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	clk.advance(time.Minute)

	const n = 8
	wins := make([]bool, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		m := manager(t, dir, "thief-"+string(rune('a'+i)), clk, nil)
		wg.Add(1)
		go func(i int, m *Manager) {
			defer wg.Done()
			if l, err := m.Acquire("job-x"); err == nil && l.Epoch == 2 {
				wins[i] = true
			}
		}(i, m)
	}
	wg.Wait()
	var won int
	for _, w := range wins {
		if w {
			won++
		}
	}
	if won != 1 {
		t.Fatalf("%d thieves acquired epoch 2, want exactly 1", won)
	}
}

func TestStaleLockIsBroken(t *testing.T) {
	dir, clk := t.TempDir(), newClock()
	m, err := NewManager(Options{Dir: dir, Owner: "a", TTL: 50 * time.Millisecond, Now: clk.now})
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	// A crashed process left a lock behind; backdate it past TTL+1s.
	lock := filepath.Join(dir, "job-x.lock")
	if err := os.WriteFile(lock, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-2 * time.Second)
	if err := os.Chtimes(lock, old, old); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Acquire("job-x"); err != nil {
		t.Fatalf("Acquire should break the stale lock: %v", err)
	}
}

func TestValidNameRejectsPathEscapes(t *testing.T) {
	dir, clk := t.TempDir(), newClock()
	a := manager(t, dir, "a", clk, nil)
	for _, bad := range []string{"", "..", "a/b", "a\\b", "job id", "x\x00y"} {
		if _, err := a.Acquire(bad); err == nil {
			t.Fatalf("Acquire(%q) should fail", bad)
		}
	}
	if _, err := NewManager(Options{Dir: dir, Owner: "a/b", TTL: time.Second}); err == nil {
		t.Fatal("NewManager with path-separator owner should fail")
	}
}

func TestReleaseHandoffStampsPointer(t *testing.T) {
	dir, clk := t.TempDir(), newClock()
	a := manager(t, dir, "a", clk, nil)
	if _, err := a.Acquire("job-a-000001"); err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	a.ReleaseHandoff("job-a-000001", Handoff{To: "b", Windows: 7})
	disk, ok, err := a.Get("job-a-000001")
	if err != nil || !ok {
		t.Fatalf("Get after ReleaseHandoff: %v %v", ok, err)
	}
	if !disk.Released || disk.Owner != "a" {
		t.Fatalf("lease after handoff = %+v, want released with owner kept", disk)
	}
	h := disk.Handoff
	if h == nil || h.To != "b" || h.Windows != 7 {
		t.Fatalf("handoff pointer = %+v, want to=b windows=7", h)
	}
	if h.At != clk.now().UnixNano() {
		t.Fatalf("handoff stamped at %d, want release time %d", h.At, clk.now().UnixNano())
	}
	if err := a.Check("job-a-000001"); err == nil {
		t.Fatal("Check passed after ReleaseHandoff")
	}
}

func TestTargetedHandoffReservesLeaseForOneTTL(t *testing.T) {
	dir, clk := t.TempDir(), newClock()
	a := manager(t, dir, "a", clk, nil)
	b := manager(t, dir, "b", clk, nil)
	c := manager(t, dir, "c", clk, nil)
	if _, err := a.Acquire("job-a-000001"); err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	a.ReleaseHandoff("job-a-000001", Handoff{To: "b", Windows: 3})
	l, _, _ := a.Get("job-a-000001")

	// Within the reservation window only the target may take the lease.
	if c.Stealable(l) {
		t.Fatal("third party could steal a lease reserved for b")
	}
	if _, err := c.Acquire("job-a-000001"); err == nil {
		t.Fatal("third-party Acquire succeeded inside the reservation window")
	}
	if !b.Stealable(l) {
		t.Fatal("target b cannot take its own reserved handoff")
	}
	got, err := b.Acquire("job-a-000001")
	if err != nil {
		t.Fatalf("target Acquire: %v", err)
	}
	if got.Epoch != 2 {
		t.Fatalf("adoption epoch %d, want 2", got.Epoch)
	}
	if got.Handoff != nil {
		t.Fatalf("adopted lease still carries a handoff pointer: %+v", got.Handoff)
	}
}

func TestTargetedHandoffDegradesToFailoverAfterTTL(t *testing.T) {
	dir, clk := t.TempDir(), newClock()
	a := manager(t, dir, "a", clk, nil)
	c := manager(t, dir, "c", clk, nil)
	if _, err := a.Acquire("job-a-000001"); err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	a.ReleaseHandoff("job-a-000001", Handoff{To: "b", Windows: 3})

	// The requester "died" before adopting: once the reservation lapses
	// (one TTL past release), anyone may take the job — ordinary failover.
	clk.advance(10*time.Second + time.Nanosecond)
	l, _, _ := c.Get("job-a-000001")
	if !c.Stealable(l) {
		t.Fatal("lapsed reservation still blocks third parties")
	}
	got, err := c.Acquire("job-a-000001")
	if err != nil {
		t.Fatalf("Acquire after reservation lapse: %v", err)
	}
	if got.Epoch != 2 || got.Owner != "c" {
		t.Fatalf("failover acquire = %+v, want owner c at epoch 2", got)
	}
}

func TestUntargetedHandoffIsImmediatelyStealable(t *testing.T) {
	dir, clk := t.TempDir(), newClock()
	a := manager(t, dir, "a", clk, nil)
	c := manager(t, dir, "c", clk, nil)
	if _, err := a.Acquire("job-a-000001"); err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	a.ReleaseHandoff("job-a-000001", Handoff{Windows: 5})
	l, _, _ := c.Get("job-a-000001")
	if !c.Stealable(l) {
		t.Fatal("untargeted handoff should be adoptable by anyone at once")
	}
}

func TestReleaseHandoffOnUnheldLeaseIsNoOp(t *testing.T) {
	dir, clk := t.TempDir(), newClock()
	a := manager(t, dir, "a", clk, nil)
	b := manager(t, dir, "b", clk, nil)
	if _, err := a.Acquire("job-a-000001"); err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	// B never held the lease: its ReleaseHandoff must not touch A's claim.
	b.ReleaseHandoff("job-a-000001", Handoff{To: "b", Windows: 9})
	disk, _, _ := a.Get("job-a-000001")
	if disk.Released || disk.Handoff != nil || disk.Owner != "a" {
		t.Fatalf("foreign ReleaseHandoff mutated the lease: %+v", disk)
	}

	// And a steal that already bumped the epoch fences the old owner's
	// late handoff release the same way it fences Release.
	clk.advance(11 * time.Second)
	if _, err := b.Acquire("job-a-000001"); err != nil {
		t.Fatalf("steal: %v", err)
	}
	a.ReleaseHandoff("job-a-000001", Handoff{Windows: 1})
	disk, _, _ = a.Get("job-a-000001")
	if disk.Released || disk.Owner != "b" || disk.Epoch != 2 {
		t.Fatalf("stale ReleaseHandoff clobbered the thief's lease: %+v", disk)
	}
}

func TestAcquireDigestSurvivesRenewAndRelease(t *testing.T) {
	dir := t.TempDir()
	clk := newClock()
	a := manager(t, dir, "a", clk, nil)

	l, err := a.AcquireDigest("job-a-000001", "cafe0123")
	if err != nil {
		t.Fatalf("AcquireDigest: %v", err)
	}
	if l.Digest != "cafe0123" {
		t.Fatalf("acquired lease digest %q, want cafe0123", l.Digest)
	}
	// Renew copies the disk lease: the digest must ride along.
	clk.advance(3 * time.Second)
	if l, err = a.Renew("job-a-000001"); err != nil {
		t.Fatalf("Renew: %v", err)
	}
	if l.Digest != "cafe0123" {
		t.Fatalf("renewed lease digest %q, want cafe0123", l.Digest)
	}
	// Release keeps the file and mutates it in place: digest preserved,
	// so a released lease still names the journal AND the content.
	a.Release("job-a-000001")
	disk, ok, err := a.Get("job-a-000001")
	if err != nil || !ok {
		t.Fatalf("Get after release: ok=%v err=%v", ok, err)
	}
	if !disk.Released || disk.Digest != "cafe0123" {
		t.Fatalf("released lease = %+v, want released with digest intact", disk)
	}
	// A steal (fresh Acquire without a digest) clears it: the new owner
	// re-records the digest itself when it resumes the job.
	clk.advance(11 * time.Second)
	b := manager(t, dir, "b", clk, nil)
	stolen, err := b.AcquireDigest("job-a-000001", "cafe0123")
	if err != nil {
		t.Fatalf("steal: %v", err)
	}
	if stolen.Epoch != 2 || stolen.Digest != "cafe0123" {
		t.Fatalf("stolen lease = %+v, want epoch 2 with digest", stolen)
	}
}
