// Package lease implements file-based job-ownership leases for a
// replicated cwc-serve tier. N replicas share one store directory;
// exactly one replica may drive a given job at a time, and that claim
// is a lease: a small JSON file per job carrying the owner's replica
// id, a monotonically increasing fencing epoch, an expiry deadline, and
// the owner's advertised URL (so non-owners can redirect or proxy).
//
// Protocol:
//
//   - Acquire creates the lease at epoch 1, or STEALS it at epoch+1
//     when the current lease is released, expired, or already ours
//     (self re-acquire after a restart). A live lease held by another
//     owner returns *HeldError.
//   - Renew extends the expiry of a lease we hold. If the on-disk
//     epoch has advanced — another replica stole it — Renew returns
//     ErrLost and drops the lease from the held set; the caller must
//     stop writing for that job immediately.
//   - Release marks the lease released but keeps the file (owner
//     intact), so other replicas can still find the last owner's
//     journal for terminal jobs. ReleaseHandoff is the voluntary
//     variant: the released lease carries a handoff pointer (durable
//     window frontier, optional target replica) so a peer adopts the
//     job immediately instead of waiting out the TTL; a targeted
//     pointer reserves the lease for its requester for one TTL, after
//     which ordinary failover applies.
//   - Check is the store-side fence: it succeeds only while the lease
//     is in the held set AND unexpired by the local clock. A stalled
//     owner whose lease has lapsed is fenced by its own clock before
//     any thief is even observed — the classic lease discipline.
//
// Cross-process atomicity uses an O_EXCL .lock file per job around a
// read-check-write-rename cycle; locks abandoned by a crashed process
// are broken after they go stale. Mutations are temp-file + rename, so
// readers never observe a torn lease.
package lease

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"cwcflow/internal/chaos"
	"cwcflow/internal/obs"
)

// Metrics is the optional counter set a Manager reports into. Every
// field is nil-safe (obs semantics), so a zero Metrics disables
// instrumentation without any call-site conditionals.
type Metrics struct {
	Acquire        *obs.Counter // fresh leases taken at epoch 1
	Steal          *obs.Counter // leases taken over at epoch > 1
	Renew          *obs.Counter // successful renewals
	RenewLost      *obs.Counter // renewals that found the epoch advanced
	Release        *obs.Counter // plain releases
	HandoffRelease *obs.Counter // voluntary releases carrying a handoff pointer
}

// ErrLost reports that the lease epoch advanced under us: another
// replica stole the job, and every further write for it must stop.
var ErrLost = errors.New("lease lost: epoch advanced by another owner")

// HeldError is returned by Acquire when the lease is live under
// another owner; it carries that lease so callers can redirect.
type HeldError struct{ Lease Lease }

func (e *HeldError) Error() string {
	return fmt.Sprintf("lease for %s held by %s at epoch %d", e.Lease.Job, e.Lease.Owner, e.Lease.Epoch)
}

// Lease is the on-disk record, one file per job under <dir>/<job>.lease.
type Lease struct {
	Job      string `json:"job"`
	Owner    string `json:"owner"`
	Epoch    uint64 `json:"epoch"`
	Expires  int64  `json:"expires_unix_nano"`
	URL      string `json:"url,omitempty"`
	Released bool   `json:"released,omitempty"`
	// Digest is the tenant-scoped content address of the job's canonical
	// spec (the serve layer's cache key), recorded at acquire so peers can
	// route a matching submission to the owner (in-flight attach) instead
	// of duplicating the simulation. Renew and Release preserve it; empty
	// when the owner runs without a cache.
	Digest string `json:"digest,omitempty"`
	// Handoff, when non-nil on a released lease, is a voluntary-transfer
	// pointer: the owner drained or honoured a rebalance request rather
	// than crashing, and peers may adopt immediately. Acquire writes a
	// fresh lease, so adoption clears it.
	Handoff *Handoff `json:"handoff,omitempty"`
}

// Handoff is the pointer a voluntarily releasing owner leaves on its
// lease. The lease's Owner field already names the journal holding the
// job's freshest state; the pointer adds how far that journal durably
// got and, for rebalance transfers, who the handoff is reserved for.
type Handoff struct {
	// To, when non-empty, names the replica this handoff is reserved
	// for: other replicas leave the lease alone for one TTL after At, so
	// the requester adopts at epoch+1 without racing the whole tier. A
	// requester that dies before adopting never strands the job — once
	// the reservation lapses, ordinary failover applies.
	To string `json:"to,omitempty"`
	// Windows is the owner's durable window frontier at release, fsynced
	// before the lease was written: an adopter peeking fewer windows is
	// reading a stale journal and should re-read.
	Windows int `json:"windows"`
	// At is the release time on the owner's clock (unix nanoseconds);
	// the reservation for To lapses one TTL after it.
	At int64 `json:"at_unix_nano"`
}

// ExpiresAt returns the expiry deadline as a time.
func (l Lease) ExpiresAt() time.Time { return time.Unix(0, l.Expires) }

// Options configures a Manager.
type Options struct {
	// Dir is the shared lease directory (created if missing).
	Dir string
	// Owner is this replica's id; it must be non-empty and path-safe.
	Owner string
	// URL is this replica's advertised base URL, stored in every lease
	// it takes so non-owners can redirect/proxy (may be empty).
	URL string
	// TTL is the lease duration granted by Acquire and Renew.
	TTL time.Duration
	// Now overrides the clock (tests); defaults to time.Now.
	Now func() time.Time
	// Chaos, when armed with LeaseExpireEarly, makes this manager
	// treat other owners' live leases as expired (premature steal).
	Chaos *chaos.Injector
	// Metrics receives lease-operation counts (zero value = no-op).
	Metrics Metrics
}

// Manager grants, renews, and releases leases on behalf of one
// replica, and tracks the set it currently holds for fencing.
type Manager struct {
	dir     string
	owner   string
	url     string
	ttl     time.Duration
	now     func() time.Time
	chaos   *chaos.Injector
	metrics Metrics

	mu   sync.Mutex
	held map[string]Lease
}

// NewManager validates opts, creates the lease directory, and returns
// a manager holding no leases.
func NewManager(opts Options) (*Manager, error) {
	if err := validName(opts.Owner); err != nil {
		return nil, fmt.Errorf("lease owner: %w", err)
	}
	if opts.TTL <= 0 {
		return nil, fmt.Errorf("lease TTL must be positive, got %v", opts.TTL)
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	now := opts.Now
	if now == nil {
		now = time.Now
	}
	return &Manager{
		dir:     opts.Dir,
		owner:   opts.Owner,
		url:     opts.URL,
		ttl:     opts.TTL,
		now:     now,
		chaos:   opts.Chaos,
		metrics: opts.Metrics,
		held:    make(map[string]Lease),
	}, nil
}

// Owner returns this manager's replica id.
func (m *Manager) Owner() string { return m.owner }

// TTL returns the lease duration this manager grants.
func (m *Manager) TTL() time.Duration { return m.ttl }

// Acquire takes the lease for job: fresh at epoch 1, or stolen at
// epoch+1 when the current lease is released, expired (possibly by an
// armed LeaseExpireEarly chaos point), or our own. A live foreign
// lease returns *HeldError.
func (m *Manager) Acquire(job string) (Lease, error) {
	return m.AcquireDigest(job, "")
}

// AcquireDigest is Acquire recording the job's spec digest on the lease,
// so non-owning replicas can redirect a submission with the same digest
// to the owner for an in-flight attach.
func (m *Manager) AcquireDigest(job, digest string) (Lease, error) {
	if err := validName(job); err != nil {
		return Lease{}, fmt.Errorf("lease job: %w", err)
	}
	var out Lease
	err := m.withLock(job, func() error {
		cur, ok, err := readLease(m.path(job))
		if err != nil {
			return err
		}
		now := m.now()
		epoch := uint64(1)
		if ok {
			if !m.stealable(cur, now) {
				return &HeldError{Lease: cur}
			}
			epoch = cur.Epoch + 1
		}
		out = Lease{
			Job:     job,
			Owner:   m.owner,
			Epoch:   epoch,
			Expires: now.Add(m.ttl).UnixNano(),
			URL:     m.url,
			Digest:  digest,
		}
		return m.write(out)
	})
	if err != nil {
		return Lease{}, err
	}
	if out.Epoch == 1 {
		m.metrics.Acquire.Inc()
	} else {
		m.metrics.Steal.Inc()
	}
	m.mu.Lock()
	m.held[job] = out
	m.mu.Unlock()
	return out, nil
}

// stealable reports whether cur may be taken over right now.
func (m *Manager) stealable(cur Lease, now time.Time) bool {
	if cur.Owner == m.owner {
		return true
	}
	if cur.Released {
		// A targeted handoff reserves the released lease for its
		// requester for one TTL; once that lapses (the requester died
		// before adopting) it degrades to ordinary failover and anyone
		// may take it.
		if h := cur.Handoff; h != nil && h.To != "" && h.To != m.owner &&
			now.UnixNano() < h.At+int64(m.ttl) {
			return false
		}
		return true
	}
	if now.UnixNano() >= cur.Expires {
		return true
	}
	return m.chaos.Fire(chaos.LeaseExpireEarly)
}

// Renew extends the expiry of a held lease. ErrLost means the epoch
// advanced (or the lease vanished): the job belongs to someone else
// now and has been dropped from the held set. Other errors are
// transient I/O failures; the lease stays held and will fence itself
// through Check when the old expiry lapses.
func (m *Manager) Renew(job string) (Lease, error) {
	m.mu.Lock()
	cur, ok := m.held[job]
	m.mu.Unlock()
	if !ok {
		return Lease{}, ErrLost
	}
	var out Lease
	err := m.withLock(job, func() error {
		disk, ok, err := readLease(m.path(job))
		if err != nil {
			return err
		}
		if !ok || disk.Owner != m.owner || disk.Epoch != cur.Epoch || disk.Released {
			return ErrLost
		}
		out = disk
		out.Expires = m.now().Add(m.ttl).UnixNano()
		return m.write(out)
	})
	if errors.Is(err, ErrLost) {
		m.metrics.RenewLost.Inc()
		m.mu.Lock()
		delete(m.held, job)
		m.mu.Unlock()
		return Lease{}, ErrLost
	}
	if err != nil {
		return Lease{}, err
	}
	m.metrics.Renew.Inc()
	m.mu.Lock()
	m.held[job] = out
	m.mu.Unlock()
	return out, nil
}

// Release drops a held lease: the file is marked released but kept, so
// the owner id keeps pointing at the journal that holds the job's
// authoritative history. Releasing a lease we no longer hold is a
// no-op.
func (m *Manager) Release(job string) {
	m.mu.Lock()
	cur, ok := m.held[job]
	delete(m.held, job)
	m.mu.Unlock()
	if !ok {
		return
	}
	m.metrics.Release.Inc()
	_ = m.withLock(job, func() error {
		disk, ok, err := readLease(m.path(job))
		if err != nil || !ok || disk.Owner != m.owner || disk.Epoch != cur.Epoch {
			return err
		}
		disk.Released = true
		return m.write(disk)
	})
}

// ReleaseHandoff is Release with a voluntary-transfer pointer: the
// released lease carries h (stamped with the release time), so peers
// adopt the job immediately instead of waiting out the TTL, and a
// non-empty h.To gets first claim for one TTL. Releasing a lease we no
// longer hold is a no-op, exactly like Release — when a steal races the
// handoff, whichever epoch landed on disk wins.
func (m *Manager) ReleaseHandoff(job string, h Handoff) {
	m.mu.Lock()
	cur, ok := m.held[job]
	delete(m.held, job)
	m.mu.Unlock()
	if !ok {
		return
	}
	m.metrics.HandoffRelease.Inc()
	h.At = m.now().UnixNano()
	_ = m.withLock(job, func() error {
		disk, ok, err := readLease(m.path(job))
		if err != nil || !ok || disk.Owner != m.owner || disk.Epoch != cur.Epoch {
			return err
		}
		disk.Released = true
		disk.Handoff = &h
		return m.write(disk)
	})
}

// Check is the store fence: nil only while the lease for job is held
// and unexpired by the local clock.
func (m *Manager) Check(job string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	cur, ok := m.held[job]
	if !ok {
		return fmt.Errorf("lease for %s not held by %s", job, m.owner)
	}
	if m.now().UnixNano() >= cur.Expires {
		return fmt.Errorf("lease for %s expired at epoch %d (fenced pending renewal)", job, cur.Epoch)
	}
	return nil
}

// Held returns the lease for job from the held set, if present.
func (m *Manager) Held(job string) (Lease, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	l, ok := m.held[job]
	return l, ok
}

// HeldJobs returns the job ids of every held lease.
func (m *Manager) HeldJobs() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	jobs := make([]string, 0, len(m.held))
	for j := range m.held {
		jobs = append(jobs, j)
	}
	return jobs
}

// Get reads the current on-disk lease for job.
func (m *Manager) Get(job string) (Lease, bool, error) {
	if err := validName(job); err != nil {
		return Lease{}, false, err
	}
	return readLease(m.path(job))
}

// List reads every lease in the directory.
func (m *Manager) List() ([]Lease, error) {
	ents, err := os.ReadDir(m.dir)
	if err != nil {
		return nil, err
	}
	var out []Lease
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".lease") {
			continue
		}
		l, ok, err := readLease(filepath.Join(m.dir, e.Name()))
		if err != nil || !ok {
			continue // torn/vanished mid-scan; next tick sees it
		}
		out = append(out, l)
	}
	return out, nil
}

// Stealable reports whether a lease listed by List may be taken over
// by this manager right now (never for our own leases; Acquire is the
// self re-acquire path).
func (m *Manager) Stealable(l Lease) bool {
	if l.Owner == m.owner {
		return false
	}
	return m.stealable(l, m.now())
}

func (m *Manager) path(job string) string { return filepath.Join(m.dir, job+".lease") }

// withLock runs f under the per-job O_EXCL lock file. A lock left
// behind by a crashed process is broken once it is clearly stale.
func (m *Manager) withLock(job string, f func() error) error {
	lock := filepath.Join(m.dir, job+".lock")
	for i := 0; ; i++ {
		fh, err := os.OpenFile(lock, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err == nil {
			fh.Close()
			break
		}
		if !errors.Is(err, fs.ErrExist) {
			return err
		}
		// Staleness uses the real clock: lock lifetimes are bounded by
		// the critical section below, not by the (fakeable) lease clock.
		if fi, serr := os.Stat(lock); serr == nil && time.Since(fi.ModTime()) > m.ttl+time.Second {
			os.Remove(lock)
			continue
		}
		if i > 500 {
			return fmt.Errorf("lease lock for %s contended too long", job)
		}
		time.Sleep(2 * time.Millisecond)
	}
	defer os.Remove(lock)
	return f()
}

// write persists l atomically (temp file + fsync + rename).
func (m *Manager) write(l Lease) error {
	data, err := json.Marshal(l)
	if err != nil {
		return err
	}
	tmp := m.path(l.Job) + ".tmp"
	fh, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := fh.Write(data); err != nil {
		fh.Close()
		os.Remove(tmp)
		return err
	}
	if err := fh.Sync(); err != nil {
		fh.Close()
		os.Remove(tmp)
		return err
	}
	if err := fh.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, m.path(l.Job))
}

// readLease returns (lease, true) when the file exists and parses;
// (zero, false) when it does not exist.
func readLease(path string) (Lease, bool, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return Lease{}, false, nil
	}
	if err != nil {
		return Lease{}, false, err
	}
	var l Lease
	if err := json.Unmarshal(data, &l); err != nil {
		return Lease{}, false, fmt.Errorf("lease file %s corrupt: %w", path, err)
	}
	return l, true, nil
}

// validName accepts the job-id / replica-id character set; anything
// else could escape the lease directory.
func validName(s string) error {
	if s == "" || len(s) > 128 {
		return fmt.Errorf("name %q must be 1..128 chars", s)
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			return fmt.Errorf("name %q contains %q; allowed: [A-Za-z0-9._-]", s, c)
		}
	}
	if s == "." || s == ".." {
		return fmt.Errorf("name %q is reserved", s)
	}
	return nil
}
