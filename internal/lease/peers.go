package lease

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// PeerInfo is one replica's heartbeat in the shared peer directory: its
// identity, client-reachable URL, and the load signals the tier's
// rebalancer and submit forwarder act on.
type PeerInfo struct {
	ID  string `json:"id"`
	URL string `json:"url,omitempty"`
	// Jobs is how many job leases the replica held at the beat.
	Jobs int `json:"jobs"`
	// Draining marks a replica that has stopped admission and is handing
	// its jobs off; peers neither redirect submissions to it nor request
	// rebalances from it.
	Draining bool  `json:"draining,omitempty"`
	At       int64 `json:"at_unix_nano"`
}

// PeerDirectory is the tier's membership and load view: one JSON
// heartbeat file per replica under <dir>, rewritten atomically at the
// lease-renew cadence. It is advisory only — no fsync, no locks; a
// stale or torn entry is skipped by List, and correctness never depends
// on it (job ownership is always arbitrated by the lease files).
type PeerDirectory struct {
	dir string
	id  string
}

// NewPeerDirectory creates the directory and returns a handle
// publishing heartbeats as replica id.
func NewPeerDirectory(dir, id string) (*PeerDirectory, error) {
	if err := validName(id); err != nil {
		return nil, fmt.Errorf("peer id: %w", err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &PeerDirectory{dir: dir, id: id}, nil
}

func (d *PeerDirectory) path(id string) string { return filepath.Join(d.dir, id+".peer") }

// Announce publishes this replica's heartbeat (temp file + rename, so a
// concurrent List never reads a torn entry). The ID and timestamp are
// stamped here; callers fill in the load fields.
func (d *PeerDirectory) Announce(info PeerInfo) error {
	info.ID = d.id
	info.At = time.Now().UnixNano()
	data, err := json.Marshal(info)
	if err != nil {
		return err
	}
	tmp := d.path(d.id) + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, d.path(d.id))
}

// List returns every heartbeat no older than maxAge (this replica's
// own included), sorted by id. Unreadable or corrupt entries are
// skipped — a dying peer must not break the survivors' view.
func (d *PeerDirectory) List(maxAge time.Duration) ([]PeerInfo, error) {
	ents, err := os.ReadDir(d.dir)
	if err != nil {
		return nil, err
	}
	cutoff := time.Now().Add(-maxAge).UnixNano()
	var out []PeerInfo
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".peer") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(d.dir, e.Name()))
		if err != nil {
			continue
		}
		var p PeerInfo
		if json.Unmarshal(data, &p) != nil || p.ID == "" || p.At < cutoff {
			continue
		}
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// Remove deletes this replica's heartbeat — the graceful-exit path, so
// peers stop considering a cleanly stopped replica immediately instead
// of waiting for its entry to age out.
func (d *PeerDirectory) Remove() {
	_ = os.Remove(d.path(d.id))
}
