package lease

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestPeerDirectoryAnnounceListRoundTrip(t *testing.T) {
	dir := t.TempDir()
	a, err := NewPeerDirectory(dir, "a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewPeerDirectory(dir, "b")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Announce(PeerInfo{URL: "http://a.test", Jobs: 3}); err != nil {
		t.Fatal(err)
	}
	if err := b.Announce(PeerInfo{URL: "http://b.test", Jobs: 1, Draining: true}); err != nil {
		t.Fatal(err)
	}
	infos, err := a.List(time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 || infos[0].ID != "a" || infos[1].ID != "b" {
		t.Fatalf("List = %+v, want a then b", infos)
	}
	if infos[0].Jobs != 3 || infos[0].URL != "http://a.test" || infos[0].At == 0 {
		t.Fatalf("a's heartbeat = %+v", infos[0])
	}
	if !infos[1].Draining {
		t.Fatal("b's draining flag lost in the round trip")
	}
}

func TestPeerDirectoryListSkipsStaleAndCorrupt(t *testing.T) {
	dir := t.TempDir()
	a, err := NewPeerDirectory(dir, "a")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Announce(PeerInfo{Jobs: 1}); err != nil {
		t.Fatal(err)
	}
	// A peer that stopped heartbeating ages out of the view.
	stale := `{"id":"old","jobs":9,"at_unix_nano":1}`
	if err := os.WriteFile(filepath.Join(dir, "old.peer"), []byte(stale), 0o644); err != nil {
		t.Fatal(err)
	}
	// A torn or garbage entry must not break the survivors' view.
	if err := os.WriteFile(filepath.Join(dir, "torn.peer"), []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Unrelated files (lease tmp files, editors' droppings) are ignored.
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	infos, err := a.List(time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].ID != "a" {
		t.Fatalf("List = %+v, want only the fresh heartbeat", infos)
	}
}

func TestPeerDirectoryRemoveDropsOwnHeartbeat(t *testing.T) {
	dir := t.TempDir()
	a, err := NewPeerDirectory(dir, "a")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Announce(PeerInfo{}); err != nil {
		t.Fatal(err)
	}
	a.Remove()
	infos, err := a.List(time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 0 {
		t.Fatalf("List after Remove = %+v, want empty", infos)
	}
}

func TestNewPeerDirectoryRejectsBadID(t *testing.T) {
	if _, err := NewPeerDirectory(t.TempDir(), "a/b"); err == nil {
		t.Fatal("NewPeerDirectory with path-separator id should fail")
	}
}
