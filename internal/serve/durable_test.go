package serve_test

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"cwcflow/internal/core"
	"cwcflow/internal/serve"
	"cwcflow/internal/sim"
	"cwcflow/internal/store"
)

// throttledSim slows a snapshotable engine down without touching its
// trajectory: sleeps are not state, so checkpoints taken from a
// throttled engine restore into a full-speed one bit-identically. The
// crashing servers in these tests run throttled (so the job is reliably
// caught mid-run); the recovering servers run at full speed.
type throttledSim struct {
	sim.SnapshotSimulator
	delay time.Duration
}

func (s *throttledSim) Step() bool {
	time.Sleep(s.delay)
	return s.SnapshotSimulator.Step()
}

// throttledResolver wraps the real model registry with a per-step delay.
func throttledResolver(delay time.Duration) func(core.ModelRef) (core.SimulatorFactory, error) {
	return func(ref core.ModelRef) (core.SimulatorFactory, error) {
		inner, err := core.FactoryFor(ref)
		if err != nil {
			return nil, err
		}
		return func(traj int, seed int64) (sim.Simulator, error) {
			s, err := inner(traj, seed)
			if err != nil {
				return nil, err
			}
			ss, ok := s.(sim.SnapshotSimulator)
			if !ok {
				return s, nil
			}
			return &throttledSim{ss, delay}, nil
		}, nil
	}
}

// newDurableServer starts a server backed by dir. A nil resolver uses the
// real model registry (core.FactoryFor), so jobs run the snapshotable
// gillespie engines and resume exercises real checkpoints.
func newDurableServer(t *testing.T, dir string, opts serve.Options) (*serve.Server, string) {
	t.Helper()
	if opts.Workers == 0 {
		opts.Workers = 2
	}
	opts.DataDir = dir
	svc, err := serve.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	base := newHTTPServer(t, svc.Handler())
	t.Cleanup(svc.Close)
	return svc, base
}

// sirSpec is a real-model job long enough to be caught mid-run: 385
// samples per trajectory, 49 tumbling windows.
func sirSpec() serve.JobSpec {
	return serve.JobSpec{
		Model:        "sir",
		Omega:        100,
		Trajectories: 8,
		End:          48,
		Period:       0.125,
		WindowSize:   8,
		WindowStep:   8,
		Seed:         42,
	}
}

// waitWindows polls until the job has published at least n windows.
func waitWindows(t *testing.T, base, id string, n int) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := getStatus(t, base, id)
		if st.Progress.Windows >= n {
			return
		}
		if st.State.Terminal() {
			t.Fatalf("job reached %s with only %d windows", st.State, st.Progress.Windows)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never published %d windows (at %d)", n, st.Progress.Windows)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// crashImage copies dir's journal into a fresh directory — byte-for-byte
// what a SIGKILL at this instant would leave on disk (every append hits
// the file in one write; a torn tail would be truncated on recovery).
func crashImage(t *testing.T, dir string) string {
	t.Helper()
	img := t.TempDir()
	data, err := os.ReadFile(filepath.Join(dir, "journal.wal"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(img, "journal.wal"), data, 0o666); err != nil {
		t.Fatal(err)
	}
	return img
}

// verifyMidRunImage asserts the crash image really holds an in-flight
// job (no terminal event, some windows published) — otherwise the resume
// tests would pass vacuously by restoring a finished job.
func verifyMidRunImage(t *testing.T, img, id string, minWindows int) {
	t.Helper()
	st, err := store.Open(img, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for _, rec := range st.Recovered() {
		if rec.ID != id {
			continue
		}
		if rec.Terminal != "" {
			t.Fatalf("crash image already holds a terminal job (%s): job too fast to be caught mid-run, enlarge the spec", rec.Terminal)
		}
		if rec.WindowCount < minWindows {
			t.Fatalf("crash image holds %d windows, want >= %d", rec.WindowCount, minWindows)
		}
		return
	}
	t.Fatalf("job %s not in crash image", id)
}

// TestResumeDigestMatchesUninterrupted is the durability acceptance pin:
// a server restarted from a mid-run crash image resumes the job from its
// checkpoints and finishes with a window-stats digest bit-identical to
// the uninterrupted run's.
func TestResumeDigestMatchesUninterrupted(t *testing.T) {
	dir := t.TempDir()
	_, base := newDurableServer(t, dir, serve.Options{Resolver: throttledResolver(30 * time.Microsecond)})
	st := submitJob(t, base, sirSpec())

	// Take the crash image only after real mid-run state exists: some
	// windows published (durable frontier > 0) and more still to come.
	waitWindows(t, base, st.ID, 3)
	img := crashImage(t, dir)
	verifyMidRunImage(t, img, st.ID, 3)

	// The uninterrupted run is the reference.
	refSt, refDigest := runStatusAndDigest(t, base, st.ID)
	if refSt.State != serve.StateDone {
		t.Fatalf("reference job ended %s (%s)", refSt.State, refSt.Error)
	}

	// "Restart" from the crash image: the job must be recovered as
	// running (or already finishing) and complete with the same digest.
	_, base2 := newDurableServer(t, img, serve.Options{})
	final, digest := runStatusAndDigest(t, base2, st.ID)
	if final.State != serve.StateDone {
		t.Fatalf("resumed job ended %s (%s)", final.State, final.Error)
	}
	if !final.Recovered {
		t.Fatal("resumed job not marked recovered")
	}
	if final.Progress.Windows != refSt.Progress.Windows {
		t.Fatalf("resumed run published %d windows, want %d", final.Progress.Windows, refSt.Progress.Windows)
	}
	if digest != refDigest {
		t.Fatalf("digest diverged after crash+resume:\n  uninterrupted %s\n  resumed       %s", refDigest, digest)
	}
}

// TestResumeUnsnapshotableModelReplays: a model whose engine cannot
// snapshot (the synthetic walk simulator) still resumes bit-identically —
// recovery replays each trajectory from its seed and the resume filter
// drops the prefix below the durable window frontier.
func TestResumeUnsnapshotableModelReplays(t *testing.T) {
	opts := serve.Options{Resolver: walkResolver(time.Millisecond)}
	dir := t.TempDir()
	_, base := newDurableServer(t, dir, opts)
	spec := walkSpec()
	spec.Trajectories = 4
	spec.End = 16
	st := submitJob(t, base, spec)
	waitWindows(t, base, st.ID, 2)
	img := crashImage(t, dir)
	verifyMidRunImage(t, img, st.ID, 2)
	refSt, refDigest := runStatusAndDigest(t, base, st.ID)
	if refSt.State != serve.StateDone {
		t.Fatalf("reference job ended %s (%s)", refSt.State, refSt.Error)
	}

	_, base2 := newDurableServer(t, img, serve.Options{Resolver: walkResolver(0)})
	final, digest := runStatusAndDigest(t, base2, st.ID)
	if final.State != serve.StateDone {
		t.Fatalf("resumed job ended %s (%s)", final.State, final.Error)
	}
	if digest != refDigest {
		t.Fatalf("replay-based resume diverged:\n  uninterrupted %s\n  resumed       %s", refDigest, digest)
	}
}

// TestCompletedResultsOutliveRestart: a finished job's results are served
// after a restart without re-running anything, with its journaled final
// status, and new submissions never collide with recovered ids.
func TestCompletedResultsOutliveRestart(t *testing.T) {
	dir := t.TempDir()
	svc, base := newDurableServer(t, dir, serve.Options{})
	st := submitJob(t, base, sirSpec())
	refSt, refDigest := runStatusAndDigest(t, base, st.ID)
	if refSt.State != serve.StateDone {
		t.Fatalf("job ended %s (%s)", refSt.State, refSt.Error)
	}
	svc.Close() // graceful shutdown: final fsync

	_, base2 := newDurableServer(t, dir, serve.Options{})
	got, digest := runStatusAndDigest(t, base2, st.ID)
	if got.State != serve.StateDone || !got.Recovered {
		t.Fatalf("recovered job: state=%s recovered=%v", got.State, got.Recovered)
	}
	if got.Progress.TasksDone != refSt.Progress.TasksDone || got.Progress.Reactions != refSt.Progress.Reactions {
		t.Fatalf("journaled final status lost: %+v vs %+v", got.Progress, refSt.Progress)
	}
	if digest != refDigest {
		t.Fatalf("recovered results diverged:\n  before %s\n  after  %s", refDigest, digest)
	}
	// A new (distinct — an identical spec would hit the rebuilt cache)
	// submission gets a fresh id past the recovered sequence.
	spec2 := sirSpec()
	spec2.Seed = 43
	st2 := submitJob(t, base2, spec2)
	if st2.ID == st.ID {
		t.Fatalf("new job reused recovered id %s", st.ID)
	}
}

// TestGracefulShutdownResumesInFlight: SIGTERM-style shutdown mid-run
// does not journal the shutdown as a job failure — the next start
// resumes the job and completes it with the uninterrupted digest.
func TestGracefulShutdownResumesInFlight(t *testing.T) {
	refDir := t.TempDir()
	_, refBase := newDurableServer(t, refDir, serve.Options{})
	refJob := submitJob(t, refBase, sirSpec())
	refSt, refDigest := runStatusAndDigest(t, refBase, refJob.ID)
	if refSt.State != serve.StateDone {
		t.Fatalf("reference job ended %s (%s)", refSt.State, refSt.Error)
	}

	dir := t.TempDir()
	svc, base := newDurableServer(t, dir, serve.Options{Resolver: throttledResolver(30 * time.Microsecond)})
	st := submitJob(t, base, sirSpec())
	waitWindows(t, base, st.ID, 2)
	svc.Close() // graceful: in-flight job must NOT be journaled as failed
	verifyMidRunImage(t, dir, st.ID, 2)

	_, base2 := newDurableServer(t, dir, serve.Options{})
	final, digest := runStatusAndDigest(t, base2, st.ID)
	if final.State != serve.StateDone {
		t.Fatalf("job did not resume after graceful shutdown: %s (%s)", final.State, final.Error)
	}
	if digest != refDigest {
		t.Fatalf("post-shutdown resume diverged:\n  reference %s\n  resumed   %s", refDigest, digest)
	}
}

// TestHealthzReportsStore: healthz surfaces the store's directory and
// journal size once durability is on.
func TestHealthzReportsStore(t *testing.T) {
	dir := t.TempDir()
	_, base := newDurableServer(t, dir, serve.Options{Version: "test-build"})
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h struct {
		Version string `json:"version"`
		Store   *struct {
			Dir          string `json:"dir"`
			JournalBytes int64  `json:"journal_bytes"`
		} `json:"store"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Version != "test-build" {
		t.Fatalf("healthz version = %q", h.Version)
	}
	if h.Store == nil || h.Store.Dir != dir {
		t.Fatalf("healthz store = %+v", h.Store)
	}
}

// TestListStateAndLimitFilters: GET /jobs?state=&limit= keeps the list
// endpoint usable once recovered history accumulates.
func TestListStateAndLimitFilters(t *testing.T) {
	_, ts := newTestServer(t, 10*time.Millisecond, serve.Options{Workers: 2})
	base := ts.URL
	fastSpec := slowSpec()
	fastSpec.End = 0.5 // two cuts: finishes in a few steps
	fastSpec.WindowSize = 2
	fastSpec.WindowStep = 2
	fast := submitJob(t, base, fastSpec)
	if resp, err := http.Get(base + "/jobs/" + fast.ID + "/result?wait=true"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}
	slow := submitJob(t, base, slowSpec())
	list := func(query string) []serve.Status {
		resp, err := http.Get(base + "/jobs" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /jobs%s: status %d", query, resp.StatusCode)
		}
		var out []serve.Status
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	if all := list(""); len(all) != 2 {
		t.Fatalf("unfiltered list has %d jobs", len(all))
	}
	done := list("?state=done")
	if len(done) != 1 || done[0].ID != fast.ID {
		t.Fatalf("state=done: %+v", done)
	}
	running := list("?state=running")
	if len(running) != 1 || running[0].ID != slow.ID {
		t.Fatalf("state=running: %+v", running)
	}
	// limit keeps the most recent entries.
	if last := list("?limit=1"); len(last) != 1 || last[0].ID != slow.ID {
		t.Fatalf("limit=1: %+v", last)
	}
	if none := list("?limit=0"); len(none) != 0 {
		t.Fatalf("limit=0: %+v", none)
	}
	resp, err := http.Get(base + "/jobs?state=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("state=bogus: status %d", resp.StatusCode)
	}
}
