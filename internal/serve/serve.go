// Package serve wraps the CWC simulation-analysis pipeline in a
// long-running, concurrent job service — the first step of the roadmap's
// multi-user serving story.
//
// One service instance owns a single shared simulation worker pool (a
// long-lived ff feedback farm, see Pool) and a single shared farm of
// statistical engines (see statFarm), sized independently. Each submitted
// job contributes quantum-sized trajectory tasks to the pool; on-demand
// scheduling interleaves every job's tasks, so many jobs progress
// concurrently on a fixed set of workers with no per-job goroutine
// explosion: the service runs O(pool workers + stat engines + active jobs)
// goroutines in total. Per job, one windower goroutine drains batched
// samples through the alignment → sliding-window stages (window.Stream)
// and fans the completed windows out across the stat farm's engines
// (core.AnalyseWindowInto on reusable per-engine scratch); a per-job
// reorder buffer republishes the results in window order, incrementally —
// results stream out while the simulation is still running, the paper's
// on-line property, carried over to the service. The pool collector never
// blocks on a tenant: a job whose analysis lags is deferred at the
// scheduling step and, past a hard bound, spills (and fails) rather than
// pausing any other job's delivery.
//
// The HTTP surface (see Server.Handler) is:
//
//	POST   /jobs              submit a JobSpec, returns the job Status
//	GET    /jobs              list all jobs
//	GET    /jobs/{id}         one job's Status (progress, latency, ETA)
//	GET    /jobs/{id}/stream  windows as NDJSON (or SSE), live + replay
//	GET    /jobs/{id}/result  buffered windows; ?wait=true blocks to end
//	POST   /jobs/{id}/cancel  cancel (DELETE /jobs/{id} is equivalent)
//	GET    /workers           remote sim workers: liveness, load, failures
//	POST   /workers/register  join the cluster / heartbeat
//	GET    /healthz           pool and registry health
//
// With remote sim workers configured (Options.WorkerAddrs, or workers
// registering dynamically), each job's trajectory quanta are sharded
// across the cluster and the local pool by a per-job quantum scheduler
// (see remoteJob); results merge through the same ingress/analysis path,
// deterministically even across worker failures and requeues.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"cwcflow/internal/chaos"
	"cwcflow/internal/core"
	"cwcflow/internal/ff"
	"cwcflow/internal/lease"
	"cwcflow/internal/obs"
	"cwcflow/internal/serve/sched"
	"cwcflow/internal/sim"
	"cwcflow/internal/store"
)

// ErrBusy is returned by Submit when the active-job limit is reached — a
// retryable condition (HTTP 429), unlike an invalid spec.
var ErrBusy = errors.New("serve: active job limit reached")

// ErrClosed is returned by Submit once the server is shutting down
// (HTTP 503).
var ErrClosed = errors.New("serve: server is closed")

// ErrDraining is returned by Submit while the replica is draining:
// admission has stopped ahead of a shutdown or an operator-requested
// handoff, but reads keep working. The HTTP layer redirects such
// submissions to a live peer (307) when one exists.
var ErrDraining = errors.New("serve: replica is draining")

// errSaturated marks the server-wide MaxJobs rejection so the HTTP
// layer can distinguish it from tenant-queue overflow: a saturated
// replica forwards the submission to a less-loaded peer, while a
// tenant-quota rejection must hold wherever the tenant lands. It wraps
// ErrBusy, so callers matching ErrBusy see no change.
var errSaturated = fmt.Errorf("%w (server saturated)", ErrBusy)

// Options configures a Server. The zero value is usable: every field
// defaults sensibly in New.
type Options struct {
	// Workers is the shared simulation pool width (default GOMAXPROCS).
	Workers int
	// StatEngines is the width of the shared farm of statistical engines
	// that analyses every job's windows (default GOMAXPROCS). It is sized
	// independently of the simulation pool: stats-heavy services (k-means,
	// period detection over large ensembles) want more engines, sim-heavy
	// ones fewer. Each job may occupy at most ceil(StatEngines/2) engines
	// at once, so one heavy tenant can never starve the farm.
	StatEngines int
	// QueueDepth is the pool's internal channel capacity (default 16).
	QueueDepth int
	// SampleBuffer is the high-water mark of each job's ingress queue of
	// in-flight sample batches between the pool collector and the job's
	// windower (default 64 batches). A job over the mark has its quanta
	// deferred by the pool (backpressure at the scheduling step) instead
	// of blocking the collector; the queue's hard bound sits above the
	// mark by the pool's maximum in-flight quanta, so nothing spills while
	// deferral works.
	SampleBuffer int
	// ResultBuffer bounds each job's ring of retained WindowStats
	// (default 1024); older windows are evicted once exceeded.
	ResultBuffer int
	// SubscriberBuffer bounds each streaming client's mailbox (default
	// 256 windows); a slow client loses windows instead of stalling the
	// job.
	SubscriberBuffer int
	// MaxJobs caps concurrently active (non-terminal) jobs (default 64).
	MaxJobs int
	// MaxCompleted caps retained terminal jobs (default 256): beyond it,
	// the oldest finished/cancelled/failed jobs are evicted from the
	// registry (results included) so a long-running server's memory stays
	// bounded.
	MaxCompleted int
	// MaxTrajectories caps the per-job ensemble size (default 4096).
	MaxTrajectories int
	// MaxCuts caps a job's samples per trajectory, floor(End/Period)+1
	// (default 1e6): without it one spec with an extreme End/Period ratio
	// creates a practically unterminating job with unbounded sample
	// volume.
	MaxCuts int
	// Resolver maps a model reference to a simulator factory (default
	// core.FactoryFor). Tests inject synthetic models here.
	Resolver func(core.ModelRef) (core.SimulatorFactory, error)

	// WorkerAddrs is the static list of remote sim workers (cwc-dist
	// worker processes) the service may shard trajectory quanta onto.
	// More workers can join at runtime via POST /workers/register.
	WorkerAddrs []string
	// WorkerInFlight caps the trajectories in flight on one remote worker
	// across all jobs (default 8); a register call may override it per
	// worker.
	WorkerInFlight int
	// WorkerTTL is the heartbeat window of dynamically registered workers
	// (default 15s): a worker that has not re-registered within it stops
	// receiving new trajectories.
	WorkerTTL time.Duration
	// WorkerCooldown is how long a failed worker sits out before the
	// scheduler retries it (default 10s).
	WorkerCooldown time.Duration
	// WorkerTimeout is the per-connection result watchdog (default 30s):
	// a worker holding trajectories that produces no stream activity for
	// this long is declared dead and its work requeued.
	WorkerTimeout time.Duration
	// DialTimeout bounds the connection attempt to a worker at job
	// submission (default 3s).
	DialTimeout time.Duration

	// DataDir, when non-empty, enables the durable job store: a
	// write-ahead journal of submissions, published windows, trajectory
	// checkpoints and terminal states under this directory. A restarted
	// server recovers completed jobs' results and resumes in-flight jobs
	// from their last checkpoint with a bit-identical window stream (see
	// package store). Empty disables durability (the pre-PR5 behaviour).
	DataDir string
	// CheckpointSamples is how often a trajectory's engine state is
	// checkpointed to the journal: every time its next sample index
	// advances by this many samples (default 16, usually one window of
	// cuts). Smaller values mean less re-simulation after a crash, more
	// journal traffic. Only meaningful with DataDir. The cadence applies
	// to local-pool trajectories and, via JobHeader.CheckpointSamples,
	// to remote ones: workers piggyback engine snapshots on their result
	// stream so the durable frontier advances with remote progress too.
	CheckpointSamples int
	// ReplicaID, when non-empty, runs this server as one replica of a
	// replicated serve tier over the shared DataDir: its journal moves to
	// DataDir/replicas/<id>/ and every job is driven under a job-ownership
	// lease from DataDir/leases/ (owner id, fencing epoch, TTL). Exactly
	// one replica owns a job at a time; the others serve reads by peeking
	// the owner's journal and redirect/proxy writes to it, and a replica
	// that finds an expired or released lease steals it at a higher epoch
	// and resumes the job from the owner's journal. Empty (the default)
	// keeps the single-server layout and behaviour. Requires DataDir; the
	// id must be 1..128 chars of [A-Za-z0-9._-].
	ReplicaID string
	// AdvertiseURL is this replica's client-reachable base URL (e.g.
	// "http://10.0.0.7:8080"), recorded in every lease it takes so peer
	// replicas can redirect streams and proxy cancels to the owner. Empty
	// disables redirects (peers answer 503 for owner-only endpoints).
	AdvertiseURL string
	// LeaseTTL is how long a job lease lives between renewals (default
	// 10s). The owner renews at TTL/3; a lease not renewed within TTL is
	// stealable by any replica. Shorter TTLs mean faster failover and
	// more lease-file traffic.
	LeaseTTL time.Duration
	// FailoverScan is how often a replica scans the lease directory for
	// expired or released leases to take over (default LeaseTTL/2). Each
	// interval is jittered over [d/2, 3d/2] so N replicas started
	// together never scan in lockstep.
	FailoverScan time.Duration
	// DrainGrace is how long a drain or handoff waits after flagging a
	// job for forced checkpointing before stopping it, giving in-flight
	// quanta one boundary to checkpoint at (default 150ms; negative
	// skips the wait). Only meaningful with ReplicaID.
	DrainGrace time.Duration
	// RebalanceScan is the cadence (jittered like FailoverScan) of the
	// lease-rebalancing anti-entropy loop, where an underloaded replica
	// requests handoffs from the most loaded live peer (default
	// 4×LeaseTTL; negative disables rebalancing).
	RebalanceScan time.Duration
	// RebalanceMargin is the rebalancer's hysteresis: a replica requests
	// a handoff only from a peer owning at least this many more jobs
	// than itself, and moves one job per tick (default and minimum 2 —
	// moving one job shrinks the pairwise imbalance by two, so a move is
	// never immediately reversed and the tier converges without
	// thrashing).
	RebalanceMargin int
	// CacheMaxEntries bounds the content-addressed result cache: spec
	// digest → terminal job, LRU-evicted past this many entries (default
	// 1024). Runs are deterministic, so a repeat submission of a cached
	// spec answers with the completed job (201, cache_hit) instead of
	// simulating again, and a submission matching a running job's digest
	// attaches to its stream.
	CacheMaxEntries int
	// NoCache disables the result cache and in-flight attach entirely:
	// every submission simulates, the pre-cache behaviour.
	NoCache bool
	// Chaos, when non-nil, enables deterministic fault injection at the
	// wired points (dff receive drop/delay/duplicate, WAL fsync stall,
	// early lease expiry). Tests only; nil disables every hook.
	Chaos *chaos.Injector
	// Version is the build version surfaced in healthz (set by the cwc-serve
	// binary from its -ldflags-injected build info).
	Version string
	// Logf, when non-nil, receives one line per job terminal transition
	// carrying the job's trace summary (the cwc-serve binary points it at
	// log.Printf). Nil disables terminal logging.
	Logf func(format string, args ...any)

	// Scheduler selects the pool's quantum-dispatch discipline: "fifo"
	// (default — global arrival order, the historical behaviour) or "wfq"
	// (weighted fair queueing across tenant flows, see package sched).
	// The discipline only reorders dispatch; window digests are
	// bit-identical under either (samples are keyed by trajectory and
	// index, not arrival time).
	Scheduler string
	// DefaultTenantConcurrency caps concurrently running jobs per tenant
	// for tenants without an explicit TenantConfig (0 = unlimited, the
	// pre-tenancy behaviour). A tenant at its cap has further submissions
	// queued with a position instead of rejected.
	DefaultTenantConcurrency int
	// DefaultTenantQueue caps each tenant's admission queue (default 16);
	// beyond it submissions are rejected with ErrBusy (429).
	DefaultTenantQueue int
	// DefaultTenantBudget caps the samples (trajectories × cuts, summed
	// over running and queued jobs) a tenant may hold admitted at once
	// (0 = unlimited). Over-budget submissions get ErrQuotaExceeded (429).
	DefaultTenantBudget int64
	// DefaultTenantWeight is the wfq share weight of tenants without an
	// explicit TenantConfig (default 1).
	DefaultTenantWeight float64
	// Tenants holds per-tenant quota/weight overrides, keyed by tenant id.
	// Tenants not listed here use the Default* fields above.
	Tenants map[string]TenantConfig

	// statHook, when non-nil, runs at the start of every window's
	// analysis with the owning job's id. Test-only seam (unexported): it
	// emulates an expensive statistical configuration (or a stalled
	// tenant) with a cost that parallelises across engines independently
	// of the host's core count.
	statHook func(jobID string)

	// metrics is the server's metric set, created by New and threaded to
	// jobs through this options copy (the same unexported-seam pattern as
	// statHook). Always non-nil after New; nil in a zero Options, where
	// every obs call degrades to a no-op.
	metrics *serveMetrics
}

func (o Options) withDefaults() Options {
	if o.Workers < 1 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.StatEngines < 1 {
		o.StatEngines = runtime.GOMAXPROCS(0)
	}
	if o.QueueDepth < 1 {
		o.QueueDepth = 16
	}
	if o.SampleBuffer < 1 {
		o.SampleBuffer = 64
	}
	if o.ResultBuffer < 1 {
		o.ResultBuffer = 1024
	}
	if o.SubscriberBuffer < 1 {
		o.SubscriberBuffer = 256
	}
	if o.MaxJobs < 1 {
		o.MaxJobs = 64
	}
	if o.MaxTrajectories < 1 {
		o.MaxTrajectories = 4096
	}
	if o.MaxCompleted < 1 {
		o.MaxCompleted = 256
	}
	if o.MaxCuts < 1 {
		o.MaxCuts = 1_000_000
	}
	if o.Resolver == nil {
		o.Resolver = core.FactoryFor
	}
	if o.WorkerInFlight < 1 {
		o.WorkerInFlight = 8
	}
	if o.WorkerTTL <= 0 {
		o.WorkerTTL = 15 * time.Second
	}
	if o.WorkerCooldown <= 0 {
		o.WorkerCooldown = 10 * time.Second
	}
	if o.WorkerTimeout <= 0 {
		o.WorkerTimeout = 30 * time.Second
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 3 * time.Second
	}
	if o.CheckpointSamples < 1 {
		o.CheckpointSamples = 16
	}
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = 10 * time.Second
	}
	if o.FailoverScan <= 0 {
		o.FailoverScan = o.LeaseTTL / 2
	}
	if o.DrainGrace == 0 {
		o.DrainGrace = 150 * time.Millisecond
	}
	if o.RebalanceScan == 0 {
		o.RebalanceScan = 4 * o.LeaseTTL
	}
	if o.RebalanceMargin < 2 {
		o.RebalanceMargin = 2
	}
	if o.CacheMaxEntries < 1 {
		o.CacheMaxEntries = 1024
	}
	if o.Scheduler == "" {
		o.Scheduler = "fifo"
	}
	if o.DefaultTenantQueue < 1 {
		o.DefaultTenantQueue = 16
	}
	if o.DefaultTenantWeight <= 0 {
		o.DefaultTenantWeight = 1
	}
	return o
}

// Server is the job service: a registry of jobs multiplexed onto one
// shared simulation pool and one shared stat farm, plus the HTTP API over
// them.
type Server struct {
	opts     Options
	pool     *Pool
	stats    *statFarm
	registry *registry
	store    *store.Store         // nil when durability is disabled
	leases   *lease.Manager       // nil unless ReplicaID is set (replicated tier)
	peers    *lease.PeerDirectory // nil unless ReplicaID is set
	mux      *http.ServeMux
	wfq      *sched.WFQ[poolTask] // non-nil iff Options.Scheduler == "wfq"
	m        *serveMetrics        // always non-nil (== opts.metrics)

	// draining flips once (Drain) and never back: admission is refused
	// with ErrDraining, the failover and rebalance loops stand down, and
	// every owned job is handed off to a peer.
	draining atomic.Bool
	// drainMu serialises Drain passes (SIGTERM racing POST /drain) so
	// each held lease is handed off exactly once.
	drainMu sync.Mutex

	// replicaStop/replicaWG bound the lease renew, failover-scan and
	// rebalance loops; Close signals and waits before closing the store
	// they use.
	replicaStop chan struct{}
	replicaWG   sync.WaitGroup

	// probeMu/probes cache owner-liveness HTTP probes (ownerAlive) so a
	// burst of reads for a dead owner's job cannot stampede its socket.
	probeMu sync.Mutex
	probes  map[string]ownerProbe

	// cache is the content-addressed result index (spec digest → terminal
	// job id); nil iff Options.NoCache. Hit/miss/attach/redirect counts
	// live in the metric registry (s.m.cache*), the single source for
	// GET /cache, /healthz and /metrics.
	cache *store.Cache

	mu          sync.Mutex
	closed      bool
	jobs        map[string]*Job
	order       []string
	seq         int
	tenants     map[string]*tenantState
	tenantOrder []string // tenant creation order (= wfq tie-break order)
	// inflightDigest maps a spec digest to the non-terminal local job
	// running it — the attach targets. nil iff Options.NoCache.
	inflightDigest map[string]*Job
}

// New starts a Server (its simulation pool, stat farm and worker
// registry) with the given options. With Options.DataDir set it opens
// the durable job store first and recovers from it: completed jobs
// reappear with their buffered results, and in-flight jobs resume on the
// local pool from their last checkpoint (see package store). The only
// error paths are the store's (journal unreadable, directory not
// writable); without DataDir, New cannot fail.
func New(opts Options) (*Server, error) {
	opts = opts.withDefaults()
	m := newServeMetrics(obs.NewRegistry())
	opts.metrics = m
	s := &Server{
		opts:     opts,
		m:        m,
		stats:    newStatFarm(opts.StatEngines, opts.QueueDepth, opts.statHook),
		registry: newRegistry(opts.WorkerAddrs, opts.WorkerInFlight, opts.WorkerTTL, opts.WorkerCooldown),
		mux:      http.NewServeMux(),
		jobs:     make(map[string]*Job),
		tenants:  make(map[string]*tenantState),
	}
	if !opts.NoCache {
		s.cache = store.NewCache(opts.CacheMaxEntries)
		s.inflightDigest = make(map[string]*Job)
	}
	var queue ff.TaskQueue[poolTask]
	switch opts.Scheduler {
	case "fifo":
		queue = sched.NewFIFO[poolTask]()
	case "wfq":
		var fallback *sched.Flow[poolTask]
		s.wfq = sched.NewWFQ(func(pt poolTask) *sched.Flow[poolTask] {
			if f := pt.job.flow; f != nil {
				return f
			}
			return fallback // flow-less task (defensive; should not happen)
		})
		fallback = s.wfq.NewFlow("(unclassified)", 1)
		queue = s.wfq
	default:
		s.stats.Close()
		return nil, fmt.Errorf("serve: unknown scheduler %q (want fifo or wfq)", opts.Scheduler)
	}
	// The sched-wait decorator stamps quanta on push and observes the
	// queue wait on pop, under either discipline.
	queue = &timedQueue{inner: queue, wait: m.schedWait}
	s.pool = NewPool(opts.Workers, opts.QueueDepth, queue)
	s.routes()
	if opts.ReplicaID != "" && opts.DataDir == "" {
		s.pool.Close()
		s.stats.Close()
		return nil, fmt.Errorf("serve: ReplicaID requires DataDir (a replica is defined by the shared store directory)")
	}
	if opts.DataDir != "" {
		storeDir := opts.DataDir
		if opts.ReplicaID != "" {
			// Replicated tier: each replica appends to its own journal
			// under the shared directory (a WAL has exactly one writer);
			// ownership is arbitrated by the lease files, and takeovers
			// copy a job's state across journals via store.Adopt.
			storeDir = filepath.Join(opts.DataDir, "replicas", opts.ReplicaID)
			if err := migrateLegacyJournal(opts.DataDir, storeDir); err != nil {
				s.pool.Close()
				s.stats.Close()
				return nil, err
			}
		}
		st, err := store.Open(storeDir, store.Options{RetainWindows: opts.ResultBuffer, Chaos: opts.Chaos, Metrics: m.walMetrics})
		if err != nil {
			s.pool.Close()
			s.stats.Close()
			return nil, err
		}
		s.store = st
		if opts.ReplicaID != "" {
			lm, err := lease.NewManager(lease.Options{
				Dir:     filepath.Join(opts.DataDir, "leases"),
				Owner:   opts.ReplicaID,
				URL:     opts.AdvertiseURL,
				TTL:     opts.LeaseTTL,
				Chaos:   opts.Chaos,
				Metrics: m.leaseMetrics,
			})
			if err != nil {
				s.store.Close()
				s.pool.Close()
				s.stats.Close()
				return nil, fmt.Errorf("serve: %w", err)
			}
			s.leases = lm
			// The fence: every journal append for a job must hold that
			// job's lease, unexpired by the local clock. A zombie owner
			// (stolen lease, stalled renew loop) is refused at the store
			// before its stale progress can land.
			s.store.SetFence(lm.Check)
			pd, err := lease.NewPeerDirectory(filepath.Join(opts.DataDir, "peers"), opts.ReplicaID)
			if err != nil {
				s.store.Close()
				s.pool.Close()
				s.stats.Close()
				return nil, fmt.Errorf("serve: %w", err)
			}
			s.peers = pd
		}
		s.recover()
		if s.leases != nil {
			// First heartbeat before the loops start, so peers can route
			// submissions and nudge adoptions here from the very first
			// request; renewLoop refreshes it at TTL/3.
			s.announcePeer()
			s.replicaStop = make(chan struct{})
			s.replicaWG.Add(2)
			go s.renewLoop()
			go s.failoverLoop()
			if opts.RebalanceScan > 0 {
				s.replicaWG.Add(1)
				go s.rebalanceLoop()
			}
		}
	}
	m.registerServerFuncs(s)
	return s, nil
}

// Metrics returns the server's metric registry (the GET /metrics
// exposition; binaries also mount it on their -debug-addr).
func (s *Server) Metrics() *obs.Registry { return s.m.reg }

// migrateLegacyJournal moves a pre-replication journal at the shared
// directory's root into this replica's own journal directory, so an
// existing single-server data dir can be upgraded in place by starting
// the first replica on it. Only runs when the replica has no journal of
// its own yet.
func migrateLegacyJournal(dataDir, storeDir string) error {
	legacy := filepath.Join(dataDir, "journal.wal")
	if _, err := os.Stat(legacy); err != nil {
		return nil
	}
	mine := filepath.Join(storeDir, "journal.wal")
	if _, err := os.Stat(mine); err == nil {
		return nil
	}
	if err := os.MkdirAll(storeDir, 0o777); err != nil {
		return fmt.Errorf("serve: migrating legacy journal: %w", err)
	}
	if err := os.Rename(legacy, mine); err != nil {
		return fmt.Errorf("serve: migrating legacy journal: %w", err)
	}
	return nil
}

// Handler returns the HTTP API.
func (s *Server) Handler() http.Handler { return s.mux }

// Workers returns the shared pool width.
func (s *Server) Workers() int { return s.pool.Workers() }

// StatEngines returns the shared stat farm width.
func (s *Server) StatEngines() int { return s.stats.Engines() }

// Submit validates a spec, builds the job's simulators and schedules its
// trajectory tasks on the shared pool, accounted to the default tenant.
// It returns once the job is registered and streaming; the simulation
// itself proceeds in the background.
func (s *Server) Submit(spec JobSpec) (*Job, error) {
	return s.SubmitAs(spec, DefaultTenant)
}

// SubmitAs is Submit on behalf of a tenant (the X-CWC-Tenant header).
// Admission is tenant-aware: a submission the tenant's sample budget
// cannot cover fails with ErrQuotaExceeded, a tenant at its concurrency
// cap has the job admitted into its priority-ordered queue (StateQueued,
// with a position) instead of run, and a full queue — or a saturated
// server — fails with ErrBusy.
func (s *Server) SubmitAs(spec JobSpec, tenant string) (*Job, error) {
	res, err := s.SubmitOutcome(spec, tenant)
	if err != nil {
		return nil, err
	}
	return res.Job, nil
}

// SubmitOutcome is SubmitAs reporting how the submission was answered:
// from the content-addressed result cache (CacheHit — runs are
// deterministic, so an identical canonical spec reuses the completed
// job), by attaching to an in-flight job with the same digest (Attached —
// one simulation, N watchers), or by creating a job (neither flag). Cache
// hits and attaches charge the tenant nothing: no slot, no sample budget.
// In a replicated tier, a digest in flight on a live peer returns
// *AttachRedirectError so the HTTP layer can bounce the client there.
func (s *Server) SubmitOutcome(spec JobSpec, tenant string) (SubmitResult, error) {
	return s.SubmitTraced(spec, tenant, "")
}

// SubmitTraced is SubmitOutcome carrying an inbound trace id (from a
// client's traceparent header; empty means a fresh id is minted): the
// created job's span log adopts it, so a client-side trace and the
// job's lifecycle spans share one id end to end. Every submission —
// accepted, cached, or rejected — is counted by outcome here.
func (s *Server) SubmitTraced(spec JobSpec, tenant, traceID string) (SubmitResult, error) {
	res, err := s.submitOutcome(spec, tenant, traceID)
	s.m.submits.With(submitOutcomeLabel(res, err)).Inc()
	return res, err
}

func (s *Server) submitOutcome(spec JobSpec, tenant, traceID string) (SubmitResult, error) {
	if tenant == "" {
		tenant = DefaultTenant
	}
	if !validTenant(tenant) {
		return SubmitResult{}, fmt.Errorf("serve: invalid tenant id %q (want 1-64 chars of [A-Za-z0-9._-])", tenant)
	}
	// The cache fast path answers before any validation or model
	// resolution: whatever is cached under this key was admitted once
	// already (by this tenant — keys are tenant-scoped). The
	// authoritative re-check happens inside the admission critical
	// section below; this one just spares hits the resolver work and is
	// the single place a miss is counted.
	digest := SpecDigest(spec)
	key := cacheKey(tenant, digest)
	if s.cache != nil {
		s.mu.Lock()
		res, hit := s.cacheLookupLocked(key, true)
		s.mu.Unlock()
		if hit {
			return res, nil
		}
		if url, owner, ok := s.attachTarget(key); ok {
			s.m.cacheRedirects.Inc()
			return SubmitResult{}, &AttachRedirectError{URL: url, Owner: owner}
		}
	}
	if spec.Trajectories > s.opts.MaxTrajectories {
		return SubmitResult{}, fmt.Errorf("serve: %d trajectories exceeds the per-job limit of %d", spec.Trajectories, s.opts.MaxTrajectories)
	}
	factory, err := s.opts.Resolver(core.ModelRef{Name: spec.Model, Omega: spec.Omega})
	if err != nil {
		return SubmitResult{}, err
	}
	cfg := core.Config{
		Factory:       factory,
		Trajectories:  spec.Trajectories,
		End:           spec.End,
		Quantum:       spec.Quantum,
		Period:        spec.Period,
		SimWorkers:    s.pool.Workers(),
		StatEngines:   1,
		WindowSize:    spec.WindowSize,
		WindowStep:    spec.WindowStep,
		Species:       spec.Species,
		KMeansK:       spec.KMeansK,
		PeriodHalfWin: spec.PeriodHalfWin,
		BaseSeed:      spec.Seed,
	}
	cfg, err = cfg.Normalized()
	if err != nil {
		return SubmitResult{}, err
	}
	// Bound the per-trajectory sample count in float64, before
	// sim.NewTask's int conversion could overflow on extreme ratios.
	cutsF := math.Floor(cfg.End/cfg.Period) + 1
	if cutsF > float64(s.opts.MaxCuts) {
		return SubmitResult{}, fmt.Errorf("serve: end/period yields %g samples per trajectory, limit is %d", cutsF, s.opts.MaxCuts)
	}
	sampleCost := int64(cfg.Trajectories) * int64(cutsF)
	// ResolveSpecies probes factory(0), so model construction errors still
	// surface synchronously as a 400 even though the full ensemble is
	// built lazily by the pool feeder.
	species, err := core.ResolveSpecies(cfg)
	if err != nil {
		return SubmitResult{}, err
	}
	model := core.ModelRef{Name: spec.Model, Omega: spec.Omega}

	// Resolve the tenant's dispatch counter before taking s.mu: a first
	// sighting registers a series under Registry.mu, and a concurrent
	// /metrics scrape orders the locks the other way (Render samples
	// gauges that read server state). Registry.Render no longer holds its
	// lock while sampling, but registering metrics under s.mu would still
	// couple the two locks for no benefit.
	obsTenantQuanta := s.m.tenantQuanta.With(tenant)

	s.mu.Lock()
	// Decisive cache re-check, in the same critical section that will
	// register the job and its in-flight digest: of two racing submissions
	// of one spec, the loser lands here after the winner registered and
	// attaches instead of simulating twice.
	if res, hit := s.cacheLookupLocked(key, false); hit {
		s.mu.Unlock()
		return res, nil
	}
	t := s.tenantLocked(tenant)
	queued, err := s.admitLocked(t, sampleCost)
	if err != nil {
		s.mu.Unlock()
		return SubmitResult{}, err
	}
	s.seq++
	id := s.jobID()
	// Per-job cap on concurrently analysed windows: half the farm (rounded
	// up), so a single stats-heavy tenant leaves engines for everyone else.
	statInflight := (s.stats.Engines() + 1) / 2
	job := newJob(id, spec, cfg, species, int(cutsF), s.opts, s.pool.Workers(), statInflight)
	job.digest = digest
	job.resubmit = s.pool.resubmit
	job.tenant = tenant
	job.sampleCost = sampleCost
	job.flow = t.flow
	job.tenantQuanta = &t.quanta
	job.obsTenantQuanta = obsTenantQuanta
	if traceID != "" {
		// Adopt the client's trace id (safe here: no span has been
		// recorded yet, and the job is not visible to anyone).
		job.trace = obs.NewTrace(traceID, s.m.spansDropped)
	}
	job.onTerminal = s.jobFinished
	job.startFn = func() { s.startJob(job, cfg, model) }
	if s.store != nil {
		job.initPersist(s.store, s.opts.CheckpointSamples)
	}
	if queued {
		job.state = StateQueued // pre-registration: no other goroutine sees the job yet
		job.trace.Event("admission", job.origin, "queued tenant="+tenant)
		s.enqueueLocked(t, job)
	} else {
		job.admission = admActive
		t.active++
		t.budgetUsed += sampleCost
		job.trace.Event("admission", job.origin, "tenant="+tenant)
	}
	s.jobs[id] = job
	s.order = append(s.order, id)
	if s.inflightDigest != nil && key != "" {
		if _, exists := s.inflightDigest[key]; !exists {
			s.inflightDigest[key] = job
		}
	}
	s.pruneLocked()
	s.mu.Unlock()

	// In a replicated tier, take the job's ownership lease before the
	// first journal append (the store fence refuses appends for jobs
	// whose lease this replica does not hold). The cache key rides the
	// lease so peers can redirect a matching submission here while it
	// runs.
	if s.leases != nil {
		if _, lerr := s.leases.AcquireDigest(id, key); lerr != nil {
			job.noPersist.Store(true)
			job.fail(lerr)
			s.unregister(id)
			return SubmitResult{}, fmt.Errorf("serve: acquiring job lease: %w", lerr)
		}
		// Load changed: refresh the heartbeat now rather than at the next
		// renew tick, so peer rebalancers and submit forwarders see this
		// replica's owned-job count while the job is still young.
		s.announcePeer()
	}
	// Journal the submission before any goroutine can produce durable
	// events for it (replay ignores windows of never-submitted jobs). A
	// job the store cannot record is rejected: accepting it would promise
	// a durability the journal does not have.
	if s.store != nil {
		specJSON, jerr := json.Marshal(spec)
		if jerr == nil {
			jerr = s.store.AppendSubmit(id, job.submitted, specJSON, tenant)
		}
		if jerr != nil {
			job.noPersist.Store(true)
			job.fail(jerr) // releases the tenant slot/budget via jobFinished
			s.unregister(id)
			return SubmitResult{}, fmt.Errorf("serve: journaling submission: %w", jerr)
		}
	}

	if queued {
		// The job waits in its tenant's admission queue; dispatchLocked
		// launches it (via startFn) when a slot frees.
		return SubmitResult{Job: job}, nil
	}
	if err := s.startJobChecked(job, cfg, model); err != nil {
		// The pool closed between admission and scheduling: unregister
		// the job so the error response is consistent with the registry
		// (no ghost failed job the client was told does not exist).
		s.unregister(id)
		return SubmitResult{}, err
	}
	return SubmitResult{Job: job}, nil
}

// startJob launches an admitted job: its windower goroutine, then either
// the remote quantum scheduler (live cluster workers) or the local pool.
// Failures land on the job itself — used by the queue-dispatch path,
// where there is no submitter left to return an error to.
func (s *Server) startJob(job *Job, cfg core.Config, model core.ModelRef) {
	if err := s.startJobChecked(job, cfg, model); err != nil {
		_ = err // startJobChecked already failed the job
	}
}

// startJobChecked is startJob returning the scheduling error (the direct
// submission path propagates it to the client after unregistering).
func (s *Server) startJobChecked(job *Job, cfg core.Config, model core.ModelRef) error {
	job.trace.Event("dispatch", job.origin, "")
	go job.runWindower(s.stats)
	// Remote sharding first: with live cluster workers the quantum
	// scheduler owns the submission (mixing remote streams and the local
	// pool); otherwise everything goes to the local pool as before.
	if s.startRemote(job, cfg, model) {
		return nil
	}
	build := func(i int) (*sim.Task, error) { return core.NewTrajectoryTask(cfg, i) }
	if err := s.pool.Submit(job, cfg.Trajectories, build); err != nil {
		job.fail(err)
		return err
	}
	return nil
}

// unregister removes a job that failed during submission, after it was
// provisionally registered.
func (s *Server) unregister(id string) {
	s.mu.Lock()
	if j, ok := s.jobs[id]; ok && j.digest != "" {
		if key := cacheKey(j.tenant, j.digest); s.inflightDigest[key] == j {
			delete(s.inflightDigest, key)
		}
	}
	delete(s.jobs, id)
	for i, oid := range s.order {
		if oid == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	s.mu.Unlock()
	if s.store != nil {
		s.store.Forget(id)
	}
}

// pruneLocked evicts the oldest terminal jobs beyond MaxCompleted. Active
// jobs are never evicted. Callers hold s.mu.
func (s *Server) pruneLocked() {
	terminal := 0
	for _, j := range s.jobs {
		if j.State().Terminal() {
			terminal++
		}
	}
	if terminal <= s.opts.MaxCompleted {
		return
	}
	kept := s.order[:0]
	for _, id := range s.order {
		if terminal > s.opts.MaxCompleted && s.jobs[id].State().Terminal() {
			delete(s.jobs, id)
			if s.cache != nil {
				// The results leave the registry with the job; a cache hit
				// on its digest would dangle.
				s.cache.RemoveJob(id)
			}
			if s.store != nil {
				// Evicted results no longer need to outlive anything:
				// drop the job from the journal at its next compaction.
				s.store.Forget(id)
			}
			terminal--
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// Get returns a job by id.
func (s *Server) Get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// jobCounts tallies the registry's jobs by lifecycle phase — the shared
// source of /healthz's jobs_* keys and the cwc_jobs gauges.
func (s *Server) jobCounts() (total, active, queued int) {
	jobs := s.List()
	total = len(jobs)
	for _, j := range jobs {
		switch st := j.State(); {
		case st == StateQueued:
			queued++
		case !st.Terminal():
			active++
		}
	}
	return total, active, queued
}

// remoteWorkerCounts tallies the known and live remote sim workers —
// the shared source of /healthz's remote_workers* keys and the
// cwc_remote_workers gauges.
func (s *Server) remoteWorkerCounts() (total, live int) {
	workers := s.registry.snapshot()
	for _, w := range workers {
		if w.Alive {
			live++
		}
	}
	return len(workers), live
}

// List returns all jobs in submission order.
func (s *Server) List() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// Close fails every non-terminal job and shuts the pool and the stat farm
// down. The HTTP handler stays callable (reads keep working; submissions
// fail). Marking the server closed before snapshotting the registry makes
// the shutdown race-free against concurrent Submits: a submission that
// registers after this point is rejected by admitLocked, so no job can
// slip past both the fail loop and the pool's closed check and be left
// running forever.
// In-flight jobs are failed in memory but NOT journaled as failed: with
// a durable store, a shutdown is not a job outcome — the next start
// recovers them as running and resumes from their last checkpoint. The
// store is flushed and closed last, after every producer of journal
// events has stopped.
func (s *Server) Close() {
	// Voluntary handoff first, while the replica loops, the HTTP surface
	// and the peers are all still up: every owned job is checkpointed at
	// its frontier and its lease released with a handoff pointer, and
	// the least-loaded live peers are nudged to adopt right now — a
	// rolling restart stalls a stream by one adoption, not one TTL.
	// Standalone servers have no leases; Drain only stops admission.
	s.Drain()
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	// Stop the replica loops next: the failover scan adopts into the
	// store and must not race its Close, and a renew fired after the
	// jobs are failed would re-extend leases this shutdown releases.
	if s.replicaStop != nil {
		close(s.replicaStop)
		s.replicaWG.Wait()
	}
	for _, j := range s.List() {
		j.noPersist.Store(true)
		j.setTerminal(StateFailed, "server shutting down")
	}
	// Backstop: release any lease Drain could not hand off (a job that
	// raced admission during the drain, a failed handoff write), so a
	// peer can still take the journaled jobs over immediately instead of
	// waiting out the TTL.
	if s.leases != nil {
		for _, id := range s.leases.HeldJobs() {
			s.leases.Release(id)
		}
	}
	s.pool.Close()
	s.stats.Close()
	if s.store != nil {
		s.store.Close()
	}
	if s.peers != nil {
		s.peers.Remove()
	}
}

// jobID formats the next submission id. Replicas namespace their ids so
// two replicas admitting jobs concurrently never collide. Callers hold
// s.mu (the id consumes s.seq).
func (s *Server) jobID() string {
	if s.opts.ReplicaID != "" {
		return fmt.Sprintf("job-%s-%06d", s.opts.ReplicaID, s.seq)
	}
	return fmt.Sprintf("job-%06d", s.seq)
}
