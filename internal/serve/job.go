package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"cwcflow/internal/core"
	"cwcflow/internal/obs"
	"cwcflow/internal/platform"
	"cwcflow/internal/serve/sched"
	"cwcflow/internal/sim"
	"cwcflow/internal/stats"
	"cwcflow/internal/store"
	"cwcflow/internal/window"
)

// State is a job's lifecycle phase.
type State string

const (
	// StateQueued means the job was admitted but its tenant's concurrency
	// quota is exhausted: it waits in the tenant's admission queue (ordered
	// by priority class, then submission order) until a slot frees.
	StateQueued State = "queued"
	// StateRunning means simulation tasks are scheduled on the pool and
	// windows are streaming out.
	StateRunning State = "running"
	// StateDone means every trajectory completed and every window was
	// analysed.
	StateDone State = "done"
	// StateCancelled means the job was cancelled before completion.
	StateCancelled State = "cancelled"
	// StateFailed means a simulator or analysis error aborted the job.
	StateFailed State = "failed"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateCancelled || s == StateFailed
}

// JobSpec is the wire format of a job submission.
type JobSpec struct {
	// Model names a built-in model (see core.ModelRef): "neurospora",
	// "neurospora-nrm", "neurospora-cwc", "lotka-volterra", "sir",
	// "schlogl", "enzyme".
	Model string `json:"model"`
	// Omega is the system size for models that take one (0 = default).
	Omega float64 `json:"omega,omitempty"`
	// Trajectories is the Monte Carlo ensemble size.
	Trajectories int `json:"trajectories"`
	// End is the simulated horizon.
	End float64 `json:"end"`
	// Quantum is the simulated time per scheduling step (0 = one period).
	Quantum float64 `json:"quantum,omitempty"`
	// Period is the sampling interval τ.
	Period float64 `json:"period"`
	// WindowSize and WindowStep configure the sliding windows of cuts
	// (0 = defaults: size 16, tumbling).
	WindowSize int `json:"window,omitempty"`
	WindowStep int `json:"step,omitempty"`
	// Species selects the observable indices to analyse (empty = all).
	Species []int `json:"species,omitempty"`
	// KMeansK clusters each window's last cut into K groups (0 = off).
	KMeansK int `json:"kmeans_k,omitempty"`
	// PeriodHalfWin enables period detection with the given smoothing
	// half-window (0 = off).
	PeriodHalfWin int `json:"period_halfwin,omitempty"`
	// Seed is the base RNG seed (per-trajectory seeds derive from it).
	Seed int64 `json:"seed,omitempty"`
	// Priority is the job's priority class within its tenant's admission
	// queue: higher classes dispatch first when a concurrency slot frees
	// (0 = normal). Priority orders admission only — once running, every
	// job's quanta are scheduled by the pool's dispatch discipline.
	Priority int `json:"priority,omitempty"`
}

// Progress counts a job's work, both completed and total, plus the
// backpressure counters of the job's path through the shared pool and stat
// farm: QueueDepth is the number of sample batches waiting between the
// pool collector and the job's windower, DeferredQuanta counts simulation
// quanta the pool postponed because that queue was over its high-water
// mark, StatsInFlight is the number of this job's windows currently on the
// shared stat farm, and SpilledBatches counts batches dropped on the floor
// by the last-resort overflow bound (a job that spilled cannot complete
// and is failed).
type Progress struct {
	TasksDone      int    `json:"tasks_done"`
	Trajectories   int    `json:"trajectories"`
	Samples        int64  `json:"samples"`
	Cuts           int    `json:"cuts"`
	TotalCuts      int    `json:"total_cuts"`
	Windows        int    `json:"windows"`
	TotalWindows   int    `json:"total_windows"`
	Reactions      uint64 `json:"reactions"`
	DeadTasks      int    `json:"dead_tasks,omitempty"`
	QueueDepth     int    `json:"queue_depth"`
	DeferredQuanta int64  `json:"deferred_quanta,omitempty"`
	StatsInFlight  int    `json:"stats_in_flight,omitempty"`
	SpilledBatches int64  `json:"spilled_batches,omitempty"`
	// RemoteTasksDone counts trajectories completed on remote sim workers;
	// RequeuedTasks counts trajectories rescheduled off a dead or
	// timed-out worker (each re-run deduplicates its replayed prefix, so
	// requeues never change the result stream).
	RemoteTasksDone int64 `json:"remote_tasks_done,omitempty"`
	RequeuedTasks   int64 `json:"requeued_tasks,omitempty"`
}

// LatencySummary summarises a streaming latency distribution in
// milliseconds (P50/P95 via the P² estimator).
type LatencySummary struct {
	N      int64   `json:"n"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
}

// Status is the wire format of a job's state snapshot.
type Status struct {
	ID    string  `json:"id"`
	State State   `json:"state"`
	Spec  JobSpec `json:"spec"`
	// Tenant is the submitting tenant's id (the X-CWC-Tenant header, or
	// the default tenant for anonymous submissions).
	Tenant string `json:"tenant,omitempty"`
	// Owner is the replica driving the job, set only when answering for a
	// job another replica owns (single-server deployments omit it).
	Owner string `json:"owner,omitempty"`
	// QueuePosition is the job's 1-based position in its tenant's
	// admission queue while StateQueued (0 otherwise).
	QueuePosition int             `json:"queue_position,omitempty"`
	SubmittedAt   time.Time       `json:"submitted_at"`
	FinishedAt    *time.Time      `json:"finished_at,omitempty"`
	Error         string          `json:"error,omitempty"`
	Progress      Progress        `json:"progress"`
	WindowLatency *LatencySummary `json:"window_latency,omitempty"`
	// EtaSeconds projects the remaining runtime by replaying the job's
	// measured per-quantum service times through the platform DES.
	// Absent until enough quanta were measured (or for very large jobs);
	// a lower bound when several jobs share the pool.
	EtaSeconds *float64 `json:"eta_seconds,omitempty"`
	// Recovered marks a job reloaded from the durable store after a
	// restart — either re-served from its journaled results (terminal
	// jobs) or resumed from its last checkpoint (in-flight jobs).
	Recovered bool `json:"recovered,omitempty"`
	// SpecDigest is the content address of the job's canonical spec (see
	// SpecDigest): identical digests mean identical results, which is
	// what lets repeat submissions answer from the cache.
	SpecDigest string `json:"spec_digest,omitempty"`
	// CacheHit is set on submission responses answered without creating a
	// job: from the result cache (a completed job) or by attaching to an
	// in-flight one. Never set on status polls.
	CacheHit bool `json:"cache_hit,omitempty"`
	// Subscribers is the number of clients currently streaming this job.
	Subscribers int `json:"subscribers,omitempty"`
	// Attached counts submissions answered by attaching to this job while
	// it ran.
	Attached int64 `json:"attached,omitempty"`
	// TraceID identifies the job's span log (GET /jobs/{id}/trace). It is
	// the client's traceparent trace id when one was submitted, or a
	// server-minted one otherwise.
	TraceID string `json:"trace_id,omitempty"`
}

// subscriber is one streaming client's bounded mailbox. Windows that
// arrive while the mailbox is full are counted as lost rather than
// blocking the job's analysis stage.
type subscriber struct {
	ch   chan core.WindowStat
	lost int // guarded by the job mutex
}

// Job is one simulation-analysis run multiplexed onto the shared
// infrastructure: its trajectory tasks interleave with every other job's
// on the simulation pool, a windower goroutine drains the job's ingress
// queue through the alignment → windowing stages (window.Stream) and feeds
// each completed window to the service-wide farm of statistical engines,
// and the per-job reorder buffer republishes the engines' out-of-order
// results as an in-order WindowStat stream to the result ring and the live
// subscribers.
type Job struct {
	id          string
	spec        JobSpec
	cfg         core.Config
	species     []int
	totalTasks  int
	totalCuts   int
	totalWins   int
	poolWorkers int
	resultCap   int
	subCap      int

	// Tenancy. tenant is the owning tenant's id; sampleCost is the job's
	// sample-budget charge (trajectories × cuts), held from admission to
	// the terminal transition; flow is the tenant's WFQ flow (nil under
	// the fifo scheduler); tenantQuanta points at the tenant's dispatched
	// quantum counter. All are set before any job goroutine starts.
	// admission is the job's slot accounting phase, guarded by the
	// *server* mutex (see Server.jobFinished); queuePos mirrors the job's
	// 1-based admission-queue position for Status (0 = not queued).
	// startFn, set for queued jobs, launches the job when a slot frees;
	// onTerminal is the server's accounting/dispatch callback, invoked
	// exactly once at the end of the terminal transition.
	// digest is the content address of the job's canonical spec, set
	// before the job is visible to any other goroutine (submission or
	// recovery) and immutable after — readable without locks. attached
	// counts submissions that shared this job instead of starting one.
	digest   string
	attached atomic.Int64

	tenant       string
	sampleCost   int64
	flow         *sched.Flow[poolTask]
	tenantQuanta *atomic.Int64
	admission    int
	queuePos     atomic.Int32
	startFn      func()
	onTerminal   func(*Job)

	// Observability. metrics is the server's metric set (never nil — a
	// zero-value set of nil-safe no-op metrics when the job is built
	// outside a Server); obsTenantQuanta is the job's cached per-tenant
	// quantum counter child; trace is the job's bounded span log, created
	// with the job and readable concurrently (GET /jobs/{id}/trace);
	// enqueuedAt stamps admission-queue entry for the admission-wait
	// histogram. All set before any job goroutine starts.
	metrics         *serveMetrics
	obsTenantQuanta *obs.Counter
	trace           *obs.Trace
	enqueuedAt      time.Time
	// origin labels this server's spans in the trace (the replica id, or
	// "local" standalone); logf, when non-nil, gets the one-line trace
	// summary at the terminal transition.
	origin string
	logf   func(format string, args ...any)

	ctx    context.Context
	cancel context.CancelFunc
	in     *ingress // pool collector → windower, never blocking the collector

	// lowWater is the ingress depth below which parked tasks reinject;
	// resubmit (set once at submission, before any task runs) trickles
	// them back into the pool.
	lowWater int
	resubmit func([]poolTask)

	// statSlots caps this job's windows in flight on the shared stat farm
	// (fairness: one heavy tenant cannot occupy every engine). The
	// windower acquires a slot before submitting; the engine side frees it.
	statSlots chan struct{}

	deferred   atomic.Int64 // quanta the pool deferred due to congestion
	remoteDone atomic.Int64 // trajectories completed on remote workers
	requeued   atomic.Int64 // trajectories requeued off dead workers

	// Durability (all nil/zero when the server runs without a store).
	// persist journals published windows, trajectory checkpoints and the
	// terminal transition; noPersist suppresses the terminal event during
	// server shutdown, which is not a job outcome — the job must recover
	// as running. resumeCut > 0 marks a recovered job: samples below it
	// fed the durably published windows, so accept drops them before any
	// accounting, and the windower's stream + sequence numbers start
	// there. recovered marks both resumed and re-served jobs in Status.
	persist    *store.Store
	ckptEvery  int // samples between trajectory checkpoints
	resumeCut  int
	startSeq   int
	recovered  bool
	noPersist  atomic.Bool
	recStatus  *Status // terminal recovered jobs: the journaled final status
	persistErr error   // first window-journal failure, guarded by mu
	// drainCkpt, when set, makes every in-flight task checkpoint at its
	// next quantum boundary regardless of the ckptEvery cadence: a drain
	// or handoff wants the frontier as fresh as the journal can carry
	// before the lease is released with a pointer to it.
	drainCkpt atomic.Bool

	// sched, when non-nil, is the job's remote quantum scheduler: every
	// delivery passes through its dedup filter and terminal transitions
	// stop it. Set once at submission, before any task can produce a
	// delivery.
	sched atomic.Pointer[remoteJob]

	mu          sync.Mutex
	lastCkpt    map[int]int // per-trajectory sample index of the last checkpoint
	state       State
	errMsg      string
	submitted   time.Time
	finished    time.Time
	samples     int64
	cuts        int
	windows     int
	tasksDone   int
	deadTasks   int
	reactions   uint64
	quantum     stats.Welford // seconds of service per simulation quantum
	winLat      stats.Welford // seconds of analysis per window
	winP50      *stats.P2Quantile
	winP95      *stats.P2Quantile
	parked      []poolTask          // congestion-deferred tasks, off the farm
	pending     map[int]pendingStat // reorder buffer: seq → analysed window
	nextPublish int                 // next window sequence number to publish
	subAll      bool                // windower submitted every window
	subTotal    int                 // total windows submitted (valid once subAll)
	results     []core.WindowStat   // ring of the most recent windows
	firstKept   int                 // window index of results[0]
	subs        map[*subscriber]struct{}

	// etaAt/etaVal/etaOK cache the DES projection so status polling does
	// not re-run the simulation on every request.
	etaAt  time.Time
	etaVal float64
	etaOK  bool
}

// pendingStat is one analysed window parked in the reorder buffer until
// every earlier window has been published. at stamps its arrival for the
// reorder-wait histogram.
type pendingStat struct {
	ws  core.WindowStat
	lat time.Duration
	at  time.Time
}

func newJob(id string, spec JobSpec, cfg core.Config, species []int, samplesPerTraj int, opts Options, poolWorkers, statInflight int) *Job {
	ctx, cancel := context.WithCancel(context.Background())
	p50, _ := stats.NewP2Quantile(0.5)
	p95, _ := stats.NewP2Quantile(0.95)
	// The ingress high-water mark is where the pool starts deferring this
	// job's quanta; the hard capacity sits far enough above it that the
	// quanta already in flight through the pool (at most one per worker
	// plus the collector queue) can always land without spilling. The
	// maxJobWorkerStreams term covers remote delivery: each of the job's
	// worker-connection readers blocks on congestion holding at most one
	// undelivered batch, and the scheduler opens at most that many
	// streams, so remote pushes can never overshoot the bound either.
	highWater := opts.SampleBuffer
	capacity := highWater + poolWorkers + opts.QueueDepth + 8 + maxJobWorkerStreams
	if statInflight < 1 {
		statInflight = 1
	}
	lowWater := highWater / 2
	if lowWater < 1 {
		lowWater = 1
	}
	m := opts.metrics
	if m == nil {
		// Built outside a Server (tests): a zero metric set, where every
		// field is a nil obs metric and every observation a no-op.
		m = new(serveMetrics)
	}
	return &Job{
		id:          id,
		spec:        spec,
		cfg:         cfg,
		species:     species,
		totalTasks:  cfg.Trajectories,
		totalCuts:   samplesPerTraj,
		totalWins:   window.WindowCount(samplesPerTraj, cfg.WindowSize, cfg.WindowStep),
		poolWorkers: poolWorkers,
		resultCap:   opts.ResultBuffer,
		subCap:      opts.SubscriberBuffer,
		ctx:         ctx,
		cancel:      cancel,
		in:          newIngress(highWater, capacity, m.ingressWait),
		lowWater:    lowWater,
		metrics:     m,
		trace:       obs.NewTrace("", m.spansDropped),
		origin:      jobOrigin(opts),
		logf:        opts.Logf,
		statSlots:   make(chan struct{}, statInflight),
		state:       StateRunning,
		submitted:   time.Now(),
		winP50:      p50,
		winP95:      p95,
		pending:     make(map[int]pendingStat),
		subs:        make(map[*subscriber]struct{}),
	}
}

// jobOrigin is the span origin for this server's own lifecycle spans.
func jobOrigin(opts Options) string {
	if opts.ReplicaID != "" {
		return opts.ReplicaID
	}
	return "local"
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// Trace returns the job's span log (never nil).
func (j *Job) Trace() *obs.Trace { return j.trace }

// initPersist wires the job to the durable store. Call before any job
// goroutine starts.
func (j *Job) initPersist(st *store.Store, ckptEvery int) {
	j.persist = st
	j.ckptEvery = ckptEvery
	j.lastCkpt = make(map[int]int)
}

// initResume primes a recovered job with the journal's durable state:
// the published-window frontier (resume cut + window sequence), the
// retained result tail, and the original submission time. Call before
// any job goroutine starts.
func (j *Job) initResume(rec *store.JobRecord) {
	windows := rec.WindowCount
	j.resumeCut = windows * j.cfg.WindowStep
	j.startSeq = windows
	j.recovered = true
	j.submitted = rec.SubmittedAt
	j.windows = windows
	j.nextPublish = windows
	j.results = append(j.results, rec.Windows...)
	j.firstKept = rec.FirstRetained
	j.cuts = j.resumeCut
	if j.cuts > j.totalCuts {
		j.cuts = j.totalCuts
	}
}

// maybeCheckpoint journals the task's engine snapshot when the
// trajectory has advanced ckptEvery samples past its last checkpoint.
// Engines that cannot snapshot (the CWC term-rewriting engine) are
// silently skipped — recovery replays them from the seed instead.
func (j *Job) maybeCheckpoint(t *sim.Task) {
	idx := t.NextIndex()
	force := j.drainCkpt.Load()
	j.mu.Lock()
	last, seen := j.lastCkpt[t.Traj]
	// A drain overrides the cadence (any progress past the last
	// checkpoint is worth journaling before the handoff) but still
	// dedupes: a trajectory that has not advanced has nothing to add.
	if seen && idx-last < j.ckptEvery && !(force && idx > last) {
		j.mu.Unlock()
		return
	}
	j.lastCkpt[t.Traj] = idx
	j.mu.Unlock()
	data, ok, err := t.Snapshot()
	if err != nil || !ok {
		return
	}
	_ = j.persist.AppendCheckpoint(j.id, t.Traj, idx, data)
}

// durableWindows is the job's journaled window frontier — what a
// handoff pointer may safely advertise. publishLocked appends each
// window before counting it, so while the journal is healthy the
// in-memory count IS the durable frontier; after a journal failure the
// true frontier is unknown, and 0 (a trivially safe lower bound — the
// adopter peeks the real journal anyway) is returned instead.
func (j *Job) durableWindows() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.persistErr != nil {
		return 0
	}
	return j.windows
}

// remoteCheckpoint journals an engine snapshot shipped by a remote
// worker (ResultMsg.Ckpt), advancing the durable frontier with remote
// progress exactly like a local checkpoint would. Requeue replays can
// redeliver a checkpoint; the per-trajectory high-water mark skips
// duplicates and stale snapshots.
func (j *Job) remoteCheckpoint(traj, next int, data []byte) {
	if j.persist == nil || j.noPersist.Load() {
		return
	}
	j.mu.Lock()
	last, seen := j.lastCkpt[traj]
	if seen && next <= last {
		j.mu.Unlock()
		return
	}
	j.lastCkpt[traj] = next
	j.mu.Unlock()
	_ = j.persist.AppendCheckpoint(j.id, traj, next, data)
}

// setSched installs the job's remote quantum scheduler.
func (j *Job) setSched(rj *remoteJob) { j.sched.Store(rj) }

// State returns the job's current lifecycle phase.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

func (j *Job) terminal() bool { return j.State().Terminal() }

// Cancel moves the job to StateCancelled (no-op once terminal). Tasks
// still queued or in flight on the pool are dropped at their next
// scheduling step.
func (j *Job) Cancel() { j.setTerminal(StateCancelled, "") }

func (j *Job) fail(err error) { j.setTerminal(StateFailed, err.Error()) }

// setTerminal performs the one idempotent transition into a final state:
// it stamps the finish time, cancels the job context (which stops the
// feeder, the workers' interest and the windower), drains the ingress
// queue and closes every subscriber's channel.
func (j *Job) setTerminal(st State, errMsg string) {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	j.state = st
	j.errMsg = errMsg
	j.finished = time.Now()
	subs := j.subs
	j.subs = nil
	parked := j.parked
	j.parked = nil
	submitted, finished := j.submitted, j.finished
	j.mu.Unlock()
	detail := string(st)
	if errMsg != "" {
		detail += ": " + errMsg
	}
	j.trace.Span("run", j.origin, detail, submitted, finished)
	if j.logf != nil {
		j.logf("job %s %s: %s", j.id, st, j.trace.Summary())
	}
	j.cancel()
	if rj := j.sched.Load(); rj != nil {
		rj.stop()
	}
	// Journal the outcome (fsynced): completed results must outlive the
	// process, and failures/cancellations must not resume on restart.
	// Shutdown is the exception (noPersist): the job recovers as running.
	// Best effort by construction — the job is already terminal, so a
	// failed append (journal poisoned by an earlier write error) can only
	// mean the job recovers as running on restart and re-runs, which
	// determinism makes safe.
	if j.persist != nil && !j.noPersist.Load() {
		final := j.status(false)
		statusJSON, err := json.Marshal(&final)
		if err != nil {
			statusJSON = nil
		}
		_ = j.persist.AppendTerminal(j.id, string(st), errMsg, statusJSON)
	}
	j.in.drain()
	// Hand any parked tasks back to the pool: its workers drop a terminal
	// job's tasks with completion accounting, which is what drains the
	// job from the pool (park refuses new tasks once terminal).
	if len(parked) > 0 && j.resubmit != nil {
		j.resubmit(parked)
	}
	for sub := range subs {
		close(sub.ch)
	}
	// Last, with no locks held: release the job's tenant slot and budget
	// and let the server dispatch queued jobs into the freed capacity.
	if j.onTerminal != nil {
		j.onTerminal(j)
	}
}

// accept routes one delivery into the job — from the pool collector for
// locally-simulated quanta, and from the remote scheduler's per-worker
// readers for quanta simulated on the cluster. It NEVER blocks: the batch
// lands in the job's bounded ingress queue (or, past the hard bound,
// spills), so a job whose analysis lags cannot pause delivery to any other
// job. Deliveries of one task arrive in order from whichever single source
// currently owns the trajectory, and its final task-done marker arrives
// after every sample batch, so closing the ingress here is race-free.
func (j *Job) accept(_ context.Context, d delivery) error {
	if j.resumeCut > 0 && d.batch != nil {
		// Resume filter: a recovered job's trajectories restart at (or
		// before) their last checkpoint, so the replayed prefix below the
		// durable window frontier must never reach the stream again.
		kept := d.batch.Samples[:0]
		for _, smp := range d.batch.Samples {
			if smp.Index >= j.resumeCut {
				kept = append(kept, smp)
			}
		}
		d.batch.Samples = kept
		if len(kept) == 0 {
			d.batch.Release()
			d.batch = nil
		}
	}
	if rj := j.sched.Load(); rj != nil {
		// Dedup for requeued trajectories: drop the replayed sample prefix
		// and duplicate completion markers before any accounting.
		rj.filter(&d)
	}
	if d.err != nil {
		j.fail(fmt.Errorf("serve: trajectory simulation: %w", d.err))
	}
	if d.batch != nil {
		if j.terminal() {
			d.batch.Release()
		} else if spilled := j.in.push(d.batch); spilled > 0 {
			// The overflow ring dropped a batch: cuts can never complete,
			// so the job cannot finish correctly. Fail it rather than run
			// a simulation whose analysis silently lost data.
			j.metrics.spilled.Add(uint64(spilled))
			j.fail(fmt.Errorf("serve: analysis backlog overflow: %d sample batches spilled", spilled))
		}
	}
	j.mu.Lock()
	if d.elapsed > 0 {
		j.quantum.Add(d.elapsed.Seconds())
	}
	var closeStream bool
	if d.taskDone {
		j.tasksDone++
		j.reactions += d.steps
		if d.dead {
			j.deadTasks++
		}
		closeStream = j.tasksDone == j.totalTasks
	}
	j.mu.Unlock()
	if closeStream {
		j.in.close()
	}
	return nil
}

// congested reports whether the job's ingress backlog is over its
// high-water mark; the pool then parks the job's quanta instead of
// simulating into a queue its analysis cannot drain.
func (j *Job) congested() bool { return j.in.congested() }

// noteDeferred counts one deferred simulation quantum, in the job's
// progress (per-job JSON) and the service-wide counter, from the single
// choke point where the pool parks a quantum.
func (j *Job) noteDeferred() {
	j.deferred.Add(1)
	j.metrics.deferred.Inc()
}

// park shelves a congestion-deferred task on the job, off the farm
// entirely, until unparkIfDrained (or the terminal transition) reinjects
// it. It reports false if the job is already terminal — the caller then
// drops the task with completion accounting instead.
func (j *Job) park(pt poolTask) bool {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return false
	}
	j.parked = append(j.parked, pt)
	j.mu.Unlock()
	// The congestion observation that led here may be stale: the windower
	// can have drained the ring (and run its unpark check) between the
	// worker's congested() check and this park. Wake it so the task can
	// never be stranded — a spurious wakeup just costs one empty loop.
	if j.in.depth() < j.lowWater {
		j.in.wake()
	}
	return true
}

// unparkIfDrained reinjects the parked tasks once the ingress backlog has
// drained below the low-water mark. Called by the windower between
// batches; the reinjection itself runs on a pool feeder goroutine, so the
// windower never blocks on the dispatcher.
func (j *Job) unparkIfDrained() {
	if j.in.depth() >= j.lowWater {
		return
	}
	j.mu.Lock()
	tasks := j.parked
	j.parked = nil
	j.mu.Unlock()
	if len(tasks) > 0 && j.resubmit != nil {
		j.resubmit(tasks)
	}
	if rj := j.sched.Load(); rj != nil {
		// The remote scheduler also defers trajectory starts while the
		// ingress is congested; resume them now that it drained.
		rj.kick()
	}
}

// runWindower is the job's stream-reshaping goroutine: it drains the
// ingress queue through the fused alignment/windowing stream
// (window.Stream) and submits every completed window — deep-copied, so the
// stream's cut recycling stays intact — to the shared stat farm, tagged
// with the job and a per-job sequence number. One goroutine per job, never
// one per trajectory or per window: the service's goroutine count stays at
// O(pool workers + stat engines + active jobs).
func (j *Job) runWindower(farm *statFarm) {
	// A recovered job's stream starts at the durable window frontier:
	// cuts below it were consumed into journaled windows, and the window
	// sequence numbers continue where the crashed run's left off.
	stream, err := window.NewStreamAt(j.cfg.Trajectories, j.cfg.WindowSize, j.cfg.WindowStep, j.resumeCut)
	if err != nil {
		j.fail(err)
		return
	}
	seq := j.startSeq
	emit := func(w window.Window) error {
		// Fairness cap: hold at most statSlots windows on the shared farm.
		select {
		case j.statSlots <- struct{}{}:
		case <-j.ctx.Done():
			return j.ctx.Err()
		}
		if err := farm.submit(j, getWinTask(j, seq, w)); err != nil {
			return err
		}
		seq++
		return nil
	}
	for {
		batch, done, spilled := j.in.pop()
		if spilled > 0 {
			// accept already failed the job; stop consuming, but release
			// the batch this pop may have handed us first.
			if batch != nil {
				batch.Release()
			}
			return
		}
		if batch == nil {
			if done {
				if err := stream.Close(emit); err != nil {
					j.fail(err)
					return
				}
				j.finishSubmitting(seq)
				return
			}
			j.unparkIfDrained()
			select {
			case <-j.in.notify:
				continue
			case <-j.ctx.Done():
				return // already terminal (cancelled, failed, or closing)
			}
		}
		// The aligner inside stream copies every state into recycled cut
		// storage, so the batch goes back to the pool as soon as its
		// samples are pushed.
		n := len(batch.Samples)
		for _, s := range batch.Samples {
			if err := stream.Push(s, emit); err != nil {
				batch.Release()
				if j.ctx.Err() == nil {
					j.fail(err)
				}
				return
			}
		}
		batch.Release()
		j.mu.Lock()
		j.samples += int64(n)
		j.cuts = stream.Cuts()
		j.mu.Unlock()
		j.unparkIfDrained()
	}
}

// finishSubmitting records that every window of the job has been handed to
// the stat farm; the job completes when the last of them is published.
func (j *Job) finishSubmitting(total int) {
	j.mu.Lock()
	j.subAll = true
	j.subTotal = total
	done := j.nextPublish == total
	j.mu.Unlock()
	if done {
		j.setTerminal(StateDone, "")
	}
}

// statSlotFree releases one of the job's in-flight analysis slots.
func (j *Job) statSlotFree() { <-j.statSlots }

// completeStat receives one analysed window from a stat engine, parks it
// in the reorder buffer, and publishes every consecutively-ready window in
// window order — the ordered reassembly that makes N engines
// indistinguishable from 1 in the result stream.
func (j *Job) completeStat(seq int, ws core.WindowStat, lat time.Duration) {
	j.statSlotFree()
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	j.pending[seq] = pendingStat{ws: ws, lat: lat, at: time.Now()}
	for {
		p, ok := j.pending[j.nextPublish]
		if !ok {
			break
		}
		delete(j.pending, j.nextPublish)
		j.nextPublish++
		j.metrics.reorderWait.Observe(time.Since(p.at))
		j.publishLocked(p.ws, p.lat)
	}
	done := j.subAll && j.nextPublish == j.subTotal
	perr := j.persistErr
	j.mu.Unlock()
	if perr != nil {
		// Journaling a window failed: completing would acknowledge
		// durable results the journal does not hold. Recovery will
		// resume the job from the last good frontier instead.
		j.fail(perr)
		return
	}
	if done {
		j.setTerminal(StateDone, "")
	}
}

// publishLocked appends one analysed window to the bounded result ring and
// fans it out to the live subscribers without ever blocking: a subscriber
// whose mailbox is full loses the window (and is told how many it lost
// when the stream ends). Callers hold j.mu.
func (j *Job) publishLocked(ws core.WindowStat, lat time.Duration) {
	// Journal before counting: the durable frontier must never lead the
	// in-memory one. The append is one unsynced write under the job
	// mutex — order across publishes is what recovery depends on. A
	// failed append would freeze the durable frontier while the
	// in-memory one advances (a later terminal "done" would then serve
	// silently incomplete results after a restart), so the first failure
	// is recorded here and fails the job once the mutex is released.
	if j.persist != nil && j.persistErr == nil {
		if err := j.persist.AppendWindow(j.id, j.windows, &ws); err != nil {
			j.persistErr = fmt.Errorf("serve: journaling window %d: %w", j.windows, err)
		}
	}
	if j.windows == j.startSeq {
		// First window out of this run of the job: the time-to-first-result
		// edge of the trace.
		j.trace.Event("first-window", "", "")
	}
	j.windows++
	j.metrics.windows.Inc()
	sec := lat.Seconds()
	j.winLat.Add(sec)
	j.winP50.Add(sec)
	j.winP95.Add(sec)
	j.results = append(j.results, ws)
	if len(j.results) > j.resultCap {
		// Evict in batches (a quarter of the cap) so the shift is
		// amortized O(1) per publish rather than O(cap) once full.
		drop := len(j.results) - j.resultCap + j.resultCap/4
		if drop > len(j.results) {
			drop = len(j.results)
		}
		j.results = append(j.results[:0], j.results[drop:]...)
		j.firstKept += drop
	}
	for sub := range j.subs {
		select {
		case sub.ch <- ws:
		default:
			sub.lost++
		}
	}
}

// subscribe atomically snapshots the buffered windows from index from
// onward and registers a live subscriber, so the caller sees every window
// exactly once with no gap between replay and live delivery. gap counts
// requested windows already evicted from the bounded result ring (the
// replay then starts above from). A nil subscriber means the job is
// already terminal and the replay is all there is.
func (j *Job) subscribe(from int) (replay []core.WindowStat, gap int, sub *subscriber, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if next := j.firstKept + len(j.results); from > next {
		// Beyond the next window to be published: replaying from here
		// would silently deliver windows the caller asked to skip.
		return nil, 0, nil, fmt.Errorf("serve: from=%d is beyond the %d windows published so far", from, next)
	}
	if from < j.firstKept {
		gap = j.firstKept - from
		from = j.firstKept
	}
	if idx := from - j.firstKept; idx < len(j.results) {
		replay = append(replay, j.results[idx:]...)
	}
	if j.state.Terminal() {
		return replay, gap, nil, nil
	}
	sub = &subscriber{ch: make(chan core.WindowStat, j.subCap)}
	j.subs[sub] = struct{}{}
	return replay, gap, sub, nil
}

// unsubscribe detaches a live subscriber (e.g. the client disconnected).
func (j *Job) unsubscribe(sub *subscriber) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.subs != nil {
		delete(j.subs, sub)
	}
}

// subLost reports how many windows a subscriber's mailbox dropped.
func (j *Job) subLost(sub *subscriber) int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return sub.lost
}

// resultsSnapshot returns the buffered windows and the index of the first
// one still held (earlier windows were evicted from the bounded ring).
func (j *Job) resultsSnapshot() ([]core.WindowStat, int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]core.WindowStat(nil), j.results...), j.firstKept
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.ctx.Done() }

// etaInput is the snapshot the DES projection needs, taken under the job
// mutex so the (comparatively slow) simulation runs outside it.
type etaInput struct {
	mean, variance float64
	n              int64
	statMean       float64
	statN          int64
	cuts           int
}

// Status snapshots the job, including the (cached) ETA projection.
func (j *Job) Status() Status { return j.status(true) }

// status snapshots the job; withETA false skips the DES projection, which
// bulk callers (the list endpoint) use to avoid paying it per job.
func (j *Job) status(withETA bool) Status {
	j.mu.Lock()
	if j.recStatus != nil {
		// A terminal job reloaded from the journal: serve the final
		// status it crashed (or shut down) with, marked as recovered.
		st := *j.recStatus
		st.Recovered = true
		if st.Tenant == "" {
			// Journaled by a pre-tenancy build: fall back to the tenant
			// recovered from the submit event.
			st.Tenant = j.tenant
		}
		if st.SpecDigest == "" {
			// Journaled by a pre-cache build: re-derived at recovery.
			st.SpecDigest = j.digest
		}
		st.CacheHit = false
		st.Attached = j.attached.Load()
		if st.TraceID == "" {
			st.TraceID = j.trace.ID()
		}
		j.mu.Unlock()
		return st
	}
	st := Status{
		Recovered:     j.recovered,
		ID:            j.id,
		State:         j.state,
		Spec:          j.spec,
		Tenant:        j.tenant,
		SpecDigest:    j.digest,
		TraceID:       j.trace.ID(),
		Subscribers:   len(j.subs),
		Attached:      j.attached.Load(),
		QueuePosition: int(j.queuePos.Load()),
		SubmittedAt:   j.submitted,
		Error:         j.errMsg,
		Progress: Progress{
			TasksDone:       j.tasksDone,
			Trajectories:    j.totalTasks,
			Samples:         j.samples,
			Cuts:            j.cuts,
			TotalCuts:       j.totalCuts,
			Windows:         j.windows,
			TotalWindows:    j.totalWins,
			Reactions:       j.reactions,
			DeadTasks:       j.deadTasks,
			QueueDepth:      j.in.depth(),
			DeferredQuanta:  j.deferred.Load(),
			StatsInFlight:   len(j.statSlots),
			SpilledBatches:  j.in.spilledCount(),
			RemoteTasksDone: j.remoteDone.Load(),
			RequeuedTasks:   j.requeued.Load(),
		},
	}
	if j.state.Terminal() {
		f := j.finished
		st.FinishedAt = &f
	}
	if j.winLat.N() > 0 {
		st.WindowLatency = &LatencySummary{
			N:      j.winLat.N(),
			MeanMS: j.winLat.Mean() * 1e3,
			P50MS:  j.winP50.Value() * 1e3,
			P95MS:  j.winP95.Value() * 1e3,
		}
	}
	in := etaInput{
		mean:     j.quantum.Mean(),
		variance: j.quantum.Var(),
		n:        j.quantum.N(),
		statMean: j.winLat.Mean(),
		statN:    j.winLat.N(),
		cuts:     j.cuts,
	}
	running := j.state == StateRunning
	// The DES projection costs up to tens of milliseconds; cache it
	// briefly, and stamp the cache before computing (single-flight) so
	// concurrent pollers hitting a stale entry reuse the old value
	// instead of all recomputing.
	var compute bool
	var cachedVal float64
	var cachedOK bool
	if running && withETA {
		if time.Since(j.etaAt) >= time.Second {
			compute = true
			j.etaAt = time.Now()
		}
		cachedVal, cachedOK = j.etaVal, j.etaOK
	}
	j.mu.Unlock()

	if running && withETA {
		if compute {
			eta, ok := j.estimateRemaining(in)
			j.mu.Lock()
			j.etaVal, j.etaOK = eta, ok
			j.mu.Unlock()
			cachedVal, cachedOK = eta, ok
		}
		if cachedOK {
			st.EtaSeconds = &cachedVal
		}
	}
	return st
}

// estimateRemaining projects the job's remaining wall-clock time by
// replaying its measured per-quantum service times (mean and lognormal
// dispersion) through the pipeline DES on a shared-memory deployment the
// width of the pool, then scaling the modelled makespan by the fraction of
// cuts still unanalysed.
//
// The projection assumes the job has the pool to itself, so with several
// jobs sharing the workers it is a lower bound — the measured per-quantum
// times capture service, not queueing behind other tenants.
func (j *Job) estimateRemaining(in etaInput) (float64, bool) {
	if in.n < 4 || in.mean <= 0 {
		return 0, false
	}
	quantaF := math.Ceil(j.cfg.End / j.cfg.Quantum)
	if quantaF < 1 {
		quantaF = 1
	}
	spqF := math.Round(j.cfg.Quantum / j.cfg.Period)
	if spqF < 1 {
		spqF = 1
	}
	// Bound the DES cost (it is re-run per status request): its event
	// count scales with trajectories×quanta (simulation events) and with
	// quanta×samples-per-quantum (cut releases). Compare in float64 so an
	// absurd spec ratio cannot overflow the check and sneak an unbounded
	// simulation into a status call.
	if float64(j.cfg.Trajectories)*quantaF > 50000 || quantaF*spqF > 100000 {
		return 0, false
	}
	quanta := int(quantaF)
	spq := int(spqF)
	var sigma float64
	if in.variance > 0 {
		sigma = math.Sqrt(math.Log(1 + in.variance/(in.mean*in.mean)))
	}
	wl := platform.Workload{
		Trajectories:      j.cfg.Trajectories,
		Quanta:            quanta,
		SamplesPerQuantum: spq,
		QuantumCost:       in.mean,
		QuantumSigma:      sigma,
		Seed:              j.cfg.BaseSeed,
	}
	if in.statN > 0 && j.cfg.WindowStep > 0 {
		wl.StatBase = in.statMean / float64(j.cfg.WindowStep)
	}
	makespan, err := platform.EstimateMakespan(runtime.NumCPU(), j.poolWorkers, 1, wl)
	if err != nil {
		return 0, false
	}
	remaining := 1.0
	if j.totalCuts > 0 {
		remaining = 1 - float64(in.cuts)/float64(j.totalCuts)
		if remaining < 0 {
			remaining = 0
		}
	}
	return makespan * remaining, true
}
