package serve_test

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync"
	"testing"
	"time"

	"cwcflow/internal/core"
	"cwcflow/internal/dff"
	"cwcflow/internal/serve"
	"cwcflow/internal/sim"
)

// walkSim is a deterministic synthetic simulator whose trajectory depends
// on its seed: three species on an xorshift walk, advancing time by dt and
// sleeping delay per step so jobs stay observable mid-flight. Identical
// (traj, seed) pairs produce bit-identical trajectories wherever they run
// — the property remote sharding and requeue determinism rest on.
type walkSim struct {
	t     float64
	dt    float64
	delay time.Duration
	rng   uint64
	state [3]int64
}

func (s *walkSim) Time() float64 { return s.t }
func (s *walkSim) Step() bool {
	if s.delay > 0 {
		time.Sleep(s.delay)
	}
	s.t += s.dt
	for i := range s.state {
		s.rng ^= s.rng << 13
		s.rng ^= s.rng >> 7
		s.rng ^= s.rng << 17
		s.state[i] += int64(s.rng%7) - 3
	}
	return true
}
func (s *walkSim) NumSpecies() int     { return 3 }
func (s *walkSim) Observe(out []int64) { copy(out, s.state[:]) }

// walkResolver serves the "walk" model on both the serve side and the sim
// workers, so a test cluster runs the same synthetic model everywhere.
func walkResolver(delay time.Duration) core.ModelResolver {
	return func(ref core.ModelRef) (core.SimulatorFactory, error) {
		if ref.Name != "walk" {
			return core.FactoryFor(ref)
		}
		return func(traj int, seed int64) (sim.Simulator, error) {
			return &walkSim{dt: 0.25, delay: delay, rng: uint64(seed)*0x9e3779b97f4a7c15 + 1}, nil
		}, nil
	}
}

func walkSpec() serve.JobSpec {
	return serve.JobSpec{
		Model:        "walk",
		Trajectories: 8,
		End:          8,
		Period:       0.25,
		WindowSize:   8,
		WindowStep:   8,
		Seed:         42,
	}
}

// killableWorker is one in-process cwc-dist-style sim worker whose
// listener tracks accepted connections, so a test can sever it mid-job
// the way a crashed worker host would.
type killableWorker struct {
	addr   string
	cancel context.CancelFunc

	mu       sync.Mutex
	listener net.Listener
	conns    []net.Conn
}

func (w *killableWorker) Accept() (net.Conn, error) {
	c, err := w.listener.Accept()
	if err == nil {
		w.mu.Lock()
		w.conns = append(w.conns, c)
		w.mu.Unlock()
	}
	return c, err
}
func (w *killableWorker) Close() error   { return w.listener.Close() }
func (w *killableWorker) Addr() net.Addr { return w.listener.Addr() }

// kill severs the worker: listener and every established connection close,
// so in-flight streams error out on the serve side immediately.
func (w *killableWorker) kill() {
	w.cancel()
	w.listener.Close()
	w.mu.Lock()
	conns := w.conns
	w.conns = nil
	w.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// startWorker runs one sim worker on loopback with the given resolver.
func startWorker(t *testing.T, simWorkers int, resolver core.ModelResolver) *killableWorker {
	t.Helper()
	l, err := dff.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	w := &killableWorker{addr: l.Addr().String(), cancel: cancel, listener: l}
	go func() {
		// Teardown errors (severed connections) are expected; real failures
		// surface on the serve side as requeues or job errors.
		_ = core.ServeSimWorkerWith(ctx, w, simWorkers, resolver, nil)
	}()
	t.Cleanup(w.kill)
	return w
}

// runToDigest submits spec, waits for completion, and returns the final
// status plus a digest of the full window-stats stream.
func runToDigest(t *testing.T, base string, spec serve.JobSpec) (serve.Status, string) {
	t.Helper()
	st := submitJob(t, base, spec)
	resp, err := http.Get(base + "/jobs/" + st.ID + "/result?wait=true")
	if err != nil {
		t.Fatalf("GET result: %v", err)
	}
	defer resp.Body.Close()
	var res struct {
		Status      serve.Status      `json:"status"`
		FirstWindow int               `json:"first_window"`
		Windows     []core.WindowStat `json:"windows"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatalf("decoding result: %v", err)
	}
	if res.FirstWindow != 0 {
		t.Fatalf("result ring evicted windows (first=%d); grow ResultBuffer", res.FirstWindow)
	}
	return res.Status, windowDigest(t, res.Windows)
}

// windowDigest is the determinism pin: a hash over the canonical JSON of
// every analysed window, in window order.
func windowDigest(t *testing.T, windows []core.WindowStat) string {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for i := range windows {
		if err := enc.Encode(&windows[i]); err != nil {
			t.Fatal(err)
		}
	}
	sum := sha256.Sum256(buf.Bytes())
	return hex.EncodeToString(sum[:])
}

func newRemoteServer(t *testing.T, delay time.Duration, opts serve.Options) (*serve.Server, string) {
	t.Helper()
	if opts.Workers == 0 {
		opts.Workers = 2
	}
	opts.Resolver = func(ref core.ModelRef) (core.SimulatorFactory, error) {
		return walkResolver(delay)(ref)
	}
	svc, err := serve.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	mux := svc.Handler()
	ts := newHTTPServer(t, mux)
	t.Cleanup(svc.Close)
	return svc, ts
}

func newHTTPServer(t *testing.T, h http.Handler) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: h}
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close() })
	return "http://" + l.Addr().String()
}

// TestRemoteShardingDigestMatchesLocal is the acceptance pin: the same
// spec produces a bit-identical window-stats digest whether the job runs
// single-process or sharded across two remote sim workers.
func TestRemoteShardingDigestMatchesLocal(t *testing.T) {
	// Single-process reference.
	_, refURL := newRemoteServer(t, 0, serve.Options{})
	refSt, refDigest := runToDigest(t, refURL, walkSpec())
	if refSt.State != serve.StateDone {
		t.Fatalf("reference job: %s (%s)", refSt.State, refSt.Error)
	}
	if refSt.Progress.RemoteTasksDone != 0 {
		t.Fatalf("reference job used remote workers: %+v", refSt.Progress)
	}

	w1 := startWorker(t, 2, walkResolver(0))
	w2 := startWorker(t, 2, walkResolver(0))
	_, distURL := newRemoteServer(t, 0, serve.Options{
		WorkerAddrs:    []string{w1.addr, w2.addr},
		WorkerInFlight: 2,
	})
	distSt, distDigest := runToDigest(t, distURL, walkSpec())
	if distSt.State != serve.StateDone {
		t.Fatalf("sharded job: %s (%s)", distSt.State, distSt.Error)
	}
	if distSt.Progress.RemoteTasksDone == 0 {
		t.Fatal("job did not shard onto remote workers")
	}
	if distDigest != refDigest {
		t.Fatalf("window digest diverged:\n  local  %s\n  remote %s", refDigest, distDigest)
	}
	if distSt.Progress.Windows != refSt.Progress.Windows {
		t.Fatalf("window counts diverged: local %d, remote %d",
			refSt.Progress.Windows, distSt.Progress.Windows)
	}
}

// TestRemoteWorkerKilledMidJobRequeues kills one of two workers while the
// job is streaming: the job must complete via requeue with no lost or
// duplicated windows, and the digest must still match a single-process
// run of the same seed.
func TestRemoteWorkerKilledMidJobRequeues(t *testing.T) {
	_, refURL := newRemoteServer(t, 0, serve.Options{})
	refSt, refDigest := runToDigest(t, refURL, walkSpec())
	if refSt.State != serve.StateDone {
		t.Fatalf("reference job: %s (%s)", refSt.State, refSt.Error)
	}

	// The victim worker simulates slowly so it is guaranteed to hold
	// in-flight trajectories when killed; the survivor and the local pool
	// are fast, so the re-runs do not stretch the test.
	victim := startWorker(t, 1, walkResolver(3*time.Millisecond))
	survivor := startWorker(t, 2, walkResolver(0))
	svc, distURL := newRemoteServer(t, 0, serve.Options{
		WorkerAddrs:    []string{victim.addr, survivor.addr},
		WorkerInFlight: 4,
	})
	st := submitJob(t, distURL, walkSpec())
	job, ok := svc.Get(st.ID)
	if !ok {
		t.Fatalf("job %s not registered", st.ID)
	}

	// Kill the victim as soon as samples prove the job is streaming.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if s := getStatus(t, distURL, st.ID); s.Progress.Samples > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started streaming")
		}
		time.Sleep(2 * time.Millisecond)
	}
	victim.kill()

	select {
	case <-job.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("job did not complete after worker death")
	}
	final, digest := runStatusAndDigest(t, distURL, st.ID)
	if final.State != serve.StateDone {
		t.Fatalf("job ended %s (%s)", final.State, final.Error)
	}
	if final.Progress.RequeuedTasks == 0 {
		t.Fatal("no trajectories were requeued off the killed worker")
	}
	if final.Progress.Windows != refSt.Progress.Windows {
		t.Fatalf("lost or duplicated windows: got %d, want %d",
			final.Progress.Windows, refSt.Progress.Windows)
	}
	if digest != refDigest {
		t.Fatalf("digest diverged after requeue:\n  local  %s\n  requeue %s", refDigest, digest)
	}
}

// runStatusAndDigest fetches a finished job's result and digests it.
func runStatusAndDigest(t *testing.T, base, id string) (serve.Status, string) {
	t.Helper()
	resp, err := http.Get(base + "/jobs/" + id + "/result?wait=true")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var res struct {
		Status  serve.Status      `json:"status"`
		Windows []core.WindowStat `json:"windows"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	return res.Status, windowDigest(t, res.Windows)
}

// TestRemoteAllWorkersDeadFallsBackLocal: when the only worker dies
// mid-job, everything requeues onto the local pool and the job still
// completes with the reference digest.
func TestRemoteAllWorkersDeadFallsBackLocal(t *testing.T) {
	_, refURL := newRemoteServer(t, 0, serve.Options{})
	refSt, refDigest := runToDigest(t, refURL, walkSpec())

	victim := startWorker(t, 1, walkResolver(3*time.Millisecond))
	svc, distURL := newRemoteServer(t, 0, serve.Options{
		WorkerAddrs:    []string{victim.addr},
		WorkerInFlight: 8,
	})
	st := submitJob(t, distURL, walkSpec())
	job, _ := svc.Get(st.ID)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if s := getStatus(t, distURL, st.ID); s.Progress.Samples > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started streaming")
		}
		time.Sleep(2 * time.Millisecond)
	}
	victim.kill()
	select {
	case <-job.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("job did not complete after losing every worker")
	}
	final, digest := runStatusAndDigest(t, distURL, st.ID)
	if final.State != serve.StateDone {
		t.Fatalf("job ended %s (%s)", final.State, final.Error)
	}
	if digest != refDigest || final.Progress.Windows != refSt.Progress.Windows {
		t.Fatalf("fallback run diverged: %d windows (want %d), digest match %v",
			final.Progress.Windows, refSt.Progress.Windows, digest == refDigest)
	}
}

// TestRemoteSilentWorkerTimesOutAndRequeues: a worker that accepts the
// stream but never produces results is declared dead by the watchdog and
// its trajectories complete elsewhere.
func TestRemoteSilentWorkerTimesOutAndRequeues(t *testing.T) {
	// A black hole: accepts connections, reads nothing, sends nothing.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var holeConns []net.Conn
	var holeMu sync.Mutex
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			holeMu.Lock()
			holeConns = append(holeConns, c)
			holeMu.Unlock()
		}
	}()
	defer func() {
		holeMu.Lock()
		for _, c := range holeConns {
			c.Close()
		}
		holeMu.Unlock()
	}()

	svc, distURL := newRemoteServer(t, 0, serve.Options{
		WorkerAddrs:    []string{l.Addr().String()},
		WorkerInFlight: 8,
		WorkerTimeout:  200 * time.Millisecond,
	})
	st := submitJob(t, distURL, walkSpec())
	job, _ := svc.Get(st.ID)
	select {
	case <-job.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("job did not complete despite the silent worker")
	}
	final := getStatus(t, distURL, st.ID)
	if final.State != serve.StateDone {
		t.Fatalf("job ended %s (%s)", final.State, final.Error)
	}
	if final.Progress.RequeuedTasks == 0 {
		t.Fatal("silent worker's trajectories were never requeued")
	}
}

// TestWorkerRegisterEndpoint: dynamic registration shows up in /workers
// and healthz, expires after the TTL, and a refreshed heartbeat revives
// it.
func TestWorkerRegisterEndpoint(t *testing.T) {
	w := startWorker(t, 1, walkResolver(0))
	_, base := newRemoteServer(t, 0, serve.Options{
		WorkerTTL: 100 * time.Millisecond,
	})
	register := func() {
		body := fmt.Sprintf(`{"addr":%q,"cap":3}`, w.addr)
		resp, err := http.Post(base+"/workers/register", "application/json",
			bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("register: status %d", resp.StatusCode)
		}
	}
	register()

	var infos []serve.WorkerInfo
	resp, err := http.Get(base + "/workers")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(infos) != 1 || !infos[0].Alive || infos[0].Cap != 3 || infos[0].Static {
		t.Fatalf("worker listing: %+v", infos)
	}

	// Expiry: past the TTL the worker is listed but not alive, and a job
	// submitted then still completes (local fallback).
	time.Sleep(150 * time.Millisecond)
	resp, err = http.Get(base + "/workers")
	if err != nil {
		t.Fatal(err)
	}
	infos = nil
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(infos) != 1 || infos[0].Alive {
		t.Fatalf("worker should have expired: %+v", infos)
	}
	st, _ := runToDigest(t, base, walkSpec())
	if st.State != serve.StateDone || st.Progress.RemoteTasksDone != 0 {
		t.Fatalf("post-expiry job: %s, remote=%d", st.State, st.Progress.RemoteTasksDone)
	}

	// A fresh heartbeat revives it and jobs shard again. A new seed keeps
	// the spec distinct from the pre-expiry run, which is cached.
	revived := walkSpec()
	revived.Seed = 7
	register()
	st2, _ := runToDigest(t, base, revived)
	if st2.State != serve.StateDone {
		t.Fatalf("post-revival job: %s (%s)", st2.State, st2.Error)
	}
	if st2.Progress.RemoteTasksDone == 0 {
		t.Fatal("revived worker received no trajectories")
	}

	// Bad register bodies are 400s.
	resp, err = http.Post(base+"/workers/register", "application/json",
		bytes.NewReader([]byte(`{"cap":1}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("register without addr: status %d", resp.StatusCode)
	}
}
