package serve

import (
	"context"
	"sync"
	"time"

	"cwcflow/internal/core"
	"cwcflow/internal/obs"
	"cwcflow/internal/sim"
	"cwcflow/internal/stats"
	"cwcflow/internal/window"
)

// winTask is one window of one job in flight on the shared stat farm: a
// deep copy of the window's cuts (the job's stream recycles its cut
// storage the moment the window was submitted) plus the per-job sequence
// number that lets the job's reorder buffer republish results in window
// order however the engines interleave. Tasks are pooled; capture/release
// keep the copy allocation-free once warm.
type winTask struct {
	job *Job
	seq int
	buf window.CopyBuffer
	win window.Window
}

var winTaskPool = sync.Pool{New: func() any { return new(winTask) }}

func getWinTask(job *Job, seq int, w window.Window) *winTask {
	t := winTaskPool.Get().(*winTask)
	t.job, t.seq = job, seq
	t.win = t.buf.Capture(w)
	return t
}

func (t *winTask) release() {
	t.job = nil
	t.win = window.Window{}
	winTaskPool.Put(t)
}

// statFarm is the service-wide farm of statistical engines: a fixed set of
// engine goroutines, sized independently of the simulation pool, that all
// jobs feed through one queue. Each engine owns a reusable stats.Engine
// (and a reused WindowStat is *not* possible here — results are retained
// by result rings and subscribers — so the retained struct is allocated
// per window while all analysis scratch is reused). Window order is
// restored per job by Job.completeStat; fairness across tenants comes from
// the FIFO queue plus the per-job in-flight cap (Job.statSlots), which
// stops one heavy tenant from occupying every engine.
type statFarm struct {
	engines int
	tasks   chan *winTask
	hook    func(jobID string) // Options.statHook test seam, may be nil
	ctx     context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup

	// closed/submitting gate the shutdown: Close refuses new submits and
	// waits out the in-flight ones before draining the task queue, so a
	// racing submit can never enqueue a task after the drain (which would
	// strand the task and its job's stat slot forever).
	mu         sync.Mutex
	done       sync.Cond
	closed     bool
	submitting int
}

func newStatFarm(engines, queueDepth int, hook func(jobID string)) *statFarm {
	if engines < 1 {
		engines = 1
	}
	if queueDepth < 1 {
		queueDepth = 1
	}
	ctx, cancel := context.WithCancel(context.Background())
	f := &statFarm{
		engines: engines,
		tasks:   make(chan *winTask, queueDepth),
		hook:    hook,
		ctx:     ctx,
		cancel:  cancel,
	}
	f.done.L = &f.mu
	f.wg.Add(engines)
	for i := 0; i < engines; i++ {
		go f.engine()
	}
	return f
}

// Engines returns the farm width.
func (f *statFarm) Engines() int { return f.engines }

// submit hands one captured window to the farm, blocking only on farm
// capacity (queue full and every engine busy) or the submitting job's
// cancellation. The caller must already hold one of the job's stat slots.
func (f *statFarm) submit(job *Job, t *winTask) error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		t.release()
		job.statSlotFree()
		return ErrClosed
	}
	f.submitting++
	f.mu.Unlock()
	var err error
	select {
	case f.tasks <- t:
	case <-job.ctx.Done():
		t.release()
		job.statSlotFree()
		err = job.ctx.Err()
	case <-f.ctx.Done():
		t.release()
		job.statSlotFree()
		err = ErrClosed
	}
	f.mu.Lock()
	f.submitting--
	if f.submitting == 0 && f.closed {
		f.done.Broadcast()
	}
	f.mu.Unlock()
	return err
}

// engine is one statistical engine: it analyses windows from any job with
// a private reusable scratch engine and reports each result back to the
// owning job's reorder buffer.
func (f *statFarm) engine() {
	defer f.wg.Done()
	eng := stats.NewEngine()
	for {
		select {
		case <-f.ctx.Done():
			return
		case t := <-f.tasks:
			f.analyse(eng, t)
		}
	}
}

func (f *statFarm) analyse(eng *stats.Engine, t *winTask) {
	job, seq := t.job, t.seq
	if job.terminal() {
		t.release()
		job.statSlotFree()
		return
	}
	if f.hook != nil {
		// Test seam (Options.statHook): emulate an expensive statistical
		// configuration, or a stalled tenant, per job.
		f.hook(job.id)
	}
	start := time.Now()
	var ws core.WindowStat
	err := core.AnalyseWindowInto(&ws, eng, t.win, job.species, job.cfg)
	lat := time.Since(start)
	job.metrics.analyse.Observe(lat)
	t.release()
	if err != nil {
		job.statSlotFree()
		job.fail(err)
		return
	}
	job.completeStat(seq, ws, lat)
}

// Close stops the farm: it refuses new submits, waits out the in-flight
// ones (every job must already be terminal, so a submit blocked on a full
// queue unblocks via its job's cancelled context), stops the engines and
// releases everything still queued.
func (f *statFarm) Close() {
	f.mu.Lock()
	f.closed = true
	for f.submitting > 0 {
		f.done.Wait()
	}
	f.mu.Unlock()
	f.cancel()
	f.wg.Wait()
	for {
		select {
		case t := <-f.tasks:
			// Free the slot too, preserving the acquire/free pairing even
			// though every job is terminal by here (nobody is waiting).
			t.job.statSlotFree()
			t.release()
		default:
			return
		}
	}
}

// ingress is a job's bounded, non-blocking sample-batch queue between the
// pool collector and the job's windower goroutine. The collector side
// never blocks: a push over the high-water mark marks the job congested —
// which makes the pool defer the job's remaining quanta instead of
// simulating into a queue nobody drains — and a push over the hard
// capacity (unreachable while deferral works, since capacity exceeds the
// high-water mark by more than the pool's possible in-flight quanta)
// spills the oldest batch, which is counted and fails the job: spilled
// samples mean the alignment stage could never complete its cuts.
type ingress struct {
	mu        sync.Mutex
	ring      []*sim.Batch // circular, len(ring) == capacity
	stamps    []int64      // arrival stamp (unix ns) per ring slot
	head      int
	n         int
	highWater int
	closed    bool // producer done: every task's final delivery arrived
	drained   bool // consumer gone: release instead of queueing
	spilled   int64
	notify    chan struct{}  // 1-buffered consumer wakeup
	wait      *obs.Histogram // batch residency push → pop (nil-safe)
}

func newIngress(highWater, capacity int, wait *obs.Histogram) *ingress {
	if highWater < 1 {
		highWater = 1
	}
	if capacity <= highWater {
		capacity = highWater + 1
	}
	return &ingress{
		ring:      make([]*sim.Batch, capacity),
		stamps:    make([]int64, capacity),
		highWater: highWater,
		notify:    make(chan struct{}, 1),
		wait:      wait,
	}
}

// push enqueues one batch without ever blocking, returning the number of
// batches spilled so far (0 while healthy). Ownership of b transfers to
// the ingress (and onward to the consumer) unless the queue is drained, in
// which case b is released immediately.
func (q *ingress) push(b *sim.Batch) (spilled int64) {
	q.mu.Lock()
	if q.drained {
		q.mu.Unlock()
		b.Release()
		return 0
	}
	if q.n == len(q.ring) {
		// Hard bound: spill the oldest batch.
		old := q.ring[q.head]
		q.ring[q.head] = nil
		q.head = (q.head + 1) % len(q.ring)
		q.n--
		q.spilled++
		old.Release()
	}
	slot := (q.head + q.n) % len(q.ring)
	q.ring[slot] = b
	q.stamps[slot] = time.Now().UnixNano()
	q.n++
	spilled = q.spilled
	q.mu.Unlock()
	q.wake()
	return spilled
}

// pop dequeues one batch without blocking. done reports that the stream is
// complete: no batch is queued and none will arrive.
func (q *ingress) pop() (b *sim.Batch, done bool, spilled int64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.n > 0 {
		b = q.ring[q.head]
		q.ring[q.head] = nil
		q.wait.Observe(time.Duration(time.Now().UnixNano() - q.stamps[q.head]))
		q.head = (q.head + 1) % len(q.ring)
		q.n--
		return b, false, q.spilled
	}
	return nil, q.closed, q.spilled
}

// close marks the producer side complete and wakes the consumer.
func (q *ingress) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.wake()
}

// drain releases every queued batch and makes all future pushes release
// immediately — called once the consumer is gone (job terminal).
func (q *ingress) drain() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.drained = true
	for ; q.n > 0; q.n-- {
		q.ring[q.head].Release()
		q.ring[q.head] = nil
		q.head = (q.head + 1) % len(q.ring)
	}
}

func (q *ingress) wake() {
	select {
	case q.notify <- struct{}{}:
	default:
	}
}

// spilledCount returns how many batches the hard bound dropped.
func (q *ingress) spilledCount() int64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.spilled
}

// depth returns the number of queued batches.
func (q *ingress) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.n
}

// congested reports whether the backlog is at or above the high-water
// mark — the pool's cue to defer this job's quanta.
func (q *ingress) congested() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.n >= q.highWater
}
