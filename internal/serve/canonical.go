package serve

// Spec canonicalisation for the content-addressed result cache. Runs are
// deterministic by construction (bit-identical window digests across pool
// width, farm width, node count and crash-resume are standing invariants),
// so a job's result is a pure function of its canonicalised spec: two
// submissions with the same canonical spec may share one simulation. The
// canonical form folds every field the sample stream depends on to the
// value core.Config.Normalized would resolve it to, and zeroes the fields
// that cannot influence the stream (admission priority). Hashing the
// canonical form gives a stable digest that is independent of JSON field
// order, whitespace, and spelled-out-versus-omitted defaults.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"strings"
)

// CanonicalSpec folds a job spec to its canonical form: the model name is
// trimmed and lowercased, the windowing and quantum defaults are resolved
// exactly as core.Config.Normalized resolves them (quantum ≤ 0 → one
// period; window size < 1 → 16; window step < 1 or > size → tumbling), an
// empty species selection becomes nil, and Priority — which orders
// admission, never the result stream — is zeroed. Idempotent by
// construction: CanonicalSpec(CanonicalSpec(s)) == CanonicalSpec(s).
//
// Species order is preserved, not sorted: the selection indexes the
// observable arrays, so [0,1] and [1,0] are genuinely different results.
func CanonicalSpec(spec JobSpec) JobSpec {
	spec.Model = strings.ToLower(strings.TrimSpace(spec.Model))
	spec.Priority = 0
	if spec.Quantum <= 0 {
		spec.Quantum = spec.Period
	}
	if spec.WindowSize < 1 {
		spec.WindowSize = 16
	}
	if spec.WindowStep < 1 || spec.WindowStep > spec.WindowSize {
		spec.WindowStep = spec.WindowSize
	}
	if len(spec.Species) == 0 {
		spec.Species = nil
	}
	return spec
}

// SpecDigest returns the content address of a spec: the hex-encoded
// truncated SHA-256 of the canonical form's JSON encoding. Go marshals
// struct fields in declaration order, so the encoding — and therefore the
// digest — is deterministic and independent of how the submission spelled
// the spec. Total: every JobSpec value digests, valid or not (invalid
// specs are rejected by admission before the digest could matter).
func SpecDigest(spec JobSpec) string {
	b, err := json.Marshal(CanonicalSpec(spec))
	if err != nil {
		return "" // unreachable: JobSpec has no unmarshalable fields
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:16])
}

// specDigestRaw digests a journaled spec (store.JobRecord.Spec). An
// unparseable or model-less record returns "" — never cached, never
// advertised on a lease.
func specDigestRaw(raw []byte) string {
	var spec JobSpec
	if json.Unmarshal(raw, &spec) != nil || spec.Model == "" {
		return ""
	}
	return SpecDigest(spec)
}
