package serve

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"cwcflow/internal/serve/sched"
)

// ErrQuotaExceeded is returned by Submit when the tenant's sample budget
// cannot cover the job — a retryable condition (HTTP 429): the budget
// frees as the tenant's admitted jobs finish.
var ErrQuotaExceeded = errors.New("serve: tenant sample budget exceeded")

// DefaultTenant is the tenant id anonymous submissions (no X-CWC-Tenant
// header) are accounted under.
const DefaultTenant = "default"

// TenantConfig is one tenant's admission quota and scheduling weight.
// Zero fields fall back to the server-wide defaults (Options.DefaultTenant*).
type TenantConfig struct {
	// MaxActive caps the tenant's concurrently running jobs. 0 means
	// unlimited: submissions never queue on this tenant's account (the
	// server-wide MaxJobs cap still applies).
	MaxActive int
	// MaxQueued caps the tenant's admission queue once MaxActive is
	// reached; beyond it submissions are rejected with ErrBusy (429).
	MaxQueued int
	// SampleBudget caps the total samples (trajectories × cuts, summed
	// over the tenant's running and queued jobs) the tenant may hold
	// admitted at once. 0 = unlimited. The budget frees as jobs finish.
	SampleBudget int64
	// Weight is the tenant's share under the wfq scheduler: a tenant with
	// weight 3 receives 3× the dispatch slots of a weight-1 tenant while
	// both are backlogged. 0 = the server default.
	Weight float64
}

// tenantState is one tenant's live accounting. All fields except quanta
// are guarded by the server mutex.
type tenantState struct {
	name string
	cfg  TenantConfig
	flow *sched.Flow[poolTask] // wfq scheduler only, nil under fifo

	active     int    // running (admitted, non-terminal, non-queued) jobs
	queued     []*Job // admission queue: priority class desc, then submit order
	budgetUsed int64  // samples held by running + queued jobs
	quanta     atomic.Int64
}

// Job admission phases, tracked on Job.admission under the server mutex so
// slot/budget accounting releases exactly once however dispatch races the
// terminal transition.
const (
	admNone     = 0 // never admitted (or a recovered terminal shell)
	admQueued   = 1 // holds a queue entry and budget
	admActive   = 2 // holds an active slot and budget
	admReleased = 3 // accounting already released
)

// maxActive returns the tenant's effective concurrency cap (0 = unlimited).
func (s *Server) maxActive(t *tenantState) int {
	if t.cfg.MaxActive > 0 {
		return t.cfg.MaxActive
	}
	return s.opts.DefaultTenantConcurrency
}

// maxQueued returns the tenant's effective admission-queue cap.
func (s *Server) maxQueued(t *tenantState) int {
	if t.cfg.MaxQueued > 0 {
		return t.cfg.MaxQueued
	}
	return s.opts.DefaultTenantQueue
}

// sampleBudget returns the tenant's effective sample budget (0 = unlimited).
func (s *Server) sampleBudget(t *tenantState) int64 {
	if t.cfg.SampleBudget > 0 {
		return t.cfg.SampleBudget
	}
	return s.opts.DefaultTenantBudget
}

// tenantWeight returns the tenant's effective wfq weight.
func (s *Server) tenantWeight(t *tenantState) float64 {
	if t.cfg.Weight > 0 {
		return t.cfg.Weight
	}
	if s.opts.DefaultTenantWeight > 0 {
		return s.opts.DefaultTenantWeight
	}
	return 1
}

// validTenant reports whether a tenant id is well-formed: 1–64 characters
// of [A-Za-z0-9._-].
func validTenant(name string) bool {
	if len(name) == 0 || len(name) > 64 {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '.' || c == '_' || c == '-':
		default:
			return false
		}
	}
	return true
}

// tenantLocked returns (creating on first use) the tenant's state. Callers
// hold s.mu. Creation order doubles as the wfq tie-break order, which the
// server mutex makes deterministic per submission history.
func (s *Server) tenantLocked(name string) *tenantState {
	if t, ok := s.tenants[name]; ok {
		return t
	}
	t := &tenantState{name: name, cfg: s.opts.Tenants[name]}
	if s.wfq != nil {
		t.flow = s.wfq.NewFlow(name, s.tenantWeight(t))
	}
	s.tenants[name] = t
	s.tenantOrder = append(s.tenantOrder, name)
	return t
}

// runningLocked counts admitted non-terminal jobs that are not waiting in
// an admission queue — the population the global MaxJobs cap bounds.
func (s *Server) runningLocked() int {
	n := 0
	for _, j := range s.jobs {
		if st := j.State(); st != StateQueued && !st.Terminal() {
			n++
		}
	}
	return n
}

// admitLocked decides one submission's fate without mutating anything:
// run now (queue=false), wait in the tenant's admission queue
// (queue=true), or reject (err). Callers hold s.mu.
//
// The rules: a submission the tenant's sample budget cannot cover is
// rejected (429, ErrQuotaExceeded). A tenant under its concurrency cap
// runs immediately if the server-wide MaxJobs cap has room, and is
// rejected with ErrBusy otherwise (the pre-tenancy behaviour). A tenant
// at its cap queues — the 202-with-position path — until the queue cap
// rejects further submissions with ErrBusy.
func (s *Server) admitLocked(t *tenantState, sampleCost int64) (queue bool, err error) {
	if s.closed {
		return false, ErrClosed
	}
	if s.draining.Load() {
		return false, ErrDraining
	}
	if budget := s.sampleBudget(t); budget > 0 && t.budgetUsed+sampleCost > budget {
		return false, fmt.Errorf("serve: tenant %q holds %d of %d budgeted samples, job needs %d: %w",
			t.name, t.budgetUsed, budget, sampleCost, ErrQuotaExceeded)
	}
	if limit := s.maxActive(t); limit > 0 && t.active >= limit {
		if qcap := s.maxQueued(t); len(t.queued) >= qcap {
			return false, fmt.Errorf("serve: tenant %q has %d jobs running and %d queued, queue limit is %d: %w",
				t.name, t.active, len(t.queued), qcap, ErrBusy)
		}
		return true, nil
	}
	if running := s.runningLocked(); running >= s.opts.MaxJobs {
		return false, fmt.Errorf("serve: %d active jobs, limit is %d: %w", running, s.opts.MaxJobs, errSaturated)
	}
	return false, nil
}

// enqueueLocked inserts a job into its tenant's admission queue ordered by
// priority class (desc) then submission order (stable append), charges the
// tenant's accounting and renumbers positions. Callers hold s.mu.
func (s *Server) enqueueLocked(t *tenantState, job *Job) {
	idx := sort.Search(len(t.queued), func(i int) bool {
		return t.queued[i].spec.Priority < job.spec.Priority
	})
	t.queued = append(t.queued, nil)
	copy(t.queued[idx+1:], t.queued[idx:])
	t.queued[idx] = job
	t.budgetUsed += job.sampleCost
	job.admission = admQueued
	job.enqueuedAt = time.Now()
	renumberQueue(t)
}

// renumberQueue refreshes every queued job's 1-based position snapshot.
func renumberQueue(t *tenantState) {
	for i, j := range t.queued {
		j.queuePos.Store(int32(i + 1))
	}
}

// removeQueuedLocked drops a job from its tenant's queue, if present.
func removeQueuedLocked(t *tenantState, job *Job) bool {
	for i, j := range t.queued {
		if j == job {
			t.queued = append(t.queued[:i], t.queued[i+1:]...)
			job.queuePos.Store(0)
			renumberQueue(t)
			return true
		}
	}
	return false
}

// jobFinished is every job's onTerminal callback: it releases the job's
// tenant slot and sample budget exactly once and dispatches queued jobs
// into the freed capacity. Runs with no locks held (end of setTerminal).
func (s *Server) jobFinished(job *Job) {
	s.mu.Lock()
	t := s.tenants[job.tenant]
	switch job.admission {
	case admQueued:
		if t != nil {
			removeQueuedLocked(t, job)
			t.budgetUsed -= job.sampleCost
		}
	case admActive:
		if t != nil {
			t.active--
			t.budgetUsed -= job.sampleCost
		}
	}
	job.admission = admReleased
	if key := cacheKey(job.tenant, job.digest); key != "" {
		if s.inflightDigest[key] == job {
			// The job is no longer an attach target; future matching
			// submissions hit the cache (done) or run fresh
			// (failed/cancelled).
			delete(s.inflightDigest, key)
		}
		if s.cache != nil && job.State() == StateDone {
			// Only successful runs are cacheable: a failed or cancelled
			// job has no complete result to answer with.
			s.cache.Put(key, job.id)
		}
	}
	starts := s.dispatchLocked()
	s.mu.Unlock()
	if s.leases != nil && !job.noPersist.Load() {
		// The released (not deleted) lease file keeps pointing readers at
		// the journal holding the job's terminal record. A job failed for
		// a lost lease skips this: the thief owns the lease now.
		s.leases.Release(job.id)
		s.announcePeer() // owned-job count dropped; refresh the load view
	}
	for _, start := range starts {
		start()
	}
}

// dispatchLocked promotes queued jobs into freed capacity: tenants are
// visited in creation order, each dispatching its queue head while it has
// a concurrency slot and the global MaxJobs cap has room. It returns the
// promoted jobs' launch closures for the caller to run outside the lock.
// Callers hold s.mu.
func (s *Server) dispatchLocked() []func() {
	// A draining replica must not promote queued jobs into freed slots:
	// everything it still holds is being handed off, queued jobs
	// included.
	if s.closed || s.draining.Load() {
		return nil
	}
	var starts []func()
	running := s.runningLocked()
	for _, name := range s.tenantOrder {
		t := s.tenants[name]
		limit := s.maxActive(t)
		for len(t.queued) > 0 && (limit == 0 || t.active < limit) && running < s.opts.MaxJobs {
			job := t.queued[0]
			t.queued = t.queued[1:]
			job.queuePos.Store(0)
			if job.State().Terminal() {
				// Cancelled while queued, its jobFinished still pending:
				// release here; jobFinished will see admReleased and no-op.
				job.admission = admReleased
				t.budgetUsed -= job.sampleCost
				continue
			}
			job.admission = admActive
			t.active++
			running++
			if !job.enqueuedAt.IsZero() {
				now := time.Now()
				s.m.admissionWait.Observe(now.Sub(job.enqueuedAt))
				job.trace.Span("queued", job.origin, "", job.enqueuedAt, now)
			}
			job.mu.Lock()
			if job.state == StateQueued {
				job.state = StateRunning
			}
			job.mu.Unlock()
			starts = append(starts, job.startFn)
		}
		renumberQueue(t)
	}
	return starts
}

// TenantStatus is the wire format of one tenant's control-plane snapshot
// (GET /tenants).
type TenantStatus struct {
	Name   string  `json:"name"`
	Weight float64 `json:"weight"`
	Active int     `json:"active"`
	Queued int     `json:"queued"`
	// MaxActive/MaxQueued/SampleBudget are the effective limits (0 =
	// unlimited concurrency / unlimited budget).
	MaxActive    int   `json:"max_active,omitempty"`
	MaxQueued    int   `json:"max_queued,omitempty"`
	SampleBudget int64 `json:"sample_budget,omitempty"`
	BudgetUsed   int64 `json:"budget_used"`
	// Quanta counts simulation quanta the local pool dispatched for this
	// tenant — the fairness observable TestWFQSharesConverge pins.
	Quanta int64 `json:"quanta"`
}

// Tenants snapshots every tenant seen so far, in first-submission order.
func (s *Server) Tenants() []TenantStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]TenantStatus, 0, len(s.tenantOrder))
	for _, name := range s.tenantOrder {
		t := s.tenants[name]
		out = append(out, TenantStatus{
			Name:         name,
			Weight:       s.tenantWeight(t),
			Active:       t.active,
			Queued:       len(t.queued),
			MaxActive:    s.maxActive(t),
			MaxQueued:    s.maxQueued(t),
			SampleBudget: s.sampleBudget(t),
			BudgetUsed:   t.budgetUsed,
			Quanta:       t.quanta.Load(),
		})
	}
	return out
}
