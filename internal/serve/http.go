package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"

	"cwcflow/internal/core"
	"cwcflow/internal/obs"
)

// streamEvent is one NDJSON line (or SSE data payload) of a job stream: a
// leading "status" snapshot (progress plus the backpressure/throughput
// counters), a window, a "gap" marker when requested windows were already
// evicted from the bounded result ring, or the terminal "end" marker
// (which carries the final status).
type streamEvent struct {
	Type   string           `json:"type"` // "status", "window", "gap" or "end"
	Window *core.WindowStat `json:"window,omitempty"`
	Status *Status          `json:"status,omitempty"`
	// Lost counts windows the client will not see: evicted-before-replay
	// windows on a gap event, mailbox-dropped windows on an end event.
	Lost int `json:"lost,omitempty"`
}

// resultResponse is the body of GET /jobs/{id}/result.
type resultResponse struct {
	Status Status `json:"status"`
	// FirstWindow is the index of the first retained window; earlier ones
	// were evicted from the bounded result ring.
	FirstWindow int               `json:"first_window"`
	Windows     []core.WindowStat `json:"windows"`
}

func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.Handle("GET /metrics", s.m.reg)
	s.mux.HandleFunc("GET /tenants", s.handleTenants)
	s.mux.HandleFunc("GET /workers", s.handleWorkers)
	s.mux.HandleFunc("POST /workers/register", s.handleRegisterWorker)
	s.mux.HandleFunc("POST /jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /jobs", s.handleList)
	s.mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("POST /jobs/{id}/cancel", s.handleCancel)
	s.mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /jobs/{id}/stream", s.handleStream)
	s.mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /jobs/{id}/trace", s.handleTrace)
	s.mux.HandleFunc("GET /cache", s.handleCache)
	// Replicated-tier admin: drain this replica, request/trigger a lease
	// handoff, and inspect the peer directory. All answer 404 on a
	// non-replica server.
	s.mux.HandleFunc("POST /drain", s.handleDrain)
	s.mux.HandleFunc("POST /leases/{id}/handoff", s.handleLeaseHandoff)
	s.mux.HandleFunc("POST /leases/{id}/adopt", s.handleLeaseAdopt)
	s.mux.HandleFunc("GET /peers", s.handlePeers)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// jobFromPath resolves the {id} path value to a locally driven job. In
// a replicated tier, a job owned by another replica is answered here
// instead (journal peek, stream redirect or cancel proxy — see
// handleForeign); only an id with neither a local job nor a lease is a
// 404. The action names which of those answers applies.
func (s *Server) jobFromPath(w http.ResponseWriter, r *http.Request, action string) (*Job, bool) {
	id := r.PathValue("id")
	if job, ok := s.Get(id); ok {
		return job, true
	}
	if s.handleForeign(w, r, id, action) {
		return nil, false
	}
	writeError(w, http.StatusNotFound, "unknown job %q", id)
	return nil, false
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	// Every count here reads the same sources the /metrics gauges sample
	// (jobCounts, remoteWorkerCounts, the obs cache counters), so the two
	// surfaces can never disagree.
	total, active, queued := s.jobCounts()
	remoteWorkers, liveWorkers := s.remoteWorkerCounts()
	h := map[string]any{
		// "workers" keeps its PR1 meaning (local pool width, the
		// -sim-workers flag); the remote cluster gets unambiguous keys.
		"workers":             s.pool.Workers(),
		"stat_engines":        s.stats.Engines(),
		"scheduler":           s.opts.Scheduler,
		"tenants":             len(s.Tenants()),
		"jobs_total":          total,
		"jobs_active":         active,
		"jobs_queued":         queued,
		"remote_workers":      remoteWorkers,
		"remote_workers_live": liveWorkers,
	}
	if s.opts.Version != "" {
		h["version"] = s.opts.Version
	}
	if s.store != nil {
		// Durable store health: data dir, journal size, last compaction.
		h["store"] = s.store.Stats()
	}
	if s.cache != nil {
		h["cache_entries"] = s.cache.Len()
		h["cache_hits"] = s.m.cacheHits.Value()
	}
	if s.opts.ReplicaID != "" {
		// Replica identity and load, mirrored into the peer directory:
		// what the tier's submit forwarding and rebalancer act on.
		h["replica_id"] = s.opts.ReplicaID
		h["draining"] = s.draining.Load()
		h["jobs_owned"] = len(s.leases.HeldJobs())
		h["peers_live"] = len(s.livePeers())
	}
	code := http.StatusOK
	if err := s.pool.Err(); err != nil {
		h["pool_error"] = err.Error()
		code = http.StatusInternalServerError
	}
	writeJSON(w, code, h)
}

// handleWorkers lists every known remote sim worker with its liveness,
// in-flight load and failure count.
func (s *Server) handleWorkers(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.registry.snapshot())
}

// registerRequest is the body of POST /workers/register — the worker's
// dialable address plus an optional in-flight cap. Workers re-register
// periodically; the call doubles as the heartbeat.
type registerRequest struct {
	Addr string `json:"addr"`
	Cap  int    `json:"cap,omitempty"`
}

func (s *Server) handleRegisterWorker(w http.ResponseWriter, r *http.Request) {
	var req registerRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding register request: %v", err)
		return
	}
	if err := s.registry.register(req.Addr, req.Cap, s.opts.WorkerInFlight); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":          true,
		"ttl_seconds": s.opts.WorkerTTL.Seconds(),
	})
}

// handleSubmit admits one job on behalf of the tenant named by the
// X-CWC-Tenant header (anonymous submissions land on the default tenant).
// An immediately running job answers 201; a job parked in its tenant's
// admission queue answers 202 with its queue_position; quota and
// saturation rejections answer 429 (retryable), shutdown 503.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "decoding job spec: %v", err)
		return
	}
	traceID, _ := obs.ParseTraceparent(r.Header.Get("traceparent"))
	res, err := s.SubmitTraced(spec, r.Header.Get("X-CWC-Tenant"), traceID)
	if err != nil {
		var redir *AttachRedirectError
		if errors.As(err, &redir) {
			// The spec is in flight on another replica: send the client
			// there, where its resubmission attaches to the running job.
			w.Header().Set("Location", redir.URL+"/jobs")
			w.WriteHeader(http.StatusTemporaryRedirect)
			return
		}
		code := http.StatusBadRequest
		switch {
		case errors.Is(err, ErrDraining):
			// A draining replica takes nothing new, but the tier might:
			// bounce the client to the least-loaded live peer. Without one,
			// 503 — the drain finishes (or the replica exits) within a TTL.
			if loc := s.forwardTarget(math.MaxInt); loc != "" {
				w.Header().Set("Location", loc+"/jobs")
				w.WriteHeader(http.StatusTemporaryRedirect)
				return
			}
			code = http.StatusServiceUnavailable
			w.Header().Set("Retry-After", "2")
		case errors.Is(err, errSaturated):
			// The server-wide MaxJobs cap is load, not policy: a strictly
			// less-loaded live peer can take the job, and "strictly" is what
			// keeps two mutually saturated replicas from bouncing a client
			// in a redirect cycle. Tenant quotas never forward — they must
			// hold on every replica alike.
			mine := 0
			if s.leases != nil {
				mine = len(s.leases.HeldJobs())
			}
			if loc := s.forwardTarget(mine); loc != "" {
				w.Header().Set("Location", loc+"/jobs")
				w.WriteHeader(http.StatusTemporaryRedirect)
				return
			}
			code = http.StatusTooManyRequests
			w.Header().Set("Retry-After", "1")
		case errors.Is(err, ErrBusy):
			// The admission queue is full: capacity frees as soon as any
			// running job finishes a quantum round, so retry quickly.
			code = http.StatusTooManyRequests
			w.Header().Set("Retry-After", "1")
		case errors.Is(err, ErrQuotaExceeded):
			// A hard per-tenant quota: held until one of the tenant's own
			// jobs completes, so back off longer than for a full queue.
			code = http.StatusTooManyRequests
			w.Header().Set("Retry-After", "5")
		case errors.Is(err, ErrClosed):
			code = http.StatusServiceUnavailable
		}
		writeError(w, code, "%v", err)
		return
	}
	st := res.Job.Status()
	if res.CacheHit || res.Attached {
		// Answered without creating a job: a completed job's shell (cache
		// hit) or the running job the caller now shares (attach). Either
		// way the spec's results are (or will be) at this id — 201.
		st.CacheHit = true
	}
	code := http.StatusCreated
	if st.State == StateQueued && !st.CacheHit {
		code = http.StatusAccepted
	}
	writeJSON(w, code, st)
}

// handleCache reports the result cache's index size and hit/attach
// counters.
func (s *Server) handleCache(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.CacheStats())
}

// handleTenants lists every tenant's control-plane snapshot: quotas,
// running/queued counts, held sample budget and dispatched quanta.
func (s *Server) handleTenants(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Tenants())
}

// handleList lists jobs in submission order. ?state=running|done|
// cancelled|failed filters by lifecycle phase, ?limit=N keeps only the N
// most recent matches — between them the endpoint stays usable once a
// durable server accumulates a long recovered history.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var stateFilter State
	if v := q.Get("state"); v != "" {
		switch State(v) {
		case StateQueued, StateRunning, StateDone, StateCancelled, StateFailed:
			stateFilter = State(v)
		default:
			writeError(w, http.StatusBadRequest, "invalid state filter %q (want queued, running, done, cancelled or failed)", v)
			return
		}
	}
	limit := -1
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "invalid limit=%q", v)
			return
		}
		limit = n
	}
	jobs := s.List()
	out := make([]Status, 0, len(jobs))
	for _, j := range jobs {
		// Skip the per-job ETA projection: with many jobs it would turn
		// one list request into many DES runs.
		st := j.status(false)
		if stateFilter != "" && st.State != stateFilter {
			continue
		}
		out = append(out, st)
	}
	if limit >= 0 && len(out) > limit {
		out = out[len(out)-limit:]
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	job, ok := s.jobFromPath(w, r, "status")
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, job.Status())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	job, ok := s.jobFromPath(w, r, "cancel")
	if !ok {
		return
	}
	job.Cancel()
	writeJSON(w, http.StatusOK, job.Status())
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	job, ok := s.jobFromPath(w, r, "result")
	if !ok {
		return
	}
	if wait, _ := strconv.ParseBool(r.URL.Query().Get("wait")); wait {
		select {
		case <-job.Done():
		case <-r.Context().Done():
			return
		}
	}
	windows, first := job.resultsSnapshot()
	writeJSON(w, http.StatusOK, resultResponse{
		Status:      job.Status(),
		FirstWindow: first,
		Windows:     windows,
	})
}

// handleTrace streams a job's span log as NDJSON, one span per line in
// start order — the job's whole lifecycle (admission, queue wait,
// dispatch, remote worker streams merged from their trailers, first
// window, terminal run span), all under one trace id.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	job, ok := s.jobFromPath(w, r, "trace")
	if !ok {
		return
	}
	spans, dropped := job.trace.Snapshot()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-CWC-Trace-Id", job.trace.ID())
	if dropped > 0 {
		w.Header().Set("X-CWC-Trace-Dropped", strconv.Itoa(dropped))
	}
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	for i := range spans {
		_ = enc.Encode(&spans[i])
	}
}

// handleStream streams a job's windowed statistics incrementally: first a
// "status" snapshot of the job's progress and backpressure counters, then
// a replay of the buffered windows from ?from= (default 0) onward, then
// live windows as the analysis publishes them, then one "end" event
// carrying the terminal status. The format is NDJSON by default and
// Server-Sent Events when the client asks for text/event-stream.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	job, ok := s.jobFromPath(w, r, "stream")
	if !ok {
		return
	}
	from := 0
	if v := r.URL.Query().Get("from"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "invalid from=%q", v)
			return
		}
		from = n
	}
	// Subscribe before committing the response: a bad from offset must
	// still be reportable as a 400.
	replay, gap, sub, err := job.subscribe(from)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	flusher, canFlush := w.(http.Flusher)
	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.WriteHeader(http.StatusOK)

	send := func(ev streamEvent) bool {
		var err error
		if sse {
			data, merr := json.Marshal(ev)
			if merr != nil {
				return false
			}
			_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data)
		} else {
			err = json.NewEncoder(w).Encode(ev)
		}
		if err != nil {
			return false
		}
		if canFlush {
			flusher.Flush()
		}
		return true
	}
	end := func(sub *subscriber) {
		st := job.Status()
		ev := streamEvent{Type: "end", Status: &st}
		if sub != nil {
			ev.Lost = job.subLost(sub)
		}
		send(ev)
	}

	// Leading status snapshot: progress and the backpressure/throughput
	// counters (windows emitted, batches spilled, queue depth) at stream
	// open, so a client sees the job's health before the first window.
	st := job.Status()
	if !send(streamEvent{Type: "status", Status: &st}) {
		if sub != nil {
			job.unsubscribe(sub)
		}
		return
	}
	if gap > 0 {
		if !send(streamEvent{Type: "gap", Lost: gap}) {
			if sub != nil {
				job.unsubscribe(sub)
			}
			return
		}
	}
	for i := range replay {
		if !send(streamEvent{Type: "window", Window: &replay[i]}) {
			if sub != nil {
				job.unsubscribe(sub)
			}
			return
		}
	}
	if sub == nil { // already terminal: replay was everything
		end(nil)
		return
	}
	defer job.unsubscribe(sub)
	for {
		select {
		case ws, ok := <-sub.ch:
			if !ok { // job reached a terminal state
				end(sub)
				return
			}
			if !send(streamEvent{Type: "window", Window: &ws}) {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}
