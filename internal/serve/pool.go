package serve

import (
	"context"
	"sync"
	"time"

	"cwcflow/internal/ff"
	"cwcflow/internal/sim"
)

// Pool is the shared simulation worker pool: one long-lived feedback farm
// (ff.FarmFeedback) whose input stream stays open for the lifetime of the
// service and carries quantum-sized tasks from every active job. On-demand
// scheduling interleaves the jobs' tasks, so a newly submitted job starts
// receiving service within one quantum of the running jobs, and the
// feedback channel keeps load balanced across heavily uneven trajectories
// exactly as in the batch pipeline.
//
// Workers emit one delivery per quantum — the whole quantum's samples in a
// single batch — so the per-sample cost of crossing the farm collector is
// amortised by the quantum/τ ratio. The collector routes each delivery to
// the owning job's ingress queue with a non-blocking push: a job whose
// analysis lags cannot stall delivery to any other tenant. Backpressure on
// a lagging job is applied at the *scheduling* step instead — a worker
// that picks up a quantum for a congested job (ingress over its high-water
// mark) parks the task on the job, off the farm entirely, until the job's
// windower drains below its low-water mark and reinjects it. The pool's
// capacity flows to the tenants that can absorb results (a congested
// tenant costs neither worker time nor dispatcher churn while parked),
// and there is still no point simulating faster than a job can analyse.
type Pool struct {
	workers int
	submit  chan poolTask
	ctx     context.Context
	cancel  context.CancelFunc
	done    chan struct{}
	feeders sync.WaitGroup

	mu     sync.Mutex
	closed bool
	err    error
}

// poolTask is one job's trajectory task riding the shared farm. enq is
// the scheduler-queue entry stamp (unix nanoseconds), written by the
// timedQueue decorator on push and consumed on pop for the sched-wait
// histogram; zero for tasks that bypassed the queue.
type poolTask struct {
	job  *Job
	task *sim.Task
	enq  int64
}

// delivery is one message from a pool worker to the routing collector: a
// quantum's pooled batch of samples and/or a task-completion marker.
// Ownership of the batch transfers with the message — whoever stops its
// forward progress (the drop paths in Job.accept, or the job's analysis
// goroutine after pushing its samples) releases it back to the shared
// pool. Simulator failures travel here too — returning them from the
// worker would tear down the shared farm and every other job with it.
type delivery struct {
	job      *Job
	traj     int // trajectory id, for the remote scheduler's bookkeeping
	batch    *sim.Batch
	elapsed  time.Duration
	taskDone bool
	dead     bool
	steps    uint64
	err      error
}

// NewPool starts a pool of the given width. queueDepth sets the farm's
// internal channel capacities. queue, when non-nil, replaces the farm
// dispatcher's pending-task FIFO with a pluggable scheduler (sched.FIFO or
// sched.WFQ); every quantum — first dispatch and feedback reschedules
// alike — passes through it, so a fair queue enforces tenant shares at
// quantum granularity.
func NewPool(workers, queueDepth int, queue ff.TaskQueue[poolTask]) *Pool {
	if workers < 1 {
		workers = 1
	}
	if queueDepth < 1 {
		queueDepth = 1
	}
	ctx, cancel := context.WithCancel(context.Background())
	p := &Pool{
		workers: workers,
		submit:  make(chan poolTask),
		ctx:     ctx,
		cancel:  cancel,
		done:    make(chan struct{}),
	}
	farm := ff.NewFarmFeedback(workers, func(int) ff.FeedbackWorker[poolTask, delivery] {
		var fb poolTask // per-worker feedback cell, read before the next DoStep
		return ff.FeedbackWorkerFunc[poolTask, delivery](func(ctx context.Context, pt poolTask, emit ff.Emit[delivery]) (*poolTask, error) {
			again, err := poolWorker(ctx, pt, emit)
			if !again || err != nil {
				return nil, err
			}
			fb = pt
			return &fb, nil
		})
	}, ff.WithQueueDepth(queueDepth))
	farm.SetTaskQueue(queue)
	go func() {
		defer close(p.done)
		err := farm.Run(ctx, p.submit, p.route)
		if err != nil && ctx.Err() == nil {
			p.mu.Lock()
			p.err = err
			p.mu.Unlock()
		}
	}()
	return p
}

// poolWorker advances one task by one simulation quantum, batching the
// quantum's samples into a single pooled delivery. again reports whether
// the task is unfinished and should re-enter the dispatcher through the
// farm's feedback channel.
func poolWorker(_ context.Context, pt poolTask, emit ff.Emit[delivery]) (again bool, err error) {
	job := pt.job
	traj := pt.task.Traj
	if job.terminal() {
		// The job was cancelled or failed while this task was queued:
		// drop the task, but still report completion so the job's
		// accounting (and sample-stream close) stays consistent.
		return false, emit(delivery{job: job, traj: traj, taskDone: true})
	}
	if job.congested() {
		// The job's ingress queue is over its high-water mark: simulating
		// another quantum would only grow a backlog its analysis cannot
		// drain. Park the task on the job — off the farm entirely, costing
		// no worker time and no dispatcher churn — until the job's
		// windower drains below the low-water mark (or the job turns
		// terminal) and reinjects it. park fails only if the job went
		// terminal in between; then drop-with-accounting as above.
		if job.park(pt) {
			job.noteDeferred()
			return false, nil
		}
		return false, emit(delivery{job: job, traj: traj, taskDone: true})
	}
	start := time.Now()
	b := sim.GetBatch()
	if err := pt.task.RunQuantumBatch(b); err != nil {
		b.Release()
		return false, emit(delivery{job: job, traj: traj, err: err, taskDone: true})
	}
	if len(b.Samples) == 0 {
		b.Release()
		b = nil
	}
	if job.persist != nil {
		// Durable store enabled: checkpoint the engine state at quantum
		// boundaries (rate-limited per trajectory inside).
		job.maybeCheckpoint(pt.task)
	}
	if job.tenantQuanta != nil {
		job.tenantQuanta.Add(1)
	}
	elapsed := time.Since(start)
	job.metrics.localQuantum.Observe(elapsed)
	job.metrics.quantaLocal.Inc()
	job.obsTenantQuanta.Inc()
	d := delivery{job: job, traj: traj, batch: b, elapsed: elapsed}
	if pt.task.Done() {
		d.taskDone, d.dead, d.steps = true, pt.task.Dead(), pt.task.Steps()
		return false, emit(d)
	}
	if err := emit(d); err != nil {
		return false, err
	}
	return true, nil
}

// route is the farm's collector body. It runs in a single goroutine, so
// per-task delivery order is preserved for locally-simulated tasks. Jobs
// sharded across remote workers also receive deliveries from their
// per-connection reader goroutines; accept is safe for that concurrency
// (per-job mutex plus the ingress queue's own lock), and per-task order
// still holds because any one trajectory streams from one source at a
// time.
func (p *Pool) route(d delivery) error { return d.job.accept(p.ctx, d) }

// Workers returns the pool width.
func (p *Pool) Workers() int { return p.workers }

// Err reports a farm failure, if any (nil while healthy).
func (p *Pool) Err() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

// Submit enqueues a job's n simulation tasks, built lazily by build(i) so
// submit latency and peak memory stay O(1) in the ensemble size. It
// returns immediately: a short-lived feeder goroutine constructs and
// trickles the tasks into the farm (whose dispatcher buffers pending tasks
// without bound, so feeding is quick), failing the job on a build error
// and stopping early if the job reaches a terminal state first.
func (p *Pool) Submit(job *Job, n int, build func(i int) (*sim.Task, error)) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrClosed
	}
	p.feeders.Add(1)
	p.mu.Unlock()
	go func() {
		defer p.feeders.Done()
		for i := 0; i < n; i++ {
			t, err := build(i)
			if err != nil {
				job.fail(err)
				return
			}
			select {
			case p.submit <- poolTask{job: job, task: t}:
			case <-job.ctx.Done():
				return
			case <-p.ctx.Done():
				return
			}
		}
	}()
	return nil
}

// resubmit trickles previously parked tasks back into the farm's input
// stream, from a short-lived feeder goroutine so the caller (a job's
// windower, or a terminal transition) never blocks on the dispatcher. On
// pool shutdown the remaining tasks are dropped, exactly like queued ones.
func (p *Pool) resubmit(tasks []poolTask) {
	if len(tasks) == 0 {
		return
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.feeders.Add(1)
	p.mu.Unlock()
	go func() {
		defer p.feeders.Done()
		for _, pt := range tasks {
			select {
			case p.submit <- pt:
			case <-p.ctx.Done():
				return
			}
		}
	}()
}

// Close aborts the pool: in-flight quanta finish, everything else is
// dropped. Jobs still running should be failed by the caller first.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.cancel()
	p.feeders.Wait()
	<-p.done
}
