package serve

import (
	"errors"
	"time"

	"cwcflow/internal/ff"
	"cwcflow/internal/lease"
	"cwcflow/internal/obs"
	"cwcflow/internal/store"
)

// Label-cardinality caps for the dynamic-label counter families. Tenant
// ids and worker addresses are client-controlled; past these many
// distinct values, further ones fold into the "other" child (see
// obs.CounterVec), so a hostile tenant or an elastic worker fleet
// cannot grow /metrics without bound.
const (
	maxTenantSeries  = 64
	maxWorkerSeries  = 64
	maxOutcomeSeries = 16
)

// serveMetrics is the server's metric set: one histogram per
// quantum-lifecycle stage boundary (admission queue → scheduler queue →
// local/remote execution → ingress ring → stat analysis → reorder
// buffer, with the WAL and lease layers instrumented via store.Metrics
// and lease.Metrics built from the same registry), plus the pipeline
// and control-plane counters. Every field is an obs metric with
// nil-safe methods, so instrumented call sites are unconditional.
type serveMetrics struct {
	reg *obs.Registry

	// Stage-boundary latency histograms, in pipeline order.
	admissionWait *obs.Histogram // tenant admission queue: enqueue → dispatch
	schedWait     *obs.Histogram // pool scheduler queue: push → pop-to-dispatch
	localQuantum  *obs.Histogram // local pool quantum-batch execution
	remoteQuantum *obs.Histogram // remote quantum-batch execution (worker-reported)
	remoteRTT     *obs.Histogram // remote round trip: assign → result delivery
	ingressWait   *obs.Histogram // ingress-ring residency: collector push → windower pop
	analyse       *obs.Histogram // stat-farm window analysis
	reorderWait   *obs.Histogram // reorder buffer: analysis done → in-order publish

	// Pipeline throughput and backpressure counters.
	quantaLocal  *obs.Counter
	quantaRemote *obs.Counter
	deferred     *obs.Counter // quanta parked by congestion deferral
	spilled      *obs.Counter // batches spilled from a hard-bounded ingress ring
	requeued     *obs.Counter // trajectories requeued off dead/timed-out workers
	windows      *obs.Counter // windows published in order
	spansDropped *obs.Counter // trace spans discarded at the per-job cap

	// Result-cache counters (the single source for GET /cache and
	// healthz; the old Server atomics are gone).
	cacheHits      *obs.Counter
	cacheMisses    *obs.Counter
	cacheAttaches  *obs.Counter
	cacheRedirects *obs.Counter

	// Replicated-tier counters.
	leaseTakeovers *obs.Counter // leases stolen + adopted from dead owners
	handoffsOut    *obs.Counter // leases released with a handoff pointer (drain/rebalance)
	handoffsIn     *obs.Counter // handoff adoptions performed here

	// Capped dynamic-label families.
	submits      *obs.CounterVec // outcome: created/queued/cache_hit/attached/...
	tenantQuanta *obs.CounterVec // per-tenant dispatched quanta
	workerQuanta *obs.CounterVec // per-remote-worker delivered quanta

	// Cross-layer metric sets handed to the store and lease packages.
	walMetrics   store.Metrics
	leaseMetrics lease.Metrics
}

func newServeMetrics(reg *obs.Registry) *serveMetrics {
	m := &serveMetrics{reg: reg}

	m.admissionWait = reg.Histogram("cwc_admission_wait_seconds",
		"Time a job waited in its tenant's admission queue before dispatch.")
	m.schedWait = reg.Histogram("cwc_sched_wait_seconds",
		"Time a quantum waited in the pool scheduler queue between push and pop-to-dispatch.")
	m.localQuantum = reg.Histogram("cwc_quantum_seconds",
		"Quantum-batch execution time by site.", "site", "local")
	m.remoteQuantum = reg.Histogram("cwc_quantum_seconds",
		"Quantum-batch execution time by site.", "site", "remote")
	m.remoteRTT = reg.Histogram("cwc_remote_rtt_seconds",
		"Remote quantum round trip: assignment to result delivery at the owner.")
	m.ingressWait = reg.Histogram("cwc_ingress_wait_seconds",
		"Sample-batch residency in the per-job ingress ring between collector and windower.")
	m.analyse = reg.Histogram("cwc_analyse_seconds",
		"Stat-farm per-window analysis time.")
	m.reorderWait = reg.Histogram("cwc_reorder_wait_seconds",
		"Time an analysed window waited in the reorder buffer before in-order publish.")

	m.quantaLocal = reg.Counter("cwc_quanta_total",
		"Quantum batches completed by site.", "site", "local")
	m.quantaRemote = reg.Counter("cwc_quanta_total",
		"Quantum batches completed by site.", "site", "remote")
	m.deferred = reg.Counter("cwc_deferred_quanta_total",
		"Quanta parked by congestion deferral (job ingress over its high-water mark).")
	m.spilled = reg.Counter("cwc_spilled_batches_total",
		"Sample batches spilled from a hard-bounded ingress ring (fails the job).")
	m.requeued = reg.Counter("cwc_requeued_tasks_total",
		"Trajectories requeued off dead or timed-out remote workers.")
	m.windows = reg.Counter("cwc_windows_published_total",
		"Windows published in order across all jobs.")
	m.spansDropped = reg.Counter("cwc_trace_dropped_spans_total",
		"Trace spans discarded because a job's span log hit its cap.")

	m.cacheHits = reg.Counter("cwc_cache_requests_total",
		"Result-cache lookups by result.", "result", "hit")
	m.cacheMisses = reg.Counter("cwc_cache_requests_total",
		"Result-cache lookups by result.", "result", "miss")
	m.cacheAttaches = reg.Counter("cwc_cache_requests_total",
		"Result-cache lookups by result.", "result", "attach")
	m.cacheRedirects = reg.Counter("cwc_cache_requests_total",
		"Result-cache lookups by result.", "result", "redirect")

	m.leaseTakeovers = reg.Counter("cwc_lease_takeovers_total",
		"Expired or released leases stolen and adopted from other replicas.")
	m.handoffsOut = reg.Counter("cwc_handoffs_total",
		"Lease handoffs by direction.", "direction", "out")
	m.handoffsIn = reg.Counter("cwc_handoffs_total",
		"Lease handoffs by direction.", "direction", "in")

	m.submits = reg.CounterVec("cwc_submits_total",
		"Job submissions by admission outcome.", "outcome", maxOutcomeSeries)
	m.tenantQuanta = reg.CounterVec("cwc_tenant_quanta_total",
		"Quantum batches dispatched per tenant (capped cardinality).", "tenant", maxTenantSeries)
	m.workerQuanta = reg.CounterVec("cwc_worker_quanta_total",
		"Quantum batches delivered per remote worker (capped cardinality).", "worker", maxWorkerSeries)

	m.walMetrics = store.Metrics{
		Append: reg.Histogram("cwc_wal_append_seconds",
			"WAL journal frame write time."),
		Fsync: reg.Histogram("cwc_wal_fsync_seconds",
			"WAL journal fsync time."),
	}
	m.leaseMetrics = lease.Metrics{
		Acquire: reg.Counter("cwc_lease_ops_total",
			"Lease-manager operations by kind.", "op", "acquire"),
		Steal: reg.Counter("cwc_lease_ops_total",
			"Lease-manager operations by kind.", "op", "steal"),
		Renew: reg.Counter("cwc_lease_ops_total",
			"Lease-manager operations by kind.", "op", "renew"),
		RenewLost: reg.Counter("cwc_lease_ops_total",
			"Lease-manager operations by kind.", "op", "renew_lost"),
		Release: reg.Counter("cwc_lease_ops_total",
			"Lease-manager operations by kind.", "op", "release"),
		HandoffRelease: reg.Counter("cwc_lease_ops_total",
			"Lease-manager operations by kind.", "op", "handoff_release"),
	}
	return m
}

// registerServerFuncs installs the scrape-time sampled gauges. They
// close over the same Server methods /healthz reads, so the two
// surfaces can never disagree.
func (m *serveMetrics) registerServerFuncs(s *Server) {
	reg := m.reg
	reg.GaugeFunc("cwc_jobs", "Jobs in the registry by lifecycle phase.",
		func() float64 { t, _, _ := s.jobCounts(); return float64(t) }, "state", "total")
	reg.GaugeFunc("cwc_jobs", "Jobs in the registry by lifecycle phase.",
		func() float64 { _, a, _ := s.jobCounts(); return float64(a) }, "state", "active")
	reg.GaugeFunc("cwc_jobs", "Jobs in the registry by lifecycle phase.",
		func() float64 { _, _, q := s.jobCounts(); return float64(q) }, "state", "queued")
	reg.GaugeFunc("cwc_pool_workers", "Shared simulation pool width.",
		func() float64 { return float64(s.pool.Workers()) })
	reg.GaugeFunc("cwc_stat_engines", "Shared statistical engine farm width.",
		func() float64 { return float64(s.stats.Engines()) })
	reg.GaugeFunc("cwc_tenants", "Tenants known to the control plane.",
		func() float64 { return float64(len(s.Tenants())) })
	reg.GaugeFunc("cwc_remote_workers", "Remote sim workers by liveness.",
		func() float64 { t, _ := s.remoteWorkerCounts(); return float64(t) }, "state", "known")
	reg.GaugeFunc("cwc_remote_workers", "Remote sim workers by liveness.",
		func() float64 { _, l := s.remoteWorkerCounts(); return float64(l) }, "state", "live")
	if s.cache != nil {
		reg.GaugeFunc("cwc_cache_entries", "Content-addressed result cache index size.",
			func() float64 { return float64(s.cache.Len()) })
	}
	if s.opts.ReplicaID != "" {
		reg.GaugeFunc("cwc_draining", "1 while this replica is draining.",
			func() float64 {
				if s.draining.Load() {
					return 1
				}
				return 0
			})
		reg.GaugeFunc("cwc_jobs_owned", "Job leases this replica holds.",
			func() float64 { return float64(len(s.leases.HeldJobs())) })
		reg.GaugeFunc("cwc_peers_live", "Live peer replicas in the tier directory.",
			func() float64 { return float64(len(s.livePeers())) })
	}
}

// submitOutcomeLabel classifies one submission for cwc_submits_total.
func submitOutcomeLabel(res SubmitResult, err error) string {
	switch {
	case err == nil && res.CacheHit:
		return "cache_hit"
	case err == nil && res.Attached:
		return "attached"
	case err == nil && res.Job != nil && res.Job.State() == StateQueued:
		return "queued"
	case err == nil:
		return "created"
	}
	var redir *AttachRedirectError
	switch {
	case errors.As(err, &redir):
		return "redirect"
	case errors.Is(err, ErrDraining):
		return "draining"
	case errors.Is(err, errSaturated):
		return "saturated"
	case errors.Is(err, ErrQuotaExceeded):
		return "quota"
	case errors.Is(err, ErrBusy):
		return "busy"
	case errors.Is(err, ErrClosed):
		return "closed"
	default:
		return "invalid"
	}
}

// timedQueue decorates the injected pool scheduler queue with the
// sched-wait histogram: Push stamps the quantum, Pop observes the wait.
// The stamp rides the poolTask value itself, so out-of-order disciplines
// (WFQ) measure each quantum's true wait with zero allocations.
type timedQueue struct {
	inner ff.TaskQueue[poolTask]
	wait  *obs.Histogram
}

func (q *timedQueue) Push(pt poolTask) {
	pt.enq = time.Now().UnixNano()
	q.inner.Push(pt)
}

func (q *timedQueue) Pop() (poolTask, bool) {
	pt, ok := q.inner.Pop()
	if ok && pt.enq != 0 {
		q.wait.Observe(time.Duration(time.Now().UnixNano() - pt.enq))
	}
	return pt, ok
}

func (q *timedQueue) Len() int { return q.inner.Len() }
