package serve_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"cwcflow/internal/chaos"
	"cwcflow/internal/lease"
	"cwcflow/internal/serve"
)

// noRedirect performs requests without following redirects, so tests can
// assert on the 307s themselves.
var noRedirect = &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
	return http.ErrUseLastResponse
}}

// drainReplica POSTs /drain and decodes the report.
func drainReplica(t *testing.T, base string) serve.DrainReport {
	t.Helper()
	resp, err := http.Post(base+"/drain", "application/json", nil)
	if err != nil {
		t.Fatalf("POST /drain: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /drain status %d", resp.StatusCode)
	}
	var rep serve.DrainReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatalf("decoding drain report: %v", err)
	}
	return rep
}

// leaseProbe opens a read-only manager on the tier's lease directory.
func leaseProbe(t *testing.T, dataDir string) *lease.Manager {
	t.Helper()
	m, err := lease.NewManager(lease.Options{
		Dir:   filepath.Join(dataDir, "leases"),
		Owner: "probe",
		TTL:   time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestDrainHandsOffWithoutTTLWait is the voluntary-handoff acceptance
// pin: draining replica A checkpoints its running job, releases the
// lease with a handoff pointer and nudges B, which adopts and finishes
// bit-identically — all far faster than the 10s lease TTL that crash
// failover would have had to wait out. Both failover scans are parked at
// an hour, so ONLY the handoff protocol can explain the job moving.
func TestDrainHandsOffWithoutTTLWait(t *testing.T) {
	_, refURL := newRemoteServer(t, 0, serve.Options{})
	_, refDigest := runToDigest(t, refURL, longWalkSpec(24))

	dir := t.TempDir()
	_, aURL := newReplicaServer(t, dir, "a", serve.Options{
		Resolver:      snapWalkResolver(2 * time.Millisecond),
		LeaseTTL:      10 * time.Second,
		FailoverScan:  time.Hour,
		RebalanceScan: -1,
		DrainGrace:    20 * time.Millisecond,
	})
	_, bURL := newReplicaServer(t, dir, "b", serve.Options{
		Resolver:      snapWalkResolver(0),
		LeaseTTL:      10 * time.Second,
		FailoverScan:  time.Hour,
		RebalanceScan: -1,
	})

	st := submitJob(t, aURL, longWalkSpec(24))
	waitWindows(t, aURL, st.ID, 1)

	start := time.Now()
	rep := drainReplica(t, aURL)
	if !rep.Draining || len(rep.Jobs) != 1 {
		t.Fatalf("drain report = %+v, want draining with 1 handed-off job", rep)
	}
	if rep.Jobs[0].Job != st.ID || rep.Jobs[0].Windows < 1 {
		t.Fatalf("drained job = %+v, want %s with a positive window frontier", rep.Jobs[0], st.ID)
	}
	if rep.Jobs[0].Peer != "b" {
		t.Fatalf("drain nudged peer %q, want b", rep.Jobs[0].Peer)
	}

	waitForState(t, bURL, st.ID, serve.StateDone)
	if since := time.Since(start); since >= 10*time.Second {
		t.Fatalf("drain-to-done took %v: the handoff waited out the lease TTL instead of transferring", since)
	}
	stB, digest := runStatusAndDigest(t, bURL, st.ID)
	if digest != refDigest {
		t.Fatalf("handed-off digest %s != uninterrupted %s", digest, refDigest)
	}
	if !stB.Recovered {
		t.Fatal("handed-off job not flagged recovered on the adopter")
	}

	// The drained replica redirects new submissions to the live peer.
	body, _ := json.Marshal(longWalkSpec(8))
	resp, err := noRedirect.Post(aURL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("submit to draining replica: status %d, want 307", resp.StatusCode)
	}
	if loc, want := resp.Header.Get("Location"), bURL+"/jobs"; loc != want {
		t.Fatalf("submit redirect Location %q, want %q", loc, want)
	}

	// And advertises the drain on /healthz.
	resp, err = http.Get(aURL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if h["draining"] != true {
		t.Fatalf("healthz draining = %v, want true", h["draining"])
	}

	// Reads through the drained replica still work: the foreign path
	// answers from the adopter's lease and journal.
	stA := getStatus(t, aURL, st.ID)
	if stA.State != serve.StateDone || stA.Owner != "b" {
		t.Fatalf("status via drained replica = state %s owner %q, want done/b", stA.State, stA.Owner)
	}
}

// TestRebalanceMovesJobOffOverloadedPeer pins the anti-entropy half:
// idle replica B notices A owns 3 jobs (margin 2 exceeded), requests a
// handoff and adopts at epoch+1. One job moves per tick, and each move
// is a single transfer — a moved lease sits at exactly epoch 2, never
// higher (no ping-pong). Every job still finishes with the reference
// digest. (B may pull more than one job over the run: it finishes its
// adopted work quickly and legitimately becomes underloaded again.)
func TestRebalanceMovesJobOffOverloadedPeer(t *testing.T) {
	_, refURL := newRemoteServer(t, 0, serve.Options{})
	_, refDigest := runToDigest(t, refURL, longWalkSpec(24))

	dir := t.TempDir()
	_, aURL := newReplicaServer(t, dir, "a", serve.Options{
		Resolver:      snapWalkResolver(2 * time.Millisecond),
		LeaseTTL:      10 * time.Second,
		FailoverScan:  time.Hour,
		RebalanceScan: -1, // A never requests; it only honours requests
		DrainGrace:    10 * time.Millisecond,
		// Three byte-identical submissions must become three jobs here:
		// with the cache on they would attach to the first, and this test
		// needs A genuinely overloaded (digests are pinned to the golden
		// seed, so the specs cannot vary instead).
		NoCache: true,
	})
	var ids []string
	for i := 0; i < 3; i++ {
		ids = append(ids, submitJob(t, aURL, longWalkSpec(24)).ID)
	}
	waitWindows(t, aURL, ids[0], 1)

	_, bURL := newReplicaServer(t, dir, "b", serve.Options{
		Resolver:      snapWalkResolver(0),
		LeaseTTL:      10 * time.Second,
		FailoverScan:  time.Hour,
		RebalanceScan: 25 * time.Millisecond,
	})

	for _, id := range ids {
		waitForState(t, bURL, id, serve.StateDone)
		_, digest := runStatusAndDigest(t, bURL, id)
		if digest != refDigest {
			t.Fatalf("job %s digest %s != reference %s", id, digest, refDigest)
		}
	}

	probe := leaseProbe(t, dir)
	ls, err := probe.List()
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for _, l := range ls {
		if l.Owner == "b" {
			moved++
			if l.Epoch != 2 {
				t.Fatalf("rebalanced lease %s at epoch %d, want exactly 2 (one epoch+1 adoption, no ping-pong)", l.Job, l.Epoch)
			}
		}
	}
	if moved < 1 {
		t.Fatal("rebalancer never moved a job off the overloaded replica")
	}
}

// TestConcurrentDrainsHandOffCleanly drains two replicas at once while
// each owns a running job: whatever interleaving the nudges take (a
// draining peer refuses adoptions), the third replica's failover scan
// adopts both released leases and finishes both jobs bit-identically —
// zero failed jobs.
func TestConcurrentDrainsHandOffCleanly(t *testing.T) {
	_, refURL := newRemoteServer(t, 0, serve.Options{})
	_, refDigest := runToDigest(t, refURL, longWalkSpec(24))

	dir := t.TempDir()
	_, aURL := newReplicaServer(t, dir, "a", serve.Options{
		Resolver:      snapWalkResolver(2 * time.Millisecond),
		LeaseTTL:      10 * time.Second,
		FailoverScan:  time.Hour,
		RebalanceScan: -1,
		DrainGrace:    5 * time.Millisecond,
	})
	_, bURL := newReplicaServer(t, dir, "b", serve.Options{
		Resolver:      snapWalkResolver(2 * time.Millisecond),
		LeaseTTL:      10 * time.Second,
		FailoverScan:  time.Hour,
		RebalanceScan: -1,
		DrainGrace:    5 * time.Millisecond,
	})
	_, cURL := newReplicaServer(t, dir, "c", serve.Options{
		Resolver:      snapWalkResolver(0),
		LeaseTTL:      10 * time.Second,
		FailoverScan:  25 * time.Millisecond,
		RebalanceScan: -1,
	})

	jobA := submitJob(t, aURL, longWalkSpec(24))
	jobB := submitJob(t, bURL, longWalkSpec(24))
	waitWindows(t, aURL, jobA.ID, 1)
	waitWindows(t, bURL, jobB.ID, 1)

	var wg sync.WaitGroup
	for _, base := range []string{aURL, bURL} {
		wg.Add(1)
		go func(base string) {
			defer wg.Done()
			drainReplica(t, base)
		}(base)
	}
	wg.Wait()

	for _, id := range []string{jobA.ID, jobB.ID} {
		waitForState(t, cURL, id, serve.StateDone)
		stC, digest := runStatusAndDigest(t, cURL, id)
		if stC.State != serve.StateDone {
			t.Fatalf("job %s finished %s, want done", id, stC.State)
		}
		if digest != refDigest {
			t.Fatalf("job %s digest %s != reference %s", id, digest, refDigest)
		}
	}
}

// TestDrainRacesExpirySteal races a voluntary drain against a chaos-
// accelerated expiry steal of the same job: epoch fencing means either
// interleaving is safe — the release-with-pointer no-ops if the thief's
// epoch already landed — and the job finishes once, bit-identically, on
// the thief.
func TestDrainRacesExpirySteal(t *testing.T) {
	_, refURL := newRemoteServer(t, 0, serve.Options{})
	_, refDigest := runToDigest(t, refURL, longWalkSpec(24))

	dir := t.TempDir()
	_, aURL := newReplicaServer(t, dir, "a", serve.Options{
		Resolver:      snapWalkResolver(2 * time.Millisecond),
		LeaseTTL:      500 * time.Millisecond,
		FailoverScan:  time.Hour,
		RebalanceScan: -1,
		DrainGrace:    5 * time.Millisecond,
	})
	st := submitJob(t, aURL, longWalkSpec(24))
	waitWindows(t, aURL, st.ID, 1)

	inj := chaos.New(42)
	inj.Arm(chaos.LeaseExpireEarly, chaos.Rule{Prob: 1})
	_, bURL := newReplicaServer(t, dir, "b", serve.Options{
		Resolver:      snapWalkResolver(0),
		LeaseTTL:      500 * time.Millisecond,
		FailoverScan:  10 * time.Millisecond,
		RebalanceScan: -1,
		Chaos:         inj,
	})

	done := make(chan struct{})
	go func() {
		defer close(done)
		drainReplica(t, aURL)
	}()
	<-done

	waitForState(t, bURL, st.ID, serve.StateDone)
	_, digest := runStatusAndDigest(t, bURL, st.ID)
	if digest != refDigest {
		t.Fatalf("digest after drain/steal race %s != reference %s", digest, refDigest)
	}
}

// TestChaosHandoffRequesterDiesFallsBackToFailover is the chaos
// acceptance pin for the transfer protocol: requester B gets owner A to
// release a job reserved for it, then "dies" (HandoffCrash) before
// adopting. The targeted reservation parks the lease for one TTL, after
// which bystander C's ordinary failover scan adopts the job and finishes
// it bit-identically — the job is never lost and never double-owned.
func TestChaosHandoffRequesterDiesFallsBackToFailover(t *testing.T) {
	_, refURL := newRemoteServer(t, 0, serve.Options{})
	_, refDigest := runToDigest(t, refURL, longWalkSpec(24))

	dir := t.TempDir()
	_, aURL := newReplicaServer(t, dir, "a", serve.Options{
		Resolver:      snapWalkResolver(2 * time.Millisecond),
		LeaseTTL:      time.Second,
		FailoverScan:  time.Hour,
		RebalanceScan: -1,
		DrainGrace:    10 * time.Millisecond,
		// Two identical golden-seed submissions must be two jobs (see
		// TestRebalanceMovesJobOffOverloadedPeer).
		NoCache: true,
	})
	job1 := submitJob(t, aURL, longWalkSpec(24))
	job2 := submitJob(t, aURL, longWalkSpec(24))
	waitWindows(t, aURL, job1.ID, 1)

	inj := chaos.New(7)
	inj.Arm(chaos.HandoffCrash, chaos.Rule{Prob: 1, Limit: 1})
	_, _ = newReplicaServer(t, dir, "b", serve.Options{
		Resolver:      snapWalkResolver(0),
		LeaseTTL:      time.Second,
		FailoverScan:  time.Hour, // B's failover is parked: only its rebalance requester runs
		RebalanceScan: 30 * time.Millisecond,
		Chaos:         inj,
	})
	_, cURL := newReplicaServer(t, dir, "c", serve.Options{
		Resolver:      snapWalkResolver(0),
		LeaseTTL:      time.Second,
		FailoverScan:  50 * time.Millisecond,
		RebalanceScan: -1,
	})

	for _, id := range []string{job1.ID, job2.ID} {
		waitForState(t, cURL, id, serve.StateDone)
		_, digest := runStatusAndDigest(t, cURL, id)
		if digest != refDigest {
			t.Fatalf("job %s digest %s != reference %s", id, digest, refDigest)
		}
	}
	if got := inj.Fired(chaos.HandoffCrash); got != 1 {
		t.Fatalf("HandoffCrash fired %d times, want exactly 1", got)
	}

	// Exactly one job fell through to C (the crashed handoff), and B —
	// the requester that "died" mid-transfer — owns nothing.
	probe := leaseProbe(t, dir)
	ls, err := probe.List()
	if err != nil {
		t.Fatal(err)
	}
	onC := 0
	for _, l := range ls {
		switch l.Owner {
		case "c":
			onC++
			if l.Epoch < 2 {
				t.Fatalf("fallback adoption of %s at epoch %d, want >= 2", l.Job, l.Epoch)
			}
		case "b":
			t.Fatalf("crashed requester b owns lease %s; the handoff double-owned", l.Job)
		}
	}
	if onC != 1 {
		t.Fatalf("%d jobs adopted by c, want exactly the 1 crashed handoff", onC)
	}
}

// TestChaosHandoffRequestDropped drops the first handoff request on the
// owner's floor (before any state changes): the owner keeps driving the
// job, the requester's next rebalance tick retries, and the second
// request goes through.
func TestChaosHandoffRequestDropped(t *testing.T) {
	_, refURL := newRemoteServer(t, 0, serve.Options{})
	_, refDigest := runToDigest(t, refURL, longWalkSpec(24))

	dir := t.TempDir()
	inj := chaos.New(11)
	inj.Arm(chaos.HandoffDrop, chaos.Rule{Prob: 1, Limit: 1})
	_, aURL := newReplicaServer(t, dir, "a", serve.Options{
		Resolver:      snapWalkResolver(2 * time.Millisecond),
		LeaseTTL:      10 * time.Second,
		FailoverScan:  time.Hour,
		RebalanceScan: -1,
		DrainGrace:    10 * time.Millisecond,
		Chaos:         inj, // the drop fires in A's handoff handler
		// Two identical golden-seed submissions must be two jobs (see
		// TestRebalanceMovesJobOffOverloadedPeer).
		NoCache: true,
	})
	job1 := submitJob(t, aURL, longWalkSpec(24))
	job2 := submitJob(t, aURL, longWalkSpec(24))
	waitWindows(t, aURL, job1.ID, 1)

	_, bURL := newReplicaServer(t, dir, "b", serve.Options{
		Resolver:      snapWalkResolver(0),
		LeaseTTL:      10 * time.Second,
		FailoverScan:  time.Hour,
		RebalanceScan: 25 * time.Millisecond,
	})

	for _, id := range []string{job1.ID, job2.ID} {
		waitForState(t, bURL, id, serve.StateDone)
		_, digest := runStatusAndDigest(t, bURL, id)
		if digest != refDigest {
			t.Fatalf("job %s digest %s != reference %s", id, digest, refDigest)
		}
	}
	if got := inj.Fired(chaos.HandoffDrop); got != 1 {
		t.Fatalf("HandoffDrop fired %d times, want 1", got)
	}
	probe := leaseProbe(t, dir)
	ls, err := probe.List()
	if err != nil {
		t.Fatal(err)
	}
	onB := 0
	for _, l := range ls {
		if l.Owner == "b" {
			onB++
		}
	}
	if onB != 1 {
		t.Fatalf("%d jobs on b after the dropped-then-retried handoff, want 1", onB)
	}
}

// TestStreamToDeadOwnerAnswers503 covers the dead-owner read fallback: a
// lease names an owner whose socket is gone (and which never heartbeats
// into the peer directory), so redirecting a stream there would strand
// the client. The replica answers 503 with Retry-After bounded by the
// lease TTL instead; cancels get the same treatment rather than a
// doomed proxy attempt.
func TestStreamToDeadOwnerAnswers503(t *testing.T) {
	dir := t.TempDir()
	_, bURL := newReplicaServer(t, dir, "b", serve.Options{
		Resolver:      snapWalkResolver(0),
		LeaseTTL:      10 * time.Second,
		FailoverScan:  time.Hour,
		RebalanceScan: -1,
	})

	ghost, err := lease.NewManager(lease.Options{
		Dir:   filepath.Join(dir, "leases"),
		Owner: "ghost",
		URL:   "http://127.0.0.1:9", // nothing listens here
		TTL:   10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ghost.Acquire("job-ghost-000001"); err != nil {
		t.Fatal(err)
	}

	resp, err := noRedirect.Get(bURL + "/jobs/job-ghost-000001/stream")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("stream to dead owner: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("dead-owner 503 carries no Retry-After")
	}

	resp, err = http.Post(bURL+"/jobs/job-ghost-000001/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("cancel to dead owner: status %d, want 503", resp.StatusCode)
	}
}
