package serve

// The serve side of the content-addressed result cache and in-flight
// attach. Submission flow:
//
//  1. The spec is canonicalised and hashed (SpecDigest). A submission
//     whose digest matches a non-terminal local job ATTACHES: it gets the
//     running job back (same id, same stream — one simulation, N
//     watchers) and is charged nothing. A digest matching the cache index
//     is a HIT: the completed job shell answers immediately, its windows
//     replayed from the registry/journal, zero simulation.
//  2. On a local miss in a replicated tier, the lease directory is
//     consulted: a live, unexpired, unreleased lease advertising the same
//     digest means another replica is running this exact spec — the
//     submission is redirected there (307, the existing cross-replica
//     path) and attaches on the owner.
//  3. The decisive re-check runs under the server mutex inside admission,
//     in the same critical section that registers the job and its
//     in-flight digest: two racing submissions of one spec can never both
//     create a job.
//
// The cache index itself (store.Cache) is memory-only and rebuilt from
// journal replay at boot: recovery re-derives every terminal record's
// digest, so the index survives restarts without a WAL format change.

import (
	"fmt"
	"time"
)

// SubmitResult is the outcome of one submission: the job answering it,
// plus whether it was answered from the result cache (CacheHit — a
// completed job, zero simulation) or by attaching to an in-flight job
// with the same spec digest (Attached — the caller shares its stream). A
// plain miss created Job fresh and set neither flag.
type SubmitResult struct {
	Job      *Job
	CacheHit bool
	Attached bool
}

// AttachRedirectError reports that another replica is running a job with
// this submission's spec digest: the HTTP layer redirects the client to
// the owner (307), where it attaches instead of duplicating the
// simulation.
type AttachRedirectError struct {
	URL   string
	Owner string
}

func (e *AttachRedirectError) Error() string {
	return fmt.Sprintf("serve: spec is in flight on replica %s (%s)", e.Owner, e.URL)
}

// CacheStats is the wire format of GET /cache.
type CacheStats struct {
	Enabled    bool  `json:"enabled"`
	Entries    int   `json:"entries"`
	MaxEntries int   `json:"max_entries,omitempty"`
	Hits       int64 `json:"hits"`
	Misses     int64 `json:"misses"`
	Attaches   int64 `json:"attaches"`
	Redirects  int64 `json:"redirects,omitempty"`
	Evictions  int64 `json:"evictions,omitempty"`
	// InFlight counts distinct spec digests currently backed by a running
	// local job — the attach targets.
	InFlight int `json:"in_flight"`
}

// CacheStats snapshots the cache and attach counters, read from the
// metric registry — the same series /metrics exposes as
// cwc_cache_requests_total.
func (s *Server) CacheStats() CacheStats {
	cs := CacheStats{
		Enabled:   s.cache != nil,
		Hits:      int64(s.m.cacheHits.Value()),
		Misses:    int64(s.m.cacheMisses.Value()),
		Attaches:  int64(s.m.cacheAttaches.Value()),
		Redirects: int64(s.m.cacheRedirects.Value()),
	}
	if s.cache != nil {
		cs.Entries = s.cache.Len()
		cs.MaxEntries = s.cache.Max()
		cs.Evictions = s.cache.Evictions()
		s.mu.Lock()
		cs.InFlight = len(s.inflightDigest)
		s.mu.Unlock()
	}
	return cs
}

// cacheKey scopes a spec digest to its submitting tenant: tenants never
// see (or attach to) each other's jobs, even for identical specs — the
// isolation the control plane promises outranks the deduplication. The
// pure digest still travels in Status.SpecDigest.
func cacheKey(tenant, digest string) string {
	if digest == "" {
		return ""
	}
	if tenant == "" {
		tenant = DefaultTenant
	}
	return tenant + ":" + digest
}

// cacheLookupLocked answers a submission from the local registry if its
// tenant-scoped key matches an in-flight job (attach) or a cached
// terminal one (hit). countMiss is set on the first, pre-admission
// lookup only, so each submission counts at most one miss however many
// times it re-checks. Callers hold s.mu.
func (s *Server) cacheLookupLocked(key string, countMiss bool) (SubmitResult, bool) {
	if s.cache == nil || key == "" || s.closed {
		return SubmitResult{}, false
	}
	if j, ok := s.inflightDigest[key]; ok && !j.State().Terminal() {
		j.attached.Add(1)
		s.m.cacheAttaches.Inc()
		return SubmitResult{Job: j, Attached: true}, true
	}
	if id, ok := s.cache.Get(key); ok {
		if j, ok := s.jobs[id]; ok && j.State() == StateDone {
			s.m.cacheHits.Inc()
			return SubmitResult{Job: j, CacheHit: true}, true
		}
		// Stale index entry: the job was evicted from the registry or
		// never finished done. Drop it so the next Put can remap.
		s.cache.Remove(key)
	}
	if countMiss {
		s.m.cacheMisses.Inc()
	}
	return SubmitResult{}, false
}

// attachTarget scans the lease directory for a live peer already running
// this tenant-scoped key: unreleased, unexpired, not us, advertising a
// URL, and answering its healthz. Best effort — a false negative just
// runs the (deterministic) simulation twice, it never corrupts anything.
func (s *Server) attachTarget(key string) (url, owner string, ok bool) {
	if s.leases == nil || key == "" {
		return "", "", false
	}
	ls, err := s.leases.List()
	if err != nil {
		return "", "", false
	}
	now := time.Now().UnixNano()
	for _, l := range ls {
		if l.Digest != key || l.Owner == s.opts.ReplicaID || l.Released || l.URL == "" {
			continue
		}
		if now >= l.Expires {
			continue
		}
		if !s.ownerAlive(l) {
			continue
		}
		return l.URL, l.Owner, true
	}
	return "", "", false
}
