package serve

import (
	"testing"
	"time"
)

// TestScanJitterBounds pins the jitter discipline shared with
// dff.DialRetry: uniform over [d/2, 3d/2], so replicas started in
// lockstep spread their lease-directory scans and rebalance requests,
// while the mean cadence stays the nominal interval.
func TestScanJitterBounds(t *testing.T) {
	const d = 40 * time.Millisecond
	lo, hi := d/2, 3*d/2
	min, max := hi, lo
	for i := 0; i < 10000; i++ {
		j := scanJitter(d)
		if j < lo || j > hi {
			t.Fatalf("scanJitter(%v) = %v outside [%v, %v]", d, j, lo, hi)
		}
		if j < min {
			min = j
		}
		if j > max {
			max = j
		}
	}
	// The draws must actually spread across the range, not cluster.
	if min > lo+d/8 || max < hi-d/8 {
		t.Fatalf("scanJitter draws span [%v, %v]; expected nearly [%v, %v]", min, max, lo, hi)
	}
}

func TestScanJitterZeroAndNegativePassThrough(t *testing.T) {
	if got := scanJitter(0); got != 0 {
		t.Fatalf("scanJitter(0) = %v, want 0", got)
	}
	if got := scanJitter(-time.Second); got != -time.Second {
		t.Fatalf("scanJitter(-1s) = %v, want -1s", got)
	}
}
