package serve

import (
	"errors"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cwcflow/internal/chaos"
	"cwcflow/internal/core"
	"cwcflow/internal/dff"
	"cwcflow/internal/obs"
	"cwcflow/internal/sim"
)

// remoteJob is one job's quantum scheduler across the cluster: it routes
// the job's trajectories either onto the local simulation pool or over a
// dff stream to a remote sim worker (cwc-dist worker), enforcing the
// registry's per-worker in-flight caps, and it owns the fault handling —
// a trajectory in flight on a dead or timed-out worker is requeued onto a
// surviving worker (or the local pool) without breaking determinism.
//
// Determinism across requeues rests on two invariants:
//
//  1. every trajectory is rebuilt from (model, BaseSeed+traj) wherever it
//     runs, so a re-run emits bit-identical samples;
//  2. filter deduplicates the replayed prefix by tracking, per trajectory,
//     the next sample index the analysis has not yet seen, and squashes
//     duplicate completion markers — the aligner downstream therefore sees
//     every (trajectory, index) sample exactly once, and the window-stats
//     digest matches a single-process run of the same spec.
//
// Quanta stream back as one batch per quantum and merge into the job's
// ordinary ingress ring via Job.accept, so everything downstream of the
// scheduler (windower, stat farm, reorder buffer) is oblivious to where a
// quantum was simulated.
type remoteJob struct {
	srv     *Server
	job     *Job
	cfg     core.Config
	hdr     core.JobHeader
	timeout time.Duration // per-quantum result watchdog

	mu            sync.Mutex
	queue         []int // unassigned trajectory ids, FIFO
	conns         map[*workerConn]struct{}
	local         map[int]struct{} // trajectories in flight on the local pool
	localCap      int
	nextIdx       map[int]int // per-trajectory dedup: next unseen sample index
	done          map[int]bool
	doneCount     int
	total         int
	assignsClosed bool // all trajectories done: streams closing gracefully
	closed        bool // job went terminal: hard stop, no requeues
}

// workerConn is one live serve→worker stream: a sender goroutine forwards
// assignments, a reader goroutine merges result quanta into the job.
type workerConn struct {
	rj         *remoteJob
	addr       string
	conn       net.Conn
	assign     chan int
	assignOnce sync.Once
	quanta     *obs.Counter // per-worker quanta series child, cached once
	// inflight maps each in-flight trajectory to its last dispatch or
	// delivery stamp (unix ns) — the round-trip histogram's clock.
	// Guarded by rj.mu.
	inflight map[int]int64
	lastMsg  atomic.Int64 // unixnano of the last stream activity
}

func (wc *workerConn) closeAssigns() {
	wc.assignOnce.Do(func() { close(wc.assign) })
}

func (wc *workerConn) touch() {
	wc.lastMsg.Store(time.Now().UnixNano())
}

// maxJobWorkerStreams caps how many worker connections one job opens.
// It bounds both the submit-time dial fan-out and — critically — the
// number of reader goroutines that can concurrently push a batch past the
// congestion check into the job's ingress ring: the ring's hard capacity
// reserves exactly this much slack above the high-water mark (see
// newJob), so remote delivery can never spill a healthy job.
const maxJobWorkerStreams = 32

// startRemote shards a job across the registry's live workers, returning
// false (job untouched) when none are reachable — the caller then falls
// back to the all-local pool path. On success the scheduler owns the
// submission of every trajectory.
func (s *Server) startRemote(job *Job, cfg core.Config, model core.ModelRef) bool {
	if s.registry == nil {
		return false
	}
	addrs := s.registry.live()
	if len(addrs) == 0 {
		return false
	}
	if len(addrs) > maxJobWorkerStreams {
		addrs = addrs[:maxJobWorkerStreams]
	}
	// With a durable store behind the job, ask workers to piggyback an
	// engine snapshot every checkpoint interval (ResultMsg.Ckpt): the
	// durable frontier then advances with remote progress too, instead
	// of only with local-pool checkpoints.
	ckptSamples := 0
	if job.persist != nil {
		ckptSamples = s.opts.CheckpointSamples
	}
	rj := &remoteJob{
		srv: s,
		job: job,
		cfg: cfg,
		hdr: core.JobHeader{
			Model:             model,
			End:               cfg.End,
			Quantum:           cfg.Quantum,
			Period:            cfg.Period,
			BaseSeed:          cfg.BaseSeed,
			CheckpointSamples: ckptSamples,
			TraceID:           job.trace.ID(),
		},
		timeout:  s.opts.WorkerTimeout,
		conns:    make(map[*workerConn]struct{}),
		local:    make(map[int]struct{}),
		localCap: s.pool.Workers(),
		nextIdx:  make(map[int]int),
		done:     make(map[int]bool),
		total:    cfg.Trajectories,
	}
	// Dial every live worker concurrently (submit latency is bounded by
	// one dial window, not the cluster size), retrying once per worker so
	// a worker mid-restart is caught on its way back up.
	conns := make([]net.Conn, len(addrs))
	var dials sync.WaitGroup
	for i, addr := range addrs {
		dials.Add(1)
		go func() {
			defer dials.Done()
			conn, err := dff.DialRetry(job.ctx, addr, s.opts.DialTimeout, 2, 100*time.Millisecond)
			if err != nil {
				s.registry.markFailed(addr)
				return
			}
			conns[i] = conn
		}()
	}
	dials.Wait()
	for i, conn := range conns {
		if conn == nil {
			continue
		}
		s.registry.markHealthy(addrs[i])
		wc := &workerConn{
			rj:       rj,
			addr:     addrs[i],
			conn:     conn,
			assign:   make(chan int, 1024),
			quanta:   s.m.workerQuanta.With(addrs[i]),
			inflight: make(map[int]int64),
		}
		wc.touch()
		rj.conns[wc] = struct{}{}
	}
	if len(rj.conns) == 0 {
		return false
	}
	job.setSched(rj)
	rj.queue = make([]int, cfg.Trajectories)
	for i := range rj.queue {
		rj.queue[i] = i
	}
	for wc := range rj.conns {
		go wc.sender(rj.hdr)
		go wc.reader()
	}
	go rj.watchdog()
	rj.mu.Lock()
	rj.assignLocked()
	rj.mu.Unlock()
	return true
}

// sender pushes the job header and then every assignment onto the stream.
// A transport failure closes the connection; the reader notices and the
// scheduler requeues whatever was in flight.
func (wc *workerConn) sender(hdr core.JobHeader) {
	out := dff.NewWriter[core.WorkerMsg](wc.conn)
	if err := out.Send(core.WorkerMsg{Header: &hdr}); err != nil {
		wc.conn.Close()
		return
	}
	for traj := range wc.assign {
		if err := out.Send(core.WorkerMsg{Traj: traj}); err != nil {
			wc.conn.Close()
			return
		}
	}
	// End of assignments: the worker finishes its tasks, sends the trailer
	// and closes its side.
	_ = out.Close()
}

// reader merges the worker's result stream into the job until the stream
// ends (cleanly after a trailer, or with an error on worker death).
func (wc *workerConn) reader() {
	in := dff.NewReader[core.ResultMsg](wc.conn)
	faults := wc.rj.srv.opts.Chaos // nil in production: each hook is one nil check
	for {
		msg, ok, err := in.Recv()
		if err != nil {
			wc.rj.connDown(wc, err)
			return
		}
		if !ok {
			wc.rj.connDown(wc, nil)
			return
		}
		wc.touch()
		if msg.Trailer != nil {
			// Serve-side accounting rides the per-task markers; the trailer
			// closes the stream — and brings home the worker's spans, which
			// merge into the owning job's trace under the local trace id.
			wc.rj.job.trace.Merge(msg.Trailer.Spans)
			continue
		}
		// Fault injection: drop the link, delay the delivery, or deliver
		// the message twice — the requeue/dedup machinery must absorb all
		// three without perturbing the window digest.
		if faults.Fire(chaos.RecvDrop) {
			wc.conn.Close()
			wc.rj.connDown(wc, errors.New("serve: chaos dropped worker connection"))
			return
		}
		if d := faults.Stall(chaos.RecvDelay); d > 0 {
			time.Sleep(d)
		}
		wc.rj.deliver(wc, msg)
		if faults.Fire(chaos.RecvDup) {
			wc.rj.deliver(wc, msg)
		}
	}
}

// deliver converts one remote quantum into a pool-style delivery and
// merges it through the job's ordinary ingress path. Flow control is the
// reader itself: while the job's ingress is congested the reader stops
// consuming, TCP backpressure reaches the worker's collector, and the
// worker's farm stalls — the distributed analogue of parking local tasks.
func (rj *remoteJob) deliver(wc *workerConn, msg core.ResultMsg) {
	d := delivery{
		job:      rj.job,
		traj:     msg.Traj,
		elapsed:  time.Duration(msg.ElapsedNs),
		taskDone: msg.TaskDone,
		dead:     msg.Dead,
		steps:    msg.Steps,
	}
	if len(msg.Samples) > 0 {
		b := sim.GetBatch()
		for _, s := range msg.Samples {
			b.Append(s)
		}
		d.batch = b
	}
	// A piggybacked worker checkpoint lands in the journal before the
	// congestion gate: the durable frontier keeps advancing with remote
	// progress even while this job's analysis is backpressured.
	if len(msg.Ckpt) > 0 {
		rj.job.remoteCheckpoint(msg.Traj, msg.CkptNext, msg.Ckpt)
	}
	for rj.job.congested() && !rj.job.terminal() {
		wc.touch() // alive, just backpressured: keep the watchdog quiet
		time.Sleep(2 * time.Millisecond)
	}
	// Remote quanta count toward the owning tenant's dispatched-quanta
	// observable just like local ones (GET /tenants); only the local
	// pool's share is shaped by the sched.Scheduler, since remote workers
	// pull at their own pace over their own streams.
	if rj.job.tenantQuanta != nil {
		rj.job.tenantQuanta.Add(1)
	}
	m := rj.job.metrics
	m.remoteQuantum.Observe(d.elapsed)
	m.quantaRemote.Inc()
	wc.quanta.Inc()
	rj.job.obsTenantQuanta.Inc()
	// Round trip: dispatch (or previous delivery) to this delivery —
	// worker compute plus both wire legs and queueing. The stamp advances
	// with each quantum so a long trajectory yields per-quantum gaps, not
	// one ever-growing interval.
	rj.mu.Lock()
	if ts, ok := wc.inflight[msg.Traj]; ok {
		now := time.Now().UnixNano()
		m.remoteRTT.Observe(time.Duration(now - ts))
		wc.inflight[msg.Traj] = now
	}
	rj.mu.Unlock()
	_ = rj.job.accept(rj.job.ctx, d)
	if msg.TaskDone {
		rj.taskDelivered(wc, msg.Traj)
	}
}

// filter runs inside Job.accept for every delivery (local and remote) of
// a scheduled job: it drops the already-seen sample prefix of a requeued
// trajectory and squashes duplicate completion markers, so the windower
// sees each sample and each completion exactly once however many times a
// trajectory was (re)started.
func (rj *remoteJob) filter(d *delivery) {
	rj.mu.Lock()
	defer rj.mu.Unlock()
	if d.batch != nil {
		next := rj.nextIdx[d.traj]
		kept := d.batch.Samples[:0]
		for _, s := range d.batch.Samples {
			if s.Index >= next {
				kept = append(kept, s)
				next = s.Index + 1
			}
		}
		d.batch.Samples = kept
		rj.nextIdx[d.traj] = next
		if len(kept) == 0 {
			d.batch.Release()
			d.batch = nil
		}
	}
	if d.taskDone {
		if rj.done[d.traj] {
			// A duplicate completion: the trajectory already finished on
			// another assignee (requeue raced a slow-but-alive worker).
			d.taskDone, d.dead, d.steps = false, false, 0
		} else {
			rj.done[d.traj] = true
			rj.doneCount++
			delete(rj.local, d.traj)
			if rj.doneCount == rj.total {
				rj.closeAssignsLocked()
			} else {
				rj.assignLocked()
			}
		}
	}
}

// taskDelivered releases the worker's in-flight slot for a completed
// trajectory and tops the worker back up.
func (rj *remoteJob) taskDelivered(wc *workerConn, traj int) {
	rj.mu.Lock()
	if _, ok := wc.inflight[traj]; ok {
		delete(wc.inflight, traj)
		rj.srv.registry.release(wc.addr)
		rj.job.remoteDone.Add(1)
	}
	rj.assignLocked()
	rj.mu.Unlock()
}

// assignLocked distributes queued trajectories: remote workers first (one
// registry slot per trajectory, skipping workers whose sender is
// backlogged), then the local pool up to localCap. When no remote
// connection survives, the local pool absorbs everything — a job never
// stalls because the cluster shrank. Callers hold rj.mu.
func (rj *remoteJob) assignLocked() {
	if rj.closed || rj.assignsClosed || len(rj.queue) == 0 {
		return
	}
	if rj.job.congested() {
		// Starting more trajectories would only deepen a backlog the
		// analysis cannot drain; the windower kicks us below the low-water
		// mark.
		return
	}
	progress := true
	for progress && len(rj.queue) > 0 {
		progress = false
		for wc := range rj.conns {
			if len(rj.queue) == 0 {
				break
			}
			if !rj.srv.registry.tryAcquire(wc.addr) {
				continue
			}
			traj := rj.queue[0]
			select {
			case wc.assign <- traj:
				rj.queue = rj.queue[1:]
				wc.inflight[traj] = time.Now().UnixNano()
				progress = true
			default:
				// Sender backlogged (slow worker): give the slot back and
				// let another destination take the trajectory.
				rj.srv.registry.release(wc.addr)
			}
		}
	}
	var localBatch []int
	for len(rj.queue) > 0 && (len(rj.conns) == 0 || len(rj.local) < rj.localCap) {
		traj := rj.queue[0]
		rj.queue = rj.queue[1:]
		rj.local[traj] = struct{}{}
		localBatch = append(localBatch, traj)
	}
	if len(localBatch) > 0 {
		rj.submitLocal(localBatch)
	}
}

// submitLocal hands trajectories to the shared local pool in one
// submission (one feeder goroutine however many trajectories fall back at
// once). It runs under rj.mu (from assignLocked), so a submission failure
// must not fail the job inline: fail → setTerminal → stop() re-acquires
// rj.mu, which would self-deadlock. The fail is deferred to its own
// goroutine instead.
func (rj *remoteJob) submitLocal(trajs []int) {
	cfg := rj.cfg
	err := rj.srv.pool.Submit(rj.job, len(trajs), func(i int) (*sim.Task, error) {
		return core.NewTrajectoryTask(cfg, trajs[i])
	})
	if err != nil {
		go rj.job.fail(err)
	}
}

// connDown retires one worker connection: clean EOF after the trailer on
// the graceful path, or a failure — then every trajectory still in flight
// on it is requeued and the worker enters its registry cooldown. The conn
// is removed from rj.conns under the mutex BEFORE its assign channel
// closes: assignLocked only ever sends to members of rj.conns while
// holding rj.mu, so the ordering makes a send on the closed channel
// impossible.
func (rj *remoteJob) connDown(wc *workerConn, err error) {
	wc.conn.Close()
	rj.mu.Lock()
	if _, ok := rj.conns[wc]; !ok {
		rj.mu.Unlock()
		wc.closeAssigns() // already retired elsewhere; still stop the sender
		return
	}
	delete(rj.conns, wc)
	requeue := make([]int, 0, len(wc.inflight))
	for traj := range wc.inflight {
		requeue = append(requeue, traj)
		rj.srv.registry.release(wc.addr)
	}
	wc.inflight = nil
	if err != nil || len(requeue) > 0 {
		rj.srv.registry.markFailed(wc.addr)
	}
	if !rj.closed {
		if len(requeue) > 0 {
			sort.Ints(requeue)
			rj.queue = append(rj.queue, requeue...)
			rj.job.requeued.Add(int64(len(requeue)))
			rj.job.metrics.requeued.Add(uint64(len(requeue)))
			rj.job.trace.Event("requeue", rj.job.origin, "worker "+wc.addr+" lost")
		}
		rj.assignLocked()
	}
	rj.mu.Unlock()
	wc.closeAssigns()
}

// closeAssignsLocked starts the graceful shutdown of every stream once no
// trajectory remains: senders emit end-of-stream, workers answer with
// their trailer and close, readers retire the connections. Callers hold
// rj.mu.
func (rj *remoteJob) closeAssignsLocked() {
	if rj.assignsClosed {
		return
	}
	rj.assignsClosed = true
	for wc := range rj.conns {
		wc.closeAssigns()
	}
}

// kick re-runs assignment — the windower calls it when the ingress drains
// below the low-water mark, resuming trajectory starts deferred by
// congestion.
func (rj *remoteJob) kick() {
	rj.mu.Lock()
	rj.assignLocked()
	rj.mu.Unlock()
}

// stop ends the scheduler on a terminal job. On cancel or failure the
// connections close hard: in-flight work is abandoned (the workers' late
// results have nowhere to go) and nothing is requeued. On normal
// completion the streams already carry end-of-assignments, so the workers
// are left to answer with their trailer and a clean close — their logs
// stay free of torn-connection errors — with a reaper closing stragglers.
func (rj *remoteJob) stop() {
	rj.mu.Lock()
	if rj.closed {
		rj.mu.Unlock()
		return
	}
	rj.closed = true
	rj.queue = nil
	graceful := rj.assignsClosed
	conns := make([]*workerConn, 0, len(rj.conns))
	for wc := range rj.conns {
		conns = append(conns, wc)
	}
	rj.mu.Unlock()
	if !graceful {
		for _, wc := range conns {
			wc.closeAssigns()
			wc.conn.Close()
		}
		return
	}
	if len(conns) == 0 {
		return
	}
	go func() {
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			rj.mu.Lock()
			n := len(rj.conns)
			rj.mu.Unlock()
			if n == 0 {
				return
			}
			time.Sleep(50 * time.Millisecond)
		}
		rj.mu.Lock()
		leftover := make([]*workerConn, 0, len(rj.conns))
		for wc := range rj.conns {
			leftover = append(leftover, wc)
		}
		rj.mu.Unlock()
		for _, wc := range leftover {
			wc.conn.Close()
		}
	}()
}

// watchdog kills connections whose worker holds work but has produced no
// stream activity for the timeout — the reader then unblocks with an
// error and the in-flight trajectories requeue. It also re-kicks
// assignment each tick as a safety net against missed capacity wakeups.
func (rj *remoteJob) watchdog() {
	tick := rj.timeout / 4
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-rj.job.ctx.Done():
			return
		case <-t.C:
		}
		now := time.Now().UnixNano()
		rj.mu.Lock()
		var stale []*workerConn
		for wc := range rj.conns {
			if len(wc.inflight) > 0 && now-wc.lastMsg.Load() > int64(rj.timeout) {
				stale = append(stale, wc)
			}
		}
		rj.assignLocked()
		rj.mu.Unlock()
		for _, wc := range stale {
			wc.conn.Close()
		}
	}
}
