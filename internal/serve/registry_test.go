package serve

import (
	"testing"
	"time"
)

func TestRegistryPrunesStaleDynamicWorkers(t *testing.T) {
	now := time.Unix(0, 0)
	r := newRegistry([]string{"static:1"}, 4, time.Second, time.Second)
	r.now = func() time.Time { return now }

	if err := r.register("dyn:1", 0, 4); err != nil {
		t.Fatal(err)
	}
	if got := len(r.snapshot()); got != 2 {
		t.Fatalf("registry holds %d workers, want 2", got)
	}

	// Far past the stale horizon, the next register evicts the dynamic
	// entry; the static one is configuration and stays.
	now = now.Add(time.Hour)
	if err := r.register("dyn:2", 0, 4); err != nil {
		t.Fatal(err)
	}
	infos := r.snapshot()
	if len(infos) != 2 {
		t.Fatalf("after pruning: %d workers, want 2 (static + fresh dynamic)", len(infos))
	}
	for _, w := range infos {
		if w.Addr == "dyn:1" {
			t.Fatal("stale dynamic worker was not evicted")
		}
	}

	// A stale worker with in-flight work is NOT evicted (its scheduler
	// still holds slot references).
	if !r.tryAcquire("dyn:2") {
		t.Fatal("tryAcquire on a fresh worker failed")
	}
	now = now.Add(time.Hour)
	if err := r.register("dyn:3", 0, 4); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, w := range r.snapshot() {
		if w.Addr == "dyn:2" {
			found = true
			if w.InFlight != 1 {
				t.Fatalf("dyn:2 in-flight = %d, want 1", w.InFlight)
			}
		}
	}
	if !found {
		t.Fatal("worker with in-flight work was evicted")
	}
	r.release("dyn:2")
}

func TestRegistryCapsInFlight(t *testing.T) {
	r := newRegistry([]string{"w:1"}, 2, time.Second, time.Second)
	if !r.tryAcquire("w:1") || !r.tryAcquire("w:1") {
		t.Fatal("could not acquire up to the cap")
	}
	if r.tryAcquire("w:1") {
		t.Fatal("acquired past the cap")
	}
	r.release("w:1")
	if !r.tryAcquire("w:1") {
		t.Fatal("release did not free a slot")
	}
	if r.tryAcquire("unknown:1") {
		t.Fatal("acquired a slot on an unknown worker")
	}
}
