package serve

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestRegistryPrunesStaleDynamicWorkers(t *testing.T) {
	now := time.Unix(0, 0)
	r := newRegistry([]string{"static:1"}, 4, time.Second, time.Second)
	r.now = func() time.Time { return now }

	if err := r.register("dyn:1", 0, 4); err != nil {
		t.Fatal(err)
	}
	if got := len(r.snapshot()); got != 2 {
		t.Fatalf("registry holds %d workers, want 2", got)
	}

	// Far past the stale horizon, the next register evicts the dynamic
	// entry; the static one is configuration and stays.
	now = now.Add(time.Hour)
	if err := r.register("dyn:2", 0, 4); err != nil {
		t.Fatal(err)
	}
	infos := r.snapshot()
	if len(infos) != 2 {
		t.Fatalf("after pruning: %d workers, want 2 (static + fresh dynamic)", len(infos))
	}
	for _, w := range infos {
		if w.Addr == "dyn:1" {
			t.Fatal("stale dynamic worker was not evicted")
		}
	}

	// A stale worker with in-flight work is NOT evicted (its scheduler
	// still holds slot references).
	if !r.tryAcquire("dyn:2") {
		t.Fatal("tryAcquire on a fresh worker failed")
	}
	now = now.Add(time.Hour)
	if err := r.register("dyn:3", 0, 4); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, w := range r.snapshot() {
		if w.Addr == "dyn:2" {
			found = true
			if w.InFlight != 1 {
				t.Fatalf("dyn:2 in-flight = %d, want 1", w.InFlight)
			}
		}
	}
	if !found {
		t.Fatal("worker with in-flight work was evicted")
	}
	r.release("dyn:2")
}

func TestRegistryCapsInFlight(t *testing.T) {
	r := newRegistry([]string{"w:1"}, 2, time.Second, time.Second)
	if !r.tryAcquire("w:1") || !r.tryAcquire("w:1") {
		t.Fatal("could not acquire up to the cap")
	}
	if r.tryAcquire("w:1") {
		t.Fatal("acquired past the cap")
	}
	r.release("w:1")
	if !r.tryAcquire("w:1") {
		t.Fatal("release did not free a slot")
	}
	if r.tryAcquire("unknown:1") {
		t.Fatal("acquired a slot on an unknown worker")
	}
}

// isLive reports whether addr appears in the registry's live set.
func isLive(r *registry, addr string) bool {
	for _, a := range r.live() {
		if a == addr {
			return true
		}
	}
	return false
}

func TestRegistryBackoffDoublesAndCapsAtSixtyFour(t *testing.T) {
	const cooldown = time.Second
	now := time.Unix(1000, 0)
	r := newRegistry([]string{"static:1"}, 4, time.Second, cooldown)
	r.now = func() time.Time { return now }

	// First failure: one plain cooldown (shift of zero).
	r.markFailed("static:1")
	failedAt := now
	now = failedAt.Add(cooldown - time.Nanosecond)
	if isLive(r, "static:1") {
		t.Fatal("worker live before its first cooldown elapsed")
	}
	now = failedAt.Add(cooldown)
	if !isLive(r, "static:1") {
		t.Fatal("worker not live after its first cooldown elapsed")
	}

	// Third consecutive failure after a healthy dial: cooldown << 2.
	r.markHealthy("static:1")
	r.markFailed("static:1")
	r.markFailed("static:1")
	r.markFailed("static:1")
	failedAt = now
	now = failedAt.Add(4*cooldown - time.Nanosecond)
	if isLive(r, "static:1") {
		t.Fatal("worker live before its 4x cooldown elapsed")
	}
	now = failedAt.Add(4 * cooldown)
	if !isLive(r, "static:1") {
		t.Fatal("worker not live after its 4x cooldown elapsed")
	}

	// Pile up far more failures than the shift cap: the backoff must
	// plateau at 64x, not keep doubling (or overflow the shift).
	for i := 0; i < 200; i++ {
		r.markFailed("static:1")
	}
	failedAt = now
	now = failedAt.Add(63 * cooldown)
	if isLive(r, "static:1") {
		t.Fatal("worker live at 63x cooldown despite 200 consecutive failures")
	}
	now = failedAt.Add(64 * cooldown)
	if !isLive(r, "static:1") {
		t.Fatal("backoff exceeded its 64x cap after 200 consecutive failures")
	}

	// A healthy dial clears the ladder entirely.
	r.markFailed("static:1")
	r.markHealthy("static:1")
	if !isLive(r, "static:1") {
		t.Fatal("worker not live immediately after markHealthy")
	}
}

func TestRegistryHeartbeatDoesNotShortenCooldown(t *testing.T) {
	const cooldown = 10 * time.Second
	now := time.Unix(1000, 0)
	r := newRegistry(nil, 4, time.Hour, cooldown)
	r.now = func() time.Time { return now }

	if err := r.register("dyn:1", 0, 4); err != nil {
		t.Fatal(err)
	}
	if !isLive(r, "dyn:1") {
		t.Fatal("freshly registered worker not live")
	}
	r.markFailed("dyn:1")
	failedAt := now

	// Heartbeats keep arriving through the cooldown window: the worker
	// process is up, but nothing proved it dialable, so the cooldown
	// must hold.
	for i := 0; i < 5; i++ {
		now = now.Add(time.Second)
		if err := r.register("dyn:1", 0, 4); err != nil {
			t.Fatal(err)
		}
		if isLive(r, "dyn:1") {
			t.Fatalf("heartbeat %d cleared an active cooldown", i+1)
		}
		if r.tryAcquire("dyn:1") {
			t.Fatalf("tryAcquire succeeded during cooldown after heartbeat %d", i+1)
		}
	}

	// Once the cooldown elapses the (heartbeating) worker is live again.
	now = failedAt.Add(cooldown)
	if !isLive(r, "dyn:1") {
		t.Fatal("worker not live after cooldown elapsed with fresh heartbeats")
	}
}

// TestRegistryPruneVsRegisterRace hammers registration, liveness scans,
// failure marking and slot churn from concurrent goroutines; the -race
// CI step turns any unlocked registry access into a failure.
func TestRegistryPruneVsRegisterRace(t *testing.T) {
	r := newRegistry([]string{"static:1"}, 4, time.Millisecond, time.Millisecond)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			addr := fmt.Sprintf("dyn:%d", g)
			for i := 0; i < 200; i++ {
				_ = r.register(addr, 0, 4)
				_ = r.live()
				if r.tryAcquire(addr) {
					r.release(addr)
				}
				r.markFailed(addr)
				r.markHealthy(addr)
				_ = r.snapshot()
			}
		}(g)
	}
	// A dedicated pruner: registering new addresses runs pruneLocked
	// against the other goroutines' entries as their heartbeats lapse.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			_ = r.register(fmt.Sprintf("churn:%d", i%8), 0, 4)
			time.Sleep(50 * time.Microsecond)
		}
	}()
	wg.Wait()
}
