package serve_test

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"cwcflow/internal/serve"
)

// TestCanonicalSpecDefaults pins the canonical form against the same
// defaulting core.Config.Normalized applies: two submissions the engine
// would run identically must canonicalise identically.
func TestCanonicalSpecDefaults(t *testing.T) {
	spec := serve.JobSpec{
		Model:        "  SIR ",
		Trajectories: 8,
		End:          48,
		Period:       0.125,
		Priority:     7,
		Species:      []int{},
	}
	canon := serve.CanonicalSpec(spec)
	if canon.Model != "sir" {
		t.Fatalf("Model = %q, want trimmed lowercase \"sir\"", canon.Model)
	}
	if canon.Priority != 0 {
		t.Fatalf("Priority = %d, want 0 (admission-only, not part of the result)", canon.Priority)
	}
	if canon.Quantum != spec.Period {
		t.Fatalf("Quantum = %g, want the period %g", canon.Quantum, spec.Period)
	}
	if canon.WindowSize != 16 || canon.WindowStep != 16 {
		t.Fatalf("window = %d/%d, want the 16/16 default", canon.WindowSize, canon.WindowStep)
	}
	if canon.Species != nil {
		t.Fatalf("empty species list not normalised to nil: %v", canon.Species)
	}

	// An oversize step clamps to tumbling, exactly as Normalized does.
	spec.WindowSize, spec.WindowStep = 8, 9
	if c := serve.CanonicalSpec(spec); c.WindowStep != 8 {
		t.Fatalf("step 9 over size 8 canonicalised to %d, want 8", c.WindowStep)
	}
}

// TestSpecDigestEquivalence: specs the engine treats identically share a
// digest, and every field that changes results changes it.
func TestSpecDigestEquivalence(t *testing.T) {
	base := serve.JobSpec{
		Model: "sir", Omega: 100, Trajectories: 8, End: 48,
		Period: 0.125, WindowSize: 8, WindowStep: 8, Seed: 42,
	}
	d := serve.SpecDigest(base)
	if len(d) != 32 {
		t.Fatalf("digest %q, want 32 hex chars", d)
	}

	same := base
	same.Model = " SIR "
	same.Priority = 9
	same.Quantum = base.Period // the default, now explicit
	if got := serve.SpecDigest(same); got != d {
		t.Fatalf("equivalent spec digests differ: %s vs %s", got, d)
	}

	for name, mutate := range map[string]func(*serve.JobSpec){
		"seed":         func(s *serve.JobSpec) { s.Seed = 43 },
		"omega":        func(s *serve.JobSpec) { s.Omega = 200 },
		"trajectories": func(s *serve.JobSpec) { s.Trajectories = 9 },
		"end":          func(s *serve.JobSpec) { s.End = 49 },
		"window":       func(s *serve.JobSpec) { s.WindowSize = 4; s.WindowStep = 4 },
	} {
		changed := base
		mutate(&changed)
		if got := serve.SpecDigest(changed); got == d {
			t.Errorf("changing %s did not change the digest", name)
		}
	}
}

// FuzzSpecCanonical holds the canonicalisation total and stable over
// arbitrary submission JSON: no panic, CanonicalSpec idempotent, and the
// digest independent of JSON field order — the properties the cache's
// correctness (never serving the wrong result) rests on.
func FuzzSpecCanonical(f *testing.F) {
	f.Add(`{"model":"sir","omega":100,"trajectories":8,"end":48,"period":0.125,"window":8,"step":8,"seed":42}`)
	f.Add(`{"seed":42,"step":8,"window":8,"period":0.125,"end":48,"trajectories":8,"omega":100,"model":"sir"}`)
	f.Add(`{"model":" SLOW ","priority":3,"species":[]}`)
	f.Add(`{}`)
	f.Add(`{"model":"x","end":1e308,"period":5e-324}`)
	f.Fuzz(func(t *testing.T, raw string) {
		var spec serve.JobSpec
		if err := json.Unmarshal([]byte(raw), &spec); err != nil {
			t.Skip()
		}
		canon := serve.CanonicalSpec(spec)
		if again := serve.CanonicalSpec(canon); !reflect.DeepEqual(again, canon) {
			t.Fatalf("CanonicalSpec not idempotent:\n once %+v\ntwice %+v", canon, again)
		}
		d := serve.SpecDigest(spec)
		if len(d) != 32 {
			t.Fatalf("digest %q for %+v, want 32 hex chars", d, spec)
		}
		if dc := serve.SpecDigest(canon); dc != d {
			t.Fatalf("canonical form digests differently: %s vs %s", dc, d)
		}

		// Field-order independence, end to end: re-encode the parsed spec
		// with its keys in reverse order and digest the reparse.
		enc, err := json.Marshal(spec)
		if err != nil {
			t.Skip() // NaN/Inf smuggled through fuzzed float bits
		}
		var fields map[string]json.RawMessage
		if err := json.Unmarshal(enc, &fields); err != nil {
			t.Fatalf("re-decoding own encoding: %v", err)
		}
		keys := make([]string, 0, len(fields))
		for k := range fields {
			keys = append(keys, k)
		}
		var buf bytes.Buffer
		buf.WriteByte('{')
		for i := len(keys) - 1; i >= 0; i-- {
			if buf.Len() > 1 {
				buf.WriteByte(',')
			}
			kb, _ := json.Marshal(keys[i])
			buf.Write(kb)
			buf.WriteByte(':')
			buf.Write(fields[keys[i]])
		}
		buf.WriteByte('}')
		var reordered serve.JobSpec
		if err := json.Unmarshal(buf.Bytes(), &reordered); err != nil {
			t.Fatalf("re-decoding reordered encoding %s: %v", buf.Bytes(), err)
		}
		if dr := serve.SpecDigest(reordered); dr != d {
			t.Fatalf("digest depends on JSON field order: %s vs %s for %s", dr, d, buf.Bytes())
		}
	})
}
