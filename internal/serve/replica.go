package serve

// Replicated serve tier: N servers share one -data-dir. Each replica
// appends to its own journal (DataDir/replicas/<id>/journal.wal) and
// drives only the jobs whose lease (DataDir/leases/<job>.lease) it
// holds. Everything here is the glue between the lease protocol
// (internal/lease), the journal (internal/store) and the job registry:
//
//   - renewLoop keeps held leases alive at TTL/3 and fails a job the
//     moment its lease is lost to a thief (the zombie side of fencing —
//     the store fence has already stopped its appends by epoch or
//     expiry, this surfaces the loss as a job outcome).
//   - failoverLoop scans for expired/released foreign leases, steals
//     them at a higher epoch, adopts the previous owner's journaled
//     state into our journal and resumes the job through the ordinary
//     recovery path — deterministic replay + the resume filter make the
//     takeover's window stream bit-identical to an uninterrupted run.
//   - peekJob/handleForeign serve reads for jobs other replicas own by
//     replaying the owner's journal read-only, redirect streams to the
//     owner's advertised URL (307), and transparently proxy cancels.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand/v2"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"cwcflow/internal/lease"
	"cwcflow/internal/store"
)

// scanJitter spreads a nominal scan interval uniformly over [d/2, 3d/2]
// — the same discipline as dff.DialRetry's backoff jitter: N replicas
// started by the same supervisor must not scan the lease directory (or
// fire rebalance requests) in lockstep forever.
func scanJitter(d time.Duration) time.Duration {
	if d <= 0 {
		return d
	}
	return d/2 + time.Duration(rand.Int64N(int64(d)+1))
}

// renewLoop extends every held lease at TTL/3 cadence. A renewal that
// returns ErrLost means another replica stole the job: the local job is
// failed without journaling (its journal entries are already fenced;
// the thief's journal is authoritative from the higher epoch on).
func (s *Server) renewLoop() {
	defer s.replicaWG.Done()
	t := time.NewTicker(s.leases.TTL() / 3)
	defer t.Stop()
	for {
		select {
		case <-s.replicaStop:
			return
		case <-t.C:
		}
		// The renew tick doubles as the peer-directory heartbeat: load
		// changes propagate to the tier within TTL/3 of happening.
		s.announcePeer()
		for _, id := range s.leases.HeldJobs() {
			_, err := s.leases.Renew(id)
			if !errors.Is(err, lease.ErrLost) {
				continue
			}
			thief := "another replica"
			if l, ok, _ := s.leases.Get(id); ok {
				thief = fmt.Sprintf("replica %s at epoch %d", l.Owner, l.Epoch)
			}
			if job, ok := s.Get(id); ok {
				job.noPersist.Store(true)
				job.fail(fmt.Errorf("job lease lost: stolen by %s", thief))
			}
		}
	}
}

// failoverLoop periodically looks for jobs whose lease has expired (the
// owner crashed or partitioned away) or was released mid-run (drain,
// handoff, graceful shutdown) and takes them over. The scan interval is
// jittered so a tier of replicas spreads its directory reads.
func (s *Server) failoverLoop() {
	defer s.replicaWG.Done()
	t := time.NewTimer(scanJitter(s.opts.FailoverScan))
	defer t.Stop()
	for {
		select {
		case <-s.replicaStop:
			return
		case <-t.C:
		}
		t.Reset(scanJitter(s.opts.FailoverScan))
		if s.draining.Load() {
			continue // a draining replica sheds jobs, it never adopts
		}
		ls, err := s.leases.List()
		if err != nil {
			continue
		}
		for _, l := range ls {
			if !s.leases.Stealable(l) {
				continue
			}
			s.takeover(l)
		}
	}
}

// takeover steals one orphaned lease and resumes its job here. The
// sequence is: peek (is there a non-terminal job worth stealing?),
// acquire (the higher-epoch steal; losing the race to another thief is
// fine), re-peek (the freshest frontier now that the fence guarantees
// the old owner appends nothing more), adopt (snapshot the record into
// our journal, fsynced), resume (the ordinary recovery path).
func (s *Server) takeover(l lease.Lease) {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed || s.draining.Load() {
		return
	}
	rec, ok := s.peekRecord(l.Job)
	if !ok || rec.Terminal != "" {
		// Nothing to drive: terminal jobs are served by peeking the
		// owner's journal, and a lease with no journaled record yet
		// cannot be resumed (the submit fsync precedes the client ack,
		// so this is a thief that died between acquire and adopt).
		return
	}
	if _, err := s.leases.AcquireDigest(l.Job, cacheKey(recoveredTenant(rec), specDigestRaw(rec.Spec))); err != nil {
		return // raced another thief, or the owner came back
	}
	s.m.leaseTakeovers.Inc()
	if fresh, ok := s.peekRecord(l.Job); ok {
		rec = fresh
	}
	// A handoff pointer's frontier is authoritative: the old owner
	// fsynced its journal before releasing, so peeking fewer windows
	// means our directory read raced the release — re-read briefly
	// rather than resume behind the durable frontier.
	if h := l.Handoff; h != nil {
		s.m.handoffsIn.Inc()
		for i := 0; i < 40 && rec.WindowCount < h.Windows; i++ {
			time.Sleep(5 * time.Millisecond)
			if fresh, ok := s.peekRecord(l.Job); ok {
				rec = fresh
			}
		}
	}
	if err := s.store.Adopt(rec); err != nil {
		s.leases.Release(l.Job)
		return
	}
	if rec.Terminal != "" {
		// Finished between the first peek and the steal: keep the
		// adopted result (it now survives the old owner's directory) and
		// let the lease go.
		s.restoreTerminal(rec)
		s.leases.Release(l.Job)
		return
	}
	if err := s.resumeJob(rec); err != nil {
		job := failedRecovery(rec, err)
		s.registerRecovered(job)
		_ = s.store.AppendTerminal(job.id, string(StateFailed), job.errMsg, nil)
		s.leases.Release(l.Job)
	}
	// Load changed: tell the tier now instead of waiting for the next
	// renew-tick heartbeat (the rebalancer and submit forwarder read it).
	s.announcePeer()
}

// peekRecord finds the freshest journaled record of a job across every
// replica journal under the shared data dir: any terminal record wins
// (it is final), otherwise the highest durable window frontier. Reading
// a live journal is safe — replay is convergent and stops at a torn
// tail, costing at most the event being written.
func (s *Server) peekRecord(id string) (*store.JobRecord, bool) {
	root := filepath.Join(s.opts.DataDir, "replicas")
	ents, err := os.ReadDir(root)
	if err != nil {
		return nil, false
	}
	var best *store.JobRecord
	for _, e := range ents {
		if !e.IsDir() {
			continue
		}
		recs, err := store.ReadJournal(filepath.Join(root, e.Name()), store.Options{RetainWindows: s.opts.ResultBuffer})
		if err != nil {
			continue
		}
		for _, rec := range recs {
			if rec.ID != id {
				continue
			}
			switch {
			case best == nil:
				best = rec
			case rec.Terminal != "" && best.Terminal == "":
				best = rec
			case rec.Terminal == best.Terminal && rec.WindowCount > best.WindowCount:
				best = rec
			}
		}
	}
	return best, best != nil
}

// foreignLease resolves a job id this replica has no local Job for to
// its lease, when the replicated tier is active.
func (s *Server) foreignLease(id string) (lease.Lease, bool) {
	if s.leases == nil {
		return lease.Lease{}, false
	}
	l, ok, err := s.leases.Get(id)
	if err != nil || !ok {
		return lease.Lease{}, false
	}
	return l, true
}

// foreignStatus synthesizes a Status for a job from its journaled
// record (the read path of a non-owning replica). Terminal records
// carry the owner's final status snapshot verbatim; in-flight ones are
// reduced to the durable facts (state, spec, window frontier).
func foreignStatus(rec *store.JobRecord, l lease.Lease) Status {
	st := Status{
		ID:          rec.ID,
		State:       StateRunning,
		Tenant:      rec.Tenant,
		SubmittedAt: rec.SubmittedAt,
		Owner:       l.Owner,
	}
	if rec.Terminal != "" {
		if len(rec.Status) > 0 && json.Unmarshal(rec.Status, &st) == nil {
			st.Owner = l.Owner
			return st
		}
		st.State = State(rec.Terminal)
		st.Error = rec.Error
	}
	_ = json.Unmarshal(rec.Spec, &st.Spec)
	st.Progress.Windows = rec.WindowCount
	return st
}

// handleForeign answers an HTTP request for a job this replica does not
// drive, using the lease directory: reads (status, result) are served
// from the owner's journal, streams are redirected to the owner's
// advertised URL, and cancels are proxied to it transparently. Returns
// false when the job has no lease either — a genuine 404.
func (s *Server) handleForeign(w http.ResponseWriter, r *http.Request, id, action string) bool {
	l, ok := s.foreignLease(id)
	if !ok {
		return false
	}
	switch action {
	case "status", "result":
		rec, ok := s.peekRecord(id)
		if !ok {
			writeError(w, http.StatusNotFound, "job %q is leased to replica %s but not journaled yet", id, l.Owner)
			return true
		}
		if action == "status" {
			writeJSON(w, http.StatusOK, foreignStatus(rec, l))
			return true
		}
		writeJSON(w, http.StatusOK, resultResponse{
			Status:      foreignStatus(rec, l),
			FirstWindow: rec.FirstRetained,
			Windows:     rec.Windows,
		})
		return true
	case "stream", "trace":
		// Live streams need the owner's subscriber machinery and a trace
		// lives in the owner's memory — peeking a journal can serve
		// neither. 307 preserves the method and
		// lets any client re-issue the request against the owner — but
		// only a live owner: bouncing a client at a dead socket strands
		// it until its own timeout, when a short 503+Retry-After has the
		// failover loop adopt the job before the retry lands.
		if l.URL == "" {
			writeError(w, http.StatusServiceUnavailable, "job %q is owned by replica %s, which advertises no URL", id, l.Owner)
			return true
		}
		if !s.ownerAlive(l) {
			w.Header().Set("Retry-After", s.retryAfter())
			writeError(w, http.StatusServiceUnavailable, "job %q has no live owner (last owner %s); a peer adopts it shortly, retry", id, l.Owner)
			return true
		}
		w.Header().Set("Location", l.URL+r.URL.RequestURI())
		w.WriteHeader(http.StatusTemporaryRedirect)
		return true
	case "cancel":
		if l.URL != "" && !s.ownerAlive(l) {
			w.Header().Set("Retry-After", s.retryAfter())
			writeError(w, http.StatusServiceUnavailable, "job %q has no live owner to cancel through (last owner %s); a peer adopts it shortly, retry", id, l.Owner)
			return true
		}
		s.proxyCancel(w, r, id, l)
		return true
	}
	return false
}

// retryAfter is the Retry-After value for reads that hit an ownerless
// job: one lease TTL bounds how long failover can take to adopt it.
func (s *Server) retryAfter() string {
	secs := int(math.Ceil(s.opts.LeaseTTL.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// ownerAlive reports whether the replica owning lease l is worth
// bouncing a client to: a released lease has no driver at all (adoption
// is imminent), a fresh heartbeat in the peer directory proves liveness
// cheaply, and otherwise an HTTP probe of the owner's healthz decides —
// any answer, even an unhealthy one, means the socket can serve.
func (s *Server) ownerAlive(l lease.Lease) bool {
	if l.Released {
		return false
	}
	if s.peers != nil {
		if infos, err := s.peers.List(s.opts.LeaseTTL); err == nil {
			for _, p := range infos {
				if p.ID == l.Owner {
					return true
				}
			}
		}
	}
	if l.URL == "" {
		return false
	}
	return s.probeOwner(l.URL)
}

// ownerProbe caches one probeOwner verdict briefly.
type ownerProbe struct {
	at    time.Time
	alive bool
}

func (s *Server) probeOwner(url string) bool {
	s.probeMu.Lock()
	if p, ok := s.probes[url]; ok && time.Since(p.at) < time.Second {
		s.probeMu.Unlock()
		return p.alive
	}
	s.probeMu.Unlock()
	alive := false
	if resp, err := probeClient.Get(url + "/healthz"); err == nil {
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		alive = true
	}
	s.probeMu.Lock()
	if s.probes == nil {
		s.probes = make(map[string]ownerProbe)
	}
	s.probes[url] = ownerProbe{at: time.Now(), alive: alive}
	s.probeMu.Unlock()
	return alive
}

// probeClient performs owner-liveness probes: a dead socket must be
// diagnosed quickly, so the timeout is far shorter than proxyClient's.
var probeClient = &http.Client{Timeout: time.Second}

// proxyCancel forwards POST /jobs/{id}/cancel (and DELETE /jobs/{id})
// to the owning replica and relays its response, so a client may cancel
// through any replica without following redirects.
func (s *Server) proxyCancel(w http.ResponseWriter, r *http.Request, id string, l lease.Lease) {
	if l.URL == "" {
		writeError(w, http.StatusServiceUnavailable, "job %q is owned by replica %s, which advertises no URL", id, l.Owner)
		return
	}
	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost, l.URL+"/jobs/"+id+"/cancel", nil)
	if err != nil {
		writeError(w, http.StatusBadGateway, "building proxy request: %v", err)
		return
	}
	resp, err := proxyClient.Do(req)
	if err != nil {
		writeError(w, http.StatusBadGateway, "proxying cancel to replica %s: %v", l.Owner, err)
		return
	}
	defer resp.Body.Close()
	w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

// proxyClient is the replica-to-replica HTTP client: short timeout, no
// redirect following (the target is the final authority).
var proxyClient = &http.Client{Timeout: 10 * time.Second}
