package serve

import (
	"sync"
	"testing"
	"time"

	"cwcflow/internal/core"
	"cwcflow/internal/sim"
)

// countSim is a minimal deterministic simulator: each step advances time
// by dt and increments a counter.
type countSim struct {
	t     float64
	dt    float64
	steps uint64
}

func (s *countSim) Time() float64       { return s.t }
func (s *countSim) Step() bool          { s.t += s.dt; s.steps++; return true }
func (s *countSim) NumSpecies() int     { return 1 }
func (s *countSim) Observe(out []int64) { out[0] = int64(s.steps) }
func (s *countSim) Steps() uint64       { return s.steps }

func countResolver(core.ModelRef) (core.SimulatorFactory, error) {
	return func(int, int64) (sim.Simulator, error) { return &countSim{dt: 0.25}, nil }, nil
}

func TestIngressSpillsOldestPastCapacity(t *testing.T) {
	q := newIngress(2, 4, nil)
	mk := func(idx int) *sim.Batch {
		b := sim.GetBatch()
		b.Append(sim.Sample{Traj: 0, Index: idx, State: []int64{int64(idx)}})
		return b
	}
	for i := 0; i < 4; i++ {
		if spilled := q.push(mk(i)); spilled != 0 {
			t.Fatalf("push %d spilled %d batches", i, spilled)
		}
	}
	if !q.congested() {
		t.Fatal("queue over high-water mark not congested")
	}
	if spilled := q.push(mk(4)); spilled != 1 {
		t.Fatalf("push past capacity spilled %d, want 1", spilled)
	}
	if q.spilledCount() != 1 || q.depth() != 4 {
		t.Fatalf("spilled %d / depth %d, want 1 / 4", q.spilledCount(), q.depth())
	}
	// The oldest batch (index 0) was dropped: pops start at index 1.
	for want := 1; want <= 4; want++ {
		b, done, _ := q.pop()
		if b == nil || done {
			t.Fatalf("pop %d: batch=%v done=%v", want, b, done)
		}
		if got := b.Samples[0].Index; got != want {
			t.Fatalf("pop order: index %d, want %d", got, want)
		}
		b.Release()
	}
	if b, done, _ := q.pop(); b != nil || done {
		t.Fatalf("empty open queue: batch=%v done=%v, want nil/false", b, done)
	}
	q.close()
	if _, done, _ := q.pop(); !done {
		t.Fatal("closed empty queue does not report done")
	}
}

func TestIngressDrainReleasesAndRejects(t *testing.T) {
	q := newIngress(2, 4, nil)
	b := sim.GetBatch()
	b.Append(sim.Sample{Traj: 0, Index: 0, State: []int64{1}})
	q.push(b)
	q.drain()
	if q.depth() != 0 {
		t.Fatalf("drained queue holds %d batches", q.depth())
	}
	q.push(sim.GetBatch()) // released immediately, not queued
	if q.depth() != 0 {
		t.Fatal("drained queue accepted a batch")
	}
}

// TestSlowTenantDoesNotBlockCollector is the isolation acceptance test: a
// tenant whose per-window analysis is deliberately stalled (test seam:
// Options.statHook) must not delay another tenant — the pool collector
// keeps routing, the stalled job's quanta are deferred rather than queued
// without bound, nothing spills, and a fast job submitted mid-stall runs
// to completion promptly. Under the pre-farm design the stalled tenant's
// full sample buffer blocked the shared collector and froze every job.
func TestSlowTenantDoesNotBlockCollector(t *testing.T) {
	var delays sync.Map // job id -> time.Duration
	svc, err := New(Options{
		Workers:      2,
		StatEngines:  2,
		QueueDepth:   4,
		SampleBuffer: 8, // low high-water mark: deferral kicks in quickly
		Resolver:     countResolver,
		statHook: func(jobID string) {
			if d, ok := delays.Load(jobID); ok {
				time.Sleep(d.(time.Duration))
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	slow, err := svc.Submit(JobSpec{
		Model: "count", Trajectories: 2, End: 100, Period: 0.25,
		WindowSize: 4, WindowStep: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	delays.Store(slow.id, 40*time.Millisecond)

	// Wait until the stalled tenant is actually backpressured: its ingress
	// reached the high-water mark and the pool deferred at least one
	// quantum for it.
	deadline := time.Now().Add(10 * time.Second)
	for slow.deferred.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("pool never deferred the stalled tenant's quanta")
		}
		time.Sleep(time.Millisecond)
	}

	start := time.Now()
	fast, err := svc.Submit(JobSpec{
		Model: "count", Trajectories: 2, End: 4, Period: 0.5,
		WindowSize: 4, WindowStep: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-fast.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("fast job starved behind the stalled tenant")
	}
	elapsed := time.Since(start)
	if st := fast.Status(); st.State != StateDone {
		t.Fatalf("fast job ended %s (%s)", st.State, st.Error)
	}
	// Latency bound: the fast job (9 cuts, 3 windows) must complete far
	// faster than the stalled tenant drains (its backlog alone is worth
	// seconds of engine sleep). 5s is generous for CI noise while still
	// proving the fast path never waited on the slow tenant's backlog.
	if elapsed > 5*time.Second {
		t.Fatalf("fast job took %v next to a stalled tenant", elapsed)
	}

	st := slow.Status()
	if st.State.Terminal() {
		t.Fatalf("stalled tenant already %s", st.State)
	}
	if st.Progress.SpilledBatches != 0 {
		t.Fatalf("deferral should prevent spills, got %d", st.Progress.SpilledBatches)
	}
	if st.Progress.DeferredQuanta == 0 {
		t.Fatal("stalled tenant shows no deferred quanta")
	}
	slow.Cancel()
	select {
	case <-slow.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("stalled tenant did not cancel")
	}
}

// TestStatFarmScalesWindowThroughput proves the farm parallelises the
// analysis stage: with a fixed per-window analysis cost (the statHook
// seam — a sleep, so the measurement is independent of the host's core
// count), four engines finish a multi-job workload at least twice as fast
// as one engine. This is the structural form of the ≥2× windows/sec
// acceptance criterion; BenchmarkServeMultiJob measures the same ratio
// with real k-means/period CPU work (visible on multi-core hosts).
func TestStatFarmScalesWindowThroughput(t *testing.T) {
	const (
		jobs   = 4
		perWin = 10 * time.Millisecond
		traj   = 2
	)
	run := func(engines int) time.Duration {
		svc, err := New(Options{
			Workers:     2,
			StatEngines: engines,
			Resolver:    countResolver,
			statHook:    func(string) { time.Sleep(perWin) },
		})
		if err != nil {
			t.Fatal(err)
		}
		defer svc.Close()
		start := time.Now()
		started := make([]*Job, 0, jobs)
		for i := 0; i < jobs; i++ {
			job, err := svc.Submit(JobSpec{
				Model: "count", Trajectories: traj, End: 6, Quantum: 6,
				Period: 0.25, WindowSize: 4, WindowStep: 4,
				// Distinct seeds: identical specs would attach to the
				// first job instead of loading the farm four ways.
				Seed: int64(i + 1),
			})
			if err != nil {
				t.Fatal(err)
			}
			started = append(started, job)
		}
		for _, job := range started {
			select {
			case <-job.Done():
			case <-time.After(30 * time.Second):
				t.Fatal("job did not finish")
			}
			if st := job.Status(); st.State != StateDone {
				t.Fatalf("engines=%d: job ended %s (%s)", engines, st.State, st.Error)
			}
		}
		return time.Since(start)
	}
	t1 := run(1)
	t4 := run(4)
	// 4 jobs × 7 windows × 10ms ≈ 280ms of analysis: serial on one engine,
	// ≥4-way concurrent on four (per-job in-flight cap 2, demand 8).
	if t1 < 2*t4 {
		t.Fatalf("4 engines not ≥2× faster: 1 engine %v, 4 engines %v", t1, t4)
	}
}
