package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"cwcflow/internal/core"
	"cwcflow/internal/sim"
	"cwcflow/internal/store"
)

// recover replays the durable store into the registry at boot: terminal
// jobs reappear with their journaled results and final status, in-flight
// jobs are rebuilt and resumed. Recovery failures (a model that no
// longer resolves, an invalid spec after a version change) land the job
// in StateFailed with the reason, never abort the boot.
func (s *Server) recover() {
	for _, rec := range s.store.Recovered() {
		s.bumpSeq(rec.ID)
		if rec.Terminal != "" {
			s.restoreTerminal(rec)
			continue
		}
		if s.leases != nil {
			// Replicated tier: resume only jobs whose lease we can claim.
			// A live foreign lease means another replica already took the
			// job over while we were down — drop our stale copy (the
			// failover loop will steal it back if that owner dies too).
			if _, err := s.leases.AcquireDigest(rec.ID, cacheKey(recoveredTenant(rec), specDigestRaw(rec.Spec))); err != nil {
				s.store.Forget(rec.ID)
				continue
			}
		}
		if err := s.resumeJob(rec); err != nil {
			// The failure is a real outcome: journal it so the next
			// restart does not retry a job that cannot be rebuilt.
			job := failedRecovery(rec, err)
			s.registerRecovered(job)
			var statusJSON json.RawMessage
			st := job.status(false)
			if b, merr := json.Marshal(&st); merr == nil {
				statusJSON = b
			}
			_ = s.store.AppendTerminal(job.id, string(StateFailed), job.errMsg, statusJSON)
			if s.leases != nil {
				s.leases.Release(job.id)
			}
		}
	}
}

// bumpSeq advances the job-id sequence past a recovered id, so new
// submissions never collide with recovered jobs. Sequence numbers are
// per replica: ids adopted from other replicas carry a different
// replica infix and leave our counter alone.
func (s *Server) bumpSeq(id string) {
	rest := strings.TrimPrefix(id, "job-")
	if rid := s.opts.ReplicaID; rid != "" {
		if !strings.HasPrefix(rest, rid+"-") {
			return
		}
		rest = strings.TrimPrefix(rest, rid+"-")
	}
	if n, err := strconv.Atoi(rest); err == nil && n > s.seq {
		s.seq = n
	}
}

// registerRecovered adds a rebuilt job to the registry (boot only — no
// admission control: recovered jobs were admitted by a previous life).
func (s *Server) registerRecovered(job *Job) {
	s.mu.Lock()
	if _, ok := s.jobs[job.id]; !ok {
		s.jobs[job.id] = job
		s.order = append(s.order, job.id)
	}
	s.mu.Unlock()
}

// terminalJob builds the minimal Job shell for a job that is already
// finished: state, results and the journaled final status, with a
// pre-cancelled context so Done() reports closed.
func terminalJob(rec *store.JobRecord, state State, errMsg string) *Job {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	j := &Job{
		id:        rec.ID,
		tenant:    recoveredTenant(rec),
		ctx:       ctx,
		cancel:    cancel,
		in:        newIngress(1, 2, nil), // inert; status() reads its depth
		state:     state,
		errMsg:    errMsg,
		submitted: rec.SubmittedAt,
		finished:  time.Now(),
		recovered: true,
		results:   append([]core.WindowStat(nil), rec.Windows...),
		firstKept: rec.FirstRetained,
		windows:   rec.WindowCount,
	}
	_ = json.Unmarshal(rec.Spec, &j.spec)
	if j.spec.Model != "" {
		// Re-derive the content address so the cache index (memory-only)
		// can be rebuilt from replay — including from pre-cache journals.
		j.digest = SpecDigest(j.spec)
	}
	return j
}

// recoveredTenant maps a journaled tenant id to the live one: journals
// written before multi-tenancy carry none, which is the default tenant.
func recoveredTenant(rec *store.JobRecord) string {
	if rec.Tenant != "" {
		return rec.Tenant
	}
	return DefaultTenant
}

// restoreTerminal re-registers a finished job from the journal: its
// buffered windows serve GET /jobs/{id}/result, its journaled final
// status serves GET /jobs/{id}.
func (s *Server) restoreTerminal(rec *store.JobRecord) {
	job := terminalJob(rec, State(rec.Terminal), rec.Error)
	if len(rec.Status) > 0 {
		var st Status
		if err := json.Unmarshal(rec.Status, &st); err == nil {
			job.recStatus = &st
		}
	}
	s.registerRecovered(job)
	if s.cache != nil && job.digest != "" && State(rec.Terminal) == StateDone {
		// Rebuild the cache index from replay: a repeat submission of this
		// spec answers from the recovered shell without simulating.
		s.cache.Put(cacheKey(job.tenant, job.digest), job.id)
	}
}

// failedRecovery builds the terminal shell for an in-flight job that
// could not be resumed, preserving whatever windows were journaled.
func failedRecovery(rec *store.JobRecord, err error) *Job {
	return terminalJob(rec, StateFailed, fmt.Sprintf("recovery failed: %v", err))
}

// resumeJob rebuilds an in-flight job from the journal and resumes it on
// the local pool: the published-window frontier defines the resume cut,
// every trajectory restarts from its newest checkpoint at or below that
// cut (or from its seed, deduplicated by the resume filter in
// Job.accept), and the window stream continues the crashed run's
// sequence bit-identically.
func (s *Server) resumeJob(rec *store.JobRecord) error {
	var spec JobSpec
	if err := json.Unmarshal(rec.Spec, &spec); err != nil {
		return fmt.Errorf("decoding journaled spec: %w", err)
	}
	factory, err := s.opts.Resolver(core.ModelRef{Name: spec.Model, Omega: spec.Omega})
	if err != nil {
		return err
	}
	cfg := core.Config{
		Factory:       factory,
		Trajectories:  spec.Trajectories,
		End:           spec.End,
		Quantum:       spec.Quantum,
		Period:        spec.Period,
		SimWorkers:    s.pool.Workers(),
		StatEngines:   1,
		WindowSize:    spec.WindowSize,
		WindowStep:    spec.WindowStep,
		Species:       spec.Species,
		KMeansK:       spec.KMeansK,
		PeriodHalfWin: spec.PeriodHalfWin,
		BaseSeed:      spec.Seed,
	}
	cfg, err = cfg.Normalized()
	if err != nil {
		return err
	}
	species, err := core.ResolveSpecies(cfg)
	if err != nil {
		return err
	}
	cuts := int(math.Floor(cfg.End/cfg.Period)) + 1
	statInflight := (s.stats.Engines() + 1) / 2
	job := newJob(rec.ID, spec, cfg, species, cuts, s.opts, s.pool.Workers(), statInflight)
	job.digest = SpecDigest(spec)
	job.resubmit = s.pool.resubmit
	job.tenant = recoveredTenant(rec)
	job.sampleCost = int64(cfg.Trajectories) * int64(cuts)
	job.onTerminal = s.jobFinished
	job.initPersist(s.store, s.opts.CheckpointSamples)
	job.initResume(rec)
	// Pick each trajectory's resume checkpoint now, before the job's
	// goroutines start journaling fresh checkpoints into the same record
	// (the record is only safe to read while the job is not running).
	resumeCkpts := make(map[int]store.Checkpoint)
	for i := 0; i < cfg.Trajectories; i++ {
		if cp, ok := rec.BestCheckpoint(i, job.resumeCut); ok {
			resumeCkpts[i] = cp
		}
	}
	// Recovered jobs resume on the local pool only: checkpoints are local
	// engine snapshots, and at boot no remote worker is connected yet
	// anyway. New submissions shard across the cluster as usual.
	build := func(i int) (*sim.Task, error) {
		t, err := core.NewTrajectoryTask(cfg, i)
		if err != nil {
			return nil, err
		}
		if cp, ok := resumeCkpts[i]; ok {
			if rerr := t.Restore(cp.Sim); rerr != nil {
				// A stale or incompatible checkpoint is not fatal: fall
				// back to replaying the trajectory from its seed.
				t, err = core.NewTrajectoryTask(cfg, i)
				if err != nil {
					return nil, err
				}
			}
		}
		return t, nil
	}
	job.startFn = func() {
		go job.runWindower(s.stats)
		if err := s.pool.Submit(job, cfg.Trajectories, build); err != nil {
			job.noPersist.Store(true)
			job.fail(err)
		}
	}

	// Recovered jobs re-enter admission so the tenant's concurrency cap
	// holds across restarts: journal order is submission order, so a job
	// that was queued at the crash recovers the same queue position.
	// Budget is charged but never re-checked — the job was admitted by a
	// previous life of this server.
	s.mu.Lock()
	t := s.tenantLocked(job.tenant)
	job.flow = t.flow
	job.tenantQuanta = &t.quanta
	limit := s.maxActive(t)
	runNow := (limit == 0 || t.active < limit) && s.runningLocked() < s.opts.MaxJobs
	if runNow {
		job.admission = admActive
		t.active++
		t.budgetUsed += job.sampleCost
	} else {
		job.mu.Lock()
		job.state = StateQueued
		job.mu.Unlock()
		s.enqueueLocked(t, job)
	}
	if _, ok := s.jobs[job.id]; !ok {
		s.jobs[job.id] = job
		s.order = append(s.order, job.id)
	}
	if s.inflightDigest != nil && job.digest != "" {
		if key := cacheKey(job.tenant, job.digest); s.inflightDigest[key] == nil {
			s.inflightDigest[key] = job
		}
	}
	s.mu.Unlock()
	if runNow {
		job.startFn()
	}
	return nil
}
