package serve_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cwcflow/internal/core"
	"cwcflow/internal/serve"
)

// newCountingServer is newTestServer with a resolver that counts its
// invocations: the resolver runs once per job actually created, so its
// count is the test's proof that a cache hit or attach started nothing.
func newCountingServer(t *testing.T, delay time.Duration, opts serve.Options) (*serve.Server, *httptest.Server, *atomic.Int64) {
	t.Helper()
	var resolves atomic.Int64
	if opts.Workers == 0 {
		opts.Workers = 4
	}
	inner := testResolver(delay)
	opts.Resolver = func(ref core.ModelRef) (core.SimulatorFactory, error) {
		resolves.Add(1)
		return inner(ref)
	}
	svc, err := serve.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return svc, ts, &resolves
}

// waitCacheEntries waits for the cache index to reach n entries: the
// terminal transition signals Done before the server's jobFinished hook
// indexes the result, so a submit-after-wait can race the Put.
func waitCacheEntries(t *testing.T, svc *serve.Server, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for svc.CacheStats().Entries < n {
		if time.Now().After(deadline) {
			t.Fatalf("cache holds %d entries, want %d", svc.CacheStats().Entries, n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestResubmitCompletedSpecHitsCache is the tentpole acceptance pin:
// resubmitting a completed spec answers 201 with cache_hit=true, the same
// job id, a bit-identical spec digest — and zero new work (the resolver
// is never consulted, no job is created).
func TestResubmitCompletedSpecHitsCache(t *testing.T) {
	svc, ts, resolves := newCountingServer(t, 0, serve.Options{})

	st1 := submitJob(t, ts.URL, slowSpec())
	if st1.SpecDigest == "" || st1.CacheHit {
		t.Fatalf("first submit: digest %q cache_hit %v, want a digest and no hit", st1.SpecDigest, st1.CacheHit)
	}
	resp, err := http.Get(ts.URL + "/jobs/" + st1.ID + "/result?wait=true")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitCacheEntries(t, svc, 1)
	after := resolves.Load()

	st2 := submitJob(t, ts.URL, slowSpec())
	if !st2.CacheHit {
		t.Fatal("resubmission of a completed spec did not report cache_hit")
	}
	if st2.ID != st1.ID {
		t.Fatalf("cache hit answered with job %s, want the completed %s", st2.ID, st1.ID)
	}
	if st2.SpecDigest != st1.SpecDigest {
		t.Fatalf("digest drifted across submissions: %s vs %s", st2.SpecDigest, st1.SpecDigest)
	}
	if st2.State != serve.StateDone {
		t.Fatalf("cache hit state %s, want done", st2.State)
	}
	if got := resolves.Load(); got != after {
		t.Fatalf("cache hit resolved a model (%d -> %d resolver calls): it must start nothing", after, got)
	}
	if jobs := svc.List(); len(jobs) != 1 {
		t.Fatalf("registry holds %d jobs, want 1", len(jobs))
	}
	cs := svc.CacheStats()
	if !cs.Enabled || cs.Hits != 1 || cs.Entries != 1 {
		t.Fatalf("CacheStats = %+v, want enabled with 1 hit and 1 entry", cs)
	}

	// The counters are on the wire too.
	var stats serve.CacheStats
	r, err := http.Get(ts.URL + "/cache")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(r.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if stats.Hits != 1 {
		t.Fatalf("GET /cache hits = %d, want 1", stats.Hits)
	}
	var health map[string]any
	r, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(r.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if health["cache_hits"] != float64(1) || health["cache_entries"] != float64(1) {
		t.Fatalf("healthz cache_hits=%v cache_entries=%v, want 1/1", health["cache_hits"], health["cache_entries"])
	}
}

// TestConcurrentSubmitsShareOneSimulation pins the race the in-lock
// re-check closes: two submissions of one spec racing through admission
// yield exactly one job — the loser attaches, and both callers get the
// same job back.
func TestConcurrentSubmitsShareOneSimulation(t *testing.T) {
	svc, _, resolves := newCountingServer(t, 2*time.Millisecond, serve.Options{})

	start := make(chan struct{})
	results := make([]serve.SubmitResult, 2)
	var wg sync.WaitGroup
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			res, err := svc.SubmitOutcome(slowSpec(), "")
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			results[i] = res
		}(i)
	}
	close(start)
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	if results[0].Job != results[1].Job {
		t.Fatalf("racing submissions created distinct jobs %s and %s",
			results[0].Job.Status().ID, results[1].Job.Status().ID)
	}
	attached := 0
	for _, res := range results {
		if res.Attached {
			attached++
		}
	}
	if attached != 1 {
		t.Fatalf("%d of 2 racing submissions attached, want exactly 1", attached)
	}
	if jobs := svc.List(); len(jobs) != 1 {
		t.Fatalf("registry holds %d jobs, want 1", len(jobs))
	}
	if got := resolves.Load(); got != 1 {
		t.Fatalf("resolver ran %d times, want 1 (one simulation)", got)
	}
	if cs := svc.CacheStats(); cs.Attaches != 1 {
		t.Fatalf("CacheStats.Attaches = %d, want 1", cs.Attaches)
	}
	select {
	case <-results[0].Job.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("shared job did not finish")
	}
}

// TestAttachChargesZeroBudget: attaching to a running job holds no slot
// and no sample budget — only genuinely new work is charged.
func TestAttachChargesZeroBudget(t *testing.T) {
	svc, _ := newTestServer(t, 2*time.Millisecond, serve.Options{
		Tenants: map[string]serve.TenantConfig{
			// Exactly one slowSpec job (4 trajectories × 17 cuts = 68).
			"small": {SampleBudget: 68},
		},
	})
	first, err := svc.SubmitOutcome(slowSpec(), "small")
	if err != nil {
		t.Fatal(err)
	}
	attach, err := svc.SubmitOutcome(slowSpec(), "small")
	if err != nil {
		t.Fatalf("attach rejected: %v (attaching must cost nothing)", err)
	}
	if !attach.Attached || attach.Job != first.Job {
		t.Fatalf("second submission did not attach to the running job: %+v", attach)
	}
	if _, err := svc.SubmitOutcome(slowSpecSeed(9), "small"); !errors.Is(err, serve.ErrQuotaExceeded) {
		t.Fatalf("distinct spec over budget: %v, want ErrQuotaExceeded", err)
	}
	first.Job.Cancel()
}

// TestAttachSlowSubscriberDoesNotStallOwner: a submission that attaches
// shares the owner's stream, and a stalled attached reader is bounded by
// the per-subscriber mailbox — the job and the healthy reader both finish
// with the full ordered window sequence.
func TestAttachSlowSubscriberDoesNotStallOwner(t *testing.T) {
	_, ts := newTestServer(t, 5*time.Millisecond, serve.Options{SubscriberBuffer: 1})

	st1 := submitJob(t, ts.URL, slowSpec())
	st2 := submitJob(t, ts.URL, slowSpec())
	if !st2.CacheHit || st2.ID != st1.ID {
		t.Fatalf("second submission did not attach: id %s cache_hit %v", st2.ID, st2.CacheHit)
	}

	// The stalled subscriber opens the stream and never reads: its
	// mailbox (capacity 1) fills, later windows are dropped for it, and
	// nothing blocks the windower.
	stalled, err := http.Get(ts.URL + "/jobs/" + st1.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer stalled.Body.Close()

	sc, closeStream := openStream(t, ts.URL, st1.ID)
	defer closeStream()
	got := 0
	for {
		ev := nextDataEvent(t, sc)
		if ev.Type == "end" {
			if ev.Status == nil || ev.Status.State != serve.StateDone {
				t.Fatalf("end event status: %+v", ev.Status)
			}
			break
		}
		if ev.Type != "window" {
			continue
		}
		checkWindow(t, got, ev.Window)
		got++
	}
	if got != slowSpecWindows {
		t.Fatalf("healthy subscriber saw %d windows, want %d", got, slowSpecWindows)
	}
}

// TestCacheIndexSurvivesRestart: the index is memory-only but rebuilt
// from journal replay, so a resubmission after a restart still hits —
// same id, same digest, zero simulation.
func TestCacheIndexSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	svc, base := newDurableServer(t, dir, serve.Options{})
	st := submitJob(t, base, sirSpec())
	refSt, refDigest := runStatusAndDigest(t, base, st.ID)
	if refSt.State != serve.StateDone {
		t.Fatalf("job ended %s (%s)", refSt.State, refSt.Error)
	}
	waitCacheEntries(t, svc, 1)
	svc.Close()

	svc2, base2 := newDurableServer(t, dir, serve.Options{})
	if svc2.CacheStats().Entries != 1 {
		t.Fatalf("replay rebuilt %d cache entries, want 1", svc2.CacheStats().Entries)
	}
	st2 := submitJob(t, base2, sirSpec())
	if !st2.CacheHit || st2.ID != st.ID {
		t.Fatalf("post-restart resubmit: id %s cache_hit %v, want hit on %s", st2.ID, st2.CacheHit, st.ID)
	}
	_, digest := runStatusAndDigest(t, base2, st2.ID)
	if digest != refDigest {
		t.Fatalf("cached results diverged across restart:\n  before %s\n  after  %s", refDigest, digest)
	}
}

// TestNoCacheDisablesDedup: -no-cache restores PR8 semantics — every
// submission is its own job, and GET /cache reports the cache off.
func TestNoCacheDisablesDedup(t *testing.T) {
	svc, ts := newTestServer(t, 0, serve.Options{NoCache: true})
	st1 := submitJob(t, ts.URL, slowSpec())
	st2 := submitJob(t, ts.URL, slowSpec())
	if st1.ID == st2.ID || st1.CacheHit || st2.CacheHit {
		t.Fatalf("cache disabled but submissions were deduplicated: %s/%s", st1.ID, st2.ID)
	}
	if cs := svc.CacheStats(); cs.Enabled || cs.Entries != 0 {
		t.Fatalf("CacheStats = %+v, want disabled and empty", cs)
	}
}

// TestCacheEvictionAtServeLevel: the index is LRU-bounded by
// CacheMaxEntries; an evicted spec simply runs again (a miss, never an
// error) and the eviction is counted.
func TestCacheEvictionAtServeLevel(t *testing.T) {
	svc, ts := newTestServer(t, 0, serve.Options{CacheMaxEntries: 1})
	run := func(spec serve.JobSpec) serve.Status {
		st := submitJob(t, ts.URL, spec)
		resp, err := http.Get(ts.URL + "/jobs/" + st.ID + "/result?wait=true")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return st
	}
	first := run(slowSpecSeed(1))
	waitCacheEntries(t, svc, 1)
	run(slowSpecSeed(2)) // evicts seed 1 (capacity 1)

	deadline := time.Now().Add(5 * time.Second)
	for svc.CacheStats().Evictions < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("no eviction recorded: %+v", svc.CacheStats())
		}
		time.Sleep(time.Millisecond)
	}
	st := submitJob(t, ts.URL, slowSpecSeed(1))
	if st.CacheHit || st.ID == first.ID {
		t.Fatalf("evicted spec still hit: id %s cache_hit %v", st.ID, st.CacheHit)
	}
}

// TestCrossReplicaAttachRedirect: a submission whose spec is in flight on
// a live peer is redirected there (307) and attaches on the owner — the
// tier runs one simulation however many replicas are asked.
func TestCrossReplicaAttachRedirect(t *testing.T) {
	dir := t.TempDir()
	_, aURL := newReplicaServer(t, dir, "a", serve.Options{
		Resolver:      snapWalkResolver(2 * time.Millisecond),
		LeaseTTL:      10 * time.Second,
		FailoverScan:  time.Hour,
		RebalanceScan: -1,
	})
	st := submitJob(t, aURL, longWalkSpec(24))

	_, bURL := newReplicaServer(t, dir, "b", serve.Options{
		Resolver:      snapWalkResolver(0),
		LeaseTTL:      10 * time.Second,
		FailoverScan:  time.Hour,
		RebalanceScan: -1,
	})

	body, _ := json.Marshal(longWalkSpec(24))
	noFollow := &http.Client{
		CheckRedirect: func(*http.Request, []*http.Request) error { return http.ErrUseLastResponse },
	}
	resp, err := noFollow.Post(bURL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("peer submit: status %d, want 307 to the owner", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc != aURL+"/jobs" {
		t.Fatalf("redirect to %q, want %q", loc, aURL+"/jobs")
	}

	// The default client follows the 307 (re-POSTing the body) and lands
	// the attach on A: same job id, no second simulation.
	st2 := submitJob(t, bURL, longWalkSpec(24))
	if st2.ID != st.ID || !st2.CacheHit {
		t.Fatalf("followed redirect: id %s cache_hit %v, want attach on %s", st2.ID, st2.CacheHit, st.ID)
	}
}
