package serve

// Voluntary ownership transfer for the replicated serve tier. Failover
// (replica.go) handles owners that die; everything here handles owners
// that leave on purpose:
//
//   - Drain (SIGTERM, POST /drain) stops admission, checkpoints every
//     owned job at its current frontier, fsyncs the journal, releases
//     each lease with a handoff pointer and nudges the least-loaded
//     live peers to adopt immediately — membership changes cost one
//     adoption, never a TTL wait.
//   - rebalanceLoop is the anti-entropy half: an underloaded replica
//     asks the most loaded live peer to hand over one specific job
//     (POST /leases/{job}/handoff); the owner checkpoints at the next
//     quantum boundary and releases with a pointer reserved for the
//     requester, which adopts at epoch+1. Hysteresis (RebalanceMargin,
//     one job per jittered tick) makes the tier converge instead of
//     thrash.
//   - forwardTarget backs load-aware admission: a draining or saturated
//     replica 307-redirects POST /jobs to the least-loaded live peer.
//
// The peer directory (internal/lease.PeerDirectory) is the advisory
// load view all three consult; ownership is still arbitrated only by
// the lease files, so a stale heartbeat can misdirect a request but
// never lose or double-own a job.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"

	"cwcflow/internal/chaos"
	"cwcflow/internal/lease"
)

// DrainedJob is one job Drain handed off: its durable window frontier
// at release and the peer nudged to adopt it (empty when no live peer
// was available — the next failover scan picks the job up instead).
type DrainedJob struct {
	Job     string `json:"job"`
	Windows int    `json:"windows"`
	Peer    string `json:"peer,omitempty"`
}

// DrainReport is the POST /drain response body.
type DrainReport struct {
	Draining bool         `json:"draining"`
	Jobs     []DrainedJob `json:"jobs,omitempty"`
}

// Drain makes this replica give up its work voluntarily: admission
// stops (further submissions are redirected to peers), every owned
// running job is checkpointed at its current frontier and stopped
// without a journaled outcome, the journal is fsynced, and each lease
// is released with a handoff pointer so a peer adopts immediately
// instead of waiting out the TTL. Reads keep working throughout.
// Idempotent and safe to call concurrently; Close drains first, and
// POST /drain drains without exiting.
func (s *Server) Drain() DrainReport {
	s.draining.Store(true)
	rep := DrainReport{Draining: true}
	if s.leases == nil {
		return rep
	}
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	s.announcePeer() // the tier stops routing submissions here
	// A submission that passed admission just before the flag flipped
	// can still acquire a lease after the first pass, so sweep until a
	// pass finds nothing held (bounded: admission is closed, so the
	// population only shrinks).
	for pass := 0; pass < 3; pass++ {
		held := s.leases.HeldJobs()
		if len(held) == 0 {
			break
		}
		sort.Strings(held)
		var stopping []*Job
		for _, id := range held {
			if job, ok := s.Get(id); ok && !job.State().Terminal() {
				stopping = append(stopping, job)
			}
		}
		s.stopForHandoff(stopping, "replica draining: job handed off")
		for _, id := range held {
			win := 0
			if job, ok := s.Get(id); ok {
				win = job.durableWindows()
			}
			s.leases.ReleaseHandoff(id, lease.Handoff{Windows: win})
			s.m.handoffsOut.Inc()
			s.deregister(id)
			rep.Jobs = append(rep.Jobs, DrainedJob{Job: id, Windows: win})
		}
	}
	s.nudgePeers(rep.Jobs)
	return rep
}

// stopForHandoff checkpoints and stops locally driven jobs without
// journaling a terminal state (a handoff is not a job outcome — the
// adopter resumes them as running). The drain grace gives every
// in-flight quantum one boundary to checkpoint at; the fsync afterwards
// makes the whole frontier durable before any lease advertises it.
func (s *Server) stopForHandoff(jobs []*Job, reason string) {
	if len(jobs) == 0 {
		return
	}
	for _, j := range jobs {
		j.drainCkpt.Store(true)
	}
	if s.opts.DrainGrace > 0 {
		time.Sleep(s.opts.DrainGrace)
	}
	for _, j := range jobs {
		j.noPersist.Store(true)
		j.setTerminal(StateFailed, reason)
	}
	if s.store != nil {
		_ = s.store.Sync()
	}
}

// deregister removes a handed-off job's local shell from the registry —
// WITHOUT store.Forget: until a peer adopts, this replica's journal is
// the only copy of the job's history, and reads for the job must fall
// through to the foreign (journal-peek) path, not hit a shell that says
// "failed".
func (s *Server) deregister(id string) {
	s.mu.Lock()
	delete(s.jobs, id)
	for i, oid := range s.order {
		if oid == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	s.mu.Unlock()
}

// handoffJob is the owner's half of one rebalance transfer: checkpoint
// the job at the next quantum boundary, stop it without a journaled
// outcome, fsync, and release its lease with a pointer reserved for the
// requester (empty to = any peer). Refuses jobs this replica does not
// hold or that are already terminal.
func (s *Server) handoffJob(id, to string) (lease.Handoff, error) {
	if _, held := s.leases.Held(id); !held {
		return lease.Handoff{}, fmt.Errorf("job %q is not held by replica %s", id, s.opts.ReplicaID)
	}
	job, ok := s.Get(id)
	if !ok {
		return lease.Handoff{}, fmt.Errorf("job %q has no local shell on replica %s", id, s.opts.ReplicaID)
	}
	if job.State().Terminal() {
		return lease.Handoff{}, fmt.Errorf("job %q is already terminal", id)
	}
	target := to
	if target == "" {
		target = "any peer"
	}
	s.stopForHandoff([]*Job{job}, fmt.Sprintf("job handed off to %s", target))
	h := lease.Handoff{To: to, Windows: job.durableWindows()}
	s.leases.ReleaseHandoff(id, h)
	s.m.handoffsOut.Inc()
	s.deregister(id)
	s.announcePeer()
	return h, nil
}

// announcePeer publishes this replica's heartbeat (owned-job count,
// draining flag) to the shared peer directory. Best effort: the
// directory is advisory, so a failed write only delays the tier's view.
func (s *Server) announcePeer() {
	if s.peers == nil {
		return
	}
	_ = s.peers.Announce(lease.PeerInfo{
		URL:      s.opts.AdvertiseURL,
		Jobs:     len(s.leases.HeldJobs()),
		Draining: s.draining.Load(),
	})
}

// livePeers returns the fresh, non-draining peers (excluding this
// replica) that advertise a URL — the candidates for submit forwarding,
// adopt nudges and rebalance requests. Freshness is one lease TTL,
// about three missed renew-tick heartbeats.
func (s *Server) livePeers() []lease.PeerInfo {
	if s.peers == nil {
		return nil
	}
	infos, err := s.peers.List(s.opts.LeaseTTL)
	if err != nil {
		return nil
	}
	out := infos[:0]
	for _, p := range infos {
		if p.ID == s.opts.ReplicaID || p.Draining || p.URL == "" {
			continue
		}
		out = append(out, p)
	}
	return out
}

// forwardTarget picks the least-loaded live peer owning fewer than
// lessThan jobs to redirect a submission to; empty means no candidate
// and the caller falls back to its plain 429/503 answer. A saturated
// replica passes its own load so the redirect strictly improves —
// mutually saturated replicas cannot bounce a client in a cycle; a
// draining replica passes MaxInt (it cannot take the job at all).
func (s *Server) forwardTarget(lessThan int) string {
	var best *lease.PeerInfo
	peers := s.livePeers()
	for i := range peers {
		if peers[i].Jobs >= lessThan {
			continue
		}
		if best == nil || peers[i].Jobs < best.Jobs {
			best = &peers[i]
		}
	}
	if best == nil {
		return ""
	}
	return best.URL
}

// nudgePeers asks live peers to adopt the just-released jobs right now
// (POST /leases/{job}/adopt), spreading them across the tier least
// loaded first, so handoff latency is one HTTP round-trip rather than
// the peers' scan cadence. Best effort — without a nudge the released
// leases are still picked up by the next failover scan.
func (s *Server) nudgePeers(jobs []DrainedJob) {
	if len(jobs) == 0 {
		return
	}
	peers := s.livePeers()
	if len(peers) == 0 {
		return
	}
	for i := range jobs {
		// Least-loaded first, counting the jobs this nudge pass already
		// assigned, so a batch of handoffs spreads instead of piling
		// onto one peer.
		best := 0
		for p := range peers {
			if peers[p].Jobs < peers[best].Jobs {
				best = p
			}
		}
		resp, err := proxyClient.Post(peers[best].URL+"/leases/"+jobs[i].Job+"/adopt", "application/json", nil)
		if err != nil {
			continue
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusAccepted {
			jobs[i].Peer = peers[best].ID
			peers[best].Jobs++
		}
	}
}

// rebalanceLoop is the tier's anti-entropy load balancer: at a low,
// jittered cadence, a replica that owns RebalanceMargin fewer jobs than
// the most loaded live peer asks that peer to hand one job over, then
// adopts it at epoch+1. One job per tick plus the margin is the
// hysteresis that makes the tier converge monotonically instead of
// oscillating jobs between replicas.
func (s *Server) rebalanceLoop() {
	defer s.replicaWG.Done()
	t := time.NewTimer(scanJitter(s.opts.RebalanceScan))
	defer t.Stop()
	for {
		select {
		case <-s.replicaStop:
			return
		case <-t.C:
		}
		t.Reset(scanJitter(s.opts.RebalanceScan))
		if s.draining.Load() {
			continue
		}
		s.rebalanceOnce()
	}
}

// rebalanceOnce makes at most one handoff request and adopts its job.
func (s *Server) rebalanceOnce() {
	mine := len(s.leases.HeldJobs())
	var busiest *lease.PeerInfo
	peers := s.livePeers()
	for i := range peers {
		if busiest == nil || peers[i].Jobs > busiest.Jobs {
			busiest = &peers[i]
		}
	}
	if busiest == nil || busiest.Jobs-mine < s.opts.RebalanceMargin {
		return
	}
	// Pick one job the busiest peer actually still owns from the lease
	// directory (its heartbeat count may be a beat stale).
	ls, err := s.leases.List()
	if err != nil {
		return
	}
	job := ""
	for _, l := range ls {
		if l.Owner == busiest.ID && !l.Released {
			job = l.Job
			break
		}
	}
	if job == "" {
		return
	}
	body, _ := json.Marshal(handoffRequest{To: s.opts.ReplicaID})
	resp, err := proxyClient.Post(busiest.URL+"/leases/"+job+"/handoff", "application/json", bytes.NewReader(body))
	if err != nil {
		return
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return // dropped or refused; a later tick retries if still worth it
	}
	// The owner has released the lease with a pointer reserved for us.
	if s.opts.Chaos.Fire(chaos.HandoffCrash) {
		// Fault point: this requester "dies" between the owner's release
		// and its own adoption. The targeted reservation parks the lease
		// for one TTL, then ordinary failover adopts the job — it is
		// never lost and never double-owned.
		return
	}
	if l, ok, err := s.leases.Get(job); err == nil && ok && s.leases.Stealable(l) {
		s.takeover(l)
	}
}

// handleDrain is POST /drain: stop admission and hand every owned job
// off to the peers, without exiting — the admin half of a rolling
// restart (SIGTERM takes the same path and then exits).
func (s *Server) handleDrain(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Drain())
}

// handoffRequest is the body of POST /leases/{id}/handoff.
type handoffRequest struct {
	// To is the requesting replica's id; the released lease is reserved
	// for it for one TTL. Empty releases for any peer.
	To string `json:"to"`
}

// handleLeaseHandoff is the owner side of POST /leases/{id}/handoff.
func (s *Server) handleLeaseHandoff(w http.ResponseWriter, r *http.Request) {
	if s.leases == nil {
		writeError(w, http.StatusNotFound, "not a replica: no lease directory")
		return
	}
	id := r.PathValue("id")
	var req handoffRequest
	_ = json.NewDecoder(r.Body).Decode(&req) // empty body = untargeted
	if s.opts.Chaos.Fire(chaos.HandoffDrop) {
		// Fault point: the request is dropped on the floor before any
		// state changes — the owner keeps driving the job and the
		// requester retries on a later rebalance tick.
		writeError(w, http.StatusServiceUnavailable, "handoff request for %q dropped (chaos)", id)
		return
	}
	h, err := s.handoffJob(id, req.To)
	if err != nil {
		writeError(w, http.StatusConflict, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, h)
}

// handleLeaseAdopt is POST /leases/{id}/adopt — a draining peer's nudge
// to take a released lease over right now instead of on the next
// failover scan. 202 means the takeover was started; losing the
// acquire race to another replica is success from the tier's point of
// view, so the nudge is always best effort.
func (s *Server) handleLeaseAdopt(w http.ResponseWriter, r *http.Request) {
	if s.leases == nil {
		writeError(w, http.StatusNotFound, "not a replica: no lease directory")
		return
	}
	id := r.PathValue("id")
	if s.draining.Load() {
		writeError(w, http.StatusConflict, "replica %s is draining and adopts nothing", s.opts.ReplicaID)
		return
	}
	l, ok, err := s.leases.Get(id)
	if err != nil || !ok {
		writeError(w, http.StatusNotFound, "no lease for job %q", id)
		return
	}
	if !s.leases.Stealable(l) {
		writeError(w, http.StatusConflict, "lease for %q is live under replica %s", id, l.Owner)
		return
	}
	// Adopt in the background: the drainer must not block behind our
	// journal adoption and resume.
	go s.takeover(l)
	writeJSON(w, http.StatusAccepted, map[string]any{"adopting": id})
}

// handlePeers is GET /peers: the fresh peer-directory heartbeats — the
// advisory view the rebalancer and submit forwarder act on.
func (s *Server) handlePeers(w http.ResponseWriter, r *http.Request) {
	if s.peers == nil {
		writeError(w, http.StatusNotFound, "not a replica: no peer directory")
		return
	}
	infos, err := s.peers.List(s.opts.LeaseTTL)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "reading peer directory: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, infos)
}
