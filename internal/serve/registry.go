package serve

import (
	"fmt"
	"sync"
	"time"
)

// WorkerInfo is the wire format of one registered sim worker — the
// /workers listing and the healthz summary.
type WorkerInfo struct {
	Addr string `json:"addr"`
	// Cap is the worker's in-flight trajectory cap across all jobs.
	Cap int `json:"cap"`
	// Static workers come from the -workers flag and never expire; dynamic
	// ones arrive via POST /workers/register and must heartbeat within TTL.
	Static   bool       `json:"static"`
	Alive    bool       `json:"alive"`
	InFlight int        `json:"in_flight"`
	Failures int64      `json:"failures"`
	LastSeen *time.Time `json:"last_seen,omitempty"`
}

// regWorker is the registry's record of one sim worker.
type regWorker struct {
	addr        string
	cap         int
	static      bool
	lastSeen    time.Time // dynamic: last heartbeat
	lastFail    time.Time // start of the post-failure cooldown
	inFlight    int       // trajectories currently assigned, across all jobs
	failures    int64
	consecFails int // consecutive failures since the last healthy dial
}

// registry tracks the service's remote sim workers: the static -workers
// list plus dynamically registered ones (POST /workers/register, which
// doubles as the heartbeat). It owns the per-worker in-flight caps: a
// scheduler acquires one slot per assigned trajectory and releases it on
// completion or requeue, so a worker shared by many jobs is never
// oversubscribed past its cap.
type registry struct {
	mu       sync.Mutex
	ttl      time.Duration // dynamic-worker heartbeat window
	cooldown time.Duration // how long a failed worker sits out
	workers  map[string]*regWorker
	order    []string
	now      func() time.Time // test seam
}

func newRegistry(static []string, defaultCap int, ttl, cooldown time.Duration) *registry {
	r := &registry{
		ttl:      ttl,
		cooldown: cooldown,
		workers:  make(map[string]*regWorker),
		now:      time.Now,
	}
	for _, addr := range static {
		if addr == "" {
			continue
		}
		if _, ok := r.workers[addr]; ok {
			continue
		}
		r.workers[addr] = &regWorker{addr: addr, cap: defaultCap, static: true}
		r.order = append(r.order, addr)
	}
	return r
}

// maxRegistryWorkers bounds the registry against an unauthenticated
// caller looping unique addresses through /workers/register.
const maxRegistryWorkers = 1024

// register adds or refreshes a dynamic worker — the heartbeat. cap <= 0
// keeps the previous (or default) cap. A heartbeat proves the worker
// process is up, not that it is dialable, so it does not shorten an
// active failure cooldown: a restarted worker that was cooling down
// resumes receiving trajectories when the (backed-off) cooldown elapses
// or its next successful dial clears it.
func (r *registry) register(addr string, cap, defaultCap int) error {
	if addr == "" {
		return fmt.Errorf("serve: register needs a worker address")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.pruneLocked(r.now())
	w, ok := r.workers[addr]
	if !ok {
		if len(r.workers) >= maxRegistryWorkers {
			return fmt.Errorf("serve: worker registry is full (%d workers)", len(r.workers))
		}
		w = &regWorker{addr: addr, cap: defaultCap}
		r.workers[addr] = w
		r.order = append(r.order, addr)
	}
	if cap > 0 {
		w.cap = cap
	}
	w.lastSeen = r.now()
	// Deliberately NOT clearing the failure cooldown: a worker behind a
	// NAT can heartbeat forever while being undialable, and wiping the
	// cooldown on every beat would make every job submission pay the dial
	// timeout for it. Only a successful dial (markHealthy) or the cooldown
	// elapsing restores eligibility.
	return nil
}

// pruneLocked evicts dynamic workers whose heartbeat lapsed many TTLs ago
// and that hold no in-flight work — long-gone cluster members (or junk
// registrations) stop costing memory and dial attempts. Static workers
// are configuration and never evicted. Callers hold r.mu.
func (r *registry) pruneLocked(t time.Time) {
	const staleTTLs = 10
	kept := r.order[:0]
	for _, addr := range r.order {
		w := r.workers[addr]
		if !w.static && w.inFlight == 0 && t.Sub(w.lastSeen) > staleTTLs*r.ttl {
			delete(r.workers, addr)
			continue
		}
		kept = append(kept, addr)
	}
	r.order = kept
}

// aliveLocked reports liveness at t: static workers are alive unless
// cooling down after a failure; dynamic workers additionally need a fresh
// heartbeat. The cooldown doubles per consecutive failure (capped at
// 64×), so a worker that keeps failing dials costs a submission attempt
// at a geometrically decreasing rate instead of once per cooldown
// forever.
func (r *registry) aliveLocked(w *regWorker, t time.Time) bool {
	if !w.lastFail.IsZero() {
		backoff := r.cooldown << min(max(w.consecFails-1, 0), 6)
		if t.Sub(w.lastFail) < backoff {
			return false
		}
	}
	if w.static {
		return true
	}
	return t.Sub(w.lastSeen) <= r.ttl
}

// live returns the addresses of the currently-live workers in
// registration order.
func (r *registry) live() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	t := r.now()
	out := make([]string, 0, len(r.order))
	for _, addr := range r.order {
		if r.aliveLocked(r.workers[addr], t) {
			out = append(out, addr)
		}
	}
	return out
}

// tryAcquire claims one in-flight slot on addr, reporting false when the
// worker is unknown, not live, or at its cap.
func (r *registry) tryAcquire(addr string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	w, ok := r.workers[addr]
	if !ok || !r.aliveLocked(w, r.now()) || w.inFlight >= w.cap {
		return false
	}
	w.inFlight++
	return true
}

// release frees one in-flight slot on addr.
func (r *registry) release(addr string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if w, ok := r.workers[addr]; ok && w.inFlight > 0 {
		w.inFlight--
	}
}

// markFailed records a dial or stream failure: the worker sits out the
// (consecutive-failure-scaled) cooldown.
func (r *registry) markFailed(addr string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if w, ok := r.workers[addr]; ok {
		w.lastFail = r.now()
		w.failures++
		w.consecFails++
	}
}

// markHealthy records a successful dial, resetting the failure backoff.
func (r *registry) markHealthy(addr string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if w, ok := r.workers[addr]; ok {
		w.consecFails = 0
		w.lastFail = time.Time{}
	}
}

// snapshot lists every known worker for the HTTP surface.
func (r *registry) snapshot() []WorkerInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	t := r.now()
	out := make([]WorkerInfo, 0, len(r.order))
	for _, addr := range r.order {
		w := r.workers[addr]
		info := WorkerInfo{
			Addr:     w.addr,
			Cap:      w.cap,
			Static:   w.static,
			Alive:    r.aliveLocked(w, t),
			InFlight: w.inFlight,
			Failures: w.failures,
		}
		if !w.lastSeen.IsZero() {
			ls := w.lastSeen
			info.LastSeen = &ls
		}
		out = append(out, info)
	}
	return out
}
