package serve_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"cwcflow/internal/core"
	"cwcflow/internal/serve"
	"cwcflow/internal/sim"
	"cwcflow/internal/window"
)

// slowSim is a deterministic synthetic simulator: every step sleeps for a
// configurable delay and advances time by dt, incrementing a counter. The
// observable at sample instant k·period is therefore exactly the number of
// steps whose time is <= k·period, identical across trajectories — which
// makes the streamed statistics checkable to the digit while the sleep
// keeps jobs running long enough to observe them mid-flight.
type slowSim struct {
	t     float64
	dt    float64
	delay time.Duration
	steps uint64
}

func (s *slowSim) Time() float64 { return s.t }
func (s *slowSim) Step() bool {
	if s.delay > 0 {
		time.Sleep(s.delay)
	}
	s.t += s.dt
	s.steps++
	return true
}
func (s *slowSim) NumSpecies() int     { return 1 }
func (s *slowSim) Observe(out []int64) { out[0] = int64(s.steps) }
func (s *slowSim) Steps() uint64       { return s.steps }

// testResolver serves the synthetic "slow" model and falls back to the
// built-in models for everything else.
func testResolver(delay time.Duration) func(core.ModelRef) (core.SimulatorFactory, error) {
	return func(ref core.ModelRef) (core.SimulatorFactory, error) {
		if ref.Name == "slow" {
			return func(int, int64) (sim.Simulator, error) {
				return &slowSim{dt: 0.25, delay: delay}, nil
			}, nil
		}
		return core.FactoryFor(ref)
	}
}

// slowSpec is the job the tests submit: 4 trajectories, 17 cuts
// (floor(8/0.5)+1), 5 windows of size 4 (4 full + 1 trailing cut).
func slowSpec() serve.JobSpec {
	return serve.JobSpec{
		Model:        "slow",
		Trajectories: 4,
		End:          8,
		Period:       0.5,
		WindowSize:   4,
		WindowStep:   4,
	}
}

// slowSpecSeed is slowSpec with a distinguishing seed: tests that need N
// independent jobs must vary the spec, or submissions past the first
// would be answered by the content-addressed cache (attach or hit)
// instead of exercising admission, eviction or scheduling.
func slowSpecSeed(seed int64) serve.JobSpec {
	spec := slowSpec()
	spec.Seed = seed
	return spec
}

const slowSpecWindows = 5

func newTestServer(t *testing.T, delay time.Duration, opts serve.Options) (*serve.Server, *httptest.Server) {
	t.Helper()
	if opts.Workers == 0 {
		opts.Workers = 4
	}
	opts.Resolver = testResolver(delay)
	svc, err := serve.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return svc, ts
}

func submitJob(t *testing.T, base string, spec serve.JobSpec) serve.Status {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /jobs: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		b := new(bytes.Buffer)
		b.ReadFrom(resp.Body)
		t.Fatalf("POST /jobs: status %d: %s", resp.StatusCode, b)
	}
	var st serve.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decoding submit response: %v", err)
	}
	return st
}

func getStatus(t *testing.T, base, id string) serve.Status {
	t.Helper()
	resp, err := http.Get(base + "/jobs/" + id)
	if err != nil {
		t.Fatalf("GET /jobs/%s: %v", id, err)
	}
	defer resp.Body.Close()
	var st serve.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decoding status: %v", err)
	}
	return st
}

// streamEvent mirrors the NDJSON line format of /jobs/{id}/stream.
type streamEvent struct {
	Type   string           `json:"type"`
	Window *core.WindowStat `json:"window"`
	Status *serve.Status    `json:"status"`
	Lost   int              `json:"lost"`
}

// openStream starts the NDJSON stream and returns a line decoder plus a
// closer.
func openStream(t *testing.T, base, id string) (*bufio.Scanner, func()) {
	t.Helper()
	resp, err := http.Get(base + "/jobs/" + id + "/stream")
	if err != nil {
		t.Fatalf("GET stream: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("GET stream: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		resp.Body.Close()
		t.Fatalf("stream content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	return sc, func() { resp.Body.Close() }
}

func nextEvent(t *testing.T, sc *bufio.Scanner) streamEvent {
	t.Helper()
	if !sc.Scan() {
		t.Fatalf("stream ended early: %v", sc.Err())
	}
	var ev streamEvent
	if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
		t.Fatalf("decoding stream line %q: %v", sc.Text(), err)
	}
	return ev
}

// nextDataEvent returns the next non-"status" event (status snapshots are
// informational and may appear at stream open).
func nextDataEvent(t *testing.T, sc *bufio.Scanner) streamEvent {
	t.Helper()
	for {
		ev := nextEvent(t, sc)
		if ev.Type != "status" {
			return ev
		}
	}
}

// checkWindow verifies the deterministic content of one slow-model window:
// at cut index c the ensemble is uniformly 2c, so mean = 2c and var = 0.
func checkWindow(t *testing.T, windowIdx int, ws *core.WindowStat) {
	t.Helper()
	wantStart := windowIdx * 4
	if ws.Start != wantStart {
		t.Fatalf("window %d starts at cut %d, want %d", windowIdx, ws.Start, wantStart)
	}
	for k := range ws.PerCut {
		m := ws.PerCut[k][0]
		cut := ws.Start + k
		if want := float64(2 * cut); m.Mean != want || m.Var != 0 {
			t.Errorf("window %d cut %d: mean %g var %g, want mean %g var 0", windowIdx, cut, m.Mean, m.Var, want)
		}
	}
}

func TestJobLifecycle(t *testing.T) {
	_, ts := newTestServer(t, 0, serve.Options{})
	st := submitJob(t, ts.URL, slowSpec())
	if st.State != serve.StateRunning && st.State != serve.StateDone {
		t.Fatalf("state after submit: %s", st.State)
	}
	if st.Progress.TotalCuts != 17 || st.Progress.TotalWindows != slowSpecWindows {
		t.Fatalf("totals = %d cuts / %d windows, want 17 / %d",
			st.Progress.TotalCuts, st.Progress.TotalWindows, slowSpecWindows)
	}

	sc, closeStream := openStream(t, ts.URL, st.ID)
	defer closeStream()
	got := 0
	for {
		ev := nextDataEvent(t, sc)
		if ev.Type == "end" {
			if ev.Status == nil || ev.Status.State != serve.StateDone {
				t.Fatalf("end event status: %+v", ev.Status)
			}
			break
		}
		checkWindow(t, got, ev.Window)
		got++
	}
	if got != slowSpecWindows {
		t.Fatalf("streamed %d windows, want %d", got, slowSpecWindows)
	}

	final := getStatus(t, ts.URL, st.ID)
	p := final.Progress
	if final.State != serve.StateDone || p.TasksDone != 4 || p.Cuts != 17 ||
		p.Windows != slowSpecWindows || p.Samples != 4*17 || p.Reactions == 0 {
		t.Fatalf("final status: %+v", final)
	}
	if final.FinishedAt == nil {
		t.Fatal("done job has no finished_at")
	}

	resp, err := http.Get(ts.URL + "/jobs/" + st.ID + "/result?wait=true")
	if err != nil {
		t.Fatalf("GET result: %v", err)
	}
	defer resp.Body.Close()
	var res struct {
		Status      serve.Status      `json:"status"`
		FirstWindow int               `json:"first_window"`
		Windows     []core.WindowStat `json:"windows"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatalf("decoding result: %v", err)
	}
	if res.FirstWindow != 0 || len(res.Windows) != slowSpecWindows {
		t.Fatalf("result holds windows [%d, %d), want all %d",
			res.FirstWindow, res.FirstWindow+len(res.Windows), slowSpecWindows)
	}
}

func TestStreamsFirstWindowBeforeCompletion(t *testing.T) {
	_, ts := newTestServer(t, 2*time.Millisecond, serve.Options{})
	st := submitJob(t, ts.URL, slowSpec())
	sc, closeStream := openStream(t, ts.URL, st.ID)
	defer closeStream()

	ev := nextDataEvent(t, sc)
	if ev.Type != "window" {
		t.Fatalf("first event is %q, want window", ev.Type)
	}
	checkWindow(t, 0, ev.Window)

	// The first window covers 4 of 17 cuts: the job must still be running.
	mid := getStatus(t, ts.URL, st.ID)
	if mid.State != serve.StateRunning {
		t.Fatalf("state after first window: %s, want running (stats must stream before completion)", mid.State)
	}
	if mid.Progress.Windows >= slowSpecWindows {
		t.Fatalf("all %d windows already analysed at first streamed window", mid.Progress.Windows)
	}

	got := 1
	for {
		ev := nextDataEvent(t, sc)
		if ev.Type == "end" {
			if ev.Status.State != serve.StateDone {
				t.Fatalf("end state %s", ev.Status.State)
			}
			break
		}
		got++
	}
	if got != slowSpecWindows {
		t.Fatalf("streamed %d windows, want %d", got, slowSpecWindows)
	}
}

func TestCancelMidRun(t *testing.T) {
	svc, ts := newTestServer(t, 2*time.Millisecond, serve.Options{})
	st := submitJob(t, ts.URL, slowSpec())
	sc, closeStream := openStream(t, ts.URL, st.ID)
	defer closeStream()

	if ev := nextDataEvent(t, sc); ev.Type != "window" {
		t.Fatalf("first event %q", ev.Type)
	}
	resp, err := http.Post(ts.URL+"/jobs/"+st.ID+"/cancel", "application/json", nil)
	if err != nil {
		t.Fatalf("POST cancel: %v", err)
	}
	resp.Body.Close()

	// The stream must terminate with a cancelled end event.
	for {
		ev := nextDataEvent(t, sc)
		if ev.Type == "end" {
			if ev.Status.State != serve.StateCancelled {
				t.Fatalf("end state %s, want cancelled", ev.Status.State)
			}
			break
		}
	}
	if got := getStatus(t, ts.URL, st.ID); got.State != serve.StateCancelled {
		t.Fatalf("status after cancel: %s", got.State)
	}

	// The pool drops the cancelled job's tasks and keeps serving: a fresh
	// job on the same pool must run to completion.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if s := getStatus(t, ts.URL, st.ID); s.Progress.TasksDone == s.Progress.Trajectories {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("cancelled job's tasks were never drained from the pool")
		}
		time.Sleep(5 * time.Millisecond)
	}
	st2 := submitJob(t, ts.URL, slowSpec())
	job, ok := svc.Get(st2.ID)
	if !ok {
		t.Fatalf("job %s not registered", st2.ID)
	}
	select {
	case <-job.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("post-cancel job did not finish")
	}
	if s := getStatus(t, ts.URL, st2.ID); s.State != serve.StateDone {
		t.Fatalf("post-cancel job state: %s", s.State)
	}
}

// TestConcurrentJobsOnSharedPool is the acceptance check: 8 jobs submitted
// concurrently against one 4-worker pool, each streaming windowed
// statistics incrementally — every job's first window arrives while that
// job is still running, and every job completes with correct results.
func TestConcurrentJobsOnSharedPool(t *testing.T) {
	const jobs = 8
	svc, ts := newTestServer(t, 500*time.Microsecond, serve.Options{Workers: 4})
	if svc.Workers() != 4 {
		t.Fatalf("pool width %d, want 4", svc.Workers())
	}

	var wg sync.WaitGroup
	errc := make(chan error, jobs)
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errc <- runOneJob(ts.URL, i)
		}(i)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		if err != nil {
			t.Error(err)
		}
	}

	if got := len(svc.List()); got != jobs {
		t.Fatalf("registry lists %d jobs, want %d", got, jobs)
	}
}

// runOneJob submits one slow job, streams it, and verifies incremental
// delivery plus final correctness. It avoids testing.T so it can run from
// a goroutine.
func runOneJob(base string, i int) error {
	spec := slowSpec()
	spec.Seed = int64(i)
	body, _ := json.Marshal(spec)
	resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("job %d: submit: %w", i, err)
	}
	var st serve.Status
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("job %d: decoding submit: %w", i, err)
	}

	stream, err := http.Get(base + "/jobs/" + st.ID + "/stream")
	if err != nil {
		return fmt.Errorf("job %d: stream: %w", i, err)
	}
	defer stream.Body.Close()
	sc := bufio.NewScanner(stream.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	windows := 0
	for sc.Scan() {
		var ev streamEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return fmt.Errorf("job %d: bad stream line: %w", i, err)
		}
		switch ev.Type {
		case "window":
			if ws := ev.Window; ws.Start != windows*4 {
				return fmt.Errorf("job %d: window %d starts at %d", i, windows, ws.Start)
			}
			if windows == 0 {
				// Incremental delivery: at the first window the job must
				// still be mid-run.
				s, err := http.Get(base + "/jobs/" + st.ID)
				if err != nil {
					return fmt.Errorf("job %d: status: %w", i, err)
				}
				var mid serve.Status
				err = json.NewDecoder(s.Body).Decode(&mid)
				s.Body.Close()
				if err != nil {
					return fmt.Errorf("job %d: decoding status: %w", i, err)
				}
				if mid.State != serve.StateRunning {
					return fmt.Errorf("job %d: state %s at first window, want running", i, mid.State)
				}
			}
			windows++
		case "end":
			if ev.Status.State != serve.StateDone {
				return fmt.Errorf("job %d: ended %s (%s)", i, ev.Status.State, ev.Status.Error)
			}
			if windows != slowSpecWindows {
				return fmt.Errorf("job %d: streamed %d windows, want %d", i, windows, slowSpecWindows)
			}
			return nil
		}
	}
	return fmt.Errorf("job %d: stream ended without end event: %v", i, sc.Err())
}

func TestSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t, 0, serve.Options{MaxTrajectories: 16})
	cases := []serve.JobSpec{
		{Model: "no-such-model", Trajectories: 4, End: 8, Period: 0.5},
		{Model: "slow", Trajectories: 0, End: 8, Period: 0.5},
		{Model: "slow", Trajectories: 4, End: -1, Period: 0.5},
		{Model: "slow", Trajectories: 17, End: 8, Period: 0.5},   // over traj limit
		{Model: "slow", Trajectories: 2, End: 1e9, Period: 1e-6}, // over cuts limit
		{Model: "slow", Trajectories: 4, End: 8, Period: 0.5, Species: []int{3}},
	}
	for i, spec := range cases {
		body, _ := json.Marshal(spec)
		resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("case %d: status %d, want 400", i, resp.StatusCode)
		}
	}
	if resp, err := http.Get(ts.URL + "/jobs/nope"); err == nil {
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("unknown job id: status %d, want 404", resp.StatusCode)
		}
		resp.Body.Close()
	}
}

func TestStreamFromBeyondPublished(t *testing.T) {
	_, ts := newTestServer(t, 0, serve.Options{})
	st := submitJob(t, ts.URL, slowSpec())
	// Wait for completion so the published window count is fixed.
	resp, err := http.Get(ts.URL + "/jobs/" + st.ID + "/result?wait=true")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	resp, err = http.Get(ts.URL + "/jobs/" + st.ID + "/stream?from=99")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("from beyond published windows: status %d, want 400", resp.StatusCode)
	}
	// from == published count is the reconnect case: valid, empty replay.
	resp, err = http.Get(ts.URL + "/jobs/" + st.ID + "/stream?from=" + fmt.Sprint(slowSpecWindows))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("from == published count: status %d, want 200", resp.StatusCode)
	}
}

func TestSubmitAfterCloseRejected(t *testing.T) {
	svc, err := serve.New(serve.Options{Workers: 2, Resolver: testResolver(0)})
	if err != nil {
		t.Fatal(err)
	}
	svc.Close()
	if _, err := svc.Submit(slowSpec()); !errors.Is(err, serve.ErrClosed) {
		t.Fatalf("Submit on closed server: err = %v, want ErrClosed", err)
	}
}

func TestSubmitOverActiveLimitReturns429(t *testing.T) {
	_, ts := newTestServer(t, 2*time.Millisecond, serve.Options{MaxJobs: 1})
	first := submitJob(t, ts.URL, slowSpecSeed(1))
	body, _ := json.Marshal(slowSpecSeed(2))
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("submit over limit: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("saturation 429 Retry-After = %q, want \"1\"", ra)
	}
	// Capacity frees once the first job finishes.
	r2, err := http.Get(ts.URL + "/jobs/" + first.ID + "/result?wait=true")
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	submitJob(t, ts.URL, slowSpecSeed(3))
}

func TestStreamReportsEvictionGap(t *testing.T) {
	// Result ring of 2: after 5 windows, windows 0..2 are evicted and a
	// replay from 0 must announce the gap instead of silently skipping.
	_, ts := newTestServer(t, 0, serve.Options{ResultBuffer: 2})
	st := submitJob(t, ts.URL, slowSpec())
	resp, err := http.Get(ts.URL + "/jobs/" + st.ID + "/result?wait=true")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	sc, closeStream := openStream(t, ts.URL, st.ID)
	defer closeStream()
	ev := nextDataEvent(t, sc)
	if ev.Type != "gap" || ev.Lost != 3 {
		t.Fatalf("first event = %s (lost %d), want gap with lost 3", ev.Type, ev.Lost)
	}
	var starts []int
	for {
		ev := nextDataEvent(t, sc)
		if ev.Type == "end" {
			break
		}
		starts = append(starts, ev.Window.Start)
	}
	if len(starts) != 2 || starts[0] != 12 || starts[1] != 16 {
		t.Fatalf("replayed window starts %v, want [12 16]", starts)
	}
}

func TestTerminalJobsEvictedBeyondMaxCompleted(t *testing.T) {
	svc, ts := newTestServer(t, 0, serve.Options{MaxCompleted: 2})
	var last serve.Status
	for i := 0; i < 5; i++ {
		last = submitJob(t, ts.URL, slowSpecSeed(int64(i+1)))
		resp, err := http.Get(ts.URL + "/jobs/" + last.ID + "/result?wait=true")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	// The next submission prunes: at most MaxCompleted terminal jobs plus
	// the new active one remain.
	submitJob(t, ts.URL, slowSpecSeed(6))
	if got := len(svc.List()); got > 3 {
		t.Fatalf("registry holds %d jobs after pruning, want <= 3", got)
	}
	// Evicted ids 404, the newest completed one survives.
	resp, err := http.Get(ts.URL + "/jobs/job-000001")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("evicted job: status %d, want 404", resp.StatusCode)
	}
	if s := getStatus(t, ts.URL, last.ID); s.State != serve.StateDone {
		t.Fatalf("newest completed job evicted or wrong state: %v", s.State)
	}
}

func TestRealModelSmoke(t *testing.T) {
	_, ts := newTestServer(t, 0, serve.Options{})
	spec := serve.JobSpec{
		Model:        "sir",
		Omega:        100,
		Trajectories: 8,
		End:          10,
		Period:       0.5,
		WindowSize:   8,
		Seed:         7,
	}
	st := submitJob(t, ts.URL, spec)
	resp, err := http.Get(ts.URL + "/jobs/" + st.ID + "/result?wait=true")
	if err != nil {
		t.Fatalf("GET result: %v", err)
	}
	defer resp.Body.Close()
	var res struct {
		Status  serve.Status      `json:"status"`
		Windows []core.WindowStat `json:"windows"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatalf("decoding result: %v", err)
	}
	if res.Status.State != serve.StateDone {
		t.Fatalf("state %s (%s)", res.Status.State, res.Status.Error)
	}
	want := window.WindowCount(21, 8, 8)
	if len(res.Windows) != want {
		t.Fatalf("%d windows, want %d", len(res.Windows), want)
	}
	if res.Status.Progress.Reactions == 0 {
		t.Fatal("no reactions recorded for a real model")
	}
}
