package serve_test

import (
	"encoding/binary"
	"fmt"
	"math"
	"net"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cwcflow/internal/chaos"
	"cwcflow/internal/core"
	"cwcflow/internal/lease"
	"cwcflow/internal/serve"
	"cwcflow/internal/sim"
	"cwcflow/internal/store"
)

// snapWalkSim is walkSim plus SnapshotSimulator: its full dynamic state
// is (t, rng, species), so checkpoints restore bit-identically. It keeps
// walkSim's trajectory exactly, so digests from plain-walk reference
// runs stay comparable.
type snapWalkSim struct{ walkSim }

func (s *snapWalkSim) Snapshot() ([]byte, error) {
	buf := make([]byte, 0, 40)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s.t))
	buf = binary.LittleEndian.AppendUint64(buf, s.rng)
	for _, v := range s.state {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(v))
	}
	return buf, nil
}

func (s *snapWalkSim) Restore(data []byte) error {
	if len(data) != 40 {
		return fmt.Errorf("snapWalkSim: snapshot is %d bytes, want 40", len(data))
	}
	s.t = math.Float64frombits(binary.LittleEndian.Uint64(data[0:8]))
	s.rng = binary.LittleEndian.Uint64(data[8:16])
	for i := range s.state {
		s.state[i] = int64(binary.LittleEndian.Uint64(data[16+8*i:]))
	}
	return nil
}

// snapWalkResolver serves the "walk" model with snapshot support, with a
// per-step delay to keep jobs observable mid-run.
func snapWalkResolver(delay time.Duration) core.ModelResolver {
	return func(ref core.ModelRef) (core.SimulatorFactory, error) {
		if ref.Name != "walk" {
			return core.FactoryFor(ref)
		}
		return func(traj int, seed int64) (sim.Simulator, error) {
			return &snapWalkSim{walkSim{dt: 0.25, delay: delay, rng: uint64(seed)*0x9e3779b97f4a7c15 + 1}}, nil
		}, nil
	}
}

// longWalkSpec stretches walkSpec to end so slow (throttled) runs are
// reliably caught mid-flight.
func longWalkSpec(end float64) serve.JobSpec {
	sp := walkSpec()
	sp.End = end
	return sp
}

// newReplicaServer starts one replica of a tier sharing dataDir. The
// HTTP listener is opened first so the advertised URL in the replica's
// lease files is dialable by its peers.
func newReplicaServer(t *testing.T, dataDir, id string, opts serve.Options) (*serve.Server, string) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + l.Addr().String()
	if opts.Workers == 0 {
		opts.Workers = 2
	}
	opts.DataDir = dataDir
	opts.ReplicaID = id
	opts.AdvertiseURL = base
	svc, err := serve.New(opts)
	if err != nil {
		l.Close()
		t.Fatal(err)
	}
	srv := &http.Server{Handler: svc.Handler()}
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close(); svc.Close() })
	return svc, base
}

// TestWorkerShippedCheckpointsAdvanceFrontier pins the checkpoint-
// shipping half of the tentpole: with every trajectory forced onto a
// remote sim worker (WorkerInFlight >= trajectories, so the local pool
// contributes nothing), the only way checkpoints can reach the journal
// is inside ResultMsg — and a crash image taken mid-run must both hold
// them and resume to the uninterrupted digest.
func TestWorkerShippedCheckpointsAdvanceFrontier(t *testing.T) {
	_, refURL := newRemoteServer(t, 0, serve.Options{})
	refSt, refDigest := runToDigest(t, refURL, longWalkSpec(16))
	if refSt.State != serve.StateDone {
		t.Fatalf("reference job state %s", refSt.State)
	}

	dir := t.TempDir()
	worker := startWorker(t, 2, snapWalkResolver(2*time.Millisecond))
	svc, err := serve.New(serve.Options{
		Workers:           2,
		Resolver:          snapWalkResolver(0),
		DataDir:           dir,
		CheckpointSamples: 4,
		WorkerAddrs:       []string{worker.addr},
		WorkerInFlight:    8, // >= trajectories: the farm schedules every trajectory remotely
	})
	if err != nil {
		t.Fatal(err)
	}
	base := newHTTPServer(t, svc.Handler())
	t.Cleanup(svc.Close)

	st := submitJob(t, base, longWalkSpec(16))
	waitWindows(t, base, st.ID, 2)
	img := crashImage(t, dir)
	verifyMidRunImage(t, img, st.ID, 2)

	// The crash image must hold worker-shipped checkpoints: every
	// trajectory is past sample 16 (two windows published), so each has
	// crossed the 4-sample cadence repeatedly on the worker.
	probe, err := store.Open(img, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	shipped := 0
	for _, rec := range probe.Recovered() {
		if rec.ID != st.ID {
			continue
		}
		for traj := 0; traj < 8; traj++ {
			if ck, ok := rec.BestCheckpoint(traj, 1<<30); ok && ck.NextIdx >= 4 {
				shipped++
			}
		}
	}
	probe.Close()
	if shipped < 8 {
		t.Fatalf("crash image has shipped checkpoints for %d/8 trajectories; remote results are not carrying snapshots", shipped)
	}

	// Resume the crash image on a fresh, purely local server: the
	// shipped checkpoints seed the restart past each trajectory's origin,
	// and the digest must still match the uninterrupted run.
	_, base2 := newDurableServer(t, img, serve.Options{Resolver: snapWalkResolver(0)})
	waitForState(t, base2, st.ID, serve.StateDone)
	st2, digest := runStatusAndDigest(t, base2, st.ID)
	if !st2.Recovered {
		t.Fatal("resumed job not flagged recovered")
	}
	if digest != refDigest {
		t.Fatalf("resume digest %s != uninterrupted %s", digest, refDigest)
	}
}

// waitForState polls base until job id reaches want (failing fast if it
// lands on a different terminal state).
func waitForState(t *testing.T, base, id string, want serve.State) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := getStatus(t, base, id)
		if st.State == want {
			return
		}
		if st.State.Terminal() {
			t.Fatalf("job %s reached %s (error %q), want %s", id, st.State, st.Error, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s, want %s", id, st.State, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestReplicaFailoverDigestMatchesUninterrupted is the failover
// acceptance pin. Replica A runs a throttled job; replica B, sharing the
// data dir with chaos-accelerated lease expiry, steals the lease at a
// higher epoch mid-run, adopts A's journal and finishes the job — with
// a window digest bit-identical to an uninterrupted run. A stays alive
// throughout as the zombie: its next renewal observes the higher epoch
// and fails its copy of the job, proving the fencing path.
func TestReplicaFailoverDigestMatchesUninterrupted(t *testing.T) {
	_, refURL := newRemoteServer(t, 0, serve.Options{})
	_, refDigest := runToDigest(t, refURL, longWalkSpec(24))

	dir := t.TempDir()
	_, aURL := newReplicaServer(t, dir, "a", serve.Options{
		Resolver:     snapWalkResolver(2 * time.Millisecond),
		LeaseTTL:     500 * time.Millisecond,
		FailoverScan: time.Hour, // A never steals in this test
	})

	st := submitJob(t, aURL, longWalkSpec(24))
	if want := "job-a-000001"; st.ID != want {
		t.Fatalf("job id %q, want %q (replica-infixed sequence)", st.ID, want)
	}
	waitWindows(t, aURL, st.ID, 1)

	// B joins the tier with chaos forcing foreign leases to look expired:
	// its first failover scan steals A's live job at epoch 2.
	inj := chaos.New(42)
	inj.Arm(chaos.LeaseExpireEarly, chaos.Rule{Prob: 1})
	_, bURL := newReplicaServer(t, dir, "b", serve.Options{
		Resolver:     snapWalkResolver(0),
		LeaseTTL:     500 * time.Millisecond,
		FailoverScan: 25 * time.Millisecond,
		Chaos:        inj,
	})

	waitForState(t, bURL, st.ID, serve.StateDone)
	stB, digest := runStatusAndDigest(t, bURL, st.ID)
	if digest != refDigest {
		t.Fatalf("failover digest %s != uninterrupted %s", digest, refDigest)
	}
	if !stB.Recovered {
		t.Fatal("failed-over job not flagged recovered on the thief")
	}

	// The zombie: A's renew loop noticed the higher epoch and failed its
	// copy without journaling (its store appends are fenced).
	deadline := time.Now().Add(10 * time.Second)
	for {
		stA := getStatus(t, aURL, st.ID)
		if stA.State == serve.StateFailed {
			if !strings.Contains(stA.Error, "lease lost") {
				t.Fatalf("zombie job error %q, want a lease-lost failure", stA.Error)
			}
			break
		}
		if stA.State == serve.StateDone {
			t.Fatal("zombie replica finished the job after losing its lease; fencing failed")
		}
		if time.Now().After(deadline) {
			t.Fatalf("zombie job still %s, want failed", stA.State)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The lease file records the steal: owner b at a bumped epoch.
	probe, err := lease.NewManager(lease.Options{
		Dir:   filepath.Join(dir, "leases"),
		Owner: "probe",
		TTL:   time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	l, ok, err := probe.Get(st.ID)
	if err != nil || !ok {
		t.Fatalf("lease for %s: ok=%v err=%v", st.ID, ok, err)
	}
	if l.Owner != "b" || l.Epoch < 2 {
		t.Fatalf("lease owner=%s epoch=%d, want owner=b epoch>=2", l.Owner, l.Epoch)
	}
}

// TestForeignJobServedAcrossReplicas covers the read/redirect/proxy
// surface: any replica answers for any job. Status and result come from
// peeking the owner's journal, streams redirect to the owner, cancels
// proxy to it.
func TestForeignJobServedAcrossReplicas(t *testing.T) {
	dir := t.TempDir()
	_, aURL := newReplicaServer(t, dir, "a", serve.Options{
		Resolver:     snapWalkResolver(2 * time.Millisecond),
		LeaseTTL:     10 * time.Second, // healthy owner: B must never steal
		FailoverScan: time.Hour,
	})
	_, bURL := newReplicaServer(t, dir, "b", serve.Options{
		Resolver:     snapWalkResolver(0),
		LeaseTTL:     10 * time.Second,
		FailoverScan: time.Hour,
	})

	st := submitJob(t, aURL, longWalkSpec(24))
	waitWindows(t, aURL, st.ID, 1)

	// Status through B: peeked from A's journal, owner attributed.
	stB := getStatus(t, bURL, st.ID)
	if stB.Owner != "a" {
		t.Fatalf("foreign status owner %q, want %q", stB.Owner, "a")
	}
	if stB.State != serve.StateRunning {
		t.Fatalf("foreign status state %s, want running", stB.State)
	}
	if stB.Progress.Windows < 1 {
		t.Fatal("foreign status shows no durable windows")
	}

	// Result through B: the durable window prefix.
	resp, err := http.Get(bURL + "/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("foreign result status %d", resp.StatusCode)
	}

	// Stream through B: a 307 to the owner's advertised URL.
	noRedirect := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	resp, err = noRedirect.Get(bURL + "/jobs/" + st.ID + "/stream?from=0")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("foreign stream status %d, want 307", resp.StatusCode)
	}
	if loc, want := resp.Header.Get("Location"), aURL+"/jobs/"+st.ID+"/stream?from=0"; loc != want {
		t.Fatalf("redirect Location %q, want %q", loc, want)
	}

	// Unknown ids are still a 404, not a proxy attempt.
	resp, err = http.Get(bURL + "/jobs/job-nope-000001")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job via B: status %d, want 404", resp.StatusCode)
	}

	// Cancel through B: transparently proxied to A, which cancels for real.
	resp, err = http.Post(bURL+"/jobs/"+st.ID+"/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("proxied cancel status %d", resp.StatusCode)
	}
	waitForTerminal(t, aURL, st.ID, serve.StateCancelled)
}

func waitForTerminal(t *testing.T, base, id string, want serve.State) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := getStatus(t, base, id)
		if st.State.Terminal() {
			if st.State != want {
				t.Fatalf("job %s finished %s, want %s", id, st.State, want)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never reached a terminal state (at %s)", id, st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestChaosRemoteDeliveryDigestUnchanged runs a remote-sharded job under
// deterministic fault injection — duplicated deliveries, delivery
// delays, one severed worker connection — and requires the bit-identical
// reference digest anyway: delivery-layer faults must be absorbed by
// dedup and requeue, never leak into results.
func TestChaosRemoteDeliveryDigestUnchanged(t *testing.T) {
	_, refURL := newRemoteServer(t, 0, serve.Options{})
	_, refDigest := runToDigest(t, refURL, walkSpec())

	inj := chaos.New(7)
	inj.Arm(chaos.RecvDup, chaos.Rule{Prob: 0.5})
	inj.Arm(chaos.RecvDelay, chaos.Rule{Prob: 0.3, Delay: time.Millisecond})
	inj.Arm(chaos.RecvDrop, chaos.Rule{Prob: 1, After: 10, Limit: 1})

	w1 := startWorker(t, 2, walkResolver(0))
	w2 := startWorker(t, 2, walkResolver(0))
	_, distURL := newRemoteServer(t, 0, serve.Options{
		WorkerAddrs:    []string{w1.addr, w2.addr},
		WorkerInFlight: 4,
		Chaos:          inj,
	})
	st, digest := runToDigest(t, distURL, walkSpec())
	if st.State != serve.StateDone {
		t.Fatalf("chaos job state %s", st.State)
	}
	if digest != refDigest {
		t.Fatalf("digest under chaos %s != reference %s", digest, refDigest)
	}
	if inj.Fired(chaos.RecvDup) == 0 && inj.Fired(chaos.RecvDelay) == 0 && inj.Fired(chaos.RecvDrop) == 0 {
		t.Fatal("chaos injector never fired; the test exercised nothing")
	}
}
