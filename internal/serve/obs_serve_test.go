package serve_test

// End-to-end pins for the observability layer: the /metrics exposition
// must cover every pipeline stage after one job runs, and a trace id
// submitted in a traceparent header must come back from GET
// /jobs/{id}/trace carrying spans recorded on a remote sim worker.

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"cwcflow/internal/core"
	"cwcflow/internal/dff"
	"cwcflow/internal/obs"
	"cwcflow/internal/serve"
)

// fetchMetrics scrapes GET /metrics and returns the exposition text.
func fetchMetrics(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("GET /metrics content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestMetricsCoverPipelineStages is the exposition acceptance pin: after
// one job runs start to finish, /metrics must carry a populated series
// for every quantum-lifecycle stage the local path crosses, plus the
// throughput, cache and control-plane families.
func TestMetricsCoverPipelineStages(t *testing.T) {
	t.Parallel()
	_, ts := newTestServer(t, 0, serve.Options{})
	st := submitJob(t, ts.URL, slowSpec())
	waitForState(t, ts.URL, st.ID, serve.StateDone)

	text := fetchMetrics(t, ts.URL)
	stages := []string{
		`cwc_sched_wait_seconds_count`,
		`cwc_quantum_seconds_count{site="local"}`,
		`cwc_ingress_wait_seconds_count`,
		`cwc_analyse_seconds_count`,
		`cwc_reorder_wait_seconds_count`,
		`cwc_quanta_total{site="local"}`,
		`cwc_windows_published_total`,
		`cwc_submits_total{outcome="created"} 1`,
		`cwc_cache_requests_total{result="miss"} 1`,
		`cwc_tenant_quanta_total{tenant="default"}`,
		`cwc_jobs{state="total"} 1`,
		`cwc_pool_workers`,
		`cwc_stat_engines`,
	}
	for _, want := range stages {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics is missing %q", want)
		}
	}
	if strings.Contains(text, "_count 0") {
		// Every histogram the local path crosses must have observed
		// something; a zero count means a stage boundary lost its hook.
		for _, line := range strings.Split(text, "\n") {
			if strings.Contains(line, "_count 0") && !strings.Contains(line, "remote") &&
				!strings.Contains(line, "cwc_wal") && !strings.Contains(line, "cwc_admission") {
				t.Errorf("stage histogram never observed: %s", line)
			}
		}
	}
	if !strings.Contains(text, fmt.Sprintf("cwc_windows_published_total %d", slowSpecWindows)) {
		t.Errorf("cwc_windows_published_total != %d in:\n%s", slowSpecWindows,
			grepLines(text, "cwc_windows_published_total"))
	}
}

// grepLines filters exposition text to the lines mentioning needle.
func grepLines(text, needle string) string {
	var out []string
	for _, l := range strings.Split(text, "\n") {
		if strings.Contains(l, needle) {
			out = append(out, l)
		}
	}
	return strings.Join(out, "\n")
}

// startWorkerOrigin runs one sim worker that records trace spans under
// the given origin identity — the full-option path cwc-dist uses.
func startWorkerOrigin(t *testing.T, simWorkers int, resolver core.ModelResolver, origin string) *killableWorker {
	t.Helper()
	l, err := dff.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	w := &killableWorker{addr: l.Addr().String(), cancel: cancel, listener: l}
	go func() {
		_ = core.ServeSimWorkerOpts(ctx, w, core.SimWorkerOptions{
			SimWorkers: simWorkers,
			Resolver:   resolver,
			Origin:     origin,
		})
	}()
	t.Cleanup(w.kill)
	return w
}

// fetchTrace reads GET /jobs/{id}/trace as NDJSON spans.
func fetchTrace(t *testing.T, base, id string) (spans []obs.Span, traceID string) {
	t.Helper()
	resp, err := http.Get(base + "/jobs/" + id + "/trace")
	if err != nil {
		t.Fatalf("GET trace: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET trace: status %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var s obs.Span
		if err := json.Unmarshal(sc.Bytes(), &s); err != nil {
			t.Fatalf("trace line %q: %v", sc.Text(), err)
		}
		spans = append(spans, s)
	}
	return spans, resp.Header.Get("X-CWC-Trace-Id")
}

// TestTracePropagatesAcrossProcesses is the tracing acceptance pin: a
// caller-chosen trace id rides the traceparent header into admission,
// crosses the dff wire in the job header, and comes home in the worker's
// trailer — GET /jobs/{id}/trace shows local lifecycle spans and the
// remote worker-stream span under the one id.
func TestTracePropagatesAcrossProcesses(t *testing.T) {
	t.Parallel()
	const workerOrigin = "wkr-alpha"
	w := startWorkerOrigin(t, 2, walkResolver(0), workerOrigin)
	_, base := newRemoteServer(t, 0, serve.Options{
		WorkerAddrs: []string{w.addr},
	})

	traceID := strings.Repeat("ab", 16)
	body, _ := json.Marshal(walkSpec())
	req, err := http.NewRequest(http.MethodPost, base+"/jobs", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("traceparent", obs.FormatTraceparent(traceID))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST /jobs: %v", err)
	}
	var st serve.Status
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("decoding submit response: %v", err)
	}
	if st.TraceID != traceID {
		t.Fatalf("submit status trace id %q, want %q", st.TraceID, traceID)
	}
	waitForState(t, base, st.ID, serve.StateDone)

	// The worker's spans arrive with its stream trailer, which can land
	// moments after the job turns terminal: poll briefly.
	var spans []obs.Span
	var gotID string
	deadline := time.Now().Add(10 * time.Second)
	for {
		spans, gotID = fetchTrace(t, base, st.ID)
		if hasSpan(spans, "worker-stream", workerOrigin) || time.Now().After(deadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if gotID != traceID {
		t.Fatalf("trace endpoint id %q, want %q", gotID, traceID)
	}
	for _, name := range []string{"admission", "dispatch", "run"} {
		if !hasSpan(spans, name, "") {
			t.Errorf("trace is missing local span %q; got %v", name, spanNames(spans))
		}
	}
	if !hasSpan(spans, "worker-stream", workerOrigin) {
		t.Fatalf("trace has no worker-stream span from %s; got %v", workerOrigin, spanNames(spans))
	}
	for _, s := range spans {
		if s.Trace != traceID {
			t.Fatalf("span %q carries trace id %q, want %q", s.Name, s.Trace, traceID)
		}
	}
}

func hasSpan(spans []obs.Span, name, origin string) bool {
	for _, s := range spans {
		if s.Name == name && (origin == "" || s.Origin == origin) {
			return true
		}
	}
	return false
}

func spanNames(spans []obs.Span) []string {
	out := make([]string, len(spans))
	for i, s := range spans {
		out[i] = s.Name + "@" + s.Origin
	}
	return out
}
