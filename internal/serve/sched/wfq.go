package sched

import "sync"

// tagScale is the fixed-point unit of virtual time: one quantum at weight
// 1.0 advances a flow's tag by exactly tagScale. uint64 virtual time wraps
// after 2^44 quanta at weight 1 — far beyond any process lifetime here.
const tagScale = 1 << 20

// Weight bounds keep the per-quantum tag increment representable: below
// minWeight the increment would overflow dispatch horizons, above maxWeight
// it would round to zero and starve every other flow.
const (
	minWeight = 1.0 / 1024
	maxWeight = 1 << 20
)

// Flow is one scheduling entity (a tenant) inside a WFQ scheduler. Flows
// are created with WFQ.NewFlow and owned by that scheduler; the caller
// keeps the pointer and tags every pushed item with it via the classifier.
type Flow[T any] struct {
	name   string
	weight float64
	inc    uint64 // virtual-time cost of one quantum: tagScale/weight
	order  int    // registration order, the deterministic tie-break

	q       ring[T]
	headTag uint64 // start tag of the head item, valid while q.n > 0
	nextTag uint64 // start tag the next enqueued item inherits
	active  bool
}

// Name returns the flow's name.
func (f *Flow[T]) Name() string { return f.name }

// Weight returns the flow's configured weight.
func (f *Flow[T]) Weight() float64 { return f.weight }

// WFQ is a start-time fair queueing scheduler: each flow's queued quanta
// carry virtual start tags spaced tagScale/weight apart, and Pop always
// dispatches the backlogged flow with the smallest head tag (ties broken
// by flow registration order). Backlogged flows therefore receive dispatch
// slots proportional to their weights, while idle flows accumulate no
// credit: a flow waking after a quiet period starts at the current virtual
// time, not in the past.
//
// This generalises PR 3's congestion parking from "protect the collector"
// to "enforce tenant shares": parking removes quanta from the farm when a
// job's ingress is congested, WFQ decides which of the remaining runnable
// quanta goes next.
//
// Unlike FIFO, WFQ carries its own mutex: Push/Pop stay on the single
// dispatcher goroutine, but NewFlow is called from submission goroutines
// whenever a new tenant appears, and must not race the dispatcher.
type WFQ[T any] struct {
	mu       sync.Mutex
	classify func(T) *Flow[T]
	flows    []*Flow[T]
	active   []*Flow[T] // backlogged flows; cap grown at NewFlow time
	vtime    uint64
	n        int
}

// NewWFQ returns a WFQ scheduler that assigns each pushed item to the flow
// returned by classify. classify must return a flow created by this
// scheduler's NewFlow; items are never reordered within a flow.
func NewWFQ[T any](classify func(T) *Flow[T]) *WFQ[T] {
	return &WFQ[T]{classify: classify}
}

// NewFlow registers a flow with the given weight (clamped to a sane
// range). Registration order is the tie-break when head tags collide, so
// creating flows in a deterministic order keeps dispatch deterministic.
func (w *WFQ[T]) NewFlow(name string, weight float64) *Flow[T] {
	w.mu.Lock()
	defer w.mu.Unlock()
	if weight < minWeight {
		weight = minWeight
	}
	if weight > maxWeight {
		weight = maxWeight
	}
	f := &Flow[T]{
		name:   name,
		weight: weight,
		inc:    uint64(tagScale / weight),
		order:  len(w.flows),
	}
	if f.inc == 0 {
		f.inc = 1
	}
	w.flows = append(w.flows, f)
	// Grow the active list's capacity now so Push/Pop never allocate.
	if cap(w.active) < len(w.flows) {
		grown := make([]*Flow[T], len(w.active), 2*len(w.flows))
		copy(grown, w.active)
		w.active = grown
	}
	return f
}

// Push implements Scheduler.
func (w *WFQ[T]) Push(v T) {
	f := w.classify(v)
	w.mu.Lock()
	defer w.mu.Unlock()
	tag := f.nextTag
	if f.q.n == 0 {
		// A waking flow joins at the current virtual time unless its own
		// past tag is already ahead (it used more than its share recently).
		if w.vtime > tag {
			tag = w.vtime
		}
		f.headTag = tag
	}
	f.nextTag = tag + f.inc
	f.q.push(v)
	if !f.active {
		f.active = true
		w.active = append(w.active, f)
	}
	w.n++
}

// Pop implements Scheduler.
func (w *WFQ[T]) Pop() (T, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	var zero T
	if w.n == 0 {
		return zero, false
	}
	best := 0
	for i := 1; i < len(w.active); i++ {
		f, b := w.active[i], w.active[best]
		if f.headTag < b.headTag || (f.headTag == b.headTag && f.order < b.order) {
			best = i
		}
	}
	f := w.active[best]
	if f.headTag > w.vtime {
		w.vtime = f.headTag
	}
	v, _ := f.q.pop()
	f.headTag += f.inc
	if f.q.n == 0 {
		f.active = false
		last := len(w.active) - 1
		w.active[best] = w.active[last]
		w.active[last] = nil
		w.active = w.active[:last]
	}
	w.n--
	return v, true
}

// Len implements Scheduler.
func (w *WFQ[T]) Len() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.n
}
