package sched

import (
	"testing"
)

func TestFIFOOrder(t *testing.T) {
	q := NewFIFO[int]()
	if _, ok := q.Pop(); ok {
		t.Fatal("empty FIFO popped a value")
	}
	for i := 0; i < 100; i++ {
		q.Push(i)
	}
	if q.Len() != 100 {
		t.Fatalf("Len = %d, want 100", q.Len())
	}
	for i := 0; i < 100; i++ {
		v, ok := q.Pop()
		if !ok || v != i {
			t.Fatalf("pop %d: got %d ok=%v", i, v, ok)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("drained FIFO Len = %d", q.Len())
	}
}

func TestFIFOInterleavedPushPop(t *testing.T) {
	q := NewFIFO[int]()
	next, want := 0, 0
	// Exercise ring wraparound with mixed push/pop batches.
	for round := 0; round < 50; round++ {
		for i := 0; i < 3+round%5; i++ {
			q.Push(next)
			next++
		}
		for i := 0; i < 2+round%4 && q.Len() > 0; i++ {
			v, ok := q.Pop()
			if !ok || v != want {
				t.Fatalf("round %d: got %d ok=%v, want %d", round, v, ok, want)
			}
			want++
		}
	}
	for q.Len() > 0 {
		v, _ := q.Pop()
		if v != want {
			t.Fatalf("drain: got %d, want %d", v, want)
		}
		want++
	}
	if want != next {
		t.Fatalf("popped %d items, pushed %d", want, next)
	}
}

// TestWFQShares: two flows saturated at weights 3:1 must dequeue in a 3:1
// ratio over any long window.
func TestWFQShares(t *testing.T) {
	w := NewWFQ[string](nil)
	a := w.NewFlow("a", 3)
	b := w.NewFlow("b", 1)
	w.classify = func(v string) *Flow[string] {
		if v == "a" {
			return a
		}
		return b
	}
	for i := 0; i < 400; i++ {
		w.Push("a")
		w.Push("b")
	}
	counts := map[string]int{}
	for i := 0; i < 400; i++ {
		v, ok := w.Pop()
		if !ok {
			t.Fatal("pop failed with items queued")
		}
		counts[v]++
	}
	// 400 dispatch slots at 3:1 → 300/100 exactly (both flows backlogged
	// throughout, tags never collide after the first slot).
	if counts["a"] < 290 || counts["a"] > 310 {
		t.Fatalf("weight-3 flow got %d of 400 slots, want ~300", counts["a"])
	}
	if counts["a"]+counts["b"] != 400 {
		t.Fatalf("slot accounting: %v", counts)
	}
}

// TestWFQFlowFIFO: items within one flow never reorder.
func TestWFQFlowFIFO(t *testing.T) {
	w := NewWFQ[int](nil)
	a := w.NewFlow("a", 1)
	b := w.NewFlow("b", 5)
	flows := []*Flow[int]{a, b}
	w.classify = func(v int) *Flow[int] { return flows[v&1] }
	for i := 0; i < 200; i++ {
		w.Push(i)
	}
	last := map[int]int{0: -1, 1: -1}
	for {
		v, ok := w.Pop()
		if !ok {
			break
		}
		k := v & 1
		if v <= last[k] {
			t.Fatalf("flow %d reordered: %d after %d", k, v, last[k])
		}
		last[k] = v
	}
}

// TestWFQIdleFlowAccruesNoCredit: a flow that sat idle while another ran
// must not burst ahead when it wakes — it joins at the current virtual
// time and shares from there.
func TestWFQIdleFlowAccruesNoCredit(t *testing.T) {
	w := NewWFQ[string](nil)
	a := w.NewFlow("a", 1)
	b := w.NewFlow("b", 1)
	w.classify = func(v string) *Flow[string] {
		if v == "a" {
			return a
		}
		return b
	}
	// Flow a runs alone for a long stretch.
	for i := 0; i < 100; i++ {
		w.Push("a")
		w.Pop()
	}
	// Flow b wakes. With equal weights the flows must now alternate;
	// b must not receive 100 back-to-back slots of "credit".
	for i := 0; i < 20; i++ {
		w.Push("a")
		w.Push("b")
	}
	streak, maxStreak := 0, 0
	prev := ""
	for i := 0; i < 40; i++ {
		v, _ := w.Pop()
		if v == prev {
			streak++
		} else {
			streak = 1
			prev = v
		}
		if streak > maxStreak {
			maxStreak = streak
		}
	}
	if maxStreak > 2 {
		t.Fatalf("waking flow allowed a %d-slot monopoly; equal weights must interleave", maxStreak)
	}
}

// TestWFQDeterministicTieBreak: equal-weight flows with colliding tags
// dispatch in registration order, so two runs with identical push
// sequences produce identical pop sequences.
func TestWFQDeterministicTieBreak(t *testing.T) {
	run := func() []int {
		w := NewWFQ[int](nil)
		var flows []*Flow[int]
		for i := 0; i < 4; i++ {
			flows = append(flows, w.NewFlow("f", 1))
		}
		w.classify = func(v int) *Flow[int] { return flows[v%4] }
		for i := 0; i < 64; i++ {
			w.Push(i)
		}
		var got []int
		for {
			v, ok := w.Pop()
			if !ok {
				return got
			}
			got = append(got, v)
		}
	}
	first := run()
	for trial := 0; trial < 5; trial++ {
		again := run()
		for i := range first {
			if again[i] != first[i] {
				t.Fatalf("trial %d diverged at slot %d: %d vs %d", trial, i, again[i], first[i])
			}
		}
	}
}

// TestSchedulersAllocationFree pins the bench-gate requirement: steady
// state push/pop on both disciplines allocates nothing once rings have
// grown to the working set.
func TestSchedulersAllocationFree(t *testing.T) {
	fifo := NewFIFO[uint64]()
	w := NewWFQ[uint64](nil)
	a := w.NewFlow("a", 3)
	b := w.NewFlow("b", 1)
	w.classify = func(v uint64) *Flow[uint64] {
		if v&1 == 0 {
			return a
		}
		return b
	}
	// Warm the rings past the working-set size.
	for i := uint64(0); i < 64; i++ {
		fifo.Push(i)
		w.Push(i)
	}
	for fifo.Len() > 0 {
		fifo.Pop()
	}
	for w.Len() > 0 {
		w.Pop()
	}
	var x uint64
	if allocs := testing.AllocsPerRun(200, func() {
		for i := uint64(0); i < 32; i++ {
			fifo.Push(i)
		}
		for fifo.Len() > 0 {
			v, _ := fifo.Pop()
			x += v
		}
	}); allocs != 0 {
		t.Fatalf("FIFO steady state allocates %.1f/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		for i := uint64(0); i < 32; i++ {
			w.Push(i)
		}
		for w.Len() > 0 {
			v, _ := w.Pop()
			x += v
		}
	}); allocs != 0 {
		t.Fatalf("WFQ steady state allocates %.1f/op, want 0", allocs)
	}
	_ = x
}

func BenchmarkFIFOPushPop(b *testing.B) {
	q := NewFIFO[uint64]()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Push(uint64(i))
		q.Pop()
	}
}

func BenchmarkWFQPushPop(b *testing.B) {
	w := NewWFQ[uint64](nil)
	flows := []*Flow[uint64]{w.NewFlow("a", 3), w.NewFlow("b", 1), w.NewFlow("c", 1)}
	w.classify = func(v uint64) *Flow[uint64] { return flows[v%3] }
	// Keep a standing backlog so Pop scans multiple active flows.
	for i := uint64(0); i < 96; i++ {
		w.Push(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Push(uint64(i))
		w.Pop()
	}
}
