// Package sched provides pluggable quantum-dispatch queues for the serve
// pool. A Scheduler orders the pending simulation quanta of every admitted
// job; the pool's dispatcher pushes each runnable quantum exactly once and
// pops the next quantum to hand to an idle worker.
//
// Two disciplines are provided: FIFO (the historical behaviour — global
// arrival order) and WFQ (start-time fair queueing across tenant flows).
// Schedulers only reorder dispatch; sample identity is carried by
// (trajectory, index), so any dispatch order yields bit-identical window
// digests downstream. That standing invariant is what makes the discipline
// a pure policy choice.
//
// Schedulers are not safe for concurrent use: the farm dispatcher is the
// single goroutine that pushes and pops. Both implementations are
// allocation-free at steady state (allocations happen only when a flow's
// ring grows), which keeps the 0 allocs/op dispatch path intact.
package sched

// Scheduler is a pending-quantum queue. Push enqueues a runnable item, Pop
// dequeues the next item to dispatch (ok=false when empty), Len reports the
// number of queued items. The interface matches ff.TaskQueue structurally
// so a Scheduler can drive a feedback farm's dispatcher directly.
type Scheduler[T any] interface {
	Push(T)
	Pop() (T, bool)
	Len() int
}

// ring is a growable circular buffer. Steady-state push/pop never
// allocates; the backing slice doubles only when full.
type ring[T any] struct {
	buf  []T
	head int
	n    int
}

func (r *ring[T]) push(v T) {
	if r.n == len(r.buf) {
		grown := make([]T, max(8, 2*len(r.buf)))
		for i := 0; i < r.n; i++ {
			grown[i] = r.buf[(r.head+i)%len(r.buf)]
		}
		r.buf, r.head = grown, 0
	}
	r.buf[(r.head+r.n)%len(r.buf)] = v
	r.n++
}

func (r *ring[T]) pop() (T, bool) {
	var zero T
	if r.n == 0 {
		return zero, false
	}
	v := r.buf[r.head]
	r.buf[r.head] = zero // release the reference for GC
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return v, true
}

// FIFO dispatches in global arrival order — exactly the dispatch the pool
// performed before schedulers were pluggable.
type FIFO[T any] struct {
	q ring[T]
}

// NewFIFO returns an empty FIFO scheduler.
func NewFIFO[T any]() *FIFO[T] { return &FIFO[T]{} }

// Push implements Scheduler.
func (f *FIFO[T]) Push(v T) { f.q.push(v) }

// Pop implements Scheduler.
func (f *FIFO[T]) Pop() (T, bool) { return f.q.pop() }

// Len implements Scheduler.
func (f *FIFO[T]) Len() int { return f.q.n }
