package serve_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"cwcflow/internal/core"
	"cwcflow/internal/serve"
)

// submitTenant POSTs a job under a tenant id and returns the decoded
// status plus the HTTP code (201 running, 202 queued). Any other code
// fails the test.
func submitTenant(t *testing.T, base string, spec serve.JobSpec, tenant string) (serve.Status, int) {
	t.Helper()
	body, _ := json.Marshal(spec)
	req, err := http.NewRequest(http.MethodPost, base+"/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set("X-CWC-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST /jobs: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusAccepted {
		b := new(bytes.Buffer)
		b.ReadFrom(resp.Body)
		t.Fatalf("POST /jobs (tenant %q): status %d: %s", tenant, resp.StatusCode, b)
	}
	var st serve.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decoding submit response: %v", err)
	}
	return st, resp.StatusCode
}

// fetchResult waits for a job's completion and returns its full in-order
// window sequence.
func fetchResult(t *testing.T, base, id string) []core.WindowStat {
	t.Helper()
	resp, err := http.Get(base + "/jobs/" + id + "/result?wait=true")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var res struct {
		Status      serve.Status      `json:"status"`
		FirstWindow int               `json:"first_window"`
		Windows     []core.WindowStat `json:"windows"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if res.Status.State != serve.StateDone {
		t.Fatalf("job %s ended %s (%s)", id, res.Status.State, res.Status.Error)
	}
	if res.FirstWindow != 0 {
		t.Fatalf("result ring evicted windows before %d", res.FirstWindow)
	}
	return res.Windows
}

func getTenants(t *testing.T, base string) map[string]serve.TenantStatus {
	t.Helper()
	resp, err := http.Get(base + "/tenants")
	if err != nil {
		t.Fatalf("GET /tenants: %v", err)
	}
	defer resp.Body.Close()
	var list []serve.TenantStatus
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatalf("decoding tenants: %v", err)
	}
	out := make(map[string]serve.TenantStatus, len(list))
	for _, ts := range list {
		out[ts.Name] = ts
	}
	return out
}

// TestDigestInvariantAcrossSchedulers is the standing invariant of the
// control plane: scheduling policy must never change results. Two tenants
// run the identical stat-heavy job concurrently under every combination
// of {fifo, wfq} × {1, 4 pool workers} × {equal, 10:1 weights}, and every
// single run must reproduce the golden window-sequence digest — the same
// digest the pre-tenancy farm test pins. Fair-share dispatch reorders
// quanta, never samples: results are keyed by (trajectory, index).
func TestDigestInvariantAcrossSchedulers(t *testing.T) {
	weightMixes := []struct {
		name       string
		alice, bob float64
	}{
		{"equal", 1, 1},
		{"10to1", 10, 1},
	}
	for _, scheduler := range []string{"fifo", "wfq"} {
		for _, workers := range []int{1, 4} {
			for _, mix := range weightMixes {
				name := fmt.Sprintf("%s/workers=%d/weights=%s", scheduler, workers, mix.name)
				t.Run(name, func(t *testing.T) {
					svc, err := serve.New(serve.Options{
						Workers:     workers,
						StatEngines: 2,
						Scheduler:   scheduler,
						Resolver:    noisyResolver,
						Tenants: map[string]serve.TenantConfig{
							"alice": {Weight: mix.alice},
							"bob":   {Weight: mix.bob},
						},
					})
					if err != nil {
						t.Fatal(err)
					}
					defer svc.Close()
					ts := httptest.NewServer(svc.Handler())
					defer ts.Close()

					stA, codeA := submitTenant(t, ts.URL, statHeavySpec(16), "alice")
					stB, codeB := submitTenant(t, ts.URL, statHeavySpec(16), "bob")
					if codeA != http.StatusCreated || codeB != http.StatusCreated {
						t.Fatalf("uncapped tenants should run immediately: codes %d/%d", codeA, codeB)
					}
					if stA.Tenant != "alice" || stB.Tenant != "bob" {
						t.Fatalf("tenant ids not surfaced: %q/%q", stA.Tenant, stB.Tenant)
					}
					for _, st := range []serve.Status{stA, stB} {
						windows := fetchResult(t, ts.URL, st.ID)
						if d := digestWindows(t, windows); d != goldenFarmDigest {
							t.Fatalf("digest drifted under %s for %s:\n  got  %s\n  want %s",
								name, st.Tenant, d, goldenFarmDigest)
						}
					}
				})
			}
		}
	}
}

// TestWFQSharesConverge pins the fairness property: two tenants with a
// standing backlog on a one-worker pool at weights 3:1 receive quantum
// throughput in that ratio, within 15%.
func TestWFQSharesConverge(t *testing.T) {
	svc, _ := newTestServer(t, time.Millisecond, serve.Options{
		Workers:     1,
		StatEngines: 2,
		Scheduler:   "wfq",
		Tenants: map[string]serve.TenantConfig{
			"heavy": {Weight: 3},
			"light": {Weight: 1},
		},
	})
	longSpec := serve.JobSpec{
		Model: "slow", Trajectories: 8, End: 10000, Quantum: 0.5,
		Period: 0.5, WindowSize: 64, WindowStep: 64,
	}
	jobLight, err := svc.SubmitAs(longSpec, "light")
	if err != nil {
		t.Fatal(err)
	}
	defer jobLight.Cancel()
	jobHeavy, err := svc.SubmitAs(longSpec, "heavy")
	if err != nil {
		t.Fatal(err)
	}
	defer jobHeavy.Cancel()

	// Baseline after both are admitted: quanta dispatched while one job
	// had the pool to itself must not skew the measured ratio.
	snapshot := func() (heavy, light int64) {
		for _, ts := range svc.Tenants() {
			switch ts.Name {
			case "heavy":
				heavy = ts.Quanta
			case "light":
				light = ts.Quanta
			}
		}
		return heavy, light
	}
	baseH, baseL := snapshot()
	const window = 400
	deadline := time.Now().Add(60 * time.Second)
	var dh, dl int64
	for {
		h, l := snapshot()
		dh, dl = h-baseH, l-baseL
		if dh+dl >= window {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pool dispatched only %d quanta in 60s", dh+dl)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if dl == 0 {
		t.Fatalf("light tenant starved: heavy=%d light=0", dh)
	}
	ratio := float64(dh) / float64(dl)
	if ratio < 3*0.85 || ratio > 3*1.15 {
		t.Fatalf("share ratio %.2f (heavy=%d light=%d), want 3.0 ±15%%", ratio, dh, dl)
	}
}

// TestAdmissionQueuePosition walks the 202-with-position flow: a tenant
// capped at one running job sees its second and third submissions queue
// at positions 1 and 2, positions shift as queued jobs cancel, and the
// queue head is promoted when the running job finishes.
func TestAdmissionQueuePosition(t *testing.T) {
	_, ts := newTestServer(t, 10*time.Millisecond, serve.Options{
		Tenants: map[string]serve.TenantConfig{
			"acme": {MaxActive: 1},
		},
	})
	// Distinct seeds keep the specs distinct: identical specs from one
	// tenant would attach to the first job instead of exercising the
	// queue (the content-addressed cache path, pinned in cache_test.go).
	longSpec := func(seed int64) serve.JobSpec {
		return serve.JobSpec{
			Model: "slow", Trajectories: 2, End: 100, Period: 0.5,
			WindowSize: 4, WindowStep: 4, Seed: seed,
		}
	}

	st1, code1 := submitTenant(t, ts.URL, longSpec(1), "acme")
	if code1 != http.StatusCreated || st1.State != serve.StateRunning {
		t.Fatalf("first job: code %d state %s, want 201 running", code1, st1.State)
	}
	st2, code2 := submitTenant(t, ts.URL, longSpec(2), "acme")
	if code2 != http.StatusAccepted || st2.State != serve.StateQueued || st2.QueuePosition != 1 {
		t.Fatalf("second job: code %d state %s pos %d, want 202 queued 1", code2, st2.State, st2.QueuePosition)
	}
	st3, code3 := submitTenant(t, ts.URL, longSpec(3), "acme")
	if code3 != http.StatusAccepted || st3.QueuePosition != 2 {
		t.Fatalf("third job: code %d pos %d, want 202 at position 2", code3, st3.QueuePosition)
	}

	tenants := getTenants(t, ts.URL)
	if acme := tenants["acme"]; acme.Active != 1 || acme.Queued != 2 {
		t.Fatalf("GET /tenants: acme active=%d queued=%d, want 1/2", acme.Active, acme.Queued)
	}

	// Cancelling the job at position 1 promotes position 2 to 1.
	cancelJob(t, ts.URL, st2.ID)
	if st := getStatus(t, ts.URL, st3.ID); st.State != serve.StateQueued || st.QueuePosition != 1 {
		t.Fatalf("after cancel: job3 state %s pos %d, want queued at 1", st.State, st.QueuePosition)
	}

	// Cancelling the running job dispatches the queue head.
	cancelJob(t, ts.URL, st1.ID)
	if st := getStatus(t, ts.URL, st3.ID); st.State == serve.StateQueued {
		t.Fatalf("job3 still queued (pos %d) after the running job finished", st.QueuePosition)
	}
	cancelJob(t, ts.URL, st3.ID)
}

func cancelJob(t *testing.T, base, id string) {
	t.Helper()
	req, _ := http.NewRequest(http.MethodDelete, base+"/jobs/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE /jobs/%s: %v", id, err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE /jobs/%s: status %d", id, resp.StatusCode)
	}
}

// TestQuotaExceeded429 pins the budget gate: a submission the tenant's
// sample budget cannot cover is rejected with 429 and a budget message,
// the budget frees when an admitted job finishes, and other tenants are
// unaffected throughout.
func TestQuotaExceeded429(t *testing.T) {
	svc, ts := newTestServer(t, 10*time.Millisecond, serve.Options{
		Tenants: map[string]serve.TenantConfig{
			// slowSpec costs 4 trajectories × 17 cuts = 68 samples: one
			// admitted job fits, a second overflows the budget.
			"small": {SampleBudget: 100},
		},
	})

	// Distinct seeds: a byte-identical resubmission would attach to the
	// running job (charged nothing) instead of tripping the budget gate.
	seeded := func(seed int64) serve.JobSpec {
		spec := slowSpec()
		spec.Seed = seed
		return spec
	}
	st1, _ := submitTenant(t, ts.URL, seeded(1), "small")

	body, _ := json.Marshal(seeded(2))
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/jobs", bytes.NewReader(body))
	req.Header.Set("X-CWC-Tenant", "small")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	msg := new(bytes.Buffer)
	msg.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-budget submit: status %d (%s), want 429", resp.StatusCode, msg)
	}
	if !bytes.Contains(msg.Bytes(), []byte("budget")) {
		t.Fatalf("429 body does not mention the budget: %s", msg)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "5" {
		t.Fatalf("quota 429 Retry-After = %q, want \"5\"", ra)
	}

	// The typed error is visible on the native API too.
	if _, err := svc.SubmitAs(seeded(3), "small"); !errors.Is(err, serve.ErrQuotaExceeded) {
		t.Fatalf("SubmitAs over budget: %v, want ErrQuotaExceeded", err)
	}

	// Other tenants are unaffected by one tenant's exhausted budget —
	// even submitting the spec "small" is running: cache keys are
	// tenant-scoped, so "other" gets its own job, not an attach.
	if st, code := submitTenant(t, ts.URL, seeded(1), "other"); code != http.StatusCreated || st.CacheHit {
		t.Fatalf("unrelated tenant rejected or served cross-tenant: code %d cache_hit %v", code, st.CacheHit)
	}

	// Cancelling the admitted job releases its budget synchronously.
	cancelJob(t, ts.URL, st1.ID)
	if _, code := submitTenant(t, ts.URL, seeded(4), "small"); code != http.StatusCreated {
		t.Fatalf("budget not released after cancel: submit got %d", code)
	}
}
