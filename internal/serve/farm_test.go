package serve_test

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"cwcflow/internal/core"
	"cwcflow/internal/serve"
	"cwcflow/internal/sim"
)

// noisySim is a deterministic synthetic simulator with a varied ensemble:
// three species follow per-trajectory xorshift random walks, so k-means
// and period detection operate on non-degenerate data while every
// trajectory stays bit-reproducible for a given seed.
type noisySim struct {
	t     float64
	dt    float64
	steps uint64
	rng   uint64
	state [3]int64
}

func newNoisySim(traj int, seed int64) *noisySim {
	s := &noisySim{dt: 0.25, rng: uint64(seed)*0x9e3779b97f4a7c15 + uint64(traj)*0xbf58476d1ce4e5b9 + 1}
	return s
}

func (s *noisySim) next() uint64 {
	s.rng ^= s.rng << 13
	s.rng ^= s.rng >> 7
	s.rng ^= s.rng << 17
	return s.rng
}

func (s *noisySim) Time() float64 { return s.t }
func (s *noisySim) Step() bool {
	s.t += s.dt
	s.steps++
	for i := range s.state {
		s.state[i] += int64(s.next()%7) - 3
	}
	return true
}
func (s *noisySim) NumSpecies() int     { return 3 }
func (s *noisySim) Observe(out []int64) { copy(out, s.state[:]) }
func (s *noisySim) Steps() uint64       { return s.steps }

func noisyResolver(ref core.ModelRef) (core.SimulatorFactory, error) {
	if ref.Name == "noisy" {
		return func(traj int, seed int64) (sim.Simulator, error) {
			return newNoisySim(traj, seed), nil
		}, nil
	}
	return core.FactoryFor(ref)
}

// statHeavySpec exercises every statistical engine feature: moments,
// medians, k-means clustering and period detection over a varied
// ensemble. Quantum == End keeps the (cheap) synthetic simulation to one
// delivery per trajectory, so the workload is dominated by the statistics
// stage — the stage this PR parallelises.
func statHeavySpec(traj int) serve.JobSpec {
	return serve.JobSpec{
		Model:         "noisy",
		Trajectories:  traj,
		End:           16,
		Quantum:       16,
		Period:        0.25,
		WindowSize:    16,
		WindowStep:    8,
		KMeansK:       8,
		PeriodHalfWin: 2,
		Seed:          42,
	}
}

// runToResult submits a spec over HTTP and returns the job's full
// in-order window sequence (the /result wire format) after completion.
func runToResult(t *testing.T, base string, spec serve.JobSpec) []core.WindowStat {
	t.Helper()
	st := submitJob(t, base, spec)
	resp, err := http.Get(base + "/jobs/" + st.ID + "/result?wait=true")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var res struct {
		Status      serve.Status      `json:"status"`
		FirstWindow int               `json:"first_window"`
		Windows     []core.WindowStat `json:"windows"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if res.Status.State != serve.StateDone {
		t.Fatalf("job ended %s (%s)", res.Status.State, res.Status.Error)
	}
	if res.FirstWindow != 0 {
		t.Fatalf("result ring evicted windows before %d", res.FirstWindow)
	}
	return res.Windows
}

// digestWindows canonicalises a window sequence as JSON (the wire format
// clients decode) and hashes it.
func digestWindows(t *testing.T, windows []core.WindowStat) string {
	t.Helper()
	raw, err := json.Marshal(windows)
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:])
}

// goldenFarmDigest pins the exact WindowStat sequence (wire format) of
// statHeavySpec(16) on the noisy model: ordered reassembly must make the
// stream identical whatever the stat farm width, across releases.
const goldenFarmDigest = "5503a34d95b7a5b4b3f7acb23ebf481a29df2ba1ee091157dac71c1117ca20d8"

// TestDeterministicAcrossStatEngineCounts is the tentpole correctness
// check: the same job produces the identical WindowStat sequence with 1
// and with 4 stat engines (ordered reassembly), pinned by a golden digest.
func TestDeterministicAcrossStatEngineCounts(t *testing.T) {
	digests := make(map[int]string)
	for _, engines := range []int{1, 4} {
		svc, err := serve.New(serve.Options{
			Workers:     4,
			StatEngines: engines,
			Resolver:    noisyResolver,
		})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(svc.Handler())
		windows := runToResult(t, ts.URL, statHeavySpec(16))
		if len(windows) == 0 {
			t.Fatalf("engines=%d: no windows", engines)
		}
		digests[engines] = digestWindows(t, windows)
		ts.Close()
		svc.Close()
	}
	if digests[1] != digests[4] {
		t.Fatalf("window sequence differs across farm widths:\n  1 engine:  %s\n  4 engines: %s", digests[1], digests[4])
	}
	if digests[1] != goldenFarmDigest {
		t.Fatalf("window sequence digest drifted:\n  got  %s\n  want %s", digests[1], goldenFarmDigest)
	}
}

// BenchmarkServeMultiJob measures the service's end-to-end analysis
// throughput (windows/sec) on a k-means + period-detection heavy workload:
// 4 concurrent jobs on a 4-worker pool, with the shared stat farm at
// width 1 vs 4. This is the PR's headline number: the farm parallelises
// the statistics stage across tenants instead of serialising each job on
// one goroutine.
func BenchmarkServeMultiJob(b *testing.B) {
	for _, engines := range []int{1, 4} {
		b.Run(benchName(engines), func(b *testing.B) {
			svc, err := serve.New(serve.Options{
				Workers:     4,
				StatEngines: engines,
				Resolver:    noisyResolver,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer svc.Close()
			const jobsPerRound = 4
			spec := statHeavySpec(1024)
			totalWindows := 0
			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				jobs := make([]*serve.Job, 0, jobsPerRound)
				for j := 0; j < jobsPerRound; j++ {
					s := spec
					s.Seed = int64(i*jobsPerRound + j)
					job, err := svc.Submit(s)
					if err != nil {
						b.Fatal(err)
					}
					jobs = append(jobs, job)
				}
				for _, job := range jobs {
					<-job.Done()
					st := job.Status()
					if st.State != serve.StateDone {
						b.Fatalf("job ended %s (%s)", st.State, st.Error)
					}
					totalWindows += st.Progress.Windows
				}
			}
			elapsed := time.Since(start)
			b.ReportMetric(float64(totalWindows)/elapsed.Seconds(), "windows/sec")
		})
	}
}

func benchName(engines int) string {
	if engines == 1 {
		return "engines=1"
	}
	return "engines=4"
}
