package gillespie

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
)

// RNG is the SSA engines' random source: a PCG DXSM generator (128-bit
// LCG state, 64-bit multiplier output hash) with fully exportable state.
//
// It replaces math/rand.Rand, whose ~5KB lagged-Fibonacci state cannot be
// marshalled, because the durability layer needs to checkpoint a live
// trajectory mid-run and later resume it bit-identically: the entire
// generator is 16 bytes of state, captured by MarshalBinary and restored
// by UnmarshalBinary, and the stream after a restore is exactly the
// stream the original generator would have produced.
//
// The generator is self-contained (no dependency on math/rand/v2's
// unexported details), so the golden trajectory hashes pinned in
// golden_test.go stay stable across Go releases.
type RNG struct {
	hi, lo uint64 // 128-bit LCG state
}

// 128-bit LCG constants (multiplier from PCG's default 128-bit stream,
// increment an arbitrary odd constant).
const (
	rngMulHi = 2549297995355413924
	rngMulLo = 4865540595714422341
	rngIncHi = 6364136223846793005
	rngIncLo = 1442695040888963407
)

// NewRNG returns a generator seeded from seed. The 64-bit seed is
// expanded into the 128-bit state with two rounds of splitmix64, so
// nearby seeds (the per-trajectory BaseSeed+traj scheme) land in
// uncorrelated streams.
func NewRNG(seed int64) *RNG {
	r := &RNG{}
	s := uint64(seed)
	r.hi = splitmix64(&s)
	r.lo = splitmix64(&s) | 1
	// Warm the state through one step so the first output already mixes
	// both words.
	r.Uint64()
	return r
}

// splitmix64 is the standard seed expander.
func splitmix64(s *uint64) uint64 {
	*s += 0x9e3779b97f4a7c15
	z := *s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 advances the LCG one step and hashes the state into 64 output
// bits (the DXSM "double xorshift multiply" output function).
func (r *RNG) Uint64() uint64 {
	// state = state*mul + inc, in 128 bits.
	hi, lo := bits.Mul64(r.lo, rngMulLo)
	hi += r.hi*rngMulLo + r.lo*rngMulHi
	var c uint64
	lo, c = bits.Add64(lo, rngIncLo, 0)
	hi, _ = bits.Add64(hi, rngIncHi, c)
	r.hi, r.lo = hi, lo

	const cheapMul = 0xda942042e4dd58b5
	hi ^= hi >> 32
	hi *= cheapMul
	hi ^= hi >> 48
	hi *= lo | 1
	return hi
}

// Float64 returns a uniform draw in [0, 1) with 53 random bits.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// ExpFloat64 returns an Exp(1) draw by inversion: -ln(1-U). Inversion is
// chosen over the ziggurat because it consumes exactly one uniform per
// draw and carries no rejection state — a marshalled generator resumes
// mid-trajectory with a bit-identical stream.
func (r *RNG) ExpFloat64() float64 {
	return -math.Log1p(-r.Float64())
}

// rngStateSize is the marshalled size: two 64-bit state words.
const rngStateSize = 16

// MarshalBinary captures the complete generator state (16 bytes).
func (r *RNG) MarshalBinary() ([]byte, error) {
	out := make([]byte, rngStateSize)
	binary.LittleEndian.PutUint64(out[0:8], r.hi)
	binary.LittleEndian.PutUint64(out[8:16], r.lo)
	return out, nil
}

// UnmarshalBinary restores a state captured by MarshalBinary.
func (r *RNG) UnmarshalBinary(data []byte) error {
	if len(data) != rngStateSize {
		return fmt.Errorf("gillespie: RNG state is %d bytes, want %d", len(data), rngStateSize)
	}
	r.hi = binary.LittleEndian.Uint64(data[0:8])
	r.lo = binary.LittleEndian.Uint64(data[8:16])
	return nil
}
