// Package gillespie implements the Gillespie stochastic simulation
// algorithm (SSA) for flat reaction networks over dense state vectors.
//
// This is the plain-Gillespie baseline of the paper (what tools like
// StochKit implement): the CWC engine in the cwc package generalises it to
// nested-compartment terms, at the cost of tree matching at every step.
// Both engines expose the same stepping contract so the simulation layer
// (package sim) can drive either.
//
// Two exact SSA variants are provided: the direct method (linear scan) and
// the Gibson–Bruck next-reaction method (dependency graph + indexed
// priority queue), which is asymptotically faster for large, loosely
// coupled networks.
package gillespie

import (
	"errors"
	"fmt"
	"math/rand"
)

// Change is one stoichiometric effect of a reaction: species index and
// count delta.
type Change struct {
	Species int
	Delta   int64
}

// Reaction is one channel of the network: a propensity function over the
// state vector plus the state changes applied when it fires.
type Reaction struct {
	Name    string
	Changes []Change
	// Rate returns the reaction propensity for the given state. It must be
	// non-negative and must depend only on state.
	Rate func(state []int64) float64
	// Reads lists the species indices the Rate function reads. It is
	// required only by the next-reaction method (dependency graph); the
	// mass-action constructors fill it automatically.
	Reads []int
}

// System is a complete reaction network.
type System struct {
	Name      string
	Species   []string
	Reactions []Reaction
	Init      []int64
}

// Validate checks structural consistency.
func (s *System) Validate() error {
	if len(s.Species) == 0 {
		return errors.New("gillespie: system has no species")
	}
	if len(s.Init) != len(s.Species) {
		return fmt.Errorf("gillespie: init vector has %d entries for %d species", len(s.Init), len(s.Species))
	}
	for _, x := range s.Init {
		if x < 0 {
			return errors.New("gillespie: negative initial count")
		}
	}
	if len(s.Reactions) == 0 {
		return errors.New("gillespie: system has no reactions")
	}
	for i, r := range s.Reactions {
		if r.Rate == nil {
			return fmt.Errorf("gillespie: reaction %d (%s) has nil rate", i, r.Name)
		}
		for _, c := range r.Changes {
			if c.Species < 0 || c.Species >= len(s.Species) {
				return fmt.Errorf("gillespie: reaction %d (%s) touches unknown species %d", i, r.Name, c.Species)
			}
		}
	}
	return nil
}

// SpeciesIndex returns the index of the named species, or -1.
func (s *System) SpeciesIndex(name string) int {
	for i, n := range s.Species {
		if n == name {
			return i
		}
	}
	return -1
}

// MassAction builds a mass-action reaction with rate constant k:
// propensity = k * prod_i C(x_i, r_i) over the reactant stoichiometry.
// reactants and products map species index → stoichiometric coefficient.
func MassAction(name string, k float64, reactants, products map[int]int64) Reaction {
	type req struct {
		sp int
		n  int64
	}
	reqs := make([]req, 0, len(reactants))
	for sp, n := range reactants {
		reqs = append(reqs, req{sp, n})
	}
	// Deterministic order for reproducibility of float products.
	for i := 1; i < len(reqs); i++ {
		for j := i; j > 0 && reqs[j-1].sp > reqs[j].sp; j-- {
			reqs[j-1], reqs[j] = reqs[j], reqs[j-1]
		}
	}
	var changes []Change
	var reads []int
	net := make(map[int]int64)
	for sp, n := range reactants {
		net[sp] -= n
	}
	for sp, n := range products {
		net[sp] += n
	}
	for sp := range net {
		reads = append(reads, sp)
	}
	for i := 1; i < len(reads); i++ {
		for j := i; j > 0 && reads[j-1] > reads[j]; j-- {
			reads[j-1], reads[j] = reads[j], reads[j-1]
		}
	}
	for _, sp := range reads {
		if net[sp] != 0 {
			changes = append(changes, Change{Species: sp, Delta: net[sp]})
		}
	}
	rateReads := make([]int, 0, len(reqs))
	for _, r := range reqs {
		rateReads = append(rateReads, r.sp)
	}
	return Reaction{
		Name:    name,
		Changes: changes,
		Reads:   rateReads,
		Rate: func(state []int64) float64 {
			p := k
			for _, r := range reqs {
				have := state[r.sp]
				if have < r.n {
					return 0
				}
				for j := int64(0); j < r.n; j++ {
					p *= float64(have-j) / float64(j+1)
				}
			}
			return p
		},
	}
}

// Custom builds a reaction with an arbitrary propensity function. reads
// must list every species index the rate depends on (for the next-reaction
// method's dependency graph).
func Custom(name string, changes []Change, reads []int, rate func(state []int64) float64) Reaction {
	return Reaction{Name: name, Changes: changes, Reads: reads, Rate: rate}
}

// Direct is the Gillespie direct method: at each step it recomputes all
// propensities, samples the waiting time from Exp(total) and the firing
// channel proportionally to its propensity.
type Direct struct {
	sys   *System
	state []int64
	now   float64
	rng   *rand.Rand
	props []float64
	steps uint64
}

// NewDirect returns a direct-method engine with a private copy of the
// initial state and a private RNG.
func NewDirect(sys *System, seed int64) (*Direct, error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	return &Direct{
		sys:   sys,
		state: append([]int64(nil), sys.Init...),
		rng:   rand.New(rand.NewSource(seed)),
		props: make([]float64, len(sys.Reactions)),
	}, nil
}

// Time returns the current simulation time.
func (d *Direct) Time() float64 { return d.now }

// Steps returns the number of reactions fired.
func (d *Direct) Steps() uint64 { return d.steps }

// NumSpecies returns the dimension of the observable state.
func (d *Direct) NumSpecies() int { return len(d.sys.Species) }

// Observe copies the current state into out.
func (d *Direct) Observe(out []int64) { copy(out, d.state) }

// State returns the live state vector (do not mutate).
func (d *Direct) State() []int64 { return d.state }

// Step fires one reaction, returning false in a dead state.
func (d *Direct) Step() bool {
	total := 0.0
	for i, r := range d.sys.Reactions {
		p := r.Rate(d.state)
		if p < 0 {
			panic(fmt.Sprintf("gillespie: reaction %q negative propensity %g", r.Name, p))
		}
		d.props[i] = p
		total += p
	}
	if total <= 0 {
		return false
	}
	d.now += d.rng.ExpFloat64() / total
	target := d.rng.Float64() * total
	acc := 0.0
	idx := len(d.props) - 1
	for i, p := range d.props {
		acc += p
		if target < acc {
			idx = i
			break
		}
	}
	for _, c := range d.sys.Reactions[idx].Changes {
		d.state[c.Species] += c.Delta
		if d.state[c.Species] < 0 {
			panic(fmt.Sprintf("gillespie: species %s driven negative by %q", d.sys.Species[c.Species], d.sys.Reactions[idx].Name))
		}
	}
	d.steps++
	return true
}

// AdvanceTo steps until the simulation time reaches t or the system dies.
func (d *Direct) AdvanceTo(t float64) (fired uint64, live bool) {
	start := d.steps
	for d.now < t {
		if !d.Step() {
			return d.steps - start, false
		}
	}
	return d.steps - start, true
}
