// Package gillespie implements the Gillespie stochastic simulation
// algorithm (SSA) for flat reaction networks over dense state vectors.
//
// This is the plain-Gillespie baseline of the paper (what tools like
// StochKit implement): the CWC engine in the cwc package generalises it to
// nested-compartment terms, at the cost of tree matching at every step.
// Both engines expose the same stepping contract so the simulation layer
// (package sim) can drive either.
//
// Two exact SSA variants are provided: the direct method (dependency-driven
// partial propensity updates over a compiled reaction program) and the
// Gibson–Bruck next-reaction method (dependency graph + indexed priority
// queue), which is asymptotically faster for large, loosely coupled
// networks.
//
// Both engines share a compiled form of the network (see program): the
// mass-action reactions built by MassAction are flattened into packed
// stoichiometry arrays evaluated by one loop over flat data — no closure
// call, no per-reaction pointer chasing — while Custom reactions keep
// their closures as the fallback path.
package gillespie

import (
	"errors"
	"fmt"
	"sync"
)

// Change is one stoichiometric effect of a reaction: species index and
// count delta.
type Change struct {
	Species int
	Delta   int64
}

// massAction carries the packed kinetics of an elementary reaction so the
// compiled program can evaluate its propensity without going through the
// closure. reqs is the reactant stoichiometry in ascending species order —
// the same order the closure multiplies in, so both paths produce
// bit-identical floats.
type massAction struct {
	k    float64
	reqs []Change
}

// Reaction is one channel of the network: a propensity function over the
// state vector plus the state changes applied when it fires.
type Reaction struct {
	Name    string
	Changes []Change
	// Rate returns the reaction propensity for the given state. It must be
	// non-negative and must depend only on state.
	Rate func(state []int64) float64
	// Reads lists the species indices the Rate function reads. It drives
	// the dependency graphs of both engines (which propensities to refresh
	// after a firing); the mass-action constructor fills it automatically,
	// and a reaction with a nil Reads set is conservatively assumed to
	// depend on every species.
	Reads []int

	// ma, when non-nil, marks the reaction as elementary mass-action and
	// lets compile emit it into the packed kernel instead of keeping the
	// closure on the hot path.
	ma *massAction
}

// System is a complete reaction network.
//
// A System is compiled (flattened into the packed program both engines
// execute) at most once, lazily, when the first engine is constructed from
// it; it must not be modified afterwards. Sharing one System across many
// engines — the per-trajectory factories do — shares the compilation.
type System struct {
	Name      string
	Species   []string
	Reactions []Reaction
	Init      []int64

	compileOnce sync.Once
	prog        *program
	compileErr  error
}

// compiled returns the system's compiled program, compiling on first use.
func (s *System) compiled() (*program, error) {
	s.compileOnce.Do(func() {
		s.prog, s.compileErr = compile(s)
	})
	return s.prog, s.compileErr
}

// Validate checks structural consistency.
func (s *System) Validate() error {
	if len(s.Species) == 0 {
		return errors.New("gillespie: system has no species")
	}
	if len(s.Init) != len(s.Species) {
		return fmt.Errorf("gillespie: init vector has %d entries for %d species", len(s.Init), len(s.Species))
	}
	for _, x := range s.Init {
		if x < 0 {
			return errors.New("gillespie: negative initial count")
		}
	}
	if len(s.Reactions) == 0 {
		return errors.New("gillespie: system has no reactions")
	}
	for i, r := range s.Reactions {
		if r.Rate == nil && r.ma == nil {
			return fmt.Errorf("gillespie: reaction %d (%s) has nil rate", i, r.Name)
		}
		for _, c := range r.Changes {
			if c.Species < 0 || c.Species >= len(s.Species) {
				return fmt.Errorf("gillespie: reaction %d (%s) touches unknown species %d", i, r.Name, c.Species)
			}
		}
	}
	return nil
}

// SpeciesIndex returns the index of the named species, or -1.
func (s *System) SpeciesIndex(name string) int {
	for i, n := range s.Species {
		if n == name {
			return i
		}
	}
	return -1
}

// MassAction builds a mass-action reaction with rate constant k:
// propensity = k * prod_i C(x_i, r_i) over the reactant stoichiometry.
// reactants and products map species index → stoichiometric coefficient.
func MassAction(name string, k float64, reactants, products map[int]int64) Reaction {
	reqs := make([]Change, 0, len(reactants))
	for sp, n := range reactants {
		reqs = append(reqs, Change{Species: sp, Delta: n})
	}
	// Deterministic order for reproducibility of float products.
	for i := 1; i < len(reqs); i++ {
		for j := i; j > 0 && reqs[j-1].Species > reqs[j].Species; j-- {
			reqs[j-1], reqs[j] = reqs[j], reqs[j-1]
		}
	}
	var changes []Change
	var reads []int
	net := make(map[int]int64)
	for sp, n := range reactants {
		net[sp] -= n
	}
	for sp, n := range products {
		net[sp] += n
	}
	for sp := range net {
		reads = append(reads, sp)
	}
	for i := 1; i < len(reads); i++ {
		for j := i; j > 0 && reads[j-1] > reads[j]; j-- {
			reads[j-1], reads[j] = reads[j], reads[j-1]
		}
	}
	for _, sp := range reads {
		if net[sp] != 0 {
			changes = append(changes, Change{Species: sp, Delta: net[sp]})
		}
	}
	rateReads := make([]int, 0, len(reqs))
	for _, r := range reqs {
		rateReads = append(rateReads, r.Species)
	}
	ma := &massAction{k: k, reqs: reqs}
	return Reaction{
		Name:    name,
		Changes: changes,
		Reads:   rateReads,
		ma:      ma,
		Rate: func(state []int64) float64 {
			return ma.eval(state)
		},
	}
}

// eval is the closure-path evaluation of a mass-action propensity; the
// compiled kernel in program.eval performs the identical float operations
// in the identical order over the packed arrays.
func (m *massAction) eval(state []int64) float64 {
	p := m.k
	for _, r := range m.reqs {
		have := state[r.Species]
		if have < r.Delta {
			return 0
		}
		for j := int64(0); j < r.Delta; j++ {
			p *= float64(have-j) / float64(j+1)
		}
	}
	return p
}

// Custom builds a reaction with an arbitrary propensity function. reads
// must list every species index the rate depends on (for the engines'
// dependency graphs); nil means "depends on everything".
func Custom(name string, changes []Change, reads []int, rate func(state []int64) float64) Reaction {
	return Reaction{Name: name, Changes: changes, Reads: reads, Rate: rate}
}

// program is the compiled form of a System shared by both engines: the
// mass-action reactions flattened into packed stoichiometry arrays (one
// contiguous segment per reaction), the Custom closures kept as fallback,
// every reaction's state changes flattened likewise, and the static
// dependency graph (after reaction j fires, which propensities change).
type program struct {
	sys *System

	// Mass-action kernel: reaction j's reactants are
	// (reqSp[i], reqN[i]) for i in [reqOff[j], reqOff[j+1]).
	// A negative k marks a non-mass-action reaction (see custom).
	k      []float64
	reqOff []int32
	reqSp  []int32
	reqN   []int64

	// custom[j] is the closure fallback for non-mass-action reactions
	// (nil for compiled ones).
	custom []func(state []int64) float64

	// Flattened state changes: reaction j applies
	// state[chgSp[i]] += chgDelta[i] for i in [chgOff[j], chgOff[j+1]).
	chgOff   []int32
	chgSp    []int32
	chgDelta []int64

	// deps[j] lists the reactions whose propensity must be refreshed after
	// reaction j fires (always including j itself), in the deterministic
	// order both engines rely on.
	deps [][]int
}

// compile validates the system and flattens it into a program.
func compile(sys *System) (*program, error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	n := len(sys.Reactions)
	p := &program{
		sys:    sys,
		k:      make([]float64, n),
		reqOff: make([]int32, n+1),
		custom: make([]func([]int64) float64, n),
		chgOff: make([]int32, n+1),
	}
	for j, r := range sys.Reactions {
		if r.ma != nil {
			p.k[j] = r.ma.k
			for _, rq := range r.ma.reqs {
				p.reqSp = append(p.reqSp, int32(rq.Species))
				p.reqN = append(p.reqN, rq.Delta)
			}
		} else {
			p.k[j] = -1
			p.custom[j] = r.Rate
		}
		p.reqOff[j+1] = int32(len(p.reqSp))
		for _, c := range r.Changes {
			p.chgSp = append(p.chgSp, int32(c.Species))
			p.chgDelta = append(p.chgDelta, c.Delta)
		}
		p.chgOff[j+1] = int32(len(p.chgSp))
	}
	deps, err := buildDeps(sys)
	if err != nil {
		return nil, err
	}
	p.deps = deps
	return p, nil
}

// buildDeps computes the reaction dependency graph: deps[j] is the set of
// reactions reading at least one species changed by reaction j, plus j
// itself, in the deterministic order (self first, then readers of each
// changed species in reaction order) that the next-reaction method's RNG
// stream depends on.
func buildDeps(sys *System) ([][]int, error) {
	// readers[s] = reactions whose propensity reads species s.
	readers := make([][]int, len(sys.Species))
	for j, r := range sys.Reactions {
		reads := r.Reads
		if reads == nil {
			for s := range sys.Species {
				readers[s] = append(readers[s], j)
			}
			continue
		}
		for _, s := range reads {
			if s < 0 || s >= len(sys.Species) {
				return nil, fmt.Errorf("gillespie: reaction %d (%s) reads unknown species %d", j, r.Name, s)
			}
			readers[s] = append(readers[s], j)
		}
	}
	deps := make([][]int, len(sys.Reactions))
	seen := make([]bool, len(sys.Reactions))
	for i, r := range sys.Reactions {
		seen[i] = true // always update the fired reaction
		d := []int{i}
		for _, c := range r.Changes {
			for _, j := range readers[c.Species] {
				if !seen[j] {
					seen[j] = true
					d = append(d, j)
				}
			}
		}
		for _, j := range d {
			seen[j] = false
		}
		deps[i] = d
	}
	return deps, nil
}

// eval computes reaction j's propensity: the packed mass-action kernel for
// compiled reactions, the closure for Custom ones. The kernel performs the
// same float operations in the same order as the MassAction closure, so
// trajectories are bit-identical either way.
func (p *program) eval(j int, state []int64) float64 {
	if f := p.custom[j]; f != nil {
		return f(state)
	}
	prop := p.k[j]
	for i := p.reqOff[j]; i < p.reqOff[j+1]; i++ {
		have := state[p.reqSp[i]]
		n := p.reqN[i]
		if have < n {
			return 0
		}
		for m := int64(0); m < n; m++ {
			prop *= float64(have-m) / float64(m+1)
		}
	}
	return prop
}

// apply fires reaction j's state changes, panicking if a species count is
// driven negative (a modelling error).
func (p *program) apply(j int, state []int64) {
	for i := p.chgOff[j]; i < p.chgOff[j+1]; i++ {
		sp := p.chgSp[i]
		state[sp] += p.chgDelta[i]
		if state[sp] < 0 {
			panic(fmt.Sprintf("gillespie: species %s driven negative by %q", p.sys.Species[sp], p.sys.Reactions[j].Name))
		}
	}
}

// Direct is the Gillespie direct method with dependency-driven propensity
// updates: propensities are computed once up front and, after each firing,
// only the reactions reading a changed species are re-evaluated (through
// the compiled program). The propensity total is re-summed exactly (in
// index order, matching the classic full-recompute float stream) every
// ResumInterval steps — every step by default, which keeps trajectories
// bit-identical to the textbook O(R)-per-step implementation while still
// skipping all the redundant rate evaluations.
type Direct struct {
	sys   *System
	prog  *program
	state []int64
	now   float64
	rng   *RNG
	props []float64
	total float64
	steps uint64

	resumEvery int
	sinceResum int
}

// DirectOption configures NewDirect.
type DirectOption func(*Direct)

// WithResumInterval sets how often the propensity total is exactly
// re-summed from the per-reaction propensities. The default (1) re-sums
// every step: the running total is then always the exact index-order sum
// and trajectories are bit-identical to a full per-step recompute. Larger
// intervals keep a running total between re-summations — O(deps) instead
// of O(R) per step, worthwhile for very large networks — at the cost of
// float drift that may perturb firing times by a few ULPs between
// re-summations.
func WithResumInterval(n int) DirectOption {
	return func(d *Direct) {
		if n < 1 {
			n = 1
		}
		d.resumEvery = n
	}
}

// NewDirect returns a direct-method engine with a private copy of the
// initial state and a private RNG.
func NewDirect(sys *System, seed int64, opts ...DirectOption) (*Direct, error) {
	prog, err := sys.compiled()
	if err != nil {
		return nil, err
	}
	d := &Direct{
		sys:        sys,
		prog:       prog,
		state:      append([]int64(nil), sys.Init...),
		rng:        NewRNG(seed),
		props:      make([]float64, len(sys.Reactions)),
		resumEvery: 1,
	}
	for _, o := range opts {
		o(d)
	}
	for j := range sys.Reactions {
		p := prog.eval(j, d.state)
		if p < 0 {
			panic(fmt.Sprintf("gillespie: reaction %q negative propensity %g", sys.Reactions[j].Name, p))
		}
		d.props[j] = p
	}
	d.resum()
	return d, nil
}

// resum recomputes the propensity total exactly, summing in index order —
// the same order the classic per-step scan accumulated in.
func (d *Direct) resum() {
	total := 0.0
	for _, p := range d.props {
		total += p
	}
	d.total = total
	d.sinceResum = 0
}

// Time returns the current simulation time.
func (d *Direct) Time() float64 { return d.now }

// Steps returns the number of reactions fired.
func (d *Direct) Steps() uint64 { return d.steps }

// NumSpecies returns the dimension of the observable state.
func (d *Direct) NumSpecies() int { return len(d.sys.Species) }

// Observe copies the current state into out.
func (d *Direct) Observe(out []int64) { copy(out, d.state) }

// State returns the live state vector (do not mutate).
func (d *Direct) State() []int64 { return d.state }

// Step fires one reaction, returning false in a dead state.
func (d *Direct) Step() bool {
	if d.sinceResum >= d.resumEvery {
		d.resum()
	}
	total := d.total
	if total <= 0 {
		return false
	}
	prevNow := d.now
	d.now += d.rng.ExpFloat64() / total
	target := d.rng.Float64() * total

	idx := selectChannel(d.props, target)
	if idx < 0 {
		// Only reachable with a relaxed resummation interval, when the
		// drifted running total is positive but every propensity is
		// zero: the system is dead. Undo the bogus waiting time drawn
		// from the drifted total — death froze the clock at the last
		// real firing.
		d.now = prevNow
		d.resum()
		return false
	}

	d.prog.apply(idx, d.state)
	d.steps++

	// Dependency-driven partial update: only the reactions reading a
	// species changed by idx are re-evaluated.
	for _, j := range d.prog.deps[idx] {
		old := d.props[j]
		p := d.prog.eval(j, d.state)
		if p < 0 {
			panic(fmt.Sprintf("gillespie: reaction %q negative propensity %g", d.sys.Reactions[j].Name, p))
		}
		d.props[j] = p
		d.total += p - old
	}
	d.sinceResum++
	return true
}

// selectChannel picks the reaction whose cumulative-propensity interval
// contains target (the direct method's linear scan). When float rounding
// pushes target to (or past) the accumulated sum — possible because the
// RNG draw multiplies by a total summed separately — it falls back to the
// last channel with positive propensity, never a zero-propensity one.
// It returns -1 only when every propensity is zero.
func selectChannel(props []float64, target float64) int {
	acc := 0.0
	for i, p := range props {
		acc += p
		if target < acc {
			return i
		}
	}
	for i := len(props) - 1; i >= 0; i-- {
		if props[i] > 0 {
			return i
		}
	}
	return -1
}

// AdvanceTo steps until the simulation time reaches t or the system dies.
func (d *Direct) AdvanceTo(t float64) (fired uint64, live bool) {
	start := d.steps
	for d.now < t {
		if !d.Step() {
			return d.steps - start, false
		}
	}
	return d.steps - start, true
}
