package gillespie_test

import (
	"hash/fnv"
	"math"
	"testing"

	"cwcflow/internal/gillespie"
	"cwcflow/internal/models"
)

// trajectoryHash folds an engine's full (time, state) stream into one
// FNV-64 digest: any change to a firing time, channel choice or state
// update anywhere in the run changes the hash.
func trajectoryHash(t *testing.T, e interface {
	Time() float64
	Step() bool
	NumSpecies() int
	Observe([]int64)
}, maxSteps int) uint64 {
	t.Helper()
	h := fnv.New64a()
	buf := make([]byte, 8)
	state := make([]int64, e.NumSpecies())
	put := func(u uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(u >> (8 * i))
		}
		h.Write(buf)
	}
	for s := 0; s < maxSteps; s++ {
		if !e.Step() {
			put(^uint64(0)) // dead-state marker
			break
		}
		put(math.Float64bits(e.Time()))
		e.Observe(state)
		for _, x := range state {
			put(uint64(x))
		}
	}
	return h.Sum64()
}

// goldenDirect pins the exact trajectories of the direct method: same
// seed, same reaction channels, bit-identical firing times and states.
// The constants were regenerated once for the PCG RNG swap (the
// snapshotable gillespie.RNG replacing math/rand, PR 5) and must stay
// stable from here on: any change to stepping, channel selection or the
// generator breaks durable-store resume of pre-change checkpoints.
func TestDirectGoldenTrajectories(t *testing.T) {
	cases := []struct {
		name  string
		sys   *gillespie.System
		seed  int64
		steps int
		want  uint64
	}{
		{"neurospora", models.Neurospora(50), 1, 4000, 0x16f77555d2976d11},
		{"neurospora-seed9", models.Neurospora(50), 9, 4000, 0xad511b9f3885481c},
		{"lotka-volterra", models.LotkaVolterra(), 3, 4000, 0xa1e6c5c7704cbdd3},
		{"sir", models.SIR(1000, 10, 1.5, 0.5), 4, 4000, 0x2963521bf4d812cf},
		{"schlogl", models.Schlogl(), 5, 4000, 0x6a8548bf8fcf9b17},
		{"enzyme", models.Enzyme(20, 200), 6, 4000, 0x1c2dbb776897f2cb},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d, err := gillespie.NewDirect(tc.sys, tc.seed)
			if err != nil {
				t.Fatal(err)
			}
			if got := trajectoryHash(t, d, tc.steps); got != tc.want {
				t.Fatalf("trajectory hash = %#x, want %#x (direct method no longer bit-identical)", got, tc.want)
			}
		})
	}
}

// TestNextReactionGoldenTrajectories pins the NRM's trajectories
// (constants regenerated once for the PCG RNG swap, PR 5).
func TestNextReactionGoldenTrajectories(t *testing.T) {
	cases := []struct {
		name  string
		sys   *gillespie.System
		seed  int64
		steps int
		want  uint64
	}{
		{"neurospora", models.Neurospora(50), 1, 4000, 0x44f5851d4ae64fc0},
		{"enzyme", models.Enzyme(20, 200), 6, 4000, 0xf8fa6ccf37b3dec8},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			nr, err := gillespie.NewNextReaction(tc.sys, tc.seed)
			if err != nil {
				t.Fatal(err)
			}
			if got := trajectoryHash(t, nr, tc.steps); got != tc.want {
				t.Fatalf("trajectory hash = %#x, want %#x (NRM no longer bit-identical)", got, tc.want)
			}
		})
	}
}
