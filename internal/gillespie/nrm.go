package gillespie

import (
	"fmt"
	"math"
)

// NextReaction is the Gibson–Bruck next-reaction method: an exact SSA that
// keeps one tentative absolute firing time per reaction in an indexed
// priority queue and, after each firing, updates only the reactions whose
// propensities actually changed (via a static dependency graph). For
// networks with many loosely coupled channels it replaces the O(R) per-step
// scan of the direct method with O(deps · log R).
type NextReaction struct {
	sys   *System
	prog  *program
	state []int64
	now   float64
	rng   *RNG
	steps uint64

	props []float64
	times []float64 // tentative absolute firing time per reaction

	heap []int // reaction indices ordered by times
	pos  []int // reaction -> heap position
}

// NewNextReaction compiles the network (packed mass-action kernel +
// dependency graph) and initialises the queue. Every reaction should
// declare its Reads set (the mass-action constructors do); a reaction with
// a nil Reads set is conservatively assumed to depend on every species.
func NewNextReaction(sys *System, seed int64) (*NextReaction, error) {
	prog, err := sys.compiled()
	if err != nil {
		return nil, err
	}
	n := len(sys.Reactions)
	nr := &NextReaction{
		sys:   sys,
		prog:  prog,
		state: append([]int64(nil), sys.Init...),
		rng:   NewRNG(seed),
		props: make([]float64, n),
		times: make([]float64, n),
		heap:  make([]int, n),
		pos:   make([]int, n),
	}

	for i := range sys.Reactions {
		nr.props[i] = prog.eval(i, nr.state)
		nr.times[i] = nr.drawTime(0, nr.props[i])
		nr.heap[i] = i
		nr.pos[i] = i
	}
	for i := n/2 - 1; i >= 0; i-- {
		nr.siftDown(i)
	}
	return nr, nil
}

func (nr *NextReaction) drawTime(now, prop float64) float64 {
	if prop <= 0 {
		return math.Inf(1)
	}
	return now + nr.rng.ExpFloat64()/prop
}

// Time returns the current simulation time.
func (nr *NextReaction) Time() float64 { return nr.now }

// Steps returns the number of reactions fired.
func (nr *NextReaction) Steps() uint64 { return nr.steps }

// NumSpecies returns the dimension of the observable state.
func (nr *NextReaction) NumSpecies() int { return len(nr.sys.Species) }

// Observe copies the current state into out.
func (nr *NextReaction) Observe(out []int64) { copy(out, nr.state) }

// State returns the live state vector (do not mutate).
func (nr *NextReaction) State() []int64 { return nr.state }

// Step fires the next reaction, returning false in a dead state.
func (nr *NextReaction) Step() bool {
	mu := nr.heap[0]
	tmu := nr.times[mu]
	if math.IsInf(tmu, 1) {
		return false
	}
	nr.now = tmu
	nr.prog.apply(mu, nr.state)
	nr.steps++

	for _, j := range nr.prog.deps[mu] {
		old := nr.props[j]
		p := nr.prog.eval(j, nr.state)
		if p < 0 {
			panic(fmt.Sprintf("gillespie: reaction %q negative propensity %g", nr.sys.Reactions[j].Name, p))
		}
		nr.props[j] = p
		switch {
		case j == mu:
			nr.times[j] = nr.drawTime(nr.now, p)
		case p <= 0:
			nr.times[j] = math.Inf(1)
		case old <= 0 || math.IsInf(nr.times[j], 1):
			// Reaction (re)activated: draw a fresh exponential.
			nr.times[j] = nr.drawTime(nr.now, p)
		default:
			// Gibson–Bruck time reuse: rescale the remaining wait.
			nr.times[j] = nr.now + (old/p)*(nr.times[j]-nr.now)
		}
		nr.fix(nr.pos[j])
	}
	return true
}

// AdvanceTo steps until the simulation time reaches t or the system dies.
func (nr *NextReaction) AdvanceTo(t float64) (fired uint64, live bool) {
	start := nr.steps
	for nr.now < t {
		if !nr.Step() {
			return nr.steps - start, false
		}
	}
	return nr.steps - start, true
}

// Indexed binary heap over times.

func (nr *NextReaction) less(i, j int) bool {
	return nr.times[nr.heap[i]] < nr.times[nr.heap[j]]
}

func (nr *NextReaction) swap(i, j int) {
	nr.heap[i], nr.heap[j] = nr.heap[j], nr.heap[i]
	nr.pos[nr.heap[i]] = i
	nr.pos[nr.heap[j]] = j
}

func (nr *NextReaction) fix(i int) {
	if !nr.siftUp(i) {
		nr.siftDown(i)
	}
}

func (nr *NextReaction) siftUp(i int) bool {
	moved := false
	for i > 0 {
		parent := (i - 1) / 2
		if !nr.less(i, parent) {
			break
		}
		nr.swap(i, parent)
		i = parent
		moved = true
	}
	return moved
}

func (nr *NextReaction) siftDown(i int) {
	n := len(nr.heap)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		smallest := left
		if right := left + 1; right < n && nr.less(right, left) {
			smallest = right
		}
		if !nr.less(smallest, i) {
			return
		}
		nr.swap(i, smallest)
		i = smallest
	}
}
