package gillespie_test

import (
	"testing"

	"cwcflow/internal/gillespie"
	"cwcflow/internal/models"
)

// TestRNGMarshalResume: a generator restored from a mid-stream marshal
// produces exactly the stream the original would have.
func TestRNGMarshalResume(t *testing.T) {
	a := gillespie.NewRNG(42)
	for i := 0; i < 1000; i++ {
		a.Uint64()
	}
	state, err := a.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var b gillespie.RNG
	if err := b.UnmarshalBinary(state); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		switch i % 3 {
		case 0:
			if x, y := a.Uint64(), b.Uint64(); x != y {
				t.Fatalf("draw %d: Uint64 %d != %d", i, x, y)
			}
		case 1:
			if x, y := a.Float64(), b.Float64(); x != y {
				t.Fatalf("draw %d: Float64 %g != %g", i, x, y)
			}
		default:
			if x, y := a.ExpFloat64(), b.ExpFloat64(); x != y {
				t.Fatalf("draw %d: ExpFloat64 %g != %g", i, x, y)
			}
		}
	}
	if err := b.UnmarshalBinary(state[:7]); err == nil {
		t.Fatal("short state unmarshalled without error")
	}
}

// TestRNGSeedsIndependent: nearby seeds (the BaseSeed+traj scheme) must
// give distinct streams, and the uniform draws must stay in [0, 1).
func TestRNGSeedsIndependent(t *testing.T) {
	a, b := gillespie.NewRNG(7), gillespie.NewRNG(8)
	same := 0
	for i := 0; i < 256; i++ {
		x, y := a.Float64(), b.Float64()
		if x == y {
			same++
		}
		for _, v := range [2]float64{x, y} {
			if v < 0 || v >= 1 {
				t.Fatalf("Float64 out of [0,1): %g", v)
			}
		}
	}
	if same > 0 {
		t.Fatalf("seeds 7 and 8 collided on %d of 256 draws", same)
	}
}

// snapEngine is the contract shared by both engines in these tests.
type snapEngine interface {
	Time() float64
	Step() bool
	NumSpecies() int
	Observe([]int64)
	Snapshot() ([]byte, error)
	Restore([]byte) error
}

// testSnapshotResume runs an engine midway, snapshots it, runs the
// original to the end, then restores a fresh engine from the snapshot:
// the tail of the restored run must be bit-identical to the original's.
func testSnapshotResume(t *testing.T, fresh func() snapEngine, mid, total int) {
	t.Helper()
	orig := fresh()
	for i := 0; i < mid; i++ {
		if !orig.Step() {
			t.Fatalf("system died at step %d, before the snapshot point", i)
		}
	}
	snap, err := orig.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	wantTail := trajectoryHash(t, orig, total-mid)

	restored := fresh()
	if err := restored.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if got := trajectoryHash(t, restored, total-mid); got != wantTail {
		t.Fatalf("restored tail hash %#x, want %#x (resume not bit-identical)", got, wantTail)
	}
}

func TestDirectSnapshotResume(t *testing.T) {
	sys := models.Neurospora(50)
	testSnapshotResume(t, func() snapEngine {
		d, err := gillespie.NewDirect(sys, 3)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}, 1500, 4000)
}

func TestNextReactionSnapshotResume(t *testing.T) {
	sys := models.Neurospora(50)
	testSnapshotResume(t, func() snapEngine {
		nr, err := gillespie.NewNextReaction(sys, 6)
		if err != nil {
			t.Fatal(err)
		}
		return nr
	}, 1500, 4000)
}

// TestSnapshotKindMismatch: a Direct snapshot must not restore into an
// NRM engine (and vice versa), and corrupt snapshots are rejected.
func TestSnapshotKindMismatch(t *testing.T) {
	sys := models.Neurospora(50)
	d, err := gillespie.NewDirect(sys, 1)
	if err != nil {
		t.Fatal(err)
	}
	nr, err := gillespie.NewNextReaction(sys, 1)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := nr.Restore(snap); err == nil {
		t.Fatal("NRM restored a Direct snapshot")
	}
	if err := d.Restore(snap[:len(snap)-3]); err == nil {
		t.Fatal("truncated snapshot restored without error")
	}
	if err := d.Restore(nil); err == nil {
		t.Fatal("nil snapshot restored without error")
	}
	// The undamaged snapshot still restores after the failed attempts.
	if err := d.Restore(snap); err != nil {
		t.Fatalf("valid snapshot rejected: %v", err)
	}
}
