package gillespie

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Engine snapshots: both SSA engines can export their complete dynamic
// state as an opaque byte string and later restore it, continuing the
// trajectory bit-identically — the primitive the durable job store's
// trajectory checkpoints are built on. Everything derivable from the
// immutable System (propensities, the compiled program, dependency
// graphs) is recomputed on restore rather than stored; only the
// irreducible dynamic state travels: species counts, the simulation
// clock, the step counter, the 16-byte RNG state and — for the
// next-reaction method — the tentative firing times with their queue
// order, which embed past RNG draws and cannot be recomputed.
//
// A snapshot is tied to the System it was taken from: Restore validates
// the engine kind and the state-vector width, but it cannot detect a
// *different* network of the same size — restoring across models is a
// caller error with undefined (though memory-safe) results.

// Snapshot format version and engine tags.
const (
	snapVersion    = 1
	snapKindDirect = 1
	snapKindNRM    = 2
)

// snapWriter accumulates the little-endian snapshot encoding.
type snapWriter struct{ buf []byte }

func (w *snapWriter) u64(v uint64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, v)
}
func (w *snapWriter) f64(v float64) { w.u64(math.Float64bits(v)) }
func (w *snapWriter) i64s(v []int64) {
	w.u64(uint64(len(v)))
	for _, x := range v {
		w.u64(uint64(x))
	}
}
func (w *snapWriter) f64s(v []float64) {
	w.u64(uint64(len(v)))
	for _, x := range v {
		w.f64(x)
	}
}
func (w *snapWriter) ints(v []int) {
	w.u64(uint64(len(v)))
	for _, x := range v {
		w.u64(uint64(x))
	}
}

// snapReader decodes the snapshot encoding, failing on truncation.
type snapReader struct {
	buf []byte
	err error
}

func (r *snapReader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	if len(r.buf) < 8 {
		r.err = fmt.Errorf("gillespie: truncated snapshot")
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf[:8])
	r.buf = r.buf[8:]
	return v
}
func (r *snapReader) f64() float64 { return math.Float64frombits(r.u64()) }

// sliceLen validates a decoded length against the expected value.
func (r *snapReader) sliceLen(what string, want int) int {
	n := int(r.u64())
	if r.err == nil && n != want {
		r.err = fmt.Errorf("gillespie: snapshot %s has %d entries, want %d", what, n, want)
	}
	return n
}

// header emits the common prefix: version, engine kind, RNG state.
func (w *snapWriter) header(kind byte, rng *RNG) {
	w.buf = append(w.buf, snapVersion, kind)
	st, _ := rng.MarshalBinary()
	w.buf = append(w.buf, st...)
}

// header consumes and validates the common prefix, restoring rng.
func (r *snapReader) header(kind byte, rng *RNG) {
	if r.err != nil {
		return
	}
	if len(r.buf) < 2+rngStateSize {
		r.err = fmt.Errorf("gillespie: truncated snapshot header")
		return
	}
	if r.buf[0] != snapVersion {
		r.err = fmt.Errorf("gillespie: snapshot version %d, want %d", r.buf[0], snapVersion)
		return
	}
	if r.buf[1] != kind {
		r.err = fmt.Errorf("gillespie: snapshot is for engine kind %d, want %d", r.buf[1], kind)
		return
	}
	r.err = rng.UnmarshalBinary(r.buf[2 : 2+rngStateSize])
	r.buf = r.buf[2+rngStateSize:]
}

// Snapshot exports the engine's complete dynamic state. With the default
// per-step exact resummation (WithResumInterval(1), the default), a
// restored engine continues the trajectory bit-identically; with a
// relaxed interval the restored propensity total is exactly resummed at
// the restore point, which can differ from the drifted running total by
// a few ULPs.
func (d *Direct) Snapshot() ([]byte, error) {
	var w snapWriter
	w.header(snapKindDirect, d.rng)
	w.f64(d.now)
	w.u64(d.steps)
	w.i64s(d.state)
	return w.buf, nil
}

// Restore replaces the engine's dynamic state with a Snapshot taken from
// an engine over the same System. Propensities are recomputed from the
// restored species counts and the total exactly resummed.
func (d *Direct) Restore(data []byte) error {
	r := snapReader{buf: data}
	var rng RNG
	r.header(snapKindDirect, &rng)
	now := r.f64()
	steps := r.u64()
	r.sliceLen("state", len(d.state))
	if r.err != nil {
		return r.err
	}
	state := make([]int64, len(d.state))
	for i := range state {
		state[i] = int64(r.u64())
	}
	if r.err != nil {
		return r.err
	}
	d.rng = &rng
	d.now = now
	d.steps = steps
	copy(d.state, state)
	for j := range d.props {
		p := d.prog.eval(j, d.state)
		if p < 0 {
			return fmt.Errorf("gillespie: restored state gives reaction %q negative propensity %g", d.sys.Reactions[j].Name, p)
		}
		d.props[j] = p
	}
	d.resum()
	return nil
}

// Snapshot exports the engine's complete dynamic state, including the
// tentative firing times and their queue order (which embed past RNG
// draws). A restored engine continues the trajectory bit-identically.
func (nr *NextReaction) Snapshot() ([]byte, error) {
	var w snapWriter
	w.header(snapKindNRM, nr.rng)
	w.f64(nr.now)
	w.u64(nr.steps)
	w.i64s(nr.state)
	w.f64s(nr.times)
	w.ints(nr.heap)
	return w.buf, nil
}

// Restore replaces the engine's dynamic state with a Snapshot taken from
// an engine over the same System. Propensities are recomputed from the
// restored species counts; heap positions are rebuilt from the restored
// queue order.
func (nr *NextReaction) Restore(data []byte) error {
	r := snapReader{buf: data}
	var rng RNG
	r.header(snapKindNRM, &rng)
	now := r.f64()
	steps := r.u64()
	r.sliceLen("state", len(nr.state))
	state := make([]int64, len(nr.state))
	for i := range state {
		state[i] = int64(r.u64())
	}
	nR := len(nr.times)
	r.sliceLen("times", nR)
	times := make([]float64, nR)
	for i := range times {
		times[i] = r.f64()
	}
	r.sliceLen("heap", nR)
	heap := make([]int, nR)
	seen := make([]bool, nR)
	for i := range heap {
		j := int(r.u64())
		if r.err == nil && (j < 0 || j >= nR || seen[j]) {
			r.err = fmt.Errorf("gillespie: snapshot heap is not a permutation")
		}
		if r.err == nil {
			seen[j] = true
		}
		heap[i] = j
	}
	if r.err != nil {
		return r.err
	}
	nr.rng = &rng
	nr.now = now
	nr.steps = steps
	copy(nr.state, state)
	copy(nr.times, times)
	copy(nr.heap, heap)
	for i, j := range nr.heap {
		nr.pos[j] = i
	}
	for j := range nr.props {
		p := nr.prog.eval(j, nr.state)
		if p < 0 {
			return fmt.Errorf("gillespie: restored state gives reaction %q negative propensity %g", nr.sys.Reactions[j].Name, p)
		}
		nr.props[j] = p
	}
	return nil
}
