package gillespie

import (
	"math"
	"testing"
	"testing/quick"
)

// birthDeath: ∅ → X (lambda), X → ∅ (mu per molecule).
func birthDeath(lambda, mu float64, x0 int64) *System {
	return &System{
		Name:    "birth-death",
		Species: []string{"X"},
		Init:    []int64{x0},
		Reactions: []Reaction{
			MassAction("birth", lambda, nil, map[int]int64{0: 1}),
			MassAction("death", mu, map[int]int64{0: 1}, nil),
		},
	}
}

// dimer: 2A <-> D, conserves A + 2D.
func dimer(a0 int64) *System {
	return &System{
		Name:    "dimer",
		Species: []string{"A", "D"},
		Init:    []int64{a0, 0},
		Reactions: []Reaction{
			MassAction("dimerise", 0.02, map[int]int64{0: 2}, map[int]int64{1: 1}),
			MassAction("split", 0.5, map[int]int64{1: 1}, map[int]int64{0: 2}),
		},
	}
}

type engine interface {
	Time() float64
	Steps() uint64
	Step() bool
	Observe(out []int64)
	AdvanceTo(t float64) (uint64, bool)
	State() []int64
}

func engines(t *testing.T, sys *System, seed int64) map[string]engine {
	t.Helper()
	d, err := NewDirect(sys, seed)
	if err != nil {
		t.Fatal(err)
	}
	n, err := NewNextReaction(sys, seed)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]engine{"direct": d, "nrm": n}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		sys  *System
	}{
		{"no species", &System{Reactions: []Reaction{{}}}},
		{"bad init len", &System{Species: []string{"X"}, Init: []int64{1, 2}}},
		{"negative init", &System{Species: []string{"X"}, Init: []int64{-1}}},
		{"no reactions", &System{Species: []string{"X"}, Init: []int64{1}}},
		{"nil rate", &System{Species: []string{"X"}, Init: []int64{1}, Reactions: []Reaction{{Name: "r"}}}},
		{"bad species index", &System{Species: []string{"X"}, Init: []int64{1},
			Reactions: []Reaction{{Name: "r", Rate: func([]int64) float64 { return 1 }, Changes: []Change{{Species: 5, Delta: 1}}}}}},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.sys.Validate(); err == nil {
				t.Fatal("want validation error")
			}
		})
	}
	if err := birthDeath(1, 1, 1).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSpeciesIndex(t *testing.T) {
	sys := dimer(10)
	if sys.SpeciesIndex("D") != 1 || sys.SpeciesIndex("A") != 0 || sys.SpeciesIndex("zz") != -1 {
		t.Fatal("SpeciesIndex wrong")
	}
}

func TestMassActionPropensity(t *testing.T) {
	r := MassAction("dimerise", 2.0, map[int]int64{0: 2}, map[int]int64{1: 1})
	// C(5,2)=10 → propensity 20.
	if got := r.Rate([]int64{5, 0}); got != 20 {
		t.Fatalf("rate = %g, want 20", got)
	}
	if got := r.Rate([]int64{1, 0}); got != 0 {
		t.Fatalf("rate with insufficient reactants = %g, want 0", got)
	}
	// Changes: A -2, D +1.
	wantChanges := map[int]int64{0: -2, 1: 1}
	for _, c := range r.Changes {
		if wantChanges[c.Species] != c.Delta {
			t.Fatalf("change %v unexpected", c)
		}
		delete(wantChanges, c.Species)
	}
	if len(wantChanges) != 0 {
		t.Fatalf("missing changes: %v", wantChanges)
	}
}

func TestMassActionCatalyst(t *testing.T) {
	// A + B -> A + C : A is a catalyst, must not appear in changes.
	r := MassAction("cat", 1.0, map[int]int64{0: 1, 1: 1}, map[int]int64{0: 1, 2: 1})
	for _, c := range r.Changes {
		if c.Species == 0 {
			t.Fatal("catalyst appears in changes")
		}
	}
	if got := r.Rate([]int64{3, 4, 0}); got != 12 {
		t.Fatalf("rate = %g, want 12", got)
	}
}

func TestBothEnginesStationaryMean(t *testing.T) {
	sys := birthDeath(40, 1, 40)
	for name, e := range engines(t, sys, 123) {
		if _, live := e.AdvanceTo(5); !live {
			t.Fatalf("%s: died in warm-up", name)
		}
		sum, n := 0.0, 0
		out := make([]int64, 1)
		for i := 0; i < 2000; i++ {
			e.AdvanceTo(5 + float64(i)*0.05)
			e.Observe(out)
			sum += float64(out[0])
			n++
		}
		mean := sum / float64(n)
		if math.Abs(mean-40) > 5 {
			t.Fatalf("%s: stationary mean = %.2f, want 40 +- 5", name, mean)
		}
	}
}

func TestBothEnginesConserveInvariant(t *testing.T) {
	sys := dimer(100)
	for name, e := range engines(t, sys, 7) {
		for i := 0; i < 500; i++ {
			if !e.Step() {
				t.Fatalf("%s: died", name)
			}
			st := e.State()
			if inv := st[0] + 2*st[1]; inv != 100 {
				t.Fatalf("%s: step %d: invariant = %d, want 100", name, i, inv)
			}
		}
	}
}

func TestBothEnginesDeadState(t *testing.T) {
	sys := &System{
		Name:    "decay",
		Species: []string{"X"},
		Init:    []int64{4},
		Reactions: []Reaction{
			MassAction("death", 1, map[int]int64{0: 1}, nil),
		},
	}
	for name, e := range engines(t, sys, 3) {
		fired, live := e.AdvanceTo(math.Inf(1))
		if live || fired != 4 {
			t.Fatalf("%s: fired=%d live=%v, want 4,false", name, fired, live)
		}
		if e.State()[0] != 0 {
			t.Fatalf("%s: X = %d, want 0", name, e.State()[0])
		}
	}
}

func TestDirectDeterminism(t *testing.T) {
	sys := birthDeath(10, 0.3, 5)
	run := func(seed int64) (float64, int64) {
		d, err := NewDirect(sys, seed)
		if err != nil {
			t.Fatal(err)
		}
		d.AdvanceTo(30)
		return d.Time(), d.State()[0]
	}
	t1, x1 := run(99)
	t2, x2 := run(99)
	if t1 != t2 || x1 != x2 {
		t.Fatal("same seed diverged")
	}
}

func TestNRMDeterminism(t *testing.T) {
	sys := dimer(60)
	run := func(seed int64) (float64, int64) {
		e, err := NewNextReaction(sys, seed)
		if err != nil {
			t.Fatal(err)
		}
		e.AdvanceTo(10)
		return e.Time(), e.State()[0]
	}
	t1, x1 := run(5)
	t2, x2 := run(5)
	if t1 != t2 || x1 != x2 {
		t.Fatal("same seed diverged")
	}
}

// TestDirectVsNRMDistribution: the two exact methods must produce
// statistically indistinguishable results. Compare the mean of X at a fixed
// time across many seeds.
func TestDirectVsNRMDistribution(t *testing.T) {
	sys := birthDeath(20, 0.8, 0)
	const trials = 300
	meanAt := func(mk func(seed int64) engine) float64 {
		sum := 0.0
		for s := int64(0); s < trials; s++ {
			e := mk(s)
			e.AdvanceTo(4)
			sum += float64(e.State()[0])
		}
		return sum / trials
	}
	md := meanAt(func(s int64) engine {
		d, err := NewDirect(sys, s)
		if err != nil {
			t.Fatal(err)
		}
		return d
	})
	mn := meanAt(func(s int64) engine {
		n, err := NewNextReaction(sys, s)
		if err != nil {
			t.Fatal(err)
		}
		return n
	})
	// Theoretical mean at t=4 ≈ (lambda/mu)(1-e^-mu·t) = 25·(1-e^-3.2) ≈ 24.0
	want := 20.0 / 0.8 * (1 - math.Exp(-0.8*4))
	if math.Abs(md-want) > 2.5 {
		t.Fatalf("direct mean %.2f, want %.2f +- 2.5", md, want)
	}
	if math.Abs(mn-want) > 2.5 {
		t.Fatalf("nrm mean %.2f, want %.2f +- 2.5", mn, want)
	}
	if math.Abs(md-mn) > 3 {
		t.Fatalf("direct %.2f and nrm %.2f disagree", md, mn)
	}
}

func TestNRMNilReadsFallback(t *testing.T) {
	// A custom reaction without Reads must still simulate correctly
	// (conservative dependency on everything).
	sys := &System{
		Name:    "custom",
		Species: []string{"X"},
		Init:    []int64{0},
		Reactions: []Reaction{
			{
				Name:    "birth-capped",
				Changes: []Change{{Species: 0, Delta: 1}},
				Rate: func(st []int64) float64 {
					if st[0] >= 10 {
						return 0
					}
					return 5
				},
			},
		},
	}
	e, err := NewNextReaction(sys, 1)
	if err != nil {
		t.Fatal(err)
	}
	fired, live := e.AdvanceTo(1e9)
	if live || fired != 10 {
		t.Fatalf("fired=%d live=%v, want 10,false", fired, live)
	}
}

// Property: both engines keep counts non-negative and time monotone under
// random parameters.
func TestProperty_EnginesWellFormed(t *testing.T) {
	f := func(seed int64, lamRaw, muRaw uint8) bool {
		sys := birthDeath(float64(lamRaw%30)+1, float64(muRaw%10)*0.2+0.1, 5)
		for _, mk := range []func() (engine, error){
			func() (engine, error) { return NewDirect(sys, seed) },
			func() (engine, error) { return NewNextReaction(sys, seed) },
		} {
			e, err := mk()
			if err != nil {
				return false
			}
			prev := 0.0
			for i := 0; i < 200; i++ {
				if !e.Step() {
					break
				}
				if e.Time() < prev || e.State()[0] < 0 {
					return false
				}
				prev = e.Time()
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDirectStep(b *testing.B)       { benchEngine(b, "direct") }
func BenchmarkNextReactionStep(b *testing.B) { benchEngine(b, "nrm") }

// benchEngine measures per-step cost on a chain network A1→A2→...→A20,
// where NRM's sparse updates should pay off.
func benchEngine(b *testing.B, kind string) {
	const n = 20
	species := make([]string, n)
	init := make([]int64, n)
	var reactions []Reaction
	for i := 0; i < n; i++ {
		species[i] = string(rune('A' + i))
	}
	init[0] = 1 << 40 // effectively inexhaustible
	for i := 0; i+1 < n; i++ {
		reactions = append(reactions, MassAction("hop", 1e-9, map[int]int64{i: 1}, map[int]int64{i + 1: 1}))
	}
	sys := &System{Name: "chain", Species: species, Init: init, Reactions: reactions}
	var e engine
	var err error
	if kind == "direct" {
		e, err = NewDirect(sys, 1)
	} else {
		e, err = NewNextReaction(sys, 1)
	}
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !e.Step() {
			b.Fatal("died")
		}
	}
}

// TestSelectChannelGuard covers the channel-selection rounding guard: when
// float rounding pushes the target to (or past) the accumulated propensity
// sum, the scan must fall back to the last channel with positive
// propensity, never fire a zero-propensity channel, and report -1 only
// when nothing can fire.
func TestSelectChannelGuard(t *testing.T) {
	cases := []struct {
		name   string
		props  []float64
		target float64
		want   int
	}{
		{"interior", []float64{1, 2, 3}, 1.5, 1},
		{"first", []float64{1, 2, 3}, 0, 0},
		{"exact-boundary-skips-zero-tail", []float64{1, 2, 0}, 3, 1},
		{"past-sum-skips-zero-tail", []float64{1, 2, 0, 0}, 3.5, 1},
		{"zero-head-positive-tail", []float64{0, 0, 4}, 4, 2},
		{"all-zero", []float64{0, 0, 0}, 0.5, -1},
		{"empty", nil, 0, -1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := selectChannel(tc.props, tc.target); got != tc.want {
				t.Fatalf("selectChannel(%v, %g) = %d, want %d", tc.props, tc.target, got, tc.want)
			}
		})
	}
}

// TestDirectRelaxedResummation: with a relaxed resummation interval the
// running total drifts by ULPs, but the trajectory must stay statistically
// sane and the engine must still detect dead states.
func TestDirectRelaxedResummation(t *testing.T) {
	sys := birthDeath(10, 0.3, 5)
	d, err := NewDirect(sys, 7, WithResumInterval(64))
	if err != nil {
		t.Fatal(err)
	}
	fired, live := d.AdvanceTo(50)
	if !live {
		t.Fatal("birth-death died")
	}
	if fired == 0 || d.State()[0] < 0 {
		t.Fatalf("relaxed resummation broke the trajectory (fired %d, X=%d)", fired, d.State()[0])
	}

	// A system that dies must be reported dead even between resummations.
	dying := &System{
		Name:    "decay",
		Species: []string{"X"},
		Init:    []int64{3},
		Reactions: []Reaction{
			MassAction("death", 1.0, map[int]int64{0: 1}, nil),
		},
	}
	dd, err := NewDirect(dying, 3, WithResumInterval(1000))
	if err != nil {
		t.Fatal(err)
	}
	if _, live := dd.AdvanceTo(1e9); live {
		t.Fatal("decay-to-zero system not reported dead")
	}
	if dd.State()[0] != 0 {
		t.Fatalf("X = %d after death, want 0", dd.State()[0])
	}
}

// TestDirectPartialUpdateMatchesFullRecompute cross-checks the
// dependency-driven propensity cache against a brute-force recomputation
// after every step, on a model mixing Custom closures (including one with
// a nil Reads set) and compiled mass-action reactions.
func TestDirectPartialUpdateMatchesFullRecompute(t *testing.T) {
	sys := &System{
		Name:    "mixed",
		Species: []string{"A", "B"},
		Init:    []int64{40, 10},
		Reactions: []Reaction{
			MassAction("a-to-b", 0.7, map[int]int64{0: 1}, map[int]int64{1: 1}),
			MassAction("b-decay", 0.3, map[int]int64{1: 1}, nil),
			Custom("feedback",
				[]Change{{Species: 0, Delta: 1}},
				[]int{1},
				func(st []int64) float64 { return 0.1 * float64(st[1]) }),
			Custom("inflow",
				[]Change{{Species: 0, Delta: 2}},
				nil, // nil Reads: conservatively depends on everything
				func([]int64) float64 { return 1.5 }),
		},
	}
	d, err := NewDirect(sys, 11)
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 2000; step++ {
		if !d.Step() {
			t.Fatal("mixed system died")
		}
		for j := range sys.Reactions {
			want := d.prog.eval(j, d.state)
			if d.props[j] != want {
				t.Fatalf("step %d: cached propensity[%d] = %g, fresh eval = %g", step, j, d.props[j], want)
			}
		}
	}
}
