package gillespie_test

import (
	"fmt"
	"testing"

	"cwcflow/internal/gillespie"
	"cwcflow/internal/models"
)

// chain builds a synthetic loosely coupled network of n independent
// birth-death species — 2n mass-action reactions, each touching one
// species. It is the scaling regime where dependency-driven updates beat
// the classic full rescan: after any firing only two propensities change.
func chain(n int) *gillespie.System {
	species := make([]string, n)
	init := make([]int64, n)
	reactions := make([]gillespie.Reaction, 0, 2*n)
	for i := 0; i < n; i++ {
		species[i] = fmt.Sprintf("X%d", i)
		init[i] = 50
		reactions = append(reactions,
			gillespie.MassAction(fmt.Sprintf("birth%d", i), 10.0, nil, map[int]int64{i: 1}),
			gillespie.MassAction(fmt.Sprintf("death%d", i), 0.2, map[int]int64{i: 1}, nil),
		)
	}
	return &gillespie.System{Name: fmt.Sprintf("chain%d", n), Species: species, Init: init, Reactions: reactions}
}

func benchSteps(b *testing.B, mk func() interface {
	Step() bool
	NumSpecies() int
}) {
	b.Helper()
	e := mk()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !e.Step() {
			b.Fatal("system died mid-benchmark")
		}
	}
}

// BenchmarkDirectStep times one direct-method reaction firing: the
// compiled mass-action kernel plus dependency-driven propensity updates.
// neurospora mixes Custom closures with compiled mass-action; chain128 is
// pure compiled mass-action with 256 channels, where the partial update
// (2 propensity evaluations instead of 256) dominates.
func BenchmarkDirectStep(b *testing.B) {
	cases := []struct {
		name string
		sys  *gillespie.System
	}{
		{"neurospora", models.Neurospora(50)},
		{"chain16", chain(16)},
		{"chain128", chain(128)},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			benchSteps(b, func() interface {
				Step() bool
				NumSpecies() int
			} {
				d, err := gillespie.NewDirect(tc.sys, 1)
				if err != nil {
					b.Fatal(err)
				}
				return d
			})
		})
	}
}

// BenchmarkNRMStep times one next-reaction-method firing (compiled kernel
// + dependency graph + indexed priority queue) on the same systems.
func BenchmarkNRMStep(b *testing.B) {
	cases := []struct {
		name string
		sys  *gillespie.System
	}{
		{"neurospora", models.Neurospora(50)},
		{"chain128", chain(128)},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			benchSteps(b, func() interface {
				Step() bool
				NumSpecies() int
			} {
				nr, err := gillespie.NewNextReaction(tc.sys, 1)
				if err != nil {
					b.Fatal(err)
				}
				return nr
			})
		})
	}
}

// TestStepAllocationFree pins the hot-path contract: once an engine is
// constructed, stepping allocates nothing.
func TestStepAllocationFree(t *testing.T) {
	d, err := gillespie.NewDirect(models.Neurospora(50), 1)
	if err != nil {
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(200, func() { d.Step() }); avg != 0 {
		t.Fatalf("Direct.Step allocates %.1f objects per step, want 0", avg)
	}
	nr, err := gillespie.NewNextReaction(models.Neurospora(50), 1)
	if err != nil {
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(200, func() { nr.Step() }); avg != 0 {
		t.Fatalf("NextReaction.Step allocates %.1f objects per step, want 0", avg)
	}
}
