package store

import (
	"encoding/binary"
	"encoding/json"
	"hash/crc32"

	"cwcflow/internal/core"
)

// Journal framing: every event is one frame of
//
//	[4B little-endian payload length][4B CRC32 (IEEE) of payload][payload]
//
// written in a single write(2). Replay walks frames until the first one
// that is short, oversized or fails its CRC — the torn tail a crash
// mid-write leaves behind — and the store truncates the file there.

// maxFrame bounds a frame's payload so a corrupt length field cannot
// make replay attempt a multi-gigabyte read. Window stats over large
// ensembles are the biggest records; 64 MiB is far above any of them.
const maxFrame = 64 << 20

const frameHeader = 8

// appendFrame appends payload's frame to buf and returns it.
func appendFrame(buf, payload []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
	return append(buf, payload...)
}

// readFrame decodes the frame at the start of data, returning the payload
// and the total frame size. ok is false on a short, oversized or
// corrupt frame.
func readFrame(data []byte) (payload []byte, n int, ok bool) {
	if len(data) < frameHeader {
		return nil, 0, false
	}
	ln := int(binary.LittleEndian.Uint32(data[0:4]))
	crc := binary.LittleEndian.Uint32(data[4:8])
	if ln > maxFrame || len(data) < frameHeader+ln {
		return nil, 0, false
	}
	payload = data[frameHeader : frameHeader+ln]
	if crc32.ChecksumIEEE(payload) != crc {
		return nil, 0, false
	}
	return payload, frameHeader + ln, true
}

// eventType tags a journal record.
type eventType string

const (
	// evSubmit records a job submission: id, time, spec.
	evSubmit eventType = "submit"
	// evWindow records one published window, in publish (= window) order.
	evWindow eventType = "window"
	// evCkpt records one trajectory checkpoint.
	evCkpt eventType = "ckpt"
	// evFrontier is a compaction marker: Seq windows preceded the
	// re-journaled tail.
	evFrontier eventType = "frontier"
	// evTerminal records a job's final state and status snapshot.
	evTerminal eventType = "terminal"
)

// event is the journal's record schema. The job spec and final status
// travel as raw JSON so the store does not depend on the serve layer's
// types; windows are typed because recovery hands them back decoded.
type event struct {
	Type eventType `json:"t"`
	Job  string    `json:"job"`
	At   int64     `json:"at,omitempty"` // unix nanos, submit only
	// Tenant is the submitting tenant's id (submit only). Absent in
	// journals written before multi-tenancy; recovery maps that to the
	// default tenant.
	Tenant string `json:"tenant,omitempty"`

	Spec   json.RawMessage  `json:"spec,omitempty"`
	Seq    int              `json:"seq,omitempty"`
	Window *core.WindowStat `json:"win,omitempty"`

	Traj int    `json:"traj,omitempty"`
	Next int    `json:"next,omitempty"`
	Sim  []byte `json:"sim,omitempty"`

	State  string          `json:"state,omitempty"`
	Err    string          `json:"err,omitempty"`
	Status json.RawMessage `json:"status,omitempty"`
}
