package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"testing"
	"time"

	"cwcflow/internal/chaos"
)

// A fence refusal must block every append kind and surface ErrFenced,
// while reads stay unaffected.
func TestFenceRefusesAppends(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{})
	if err := s.AppendSubmit("job-ok", time.Unix(0, 1), json.RawMessage(`{}`), ""); err != nil {
		t.Fatal(err)
	}
	fenced := errors.New("lease for job-ok expired")
	s.SetFence(func(job string) error {
		if job == "job-ok" {
			return fenced
		}
		return nil
	})
	if err := s.AppendWindow("job-ok", 0, testWindow(0)); !errors.Is(err, ErrFenced) {
		t.Fatalf("AppendWindow = %v, want ErrFenced", err)
	}
	if err := s.AppendCheckpoint("job-ok", 0, 8, []byte{1}); !errors.Is(err, ErrFenced) {
		t.Fatalf("AppendCheckpoint = %v, want ErrFenced", err)
	}
	if err := s.AppendTerminal("job-ok", "done", "", nil); !errors.Is(err, ErrFenced) {
		t.Fatalf("AppendTerminal = %v, want ErrFenced", err)
	}
	// Other jobs pass the fence; reads are never fenced.
	if err := s.AppendSubmit("job-other", time.Unix(0, 2), json.RawMessage(`{}`), ""); err != nil {
		t.Fatalf("unfenced submit: %v", err)
	}
	if got := len(s.Recovered()); got != 2 {
		t.Fatalf("Recovered = %d jobs, want 2", got)
	}
	// Lifting the fence restores writes.
	s.SetFence(nil)
	if err := s.AppendWindow("job-ok", 0, testWindow(0)); err != nil {
		t.Fatalf("append after fence lift: %v", err)
	}
}

// ReadJournal replays another directory's journal without mutating it,
// and Adopt re-journals the record so it survives OUR restart.
func TestReadJournalAndAdopt(t *testing.T) {
	ownerDir, thiefDir := t.TempDir(), t.TempDir()

	owner := openStore(t, ownerDir, Options{RetainWindows: 4})
	spec := json.RawMessage(`{"model":"sir","trajectories":2}`)
	at := time.Unix(0, 77)
	if err := owner.AppendSubmit("job-a-000001", at, spec, "alice"); err != nil {
		t.Fatal(err)
	}
	for seq := 0; seq < 6; seq++ { // 6 windows, only 4 retained
		if err := owner.AppendWindow("job-a-000001", seq, testWindow(seq)); err != nil {
			t.Fatal(err)
		}
	}
	if err := owner.AppendCheckpoint("job-a-000001", 1, 16, []byte{16}); err != nil {
		t.Fatal(err)
	}
	if err := owner.Sync(); err != nil {
		t.Fatal(err)
	}
	ownerSize := owner.Stats().JournalBytes

	recs, err := ReadJournal(ownerDir, Options{RetainWindows: 4})
	if err != nil {
		t.Fatalf("ReadJournal: %v", err)
	}
	if len(recs) != 1 {
		t.Fatalf("ReadJournal = %d records, want 1", len(recs))
	}
	rec := recs[0]
	if rec.WindowCount != 6 || rec.FirstRetained != 2 || len(rec.Windows) != 4 {
		t.Fatalf("peeked record: count=%d first=%d retained=%d", rec.WindowCount, rec.FirstRetained, len(rec.Windows))
	}
	if owner.Stats().JournalBytes != ownerSize {
		t.Fatal("ReadJournal grew the owner's journal")
	}

	thief := openStore(t, thiefDir, Options{RetainWindows: 4})
	if err := thief.Adopt(rec); err != nil {
		t.Fatalf("Adopt: %v", err)
	}
	// The adopted job accepts new progress in the thief's journal.
	if err := thief.AppendWindow("job-a-000001", 6, testWindow(6)); err != nil {
		t.Fatalf("append after adopt: %v", err)
	}
	if err := thief.Close(); err != nil {
		t.Fatal(err)
	}

	re := openStore(t, thiefDir, Options{RetainWindows: 4})
	got := re.Recovered()
	if len(got) != 1 {
		t.Fatalf("thief restart recovered %d jobs, want 1", len(got))
	}
	g := got[0]
	if g.ID != "job-a-000001" || g.Tenant != "alice" || !g.SubmittedAt.Equal(at) {
		t.Fatalf("adopted record after restart: %+v", g)
	}
	if g.WindowCount != 7 || g.FirstRetained != 3 || len(g.Windows) != 4 {
		t.Fatalf("adopted windows after restart: count=%d first=%d retained=%d", g.WindowCount, g.FirstRetained, len(g.Windows))
	}
	if cp, ok := g.BestCheckpoint(1, 1000); !ok || cp.NextIdx != 16 {
		t.Fatalf("adopted checkpoint lost: %+v ok=%v", cp, ok)
	}
	// The owner's journal was never touched.
	if ownerRecs, _ := ReadJournal(ownerDir, Options{RetainWindows: 4}); ownerRecs[0].WindowCount != 6 {
		t.Fatal("owner journal mutated by adoption")
	}
}

// Adopt must replace a stale local copy of the same job rather than
// duplicate it.
func TestAdoptReplacesStaleLocalRecord(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{})
	spec := json.RawMessage(`{}`)
	if err := s.AppendSubmit("job-x", time.Unix(0, 1), spec, ""); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendWindow("job-x", 0, testWindow(0)); err != nil {
		t.Fatal(err)
	}
	fresh := &JobRecord{
		ID: "job-x", Spec: spec, SubmittedAt: time.Unix(0, 1),
		WindowCount: 3, FirstRetained: 0,
	}
	for seq := 0; seq < 3; seq++ {
		fresh.Windows = append(fresh.Windows, *testWindow(seq))
	}
	if err := s.Adopt(fresh); err != nil {
		t.Fatalf("Adopt: %v", err)
	}
	recs := s.Recovered()
	if len(recs) != 1 || recs[0].WindowCount != 3 {
		t.Fatalf("after adopt: %d records, count=%d", len(recs), recs[0].WindowCount)
	}
	// And the replacement is what replay reconstructs too.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	re := openStore(t, dir, Options{})
	if got := re.Recovered(); len(got) != 1 || got[0].WindowCount != 3 {
		t.Fatalf("after restart: %d records, count=%d", len(got), got[0].WindowCount)
	}
}

func TestReadJournalMissingDirIsEmpty(t *testing.T) {
	recs, err := ReadJournal(t.TempDir()+"/nope", Options{})
	if err != nil || recs != nil {
		t.Fatalf("ReadJournal(missing) = %v, %v", recs, err)
	}
}

// An armed FsyncStall chaos point delays fsynced appends but must not
// affect durability or correctness.
func TestChaosFsyncStallStillDurable(t *testing.T) {
	dir := t.TempDir()
	in := chaos.New(3)
	in.Arm(chaos.FsyncStall, chaos.Rule{Prob: 1, Delay: 5 * time.Millisecond})
	s := openStore(t, dir, Options{Chaos: in})
	start := time.Now()
	for i := 0; i < 3; i++ {
		id := fmt.Sprintf("job-%06d", i)
		if err := s.AppendSubmit(id, time.Unix(0, 1), json.RawMessage(`{}`), ""); err != nil {
			t.Fatal(err)
		}
	}
	if time.Since(start) < 15*time.Millisecond {
		t.Fatal("FsyncStall did not stall")
	}
	if got := in.Fired(chaos.FsyncStall); got != 3 {
		t.Fatalf("FsyncStall fired %d times, want 3", got)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	re := openStore(t, dir, Options{})
	if got := len(re.Recovered()); got != 3 {
		t.Fatalf("recovered %d jobs after stalled fsyncs, want 3", got)
	}
}
