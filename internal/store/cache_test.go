package store

import "testing"

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	c.Put("d1", "job-1")
	c.Put("d2", "job-2")
	// Touch d1 so d2 is the LRU victim when d3 arrives.
	if id, ok := c.Get("d1"); !ok || id != "job-1" {
		t.Fatalf("Get(d1) = %q, %v", id, ok)
	}
	c.Put("d3", "job-3")
	if _, ok := c.Get("d2"); ok {
		t.Fatal("d2 should have been evicted as LRU")
	}
	if _, ok := c.Get("d1"); !ok {
		t.Fatal("d1 (recently used) should have survived")
	}
	if _, ok := c.Get("d3"); !ok {
		t.Fatal("d3 (just inserted) should be present")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	if c.Evictions() != 1 {
		t.Fatalf("Evictions = %d, want 1", c.Evictions())
	}
}

func TestCacheRemoveJob(t *testing.T) {
	c := NewCache(8)
	c.Put("d1", "job-1")
	c.Put("d2", "job-2")
	c.RemoveJob("job-1")
	if _, ok := c.Get("d1"); ok {
		t.Fatal("d1 should be gone after RemoveJob(job-1)")
	}
	if id, ok := c.Get("d2"); !ok || id != "job-2" {
		t.Fatalf("Get(d2) = %q, %v after unrelated RemoveJob", id, ok)
	}
	// Removing an unknown job is a no-op.
	c.RemoveJob("job-unknown")
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}

func TestCachePutRemapsDigest(t *testing.T) {
	c := NewCache(8)
	c.Put("d1", "job-1")
	c.Put("d1", "job-2") // same spec finished again under a new id
	if id, ok := c.Get("d1"); !ok || id != "job-2" {
		t.Fatalf("Get(d1) = %q, %v, want job-2", id, ok)
	}
	// The old job's reverse entry must be gone: invalidating it cannot
	// take the remapped digest down with it.
	c.RemoveJob("job-1")
	if id, ok := c.Get("d1"); !ok || id != "job-2" {
		t.Fatalf("Get(d1) after RemoveJob(job-1) = %q, %v, want job-2", id, ok)
	}
	c.RemoveJob("job-2")
	if _, ok := c.Get("d1"); ok {
		t.Fatal("d1 should be gone after RemoveJob(job-2)")
	}
}

func TestCacheZeroAndEmptyKeys(t *testing.T) {
	c := NewCache(0) // clamps to 1
	if c.Max() != 1 {
		t.Fatalf("Max = %d, want 1", c.Max())
	}
	c.Put("", "job-1")
	c.Put("d1", "")
	if c.Len() != 0 {
		t.Fatalf("empty keys were cached: Len = %d", c.Len())
	}
	c.Put("d1", "job-1")
	c.Put("d2", "job-2")
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (capacity)", c.Len())
	}
}
