// Package store is the durable job store behind cwc-serve's -data-dir: a
// write-ahead journal of job lifecycle events — submitted specs, published
// window statistics, per-trajectory simulation checkpoints, terminal
// states — with periodic snapshot+compaction, so a crashed or restarted
// service recovers every completed result and resumes in-flight jobs from
// their last checkpoint.
//
// Durability model. Every event is framed (length + CRC32 + JSON payload)
// and written to the journal in one write(2) before the action it records
// is considered done; replay at Open stops at the first torn or corrupt
// frame and truncates the tail, so a SIGKILL mid-write costs at most the
// record being written. fsync is paid only at the important edges (job
// submission, terminal transition, compaction, Close) — in between, a
// process crash loses nothing (the OS holds the writes) and a machine
// crash loses at most a suffix of windows/checkpoints, which recovery
// simply re-simulates: the journal's correctness invariant is that its
// surviving prefix is always a consistent resume point, never that it is
// complete.
//
// Resume model. Windows are journaled in publish order, so the recovered
// contiguous window count W defines the resume frontier: everything
// before cut W·step is durably analysed, everything after is re-derived.
// Trajectory checkpoints (sim.Task.Snapshot blobs keyed by next sample
// index) let recovery rewind each trajectory to the newest checkpoint at
// or below the frontier instead of replaying from the seed; a small
// per-trajectory ladder of recent checkpoints is retained so one is
// usually available just below any frontier. Checkpoints are an
// optimisation only — with none (e.g. the CWC engine, which cannot
// snapshot its compartment tree), deterministic replay from the seed
// plus the serve layer's resume filter still reproduces the identical
// window stream.
package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"cwcflow/internal/chaos"
	"cwcflow/internal/core"
	"cwcflow/internal/obs"
)

// Metrics is the optional latency-histogram set the journal reports
// into. Both fields are nil-safe (obs semantics), so a zero Metrics
// disables instrumentation without call-site conditionals.
type Metrics struct {
	Append *obs.Histogram // per-frame journal write time
	Fsync  *obs.Histogram // journal fsync time (durable edges only)
}

// ckptLadder is how many recent checkpoints are retained per trajectory
// (in memory and across compactions). The analysis frontier trails the
// simulation by the in-flight quanta plus the window in assembly, so a
// few recent checkpoints almost always include one at or below it.
const ckptLadder = 4

// Options tunes a Store. The zero value is usable.
type Options struct {
	// RetainWindows caps the published windows retained per job, in
	// memory and across compactions (default 1024, matching the serve
	// result ring). Older windows are evicted; the contiguous window
	// *count* — the resume frontier — is preserved regardless.
	RetainWindows int
	// CompactBytes is the journal size that triggers a snapshot+compaction
	// rewrite on append (default 8 MiB).
	CompactBytes int64
	// Chaos, when armed with FsyncStall, delays journal fsyncs (fault
	// injection for the failover tests; nil in production).
	Chaos *chaos.Injector
	// Metrics receives WAL write/fsync latencies (zero value = no-op).
	Metrics Metrics
}

func (o Options) withDefaults() Options {
	if o.RetainWindows < 1 {
		o.RetainWindows = 1024
	}
	if o.CompactBytes < 1 {
		o.CompactBytes = 8 << 20
	}
	return o
}

// Checkpoint is one trajectory's durable resume point.
type Checkpoint struct {
	// NextIdx is the next sample index the restored task will emit.
	NextIdx int
	// Sim is the opaque sim.Task.Snapshot blob.
	Sim []byte
}

// JobRecord is the recovered state of one job. After Open, records are
// owned by the recovery path; the store keeps appending to the same
// record as the resumed job makes new progress.
type JobRecord struct {
	ID          string
	Spec        json.RawMessage
	SubmittedAt time.Time
	// Tenant is the submitting tenant's id ("" in journals written before
	// multi-tenancy; recovery treats that as the default tenant).
	Tenant string

	// WindowCount is the number of windows durably published (the resume
	// frontier is WindowCount·step); Windows retains the most recent of
	// them, FirstRetained the absolute index of Windows[0].
	WindowCount   int
	FirstRetained int
	Windows       []core.WindowStat

	// Terminal is the job's final state ("" while in flight) with its
	// error and final status snapshot.
	Terminal string
	Error    string
	Status   json.RawMessage

	ckpts     map[int][]Checkpoint // per trajectory, oldest first
	forgotten bool
}

// BestCheckpoint returns the newest retained checkpoint of trajectory
// traj with NextIdx ≤ maxNext, if any.
func (r *JobRecord) BestCheckpoint(traj, maxNext int) (Checkpoint, bool) {
	var best Checkpoint
	found := false
	for _, c := range r.ckpts[traj] {
		if c.NextIdx <= maxNext && (!found || c.NextIdx > best.NextIdx) {
			best = c
			found = true
		}
	}
	return best, found
}

// Stats is the store's health summary for /healthz.
type Stats struct {
	Dir            string    `json:"dir"`
	JournalBytes   int64     `json:"journal_bytes"`
	Jobs           int       `json:"jobs"`
	LastCompaction time.Time `json:"last_compaction,omitzero"`
	// TruncatedBytes counts journal bytes dropped at Open because the
	// tail was torn (a crash mid-write) or corrupt.
	TruncatedBytes int64 `json:"truncated_bytes,omitempty"`
}

// Store is the durable job store: an append-only journal plus the
// in-memory state replayed from it.
type Store struct {
	dir  string
	opts Options

	mu          sync.Mutex
	f           *os.File
	size        int64
	jobs        map[string]*JobRecord
	order       []string
	lastCompact time.Time
	truncated   int64
	closed      bool
	// fence, when set, is consulted before every append: a non-nil error
	// refuses the write. The replicated serve tier points it at the lease
	// manager so a replica whose job lease expired or was stolen cannot
	// journal stale progress (fencing-epoch discipline).
	fence func(job string) error
	// failed is set when a journal write error could not be rolled back:
	// the file may hold a partial frame that replay would treat as the
	// end of the journal, silently discarding everything appended after
	// it. Rather than acknowledge appends that recovery would drop, the
	// store refuses all further writes.
	failed bool
}

const journalName = "journal.wal"

// ErrFenced wraps fence refusals so callers can distinguish "this
// replica may no longer write for the job" from I/O failures.
var ErrFenced = errors.New("store: append fenced")

// SetFence installs the per-job write fence (nil disables it). Set it
// before the first guarded append; reads are never fenced.
func (s *Store) SetFence(f func(job string) error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.fence = f
}

// Open loads (or creates) the journal under dir, replays it into memory,
// and truncates any torn tail.
func Open(dir string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("store: creating data dir: %w", err)
	}
	s := &Store{
		dir:  dir,
		opts: opts,
		jobs: make(map[string]*JobRecord),
	}
	path := filepath.Join(dir, journalName)
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("store: reading journal: %w", err)
	}
	good := s.replay(data)
	s.truncated = int64(len(data) - good)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o666)
	if err != nil {
		return nil, fmt.Errorf("store: opening journal: %w", err)
	}
	if s.truncated > 0 {
		if err := f.Truncate(int64(good)); err != nil {
			f.Close()
			return nil, fmt.Errorf("store: truncating torn journal tail: %w", err)
		}
	}
	if _, err := f.Seek(int64(good), 0); err != nil {
		f.Close()
		return nil, err
	}
	// Make the journal's directory entry durable: without this, a
	// machine crash right after the first (fsynced) append could lose
	// the whole file, not just a tail suffix.
	if err := syncDir(dir); err != nil {
		f.Close()
		return nil, err
	}
	s.f = f
	s.size = int64(good)
	return s, nil
}

// syncDir fsyncs a directory, making renames and creations in it durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: opening data dir for sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("store: syncing data dir: %w", err)
	}
	return nil
}

// replay applies every intact frame of data to the in-memory state and
// returns the byte offset of the first torn or corrupt frame (== len(data)
// when the journal is clean).
func (s *Store) replay(data []byte) (good int) {
	off := 0
	for {
		payload, n, ok := readFrame(data[off:])
		if !ok {
			return off
		}
		var ev event
		if err := json.Unmarshal(payload, &ev); err != nil {
			return off
		}
		s.apply(&ev)
		off += n
	}
}

// apply folds one journal event into the in-memory state. Unknown event
// types and events for unknown jobs are ignored (forward compatibility
// and robustness over strictness: the journal is a recovery aid, not a
// ledger).
func (s *Store) apply(ev *event) {
	switch ev.Type {
	case evSubmit:
		if _, ok := s.jobs[ev.Job]; ok {
			return
		}
		rec := &JobRecord{
			ID:          ev.Job,
			Spec:        ev.Spec,
			SubmittedAt: time.Unix(0, ev.At),
			Tenant:      ev.Tenant,
			ckpts:       make(map[int][]Checkpoint),
		}
		s.jobs[ev.Job] = rec
		s.order = append(s.order, ev.Job)
	case evWindow:
		rec := s.jobs[ev.Job]
		if rec == nil || ev.Window == nil || ev.Seq != rec.WindowCount {
			return
		}
		rec.WindowCount++
		rec.Windows = append(rec.Windows, *ev.Window)
		if over := len(rec.Windows) - s.opts.RetainWindows; over > 0 {
			rec.Windows = append(rec.Windows[:0], rec.Windows[over:]...)
			rec.FirstRetained += over
		}
	case evCkpt:
		rec := s.jobs[ev.Job]
		if rec == nil || rec.Terminal != "" {
			return
		}
		ladder := append(rec.ckpts[ev.Traj], Checkpoint{NextIdx: ev.Next, Sim: ev.Sim})
		if len(ladder) > ckptLadder {
			ladder = append(ladder[:0], ladder[len(ladder)-ckptLadder:]...)
		}
		rec.ckpts[ev.Traj] = ladder
	case evFrontier:
		// Compaction marker: ev.Seq windows existed before the retained
		// tail that follows.
		rec := s.jobs[ev.Job]
		if rec == nil || ev.Seq < rec.WindowCount {
			return
		}
		rec.WindowCount = ev.Seq
		rec.FirstRetained = ev.Seq
		rec.Windows = rec.Windows[:0]
	case evTerminal:
		rec := s.jobs[ev.Job]
		if rec == nil {
			return
		}
		rec.Terminal = ev.State
		rec.Error = ev.Err
		rec.Status = ev.Status
		rec.ckpts = make(map[int][]Checkpoint) // no longer needed
	}
}

// Recovered returns the replayed job records in submission order. Call
// once at boot, before new appends; the store keeps updating the same
// records as resumed jobs progress.
func (s *Store) Recovered() []*JobRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*JobRecord, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// ReadJournal replays the journal under dir read-only and returns its
// job records in submission order, without opening the file for writing
// or truncating torn tails. Replicas use it to serve reads for jobs
// another replica owns, and to adopt a dead owner's jobs after a lease
// steal: the WAL's replay fold is convergent (windows only apply in
// sequence, duplicates are ignored), so reading a live owner's journal
// mid-append is safe — at worst the tail frame is torn and replay stops
// one event early. A missing journal yields no records.
func ReadJournal(dir string, opts Options) ([]*JobRecord, error) {
	opts = opts.withDefaults()
	s := &Store{opts: opts, jobs: make(map[string]*JobRecord)}
	data, err := os.ReadFile(filepath.Join(dir, journalName))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: reading journal %s: %w", dir, err)
	}
	s.replay(data)
	out := make([]*JobRecord, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out, nil
}

// Adopt journals a snapshot of rec — typically read from a dead
// replica's journal via ReadJournal — into THIS store's journal and
// takes ownership of the record, replacing any stale local copy. The
// emitted events mirror compaction (submit, frontier marker, retained
// windows, checkpoint ladders, terminal), so replay of our own journal
// reconstructs the adopted state exactly; the write is fsynced because
// a takeover the thief acknowledged must not evaporate. The caller must
// already hold the job's lease when a fence is installed.
func (s *Store) Adopt(rec *JobRecord) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	if s.failed {
		return fmt.Errorf("store: journal failed by an earlier write error")
	}
	if s.fence != nil {
		if err := s.fence(rec.ID); err != nil {
			return fmt.Errorf("%w: %v", ErrFenced, err)
		}
	}
	if s.size >= s.opts.CompactBytes {
		if err := s.compactLocked(); err != nil {
			return err
		}
	}
	if rec.ckpts == nil {
		rec.ckpts = make(map[int][]Checkpoint)
	}
	var frames, scratch []byte
	emit := func(ev *event) error {
		payload, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		scratch = appendFrame(scratch[:0], payload)
		frames = append(frames, scratch...)
		return nil
	}
	if err := emit(&event{Type: evSubmit, Job: rec.ID, At: rec.SubmittedAt.UnixNano(), Spec: rec.Spec, Tenant: rec.Tenant}); err != nil {
		return err
	}
	if rec.FirstRetained > 0 {
		if err := emit(&event{Type: evFrontier, Job: rec.ID, Seq: rec.FirstRetained}); err != nil {
			return err
		}
	}
	for i := range rec.Windows {
		if err := emit(&event{Type: evWindow, Job: rec.ID, Seq: rec.FirstRetained + i, Window: &rec.Windows[i]}); err != nil {
			return err
		}
	}
	for traj, ladder := range rec.ckpts {
		for _, c := range ladder {
			if err := emit(&event{Type: evCkpt, Job: rec.ID, Traj: traj, Next: c.NextIdx, Sim: c.Sim}); err != nil {
				return err
			}
		}
	}
	if rec.Terminal != "" {
		if err := emit(&event{Type: evTerminal, Job: rec.ID, State: rec.Terminal, Err: rec.Error, Status: rec.Status}); err != nil {
			return err
		}
	}
	if _, err := s.f.Write(frames); err != nil {
		if terr := s.f.Truncate(s.size); terr != nil {
			s.failed = true
		} else if _, serr := s.f.Seek(s.size, 0); serr != nil {
			s.failed = true
		}
		return fmt.Errorf("store: adoption write: %w", err)
	}
	s.size += int64(len(frames))
	if _, ok := s.jobs[rec.ID]; !ok {
		s.order = append(s.order, rec.ID)
	}
	rec.forgotten = false
	s.jobs[rec.ID] = rec
	if d := s.opts.Chaos.Stall(chaos.FsyncStall); d > 0 {
		time.Sleep(d)
	}
	return s.f.Sync()
}

// AppendSubmit journals a new job's spec and owning tenant (fsynced:
// losing a submission the client was told about is not acceptable).
func (s *Store) AppendSubmit(id string, at time.Time, spec json.RawMessage, tenant string) error {
	return s.append(&event{Type: evSubmit, Job: id, At: at.UnixNano(), Spec: spec, Tenant: tenant}, true)
}

// AppendWindow journals one published window. seq must be the job's next
// window sequence number; windows are the resume frontier, so they must
// be journaled in publish order.
func (s *Store) AppendWindow(id string, seq int, ws *core.WindowStat) error {
	return s.append(&event{Type: evWindow, Job: id, Seq: seq, Window: ws}, false)
}

// AppendCheckpoint journals one trajectory checkpoint.
func (s *Store) AppendCheckpoint(id string, traj, next int, sim []byte) error {
	return s.append(&event{Type: evCkpt, Job: id, Traj: traj, Next: next, Sim: sim}, false)
}

// AppendTerminal journals a job's terminal transition with its final
// status snapshot (fsynced).
func (s *Store) AppendTerminal(id string, state, errMsg string, status json.RawMessage) error {
	return s.append(&event{Type: evTerminal, Job: id, State: state, Err: errMsg, Status: status}, true)
}

// append journals one event and folds it into the in-memory state,
// compacting first when the journal has outgrown the threshold. The
// threshold check is skipped for window events: those are appended under
// the publishing job's mutex, where a synchronous multi-megabyte rewrite
// would stall the job's whole delivery path — checkpoint, submit and
// terminal appends (called without job locks) trigger it instead, and
// they dominate journal growth anyway.
func (s *Store) append(ev *event, sync bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	if s.failed {
		return fmt.Errorf("store: journal failed by an earlier write error")
	}
	if s.fence != nil {
		if err := s.fence(ev.Job); err != nil {
			return fmt.Errorf("%w: %v", ErrFenced, err)
		}
	}
	if s.size >= s.opts.CompactBytes && ev.Type != evWindow {
		if err := s.compactLocked(); err != nil {
			return err
		}
	}
	payload, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	frame := appendFrame(nil, payload)
	wstart := time.Now()
	if _, err := s.f.Write(frame); err != nil {
		// A short or failed write may have left a partial frame after
		// offset s.size; replay would stop there and silently discard
		// every later (even fsynced) event. Roll the file back to the
		// last good frame — if that fails too, poison the store.
		if terr := s.f.Truncate(s.size); terr != nil {
			s.failed = true
		} else if _, serr := s.f.Seek(s.size, 0); serr != nil {
			s.failed = true
		}
		return fmt.Errorf("store: journal write: %w", err)
	}
	s.opts.Metrics.Append.Observe(time.Since(wstart))
	s.size += int64(len(frame))
	s.apply(ev)
	if sync {
		if d := s.opts.Chaos.Stall(chaos.FsyncStall); d > 0 {
			time.Sleep(d)
		}
		fstart := time.Now()
		err := s.f.Sync()
		s.opts.Metrics.Fsync.Observe(time.Since(fstart))
		return err
	}
	return nil
}

// Forget drops a job from the store at the next compaction — the serve
// registry evicted it, so its results no longer need to outlive anything.
func (s *Store) Forget(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if rec, ok := s.jobs[id]; ok {
		rec.forgotten = true
	}
}

// Compact rewrites the journal as a snapshot of the live state: one
// submit per job, its retained windows, its checkpoint ladders (running
// jobs only) and its terminal event; forgotten jobs are dropped.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.compactLocked()
}

func (s *Store) compactLocked() error {
	tmp := filepath.Join(s.dir, journalName+".compact")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o666)
	if err != nil {
		return fmt.Errorf("store: compaction: %w", err)
	}
	var buf []byte
	emit := func(ev *event) error {
		payload, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		buf = appendFrame(buf[:0], payload)
		_, err = f.Write(buf)
		return err
	}
	var size int64
	err = func() error {
		kept := s.order[:0]
		for _, id := range s.order {
			rec := s.jobs[id]
			if rec.forgotten {
				delete(s.jobs, id)
				continue
			}
			kept = append(kept, id)
			if err := emit(&event{Type: evSubmit, Job: id, At: rec.SubmittedAt.UnixNano(), Spec: rec.Spec, Tenant: rec.Tenant}); err != nil {
				return err
			}
			// Only the retained window tail survives compaction; a frontier
			// marker re-establishes the count of the evicted prefix so the
			// tail's original sequence numbers stay contiguous on replay.
			if rec.FirstRetained > 0 {
				if err := emit(&event{Type: evFrontier, Job: id, Seq: rec.FirstRetained}); err != nil {
					return err
				}
			}
			for i, w := range rec.Windows {
				ww := w
				if err := emit(&event{Type: evWindow, Job: id, Seq: rec.FirstRetained + i, Window: &ww}); err != nil {
					return err
				}
			}
			for traj, ladder := range rec.ckpts {
				for _, c := range ladder {
					if err := emit(&event{Type: evCkpt, Job: id, Traj: traj, Next: c.NextIdx, Sim: c.Sim}); err != nil {
						return err
					}
				}
			}
			if rec.Terminal != "" {
				if err := emit(&event{Type: evTerminal, Job: id, State: rec.Terminal, Err: rec.Error, Status: rec.Status}); err != nil {
					return err
				}
			}
		}
		s.order = kept
		if err := f.Sync(); err != nil {
			return err
		}
		st, err := f.Stat()
		if err != nil {
			return err
		}
		size = st.Size()
		return f.Close()
	}()
	if err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: compaction: %w", err)
	}
	path := filepath.Join(s.dir, journalName)
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: compaction rename: %w", err)
	}
	if err := syncDir(s.dir); err != nil {
		return err
	}
	nf, err := os.OpenFile(path, os.O_RDWR, 0o666)
	if err != nil {
		return fmt.Errorf("store: reopening compacted journal: %w", err)
	}
	if _, err := nf.Seek(size, 0); err != nil {
		nf.Close()
		return err
	}
	s.f.Close()
	s.f = nf
	s.size = size
	s.lastCompact = time.Now()
	return nil
}

// Stats reports the store's health for /healthz.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Dir:            s.dir,
		JournalBytes:   s.size,
		Jobs:           len(s.jobs),
		LastCompaction: s.lastCompact,
		TruncatedBytes: s.truncated,
	}
}

// Sync fsyncs the journal.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	return s.f.Sync()
}

// Close fsyncs and closes the journal. Appends after Close fail.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if err := s.f.Sync(); err != nil {
		s.f.Close()
		return err
	}
	return s.f.Close()
}
