package store

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// FuzzWALReplay feeds arbitrary bytes to Open as a journal file. Whatever
// the bytes, recovery must never panic: replay applies the longest intact
// frame prefix, reports the rest as a torn tail, truncates it, and leaves
// a store that accepts appends and reopens cleanly.
func FuzzWALReplay(f *testing.F) {
	// Seed with a realistic journal covering every event type, plus a
	// torn-tail prefix and a bit-flipped frame the CRC must reject.
	seedDir := f.TempDir()
	s, err := Open(seedDir, Options{})
	if err != nil {
		f.Fatal(err)
	}
	if err := s.AppendSubmit("job-1", time.Unix(1, 0), json.RawMessage(`{"model":"noisy"}`), "alice"); err != nil {
		f.Fatal(err)
	}
	if err := s.AppendWindow("job-1", 0, testWindow(0)); err != nil {
		f.Fatal(err)
	}
	if err := s.AppendCheckpoint("job-1", 0, 4, []byte("sim-state")); err != nil {
		f.Fatal(err)
	}
	if err := s.AppendTerminal("job-1", "done", "", nil); err != nil {
		f.Fatal(err)
	}
	if err := s.Close(); err != nil {
		f.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(seedDir, journalName))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(data)
	f.Add(data[:len(data)*2/3])
	f.Add([]byte{})
	flipped := append([]byte(nil), data...)
	flipped[len(flipped)/2] ^= 0x40
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, journalName), data, 0o666); err != nil {
			t.Fatal(err)
		}
		s, err := Open(dir, Options{})
		if err != nil {
			// Open only errors on filesystem failures; replay itself never
			// rejects input, it truncates. Nothing further to check.
			return
		}
		st := s.Stats()
		if st.JournalBytes+st.TruncatedBytes != int64(len(data)) {
			t.Fatalf("replayed %d + truncated %d bytes != input %d",
				st.JournalBytes, st.TruncatedBytes, len(data))
		}
		// Whatever survived replay, the store must stay usable: append a
		// probe submit, reopen, and find it — with no torn tail left behind.
		if err := s.AppendSubmit("fuzz-probe-7f3a", time.Unix(2, 0), json.RawMessage(`{}`), "fuzz"); err != nil {
			t.Fatalf("store unusable after replay: %v", err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		s2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("reopen after truncation: %v", err)
		}
		defer s2.Close()
		if tb := s2.Stats().TruncatedBytes; tb != 0 {
			t.Fatalf("second open truncated %d more bytes: first open left a torn tail", tb)
		}
		found := false
		for _, rec := range s2.Recovered() {
			if rec.ID == "fuzz-probe-7f3a" {
				found = true
				if rec.Tenant != "fuzz" {
					t.Fatalf("probe tenant %q did not survive reopen", rec.Tenant)
				}
			}
		}
		if !found {
			t.Fatal("probe submit lost on reopen")
		}
	})
}
