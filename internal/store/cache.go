package store

// Cache is the content-addressed result-cache index: spec digest → the id
// of a terminal job whose journaled results answer a repeat submission
// without simulating. It is a bookkeeping structure only — the results
// themselves live in the job registry and the journal — so it is rebuilt
// from journal replay at boot (the serve layer re-derives each recovered
// record's digest) rather than persisted in the WAL, which also makes
// pre-cache journals upgrade in place.
//
// Eviction is LRU over a fixed entry budget: a Get bumps recency, a Put
// past capacity drops the coldest digest. Entries are also invalidated by
// job id when the registry evicts a terminal job (its results are gone, a
// hit would dangle) — the byJob reverse index makes that O(1).

import (
	"container/list"
	"sync"
)

type cacheEntry struct {
	digest string
	jobID  string
}

// Cache maps spec digests to terminal job ids with LRU eviction. Safe for
// concurrent use.
type Cache struct {
	mu        sync.Mutex
	max       int
	ll        *list.List               // front = most recently used
	byDigest  map[string]*list.Element // digest → entry
	byJob     map[string]string        // job id → digest (invalidation index)
	evictions int64
}

// NewCache returns an empty cache bounded to max entries (minimum 1).
func NewCache(max int) *Cache {
	if max < 1 {
		max = 1
	}
	return &Cache{
		max:      max,
		ll:       list.New(),
		byDigest: make(map[string]*list.Element),
		byJob:    make(map[string]string),
	}
}

// Put maps digest to jobID, bumping it to most-recently-used and evicting
// the coldest entry past capacity. A digest remaps cleanly (the old job's
// reverse entry is dropped); a job that already served another digest
// keeps both forward entries but only the newest reverse one — Remove by
// job then invalidates the newest, and the stale forward entry is caught
// by the registry check at hit time.
func (c *Cache) Put(digest, jobID string) {
	if digest == "" || jobID == "" {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byDigest[digest]; ok {
		ent := el.Value.(*cacheEntry)
		if ent.jobID != jobID {
			delete(c.byJob, ent.jobID)
			ent.jobID = jobID
		}
		c.byJob[jobID] = digest
		c.ll.MoveToFront(el)
		return
	}
	c.byDigest[digest] = c.ll.PushFront(&cacheEntry{digest: digest, jobID: jobID})
	c.byJob[jobID] = digest
	for c.ll.Len() > c.max {
		c.removeElement(c.ll.Back())
		c.evictions++
	}
}

// Get returns the job id cached for digest, bumping its recency.
func (c *Cache) Get(digest string) (string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byDigest[digest]
	if !ok {
		return "", false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).jobID, true
}

// Remove drops a digest's entry, if present.
func (c *Cache) Remove(digest string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byDigest[digest]; ok {
		c.removeElement(el)
	}
}

// RemoveJob drops the entry pointing at jobID, if any — the invalidation
// path when the registry evicts a terminal job.
func (c *Cache) RemoveJob(jobID string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if digest, ok := c.byJob[jobID]; ok {
		if el, ok := c.byDigest[digest]; ok {
			c.removeElement(el)
		} else {
			delete(c.byJob, jobID)
		}
	}
}

// removeElement unlinks one entry from the list and both indexes.
// Callers hold c.mu.
func (c *Cache) removeElement(el *list.Element) {
	ent := c.ll.Remove(el).(*cacheEntry)
	delete(c.byDigest, ent.digest)
	if c.byJob[ent.jobID] == ent.digest {
		delete(c.byJob, ent.jobID)
	}
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Max returns the entry budget.
func (c *Cache) Max() int { return c.max }

// Evictions returns how many entries capacity has pushed out.
func (c *Cache) Evictions() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evictions
}
