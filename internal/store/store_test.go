package store

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"cwcflow/internal/core"
)

func testWindow(seq int) *core.WindowStat {
	return &core.WindowStat{
		Start:   seq * 4,
		TimeLo:  float64(seq) * 2.0,
		TimeHi:  float64(seq)*2.0 + 1.5,
		NumCuts: 4,
		Species: []int{0, 1},
	}
}

func openStore(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestJournalRoundTrip: events written by one store are recovered by the
// next, with windows in order and the newest usable checkpoint found.
func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{})
	at := time.Unix(0, 12345)
	spec := json.RawMessage(`{"model":"sir","trajectories":4}`)
	if err := s.AppendSubmit("job-000001", at, spec, "alice"); err != nil {
		t.Fatal(err)
	}
	for seq := 0; seq < 5; seq++ {
		if err := s.AppendWindow("job-000001", seq, testWindow(seq)); err != nil {
			t.Fatal(err)
		}
	}
	for _, ck := range []struct{ traj, next int }{{0, 8}, {0, 16}, {0, 24}, {1, 12}} {
		if err := s.AppendCheckpoint("job-000001", ck.traj, ck.next, []byte{byte(ck.next)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.AppendSubmit("job-000002", at, spec, ""); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendTerminal("job-000002", "done", "", json.RawMessage(`{"state":"done"}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r := openStore(t, dir, Options{})
	recs := r.Recovered()
	if len(recs) != 2 {
		t.Fatalf("recovered %d jobs, want 2", len(recs))
	}
	j1 := recs[0]
	if j1.ID != "job-000001" || j1.Terminal != "" {
		t.Fatalf("job 1: %+v", j1)
	}
	if !j1.SubmittedAt.Equal(at) || string(j1.Spec) != string(spec) {
		t.Fatalf("job 1 spec/time: %s at %v", j1.Spec, j1.SubmittedAt)
	}
	if j1.Tenant != "alice" || recs[1].Tenant != "" {
		t.Fatalf("tenant ids lost in replay: %q / %q", j1.Tenant, recs[1].Tenant)
	}
	if j1.WindowCount != 5 || len(j1.Windows) != 5 || j1.FirstRetained != 0 {
		t.Fatalf("job 1 windows: count=%d retained=%d first=%d", j1.WindowCount, len(j1.Windows), j1.FirstRetained)
	}
	for i, w := range j1.Windows {
		if w.Start != i*4 || w.TimeLo != float64(i)*2.0 {
			t.Fatalf("window %d corrupted: %+v", i, w)
		}
	}
	if cp, ok := j1.BestCheckpoint(0, 20); !ok || cp.NextIdx != 16 || cp.Sim[0] != 16 {
		t.Fatalf("best checkpoint ≤20: %+v ok=%v", cp, ok)
	}
	if cp, ok := j1.BestCheckpoint(0, 100); !ok || cp.NextIdx != 24 {
		t.Fatalf("best checkpoint ≤100: %+v ok=%v", cp, ok)
	}
	if _, ok := j1.BestCheckpoint(0, 7); ok {
		t.Fatal("found a checkpoint below every retained index")
	}
	if _, ok := j1.BestCheckpoint(2, 100); ok {
		t.Fatal("found a checkpoint for an uncheckpointed trajectory")
	}
	j2 := recs[1]
	if j2.Terminal != "done" || string(j2.Status) != `{"state":"done"}` {
		t.Fatalf("job 2 terminal: %+v", j2)
	}
}

// TestTornTailTruncated: a journal whose last frame is cut mid-write (a
// SIGKILL image) replays its intact prefix and drops the tail.
func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{})
	if err := s.AppendSubmit("job-000001", time.Now(), json.RawMessage(`{}`), ""); err != nil {
		t.Fatal(err)
	}
	for seq := 0; seq < 3; seq++ {
		if err := s.AppendWindow("job-000001", seq, testWindow(seq)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	path := filepath.Join(dir, journalName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the final frame: drop its last 5 bytes.
	if err := os.WriteFile(path, data[:len(data)-5], 0o666); err != nil {
		t.Fatal(err)
	}

	r := openStore(t, dir, Options{})
	if st := r.Stats(); st.TruncatedBytes == 0 {
		t.Fatal("torn tail not detected")
	}
	recs := r.Recovered()
	if len(recs) != 1 || recs[0].WindowCount != 2 {
		t.Fatalf("recovered %d jobs, window count %d (want 1 job, 2 windows)", len(recs), recs[0].WindowCount)
	}
	// The store keeps appending after truncation: the next window lands
	// at the recovered frontier.
	if err := r.AppendWindow("job-000001", 2, testWindow(2)); err != nil {
		t.Fatal(err)
	}
	r.Close()
	r2 := openStore(t, dir, Options{})
	if recs := r2.Recovered(); recs[0].WindowCount != 3 {
		t.Fatalf("post-truncation append lost: count %d", recs[0].WindowCount)
	}
}

// TestCorruptFrameStopsReplay: a flipped byte mid-journal fails the CRC
// and everything after it is dropped.
func TestCorruptFrameStopsReplay(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{})
	if err := s.AppendSubmit("job-000001", time.Now(), json.RawMessage(`{}`), ""); err != nil {
		t.Fatal(err)
	}
	mark := s.Stats().JournalBytes
	for seq := 0; seq < 3; seq++ {
		if err := s.AppendWindow("job-000001", seq, testWindow(seq)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	path := filepath.Join(dir, journalName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[mark+frameHeader+2] ^= 0xff // corrupt the first window's payload
	if err := os.WriteFile(path, data, 0o666); err != nil {
		t.Fatal(err)
	}
	r := openStore(t, dir, Options{})
	recs := r.Recovered()
	if len(recs) != 1 || recs[0].WindowCount != 0 {
		t.Fatalf("replay did not stop at the corrupt frame: %d jobs, %d windows", len(recs), recs[0].WindowCount)
	}
}

// TestCompaction: the rewrite preserves live state (including the window
// frontier past evicted windows), drops forgotten jobs, and shrinks the
// journal.
func TestCompaction(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{RetainWindows: 4})
	spec := json.RawMessage(`{"model":"sir"}`)
	if err := s.AppendSubmit("job-000001", time.Now(), spec, "t1"); err != nil {
		t.Fatal(err)
	}
	for seq := 0; seq < 10; seq++ {
		if err := s.AppendWindow("job-000001", seq, testWindow(seq)); err != nil {
			t.Fatal(err)
		}
	}
	// Many superseded checkpoints: only the ladder survives compaction.
	for i := 0; i < 32; i++ {
		if err := s.AppendCheckpoint("job-000001", 0, i*4, make([]byte, 64)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.AppendSubmit("job-000002", time.Now(), spec, "t2"); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendTerminal("job-000002", "failed", "boom", json.RawMessage(`{}`)); err != nil {
		t.Fatal(err)
	}
	s.Forget("job-000002")
	before := s.Stats().JournalBytes
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	after := s.Stats()
	if after.JournalBytes >= before {
		t.Fatalf("compaction grew the journal: %d -> %d", before, after.JournalBytes)
	}
	if after.LastCompaction.IsZero() {
		t.Fatal("compaction time not recorded")
	}
	s.Close()

	r := openStore(t, dir, Options{RetainWindows: 4})
	recs := r.Recovered()
	if len(recs) != 1 {
		t.Fatalf("forgotten job survived compaction: %d jobs", len(recs))
	}
	j := recs[0]
	if j.WindowCount != 10 || j.FirstRetained != 6 || len(j.Windows) != 4 {
		t.Fatalf("frontier lost: count=%d first=%d retained=%d", j.WindowCount, j.FirstRetained, len(j.Windows))
	}
	if j.Windows[0].Start != 6*4 {
		t.Fatalf("retained tail starts at %d", j.Windows[0].Start)
	}
	if j.Tenant != "t1" {
		t.Fatalf("tenant id lost in compaction: %q", j.Tenant)
	}
	if cp, ok := j.BestCheckpoint(0, 1000); !ok || cp.NextIdx != 31*4 {
		t.Fatalf("newest checkpoint lost: %+v ok=%v", cp, ok)
	}
	if _, ok := j.BestCheckpoint(0, 4); ok {
		t.Fatal("superseded checkpoint survived the ladder")
	}
}

// TestAutoCompaction: appends past CompactBytes trigger the rewrite.
func TestAutoCompaction(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{CompactBytes: 4096})
	if err := s.AppendSubmit("job-000001", time.Now(), json.RawMessage(`{}`), ""); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := s.AppendCheckpoint("job-000001", i%3, i, make([]byte, 128)); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.LastCompaction.IsZero() {
		t.Fatal("auto-compaction never ran")
	}
	if st.JournalBytes > 8192 {
		t.Fatalf("journal kept growing: %d bytes", st.JournalBytes)
	}
}

// TestWindowJSONRoundTrip: a WindowStat decoded from the journal and
// re-encoded is byte-identical to the original encoding — the property
// that keeps recovered-result digests bit-identical.
func TestWindowJSONRoundTrip(t *testing.T) {
	ws := &core.WindowStat{
		Start:   12,
		TimeLo:  1.0 / 3.0,
		TimeHi:  0.1 + 0.2, // classic non-representable sum
		NumCuts: 3,
		Species: []int{0, 2},
	}
	orig, err := json.Marshal(ws)
	if err != nil {
		t.Fatal(err)
	}
	var decoded core.WindowStat
	if err := json.Unmarshal(orig, &decoded); err != nil {
		t.Fatal(err)
	}
	again, err := json.Marshal(&decoded)
	if err != nil {
		t.Fatal(err)
	}
	if string(orig) != string(again) {
		t.Fatalf("round trip diverged:\n  %s\n  %s", orig, again)
	}
}
