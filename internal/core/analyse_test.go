package core

import (
	"testing"

	"cwcflow/internal/sim"
	"cwcflow/internal/stats"
	"cwcflow/internal/window"
)

// syntheticWindow builds a window of nCuts cuts over nTraj trajectories
// and ns species with varied, deterministic counts (so k-means and period
// detection have real work to do).
func syntheticWindow(nCuts, nTraj, ns int) window.Window {
	w := window.Window{Start: 0, Cuts: make([]window.Cut, nCuts)}
	for k := 0; k < nCuts; k++ {
		states := make([][]int64, nTraj)
		for i := range states {
			row := make([]int64, ns)
			for s := range row {
				// A mix of oscillation (period ~8 cuts) and per-trajectory
				// offsets: two natural clusters (even/odd trajectories).
				base := int64((i%2)*50 + i)
				osc := int64(10 * ((k + i + s) % 8))
				row[s] = base + osc
			}
			states[i] = row
		}
		w.Cuts[k] = window.Cut{Index: k, Time: float64(k) * 0.5, States: states}
	}
	return w
}

func analyseCfg() Config {
	return Config{
		Factory:       func(int, int64) (sim.Simulator, error) { return nil, nil },
		Trajectories:  1,
		End:           1,
		Period:        1,
		KMeansK:       2,
		PeriodHalfWin: 1,
		BaseSeed:      7,
	}
}

// TestAnalyseWindowAllocationFree pins the tentpole property of the
// statistical engine: with a reused WindowStat and a warmed stats.Engine,
// analysing a window of stable shape — moments, medians, period detection
// and k-means all enabled — performs zero allocations.
func TestAnalyseWindowAllocationFree(t *testing.T) {
	w := syntheticWindow(16, 64, 3)
	species := []int{0, 1, 2}
	cfg := analyseCfg()
	eng := stats.NewEngine()
	var ws WindowStat
	// Warm up: grows every buffer to the steady-state shape.
	if err := AnalyseWindowInto(&ws, eng, w, species, cfg); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if err := AnalyseWindowInto(&ws, eng, w, species, cfg); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("AnalyseWindowInto allocates %.1f times per window in steady state, want 0", allocs)
	}
}

// TestAnalyseWindowIntoMatchesAnalyseWindow pins that the reusable-scratch
// path computes exactly what the convenience path computes — which is also
// what makes a farm of engines deterministic regardless of its width.
func TestAnalyseWindowIntoMatchesAnalyseWindow(t *testing.T) {
	w := syntheticWindow(16, 32, 2)
	species := []int{0, 1}
	cfg := analyseCfg()

	ref, err := AnalyseWindow(w, species, cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng := stats.NewEngine()
	var got WindowStat
	// Run twice through the same engine/ws to cover the reuse path.
	for run := 0; run < 2; run++ {
		if err := AnalyseWindowInto(&got, eng, w, species, cfg); err != nil {
			t.Fatal(err)
		}
	}
	if got.Start != ref.Start || got.NumCuts != ref.NumCuts || got.TimeLo != ref.TimeLo || got.TimeHi != ref.TimeHi {
		t.Fatalf("header mismatch: got %+v, want %+v", got, ref)
	}
	for k := range ref.PerCut {
		for s := range ref.PerCut[k] {
			if got.PerCut[k][s] != ref.PerCut[k][s] {
				t.Fatalf("PerCut[%d][%d] = %+v, want %+v", k, s, got.PerCut[k][s], ref.PerCut[k][s])
			}
			if got.Median[k][s] != ref.Median[k][s] {
				t.Fatalf("Median[%d][%d] = %g, want %g", k, s, got.Median[k][s], ref.Median[k][s])
			}
		}
	}
	if len(got.Period) != len(ref.Period) {
		t.Fatalf("period stats = %d, want %d", len(got.Period), len(ref.Period))
	}
	for s := range ref.Period {
		if got.Period[s] != ref.Period[s] {
			t.Fatalf("Period[%d] = %+v, want %+v", s, got.Period[s], ref.Period[s])
		}
	}
	if (got.KMeans == nil) != (ref.KMeans == nil) {
		t.Fatal("k-means presence mismatch")
	}
	if got.KMeans.Inertia != ref.KMeans.Inertia || got.KMeans.Iterations != ref.KMeans.Iterations {
		t.Fatalf("k-means = %+v, want %+v", got.KMeans, ref.KMeans)
	}
	for i := range ref.KMeans.Assign {
		if got.KMeans.Assign[i] != ref.KMeans.Assign[i] {
			t.Fatalf("k-means assign[%d] = %d, want %d", i, got.KMeans.Assign[i], ref.KMeans.Assign[i])
		}
	}
}

func BenchmarkAnalyseWindowInto(b *testing.B) {
	w := syntheticWindow(16, 256, 3)
	species := []int{0, 1, 2}
	cfg := analyseCfg()
	cfg.KMeansK = 4
	eng := stats.NewEngine()
	var ws WindowStat
	if err := AnalyseWindowInto(&ws, eng, w, species, cfg); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := AnalyseWindowInto(&ws, eng, w, species, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
