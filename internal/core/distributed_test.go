package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"cwcflow/internal/dff"
)

// startWorkers spins up an in-process virtual cluster of n sim workers on
// loopback TCP and returns their addresses.
func startWorkers(t *testing.T, ctx context.Context, n, simWorkers int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		l, err := dff.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = l.Addr().String()
		go func() {
			// Context cancellation is the expected shutdown path.
			_ = ServeSimWorker(ctx, l, simWorkers, func(err error) {
				// Job handler errors after master disconnect are expected
				// during teardown; real failures surface on the master.
				t.Logf("worker: %v", err)
			})
		}()
	}
	return addrs
}

func TestFactoryFor(t *testing.T) {
	for _, name := range []string{
		"neurospora", "neurospora-nrm", "neurospora-cwc",
		"lotka-volterra", "sir", "schlogl", "enzyme",
	} {
		f, err := FactoryFor(ModelRef{Name: name, Omega: 10})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		s, err := f(0, 1)
		if err != nil {
			t.Fatalf("%s: factory: %v", name, err)
		}
		if s.NumSpecies() < 1 {
			t.Fatalf("%s: no species", name)
		}
	}
	if _, err := FactoryFor(ModelRef{Name: "nope"}); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestDistributedMatchesSharedMemory(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	model := ModelRef{Name: "neurospora", Omega: 20}
	cfg := smallConfig()
	cfg.Factory = nil // distributed master resolves it from the model ref

	// Shared-memory reference with the identical model and seeds.
	refCfg := cfg
	f, err := FactoryFor(model)
	if err != nil {
		t.Fatal(err)
	}
	refCfg.Factory = f
	ref := runMeans(t, refCfg)

	workerCtx, stopWorkers := context.WithCancel(ctx)
	defer stopWorkers()
	addrs := startWorkers(t, workerCtx, 3, 2)

	var got []float64
	info, err := RunDistributed(ctx, cfg, model, addrs, func(ws WindowStat) error {
		for k := range ws.PerCut {
			got = append(got, ws.PerCut[k][0].Mean)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ref) {
		t.Fatalf("distributed produced %d means, shared-memory %d", len(got), len(ref))
	}
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("mean[%d]: distributed %g != shared %g", i, got[i], ref[i])
		}
	}
	if info.Cuts != 25 || info.Samples != int64(25*cfg.Trajectories) {
		t.Fatalf("info = %+v", info)
	}
	if info.Reactions == 0 {
		t.Fatal("worker trailers did not report reactions")
	}
}

func TestDistributedSingleWorker(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	workerCtx, stopWorkers := context.WithCancel(ctx)
	defer stopWorkers()
	addrs := startWorkers(t, workerCtx, 1, 4)

	cfg := smallConfig()
	cfg.Factory = nil
	info, err := RunDistributed(ctx, cfg, ModelRef{Name: "sir"}, addrs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if info.Windows == 0 || info.Cuts == 0 {
		t.Fatalf("empty run: %+v", info)
	}
}

func TestDistributedUnknownModel(t *testing.T) {
	cfg := smallConfig()
	cfg.Factory = nil
	_, err := RunDistributed(context.Background(), cfg, ModelRef{Name: "bogus"}, []string{"127.0.0.1:1"}, nil)
	if err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestDistributedNoWorkers(t *testing.T) {
	cfg := smallConfig()
	_, err := RunDistributed(context.Background(), cfg, ModelRef{Name: "sir"}, nil, nil)
	if err == nil {
		t.Fatal("no workers accepted")
	}
}

func TestDistributedDialFailure(t *testing.T) {
	cfg := smallConfig()
	cfg.Factory = nil
	// A port nothing listens on: dial must fail fast with a clear error.
	_, err := RunDistributed(context.Background(), cfg, ModelRef{Name: "sir"}, []string{"127.0.0.1:1"}, nil)
	if err == nil {
		t.Fatal("dial to dead address succeeded")
	}
}

func TestDistributedWorkerTeardownMidStream(t *testing.T) {
	// Cancelling the worker context mid-run must surface as an error on
	// the master (dropped connection), not a hang or silent truncation.
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	workerCtx, stopWorkers := context.WithCancel(ctx)
	addrs := startWorkers(t, workerCtx, 2, 1)

	cfg := smallConfig()
	cfg.Factory = nil
	cfg.Trajectories = 16
	cfg.End = 100000 // far beyond what completes before teardown
	cfg.WindowSize = 4
	errc := make(chan error, 1)
	go func() {
		// Tear the workers down as soon as the first analysed window
		// proves the stream is live — deterministically mid-run.
		_, err := RunDistributed(ctx, cfg, ModelRef{Name: "neurospora", Omega: 50}, addrs,
			func(WindowStat) error {
				stopWorkers()
				return nil
			})
		errc <- err
	}()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("master succeeded despite worker teardown")
		}
		if errors.Is(err, context.DeadlineExceeded) {
			t.Fatal("master hit the test deadline instead of failing fast")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("master hung after worker teardown")
	}
}

func TestDistributedIdleTimeoutFailsFast(t *testing.T) {
	// A black-hole worker: accepts the connection, never answers. With
	// WorkerIdleTimeout set the master must fail the run quickly instead
	// of waiting on the silent stream forever.
	l, err := dff.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			defer conn.Close() // keep it open, stay silent
		}
	}()

	cfg := smallConfig()
	cfg.Factory = nil
	cfg.WorkerIdleTimeout = 200 * time.Millisecond
	errc := make(chan error, 1)
	go func() {
		_, err := RunDistributed(context.Background(), cfg, ModelRef{Name: "sir"},
			[]string{l.Addr().String()}, nil)
		errc <- err
	}()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("run succeeded against a silent worker")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("master hung on a silent worker despite the idle timeout")
	}
}
