package core

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"

	"cwcflow/internal/gillespie"
	"cwcflow/internal/gpu"
	"cwcflow/internal/models"
	"cwcflow/internal/sim"
)

// neuroFactory builds independent Neurospora engines.
func neuroFactory(omega float64) SimulatorFactory {
	sys := models.Neurospora(omega)
	return func(_ int, seed int64) (sim.Simulator, error) {
		return gillespie.NewDirect(sys, seed)
	}
}

func smallConfig() Config {
	return Config{
		Factory:      neuroFactory(20),
		Trajectories: 8,
		End:          12,
		Quantum:      2,
		Period:       0.5,
		SimWorkers:   3,
		StatEngines:  2,
		WindowSize:   8,
		WindowStep:   8,
		BaseSeed:     100,
	}
}

func TestRunProducesOrderedCompleteWindows(t *testing.T) {
	cfg := smallConfig()
	var got []WindowStat
	info, err := Run(context.Background(), cfg, func(ws WindowStat) error {
		got = append(got, ws)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// 12/0.5 + 1 = 25 cuts → windows of 8: 3 full + 1 tail of 1.
	if info.Cuts != 25 {
		t.Fatalf("cuts = %d, want 25", info.Cuts)
	}
	if info.Windows != 4 {
		t.Fatalf("windows = %d, want 4", info.Windows)
	}
	if info.Samples != int64(25*cfg.Trajectories) {
		t.Fatalf("samples = %d, want %d", info.Samples, 25*cfg.Trajectories)
	}
	if info.Reactions == 0 {
		t.Fatal("no reactions recorded")
	}
	// Ordered gather: starts must be 0, 8, 16, 24.
	for i, ws := range got {
		if ws.Start != 8*i {
			t.Fatalf("window %d start = %d, want %d", i, ws.Start, 8*i)
		}
	}
	// Moments sanity: N = trajectories everywhere, means within min/max.
	for _, ws := range got {
		for k := 0; k < ws.NumCuts; k++ {
			for si := range ws.Species {
				m := ws.PerCut[k][si]
				if m.N != int64(cfg.Trajectories) {
					t.Fatalf("moment N = %d, want %d", m.N, cfg.Trajectories)
				}
				if m.Mean < m.Min-1e-9 || m.Mean > m.Max+1e-9 {
					t.Fatalf("mean %g outside [%g, %g]", m.Mean, m.Min, m.Max)
				}
				if med := ws.Median[k][si]; med < m.Min || med > m.Max {
					t.Fatalf("median %g outside [%g, %g]", med, m.Min, m.Max)
				}
			}
		}
	}
}

func TestRunDeterministicForSeed(t *testing.T) {
	cfg := smallConfig()
	run := func() []WindowStat {
		var got []WindowStat
		if _, err := Run(context.Background(), cfg, func(ws WindowStat) error {
			got = append(got, ws)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return got
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("window counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		for k := range a[i].PerCut {
			for si := range a[i].PerCut[k] {
				if a[i].PerCut[k][si] != b[i].PerCut[k][si] {
					t.Fatalf("window %d cut %d species %d: %+v vs %+v",
						i, k, si, a[i].PerCut[k][si], b[i].PerCut[k][si])
				}
			}
		}
	}
}

func TestRunWorkerCountInvariance(t *testing.T) {
	// Results must not depend on the parallelism degree (same seeds, same
	// trajectories, deterministic analysis).
	base := smallConfig()
	ref := runMeans(t, base)
	for _, workers := range []int{1, 2, 8} {
		for _, engines := range []int{1, 4} {
			cfg := base
			cfg.SimWorkers = workers
			cfg.StatEngines = engines
			got := runMeans(t, cfg)
			if len(got) != len(ref) {
				t.Fatalf("workers=%d engines=%d: %d means, want %d", workers, engines, len(got), len(ref))
			}
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("workers=%d engines=%d: mean[%d] = %g, want %g", workers, engines, i, got[i], ref[i])
				}
			}
		}
	}
}

func runMeans(t *testing.T, cfg Config) []float64 {
	t.Helper()
	var means []float64
	if _, err := Run(context.Background(), cfg, func(ws WindowStat) error {
		for k := range ws.PerCut {
			means = append(means, ws.PerCut[k][0].Mean)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return means
}

func TestRunQuantumInvariance(t *testing.T) {
	// The simulation quantum is a scheduling knob: it must not change the
	// scientific results (paper: "quantum size negligibly affects
	// multi-core performance" — and never correctness).
	base := smallConfig()
	ref := runMeans(t, base)
	for _, q := range []float64{0.5, 1, 6, 100} {
		cfg := base
		cfg.Quantum = q
		got := runMeans(t, cfg)
		if len(got) != len(ref) {
			t.Fatalf("quantum=%g: %d means, want %d", q, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("quantum=%g: mean[%d] = %g, want %g", q, i, got[i], ref[i])
			}
		}
	}
}

func TestRunWithKMeansAndPeriod(t *testing.T) {
	cfg := smallConfig()
	cfg.End = 60
	cfg.Period = 0.5
	cfg.WindowSize = 121 // whole run in one window: covers ~2.5 periods
	cfg.WindowStep = 121
	cfg.KMeansK = 2
	cfg.PeriodHalfWin = 8
	cfg.Species = []int{models.NeuroM}
	var got []WindowStat
	if _, err := Run(context.Background(), cfg, func(ws WindowStat) error {
		got = append(got, ws)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("windows = %d, want 1", len(got))
	}
	ws := got[0]
	if ws.KMeans == nil {
		t.Fatal("k-means missing")
	}
	if len(ws.KMeans.Assign) != cfg.Trajectories {
		t.Fatalf("k-means assignments = %d, want %d", len(ws.KMeans.Assign), cfg.Trajectories)
	}
	if len(ws.Period) != 1 {
		t.Fatalf("period stats = %d, want 1", len(ws.Period))
	}
	p := ws.Period[0]
	if p.N == 0 {
		t.Fatal("no trajectory had a detectable period over 60h")
	}
	if p.Mean < 10 || p.Mean > 35 {
		t.Fatalf("mean period = %g h, want 10..35 (true ~21.5)", p.Mean)
	}
}

func TestRunErrorPropagation(t *testing.T) {
	boom := errors.New("factory boom")
	cfg := smallConfig()
	n := 0
	cfg.Factory = func(traj int, seed int64) (sim.Simulator, error) {
		n++
		if n > 3 {
			return nil, boom
		}
		return gillespie.NewDirect(models.Neurospora(10), seed)
	}
	_, err := Run(context.Background(), cfg, nil)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
}

func TestRunDisplayError(t *testing.T) {
	boom := errors.New("display boom")
	cfg := smallConfig()
	_, err := Run(context.Background(), cfg, func(WindowStat) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
}

func TestRunCancellation(t *testing.T) {
	cfg := smallConfig()
	cfg.End = 1e6 // effectively endless
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(ctx, cfg, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.Factory = nil },
		func(c *Config) { c.Trajectories = 0 },
		func(c *Config) { c.End = 0 },
		func(c *Config) { c.Period = -1 },
		func(c *Config) { c.Species = []int{99} },
	}
	for i, mutate := range cases {
		cfg := smallConfig()
		mutate(&cfg)
		if _, err := Run(context.Background(), cfg, nil); err == nil {
			t.Fatalf("case %d: invalid config accepted", i)
		}
	}
}

func TestRunGPUMatchesCPU(t *testing.T) {
	cfg := smallConfig()
	cpu := runMeans(t, cfg)

	dev, err := gpu.NewDevice(gpu.DeviceConfig{
		SMs: 2, CoresPerSM: 64, WarpSize: 32,
		LaunchOverhead: 1e-5, SecondsPerCost: 1e-8,
	})
	if err != nil {
		t.Fatal(err)
	}
	var gpuMeans []float64
	info, ginfo, err := RunGPU(context.Background(), cfg, dev, func(ws WindowStat) error {
		for k := range ws.PerCut {
			gpuMeans = append(gpuMeans, ws.PerCut[k][0].Mean)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(gpuMeans) != len(cpu) {
		t.Fatalf("gpu means = %d, want %d", len(gpuMeans), len(cpu))
	}
	for i := range cpu {
		if gpuMeans[i] != cpu[i] {
			t.Fatalf("gpu mean[%d] = %g, cpu %g — offloading changed results", i, gpuMeans[i], cpu[i])
		}
	}
	if ginfo.Launches < int(cfg.End/cfg.Quantum) {
		t.Fatalf("launches = %d, want >= %d", ginfo.Launches, int(cfg.End/cfg.Quantum))
	}
	if ginfo.SimTime <= 0 {
		t.Fatal("no simulated device time")
	}
	if ginfo.Utilization <= 0 || ginfo.Utilization > 1 {
		t.Fatalf("utilization = %g out of (0,1]", ginfo.Utilization)
	}
	// Uneven SSA trajectories must show real divergence.
	if ginfo.Utilization > 0.999 {
		t.Fatalf("utilization = %g: expected visible SIMT divergence", ginfo.Utilization)
	}
	if info.Cuts != 25 {
		t.Fatalf("gpu cuts = %d, want 25", info.Cuts)
	}
}

func TestGPUQuantumSensitivity(t *testing.T) {
	// Smaller quanta = more kernel launches (more launch overhead), the
	// Table I effect.
	dev, err := gpu.NewDevice(gpu.TeslaK40())
	if err != nil {
		t.Fatal(err)
	}
	launches := map[float64]int{}
	for _, q := range []float64{1, 4} {
		cfg := smallConfig()
		cfg.Quantum = q
		_, ginfo, err := RunGPU(context.Background(), cfg, dev, nil)
		if err != nil {
			t.Fatal(err)
		}
		launches[q] = ginfo.Launches
	}
	if launches[1] <= launches[4] {
		t.Fatalf("launches(q=1)=%d should exceed launches(q=4)=%d", launches[1], launches[4])
	}
}

func TestCSVDisplay(t *testing.T) {
	cfg := smallConfig()
	cfg.Species = []int{models.NeuroM}
	var sb strings.Builder
	if _, err := Run(context.Background(), cfg, CSVDisplay(&sb, []string{"M"})); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if lines[0] != "time,mean_M,std_M,median_M" {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines) != 1+25 {
		t.Fatalf("lines = %d, want 26", len(lines))
	}
	if !strings.HasPrefix(lines[1], "0,") {
		t.Fatalf("first data line %q should start at t=0", lines[1])
	}
}

func TestTeeDisplay(t *testing.T) {
	a, b := 0, 0
	sink := Tee(
		func(WindowStat) error { a++; return nil },
		nil,
		func(WindowStat) error { b++; return nil },
	)
	if err := sink(WindowStat{}); err != nil {
		t.Fatal(err)
	}
	if a != 1 || b != 1 {
		t.Fatal("tee did not fan out")
	}
}

// TestOnlineMeanConvergence: with many trajectories, the ensemble mean of
// M at t=0 must equal the (deterministic) initial count, and the variance
// at t=0 must be zero.
func TestInitialCutIsExact(t *testing.T) {
	cfg := smallConfig()
	cfg.Trajectories = 16
	sys := models.Neurospora(20)
	want := float64(sys.Init[models.NeuroM])
	var first *WindowStat
	if _, err := Run(context.Background(), cfg, func(ws WindowStat) error {
		if first == nil {
			w := ws
			first = &w
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	m := first.PerCut[0][models.NeuroM]
	if m.Mean != want || m.Var != 0 {
		t.Fatalf("t=0 cut: mean=%g var=%g, want mean=%g var=0", m.Mean, m.Var, want)
	}
	if math.IsNaN(m.Mean) {
		t.Fatal("NaN mean")
	}
}

func BenchmarkPipelineSmall(b *testing.B) {
	cfg := smallConfig()
	for i := 0; i < b.N; i++ {
		if _, err := Run(context.Background(), cfg, nil); err != nil {
			b.Fatal(err)
		}
	}
}
