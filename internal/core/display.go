package core

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// CSVDisplay returns a display sink writing one line per cut with the
// ensemble mean, standard deviation and median of every analysed species:
//
//	time,mean_<name0>,std_<name0>,median_<name0>,mean_<name1>,...
//
// names labels the analysed species in cfg.Species order (falling back to
// s<i> when nil). The header is written on first use.
func CSVDisplay(w io.Writer, names []string) func(WindowStat) error {
	wroteHeader := false
	return func(ws WindowStat) error {
		if !wroteHeader {
			cols := []string{"time"}
			for si := range ws.Species {
				n := fmt.Sprintf("s%d", ws.Species[si])
				if si < len(names) && names[si] != "" {
					n = names[si]
				}
				cols = append(cols, "mean_"+n, "std_"+n, "median_"+n)
			}
			if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
				return err
			}
			wroteHeader = true
		}
		dt := 0.0
		if ws.NumCuts > 1 {
			dt = (ws.TimeHi - ws.TimeLo) / float64(ws.NumCuts-1)
		}
		for k := 0; k < ws.NumCuts; k++ {
			var sb strings.Builder
			fmt.Fprintf(&sb, "%g", ws.TimeLo+float64(k)*dt)
			for si := range ws.Species {
				m := ws.PerCut[k][si]
				fmt.Fprintf(&sb, ",%g,%g,%g", m.Mean, math.Sqrt(math.Max(m.Var, 0)), ws.Median[k][si])
			}
			if _, err := fmt.Fprintln(w, sb.String()); err != nil {
				return err
			}
		}
		return nil
	}
}

// Tee fans one display sink out to several.
func Tee(sinks ...func(WindowStat) error) func(WindowStat) error {
	return func(ws WindowStat) error {
		for _, s := range sinks {
			if s == nil {
				continue
			}
			if err := s(ws); err != nil {
				return err
			}
		}
		return nil
	}
}
