// Package core assembles the CWC simulation-analysis pipeline — the
// paper's primary artifact (Fig. 2) — from the stream-skeleton runtime:
//
//	generation of simulation tasks
//	  → farm of simulation engines (on-demand scheduling, feedback
//	    rescheduling of incomplete tasks after every simulation quantum)
//	  → alignment of trajectories (samples → time cuts)
//	  → generation of sliding windows of trajectory cuts
//	  → farm of statistical engines (mean / variance / quantiles /
//	    k-means / period detection), gathered in order
//	  → display of results (user sink, e.g. CSV writer)
//
// Everything runs concurrently: statistics stream out while simulations
// are still running, which is the point of the paper's on-line design.
// The same pipeline retargets distributed deployments (package dff) and a
// simulated GPGPU (RunGPU) with configuration-level changes only.
package core

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"cwcflow/internal/ff"
	"cwcflow/internal/sim"
	"cwcflow/internal/stats"
	"cwcflow/internal/window"
)

// SimulatorFactory builds the stochastic engine for one trajectory. It
// must return an independent simulator (private RNG seeded from seed).
type SimulatorFactory func(traj int, seed int64) (sim.Simulator, error)

// Config describes one simulation-analysis run.
type Config struct {
	// Factory creates per-trajectory simulators.
	Factory SimulatorFactory
	// Trajectories is the Monte Carlo ensemble size.
	Trajectories int
	// End is the simulated horizon.
	End float64
	// Quantum is the simulated time a task advances per scheduling step;
	// smaller quanta = finer load balancing and fresher on-line results.
	Quantum float64
	// Period is the sampling interval τ; samples at k·Period form cuts.
	Period float64

	// SimWorkers is the parallelism of the simulation farm.
	SimWorkers int
	// StatEngines is the parallelism of the statistics farm.
	StatEngines int

	// WindowSize and WindowStep configure the sliding windows of cuts fed
	// to the statistical engines (step == size gives exact, non-overlapping
	// cut coverage; step < size gives smoother period estimates).
	WindowSize int
	WindowStep int

	// Species selects the observable indices to analyse (nil = all).
	Species []int
	// KMeansK, when > 0, clusters the trajectory ensemble of each
	// window's last cut into K groups.
	KMeansK int
	// PeriodHalfWin is the smoothing half-window (in cuts) of the peak
	// detector used for period estimation; 0 disables period analysis.
	PeriodHalfWin int

	// BaseSeed derives per-trajectory seeds (seed = BaseSeed + traj).
	BaseSeed int64

	// RawSink, when non-nil, receives every raw sample as it leaves the
	// simulation farm (the paper's "raw simulation results" tap feeding
	// permanent storage), before alignment. It is called sequentially.
	// The sample's State is backed by a pooled batch arena and is only
	// valid for the duration of the call: copy it to retain it.
	RawSink func(sim.Sample) error

	// WorkerIdleTimeout, when > 0, bounds how long RunDistributed waits
	// for the next result frame from any sim worker: a silently dead
	// worker host (no TCP reset reaches the master) fails the run instead
	// of hanging it forever. Leave generous headroom over the longest
	// expected quantum; 0 disables the bound. Shared-memory runs ignore
	// it.
	WorkerIdleTimeout time.Duration
}

// Normalized validates the configuration and returns a copy with every
// default filled in, without running anything. It is the entry point for
// callers outside this package (e.g. the job service) that need the
// effective Quantum/WindowSize/... of a run before driving the stages
// themselves.
func (c Config) Normalized() (Config, error) { return c.withDefaults() }

// withDefaults validates the configuration and fills defaults.
func (c Config) withDefaults() (Config, error) {
	if c.Factory == nil {
		return c, errors.New("core: nil simulator factory")
	}
	if c.Trajectories < 1 {
		return c, fmt.Errorf("core: need at least 1 trajectory, got %d", c.Trajectories)
	}
	if c.End <= 0 || c.Period <= 0 {
		return c, fmt.Errorf("core: End and Period must be positive (got %g, %g)", c.End, c.Period)
	}
	if c.Quantum <= 0 {
		c.Quantum = c.Period
	}
	if c.SimWorkers < 1 {
		c.SimWorkers = 1
	}
	if c.StatEngines < 1 {
		c.StatEngines = 1
	}
	if c.WindowSize < 1 {
		c.WindowSize = 16
	}
	if c.WindowStep < 1 || c.WindowStep > c.WindowSize {
		c.WindowStep = c.WindowSize
	}
	return c, nil
}

// WindowStat is the output of one statistical engine for one window: the
// "filtered simulation results" streamed to the display stage.
type WindowStat struct {
	// Start is the index of the window's first cut.
	Start int
	// TimeLo and TimeHi are the window's time extent.
	TimeLo, TimeHi float64
	// NumCuts is the number of cuts summarised (< WindowSize only for the
	// trailing window).
	NumCuts int
	// Species lists the analysed observable indices, in the order used by
	// PerCut and Period.
	Species []int
	// PerCut[k][s] are the ensemble moments (across trajectories) of
	// species Species[s] at the window's k-th cut.
	PerCut [][]stats.Moments
	// Median[k][s] is the ensemble median matching PerCut.
	Median [][]float64
	// Period[s] aggregates per-trajectory oscillation-period estimates of
	// species Species[s] over this window (N = trajectories with a
	// detectable period). Empty when period analysis is disabled.
	Period []stats.Moments
	// KMeans clusters trajectories by their analysed-species vector at
	// the window's last cut (nil when disabled).
	KMeans *stats.KMeansResult
}

// RunInfo summarises a completed run.
type RunInfo struct {
	Trajectories int
	Cuts         int
	Windows      int
	Samples      int64
	Reactions    uint64
	DeadTasks    int
}

// Run executes the full pipeline on shared memory, invoking display for
// every WindowStat in window order. It returns when every window has been
// analysed and displayed.
func Run(ctx context.Context, cfg Config, display func(WindowStat) error) (RunInfo, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return RunInfo{}, err
	}
	if display == nil {
		display = func(WindowStat) error { return nil }
	}

	var info RunInfo
	info.Trajectories = cfg.Trajectories
	var samples atomic.Int64
	var reactions atomic.Uint64
	var dead atomic.Int64
	var cutsEmitted atomic.Int64

	species, err := resolveSpecies(cfg)
	if err != nil {
		return info, err
	}

	// Stage 1: generation of simulation tasks.
	source := ff.Source[*sim.Task](func(_ context.Context, emit ff.Emit[*sim.Task]) error {
		for i := 0; i < cfg.Trajectories; i++ {
			task, err := NewTrajectoryTask(cfg, i)
			if err != nil {
				return err
			}
			if err := emit(task); err != nil {
				return err
			}
		}
		return nil
	})

	// Stage 2: farm of simulation engines with feedback rescheduling. Each
	// quantum's samples travel as one pooled batch (a single arena-backed
	// message per quantum instead of one allocation per sample); the
	// alignment stage copies the states into cut storage and recycles the
	// batch.
	simFarm := ff.NewFarmFeedback(cfg.SimWorkers, func(int) ff.FeedbackWorker[*sim.Task, *sim.Batch] {
		// fb is this worker's reusable feedback cell: the farm reads *fb
		// before the next DoStep, so one heap cell per worker replaces a
		// per-quantum allocation.
		var fb *sim.Task
		return ff.FeedbackWorkerFunc[*sim.Task, *sim.Batch](func(_ context.Context, task *sim.Task, emit ff.Emit[*sim.Batch]) (**sim.Task, error) {
			b := sim.GetBatch()
			if err := task.RunQuantumBatch(b); err != nil {
				b.Release()
				return nil, err
			}
			samples.Add(int64(len(b.Samples)))
			if len(b.Samples) == 0 {
				b.Release()
			} else if err := emit(b); err != nil {
				return nil, err
			}
			if task.Done() {
				reactions.Add(task.Steps())
				if task.Dead() {
					dead.Add(1)
				}
				return nil, nil
			}
			fb = task
			return &fb, nil
		})
	})

	// Stages 3–5: alignment → sliding windows → stat farm.
	analysis := analysisPipeline(cfg, species, &cutsEmitted)

	// Assemble: sim farm → (raw-results tap) → analysis pipeline.
	var pipeline ff.Node[*sim.Task, WindowStat]
	if cfg.RawSink != nil {
		tap := ff.Tee(func(b *sim.Batch) error {
			for _, s := range b.Samples {
				if err := cfg.RawSink(s); err != nil {
					return err
				}
			}
			return nil
		})
		tapped := ff.Compose[*sim.Task, *sim.Batch, *sim.Batch](simFarm, tap)
		pipeline = ff.Compose[*sim.Task, *sim.Batch, WindowStat](tapped, analysis)
	} else {
		pipeline = ff.Compose[*sim.Task, *sim.Batch, WindowStat](simFarm, analysis)
	}

	windows := 0
	err = ff.Run(ctx, source, pipeline, func(ws WindowStat) error {
		windows++
		return display(ws)
	})
	if err != nil {
		return info, err
	}
	info.Cuts = int(cutsEmitted.Load())
	info.Windows = windows
	info.Samples = samples.Load()
	info.Reactions = reactions.Load()
	info.DeadTasks = int(dead.Load())
	return info, nil
}

// analysisPipeline builds stages 3–5 of Fig. 2: alignment of trajectories,
// generation of sliding windows, and the ordered farm of statistical
// engines. It is shared by the shared-memory, GPU and distributed runners.
// Input arrives as pooled sample batches; the alignment stage copies each
// state into per-cut storage and releases the batch, so batch recycling
// survives the full pipeline while cuts flow to the (asynchronous) stat
// farm with independent lifetimes.
func analysisPipeline(cfg Config, species []int, cutsEmitted *atomic.Int64) ff.Node[*sim.Batch, WindowStat] {
	// Stage 3: alignment of trajectories (sample batches → cuts).
	alignNode := ff.NodeFunc[*sim.Batch, window.Cut](func(ctx context.Context, in <-chan *sim.Batch, emit ff.Emit[window.Cut]) error {
		aligner, err := window.NewAligner(cfg.Trajectories)
		if err != nil {
			return err
		}
		onCut := func(c window.Cut) error {
			cutsEmitted.Add(1)
			return emit(c)
		}
		for {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case b, ok := <-in:
				if !ok {
					return aligner.Close()
				}
				// The batch is released on every path: by the time Push
				// returns — error or not — the aligner has copied each
				// pushed state into cut storage, so an early error must not
				// leak the batch.
				var err error
				for _, s := range b.Samples {
					if err = aligner.Push(s, onCut); err != nil {
						break
					}
				}
				b.Release()
				if err != nil {
					return err
				}
			}
		}
	})

	// Stage 4: generation of sliding windows of trajectory cuts.
	windowNode := ff.NodeFunc[window.Cut, window.Window](func(ctx context.Context, in <-chan window.Cut, emit ff.Emit[window.Window]) error {
		slider, err := window.NewSlider(cfg.WindowSize, cfg.WindowStep)
		if err != nil {
			return err
		}
		for {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case c, ok := <-in:
				if !ok {
					return slider.Flush(func(w window.Window) error { return emit(w) })
				}
				if err := slider.Push(c, func(w window.Window) error { return emit(w) }); err != nil {
					return err
				}
			}
		}
	})

	// Stage 5: farm of statistical engines, gathered in window order. Each
	// worker owns a reusable stats.Engine, so the per-window scratch
	// (k-means arenas, quantile buffers, period traces) is allocated once
	// per engine, not once per window.
	statFarm := ff.NewFarm(cfg.StatEngines, func(int) ff.Worker[window.Window, WindowStat] {
		eng := stats.NewEngine()
		return ff.WorkerFunc[window.Window, WindowStat](func(_ context.Context, w window.Window, emit ff.Emit[WindowStat]) error {
			var ws WindowStat
			if err := AnalyseWindowInto(&ws, eng, w, species, cfg); err != nil {
				return err
			}
			return emit(ws)
		})
	}, ff.WithOrdered())

	return ff.Compose(ff.Compose(alignNode, windowNode), statFarm)
}

// ResolveSpecies validates cfg.Species against a probe simulator built
// from the factory, defaulting to all observables when none are selected.
// Exported for streaming consumers that call AnalyseWindow directly.
func ResolveSpecies(cfg Config) ([]int, error) { return resolveSpecies(cfg) }

// NewTrajectoryTask builds trajectory traj's simulator and task exactly as
// the pipeline's generation stage does (per-trajectory seed = BaseSeed +
// traj), so out-of-band schedulers (the job service) produce the same
// ensemble as a batch Run of the same Config.
func NewTrajectoryTask(cfg Config, traj int) (*sim.Task, error) {
	s, err := cfg.Factory(traj, cfg.BaseSeed+int64(traj))
	if err != nil {
		return nil, fmt.Errorf("core: building simulator %d: %w", traj, err)
	}
	return sim.NewTask(traj, s, cfg.End, cfg.Quantum, cfg.Period)
}

// resolveSpecies validates cfg.Species against a probe simulator, or
// defaults to all observables.
func resolveSpecies(cfg Config) ([]int, error) {
	probe, err := cfg.Factory(0, cfg.BaseSeed)
	if err != nil {
		return nil, fmt.Errorf("core: probing factory: %w", err)
	}
	species := cfg.Species
	if len(species) == 0 {
		species = make([]int, probe.NumSpecies())
		for i := range species {
			species[i] = i
		}
	}
	for _, s := range species {
		if s < 0 || s >= probe.NumSpecies() {
			return nil, fmt.Errorf("core: species index %d out of range (model has %d)", s, probe.NumSpecies())
		}
	}
	return species, nil
}

// AnalyseWindow is the statistical engine body: it summarises one window
// of trajectory cuts into the moments, medians, period estimates and
// clusters selected by cfg. It is a pure function of its inputs, safe to
// call concurrently. This convenience form borrows a pooled engine and
// allocates a fresh WindowStat; loops that analyse many windows should
// hold a private stats.Engine and a reused WindowStat and call
// AnalyseWindowInto, which is allocation-free in steady state.
func AnalyseWindow(w window.Window, species []int, cfg Config) (WindowStat, error) {
	eng := stats.GetEngine()
	defer stats.PutEngine(eng)
	var ws WindowStat
	err := AnalyseWindowInto(&ws, eng, w, species, cfg)
	return ws, err
}

// AnalyseWindowInto summarises one window of trajectory cuts into ws,
// reusing both ws's slices and eng's scratch buffers: with a warmed engine
// and a reused WindowStat of stable shape it performs zero allocations per
// window. ws is fully overwritten (no field survives from a previous
// window). The caller owns ws; eng must not be shared between concurrent
// calls. Deterministic: the same window, species and config produce the
// identical WindowStat on any engine, which is what lets a farm of these
// run windows out of order and reassemble results by sequence number.
func AnalyseWindowInto(ws *WindowStat, eng *stats.Engine, w window.Window, species []int, cfg Config) error {
	ws.Start = w.Start
	ws.NumCuts = len(w.Cuts)
	ws.Species = species
	if len(w.Cuts) == 0 {
		ws.PerCut = ws.PerCut[:0]
		ws.Median = ws.Median[:0]
		ws.Period = nil
		ws.KMeans = nil
		return window.ErrNoCuts
	}
	ws.TimeLo = w.Cuts[0].Time
	ws.TimeHi = w.Cuts[len(w.Cuts)-1].Time
	nTraj := w.Cuts[0].NumTrajectories()

	ws.PerCut = growOuter(ws.PerCut, len(w.Cuts))
	ws.Median = growOuter(ws.Median, len(w.Cuts))
	for k, c := range w.Cuts {
		ws.PerCut[k] = growRow(ws.PerCut[k], len(species))
		ws.Median[k] = growRow(ws.Median[k], len(species))
		for si, sp := range species {
			var acc stats.Welford
			scratch := eng.Floats(len(c.States))
			for _, st := range c.States {
				v := float64(st[sp])
				acc.Add(v)
				scratch = append(scratch, v)
			}
			ws.PerCut[k][si] = acc.Snapshot()
			med, err := stats.QuantileInPlace(scratch, 0.5)
			if err != nil {
				return err
			}
			ws.Median[k][si] = med
		}
	}

	if cfg.PeriodHalfWin > 0 && len(w.Cuts) >= 2 {
		// Period detection walks one trajectory across every cut, so only
		// here must the window be rectangular. Aligner-built windows are
		// rectangular by construction; a ragged caller-built window must
		// surface as an error (as TrajectoryTrace used to report), not as
		// an index panic inside an engine goroutine.
		for k, c := range w.Cuts {
			if c.NumTrajectories() != nTraj {
				return fmt.Errorf("core: window cut %d holds %d trajectories, want %d", k, c.NumTrajectories(), nTraj)
			}
		}
		dt := w.Cuts[1].Time - w.Cuts[0].Time
		ws.Period = growRow(ws.Period, len(species))
		for si, sp := range species {
			var acc stats.Welford
			for traj := 0; traj < nTraj; traj++ {
				trace := eng.Floats(len(w.Cuts))
				for _, c := range w.Cuts {
					trace = append(trace, float64(c.States[traj][sp]))
				}
				if p, ok := eng.Period(trace, dt, cfg.PeriodHalfWin); ok {
					acc.Add(p)
				}
			}
			ws.Period[si] = acc.Snapshot()
		}
	} else {
		ws.Period = nil
	}

	if cfg.KMeansK > 0 {
		last := w.Cuts[len(w.Cuts)-1]
		dim := len(species)
		pts := eng.Points(len(last.States), dim)
		for i, st := range last.States {
			row := pts[i*dim : (i+1)*dim]
			for si, sp := range species {
				row[si] = float64(st[sp])
			}
		}
		if ws.KMeans == nil {
			ws.KMeans = &stats.KMeansResult{}
		}
		if err := eng.KMeansFlat(ws.KMeans, pts, len(last.States), dim, cfg.KMeansK, cfg.BaseSeed+int64(w.Start), 100); err != nil {
			return err
		}
	} else {
		ws.KMeans = nil
	}
	return nil
}

// growOuter resizes an outer slice to n entries, reusing its backing (and
// therefore the per-entry inner slices) when capacity allows.
func growOuter[T any](s []T, n int) []T {
	if cap(s) < n {
		ns := make([]T, n)
		copy(ns, s)
		return ns
	}
	return s[:n]
}

// growRow resizes an inner slice to n entries, reusing its backing when
// capacity allows. Entries are fully overwritten by the caller.
func growRow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}
