package core

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync/atomic"
	"time"

	"cwcflow/internal/cwc"
	"cwcflow/internal/dff"
	"cwcflow/internal/ff"
	"cwcflow/internal/gillespie"
	"cwcflow/internal/models"
	"cwcflow/internal/obs"
	"cwcflow/internal/sim"
)

// The distributed CWC simulator (paper §IV-B): the simulation pipeline
// becomes a farm of simulation pipelines spread over hosts. A master
// generates simulation tasks and streams them to sim-worker processes over
// typed dff channels; each worker runs a local farm of simulation engines
// and streams samples back; the master merges the sample streams into the
// usual alignment → windows → statistics pipeline. Moving a stage across
// the process boundary changes only the (de)serialising endpoints — the
// user code of every stage is byte-for-byte the one the shared-memory
// version runs, which is the paper's porting claim.

// ModelRef names a model that sim workers can rebuild locally. Only the
// reference crosses the wire, never live simulator state.
type ModelRef struct {
	// Name selects the model: "neurospora", "neurospora-nrm",
	// "neurospora-cwc", "lotka-volterra", "sir", "schlogl", "enzyme".
	Name string
	// Omega is the system size for models that take one.
	Omega float64
}

// FactoryFor resolves a model reference to a simulator factory.
func FactoryFor(ref ModelRef) (SimulatorFactory, error) {
	omega := ref.Omega
	if omega <= 0 {
		omega = 100
	}
	switch ref.Name {
	case "neurospora":
		sys := models.Neurospora(omega)
		return func(_ int, seed int64) (sim.Simulator, error) {
			return gillespie.NewDirect(sys, seed)
		}, nil
	case "neurospora-nrm":
		sys := models.Neurospora(omega)
		return func(_ int, seed int64) (sim.Simulator, error) {
			return gillespie.NewNextReaction(sys, seed)
		}, nil
	case "neurospora-cwc":
		model := models.NeurosporaCWC(omega)
		return func(_ int, seed int64) (sim.Simulator, error) {
			return cwc.NewEngine(model, seed)
		}, nil
	case "lotka-volterra":
		sys := models.LotkaVolterra()
		return func(_ int, seed int64) (sim.Simulator, error) {
			return gillespie.NewDirect(sys, seed)
		}, nil
	case "sir":
		sys := models.SIR(1000, 10, 0.4, 0.1)
		return func(_ int, seed int64) (sim.Simulator, error) {
			return gillespie.NewDirect(sys, seed)
		}, nil
	case "schlogl":
		sys := models.Schlogl()
		return func(_ int, seed int64) (sim.Simulator, error) {
			return gillespie.NewDirect(sys, seed)
		}, nil
	case "enzyme":
		sys := models.Enzyme(50, 500)
		return func(_ int, seed int64) (sim.Simulator, error) {
			return gillespie.NewDirect(sys, seed)
		}, nil
	default:
		return nil, fmt.Errorf("core: unknown model %q", ref.Name)
	}
}

// JobHeader opens a distributed job: everything a sim worker needs to
// build and run its share of trajectories.
type JobHeader struct {
	Model    ModelRef
	End      float64
	Quantum  float64
	Period   float64
	BaseSeed int64
	// CheckpointSamples > 0 asks the worker to piggyback an engine
	// snapshot on the quantum that crosses each N-sample boundary
	// (ResultMsg.Ckpt), so a durable master can advance its checkpoint
	// ladder with remote progress. Zero disables shipping (masters
	// without a store, and pre-checkpoint peers, send zero).
	CheckpointSamples int
	// TraceID, when non-empty, is the master job's trace id: the worker
	// records its per-job spans under it and ships them home in the
	// trailer (WorkerTrailer.Spans). Empty disables worker-side tracing
	// (pre-tracing masters send zero, and gob leaves it zero on old
	// peers).
	TraceID string
}

// WorkerMsg is the master→worker stream: a header first, then one message
// per assigned trajectory. Assignments may keep arriving at any time while
// the stream is open — the serve-side quantum scheduler requeues
// trajectories from dead workers onto live streams mid-job.
type WorkerMsg struct {
	Header *JobHeader
	Traj   int
}

// WorkerTrailer closes the worker→master stream with per-worker totals.
type WorkerTrailer struct {
	Reactions uint64
	DeadTasks int
	Tasks     int
	// Spans are the worker's spans for this job (recorded only when the
	// header carried a TraceID); the master merges them into the owning
	// job's trace so a cross-process job reads as one timeline.
	Spans []obs.Span
}

// ResultMsg is the worker→master stream: one message per simulation
// quantum, carrying the quantum's whole sample batch for one trajectory
// (the per-sample cost of crossing the wire amortises by the quantum/τ
// ratio, mirroring the shared-memory pool's batched collector hop). The
// trajectory id plus the deterministic per-trajectory seeding is what lets
// a master requeue a half-delivered trajectory elsewhere and deduplicate
// the replayed prefix. TaskDone marks the trajectory's final quantum; a
// trailer with per-worker totals ends the stream.
type ResultMsg struct {
	Traj    int
	Samples []sim.Sample
	// TaskDone marks the trajectory complete; Dead and Steps qualify it.
	TaskDone bool
	Dead     bool
	Steps    uint64
	// ElapsedNs is the worker-measured service time of this quantum, which
	// feeds the master's ETA model exactly like a local quantum would.
	ElapsedNs int64
	// Ckpt, when non-empty, is a sim.Task.Snapshot blob taken right
	// after this quantum, with CkptNext the next sample index the
	// restored task would emit (JobHeader.CheckpointSamples cadence).
	// Requeue replays may duplicate checkpoints; they are idempotent.
	Ckpt     []byte
	CkptNext int
	Trailer  *WorkerTrailer
}

// ModelResolver maps a model reference to a simulator factory. Workers
// default to FactoryFor; tests inject synthetic deterministic models.
type ModelResolver func(ModelRef) (SimulatorFactory, error)

// ServeSimWorker runs a sim-worker server on l: each connection carries
// one job (header + trajectory assignments in, quantum batches + trailer
// out). simWorkers is the local farm width (the worker host's cores). The
// call blocks until ctx is cancelled.
func ServeSimWorker(ctx context.Context, l net.Listener, simWorkers int, onError func(error)) error {
	return ServeSimWorkerWith(ctx, l, simWorkers, FactoryFor, onError)
}

// ServeSimWorkerWith is ServeSimWorker with an injectable model resolver,
// so a test cluster can run the same synthetic models as its master.
func ServeSimWorkerWith(ctx context.Context, l net.Listener, simWorkers int, resolver ModelResolver, onError func(error)) error {
	return ServeSimWorkerLimited(ctx, l, simWorkers, 0, resolver, onError)
}

// ServeSimWorkerLimited is ServeSimWorkerWith with worker-tier admission
// control: at most maxJobs job connections are served concurrently (0 =
// unlimited). An excess connection is refused immediately — the master's
// remote scheduler treats the drop like any worker failure and reroutes
// the job's quanta to the remaining workers or the local pool.
func ServeSimWorkerLimited(ctx context.Context, l net.Listener, simWorkers, maxJobs int, resolver ModelResolver, onError func(error)) error {
	return ServeSimWorkerOpts(ctx, l, SimWorkerOptions{
		SimWorkers: simWorkers,
		MaxJobs:    maxJobs,
		Resolver:   resolver,
		OnError:    onError,
	})
}

// WorkerMetrics are the worker-process observability hooks: every field
// is optional (nil = no-op), so an unconfigured worker pays a single nil
// check per use.
type WorkerMetrics struct {
	// Quantum observes the service time of each simulation quantum.
	Quantum *obs.Histogram
	// Tasks counts trajectories completed by this worker.
	Tasks *obs.Counter
	// Jobs gauges the job streams currently being served.
	Jobs *obs.Gauge
}

// SimWorkerOptions configures a sim-worker server (ServeSimWorkerOpts).
type SimWorkerOptions struct {
	// SimWorkers is the local simulation farm width (the host's cores).
	SimWorkers int
	// MaxJobs caps concurrently served job connections (0 = unlimited).
	MaxJobs int
	// Resolver maps model references to factories (nil = FactoryFor).
	Resolver ModelResolver
	// OnError receives per-connection failures (nil = dropped).
	OnError func(error)
	// Origin identifies this worker in the spans it records (its
	// advertised address, typically); empty spans carry no origin.
	Origin string
	// Metrics are the worker's observability hooks (zero value = no-op).
	Metrics WorkerMetrics
}

// ServeSimWorkerOpts runs a sim-worker server on l with the full option
// set. The call blocks until ctx is cancelled.
func ServeSimWorkerOpts(ctx context.Context, l net.Listener, opts SimWorkerOptions) error {
	if opts.Resolver == nil {
		opts.Resolver = FactoryFor
	}
	var active atomic.Int64
	return dff.Serve(ctx, l, func(ctx context.Context, conn net.Conn) error {
		if opts.MaxJobs > 0 {
			if n := active.Add(1); n > int64(opts.MaxJobs) {
				active.Add(-1)
				return fmt.Errorf("core: sim worker at its job cap (%d), refusing connection", opts.MaxJobs)
			}
			defer active.Add(-1)
		}
		return handleJob(ctx, conn, opts)
	}, opts.OnError)
}

// workerDelivery is one quantum's result inside the worker process, on its
// way from the local simulation farm to the connection's collector (which
// serialises it as a ResultMsg and recycles the batch).
type workerDelivery struct {
	traj     int
	batch    *sim.Batch
	done     bool
	dead     bool
	steps    uint64
	elapsed  time.Duration
	ckpt     []byte
	ckptNext int
}

func handleJob(ctx context.Context, conn net.Conn, opts SimWorkerOptions) error {
	in := dff.NewReader[WorkerMsg](conn)
	out := dff.NewWriter[ResultMsg](conn)

	first, ok, err := in.Recv()
	if err != nil {
		return err
	}
	if !ok || first.Header == nil {
		return errors.New("core: job stream did not start with a header")
	}
	hdr := *first.Header
	factory, err := opts.Resolver(hdr.Model)
	if err != nil {
		return err
	}
	opts.Metrics.Jobs.Inc()
	defer opts.Metrics.Jobs.Dec()
	streamStart := time.Now()

	var reactions atomic.Uint64
	var deadTasks atomic.Int64
	var tasks atomic.Int64

	// The worker-side structure is the same simulation farm as the
	// shared-memory version; only the endpoints differ (dff streams
	// instead of channels).
	source := ff.Source[*sim.Task](func(ctx context.Context, emit ff.Emit[*sim.Task]) error {
		for {
			msg, ok, err := in.Recv()
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
			if msg.Header != nil {
				return errors.New("core: duplicate job header")
			}
			s, err := factory(msg.Traj, hdr.BaseSeed+int64(msg.Traj))
			if err != nil {
				return err
			}
			task, err := sim.NewTask(msg.Traj, s, hdr.End, hdr.Quantum, hdr.Period)
			if err != nil {
				return err
			}
			tasks.Add(1)
			if err := emit(task); err != nil {
				return err
			}
		}
	})
	farm := ff.NewFarmFeedback(opts.SimWorkers, func(int) ff.FeedbackWorker[*sim.Task, workerDelivery] {
		var fb *sim.Task // per-worker feedback cell, read before the next DoStep
		return ff.FeedbackWorkerFunc[*sim.Task, workerDelivery](func(_ context.Context, task *sim.Task, emit ff.Emit[workerDelivery]) (**sim.Task, error) {
			start := time.Now()
			idxBefore := task.NextIndex()
			b := sim.GetBatch()
			if err := task.RunQuantumBatch(b); err != nil {
				b.Release()
				return nil, err
			}
			d := workerDelivery{traj: task.Traj, batch: b, elapsed: time.Since(start)}
			opts.Metrics.Quantum.Observe(d.elapsed)
			if len(b.Samples) == 0 {
				b.Release()
				d.batch = nil
			}
			// Checkpoint shipping: snapshot on the quantum that crossed
			// an N-sample boundary. The cadence is stateless — derived
			// from sample indices alone — so a trajectory requeued to
			// another worker keeps the same checkpoint schedule.
			if n := hdr.CheckpointSamples; n > 0 && !task.Done() && idxBefore/n != task.NextIndex()/n {
				if data, ok, err := task.Snapshot(); err == nil && ok {
					d.ckpt, d.ckptNext = data, task.NextIndex()
				}
			}
			if task.Done() {
				d.done, d.dead, d.steps = true, task.Dead(), task.Steps()
				reactions.Add(task.Steps())
				opts.Metrics.Tasks.Inc()
				if task.Dead() {
					deadTasks.Add(1)
				}
				return nil, emit(d)
			}
			if err := emit(d); err != nil {
				return nil, err
			}
			fb = task
			return &fb, nil
		})
	})
	err = ff.Run(ctx, source, ff.Node[*sim.Task, workerDelivery](farm), func(d workerDelivery) error {
		msg := ResultMsg{
			Traj:      d.traj,
			TaskDone:  d.done,
			Dead:      d.dead,
			Steps:     d.steps,
			ElapsedNs: int64(d.elapsed),
			Ckpt:      d.ckpt,
			CkptNext:  d.ckptNext,
		}
		if d.batch != nil {
			// The samples alias the batch arena; gob copies them during
			// Encode, so the batch recycles the moment Send returns.
			msg.Samples = d.batch.Samples
		}
		err := out.Send(msg)
		if d.batch != nil {
			d.batch.Release()
		}
		return err
	})
	if err != nil {
		return err
	}
	trailer := WorkerTrailer{
		Reactions: reactions.Load(),
		DeadTasks: int(deadTasks.Load()),
		Tasks:     int(tasks.Load()),
	}
	if hdr.TraceID != "" {
		// One lifecycle span per worker stream, not per quantum: it rides
		// the trailer home and merges into the owning job's trace.
		trailer.Spans = []obs.Span{{
			Trace:  hdr.TraceID,
			Name:   "worker-stream",
			Origin: opts.Origin,
			Start:  streamStart.UnixNano(),
			End:    time.Now().UnixNano(),
			Detail: fmt.Sprintf("tasks=%d reactions=%d", tasks.Load(), reactions.Load()),
		}}
	}
	if err := out.Send(ResultMsg{Trailer: &trailer}); err != nil {
		return err
	}
	return out.Close()
}

// RunDistributed executes the pipeline with the simulation stage spread
// over remote sim workers: cfg.Factory is ignored (workers build their own
// simulators from model), and the master runs alignment, windows and the
// statistics farm locally.
func RunDistributed(ctx context.Context, cfg Config, model ModelRef, workerAddrs []string, display func(WindowStat) error) (RunInfo, error) {
	if len(workerAddrs) == 0 {
		return RunInfo{}, errors.New("core: no sim workers given")
	}
	// Fill defaults; provide a local probe factory so species resolution
	// and validation use the exact model the workers will run.
	probeFactory, err := FactoryFor(model)
	if err != nil {
		return RunInfo{}, err
	}
	cfg.Factory = probeFactory
	cfg, err = cfg.withDefaults()
	if err != nil {
		return RunInfo{}, err
	}
	if display == nil {
		display = func(WindowStat) error { return nil }
	}
	species, err := resolveSpecies(cfg)
	if err != nil {
		return RunInfo{}, err
	}

	var info RunInfo
	info.Trajectories = cfg.Trajectories
	var samples atomic.Int64
	var cutsEmitted atomic.Int64

	type peer struct {
		conn net.Conn
		out  *dff.Writer[WorkerMsg]
		in   *dff.Reader[ResultMsg]
	}
	peers := make([]*peer, 0, len(workerAddrs))
	defer func() {
		for _, p := range peers {
			p.conn.Close()
		}
	}()
	for _, addr := range workerAddrs {
		conn, err := dff.Dial(addr, 10*time.Second)
		if err != nil {
			return info, err
		}
		in := dff.NewReader[ResultMsg](conn)
		if cfg.WorkerIdleTimeout > 0 {
			// Idle bound on each result stream: a worker host that dies
			// without a TCP reset fails the run instead of hanging it.
			in = dff.NewReaderTimeout[ResultMsg](conn, cfg.WorkerIdleTimeout)
		}
		peers = append(peers, &peer{
			conn: conn,
			out:  dff.NewWriter[WorkerMsg](conn),
			in:   in,
		})
	}

	hdr := JobHeader{
		Model:    model,
		End:      cfg.End,
		Quantum:  cfg.Quantum,
		Period:   cfg.Period,
		BaseSeed: cfg.BaseSeed,
	}

	var reactions atomic.Uint64
	var deadTasks atomic.Int64
	g := ff.NewGroup(ctx)

	// Task distribution: header to every worker, trajectories round-robin.
	g.Go(func(ctx context.Context) error {
		for _, p := range peers {
			if err := p.out.Send(WorkerMsg{Header: &hdr}); err != nil {
				return err
			}
		}
		for traj := 0; traj < cfg.Trajectories; traj++ {
			p := peers[traj%len(peers)]
			if err := p.out.Send(WorkerMsg{Traj: traj}); err != nil {
				return err
			}
		}
		for _, p := range peers {
			if err := p.out.Close(); err != nil {
				return err
			}
		}
		return nil
	})

	// Sample merge: one drainer per worker into a shared channel. Each
	// ResultMsg carries one quantum's batch of samples for one trajectory.
	merged := make(chan sim.Sample, 64)
	drainers := ff.NewGroup(g.Context())
	for _, p := range peers {
		drainers.Go(func(ctx context.Context) error {
			sawTrailer := false
			for {
				msg, ok, err := p.in.Recv()
				if err != nil {
					return err
				}
				if !ok {
					if !sawTrailer {
						return errors.New("core: worker stream ended without trailer")
					}
					return nil
				}
				if msg.Trailer != nil {
					sawTrailer = true
					reactions.Add(msg.Trailer.Reactions)
					deadTasks.Add(int64(msg.Trailer.DeadTasks))
					continue
				}
				for _, s := range msg.Samples {
					select {
					case merged <- s:
						samples.Add(1)
					case <-ctx.Done():
						return ctx.Err()
					}
				}
			}
		})
	}
	g.Go(func(ctx context.Context) error {
		defer close(merged)
		return drainers.Wait()
	})

	// Master-side analysis pipeline.
	analysis := analysisPipeline(cfg, species, &cutsEmitted)
	windows := 0
	g.Go(func(ctx context.Context) error {
		// Re-batch the per-sample wire stream into pooled batches for the
		// analysis pipeline (which recycles them after alignment): block
		// for one sample, then greedily drain whatever else has already
		// arrived, so the pool round-trip amortises over the burst.
		const maxBatch = 256
		source := ff.Source[*sim.Batch](func(ctx context.Context, emit ff.Emit[*sim.Batch]) error {
			for {
				select {
				case <-ctx.Done():
					return ctx.Err()
				case s, ok := <-merged:
					if !ok {
						return nil
					}
					b := sim.GetBatch()
					b.Append(s)
				drain:
					for len(b.Samples) < maxBatch {
						select {
						case s2, ok := <-merged:
							if !ok {
								break drain // outer loop sees the close
							}
							b.Append(s2)
						default:
							break drain
						}
					}
					if err := emit(b); err != nil {
						return err
					}
				}
			}
		})
		return ff.Run(ctx, source, analysis, func(ws WindowStat) error {
			windows++
			return display(ws)
		})
	})

	if err := g.Wait(); err != nil {
		return info, err
	}
	info.Windows = windows
	info.Cuts = int(cutsEmitted.Load())
	info.Samples = samples.Load()
	info.Reactions = reactions.Load()
	info.DeadTasks = int(deadTasks.Load())
	return info, nil
}
