package core

import (
	"context"
	"sync/atomic"

	"cwcflow/internal/ff"
	"cwcflow/internal/gpu"
	"cwcflow/internal/sim"
)

// GPUInfo reports the simulated device activity of a RunGPU execution.
type GPUInfo struct {
	// Launches is the number of kernel launches (one per simulation
	// quantum while any trajectory is unfinished).
	Launches int
	// SimTime is the total simulated device time in seconds.
	SimTime float64
	// Utilization is busy/lockstep cost across all launches — below 1.0
	// means SIMT thread divergence wasted lanes (uneven trajectories).
	Utilization float64
}

// RunGPU executes the pipeline with the simulation stage offloaded to the
// simulated SIMT device (the mapCUDA structure of the paper): every
// simulation quantum becomes one kernel launch advancing all unfinished
// trajectories in parallel, and — matching the atomic CUDA kernel
// execution model — the samples of a quantum enter the analysis pipeline
// only after the whole kernel completes (kernel-wide barrier).
//
// The analysis stages are identical to Run; only the simulation stage
// changes, which is the paper's code-portability claim.
func RunGPU(ctx context.Context, cfg Config, device *gpu.Device, display func(WindowStat) error) (RunInfo, GPUInfo, error) {
	var ginfo GPUInfo
	cfg, err := cfg.withDefaults()
	if err != nil {
		return RunInfo{}, ginfo, err
	}
	if display == nil {
		display = func(WindowStat) error { return nil }
	}
	species, err := resolveSpecies(cfg)
	if err != nil {
		return RunInfo{}, ginfo, err
	}

	var info RunInfo
	info.Trajectories = cfg.Trajectories
	var samples atomic.Int64
	var cutsEmitted atomic.Int64

	// Build every task up front: the whole ensemble is resident on the
	// device (the paper moves C++ simulation objects to GPU memory via
	// CUDA Unified Memory; here tasks are plain Go values).
	tasks := make([]*sim.Task, cfg.Trajectories)
	for i := range tasks {
		s, err := cfg.Factory(i, cfg.BaseSeed+int64(i))
		if err != nil {
			return info, ginfo, err
		}
		tasks[i], err = sim.NewTask(i, s, cfg.End, cfg.Quantum, cfg.Period)
		if err != nil {
			return info, ginfo, err
		}
	}

	var busy, lockstep float64

	// The source drives the device: one Launch per quantum over the
	// unfinished tasks; per-task samples are buffered during the kernel —
	// each task filling its own pooled batch — and the batches are
	// streamed to the analysis pipeline after the barrier.
	source := ff.Source[*sim.Batch](func(ctx context.Context, emit ff.Emit[*sim.Batch]) error {
		active := make([]*sim.Task, len(tasks))
		copy(active, tasks)
		buffers := make([]*sim.Batch, len(tasks))
		for len(active) > 0 {
			for i := range buffers[:len(active)] {
				buffers[i] = sim.GetBatch()
			}
			stats, err := device.Launch(ctx, len(active), func(idx int) (float64, error) {
				// Each kernel item owns buffers[idx]: no synchronisation
				// needed even with host parallelism > 1.
				task := active[idx]
				before := task.Steps()
				if err := task.RunQuantumBatch(buffers[idx]); err != nil {
					return 0, err
				}
				// Cost = reactions fired in this quantum: the source of
				// warp divergence across uneven trajectories.
				return float64(task.Steps()-before) + 1, nil
			})
			if err != nil {
				return err
			}
			ginfo.Launches++
			ginfo.SimTime += stats.SimTime
			busy += stats.BusyCost
			lockstep += stats.LockstepCost

			// Kernel barrier passed: forward the quantum's batches (the
			// alignment stage recycles them).
			for i := range active {
				b := buffers[i]
				buffers[i] = nil
				samples.Add(int64(len(b.Samples)))
				if len(b.Samples) == 0 {
					b.Release()
					continue
				}
				if err := emit(b); err != nil {
					return err
				}
			}
			// Compact out the finished tasks.
			live := active[:0]
			for _, t := range active {
				if !t.Done() {
					live = append(live, t)
				} else {
					info.Reactions += t.Steps()
					if t.Dead() {
						info.DeadTasks++
					}
				}
			}
			active = live
		}
		return nil
	})

	analysis := analysisPipeline(cfg, species, &cutsEmitted)
	windows := 0
	err = ff.Run(ctx, source, analysis, func(ws WindowStat) error {
		windows++
		return display(ws)
	})
	if err != nil {
		return info, ginfo, err
	}
	info.Windows = windows
	info.Cuts = int(cutsEmitted.Load())
	info.Samples = samples.Load()
	if lockstep > 0 {
		ginfo.Utilization = busy / lockstep
	} else {
		ginfo.Utilization = 1
	}
	return info, ginfo, nil
}
