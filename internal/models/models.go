// Package models provides the biological systems used by the paper's
// evaluation and by the examples/tests of this repository.
//
// The headline workload is the Neurospora crassa circadian-clock model:
// transcriptional regulation of the frequency (frq) gene by its protein
// product FRQ, after Leloup, Gonze & Goldbeter (J. Biol. Rhythms, 1999).
// The deterministic model is converted to a stochastic reaction network via
// a system-size parameter Omega (molecules per nM), the standard Gillespie
// discretisation of Hill/Michaelis–Menten kinetics.
//
// Additional models (Lotka–Volterra, SIR, Schlögl, an enzyme cascade, and
// nested-compartment CWC variants) exercise the simulators across the
// behaviour classes discussed in the paper: mono-stable, multi-stable and
// oscillatory systems.
package models

import (
	"cwcflow/internal/cwc"
	"cwcflow/internal/gillespie"
)

// NeurosporaParams are the kinetic constants of the frq oscillator
// (concentrations in nM, times in hours).
type NeurosporaParams struct {
	Vs float64 // maximal frq transcription rate
	Vm float64 // maximal frq mRNA degradation rate
	Km float64 // Michaelis constant of mRNA degradation
	Ks float64 // FRQ synthesis rate per mRNA
	Vd float64 // maximal FRQ degradation rate
	Kd float64 // Michaelis constant of FRQ degradation
	K1 float64 // FRQ nuclear import rate
	K2 float64 // FRQ nuclear export rate
	KI float64 // repression threshold of nuclear FRQ on transcription
	N  int     // Hill coefficient of the repression

	// Omega is the system size (molecules per nM); larger values give
	// smoother, slower simulations.
	Omega float64
	// M0, FC0, FN0 are initial concentrations in nM.
	M0, FC0, FN0 float64
}

// DefaultNeurospora returns the parameter set of Leloup–Gonze–Goldbeter
// (1999), which oscillates with a free-running period of about 21.5 h.
func DefaultNeurospora(omega float64) NeurosporaParams {
	return NeurosporaParams{
		Vs: 1.6, Vm: 0.505, Km: 0.5,
		Ks: 0.5, Vd: 1.4, Kd: 0.13,
		K1: 0.5, K2: 0.6,
		KI: 1.0, N: 4,
		Omega: omega,
		M0:    1.0, FC0: 1.0, FN0: 1.0,
	}
}

// Neurospora species indices in the flat reaction network.
const (
	NeuroM  = 0 // frq mRNA
	NeuroFC = 1 // cytosolic FRQ protein
	NeuroFN = 2 // nuclear FRQ protein
)

// Neurospora builds the stochastic frq-oscillator network with default
// parameters at the given system size.
func Neurospora(omega float64) *gillespie.System {
	return NeurosporaWith(DefaultNeurospora(omega))
}

// NeurosporaWith builds the stochastic frq-oscillator network.
//
// Reactions (propensities follow the Omega-scaled discretisation of the
// deterministic rate laws):
//
//	R1  ∅ → M        Omega·Vs·KI^n / (KI^n + (FN/Omega)^n)   transcription, Hill-repressed
//	R2  M → ∅        Omega·Vm·(M/Omega) / (Km + M/Omega)     saturating mRNA decay
//	R3  M → M + FC   Ks·M                                    translation
//	R4  FC → ∅       Omega·Vd·(FC/Omega) / (Kd + FC/Omega)   saturating protein decay
//	R5  FC → FN      K1·FC                                   nuclear import
//	R6  FN → FC      K2·FN                                   nuclear export
func NeurosporaWith(p NeurosporaParams) *gillespie.System {
	om := p.Omega
	kin := 1.0
	for i := 0; i < p.N; i++ {
		kin *= p.KI
	}
	hill := func(fn int64) float64 {
		x := float64(fn) / om
		xn := 1.0
		for i := 0; i < p.N; i++ {
			xn *= x
		}
		return om * p.Vs * kin / (kin + xn)
	}
	return &gillespie.System{
		Name:    "neurospora",
		Species: []string{"M", "FC", "FN"},
		Init: []int64{
			int64(p.M0 * om),
			int64(p.FC0 * om),
			int64(p.FN0 * om),
		},
		Reactions: []gillespie.Reaction{
			gillespie.Custom("transcription",
				[]gillespie.Change{{Species: NeuroM, Delta: 1}},
				[]int{NeuroFN},
				func(st []int64) float64 { return hill(st[NeuroFN]) }),
			gillespie.Custom("mrna-decay",
				[]gillespie.Change{{Species: NeuroM, Delta: -1}},
				[]int{NeuroM},
				func(st []int64) float64 {
					x := float64(st[NeuroM]) / om
					return om * p.Vm * x / (p.Km + x)
				}),
			gillespie.Custom("translation",
				[]gillespie.Change{{Species: NeuroFC, Delta: 1}},
				[]int{NeuroM},
				func(st []int64) float64 { return p.Ks * float64(st[NeuroM]) }),
			gillespie.Custom("frq-decay",
				[]gillespie.Change{{Species: NeuroFC, Delta: -1}},
				[]int{NeuroFC},
				func(st []int64) float64 {
					x := float64(st[NeuroFC]) / om
					return om * p.Vd * x / (p.Kd + x)
				}),
			gillespie.MassAction("nuclear-import", p.K1,
				map[int]int64{NeuroFC: 1}, map[int]int64{NeuroFN: 1}),
			gillespie.MassAction("nuclear-export", p.K2,
				map[int]int64{NeuroFN: 1}, map[int]int64{NeuroFC: 1}),
		},
	}
}

// NeurosporaCWC builds the compartmentalised CWC variant of the frq model:
// the cell content holds M and the FRQ protein F, a nested nucleus
// compartment holds the nuclear fraction of F, and nuclear import/export
// are membrane-transport rules. Cytosolic FC and nuclear FN of the flat
// model correspond to the *location* of F (cell content vs nucleus
// content), so the kinetics match the flat network exactly. Transcription
// reads the repressor through the nucleus membrane (a cross-compartment
// rate function), exercising the term-rewriting engine on a realistic
// nested model.
func NeurosporaCWC(omega float64) *cwc.Model {
	p := DefaultNeurospora(omega)
	a := cwc.NewAlphabet("M", "F", "nm")
	m, _ := a.Lookup("M")
	f, _ := a.Lookup("F")
	nm, _ := a.Lookup("nm") // nuclear membrane marker

	kin := 1.0
	for i := 0; i < p.N; i++ {
		kin *= p.KI
	}
	// nuclearF counts F inside the nucleus child of the matched content.
	nuclearF := func(where *cwc.Term) int64 {
		for _, c := range where.Comps {
			if c.Label == "nucleus" {
				return c.Content.Atoms.Count(f)
			}
		}
		return 0
	}

	init := &cwc.Term{}
	cell := &cwc.Compartment{Label: "cell"}
	cell.Content.Atoms.Add(m, int64(p.M0*omega))
	cell.Content.Atoms.Add(f, int64(p.FC0*omega))
	nucleus := &cwc.Compartment{Label: "nucleus"}
	nucleus.Wrap.Add(nm, 1)
	nucleus.Content.Atoms.Add(f, int64(p.FN0*omega))
	cell.Content.AddComp(nucleus)
	init.AddComp(cell)

	rules := []*cwc.Rule{
		{
			Name: "transcription", Kind: cwc.KindReaction, Context: "cell",
			Products: cwc.NewMultiset(m, 1),
			Law: cwc.RateFunc(func(match cwc.Match) float64 {
				x := float64(nuclearF(match.Where)) / omega
				xn := 1.0
				for i := 0; i < p.N; i++ {
					xn *= x
				}
				return omega * p.Vs * kin / (kin + xn)
			}),
		},
		{
			Name: "mrna-decay", Kind: cwc.KindReaction, Context: "cell",
			Reactants: cwc.NewMultiset(m, 1),
			Law:       scaledMM(omega, p.Vm, p.Km, m),
		},
		{
			Name: "translation", Kind: cwc.KindReaction, Context: "cell",
			Reactants: cwc.NewMultiset(m, 1),
			Products:  cwc.NewMultiset(m, 1, f, 1),
			Law:       cwc.MassAction{K: p.Ks},
		},
		{
			// Degrades only the cytosolic fraction: the rule's context is
			// the cell content, whose F count excludes the nucleus.
			Name: "frq-decay", Kind: cwc.KindReaction, Context: "cell",
			Reactants: cwc.NewMultiset(f, 1),
			Law:       scaledMM(omega, p.Vd, p.Kd, f),
		},
		{
			Name: "nuclear-import", Kind: cwc.KindTransportIn, Context: "cell",
			ChildLabel: "nucleus", ChildWrap: cwc.NewMultiset(nm, 1),
			Move: cwc.NewMultiset(f, 1),
			Law:  cwc.MassAction{K: p.K1},
		},
		{
			Name: "nuclear-export", Kind: cwc.KindTransportOut, Context: "cell",
			ChildLabel: "nucleus", ChildWrap: cwc.NewMultiset(nm, 1),
			Move: cwc.NewMultiset(f, 1),
			Law:  cwc.MassAction{K: p.K2},
		},
	}
	return &cwc.Model{Name: "neurospora-cwc", Alpha: a, Rules: rules, Init: init}
}

// scaledMM is the Omega-scaled Michaelis–Menten law over raw counts in the
// matched content.
func scaledMM(omega, vmax, km float64, s cwc.Species) cwc.RateFunc {
	return func(match cwc.Match) float64 {
		x := float64(match.Where.Atoms.Count(s)) / omega
		return omega * vmax * x / (km + x)
	}
}

// LotkaVolterra builds the classic stochastic predator–prey system:
//
//	prey birth      X → 2X     (k1)
//	predation       X + Y → 2Y (k2)
//	predator death  Y → ∅      (k3)
//
// The stochastic system oscillates with drifting amplitude and eventually
// absorbs (prey explosion or predator extinction) — the multi-stable
// behaviour class the paper calls out as GPU-unfriendly.
func LotkaVolterra() *gillespie.System {
	return &gillespie.System{
		Name:    "lotka-volterra",
		Species: []string{"X", "Y"},
		Init:    []int64{300, 150},
		Reactions: []gillespie.Reaction{
			gillespie.MassAction("prey-birth", 1.0, map[int]int64{0: 1}, map[int]int64{0: 2}),
			gillespie.MassAction("predation", 0.005, map[int]int64{0: 1, 1: 1}, map[int]int64{1: 2}),
			gillespie.MassAction("predator-death", 0.6, map[int]int64{1: 1}, nil),
		},
	}
}

// SIR builds a stochastic epidemic model with frequency-dependent
// transmission: S + I → 2I at rate beta·S·I/N, I → R at rate gamma·I.
func SIR(n, i0 int64, beta, gamma float64) *gillespie.System {
	fn := float64(n)
	return &gillespie.System{
		Name:    "sir",
		Species: []string{"S", "I", "R"},
		Init:    []int64{n - i0, i0, 0},
		Reactions: []gillespie.Reaction{
			gillespie.Custom("infection",
				[]gillespie.Change{{Species: 0, Delta: -1}, {Species: 1, Delta: 1}},
				[]int{0, 1},
				func(st []int64) float64 {
					return beta * float64(st[0]) * float64(st[1]) / fn
				}),
			gillespie.MassAction("recovery", gamma, map[int]int64{1: 1}, map[int]int64{2: 1}),
		},
	}
}

// Schlogl builds the Schlögl model, the canonical bistable chemical system:
//
//	A + 2X → 3X   (c1, A buffered)
//	3X → A + 2X   (c2)
//	B → X         (c3, B buffered)
//	X → B         (c4)
//
// Trajectories settle around one of two metastable counts (~85 or ~565)
// and occasionally switch — a stress test for trajectory-ensemble analysis
// (k-means over cuts separates the two modes).
func Schlogl() *gillespie.System {
	const (
		c1 = 3e-7
		c2 = 1e-4
		c3 = 1e-3
		c4 = 3.5
		na = 1e5
		nb = 2e5
	)
	return &gillespie.System{
		Name:    "schlogl",
		Species: []string{"X"},
		Init:    []int64{250},
		Reactions: []gillespie.Reaction{
			gillespie.Custom("autocat",
				[]gillespie.Change{{Species: 0, Delta: 1}},
				[]int{0},
				func(st []int64) float64 {
					x := float64(st[0])
					return c1 * na * x * (x - 1) / 2
				}),
			gillespie.Custom("reverse",
				[]gillespie.Change{{Species: 0, Delta: -1}},
				[]int{0},
				func(st []int64) float64 {
					x := float64(st[0])
					return c2 * x * (x - 1) * (x - 2) / 6
				}),
			gillespie.Custom("inflow",
				[]gillespie.Change{{Species: 0, Delta: 1}},
				nil,
				func([]int64) float64 { return c3 * nb }),
			gillespie.MassAction("outflow", c4, map[int]int64{0: 1}, nil),
		},
	}
}

// Enzyme builds the Michaelis–Menten enzyme mechanism with explicit
// complex: E + S ⇌ ES → E + P. It conserves E + ES and S + ES + P.
func Enzyme(e0, s0 int64) *gillespie.System {
	return &gillespie.System{
		Name:    "enzyme",
		Species: []string{"E", "S", "ES", "P"},
		Init:    []int64{e0, s0, 0, 0},
		Reactions: []gillespie.Reaction{
			gillespie.MassAction("bind", 0.01, map[int]int64{0: 1, 1: 1}, map[int]int64{2: 1}),
			gillespie.MassAction("unbind", 0.1, map[int]int64{2: 1}, map[int]int64{0: 1, 1: 1}),
			gillespie.MassAction("catalyse", 0.1, map[int]int64{2: 1}, map[int]int64{0: 1, 3: 1}),
		},
	}
}
