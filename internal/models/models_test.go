package models

import (
	"math"
	"testing"

	"cwcflow/internal/cwc"
	"cwcflow/internal/gillespie"
)

// sampleSeries advances the engine, recording species sp at the given
// period until tEnd.
func sampleSeries(t *testing.T, d *gillespie.Direct, sp int, period, tEnd float64) []float64 {
	t.Helper()
	var out []float64
	state := make([]int64, d.NumSpecies())
	for tt := 0.0; tt <= tEnd; tt += period {
		d.AdvanceTo(tt)
		d.Observe(state)
		out = append(out, float64(state[sp]))
	}
	return out
}

// findPeaks returns indices of local maxima of a smoothed copy of xs.
func findPeaks(xs []float64, halfWin int) []int {
	sm := make([]float64, len(xs))
	for i := range xs {
		lo, hi := i-halfWin, i+halfWin
		if lo < 0 {
			lo = 0
		}
		if hi >= len(xs) {
			hi = len(xs) - 1
		}
		s := 0.0
		for j := lo; j <= hi; j++ {
			s += xs[j]
		}
		sm[i] = s / float64(hi-lo+1)
	}
	var peaks []int
	for i := halfWin; i < len(sm)-halfWin; i++ {
		isPeak := true
		for j := i - halfWin; j <= i+halfWin && isPeak; j++ {
			if sm[j] > sm[i] {
				isPeak = false
			}
		}
		if isPeak && (len(peaks) == 0 || i-peaks[len(peaks)-1] > halfWin) {
			peaks = append(peaks, i)
		}
	}
	return peaks
}

func TestNeurosporaOscillates(t *testing.T) {
	sys := Neurospora(100)
	d, err := gillespie.NewDirect(sys, 4)
	if err != nil {
		t.Fatal(err)
	}
	series := sampleSeries(t, d, NeuroM, 0.5, 200) // 200 h, samples every 0.5 h
	// Strong oscillation: amplitude swing well beyond noise.
	minV, maxV := series[0], series[0]
	for _, v := range series {
		minV = math.Min(minV, v)
		maxV = math.Max(maxV, v)
	}
	if maxV < 3*(minV+1) {
		t.Fatalf("no oscillation: min %g max %g", minV, maxV)
	}
	peaks := findPeaks(series, 8)
	if len(peaks) < 5 {
		t.Fatalf("expected >=5 oscillation peaks in 200h, got %d", len(peaks))
	}
	// Mean inter-peak distance should be near the 21.5 h free-running
	// period (samples are 0.5 h apart). Stochastic runs drift, so accept
	// 15..30 h.
	meanGap := float64(peaks[len(peaks)-1]-peaks[0]) / float64(len(peaks)-1) * 0.5
	if meanGap < 15 || meanGap > 30 {
		t.Fatalf("mean period = %.1f h, want 15..30 h", meanGap)
	}
}

func TestNeurosporaOmegaScalesCounts(t *testing.T) {
	small := Neurospora(50)
	big := Neurospora(500)
	if small.Init[NeuroM]*10 != big.Init[NeuroM] {
		t.Fatalf("init M does not scale with omega: %d vs %d", small.Init[NeuroM], big.Init[NeuroM])
	}
	// Transcription propensity at FN=0 must scale with omega.
	p1 := small.Reactions[0].Rate([]int64{0, 0, 0})
	p2 := big.Reactions[0].Rate([]int64{0, 0, 0})
	if math.Abs(p2/p1-10) > 1e-9 {
		t.Fatalf("transcription propensity scaling = %g, want 10", p2/p1)
	}
}

func TestNeurosporaHillRepression(t *testing.T) {
	sys := Neurospora(100)
	full := sys.Reactions[0].Rate([]int64{0, 0, 0})
	half := sys.Reactions[0].Rate([]int64{0, 0, 100}) // FN = KI·omega
	if math.Abs(half/full-0.5) > 1e-9 {
		t.Fatalf("repression at KI = %g of full, want 0.5", half/full)
	}
	strong := sys.Reactions[0].Rate([]int64{0, 0, 1000})
	if strong > full*0.001 {
		t.Fatalf("repression too weak at 10x KI: %g vs %g", strong, full)
	}
}

// TestNeurosporaCWCMatchesFlat: the compartmentalised CWC model and the
// flat network are the same stochastic process; their ensemble means of M
// at a fixed time must agree.
func TestNeurosporaCWCMatchesFlat(t *testing.T) {
	const (
		omega  = 30
		tProbe = 12.0
		trials = 40
	)
	flatSys := Neurospora(omega)
	cwcModel := NeurosporaCWC(omega)
	mSpecies, ok := cwcModel.Alpha.Lookup("M")
	if !ok {
		t.Fatal("no M in CWC alphabet")
	}

	meanFlat := 0.0
	for s := int64(0); s < trials; s++ {
		d, err := gillespie.NewDirect(flatSys, s)
		if err != nil {
			t.Fatal(err)
		}
		d.AdvanceTo(tProbe)
		meanFlat += float64(d.State()[NeuroM])
	}
	meanFlat /= trials

	meanCWC := 0.0
	for s := int64(0); s < trials; s++ {
		e, err := cwc.NewEngine(cwcModel, s+1000)
		if err != nil {
			t.Fatal(err)
		}
		e.AdvanceTo(tProbe)
		meanCWC += float64(e.Count(mSpecies))
	}
	meanCWC /= trials

	// Both should sit on the same limit cycle; allow generous stochastic
	// tolerance (the ensembles are small).
	if relDiff := math.Abs(meanFlat-meanCWC) / math.Max(meanFlat, 1); relDiff > 0.35 {
		t.Fatalf("flat mean M %.1f vs CWC mean M %.1f differ by %.0f%%", meanFlat, meanCWC, relDiff*100)
	}
}

func TestLotkaVolterraBothSpeciesActive(t *testing.T) {
	d, err := gillespie.NewDirect(LotkaVolterra(), 12)
	if err != nil {
		t.Fatal(err)
	}
	seenPreyUp, seenPreyDown := false, false
	prev := d.State()[0]
	for i := 0; i < 20000; i++ {
		if !d.Step() {
			break
		}
		x := d.State()[0]
		if x > prev {
			seenPreyUp = true
		}
		if x < prev {
			seenPreyDown = true
		}
		prev = x
	}
	if !seenPreyUp || !seenPreyDown {
		t.Fatal("prey population never oscillated")
	}
}

func TestSIREpidemicRunsItsCourse(t *testing.T) {
	sys := SIR(1000, 10, 0.4, 0.1) // R0 = 4: major outbreak
	d, err := gillespie.NewDirect(sys, 7)
	if err != nil {
		t.Fatal(err)
	}
	_, live := d.AdvanceTo(1e6)
	if live {
		t.Fatal("SIR should absorb (I = 0)")
	}
	st := d.State()
	if st[1] != 0 {
		t.Fatalf("I = %d at absorption, want 0", st[1])
	}
	if st[0]+st[1]+st[2] != 1000 {
		t.Fatalf("population not conserved: %v", st)
	}
	if st[2] < 500 {
		t.Fatalf("R0=4 outbreak infected only %d of 1000", st[2])
	}
}

func TestSchloglStaysLiveAndBounded(t *testing.T) {
	d, err := gillespie.NewDirect(Schlogl(), 21)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50000; i++ {
		if !d.Step() {
			t.Fatal("Schlögl died (buffered inflow should prevent that)")
		}
		x := d.State()[0]
		if x < 0 || x > 5000 {
			t.Fatalf("X = %d escaped plausible range", x)
		}
	}
}

func TestEnzymeConservation(t *testing.T) {
	sys := Enzyme(50, 500)
	d, err := gillespie.NewDirect(sys, 2)
	if err != nil {
		t.Fatal(err)
	}
	iE := sys.SpeciesIndex("E")
	iS := sys.SpeciesIndex("S")
	iES := sys.SpeciesIndex("ES")
	iP := sys.SpeciesIndex("P")
	for i := 0; i < 5000; i++ {
		if !d.Step() {
			break
		}
		st := d.State()
		if st[iE]+st[iES] != 50 {
			t.Fatalf("enzyme not conserved: %v", st)
		}
		if st[iS]+st[iES]+st[iP] != 500 {
			t.Fatalf("substrate not conserved: %v", st)
		}
	}
	// The reaction must make progress.
	if d.State()[iP] == 0 {
		t.Fatal("no product formed")
	}
}

func TestAllSystemsValidate(t *testing.T) {
	systems := []*gillespie.System{
		Neurospora(100), LotkaVolterra(), SIR(100, 1, 0.3, 0.1), Schlogl(), Enzyme(10, 100),
	}
	for _, sys := range systems {
		if err := sys.Validate(); err != nil {
			t.Errorf("%s: %v", sys.Name, err)
		}
	}
	if err := NeurosporaCWC(10).Validate(); err != nil {
		t.Errorf("neurospora-cwc: %v", err)
	}
}

func BenchmarkNeurosporaStep(b *testing.B) {
	d, err := gillespie.NewDirect(Neurospora(100), 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !d.Step() {
			b.Fatal("died")
		}
	}
}

func BenchmarkNeurosporaCWCStep(b *testing.B) {
	e, err := cwc.NewEngine(NeurosporaCWC(100), 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !e.Step() {
			b.Fatal("died")
		}
	}
}
