package window

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"cwcflow/internal/sim"
)

// windowSig captures a window's full content at emit time (the stream
// recycles cut storage afterwards, so comparisons must snapshot here).
func windowSig(w Window) string {
	var b strings.Builder
	fmt.Fprintf(&b, "start=%d:", w.Start)
	for _, c := range w.Cuts {
		fmt.Fprintf(&b, "[%d@%g", c.Index, c.Time)
		for _, st := range c.States {
			fmt.Fprintf(&b, " %v", st)
		}
		b.WriteString("]")
	}
	return b.String()
}

// feedRange pushes the deterministic synthetic samples of cut indices
// [lo, hi) for every trajectory, in a seeded shuffle, and returns the
// emitted windows' signatures.
func feedRange(t *testing.T, st *Stream, nTraj, lo, hi int, rng *rand.Rand) []string {
	t.Helper()
	var sigs []string
	emit := func(w Window) error {
		sigs = append(sigs, windowSig(w))
		return nil
	}
	next := make([]int, nTraj)
	for i := range next {
		next[i] = lo
	}
	remaining := nTraj * (hi - lo)
	for remaining > 0 {
		traj := rng.Intn(nTraj)
		if next[traj] >= hi {
			continue
		}
		s := sim.Sample{
			Traj:  traj,
			Index: next[traj],
			Time:  float64(next[traj]) * 0.5,
			State: []int64{int64(traj*1000 + next[traj])},
		}
		next[traj]++
		remaining--
		if err := st.Push(s, emit); err != nil {
			t.Fatalf("Push: %v", err)
		}
	}
	if err := st.Close(emit); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return sigs
}

// TestStreamAtResumesWindowSequence: a stream resumed at a window
// boundary, fed only the samples from that cut onward, emits exactly the
// windows the uninterrupted stream emitted from that point — the property
// recovered jobs rely on for bit-identical resume.
func TestStreamAtResumesWindowSequence(t *testing.T) {
	cases := []struct{ nTraj, cuts, size, step, resumeWin int }{
		{3, 40, 8, 4, 3},   // sliding windows, resume mid-run
		{4, 33, 16, 16, 1}, // tumbling, trailing partial window
		{2, 20, 8, 4, 0},   // resume at zero == plain stream
		{5, 24, 6, 2, 9},   // resume near the tail
	}
	for _, c := range cases {
		t.Run(fmt.Sprintf("%dx%d_w%d_s%d_r%d", c.nTraj, c.cuts, c.size, c.step, c.resumeWin), func(t *testing.T) {
			full, err := NewStream(c.nTraj, c.size, c.step)
			if err != nil {
				t.Fatal(err)
			}
			fullSigs := feedRange(t, full, c.nTraj, 0, c.cuts, rand.New(rand.NewSource(1)))

			startCut := c.resumeWin * c.step
			resumed, err := NewStreamAt(c.nTraj, c.size, c.step, startCut)
			if err != nil {
				t.Fatal(err)
			}
			gotSigs := feedRange(t, resumed, c.nTraj, startCut, c.cuts, rand.New(rand.NewSource(2)))

			wantSigs := fullSigs[c.resumeWin:]
			if len(gotSigs) != len(wantSigs) {
				t.Fatalf("resumed stream emitted %d windows, want %d", len(gotSigs), len(wantSigs))
			}
			for i := range gotSigs {
				if gotSigs[i] != wantSigs[i] {
					t.Fatalf("window %d diverged:\n  resumed %s\n  full    %s", i, gotSigs[i], wantSigs[i])
				}
			}
			if got, want := resumed.Cuts(), c.cuts; got != want {
				t.Fatalf("resumed Cuts() = %d, want absolute count %d", got, want)
			}
		})
	}
}

// TestStreamAtValidation: the resume point must be a window boundary.
func TestStreamAtValidation(t *testing.T) {
	if _, err := NewStreamAt(2, 8, 4, 6); err == nil {
		t.Fatal("start cut off the window grid was accepted")
	}
	if _, err := NewAlignerAt(2, -1); err == nil {
		t.Fatal("negative start cut was accepted")
	}
}
