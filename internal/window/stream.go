package window

import "cwcflow/internal/sim"

// Stream fuses the Aligner and the Slider into a single push-based stage:
// raw samples in, sliding windows out. It is the streaming entry point used
// by consumers that drive the alignment/windowing stages themselves (one
// call site, no channels) instead of assembling the ff pipeline nodes —
// notably the job service, where each job owns one Stream fed by batches
// arriving from the shared simulation pool.
//
// Because the whole path is synchronous — a window is fully consumed by
// the time emit returns — the Stream closes the recycling loop: cuts that
// slide out of the window buffer return their storage to the aligner's
// free list, so a steady-state Stream aligns and windows without
// allocating. Consumers must therefore not retain a Window or its cut
// States after emit returns (core.AnalyseWindow copies everything it
// keeps).
//
// The zero value is not usable; construct with NewStream.
type Stream struct {
	aligner *Aligner
	slider  *Slider
}

// NewStream returns a stream for an ensemble of nTraj trajectories,
// emitting windows of size cuts every step cuts.
func NewStream(nTraj, size, step int) (*Stream, error) {
	return NewStreamAt(nTraj, size, step, 0)
}

// NewStreamAt returns a stream resuming at cut index startCut (a window
// boundary, i.e. a multiple of step): the aligner assembles cuts from
// startCut and the slider numbers windows from startCut/step onward. A
// recovered job uses it to continue a crashed run's window sequence —
// producing, cut for cut and window for window, exactly what the original
// stream would have produced from that point — after re-feeding samples
// from startCut on (the durable store's resume filter guarantees that no
// earlier sample reaches the stream).
func NewStreamAt(nTraj, size, step, startCut int) (*Stream, error) {
	a, err := NewAlignerAt(nTraj, startCut)
	if err != nil {
		return nil, err
	}
	s, err := NewSliderAt(size, step, startCut)
	if err != nil {
		return nil, err
	}
	s.SetRetire(a.Recycle)
	return &Stream{aligner: a, slider: s}, nil
}

// Push adds one sample, invoking emit for every window the sample
// completes (one sample can release several cuts, and therefore several
// windows, when it fills the oldest alignment gap).
func (st *Stream) Push(s sim.Sample, emit func(Window) error) error {
	return st.aligner.Push(s, func(c Cut) error {
		return st.slider.Push(c, emit)
	})
}

// Cuts returns the number of complete cuts released so far.
func (st *Stream) Cuts() int { return st.aligner.EmittedCuts() }

// Pending returns the alignment backlog (partially assembled cuts).
func (st *Stream) Pending() int { return st.aligner.Pending() }

// Close verifies the sample stream was complete and flushes the trailing
// partial window, if any. Call it after the last sample was pushed.
func (st *Stream) Close(emit func(Window) error) error {
	if err := st.aligner.Close(); err != nil {
		return err
	}
	return st.slider.Flush(emit)
}

// WindowCount returns the number of windows a Slider of the given size and
// step emits (including the trailing Flush) for a stream of cuts complete
// cuts. It lets progress reporting state "window w of W" without running
// the stream.
func WindowCount(cuts, size, step int) int {
	if cuts <= 0 || size < 1 || step < 1 || step > size {
		return 0
	}
	full := 0
	if cuts >= size {
		full = (cuts-size)/step + 1
	}
	// After full windows the slider still buffers cuts - full*step cuts;
	// Flush emits them only if some cut was never part of a window (see
	// Slider.Flush).
	buffered := cuts - full*step
	if buffered > 0 && (full == 0 || buffered > size-step) {
		return full + 1
	}
	return full
}
