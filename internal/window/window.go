// Package window implements the two stream-reshaping stages between the
// simulation farm and the statistical farm of the pipeline:
//
//   - the Aligner ("alignment of trajectories"): it consumes the unordered
//     interleaving of per-trajectory samples produced by the simulation
//     engines and emits Cuts — the states of *all* trajectories at a common
//     sample instant — in increasing time order, buffering only the spread
//     between the fastest and slowest trajectory;
//   - the Slider ("generation of sliding windows of trajectories"): it
//     groups consecutive cuts into overlapping windows, the unit of work of
//     the statistical engines that need temporal context (moving averages,
//     period detection, clustering of trajectory segments).
//
// The Aligner buffers its partial cuts in a ring indexed by sample index
// (the fastest-minus-slowest spread is small, so the ring stays small and
// grows only on demand), copies each sample's state into a flat per-cut
// arena (decoupling cut lifetime from the producer's recycled sample
// batches), and keeps a free list of cut storage: a pipeline that retires
// cuts back to the aligner (window.Stream does, once a window slides past)
// aligns an entire run without per-sample or per-cut allocations in steady
// state.
package window

import (
	"errors"
	"fmt"

	"cwcflow/internal/sim"
)

// Cut is the cross-section of the whole trajectory ensemble at one sample
// instant: States[i] is trajectory i's observable vector.
type Cut struct {
	Index  int
	Time   float64
	States [][]int64

	// store, when non-nil, is the recyclable backing of States — returned
	// to the owning Aligner's free list by Recycle.
	store *cutStore
}

// NumTrajectories returns the ensemble size.
func (c Cut) NumTrajectories() int { return len(c.States) }

// cutStore is the reusable backing of one cut: the States header slice and
// the flat arena its rows point into (row i is arena[i*ns:(i+1)*ns]).
type cutStore struct {
	states [][]int64
	arena  []int64
}

// slot is one ring entry: a cut being assembled.
type slot struct {
	time   float64
	filled int
	store  *cutStore
}

// Aligner assembles samples into cuts. Samples may arrive in any
// interleaving across trajectories, but each trajectory must deliver its
// own samples in index order (which the sim.Task contract guarantees).
//
// The zero value is not usable; construct with NewAligner.
type Aligner struct {
	nTraj    int
	ns       int // state width, learned from the first sample
	nextEmit int
	pending  int    // slots currently holding ≥1 sample
	ring     []slot // len is a power of two; slot for index i is ring[i&mask]
	free     []*cutStore
}

// NewAligner returns an aligner for an ensemble of nTraj trajectories.
func NewAligner(nTraj int) (*Aligner, error) { return NewAlignerAt(nTraj, 0) }

// NewAlignerAt returns an aligner whose first emitted cut is start — the
// resume form used when a recovered job re-enters the stream mid-run: cuts
// below start were already consumed into durably published windows, so the
// aligner begins assembling at the resume point (samples below it must be
// filtered out by the caller; pushing one is the usual duplicate error).
// EmittedCuts counts absolutely, start included.
func NewAlignerAt(nTraj, start int) (*Aligner, error) {
	if nTraj < 1 {
		return nil, fmt.Errorf("window: need at least 1 trajectory, got %d", nTraj)
	}
	if start < 0 {
		return nil, fmt.Errorf("window: negative start cut %d", start)
	}
	return &Aligner{
		nTraj:    nTraj,
		ns:       -1,
		nextEmit: start,
		ring:     make([]slot, 8),
	}, nil
}

// Push adds one sample. Complete cuts are emitted in index order (one Push
// can release several consecutive cuts when it fills the oldest gap).
func (a *Aligner) Push(s sim.Sample, emit func(Cut) error) error {
	if s.Traj < 0 || s.Traj >= a.nTraj {
		return fmt.Errorf("window: sample for unknown trajectory %d (ensemble of %d)", s.Traj, a.nTraj)
	}
	if s.Index < a.nextEmit {
		return fmt.Errorf("window: trajectory %d delivered sample %d twice (cut already emitted)", s.Traj, s.Index)
	}
	if a.ns < 0 {
		a.ns = len(s.State)
	} else if len(s.State) != a.ns {
		return fmt.Errorf("window: sample state has %d species, want %d", len(s.State), a.ns)
	}
	if s.Index-a.nextEmit >= len(a.ring) {
		a.growRing(s.Index - a.nextEmit + 1)
	}
	sl := &a.ring[s.Index&(len(a.ring)-1)]
	if sl.store == nil {
		sl.store = a.getStore()
		sl.time = s.Time
		sl.filled = 0
		a.pending++
	}
	st := sl.store
	if st.states[s.Traj] != nil {
		return fmt.Errorf("window: duplicate sample (traj %d, index %d)", s.Traj, s.Index)
	}
	row := st.arena[s.Traj*a.ns : (s.Traj+1)*a.ns : (s.Traj+1)*a.ns]
	copy(row, s.State)
	st.states[s.Traj] = row
	sl.filled++

	// Release every consecutive complete cut starting at nextEmit.
	for {
		ready := &a.ring[a.nextEmit&(len(a.ring)-1)]
		if ready.store == nil || ready.filled < a.nTraj {
			return nil
		}
		cut := Cut{Index: a.nextEmit, Time: ready.time, States: ready.store.states, store: ready.store}
		ready.store = nil
		ready.filled = 0
		a.pending--
		a.nextEmit++
		if err := emit(cut); err != nil {
			return err
		}
	}
}

// growRing enlarges the ring to hold at least need pending cuts,
// re-placing live slots by their absolute index (a dead trajectory can
// flood the aligner with its whole frozen tail in one quantum, so the
// spread is usually — not always — small).
func (a *Aligner) growRing(need int) {
	newLen := len(a.ring)
	for newLen < need {
		newLen *= 2
	}
	nring := make([]slot, newLen)
	for i := a.nextEmit; i < a.nextEmit+len(a.ring); i++ {
		old := a.ring[i&(len(a.ring)-1)]
		if old.store != nil {
			nring[i&(newLen-1)] = old
		}
	}
	a.ring = nring
}

// getStore returns cut storage from the free list, or allocates it.
func (a *Aligner) getStore() *cutStore {
	if n := len(a.free); n > 0 {
		st := a.free[n-1]
		a.free = a.free[:n-1]
		return st
	}
	return &cutStore{
		states: make([][]int64, a.nTraj),
		arena:  make([]int64, a.nTraj*a.ns),
	}
}

// Recycle returns a cut's storage to the aligner's free list, to back a
// future cut. Call it only once per cut, and only after the last consumer
// of the cut's States is done — the synchronous Stream pipeline does this
// automatically once a window slides past. Recycling cuts from a different
// Aligner (or cuts assembled by hand) is a safe no-op.
func (a *Aligner) Recycle(c Cut) {
	st := c.store
	if st == nil || len(st.states) != a.nTraj || len(st.arena) != a.nTraj*a.ns {
		return
	}
	for i := range st.states {
		st.states[i] = nil
	}
	a.free = append(a.free, st)
}

// Pending returns the number of partially assembled cuts currently
// buffered — the alignment backlog (fastest minus slowest trajectory).
func (a *Aligner) Pending() int { return a.pending }

// EmittedCuts returns how many complete cuts have been released.
func (a *Aligner) EmittedCuts() int { return a.nextEmit }

// Close verifies that no partially filled cut is left behind (every
// trajectory delivered every sample). Call it after the sample stream ends.
func (a *Aligner) Close() error {
	if a.pending != 0 {
		return fmt.Errorf("window: stream ended with %d incomplete cuts (first missing: %d)", a.pending, a.nextEmit)
	}
	return nil
}

// Window is a group of Size consecutive cuts starting at cut index Start.
type Window struct {
	Start int
	Cuts  []Cut
}

// Slider groups a stream of cuts into sliding windows of the given size,
// advancing by step cuts between windows (step == size gives tumbling
// windows).
//
// The zero value is not usable; construct with NewSlider.
type Slider struct {
	size, step int
	buf        []Cut
	start      int
	retire     func(Cut)
}

// NewSlider returns a slider emitting windows of size cuts every step cuts.
func NewSlider(size, step int) (*Slider, error) { return NewSliderAt(size, step, 0) }

// NewSliderAt returns a slider whose first window starts at cut index
// start — the resume form for a recovered job: windows below start/step
// were already published durably, so the slider picks up exactly where
// the crashed slider's window sequence left off. start must be a window
// boundary (a multiple of step), and the first cut pushed must be start.
func NewSliderAt(size, step, start int) (*Slider, error) {
	if size < 1 || step < 1 {
		return nil, fmt.Errorf("window: size and step must be >= 1 (got %d, %d)", size, step)
	}
	if step > size {
		return nil, fmt.Errorf("window: step %d larger than size %d would drop cuts", step, size)
	}
	if start < 0 || start%step != 0 {
		return nil, fmt.Errorf("window: start cut %d is not a multiple of step %d", start, step)
	}
	return &Slider{size: size, step: step, start: start}, nil
}

// SetRetire registers a callback invoked for every cut that permanently
// leaves the slider — after the emit of the last window containing it has
// returned, so a synchronous consumer (one that finishes analysing each
// window inside emit, like window.Stream with core.AnalyseWindow) can
// recycle the cut's storage. Do not set it when windows are analysed
// asynchronously after emit returns.
func (s *Slider) SetRetire(retire func(Cut)) { s.retire = retire }

// Push adds a cut, emitting a window whenever one completes. Cuts must
// arrive in index order (the Aligner guarantees that).
func (s *Slider) Push(c Cut, emit func(Window) error) error {
	if n := len(s.buf); n > 0 && c.Index != s.buf[n-1].Index+1 {
		return fmt.Errorf("window: cut %d out of order after %d", c.Index, s.buf[n-1].Index)
	}
	s.buf = append(s.buf, c)
	if len(s.buf) < s.size {
		return nil
	}
	w := Window{Start: s.start, Cuts: append([]Cut(nil), s.buf...)}
	err := emit(w)
	// Slide: drop (and retire) the first step cuts. Retiring happens even
	// when emit failed — the stream is over either way.
	if s.retire != nil {
		for _, c := range s.buf[:s.step] {
			s.retire(c)
		}
	}
	s.buf = append(s.buf[:0], s.buf[s.step:]...)
	s.start += s.step
	return err
}

// Flush emits the trailing partial window (fewer than size cuts), if any
// cuts would otherwise be lost. Windows already emitted cover cuts up to
// start+size-1; Flush emits the remainder once the stream ends.
func (s *Slider) Flush(emit func(Window) error) error {
	if len(s.buf) == 0 {
		return nil
	}
	// The buffered cuts overlap previously emitted windows except for the
	// very tail. Emit a final window only if some cut was never part of an
	// emitted window.
	var err error
	if s.start == 0 || len(s.buf) > s.size-s.step {
		w := Window{Start: s.start, Cuts: append([]Cut(nil), s.buf...)}
		err = emit(w)
	}
	if s.retire != nil {
		for _, c := range s.buf {
			s.retire(c)
		}
	}
	s.buf = s.buf[:0]
	return err
}

// ErrNoCuts is returned by helpers that require a non-empty window.
var ErrNoCuts = errors.New("window: empty window")

// CopyBuffer is a reusable deep copy of one window: Capture copies every
// cut's states into a single flat arena owned by the buffer, so the copy's
// lifetime is independent of the producer's recycled cut storage. A
// consumer that must hold a window past the emit callback (e.g. a farm
// that analyses windows asynchronously while the stream recycles cuts)
// captures into a pooled CopyBuffer and releases it afterwards; a warmed
// buffer captures without allocating.
type CopyBuffer struct {
	cuts   []Cut
	states [][]int64
	arena  []int64
}

// Capture deep-copies w into the buffer and returns the copy, valid until
// the next Capture on the same buffer. Every cut of w must hold the same
// number of trajectories with the same state width (the Aligner
// guarantees both).
func (b *CopyBuffer) Capture(w Window) Window {
	nCuts := len(w.Cuts)
	if nCuts == 0 {
		return Window{Start: w.Start}
	}
	nTraj := w.Cuts[0].NumTrajectories()
	ns := 0
	if nTraj > 0 {
		ns = len(w.Cuts[0].States[0])
	}
	if need := nCuts * nTraj * ns; cap(b.arena) < need {
		b.arena = make([]int64, need)
	} else {
		b.arena = b.arena[:need]
	}
	if need := nCuts * nTraj; cap(b.states) < need {
		b.states = make([][]int64, need)
	} else {
		b.states = b.states[:need]
	}
	if cap(b.cuts) < nCuts {
		b.cuts = make([]Cut, nCuts)
	} else {
		b.cuts = b.cuts[:nCuts]
	}
	for k, c := range w.Cuts {
		for i, st := range c.States {
			off := (k*nTraj + i) * ns
			row := b.arena[off : off+ns : off+ns]
			copy(row, st)
			b.states[k*nTraj+i] = row
		}
		b.cuts[k] = Cut{
			Index:  c.Index,
			Time:   c.Time,
			States: b.states[k*nTraj : (k+1)*nTraj],
		}
	}
	return Window{Start: w.Start, Cuts: b.cuts}
}

// Series extracts the per-cut ensemble of one species: out[k][i] is the
// count of species sp for trajectory i at the window's k-th cut.
func (w Window) Series(sp int) ([][]int64, error) {
	if len(w.Cuts) == 0 {
		return nil, ErrNoCuts
	}
	out := make([][]int64, len(w.Cuts))
	for k, c := range w.Cuts {
		row := make([]int64, len(c.States))
		for i, st := range c.States {
			row[i] = st[sp]
		}
		out[k] = row
	}
	return out, nil
}

// TrajectoryTrace extracts trajectory i's series of species sp across the
// window's cuts.
func (w Window) TrajectoryTrace(traj, sp int) ([]float64, error) {
	if len(w.Cuts) == 0 {
		return nil, ErrNoCuts
	}
	out := make([]float64, len(w.Cuts))
	for k, c := range w.Cuts {
		if traj < 0 || traj >= len(c.States) {
			return nil, fmt.Errorf("window: trajectory %d out of range", traj)
		}
		out[k] = float64(c.States[traj][sp])
	}
	return out, nil
}
