// Package window implements the two stream-reshaping stages between the
// simulation farm and the statistical farm of the pipeline:
//
//   - the Aligner ("alignment of trajectories"): it consumes the unordered
//     interleaving of per-trajectory samples produced by the simulation
//     engines and emits Cuts — the states of *all* trajectories at a common
//     sample instant — in increasing time order, buffering only the spread
//     between the fastest and slowest trajectory;
//   - the Slider ("generation of sliding windows of trajectories"): it
//     groups consecutive cuts into overlapping windows, the unit of work of
//     the statistical engines that need temporal context (moving averages,
//     period detection, clustering of trajectory segments).
package window

import (
	"errors"
	"fmt"

	"cwcflow/internal/sim"
)

// Cut is the cross-section of the whole trajectory ensemble at one sample
// instant: States[i] is trajectory i's observable vector.
type Cut struct {
	Index  int
	Time   float64
	States [][]int64
}

// NumTrajectories returns the ensemble size.
func (c Cut) NumTrajectories() int { return len(c.States) }

// Aligner assembles samples into cuts. Samples may arrive in any
// interleaving across trajectories, but each trajectory must deliver its
// own samples in index order (which the sim.Task contract guarantees).
//
// The zero value is not usable; construct with NewAligner.
type Aligner struct {
	nTraj    int
	nextEmit int
	pending  map[int]*partialCut
}

type partialCut struct {
	time   float64
	states [][]int64
	filled int
}

// NewAligner returns an aligner for an ensemble of nTraj trajectories.
func NewAligner(nTraj int) (*Aligner, error) {
	if nTraj < 1 {
		return nil, fmt.Errorf("window: need at least 1 trajectory, got %d", nTraj)
	}
	return &Aligner{
		nTraj:   nTraj,
		pending: make(map[int]*partialCut),
	}, nil
}

// Push adds one sample. Complete cuts are emitted in index order (one Push
// can release several consecutive cuts when it fills the oldest gap).
func (a *Aligner) Push(s sim.Sample, emit func(Cut) error) error {
	if s.Traj < 0 || s.Traj >= a.nTraj {
		return fmt.Errorf("window: sample for unknown trajectory %d (ensemble of %d)", s.Traj, a.nTraj)
	}
	if s.Index < a.nextEmit {
		return fmt.Errorf("window: trajectory %d delivered sample %d twice (cut already emitted)", s.Traj, s.Index)
	}
	pc := a.pending[s.Index]
	if pc == nil {
		pc = &partialCut{time: s.Time, states: make([][]int64, a.nTraj)}
		a.pending[s.Index] = pc
	}
	if pc.states[s.Traj] != nil {
		return fmt.Errorf("window: duplicate sample (traj %d, index %d)", s.Traj, s.Index)
	}
	pc.states[s.Traj] = s.State
	pc.filled++

	// Release every consecutive complete cut starting at nextEmit.
	for {
		ready := a.pending[a.nextEmit]
		if ready == nil || ready.filled < a.nTraj {
			return nil
		}
		delete(a.pending, a.nextEmit)
		cut := Cut{Index: a.nextEmit, Time: ready.time, States: ready.states}
		a.nextEmit++
		if err := emit(cut); err != nil {
			return err
		}
	}
}

// Pending returns the number of partially assembled cuts currently
// buffered — the alignment backlog (fastest minus slowest trajectory).
func (a *Aligner) Pending() int { return len(a.pending) }

// EmittedCuts returns how many complete cuts have been released.
func (a *Aligner) EmittedCuts() int { return a.nextEmit }

// Close verifies that no partially filled cut is left behind (every
// trajectory delivered every sample). Call it after the sample stream ends.
func (a *Aligner) Close() error {
	if len(a.pending) != 0 {
		return fmt.Errorf("window: stream ended with %d incomplete cuts (first missing: %d)", len(a.pending), a.nextEmit)
	}
	return nil
}

// Window is a group of Size consecutive cuts starting at cut index Start.
type Window struct {
	Start int
	Cuts  []Cut
}

// Slider groups a stream of cuts into sliding windows of the given size,
// advancing by step cuts between windows (step == size gives tumbling
// windows).
//
// The zero value is not usable; construct with NewSlider.
type Slider struct {
	size, step int
	buf        []Cut
	start      int
}

// NewSlider returns a slider emitting windows of size cuts every step cuts.
func NewSlider(size, step int) (*Slider, error) {
	if size < 1 || step < 1 {
		return nil, fmt.Errorf("window: size and step must be >= 1 (got %d, %d)", size, step)
	}
	if step > size {
		return nil, fmt.Errorf("window: step %d larger than size %d would drop cuts", step, size)
	}
	return &Slider{size: size, step: step}, nil
}

// Push adds a cut, emitting a window whenever one completes. Cuts must
// arrive in index order (the Aligner guarantees that).
func (s *Slider) Push(c Cut, emit func(Window) error) error {
	if n := len(s.buf); n > 0 && c.Index != s.buf[n-1].Index+1 {
		return fmt.Errorf("window: cut %d out of order after %d", c.Index, s.buf[n-1].Index)
	}
	s.buf = append(s.buf, c)
	if len(s.buf) < s.size {
		return nil
	}
	w := Window{Start: s.start, Cuts: append([]Cut(nil), s.buf...)}
	// Slide: drop the first step cuts.
	s.buf = append(s.buf[:0], s.buf[s.step:]...)
	s.start += s.step
	return emit(w)
}

// Flush emits the trailing partial window (fewer than size cuts), if any
// cuts would otherwise be lost. Windows already emitted cover cuts up to
// start+size-1; Flush emits the remainder once the stream ends.
func (s *Slider) Flush(emit func(Window) error) error {
	if len(s.buf) == 0 {
		return nil
	}
	// The buffered cuts overlap previously emitted windows except for the
	// very tail. Emit a final window only if some cut was never part of an
	// emitted window.
	if s.start == 0 || len(s.buf) > s.size-s.step {
		w := Window{Start: s.start, Cuts: append([]Cut(nil), s.buf...)}
		s.buf = s.buf[:0]
		return emit(w)
	}
	s.buf = s.buf[:0]
	return nil
}

// ErrNoCuts is returned by helpers that require a non-empty window.
var ErrNoCuts = errors.New("window: empty window")

// Series extracts the per-cut ensemble of one species: out[k][i] is the
// count of species sp for trajectory i at the window's k-th cut.
func (w Window) Series(sp int) ([][]int64, error) {
	if len(w.Cuts) == 0 {
		return nil, ErrNoCuts
	}
	out := make([][]int64, len(w.Cuts))
	for k, c := range w.Cuts {
		row := make([]int64, len(c.States))
		for i, st := range c.States {
			row[i] = st[sp]
		}
		out[k] = row
	}
	return out, nil
}

// TrajectoryTrace extracts trajectory i's series of species sp across the
// window's cuts.
func (w Window) TrajectoryTrace(traj, sp int) ([]float64, error) {
	if len(w.Cuts) == 0 {
		return nil, ErrNoCuts
	}
	out := make([]float64, len(w.Cuts))
	for k, c := range w.Cuts {
		if traj < 0 || traj >= len(c.States) {
			return nil, fmt.Errorf("window: trajectory %d out of range", traj)
		}
		out[k] = float64(c.States[traj][sp])
	}
	return out, nil
}
