package window

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cwcflow/internal/sim"
)

func mkSample(traj, idx int, v int64) sim.Sample {
	return sim.Sample{Traj: traj, Index: idx, Time: float64(idx), State: []int64{v}}
}

func TestAlignerEmitsInOrder(t *testing.T) {
	a, err := NewAligner(2)
	if err != nil {
		t.Fatal(err)
	}
	var got []Cut
	emit := func(c Cut) error { got = append(got, c); return nil }

	// Trajectory 0 runs ahead; cut 0 completes only when traj 1 catches up.
	must(t, a.Push(mkSample(0, 0, 10), emit))
	must(t, a.Push(mkSample(0, 1, 11), emit))
	must(t, a.Push(mkSample(0, 2, 12), emit))
	if len(got) != 0 {
		t.Fatalf("premature cuts: %d", len(got))
	}
	if a.Pending() != 3 {
		t.Fatalf("pending = %d, want 3", a.Pending())
	}
	must(t, a.Push(mkSample(1, 0, 20), emit))
	if len(got) != 1 || got[0].Index != 0 {
		t.Fatalf("cut 0 not released: %v", got)
	}
	must(t, a.Push(mkSample(1, 1, 21), emit))
	must(t, a.Push(mkSample(1, 2, 22), emit))
	if len(got) != 3 {
		t.Fatalf("cuts = %d, want 3", len(got))
	}
	for k, c := range got {
		if c.Index != k {
			t.Fatalf("cut order broken: %v", c)
		}
		if c.States[0][0] != int64(10+k) || c.States[1][0] != int64(20+k) {
			t.Fatalf("cut %d content wrong: %v", k, c.States)
		}
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestAlignerRejectsBadSamples(t *testing.T) {
	a, _ := NewAligner(2)
	emit := func(Cut) error { return nil }
	if err := a.Push(mkSample(5, 0, 1), emit); err == nil {
		t.Fatal("unknown trajectory accepted")
	}
	must(t, a.Push(mkSample(0, 0, 1), emit))
	if err := a.Push(mkSample(0, 0, 1), emit); err == nil {
		t.Fatal("duplicate sample accepted")
	}
	// Complete and emit cut 0, then a stale re-delivery must fail.
	must(t, a.Push(mkSample(1, 0, 2), emit))
	if err := a.Push(mkSample(0, 0, 1), emit); err == nil {
		t.Fatal("stale sample (already emitted cut) accepted")
	}
}

func TestAlignerCloseDetectsIncomplete(t *testing.T) {
	a, _ := NewAligner(3)
	emit := func(Cut) error { return nil }
	must(t, a.Push(mkSample(0, 0, 1), emit))
	if err := a.Close(); err == nil {
		t.Fatal("Close accepted incomplete stream")
	}
}

func TestAlignerSingleTrajectory(t *testing.T) {
	a, _ := NewAligner(1)
	n := 0
	emit := func(c Cut) error { n++; return nil }
	for k := 0; k < 5; k++ {
		must(t, a.Push(mkSample(0, k, int64(k)), emit))
	}
	if n != 5 || a.EmittedCuts() != 5 {
		t.Fatalf("cuts = %d (emitted %d), want 5", n, a.EmittedCuts())
	}
}

// Property: for any interleaving of per-trajectory-ordered samples, the
// aligner emits all cuts exactly once, in order, with the right contents.
func TestAlignerProperty_AnyInterleaving(t *testing.T) {
	f := func(seed int64, nTrajRaw, nCutsRaw uint8) bool {
		nTraj := int(nTrajRaw%5) + 1
		nCuts := int(nCutsRaw%20) + 1
		rng := rand.New(rand.NewSource(seed))
		// Build per-trajectory queues and a random fair interleaving.
		next := make([]int, nTraj)
		var order []int
		for len(order) < nTraj*nCuts {
			tr := rng.Intn(nTraj)
			if next[tr] < nCuts {
				order = append(order, tr)
				next[tr]++
			}
		}
		for i := range next {
			next[i] = 0
		}
		a, err := NewAligner(nTraj)
		if err != nil {
			return false
		}
		var cuts []Cut
		for _, tr := range order {
			idx := next[tr]
			next[tr]++
			err := a.Push(mkSample(tr, idx, int64(100*tr+idx)), func(c Cut) error {
				cuts = append(cuts, c)
				return nil
			})
			if err != nil {
				return false
			}
		}
		if a.Close() != nil || len(cuts) != nCuts {
			return false
		}
		for k, c := range cuts {
			if c.Index != k {
				return false
			}
			for tr := 0; tr < nTraj; tr++ {
				if c.States[tr][0] != int64(100*tr+k) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func mkCut(idx int, vals ...int64) Cut {
	states := make([][]int64, len(vals))
	for i, v := range vals {
		states[i] = []int64{v}
	}
	return Cut{Index: idx, Time: float64(idx), States: states}
}

func TestSliderFullWindows(t *testing.T) {
	s, err := NewSlider(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	var wins []Window
	for k := 0; k < 5; k++ {
		must(t, s.Push(mkCut(k, int64(k)), func(w Window) error {
			wins = append(wins, w)
			return nil
		}))
	}
	if len(wins) != 3 {
		t.Fatalf("windows = %d, want 3", len(wins))
	}
	for i, w := range wins {
		if w.Start != i || len(w.Cuts) != 3 || w.Cuts[0].Index != i {
			t.Fatalf("window %d wrong: start=%d cuts=%d", i, w.Start, len(w.Cuts))
		}
	}
}

func TestSliderTumbling(t *testing.T) {
	s, err := NewSlider(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	var wins []Window
	emit := func(w Window) error { wins = append(wins, w); return nil }
	for k := 0; k < 6; k++ {
		must(t, s.Push(mkCut(k, 0), emit))
	}
	if len(wins) != 3 {
		t.Fatalf("tumbling windows = %d, want 3", len(wins))
	}
	for i, w := range wins {
		if w.Start != 2*i {
			t.Fatalf("window %d start = %d, want %d", i, w.Start, 2*i)
		}
	}
	if err := s.Flush(emit); err != nil {
		t.Fatal(err)
	}
	if len(wins) != 3 {
		t.Fatal("Flush emitted a window with no leftover cuts")
	}
}

func TestSliderFlushEmitsTail(t *testing.T) {
	s, _ := NewSlider(4, 4)
	var wins []Window
	emit := func(w Window) error { wins = append(wins, w); return nil }
	for k := 0; k < 6; k++ { // one full window + 2 leftover cuts
		must(t, s.Push(mkCut(k, 0), emit))
	}
	must(t, s.Flush(emit))
	if len(wins) != 2 {
		t.Fatalf("windows = %d, want 2 (full + tail)", len(wins))
	}
	if len(wins[1].Cuts) != 2 || wins[1].Start != 4 {
		t.Fatalf("tail window wrong: start=%d cuts=%d", wins[1].Start, len(wins[1].Cuts))
	}
}

func TestSliderRejectsGaps(t *testing.T) {
	s, _ := NewSlider(2, 1)
	emit := func(Window) error { return nil }
	must(t, s.Push(mkCut(0, 0), emit))
	if err := s.Push(mkCut(2, 0), emit); err == nil {
		t.Fatal("gap in cut indices accepted")
	}
}

func TestSliderValidation(t *testing.T) {
	if _, err := NewSlider(0, 1); err == nil {
		t.Fatal("size 0 accepted")
	}
	if _, err := NewSlider(2, 3); err == nil {
		t.Fatal("step > size accepted")
	}
}

func TestWindowSeriesAndTrace(t *testing.T) {
	w := Window{Start: 0, Cuts: []Cut{mkCut(0, 1, 2), mkCut(1, 3, 4)}}
	series, err := w.Series(0)
	if err != nil {
		t.Fatal(err)
	}
	if series[0][0] != 1 || series[0][1] != 2 || series[1][0] != 3 || series[1][1] != 4 {
		t.Fatalf("series wrong: %v", series)
	}
	trace, err := w.TrajectoryTrace(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if trace[0] != 2 || trace[1] != 4 {
		t.Fatalf("trace wrong: %v", trace)
	}
	if _, err := w.TrajectoryTrace(9, 0); err == nil {
		t.Fatal("out-of-range trajectory accepted")
	}
	empty := Window{}
	if _, err := empty.Series(0); err == nil {
		t.Fatal("empty window series accepted")
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

// TestAlignerRejectsOutOfRangeTrajectory: every out-of-range trajectory
// index — negative or ≥ ensemble size — must error without touching any
// cut state (the ring rewrite must not index the arena with it first).
func TestAlignerRejectsOutOfRangeTrajectory(t *testing.T) {
	a, _ := NewAligner(3)
	emit := func(Cut) error { t.Fatal("cut emitted from rejected samples"); return nil }
	for _, traj := range []int{-1, -100, 3, 4, 1 << 30} {
		if err := a.Push(sim.Sample{Traj: traj, Index: 0, State: []int64{1}}, emit); err == nil {
			t.Fatalf("trajectory %d accepted (ensemble of 3)", traj)
		}
	}
	if a.Pending() != 0 {
		t.Fatalf("rejected samples left %d pending cuts", a.Pending())
	}
	// A negative sample index must be rejected too (it would otherwise
	// index the ring with a bogus offset).
	if err := a.Push(sim.Sample{Traj: 0, Index: -1, State: []int64{1}}, emit); err == nil {
		t.Fatal("negative sample index accepted")
	}
	// Mismatched state width corrupts the flat cut arena: reject.
	ok := func(Cut) error { return nil }
	must(t, a.Push(sim.Sample{Traj: 0, Index: 0, State: []int64{1}}, ok))
	if err := a.Push(sim.Sample{Traj: 1, Index: 0, State: []int64{1, 2}}, ok); err == nil {
		t.Fatal("mismatched state width accepted")
	}
}

// TestAlignerRingGrowth: a dead trajectory floods the aligner with its
// whole frozen tail at once — a spread far beyond the initial ring — and
// every cut must still come out exactly once, in order, intact.
func TestAlignerRingGrowth(t *testing.T) {
	const nCuts = 300 // ≫ initial ring size
	a, _ := NewAligner(2)
	var got []Cut
	emit := func(c Cut) error {
		got = append(got, Cut{Index: c.Index, Time: c.Time, States: [][]int64{
			append([]int64(nil), c.States[0]...),
			append([]int64(nil), c.States[1]...),
		}})
		return nil
	}
	// Trajectory 0 delivers everything first (the dead-task flood)...
	for k := 0; k < nCuts; k++ {
		must(t, a.Push(sim.Sample{Traj: 0, Index: k, Time: float64(k), State: []int64{int64(k)}}, emit))
	}
	if a.Pending() != nCuts {
		t.Fatalf("pending = %d, want %d", a.Pending(), nCuts)
	}
	// ...then trajectory 1 trickles in, releasing cuts one by one.
	for k := 0; k < nCuts; k++ {
		must(t, a.Push(sim.Sample{Traj: 1, Index: k, Time: float64(k), State: []int64{int64(-k)}}, emit))
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if len(got) != nCuts {
		t.Fatalf("emitted %d cuts, want %d", len(got), nCuts)
	}
	for k, c := range got {
		if c.Index != k || c.States[0][0] != int64(k) || c.States[1][0] != int64(-k) {
			t.Fatalf("cut %d corrupted: %+v", k, c)
		}
	}
}

// TestAlignerRecycleReusesStorage: recycled cut storage must back later
// cuts (bounding steady-state allocation) without corrupting contents,
// and recycling foreign cuts must be a safe no-op.
func TestAlignerRecycleReusesStorage(t *testing.T) {
	a, _ := NewAligner(2)
	emitted := -1
	emit := func(c Cut) error {
		// Contents must be verified before Recycle: afterwards the storage
		// belongs to the free list.
		if c.States[0][0] != int64(c.Index) || c.States[1][0] != int64(2*c.Index) {
			t.Fatalf("cut %d contents wrong: %v", c.Index, c.States)
		}
		emitted = c.Index
		a.Recycle(c)
		return nil
	}
	for k := 0; k < 50; k++ {
		must(t, a.Push(sim.Sample{Traj: 0, Index: k, Time: float64(k), State: []int64{int64(k), 10}}, emit))
		must(t, a.Push(sim.Sample{Traj: 1, Index: k, Time: float64(k), State: []int64{int64(2 * k), 20}}, emit))
		if emitted != k {
			t.Fatalf("cut %d not emitted (last emitted %d)", k, emitted)
		}
	}
	// Foreign cuts (hand-made, or from another geometry) are ignored.
	a.Recycle(Cut{Index: 0, States: [][]int64{{1}, {2}}})
	a.Recycle(Cut{})
}

// TestAlignerSteadyStateAllocationFree pins the recycling contract: with
// cuts recycled as they are consumed, pushing allocates nothing once the
// ring and free list have warmed up.
func TestAlignerSteadyStateAllocationFree(t *testing.T) {
	a, _ := NewAligner(4)
	emit := func(c Cut) error { a.Recycle(c); return nil }
	state := []int64{1, 2, 3}
	idx := 0
	push := func() {
		for traj := 0; traj < 4; traj++ {
			if err := a.Push(sim.Sample{Traj: traj, Index: idx, Time: float64(idx), State: state}, emit); err != nil {
				t.Fatal(err)
			}
		}
		idx++
	}
	push() // warm up: ring slots, first cut store, free list
	if avg := testing.AllocsPerRun(200, push); avg != 0 {
		t.Fatalf("steady-state Push allocates %.2f objects per cut, want 0", avg)
	}
}

// TestSliderRetireCallback: cuts must be retired exactly once each, only
// after the last window containing them was emitted.
func TestSliderRetireCallback(t *testing.T) {
	s, err := NewSlider(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	retired := map[int]int{}
	var emitted []int
	maxEmittedStart := -1
	s.SetRetire(func(c Cut) {
		retired[c.Index]++
		// A cut may only retire after some window containing it was
		// emitted: windows are 3 cuts wide, so the newest emitted window
		// must reach at least cut c.Index.
		if maxEmittedStart+2 < c.Index {
			t.Fatalf("cut %d retired but newest emitted window covers only up to %d", c.Index, maxEmittedStart+2)
		}
	})
	emit := func(w Window) error {
		emitted = append(emitted, w.Start)
		if w.Start > maxEmittedStart {
			maxEmittedStart = w.Start
		}
		return nil
	}
	for k := 0; k < 10; k++ {
		if err := s.Push(Cut{Index: k, Time: float64(k)}, emit); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(emit); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 10; k++ {
		if retired[k] != 1 {
			t.Fatalf("cut %d retired %d times, want exactly 1", k, retired[k])
		}
	}
	if len(emitted) == 0 {
		t.Fatal("no windows emitted")
	}
}
