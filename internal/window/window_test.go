package window

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cwcflow/internal/sim"
)

func mkSample(traj, idx int, v int64) sim.Sample {
	return sim.Sample{Traj: traj, Index: idx, Time: float64(idx), State: []int64{v}}
}

func TestAlignerEmitsInOrder(t *testing.T) {
	a, err := NewAligner(2)
	if err != nil {
		t.Fatal(err)
	}
	var got []Cut
	emit := func(c Cut) error { got = append(got, c); return nil }

	// Trajectory 0 runs ahead; cut 0 completes only when traj 1 catches up.
	must(t, a.Push(mkSample(0, 0, 10), emit))
	must(t, a.Push(mkSample(0, 1, 11), emit))
	must(t, a.Push(mkSample(0, 2, 12), emit))
	if len(got) != 0 {
		t.Fatalf("premature cuts: %d", len(got))
	}
	if a.Pending() != 3 {
		t.Fatalf("pending = %d, want 3", a.Pending())
	}
	must(t, a.Push(mkSample(1, 0, 20), emit))
	if len(got) != 1 || got[0].Index != 0 {
		t.Fatalf("cut 0 not released: %v", got)
	}
	must(t, a.Push(mkSample(1, 1, 21), emit))
	must(t, a.Push(mkSample(1, 2, 22), emit))
	if len(got) != 3 {
		t.Fatalf("cuts = %d, want 3", len(got))
	}
	for k, c := range got {
		if c.Index != k {
			t.Fatalf("cut order broken: %v", c)
		}
		if c.States[0][0] != int64(10+k) || c.States[1][0] != int64(20+k) {
			t.Fatalf("cut %d content wrong: %v", k, c.States)
		}
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestAlignerRejectsBadSamples(t *testing.T) {
	a, _ := NewAligner(2)
	emit := func(Cut) error { return nil }
	if err := a.Push(mkSample(5, 0, 1), emit); err == nil {
		t.Fatal("unknown trajectory accepted")
	}
	must(t, a.Push(mkSample(0, 0, 1), emit))
	if err := a.Push(mkSample(0, 0, 1), emit); err == nil {
		t.Fatal("duplicate sample accepted")
	}
	// Complete and emit cut 0, then a stale re-delivery must fail.
	must(t, a.Push(mkSample(1, 0, 2), emit))
	if err := a.Push(mkSample(0, 0, 1), emit); err == nil {
		t.Fatal("stale sample (already emitted cut) accepted")
	}
}

func TestAlignerCloseDetectsIncomplete(t *testing.T) {
	a, _ := NewAligner(3)
	emit := func(Cut) error { return nil }
	must(t, a.Push(mkSample(0, 0, 1), emit))
	if err := a.Close(); err == nil {
		t.Fatal("Close accepted incomplete stream")
	}
}

func TestAlignerSingleTrajectory(t *testing.T) {
	a, _ := NewAligner(1)
	n := 0
	emit := func(c Cut) error { n++; return nil }
	for k := 0; k < 5; k++ {
		must(t, a.Push(mkSample(0, k, int64(k)), emit))
	}
	if n != 5 || a.EmittedCuts() != 5 {
		t.Fatalf("cuts = %d (emitted %d), want 5", n, a.EmittedCuts())
	}
}

// Property: for any interleaving of per-trajectory-ordered samples, the
// aligner emits all cuts exactly once, in order, with the right contents.
func TestAlignerProperty_AnyInterleaving(t *testing.T) {
	f := func(seed int64, nTrajRaw, nCutsRaw uint8) bool {
		nTraj := int(nTrajRaw%5) + 1
		nCuts := int(nCutsRaw%20) + 1
		rng := rand.New(rand.NewSource(seed))
		// Build per-trajectory queues and a random fair interleaving.
		next := make([]int, nTraj)
		var order []int
		for len(order) < nTraj*nCuts {
			tr := rng.Intn(nTraj)
			if next[tr] < nCuts {
				order = append(order, tr)
				next[tr]++
			}
		}
		for i := range next {
			next[i] = 0
		}
		a, err := NewAligner(nTraj)
		if err != nil {
			return false
		}
		var cuts []Cut
		for _, tr := range order {
			idx := next[tr]
			next[tr]++
			err := a.Push(mkSample(tr, idx, int64(100*tr+idx)), func(c Cut) error {
				cuts = append(cuts, c)
				return nil
			})
			if err != nil {
				return false
			}
		}
		if a.Close() != nil || len(cuts) != nCuts {
			return false
		}
		for k, c := range cuts {
			if c.Index != k {
				return false
			}
			for tr := 0; tr < nTraj; tr++ {
				if c.States[tr][0] != int64(100*tr+k) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func mkCut(idx int, vals ...int64) Cut {
	states := make([][]int64, len(vals))
	for i, v := range vals {
		states[i] = []int64{v}
	}
	return Cut{Index: idx, Time: float64(idx), States: states}
}

func TestSliderFullWindows(t *testing.T) {
	s, err := NewSlider(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	var wins []Window
	for k := 0; k < 5; k++ {
		must(t, s.Push(mkCut(k, int64(k)), func(w Window) error {
			wins = append(wins, w)
			return nil
		}))
	}
	if len(wins) != 3 {
		t.Fatalf("windows = %d, want 3", len(wins))
	}
	for i, w := range wins {
		if w.Start != i || len(w.Cuts) != 3 || w.Cuts[0].Index != i {
			t.Fatalf("window %d wrong: start=%d cuts=%d", i, w.Start, len(w.Cuts))
		}
	}
}

func TestSliderTumbling(t *testing.T) {
	s, err := NewSlider(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	var wins []Window
	emit := func(w Window) error { wins = append(wins, w); return nil }
	for k := 0; k < 6; k++ {
		must(t, s.Push(mkCut(k, 0), emit))
	}
	if len(wins) != 3 {
		t.Fatalf("tumbling windows = %d, want 3", len(wins))
	}
	for i, w := range wins {
		if w.Start != 2*i {
			t.Fatalf("window %d start = %d, want %d", i, w.Start, 2*i)
		}
	}
	if err := s.Flush(emit); err != nil {
		t.Fatal(err)
	}
	if len(wins) != 3 {
		t.Fatal("Flush emitted a window with no leftover cuts")
	}
}

func TestSliderFlushEmitsTail(t *testing.T) {
	s, _ := NewSlider(4, 4)
	var wins []Window
	emit := func(w Window) error { wins = append(wins, w); return nil }
	for k := 0; k < 6; k++ { // one full window + 2 leftover cuts
		must(t, s.Push(mkCut(k, 0), emit))
	}
	must(t, s.Flush(emit))
	if len(wins) != 2 {
		t.Fatalf("windows = %d, want 2 (full + tail)", len(wins))
	}
	if len(wins[1].Cuts) != 2 || wins[1].Start != 4 {
		t.Fatalf("tail window wrong: start=%d cuts=%d", wins[1].Start, len(wins[1].Cuts))
	}
}

func TestSliderRejectsGaps(t *testing.T) {
	s, _ := NewSlider(2, 1)
	emit := func(Window) error { return nil }
	must(t, s.Push(mkCut(0, 0), emit))
	if err := s.Push(mkCut(2, 0), emit); err == nil {
		t.Fatal("gap in cut indices accepted")
	}
}

func TestSliderValidation(t *testing.T) {
	if _, err := NewSlider(0, 1); err == nil {
		t.Fatal("size 0 accepted")
	}
	if _, err := NewSlider(2, 3); err == nil {
		t.Fatal("step > size accepted")
	}
}

func TestWindowSeriesAndTrace(t *testing.T) {
	w := Window{Start: 0, Cuts: []Cut{mkCut(0, 1, 2), mkCut(1, 3, 4)}}
	series, err := w.Series(0)
	if err != nil {
		t.Fatal(err)
	}
	if series[0][0] != 1 || series[0][1] != 2 || series[1][0] != 3 || series[1][1] != 4 {
		t.Fatalf("series wrong: %v", series)
	}
	trace, err := w.TrajectoryTrace(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if trace[0] != 2 || trace[1] != 4 {
		t.Fatalf("trace wrong: %v", trace)
	}
	if _, err := w.TrajectoryTrace(9, 0); err == nil {
		t.Fatal("out-of-range trajectory accepted")
	}
	empty := Window{}
	if _, err := empty.Series(0); err == nil {
		t.Fatal("empty window series accepted")
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
