package window

import (
	"testing"

	"cwcflow/internal/sim"
)

// BenchmarkAligner times one full cut assembly (64 pushes → one emitted
// cut) on the ring-buffer aligner with storage recycling — the
// steady-state alignment cost of a 64-trajectory ensemble.
func BenchmarkAligner(b *testing.B) {
	const nTraj = 64
	a, err := NewAligner(nTraj)
	if err != nil {
		b.Fatal(err)
	}
	emit := func(c Cut) error { a.Recycle(c); return nil }
	state := []int64{1, 2, 3, 4}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for traj := 0; traj < nTraj; traj++ {
			if err := a.Push(sim.Sample{Traj: traj, Index: i, Time: float64(i), State: state}, emit); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkStream times the fused align→window stage per cut (64
// trajectories, sliding windows of 16 advancing by 4), including cut
// recycling once windows slide past.
func BenchmarkStream(b *testing.B) {
	const nTraj = 64
	st, err := NewStream(nTraj, 16, 4)
	if err != nil {
		b.Fatal(err)
	}
	emit := func(Window) error { return nil }
	state := []int64{1, 2, 3, 4}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for traj := 0; traj < nTraj; traj++ {
			if err := st.Push(sim.Sample{Traj: traj, Index: i, Time: float64(i), State: state}, emit); err != nil {
				b.Fatal(err)
			}
		}
	}
}
