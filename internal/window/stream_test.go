package window

import (
	"math/rand"
	"testing"

	"cwcflow/internal/sim"
)

// pushShuffled feeds nTraj*cuts samples to the stream in a trajectory-
// interleaved but per-trajectory-ordered shuffle, as the farm produces them.
func pushShuffled(t *testing.T, st *Stream, nTraj, cuts int, rng *rand.Rand) []Window {
	t.Helper()
	next := make([]int, nTraj)
	var wins []Window
	remaining := nTraj * cuts
	for remaining > 0 {
		traj := rng.Intn(nTraj)
		if next[traj] >= cuts {
			continue
		}
		s := sim.Sample{
			Traj:  traj,
			Index: next[traj],
			Time:  float64(next[traj]) * 0.5,
			State: []int64{int64(traj*1000 + next[traj])},
		}
		next[traj]++
		remaining--
		if err := st.Push(s, func(w Window) error {
			wins = append(wins, w)
			return nil
		}); err != nil {
			t.Fatalf("Push: %v", err)
		}
	}
	if err := st.Close(func(w Window) error {
		wins = append(wins, w)
		return nil
	}); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return wins
}

func TestStreamMatchesWindowCount(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cases := []struct{ nTraj, cuts, size, step int }{
		{4, 32, 16, 16},
		{4, 33, 16, 16},
		{3, 10, 16, 16},
		{5, 40, 8, 4},
		{2, 41, 8, 4},
		{1, 1, 1, 1},
		{8, 7, 8, 8},
	}
	for _, c := range cases {
		st, err := NewStream(c.nTraj, c.size, c.step)
		if err != nil {
			t.Fatalf("NewStream(%v): %v", c, err)
		}
		wins := pushShuffled(t, st, c.nTraj, c.cuts, rng)
		want := WindowCount(c.cuts, c.size, c.step)
		if len(wins) != want {
			t.Errorf("case %+v: got %d windows, WindowCount says %d", c, len(wins), want)
		}
		if st.Cuts() != c.cuts {
			t.Errorf("case %+v: Cuts() = %d, want %d", c, st.Cuts(), c.cuts)
		}
		// Windows must be contiguous, in order, with the configured step.
		for i, w := range wins {
			if want := i * c.step; w.Start != want {
				t.Errorf("case %+v: window %d starts at cut %d, want %d", c, i, w.Start, want)
			}
			for k, cut := range w.Cuts {
				if cut.Index != w.Start+k {
					t.Errorf("case %+v: window %d cut %d has index %d", c, i, k, cut.Index)
				}
			}
		}
	}
}

func TestStreamDetectsIncompleteEnsemble(t *testing.T) {
	st, err := NewStream(2, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Only trajectory 0 delivers samples.
	for i := 0; i < 3; i++ {
		s := sim.Sample{Traj: 0, Index: i, Time: float64(i), State: []int64{1}}
		if err := st.Push(s, func(Window) error { return nil }); err != nil {
			t.Fatalf("Push: %v", err)
		}
	}
	if err := st.Close(func(Window) error { return nil }); err == nil {
		t.Fatal("Close accepted a stream with missing trajectory samples")
	}
	if st.Pending() != 3 {
		t.Errorf("Pending() = %d, want 3", st.Pending())
	}
}
