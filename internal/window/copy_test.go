package window

import "testing"

func copyTestWindow(nCuts, nTraj, ns int, base int64) Window {
	w := Window{Start: 3, Cuts: make([]Cut, nCuts)}
	for k := range w.Cuts {
		states := make([][]int64, nTraj)
		for i := range states {
			row := make([]int64, ns)
			for s := range row {
				row[s] = base + int64(k*100+i*10+s)
			}
			states[i] = row
		}
		w.Cuts[k] = Cut{Index: 3 + k, Time: float64(k), States: states}
	}
	return w
}

func TestCopyBufferCapturesIndependently(t *testing.T) {
	src := copyTestWindow(4, 3, 2, 0)
	var buf CopyBuffer
	got := buf.Capture(src)

	if got.Start != src.Start || len(got.Cuts) != len(src.Cuts) {
		t.Fatalf("copy shape: start %d/%d cuts, want %d/%d", got.Start, len(got.Cuts), src.Start, len(src.Cuts))
	}
	for k, c := range src.Cuts {
		gc := got.Cuts[k]
		if gc.Index != c.Index || gc.Time != c.Time {
			t.Fatalf("cut %d header (%d, %g), want (%d, %g)", k, gc.Index, gc.Time, c.Index, c.Time)
		}
		for i := range c.States {
			for s := range c.States[i] {
				if gc.States[i][s] != c.States[i][s] {
					t.Fatalf("cut %d traj %d species %d: %d, want %d", k, i, s, gc.States[i][s], c.States[i][s])
				}
			}
		}
	}
	// Independence: mutating (recycling) the source must not change the copy.
	src.Cuts[0].States[0][0] = -999
	if got.Cuts[0].States[0][0] == -999 {
		t.Fatal("copy aliases the source states")
	}
}

func TestCopyBufferReuseIsAllocationFree(t *testing.T) {
	src := copyTestWindow(8, 16, 3, 42)
	var buf CopyBuffer
	buf.Capture(src)
	allocs := testing.AllocsPerRun(50, func() { buf.Capture(src) })
	if allocs != 0 {
		t.Fatalf("warmed Capture allocates %.1f times per window, want 0", allocs)
	}
}

func TestCopyBufferEmptyWindow(t *testing.T) {
	var buf CopyBuffer
	got := buf.Capture(Window{Start: 7})
	if got.Start != 7 || len(got.Cuts) != 0 {
		t.Fatalf("empty window copy = %+v", got)
	}
}
