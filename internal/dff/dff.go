// Package dff is the distributed layer of the stream runtime: typed,
// one-directional value streams over byte connections (TCP in production,
// net.Pipe in tests), with explicit end-of-stream signalling — the
// equivalent of FastFlow's dnode channels that let a farm or pipeline span
// process and host boundaries.
//
// A Writer[T]/Reader[T] pair carries a stream of T values encoded with
// encoding/gob. Streams compose with the shared-memory runtime by pumping
// into/out of channels (Pump, Drain), so a pipeline stage can transparently
// live on another host: the paper's "farm of simulation pipelines" runs
// each inner pipeline behind one such connection.
package dff

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"sync"
	"time"
)

// envelope frames one value or the end-of-stream marker.
type envelope[T any] struct {
	EOF bool
	Val T
}

// Writer is the sending endpoint of a typed stream.
type Writer[T any] struct {
	mu     sync.Mutex
	enc    *gob.Encoder
	closed bool
	err    error // sticky: a gob encoder is undefined after one failure
}

// NewWriter wraps w into a typed stream sender.
func NewWriter[T any](w io.Writer) *Writer[T] {
	return &Writer[T]{enc: gob.NewEncoder(w)}
}

// Send transmits one value. It is safe for concurrent use. After any
// transport failure the stream is broken for good: the error is sticky and
// every later Send returns it (a gob encoder's state is undefined once an
// Encode fails mid-frame, so retrying on the same connection could emit a
// torn stream the peer misparses).
func (w *Writer[T]) Send(v T) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return errors.New("dff: send on closed stream")
	}
	if err := w.enc.Encode(envelope[T]{Val: v}); err != nil {
		w.err = fmt.Errorf("dff: send: %w", err)
		return w.err
	}
	return nil
}

// Close transmits the end-of-stream marker. It does not close the
// underlying connection (the other direction may still be active). On an
// already-broken stream it reports the sticky transport error.
func (w *Writer[T]) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return nil
	}
	w.closed = true
	if err := w.enc.Encode(envelope[T]{EOF: true}); err != nil {
		w.err = fmt.Errorf("dff: close: %w", err)
		return w.err
	}
	return nil
}

// Err returns the sticky transport error, if any (nil while healthy).
func (w *Writer[T]) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// Reader is the receiving endpoint of a typed stream.
type Reader[T any] struct {
	dec  *gob.Decoder
	conn net.Conn      // non-nil when an idle timeout is armed
	idle time.Duration // max gap between values before Recv errors
}

// NewReader wraps r into a typed stream receiver.
func NewReader[T any](r io.Reader) *Reader[T] {
	return &Reader[T]{dec: gob.NewDecoder(r)}
}

// NewReaderTimeout wraps conn into a typed stream receiver whose Recv
// fails if the peer sends nothing for idle — the per-quantum watchdog of
// a long-lived result stream. idle <= 0 disables the deadline.
func NewReaderTimeout[T any](conn net.Conn, idle time.Duration) *Reader[T] {
	return &Reader[T]{dec: gob.NewDecoder(conn), conn: conn, idle: idle}
}

// Recv returns the next value; ok=false (with nil error) after the peer
// closed the stream. A broken connection (or an expired idle deadline on a
// Reader built with NewReaderTimeout) surfaces as an error.
func (r *Reader[T]) Recv() (v T, ok bool, err error) {
	if r.conn != nil && r.idle > 0 {
		if err := r.conn.SetReadDeadline(time.Now().Add(r.idle)); err != nil {
			return v, false, fmt.Errorf("dff: arming idle deadline: %w", err)
		}
	}
	var env envelope[T]
	if err := r.dec.Decode(&env); err != nil {
		if errors.Is(err, io.EOF) {
			return v, false, fmt.Errorf("dff: connection dropped before end-of-stream: %w", err)
		}
		return v, false, fmt.Errorf("dff: recv: %w", err)
	}
	if env.EOF {
		return v, false, nil
	}
	return env.Val, true, nil
}

// Drain forwards every remaining value of the stream into out, returning
// when the stream closes. It honours ctx cancellation between values.
func (r *Reader[T]) Drain(ctx context.Context, out chan<- T) error {
	for {
		v, ok, err := r.Recv()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		select {
		case out <- v:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// Pump forwards every value from in into the writer, closing the stream
// when in closes. It honours ctx cancellation.
func Pump[T any](ctx context.Context, w *Writer[T], in <-chan T) error {
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case v, ok := <-in:
			if !ok {
				return w.Close()
			}
			if err := w.Send(v); err != nil {
				return err
			}
		}
	}
}

// Dial connects to a TCP peer with the given timeout.
func Dial(addr string, timeout time.Duration) (net.Conn, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("dff: dial %s: %w", addr, err)
	}
	return conn, nil
}

// DialRetry dials addr up to attempts times with backoff between tries,
// honouring ctx between attempts — the reconnect path of a master or
// scheduler whose worker is restarting. Each wait is jittered uniformly
// over [backoff/2, backoff*3/2], so a fleet of clients dropped by one
// restarting peer does not re-dial it in lockstep. The last dial error
// is returned if every attempt fails.
func DialRetry(ctx context.Context, addr string, timeout time.Duration, attempts int, backoff time.Duration) (net.Conn, error) {
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(retryJitter(backoff)):
			}
		}
		conn, err := Dial(addr, timeout)
		if err == nil {
			return conn, nil
		}
		lastErr = err
	}
	return nil, lastErr
}

// retryJitter spreads a nominal backoff uniformly over [d/2, d*3/2].
// The mean is preserved, so attempts*backoff still bounds the expected
// total wait.
func retryJitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	return d/2 + time.Duration(rand.Int64N(int64(d)+1))
}

// Listen opens a TCP listener. addr "127.0.0.1:0" picks a free port
// (returned via the listener's Addr), convenient for in-process clusters.
func Listen(addr string) (net.Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dff: listen %s: %w", addr, err)
	}
	return l, nil
}

// Serve accepts connections until the listener is closed or the context is
// cancelled, running handler per connection in its own goroutine. It
// returns after all handlers finish. Handler errors are delivered to
// onError (which may be nil).
func Serve(ctx context.Context, l net.Listener, handler func(ctx context.Context, conn net.Conn) error, onError func(error)) error {
	var wg sync.WaitGroup
	defer wg.Wait()
	stop := context.AfterFunc(ctx, func() { l.Close() })
	defer stop()
	for {
		conn, err := l.Accept()
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("dff: accept: %w", err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer conn.Close()
			if err := handler(ctx, conn); err != nil && onError != nil {
				onError(err)
			}
		}()
	}
}
