package dff

import (
	"context"
	"net"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

type record struct {
	ID    int
	Name  string
	Data  []int64
	Inner struct{ X float64 }
}

func TestWriterReaderRoundTrip(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()

	w := NewWriter[record](client)
	r := NewReader[record](server)

	want := record{ID: 7, Name: "traj", Data: []int64{1, 2, 3}}
	want.Inner.X = 3.5
	done := make(chan error, 1)
	go func() {
		if err := w.Send(want); err != nil {
			done <- err
			return
		}
		done <- w.Close()
	}()
	got, ok, err := r.Recv()
	if err != nil || !ok {
		t.Fatalf("Recv = (%v, %v)", ok, err)
	}
	if got.ID != want.ID || got.Name != want.Name || len(got.Data) != 3 || got.Inner.X != 3.5 {
		t.Fatalf("got %+v, want %+v", got, want)
	}
	if _, ok, err := r.Recv(); ok || err != nil {
		t.Fatalf("after close: ok=%v err=%v, want false,nil", ok, err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestWriterSendAfterClose(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	go func() {
		r := NewReader[int](server)
		for {
			if _, ok, err := r.Recv(); !ok || err != nil {
				return
			}
		}
	}()
	w := NewWriter[int](client)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal("Close must be idempotent")
	}
	if err := w.Send(1); err == nil {
		t.Fatal("Send after Close succeeded")
	}
}

func TestReaderDroppedConnection(t *testing.T) {
	client, server := net.Pipe()
	r := NewReader[int](server)
	client.Close() // no EOF marker sent
	defer server.Close()
	_, ok, err := r.Recv()
	if ok || err == nil {
		t.Fatal("dropped connection must surface as error, not clean EOF")
	}
}

func TestPumpDrainOverTCP(t *testing.T) {
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const n = 1000

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	wg.Add(1)
	var serveErr error
	recvd := make([]int, 0, n)
	go func() {
		defer wg.Done()
		conn, err := l.Accept()
		if err != nil {
			serveErr = err
			return
		}
		defer conn.Close()
		out := make(chan int, 16)
		var drainErr error
		go func() {
			drainErr = NewReader[int](conn).Drain(ctx, out)
			close(out)
		}()
		for v := range out {
			recvd = append(recvd, v)
		}
		serveErr = drainErr
	}()

	conn, err := Dial(l.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	in := make(chan int, 16)
	go func() {
		for i := 0; i < n; i++ {
			in <- i
		}
		close(in)
	}()
	if err := Pump(ctx, NewWriter[int](conn), in); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if serveErr != nil {
		t.Fatal(serveErr)
	}
	if len(recvd) != n {
		t.Fatalf("received %d, want %d", len(recvd), n)
	}
	for i, v := range recvd {
		if v != i {
			t.Fatalf("recvd[%d] = %d: order broken", i, v)
		}
	}
}

func TestServeHandlesMultipleConnections(t *testing.T) {
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var mu sync.Mutex
	total := 0
	serveDone := make(chan error, 1)
	go func() {
		serveDone <- Serve(ctx, l, func(_ context.Context, conn net.Conn) error {
			r := NewReader[int](conn)
			w := NewWriter[int](conn)
			for {
				v, ok, err := r.Recv()
				if err != nil {
					return err
				}
				if !ok {
					return w.Close()
				}
				mu.Lock()
				total += v
				mu.Unlock()
				if err := w.Send(v * 2); err != nil {
					return err
				}
			}
		}, nil)
	}()

	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			conn, err := Dial(l.Addr().String(), 5*time.Second)
			if err != nil {
				t.Error(err)
				return
			}
			defer conn.Close()
			w := NewWriter[int](conn)
			r := NewReader[int](conn)
			for i := 0; i < 10; i++ {
				if err := w.Send(i); err != nil {
					t.Error(err)
					return
				}
				v, ok, err := r.Recv()
				if err != nil || !ok || v != 2*i {
					t.Errorf("echo = (%d,%v,%v), want %d", v, ok, err, 2*i)
					return
				}
			}
			if err := w.Close(); err != nil {
				t.Error(err)
			}
			if _, ok, err := r.Recv(); ok || err != nil {
				t.Errorf("expected clean EOF, got ok=%v err=%v", ok, err)
			}
		}(c)
	}
	wg.Wait()
	cancel()
	if err := <-serveDone; err != nil && err != context.Canceled {
		t.Fatal(err)
	}
	if total != 4*45 {
		t.Fatalf("total = %d, want %d", total, 4*45)
	}
}

func TestServeStopsOnContextCancel(t *testing.T) {
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- Serve(ctx, l, func(context.Context, net.Conn) error { return nil }, nil)
	}()
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not stop on cancellation")
	}
}

// Property: any []int64 slice survives the typed stream round trip.
func TestProperty_RoundTripFidelity(t *testing.T) {
	f := func(values [][]int64) bool {
		client, server := net.Pipe()
		defer client.Close()
		defer server.Close()
		w := NewWriter[[]int64](client)
		r := NewReader[[]int64](server)
		errc := make(chan error, 1)
		go func() {
			for _, v := range values {
				if err := w.Send(v); err != nil {
					errc <- err
					return
				}
			}
			errc <- w.Close()
		}()
		for i := 0; ; i++ {
			v, ok, err := r.Recv()
			if err != nil {
				return false
			}
			if !ok {
				return i == len(values) && <-errc == nil
			}
			if i >= len(values) || len(v) != len(values[i]) {
				return false
			}
			for j := range v {
				if v[j] != values[i][j] {
					return false
				}
			}
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkStreamThroughput(b *testing.B) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	w := NewWriter[[8]int64](client)
	r := NewReader[[8]int64](server)
	go func() {
		var v [8]int64
		for i := 0; i < b.N; i++ {
			v[0] = int64(i)
			if err := w.Send(v); err != nil {
				return
			}
		}
		w.Close()
	}()
	b.ResetTimer()
	for {
		_, ok, err := r.Recv()
		if err != nil {
			b.Fatal(err)
		}
		if !ok {
			break
		}
	}
}

// --- error-path coverage: closed/half-closed connections, peer death,
// cancellation, idle timeouts and reconnect-after-restart.

func TestWriterStickyErrorAfterConnClose(t *testing.T) {
	client, server := net.Pipe()
	server.Close()
	client.Close()
	w := NewWriter[int](client)
	if err := w.Send(1); err == nil {
		t.Fatal("Send on closed connection succeeded")
	}
	first := w.Err()
	if first == nil {
		t.Fatal("no sticky error recorded")
	}
	// The stream is broken for good: every later Send (and Close) reports
	// the same sticky error instead of writing a torn frame.
	if err := w.Send(2); err != first {
		t.Fatalf("second Send: %v, want sticky %v", err, first)
	}
	if err := w.Close(); err != first {
		t.Fatalf("Close: %v, want sticky %v", err, first)
	}
}

func TestSendAfterPeerDeath(t *testing.T) {
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	conn, err := Dial(l.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	peer := <-accepted
	peer.Close() // the peer dies without reading anything

	w := NewWriter[[64]int64](conn)
	// TCP buffering may absorb a few sends; the dead peer must surface as
	// an error within a bounded number of writes, and then stick.
	var sendErr error
	for i := 0; i < 10000; i++ {
		if sendErr = w.Send([64]int64{}); sendErr != nil {
			break
		}
	}
	if sendErr == nil {
		t.Fatal("Send never failed against a dead peer")
	}
	if err := w.Send([64]int64{}); err != sendErr {
		t.Fatalf("Send after failure: %v, want sticky %v", err, sendErr)
	}
}

func TestReaderHalfClosedConnection(t *testing.T) {
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	conn, err := Dial(l.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	peer := <-accepted
	defer peer.Close()

	// The peer sends one value then half-closes its write side without the
	// end-of-stream marker — a worker that crashed between quanta. The
	// reader must surface the second Recv as an error, not a clean close.
	w := NewWriter[int](peer)
	if err := w.Send(7); err != nil {
		t.Fatal(err)
	}
	if tc, ok := peer.(*net.TCPConn); ok {
		tc.CloseWrite()
	} else {
		t.Fatal("expected a TCP connection")
	}
	r := NewReader[int](conn)
	v, ok, err := r.Recv()
	if err != nil || !ok || v != 7 {
		t.Fatalf("first Recv = (%d, %v, %v)", v, ok, err)
	}
	if _, ok, err := r.Recv(); ok || err == nil {
		t.Fatalf("half-closed connection: ok=%v err=%v, want error", ok, err)
	}
}

func TestPumpCancelledByContext(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	ctx, cancel := context.WithCancel(context.Background())
	in := make(chan int) // nothing ever sent: Pump blocks on the input
	done := make(chan error, 1)
	go func() { done <- Pump(ctx, NewWriter[int](client), in) }()
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("Pump = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Pump did not honour cancellation")
	}
}

func TestDrainCancelledByContext(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	go func() {
		w := NewWriter[int](client)
		for i := 0; ; i++ {
			if err := w.Send(i); err != nil {
				return
			}
		}
	}()
	ctx, cancel := context.WithCancel(context.Background())
	out := make(chan int) // never drained: Drain blocks on the output
	done := make(chan error, 1)
	go func() { done <- NewReader[int](server).Drain(ctx, out) }()
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("Drain = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Drain did not honour cancellation")
	}
}

func TestReaderTimeoutOnSilentPeer(t *testing.T) {
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		c, err := l.Accept()
		if err == nil {
			defer c.Close()
			time.Sleep(2 * time.Second) // silent peer: no frames, no close
		}
	}()
	conn, err := Dial(l.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := NewReaderTimeout[int](conn, 100*time.Millisecond)
	start := time.Now()
	if _, ok, err := r.Recv(); ok || err == nil {
		t.Fatalf("silent peer: ok=%v err=%v, want timeout error", ok, err)
	}
	if time.Since(start) > time.Second {
		t.Fatalf("idle deadline fired after %v, want ~100ms", time.Since(start))
	}
}

func TestDialRetryReconnectsAfterRestart(t *testing.T) {
	// Grab a port, then shut the listener down — the "worker crashed"
	// window — and restart it on the same address while DialRetry is
	// already spinning.
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	restarted := make(chan net.Listener, 1)
	go func() {
		time.Sleep(150 * time.Millisecond)
		nl, err := Listen(addr)
		if err == nil {
			restarted <- nl
		}
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	conn, err := DialRetry(ctx, addr, time.Second, 50, 50*time.Millisecond)
	if err != nil {
		t.Fatalf("DialRetry never reconnected: %v", err)
	}
	conn.Close()
	if nl := <-restarted; nl != nil {
		nl.Close()
	}
}

func TestDialRetryHonoursContext(t *testing.T) {
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close() // nothing will ever listen again
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	_, err = DialRetry(ctx, addr, time.Second, 1000, 20*time.Millisecond)
	if err != context.Canceled {
		t.Fatalf("DialRetry = %v, want context.Canceled", err)
	}
}

func TestRetryJitterStaysWithinHalfToThreeHalves(t *testing.T) {
	const base = 100 * time.Millisecond
	lo, hi := base, base
	for i := 0; i < 10000; i++ {
		d := retryJitter(base)
		if d < base/2 || d > base+base/2 {
			t.Fatalf("retryJitter(%v) = %v, want within [%v, %v]", base, d, base/2, base+base/2)
		}
		if d < lo {
			lo = d
		}
		if d > hi {
			hi = d
		}
	}
	// The draw should actually spread: 10k samples over a 100ms range
	// landing in a 10ms band would mean the jitter is vestigial.
	if hi-lo < base/10 {
		t.Fatalf("retryJitter spread only [%v, %v] over 10k draws", lo, hi)
	}
	if got := retryJitter(0); got != 0 {
		t.Fatalf("retryJitter(0) = %v, want 0", got)
	}
	if got := retryJitter(-time.Second); got != 0 {
		t.Fatalf("retryJitter(-1s) = %v, want 0", got)
	}
}
