// Package buildinfo carries the build/version stamp shared by every
// cwcflow binary (cwc-serve, cwc-dist, cwc-sim, cwc-bench). One link-time
// flag stamps them all:
//
//	go build -ldflags "-X cwcflow/internal/buildinfo.Version=$(git describe --tags --always)" ./...
//
// Each binary surfaces it through its -version flag; cwc-serve also
// reports it in /healthz.
package buildinfo

// Version is the build version, "dev" when not stamped at link time.
var Version = "dev"
