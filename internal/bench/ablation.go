package bench

import (
	"context"
	"fmt"

	"cwcflow/internal/core"
	"cwcflow/internal/gillespie"
	"cwcflow/internal/models"
	"cwcflow/internal/platform"
	"cwcflow/internal/sim"
)

// Ablations isolate the design choices the paper (and DESIGN.md) credits
// for the system's behaviour: on-demand vs static scheduling, the
// simulation-quantum knob, and the SSA algorithm choice.

// AblationScheduling compares global on-demand task scheduling against the
// static per-host partition on the Infiniband cluster model, across
// increasing trajectory unevenness. It shows why the shared-memory farm
// uses on-demand dispatch: the gap grows with the imbalance.
func AblationScheduling(seed int64, sc Scale) (*Experiment, error) {
	e := &Experiment{
		ID:     "ablation-scheduling",
		Title:  "On-demand vs static partition (4-host Infiniband cluster)",
		XLabel: "per-trajectory imbalance (lognormal sigma)",
		YLabel: "makespan (s)",
		Notes: []string{
			"lower is better; static partition cannot steal across hosts",
			"persistent per-trajectory speed spread is what static partitioning cannot amortise",
		},
	}
	p := platform.InfinibandCluster(4, 8)
	hostIdx := []int{0, 1, 2, 3}
	// Few trajectories per host: the regime where a statically partitioned
	// farm cannot amortise a straggler (large ensembles average out).
	for _, sigma := range []float64{0.1, 0.3, 0.5, 0.8, 1.2} {
		w := platform.NeurosporaWorkload(sc.traj(48), sc.quanta(20), 10, seed)
		w.TrajSigma = sigma
		for _, static := range []bool{false, true} {
			dep := platform.Deployment{
				SimWorkerHosts:  platform.WorkersPerHost(hostIdx, 8),
				MasterHost:      0,
				StatEngines:     4,
				StaticPartition: static,
			}
			m, err := platform.Simulate(p, w, dep)
			if err != nil {
				return nil, err
			}
			label := "on-demand"
			if static {
				label = "static partition"
			}
			e.Add(label, sigma, m.Makespan)
		}
	}
	return e, nil
}

// AblationQuantum sweeps the simulation quantum on the real shared-memory
// pipeline: results are invariant (checked), while the number of
// scheduling events and the freshness of on-line results change — the
// configuration-level tuning knob of the paper's conclusion.
func AblationQuantum(seed int64) (*Experiment, error) {
	e := &Experiment{
		ID:     "ablation-quantum",
		Title:  "Simulation quantum on the real pipeline (Neurospora, 16 traj)",
		XLabel: "quantum (h of biology)",
		YLabel: "value",
		Notes:  []string{"mean M at run end must be identical for every quantum"},
	}
	factory, err := core.FactoryFor(core.ModelRef{Name: "neurospora", Omega: 50})
	if err != nil {
		return nil, err
	}
	for _, q := range []float64{0.5, 1, 2, 6, 24} {
		cfg := core.Config{
			Factory:      factory,
			Trajectories: 16,
			End:          24,
			Quantum:      q,
			Period:       0.5,
			SimWorkers:   4,
			StatEngines:  2,
			WindowSize:   16,
			BaseSeed:     seed,
		}
		var lastMean float64
		var samples int64
		info, err := core.Run(context.Background(), cfg, func(ws core.WindowStat) error {
			lastMean = ws.PerCut[ws.NumCuts-1][models.NeuroM].Mean
			return nil
		})
		if err != nil {
			return nil, err
		}
		samples = info.Samples
		e.Add("final mean M", q, lastMean)
		e.Add("samples", q, float64(samples))
	}
	return e, nil
}

// AblationSSA compares the direct method against the Gibson–Bruck
// next-reaction method on the real engines, as reactions-per-second over
// networks of growing channel count (a chain of unimolecular conversions):
// NRM's sparse updates win as the network grows.
func AblationSSA() (*Experiment, error) {
	e := &Experiment{
		ID:     "ablation-ssa",
		Title:  "Direct method vs next-reaction method (chain networks)",
		XLabel: "reaction channels",
		YLabel: "relative steps/s (direct@small = 1)",
	}
	var baseline float64
	for _, channels := range []int{4, 16, 64, 256} {
		sys := chainSystem(channels)
		for _, kind := range []string{"direct", "nrm"} {
			var eng interface {
				Step() bool
			}
			var err error
			if kind == "direct" {
				eng, err = gillespie.NewDirect(sys, 1)
			} else {
				eng, err = gillespie.NewNextReaction(sys, 1)
			}
			if err != nil {
				return nil, err
			}
			const steps = 200000
			start := nowNanos()
			for i := 0; i < steps; i++ {
				if !eng.Step() {
					return nil, fmt.Errorf("chain system died")
				}
			}
			rate := float64(steps) / float64(nowNanos()-start)
			if baseline == 0 {
				baseline = rate
			}
			e.Add(kind, float64(channels), rate/baseline)
		}
	}
	return e, nil
}

// chainSystem builds a unimolecular conversion chain A1 → A2 → ... with
// the given number of channels and an inexhaustible head.
func chainSystem(channels int) *gillespie.System {
	n := channels + 1
	species := make([]string, n)
	init := make([]int64, n)
	for i := range species {
		species[i] = fmt.Sprintf("A%d", i)
	}
	init[0] = 1 << 40
	reactions := make([]gillespie.Reaction, 0, channels)
	for i := 0; i < channels; i++ {
		reactions = append(reactions, gillespie.MassAction(
			fmt.Sprintf("hop%d", i), 1e-9,
			map[int]int64{i: 1}, map[int]int64{i + 1: 1}))
	}
	return &gillespie.System{Name: "chain", Species: species, Init: init, Reactions: reactions}
}

// nowNanos is indirected for testability.
var nowNanos = defaultNanos

// AblationRawTap measures the overhead of the raw-results tap (Fig. 2's
// persistent-storage branch) on the real pipeline.
func AblationRawTap(seed int64) (*Experiment, error) {
	e := &Experiment{
		ID:     "ablation-rawtap",
		Title:  "Raw-results tap overhead (real pipeline)",
		XLabel: "tap (0=off, 1=on)",
		YLabel: "samples",
	}
	factory, err := core.FactoryFor(core.ModelRef{Name: "sir"})
	if err != nil {
		return nil, err
	}
	for _, tap := range []bool{false, true} {
		cfg := core.Config{
			Factory:      factory,
			Trajectories: 16,
			End:          50,
			Period:       1,
			SimWorkers:   4,
			StatEngines:  2,
			WindowSize:   16,
			BaseSeed:     seed,
		}
		var tapped int64
		if tap {
			cfg.RawSink = func(sim.Sample) error { tapped++; return nil }
		}
		info, err := core.Run(context.Background(), cfg, nil)
		if err != nil {
			return nil, err
		}
		x := 0.0
		if tap {
			x = 1
			if tapped != info.Samples {
				return nil, fmt.Errorf("tap saw %d of %d samples", tapped, info.Samples)
			}
		}
		e.Add("pipeline samples", x, float64(info.Samples))
	}
	return e, nil
}
