package bench

import "testing"

func TestAblationScheduling(t *testing.T) {
	e, err := AblationScheduling(1, Scale{Quanta: 8, MaxTraj: 128})
	if err != nil {
		t.Fatal(err)
	}
	// Static partition must never beat on-demand (beyond scheduling
	// noise), and must pay a clear penalty somewhere in the sweep. At
	// extreme imbalance the slowest trajectory's serial chain dominates
	// both schedulers, so the penalty peaks in the moderate regime rather
	// than growing monotonically.
	maxGap := 0.0
	for _, sigma := range []float64{0.1, 0.3, 0.5, 0.8, 1.2} {
		od, ok1 := e.Lookup("on-demand", sigma)
		st, ok2 := e.Lookup("static partition", sigma)
		if !ok1 || !ok2 {
			t.Fatalf("missing points at sigma=%g", sigma)
		}
		if st < od*0.98 {
			t.Fatalf("sigma=%g: static (%.3f) beat on-demand (%.3f)", sigma, st, od)
		}
		if gap := st / od; gap > maxGap {
			maxGap = gap
		}
	}
	if maxGap < 1.05 {
		t.Fatalf("static partition never paid a clear penalty (max gap %.3f)", maxGap)
	}
}

func TestAblationQuantumInvariance(t *testing.T) {
	e, err := AblationQuantum(3)
	if err != nil {
		t.Fatal(err)
	}
	var ref float64
	for i, q := range []float64{0.5, 1, 2, 6, 24} {
		v, ok := e.Lookup("final mean M", q)
		if !ok {
			t.Fatalf("missing point at quantum %g", q)
		}
		if i == 0 {
			ref = v
			continue
		}
		if v != ref {
			t.Fatalf("quantum %g changed the result: %g != %g", q, v, ref)
		}
	}
	// Sample count is also invariant (sampling schedule is fixed).
	s1, _ := e.Lookup("samples", 0.5)
	s2, _ := e.Lookup("samples", 24)
	if s1 != s2 {
		t.Fatalf("sample count varied with quantum: %g vs %g", s1, s2)
	}
}

func TestAblationSSA(t *testing.T) {
	e, err := AblationSSA()
	if err != nil {
		t.Fatal(err)
	}
	// At 256 channels NRM must beat the direct method's O(R) scan.
	d, ok1 := e.Lookup("direct", 256)
	n, ok2 := e.Lookup("nrm", 256)
	if !ok1 || !ok2 {
		t.Fatal("missing 256-channel points")
	}
	if n <= d {
		t.Fatalf("NRM (%.3f) did not beat direct (%.3f) on 256 channels", n, d)
	}
}

func TestAblationRawTap(t *testing.T) {
	e, err := AblationRawTap(5)
	if err != nil {
		t.Fatal(err)
	}
	off, ok1 := e.Lookup("pipeline samples", 0)
	on, ok2 := e.Lookup("pipeline samples", 1)
	if !ok1 || !ok2 {
		t.Fatal("missing points")
	}
	if off != on {
		t.Fatalf("raw tap changed the sample stream: %g vs %g", off, on)
	}
}
