package bench

import "time"

func defaultNanos() int64 { return time.Now().UnixNano() }
