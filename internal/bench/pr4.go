// PR4 is the machine-readable benchmark of the multi-node serve work: the
// same stats-light, simulation-heavy job run once on the local pool alone
// and once sharded across two in-process cwc-dist sim workers, reporting
// end-to-end windows/sec for both. cwc-bench -exp pr4 writes it as
// BENCH_PR4.json, which CI uploads as an artifact next to the distributed
// smoke job.
package bench

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"cwcflow/internal/core"
	"cwcflow/internal/dff"
	"cwcflow/internal/serve"
)

// PR4Report is the schema of BENCH_PR4.json.
type PR4Report struct {
	// NumCPU qualifies the speedup: two extra worker processes on a
	// single-core host time-slice the same CPU, so the distributed number
	// approaches local throughput instead of exceeding it.
	NumCPU     int `json:"num_cpu"`
	GOMAXPROCS int `json:"gomaxprocs"`

	LocalWindowsPerSec        float64 `json:"local_windows_per_sec"`
	Distributed2WindowsPerSec float64 `json:"distributed_2workers_windows_per_sec"`
	Speedup                   float64 `json:"speedup"`
	// RemoteTasksDone proves the distributed measurement actually sharded
	// (trajectories completed on the remote workers).
	RemoteTasksDone int64 `json:"remote_tasks_done"`
	RequeuedTasks   int64 `json:"requeued_tasks"`
}

// PR4 runs the report's measurements: one job of pr3's synthetic walk
// model, local-only versus sharded across two in-process sim workers.
func PR4() (*PR4Report, error) {
	rep := &PR4Report{NumCPU: runtime.NumCPU(), GOMAXPROCS: runtime.GOMAXPROCS(0)}
	spec := serve.JobSpec{
		Model:        "pr4",
		Trajectories: 128,
		End:          32,
		Quantum:      4,
		Period:       0.25,
		WindowSize:   16,
		WindowStep:   16,
		Seed:         7,
	}

	measure := func(workerAddrs []string) (float64, serve.Status, error) {
		svc, err := serve.New(serve.Options{
			Workers:        2,
			StatEngines:    2,
			Resolver:       pr3Resolver,
			WorkerAddrs:    workerAddrs,
			WorkerInFlight: 8,
		})
		if err != nil {
			return 0, serve.Status{}, err
		}
		defer svc.Close()
		start := time.Now()
		job, err := svc.Submit(spec)
		if err != nil {
			return 0, serve.Status{}, err
		}
		<-job.Done()
		st := job.Status()
		if st.State != serve.StateDone {
			return 0, st, fmt.Errorf("bench: pr4 job ended %s (%s)", st.State, st.Error)
		}
		return float64(st.Progress.Windows) / time.Since(start).Seconds(), st, nil
	}

	// Local-only reference.
	local, _, err := measure(nil)
	if err != nil {
		return nil, err
	}
	rep.LocalWindowsPerSec = local

	// Two in-process sim workers on loopback TCP, running the identical
	// synthetic model through the same resolver.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	addrs := make([]string, 2)
	for i := range addrs {
		l, err := dff.Listen("127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		addrs[i] = l.Addr().String()
		go func() {
			_ = core.ServeSimWorkerWith(ctx, l, 2, pr3Resolver, nil)
		}()
	}
	dist, st, err := measure(addrs)
	if err != nil {
		return nil, err
	}
	rep.Distributed2WindowsPerSec = dist
	rep.RemoteTasksDone = st.Progress.RemoteTasksDone
	rep.RequeuedTasks = st.Progress.RequeuedTasks
	if rep.RemoteTasksDone == 0 {
		return nil, fmt.Errorf("bench: pr4 distributed run completed no trajectories remotely")
	}
	rep.Speedup = rep.Distributed2WindowsPerSec / rep.LocalWindowsPerSec
	return rep, nil
}
