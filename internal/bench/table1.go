package bench

import (
	"context"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"cwcflow/internal/gpu"
	"cwcflow/internal/platform"
)

// Table1Row is one row of the paper's Table I: execution times (seconds)
// of the Neurospora run with NSims trajectories on the 32-core CPU and the
// K40 GPGPU, for quantum/samples ratios Q/τ = 10 and Q/τ = 1.
type Table1Row struct {
	NSims  int
	CPUQ10 float64
	CPUQ1  float64
	GPUQ10 float64
	GPUQ1  float64
}

// Table1Result is the reproduced Table I.
type Table1Result struct {
	Rows  []Table1Row
	Notes []string
}

// WriteText renders the table in the paper's layout.
func (t Table1Result) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "# Table I — execution time (s), multi-core (32 cores) vs GPGPU (K40 model)"); err != nil {
		return err
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "# %s\n", n); err != nil {
			return err
		}
	}
	rows := [][]string{{"N. sims", "CPU Q/t=10", "CPU Q/t=1", "GPU Q/t=10", "GPU Q/t=1"}}
	for _, r := range t.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%d", r.NSims),
			fmt.Sprintf("%.0f", r.CPUQ10), fmt.Sprintf("%.0f", r.CPUQ1),
			fmt.Sprintf("%.0f", r.GPUQ10), fmt.Sprintf("%.0f", r.GPUQ1),
		})
	}
	widths := make([]int, len(rows[0]))
	for _, row := range rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	for _, row := range rows {
		var sb strings.Builder
		for i, c := range row {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%*s", widths[i], c)
		}
		if _, err := fmt.Fprintln(w, sb.String()); err != nil {
			return err
		}
	}
	return nil
}

// table1TotalSamples is the run length in sampling periods τ (the paper's
// Table I run: N x quanta x samples constant across Q/τ settings).
const table1TotalSamples = 40

// Table1 reproduces Table I. CPU times come from the 32-core platform
// model with on-demand scheduling (quantum-size insensitive); GPU times
// come from the SIMT device model under the paper's offloading scheme:
// one kernel launch per quantum over all unfinished trajectories, with
// load re-balancing (sorting trajectories by speed) between launches.
func Table1(seed int64, sc Scale) (Table1Result, error) {
	res := Table1Result{Notes: []string{
		"CPU: 32-core Nehalem platform model, 4 stat engines, on-demand scheduling",
		"GPU: Tesla K40 SIMT model (2880 cores), divergence from uneven trajectories",
	}}
	sizes := []int{128, 512, 1024, 2048}
	dev, err := gpu.NewDevice(k40Config())
	if err != nil {
		return res, err
	}
	for _, n := range sizes {
		n = sc.traj(n)
		row := Table1Row{NSims: n}
		for _, spq := range []int{10, 1} {
			quanta := table1TotalSamples / spq
			w := platform.NeurosporaWorkload(n, quanta, spq, seed)
			dep := platform.Deployment{
				SimWorkerHosts: platform.SpreadWorkers([]int{0}, 32),
				MasterHost:     0,
				StatEngines:    4,
			}
			m, err := platform.Simulate(platform.SharedMemory(64), w, dep)
			if err != nil {
				return res, err
			}
			g, err := gpuRun(dev, n, quanta, spq, seed)
			if err != nil {
				return res, err
			}
			if spq == 10 {
				row.CPUQ10, row.GPUQ10 = m.Makespan, g
			} else {
				row.CPUQ1, row.GPUQ1 = m.Makespan, g
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// k40Config calibrates the Tesla K40 model for the CWC kernel. Two
// deratings against the theoretical device:
//
//   - per-lane speed: a scalar GPU core retires the pointer-chasing SSA
//     work ~4x slower than a Nehalem core (SecondsPerCost = 4.2x the
//     reference per-reaction cost);
//   - occupancy: the CWC kernel's register pressure and irregular memory
//     accesses sustain only a fraction of the theoretical warp slots —
//     the paper itself observes "the GPGPU succeeds to exploit only a
//     fraction of its peak power". Modelled as 24 effective cores per
//     SMX (11 concurrent warps device-wide).
func k40Config() gpu.DeviceConfig {
	cfg := gpu.TeslaK40()
	cfg.SMs = 11                      // occupancy-limited: 11 concurrent warps device-wide
	cfg.CoresPerSM = 32               // one resident warp per effective SM
	cfg.SecondsPerCost = 2.2 * 4.5e-4 // per reaction, per lane
	cfg.LaunchOverhead = 2e-3         // kernel launch + host-side batch handling
	return cfg
}

// gpuRun models the mapCUDA offloading of the Neurospora ensemble: each
// simulation quantum is one kernel; every lane advances one trajectory by
// spq sampling periods; between kernels the runtime re-balances by sorting
// trajectories on their current speed. Divergence has two sources:
//
//   - per-quantum SSA noise (averages out over longer quanta), and
//   - per-trajectory speed drift (random walk): the longer the quantum,
//     the further lanes drift apart before the next re-balancing point —
//     which is why small quanta help the GPU (Table I) while leaving the
//     CPU unaffected.
func gpuRun(dev *gpu.Device, trajectories, quanta, spq int, seed int64) (float64, error) {
	// The speed process is AR(1) in log space with memory of a few τ:
	// re-balancing every τ (Q/τ=1) re-packs warps while lanes are still
	// correlated with the sort key, whereas a 10τ quantum lets lanes
	// decorrelate from the packing before the next barrier — the
	// mechanism behind Table I's GPU quantum sensitivity.
	const (
		reactionsPerSample = 330.0
		noiseSigma         = 0.08 // per-τ SSA noise
		driftSigma         = 0.20 // per-τ speed shock
		meanReversion      = 0.93 // per-τ AR(1) coefficient of log-speed
		speedSigma         = 0.30 // initial per-trajectory speed spread
	)
	type tstate struct {
		id       int
		logSpeed float64 // current relative speed (log cost multiplier)
	}
	tasks := make([]*tstate, trajectories)
	for i := range tasks {
		tasks[i] = &tstate{id: i, logSpeed: math.Log(lognormalHash(seed, uint64(i), 0, speedSigma))}
	}
	total := 0.0
	for q := 0; q < quanta; q++ {
		// Load re-balancing between kernels: pack lanes of similar speed
		// into the same warp.
		sort.Slice(tasks, func(a, b int) bool {
			if tasks[a].logSpeed != tasks[b].logSpeed {
				return tasks[a].logSpeed < tasks[b].logSpeed
			}
			return tasks[a].id < tasks[b].id
		})
		costs := make([]float64, len(tasks))
		for i, t := range tasks {
			// Work of this quantum: spq sampling periods, each with noise;
			// the speed evolves as a mean-reverting random walk (an
			// oscillator's cost varies with its phase but does not drift
			// without bound), so longer quanta let warp lanes drift
			// further apart before the next re-balancing point.
			work := 0.0
			for s := 0; s < spq; s++ {
				step := uint64(q*spq + s)
				noise := lognormalHash(seed, uint64(t.id), step*2+1, noiseSigma)
				work += reactionsPerSample * math.Exp(t.logSpeed) * noise
				shock := lognormalHash(seed, uint64(t.id), step*2+2, driftSigma)
				t.logSpeed = meanReversion*t.logSpeed + math.Log(shock) + driftSigma*driftSigma/2
			}
			costs[i] = work
		}
		stats, err := dev.Launch(context.Background(), len(tasks), func(i int) (float64, error) {
			return costs[i], nil
		})
		if err != nil {
			return 0, err
		}
		total += stats.SimTime
	}
	return total, nil
}

// lognormalHash is a deterministic mean-1 lognormal from (seed, a, b).
func lognormalHash(seed int64, a, b uint64, sigma float64) float64 {
	return platform.LognormalHash(seed, a, b, sigma)
}
