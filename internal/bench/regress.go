// The bench-regression gate: a small set of pinned hot-path benchmarks
// (SSA stepping, quantum batching, window analysis) measured without the
// testing framework, compared against a committed BENCH_BASELINE.json.
// Machine-speed differences between the committing host and the CI runner
// are normalised out by a fixed arithmetic calibration workload measured
// alongside the benchmarks: ns/op comparisons use the calibration-scaled
// ratio, while allocs/op — machine-independent — compare exactly.
package bench

import (
	"fmt"
	"time"

	"cwcflow/internal/core"
	"cwcflow/internal/gillespie"
	"cwcflow/internal/models"
	"cwcflow/internal/sim"
	"cwcflow/internal/stats"
)

// BenchPoint is one benchmark's measurement.
type BenchPoint struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// BaselineReport is the schema of BENCH_BASELINE.json.
type BaselineReport struct {
	// CalibrationNs is the runtime of a fixed pure-arithmetic workload on
	// the measuring host — the machine-speed yardstick that lets a
	// baseline committed from one machine gate regressions on another.
	CalibrationNs float64               `json:"calibration_ns"`
	Benchmarks    map[string]BenchPoint `json:"benchmarks"`
}

// measureNs runs f repeatedly for at least minDur and returns ns per call.
func measureNs(minDur time.Duration, f func()) float64 {
	f() // warm up
	iters := 0
	start := time.Now()
	for time.Since(start) < minDur {
		for i := 0; i < 64; i++ {
			f()
		}
		iters += 64
	}
	return float64(time.Since(start).Nanoseconds()) / float64(iters)
}

// calibration is the fixed workload: 1M xorshift rounds. Pure integer
// arithmetic, no memory traffic, so it tracks single-core speed.
func calibration() float64 {
	var sink uint64
	ns := measureNs(200*time.Millisecond, func() {
		x := uint64(0x9e3779b97f4a7c15)
		for i := 0; i < 1_000_000; i++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
		}
		sink += x
	})
	_ = sink
	return ns
}

// MeasureBaseline runs the pinned hot-path benchmarks.
func MeasureBaseline() (*BaselineReport, error) {
	rep := &BaselineReport{Benchmarks: make(map[string]BenchPoint)}
	rep.CalibrationNs = calibration()

	// direct_step: one SSA step of the compiled Neurospora network via the
	// Direct method with dependency-driven partial propensity updates.
	{
		d, err := gillespie.NewDirect(models.Neurospora(100), 1)
		if err != nil {
			return nil, err
		}
		var pt BenchPoint
		pt.NsPerOp = measureNs(300*time.Millisecond, func() { d.Step() })
		pt.AllocsPerOp = allocsPerRun(2000, func() { d.Step() })
		rep.Benchmarks["direct_step"] = pt
	}

	// quantum_batch: one simulation quantum batched into a reused arena
	// batch (the serve pool's per-quantum unit of work).
	{
		s := &pr3Sim{dt: 0.25, rng: 12345}
		task, err := sim.NewTask(0, s, 1e12, 4, 0.25)
		if err != nil {
			return nil, err
		}
		b := sim.GetBatch()
		defer b.Release()
		run := func() {
			b.Reset()
			if err := task.RunQuantumBatch(b); err != nil {
				panic(err)
			}
		}
		var pt BenchPoint
		pt.NsPerOp = measureNs(300*time.Millisecond, run)
		pt.AllocsPerOp = allocsPerRun(500, run)
		rep.Benchmarks["quantum_batch"] = pt
	}

	// analyse_window: the stat-engine hot path on a 16×256×3 window with
	// k-means and period detection, on reused engine scratch.
	{
		w := pr3Window(16, 256, 3)
		species := []int{0, 1, 2}
		cfg := core.Config{
			Factory:       func(int, int64) (sim.Simulator, error) { return nil, nil },
			Trajectories:  1,
			End:           1,
			Period:        1,
			KMeansK:       4,
			PeriodHalfWin: 2,
			BaseSeed:      7,
		}
		eng := stats.NewEngine()
		var ws core.WindowStat
		run := func() {
			if err := core.AnalyseWindowInto(&ws, eng, w, species, cfg); err != nil {
				panic(err)
			}
		}
		var pt BenchPoint
		pt.NsPerOp = measureNs(300*time.Millisecond, run)
		pt.AllocsPerOp = allocsPerRun(50, run)
		rep.Benchmarks["analyse_window"] = pt
	}
	return rep, nil
}

// CompareBaseline checks current against baseline: a benchmark regresses
// when its calibration-normalised ns/op exceeds the baseline by more than
// nsTol (fraction, e.g. 0.20), or when its allocs/op increase at all.
// It returns one message per violation (empty = gate passes).
func CompareBaseline(baseline, current *BaselineReport, nsTol float64) []string {
	var violations []string
	scale := 1.0
	if baseline.CalibrationNs > 0 && current.CalibrationNs > 0 {
		scale = current.CalibrationNs / baseline.CalibrationNs
	}
	for name, base := range baseline.Benchmarks {
		cur, ok := current.Benchmarks[name]
		if !ok {
			violations = append(violations, fmt.Sprintf("%s: benchmark missing from current run", name))
			continue
		}
		normNs := cur.NsPerOp / scale
		if base.NsPerOp > 0 && normNs > base.NsPerOp*(1+nsTol) {
			violations = append(violations, fmt.Sprintf(
				"%s: %.0f ns/op (machine-normalised %.0f) vs baseline %.0f ns/op: +%.1f%% exceeds the %.0f%% budget",
				name, cur.NsPerOp, normNs, base.NsPerOp,
				(normNs/base.NsPerOp-1)*100, nsTol*100))
		}
		// Allocation counts are machine-independent: any increase fails.
		if cur.AllocsPerOp > base.AllocsPerOp+0.5 {
			violations = append(violations, fmt.Sprintf(
				"%s: %.1f allocs/op vs baseline %.1f: allocation regressions are not allowed",
				name, cur.AllocsPerOp, base.AllocsPerOp))
		}
	}
	return violations
}
