package bench

import (
	"strings"
	"testing"
)

// The tests below are the acceptance criteria of DESIGN.md: they assert
// the *shape* of every reproduced figure/table (who wins, where curves
// bend), not absolute numbers. Scaled-down workloads keep them fast; the
// full-parameter runs live in cmd/cwc-bench and bench_test.go at the
// module root.

var testScale = Scale{Quanta: 12}

func TestExperimentTableRendering(t *testing.T) {
	e := &Experiment{ID: "x", Title: "t", XLabel: "n", YLabel: "y"}
	e.Add("a", 1, 1.5)
	e.Add("a", 2, 3)
	e.Add("b", 1, 2)
	var sb strings.Builder
	if err := e.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"# x — t", "a", "b", "1.500"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	sb.Reset()
	if err := e.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "n,a,b\n") {
		t.Fatalf("csv header wrong: %q", sb.String())
	}
	if v, ok := e.Lookup("a", 2); !ok || v != 3 {
		t.Fatalf("Lookup = (%g, %v)", v, ok)
	}
	if _, ok := e.Lookup("zz", 1); ok {
		t.Fatal("Lookup of unknown series succeeded")
	}
}

func TestFig3Shape(t *testing.T) {
	one, err := Fig3(1, 1, testScale)
	if err != nil {
		t.Fatal(err)
	}
	four, err := Fig3(4, 1, testScale)
	if err != nil {
		t.Fatal(err)
	}
	get := func(e *Experiment, label string, x float64) float64 {
		t.Helper()
		v, ok := e.Lookup(label, x)
		if !ok {
			t.Fatalf("missing point %s@%g", label, x)
		}
		return v
	}
	// With one stat engine the large ensemble saturates: its speedup at
	// 32 workers is visibly below the small ensemble's.
	s128 := get(one, "128 trajectories", 32)
	s1024 := get(one, "1024 trajectories", 32)
	if s1024 >= s128-2 {
		t.Fatalf("1-stat-engine: 1024-traj speedup %.1f not clearly below 128-traj %.1f", s1024, s128)
	}
	if s1024 > 24 {
		t.Fatalf("1-stat-engine 1024-traj speedup %.1f: expected saturation below 24", s1024)
	}
	// With four stat engines everything is near ideal.
	for _, label := range []string{"128 trajectories", "512 trajectories", "1024 trajectories"} {
		s := get(four, label, 32)
		if s < 26 {
			t.Fatalf("4-stat-engines %s speedup %.1f, want near-ideal (>= 26)", label, s)
		}
	}
	// And four engines never hurt.
	if get(four, "1024 trajectories", 32) <= s1024 {
		t.Fatal("4 stat engines did not beat 1 on the large ensemble")
	}
	// Low worker counts are near-ideal everywhere.
	if v := get(one, "512 trajectories", 4); v < 3.8 {
		t.Fatalf("4-worker speedup %.2f, want ~4", v)
	}
}

func TestFig4Shape(t *testing.T) {
	top, bottom, err := Fig4(1, testScale)
	if err != nil {
		t.Fatal(err)
	}
	for _, label := range []string{"2 cores per host", "4 cores per host"} {
		s1, ok1 := top.Lookup(label, 1)
		s8, ok8 := top.Lookup(label, 8)
		if !ok1 || !ok8 {
			t.Fatalf("%s: missing endpoints", label)
		}
		if s1 != 1 {
			t.Fatalf("%s: speedup(1 host) = %g, want 1", label, s1)
		}
		if s8 < 4.5 || s8 > 8.01 {
			t.Fatalf("%s: speedup(8 hosts) = %.2f, want in (4.5, 8]", label, s8)
		}
	}
	// On the aggregated-core axis, 16 cores from 4-core hosts beat 16
	// cores used as 1-worker baselines proportionally (sanity: both
	// series grow with cores).
	for _, label := range []string{"2 cores per host", "4 cores per host"} {
		var prev float64
		for _, s := range bottom.Series {
			if s.Label != label {
				continue
			}
			for _, p := range s.Points {
				if p.Y < prev-1.5 {
					t.Fatalf("%s: speedup dropped sharply at %g cores: %.2f after %.2f", label, p.X, p.Y, prev)
				}
				prev = p.Y
			}
		}
	}
}

func TestFig5Shape(t *testing.T) {
	e, err := Fig5(1, Scale{Quanta: 144})
	if err != nil {
		t.Fatal(err)
	}
	var prevTime float64
	for cores := 1; cores <= 4; cores++ {
		tm, ok := e.Lookup("exec time (min)", float64(cores))
		if !ok {
			t.Fatalf("missing time at %d cores", cores)
		}
		if cores > 1 && tm >= prevTime {
			t.Fatalf("exec time not monotone: %d cores %.1f after %.1f", cores, tm, prevTime)
		}
		prevTime = tm
	}
	sp, _ := e.Lookup("speedup", 4)
	if sp < 2.9 || sp > 3.6 {
		t.Fatalf("4-core speedup %.2f, want sub-linear in [2.9, 3.6] (paper: 3.15)", sp)
	}
}

func TestFig6Shape(t *testing.T) {
	top, err := Fig6Top(1, Scale{Quanta: 144})
	if err != nil {
		t.Fatal(err)
	}
	sp32, ok := top.Lookup("speedup", 32)
	if !ok {
		t.Fatal("missing 32-core point")
	}
	if sp32 < 22 || sp32 > 32 {
		t.Fatalf("32-vcore speedup %.1f, want ~28 (22..32)", sp32)
	}

	bottom, err := Fig6Bottom(1, Scale{Quanta: 144})
	if err != nil {
		t.Fatal(err)
	}
	var prev float64
	for _, x := range []float64{4, 32, 48, 64, 96} {
		sp, ok := bottom.Lookup("speedup", x)
		if !ok {
			t.Fatalf("missing point at %g cores", x)
		}
		if sp < prev {
			t.Fatalf("heterogeneous speedup not monotone at %g cores: %.1f after %.1f", x, sp, prev)
		}
		prev = sp
	}
	if prev < 50 || prev > 75 {
		t.Fatalf("96-core gain %.1f, want ~62 (50..75)", prev)
	}
}

func TestTable1Shape(t *testing.T) {
	res, err := Table1(1, Scale{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(res.Rows))
	}
	byN := map[int]Table1Row{}
	for _, r := range res.Rows {
		byN[r.NSims] = r
	}
	// CPU scales linearly with N and is quantum-insensitive (<15%).
	r128, r2048 := byN[128], byN[2048]
	if ratio := r2048.CPUQ10 / r128.CPUQ10; ratio < 12 || ratio > 20 {
		t.Fatalf("CPU scaling 128→2048 = %.1fx, want ~16x", ratio)
	}
	for _, r := range res.Rows {
		if rel := abs(r.CPUQ10-r.CPUQ1) / r.CPUQ10; rel > 0.15 {
			t.Fatalf("N=%d: CPU quantum sensitivity %.0f%%, want < 15%%", r.NSims, rel*100)
		}
	}
	// GPU: slower than CPU on the small ensemble, ≥2x faster on the
	// largest (the paper's headline).
	if r128.GPUQ10 <= r128.CPUQ10 {
		t.Fatalf("N=128: GPU (%.0f) should lose to CPU (%.0f)", r128.GPUQ10, r128.CPUQ10)
	}
	if best := min(r2048.GPUQ10, r2048.GPUQ1); r2048.CPUQ10/best < 2 {
		t.Fatalf("N=2048: GPU advantage %.2fx, want >= 2x", r2048.CPUQ10/best)
	}
	// GPU quantum sensitivity flips sign: small quanta hurt the small
	// ensemble (barrier tax) and help the large one (re-balancing).
	if r128.GPUQ1 <= r128.GPUQ10 {
		t.Fatalf("N=128: GPU Q/τ=1 (%.0f) should be slower than Q/τ=10 (%.0f)", r128.GPUQ1, r128.GPUQ10)
	}
	if r2048.GPUQ1 >= r2048.GPUQ10 {
		t.Fatalf("N=2048: GPU Q/τ=1 (%.0f) should beat Q/τ=10 (%.0f)", r2048.GPUQ1, r2048.GPUQ10)
	}
	// Rendering.
	var sb strings.Builder
	if err := res.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "2048") {
		t.Fatal("table rendering lost rows")
	}
}

func TestScaleHelpers(t *testing.T) {
	sc := Scale{Quanta: 5, MaxTraj: 100}
	if sc.quanta(30) != 5 || (Scale{}).quanta(30) != 30 {
		t.Fatal("quanta scaling wrong")
	}
	if sc.traj(1024) != 100 || sc.traj(64) != 64 {
		t.Fatal("traj scaling wrong")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	a, err := Fig3(1, 7, testScale)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig3(1, 7, testScale)
	if err != nil {
		t.Fatal(err)
	}
	av, _ := a.Lookup("512 trajectories", 16)
	bv, _ := b.Lookup("512 trajectories", 16)
	if av != bv {
		t.Fatalf("same seed, different results: %g vs %g", av, bv)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func min(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func BenchmarkFig3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Fig3(4, 1, Scale{Quanta: 10}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Table1(1, Scale{MaxTraj: 512}); err != nil {
			b.Fatal(err)
		}
	}
}
