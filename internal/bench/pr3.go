// PR3 is the machine-readable benchmark of the shared-stat-farm work: the
// per-window analysis hot path (windows/sec and allocs/op of
// core.AnalyseWindowInto on a reusable engine) and the job service's
// end-to-end multi-job throughput at stat-farm widths 1 and 4 on a
// k-means + period-detection heavy configuration. cwc-bench -exp pr3
// writes it as BENCH_PR3.json, which CI uploads as an artifact next to
// the bench smoke step.
package bench

import (
	"fmt"
	"runtime"
	"time"

	"cwcflow/internal/core"
	"cwcflow/internal/serve"
	"cwcflow/internal/sim"
	"cwcflow/internal/stats"
	"cwcflow/internal/window"
)

// allocsPerRun measures the average heap allocations of one f() call over
// runs iterations — testing.AllocsPerRun's contract without linking the
// testing framework into the cwc-bench binary. Like the original it is
// best-effort single-goroutine accounting.
func allocsPerRun(runs int, f func()) float64 {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	f() // warm up
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		f()
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(runs)
}

// PR3Report is the schema of BENCH_PR3.json.
type PR3Report struct {
	// NumCPU qualifies every throughput number: on a single-core host the
	// multi-engine speedup cannot exceed 1 for CPU-bound analysis.
	NumCPU     int `json:"num_cpu"`
	GOMAXPROCS int `json:"gomaxprocs"`

	// AnalyseWindow is the single-engine hot path: one window of 16 cuts ×
	// 256 trajectories × 3 species with moments, medians, k-means (k=4)
	// and period detection enabled.
	AnalyseWindow struct {
		NsPerOp       float64 `json:"ns_per_op"`
		AllocsPerOp   float64 `json:"allocs_per_op"`
		WindowsPerSec float64 `json:"windows_per_sec"`
	} `json:"analyse_window"`

	// ServeMultiJob is the service's end-to-end throughput: 4 concurrent
	// stats-heavy jobs on a 4-worker pool, stat farm width 1 vs 4.
	ServeMultiJob struct {
		Engines1WindowsPerSec float64 `json:"engines_1_windows_per_sec"`
		Engines4WindowsPerSec float64 `json:"engines_4_windows_per_sec"`
		Speedup               float64 `json:"speedup"`
	} `json:"serve_multi_job"`
}

// pr3Sim is the deterministic synthetic simulator used by the service
// benchmark: three species on per-trajectory xorshift walks, so k-means
// and period detection have non-degenerate work.
type pr3Sim struct {
	t     float64
	dt    float64
	steps uint64
	rng   uint64
	state [3]int64
}

func (s *pr3Sim) Time() float64 { return s.t }
func (s *pr3Sim) Step() bool {
	s.t += s.dt
	s.steps++
	for i := range s.state {
		s.rng ^= s.rng << 13
		s.rng ^= s.rng >> 7
		s.rng ^= s.rng << 17
		s.state[i] += int64(s.rng%7) - 3
	}
	return true
}
func (s *pr3Sim) NumSpecies() int     { return 3 }
func (s *pr3Sim) Observe(out []int64) { copy(out, s.state[:]) }
func (s *pr3Sim) Steps() uint64       { return s.steps }

func pr3Resolver(core.ModelRef) (core.SimulatorFactory, error) {
	return func(traj int, seed int64) (sim.Simulator, error) {
		return &pr3Sim{dt: 0.25, rng: uint64(seed)*0x9e3779b97f4a7c15 + uint64(traj)*0xbf58476d1ce4e5b9 + 1}, nil
	}, nil
}

// pr3Window builds the hot-path micro workload.
func pr3Window(nCuts, nTraj, ns int) window.Window {
	w := window.Window{Cuts: make([]window.Cut, nCuts)}
	for k := range w.Cuts {
		states := make([][]int64, nTraj)
		for i := range states {
			row := make([]int64, ns)
			for s := range row {
				row[s] = int64((i%4)*40 + 10*((k+i+s)%8) + i)
			}
			states[i] = row
		}
		w.Cuts[k] = window.Cut{Index: k, Time: float64(k) * 0.5, States: states}
	}
	return w
}

// PR3 runs the report's measurements. It takes a few seconds.
func PR3() (*PR3Report, error) {
	rep := &PR3Report{NumCPU: runtime.NumCPU(), GOMAXPROCS: runtime.GOMAXPROCS(0)}

	// --- AnalyseWindowInto micro-benchmark.
	w := pr3Window(16, 256, 3)
	species := []int{0, 1, 2}
	cfg := core.Config{
		Factory:       func(int, int64) (sim.Simulator, error) { return nil, nil },
		Trajectories:  1,
		End:           1,
		Period:        1,
		KMeansK:       4,
		PeriodHalfWin: 2,
		BaseSeed:      7,
	}
	eng := stats.NewEngine()
	var ws core.WindowStat
	if err := core.AnalyseWindowInto(&ws, eng, w, species, cfg); err != nil {
		return nil, err
	}
	rep.AnalyseWindow.AllocsPerOp = allocsPerRun(50, func() {
		if err := core.AnalyseWindowInto(&ws, eng, w, species, cfg); err != nil {
			panic(err)
		}
	})
	const minDur = 300 * time.Millisecond
	iters := 0
	start := time.Now()
	for time.Since(start) < minDur {
		for i := 0; i < 16; i++ {
			if err := core.AnalyseWindowInto(&ws, eng, w, species, cfg); err != nil {
				return nil, err
			}
		}
		iters += 16
	}
	elapsed := time.Since(start)
	rep.AnalyseWindow.NsPerOp = float64(elapsed.Nanoseconds()) / float64(iters)
	rep.AnalyseWindow.WindowsPerSec = float64(iters) / elapsed.Seconds()

	// --- Multi-job service throughput at farm widths 1 and 4.
	spec := serve.JobSpec{
		Model:         "pr3",
		Trajectories:  512,
		End:           16,
		Quantum:       16,
		Period:        0.25,
		WindowSize:    16,
		WindowStep:    8,
		KMeansK:       8,
		PeriodHalfWin: 2,
	}
	measure := func(engines int) (float64, error) {
		svc, err := serve.New(serve.Options{
			Workers:     4,
			StatEngines: engines,
			Resolver:    pr3Resolver,
		})
		if err != nil {
			return 0, err
		}
		defer svc.Close()
		const jobs = 4
		windows := 0
		start := time.Now()
		running := make([]*serve.Job, 0, jobs)
		for j := 0; j < jobs; j++ {
			s := spec
			s.Seed = int64(j)
			job, err := svc.Submit(s)
			if err != nil {
				return 0, err
			}
			running = append(running, job)
		}
		for _, job := range running {
			<-job.Done()
			st := job.Status()
			if st.State != serve.StateDone {
				return 0, fmt.Errorf("bench: pr3 job ended %s (%s)", st.State, st.Error)
			}
			windows += st.Progress.Windows
		}
		return float64(windows) / time.Since(start).Seconds(), nil
	}
	var err error
	if rep.ServeMultiJob.Engines1WindowsPerSec, err = measure(1); err != nil {
		return nil, err
	}
	if rep.ServeMultiJob.Engines4WindowsPerSec, err = measure(4); err != nil {
		return nil, err
	}
	rep.ServeMultiJob.Speedup = rep.ServeMultiJob.Engines4WindowsPerSec / rep.ServeMultiJob.Engines1WindowsPerSec
	return rep, nil
}
