package bench

import (
	"fmt"

	"cwcflow/internal/platform"
)

// Scale shrinks experiments for fast test/bench runs; the zero value uses
// the full publication-quality parameters.
type Scale struct {
	// Quanta overrides the per-trajectory quantum count (0 = default).
	Quanta int
	// MaxTraj caps the largest ensemble size (0 = no cap).
	MaxTraj int
}

func (s Scale) quanta(def int) int {
	if s.Quanta > 0 {
		return s.Quanta
	}
	return def
}

func (s Scale) traj(n int) int {
	if s.MaxTraj > 0 && n > s.MaxTraj {
		return s.MaxTraj
	}
	return n
}

// fig3Workers is the sim-worker sweep of the multi-core experiments.
var fig3Workers = []int{1, 2, 4, 8, 12, 16, 20, 24, 28, 32}

// Fig3 reproduces the multi-core speedup of the Neurospora model on the
// 32-core (64 hyperthread) Nehalem host, with the given number of
// statistical engines: the paper's Fig. 3 top (1 engine: the analysis farm
// saturates large ensembles) and bottom (4 engines: near-ideal).
func Fig3(statEngines int, seed int64, sc Scale) (*Experiment, error) {
	e := &Experiment{
		ID:     fmt.Sprintf("fig3-%dstat", statEngines),
		Title:  fmt.Sprintf("Multi-core speedup, Neurospora, %d statistical engine(s)", statEngines),
		XLabel: "sim workers",
		YLabel: "speedup",
		Notes: []string{
			"platform model: 32-core/64-HT Nehalem host",
			"speedup relative to 1 sim worker, same analysis configuration",
		},
	}
	p := platform.SharedMemory(64) // hyperthreaded contexts
	for _, n := range []int{128, 512, 1024} {
		n = sc.traj(n)
		w := platform.NeurosporaWorkload(n, sc.quanta(30), 10, seed)
		label := fmt.Sprintf("%d trajectories", n)
		base := 0.0
		for _, workers := range fig3Workers {
			dep := platform.Deployment{
				SimWorkerHosts: platform.SpreadWorkers([]int{0}, workers),
				MasterHost:     0,
				StatEngines:    statEngines,
			}
			m, err := platform.Simulate(p, w, dep)
			if err != nil {
				return nil, err
			}
			if workers == 1 {
				base = m.Makespan
			}
			e.Add(label, float64(workers), base/m.Makespan)
		}
	}
	return e, nil
}

// Fig4 reproduces the distributed speedup on the Infiniband (IPoIB)
// cluster, using 2 or 4 cores per host: speedup against the number of
// hosts (top) and against the aggregated core count (bottom). 4
// statistical engines, trajectories statically partitioned per host (the
// distributed deployment).
func Fig4(seed int64, sc Scale) (top, bottom *Experiment, err error) {
	top = &Experiment{
		ID: "fig4-hosts", Title: "Cluster speedup vs number of hosts",
		XLabel: "hosts", YLabel: "speedup",
		Notes: []string{"Infiniband (IPoIB) cluster model, speedup vs 1 host of the same shape"},
	}
	bottom = &Experiment{
		ID: "fig4-cores", Title: "Cluster speedup vs aggregated cores",
		XLabel: "aggregated cores", YLabel: "speedup",
		Notes: []string{"speedup vs 1 sim worker on 1 host"},
	}
	const maxHosts = 8
	for _, coresPerHost := range []int{2, 4} {
		label := fmt.Sprintf("%d cores per host", coresPerHost)
		n := sc.traj(256)
		w := platform.NeurosporaWorkload(n, sc.quanta(30), 10, seed)

		// Single-worker baseline for the aggregated-cores axis.
		p1 := platform.InfinibandCluster(1, coresPerHost)
		m1w, err := platform.Simulate(p1, w, platform.Deployment{
			SimWorkerHosts: []int{0}, MasterHost: 0, StatEngines: 4,
		})
		if err != nil {
			return nil, nil, err
		}
		base1host := 0.0
		for hosts := 1; hosts <= maxHosts; hosts++ {
			p := platform.InfinibandCluster(hosts, coresPerHost)
			hostIdx := make([]int, hosts)
			for i := range hostIdx {
				hostIdx[i] = i
			}
			dep := platform.Deployment{
				SimWorkerHosts:  platform.WorkersPerHost(hostIdx, coresPerHost),
				MasterHost:      0,
				StatEngines:     4,
				StaticPartition: true,
			}
			m, err := platform.Simulate(p, w, dep)
			if err != nil {
				return nil, nil, err
			}
			if hosts == 1 {
				base1host = m.Makespan
			}
			top.Add(label, float64(hosts), base1host/m.Makespan)
			bottom.Add(label, float64(hosts*coresPerHost), m1w.Makespan/m.Makespan)
		}
	}
	return top, bottom, nil
}

// fig5Workload calibrates the 96-day Neurospora cloud run on one EC2 core:
// ~200 trajectories sampled every 4 h (576 cuts), sequential time ≈ 224
// minutes, with the heavier on-line analysis (periods + moving averages)
// of the cloud experiments.
func fig5Workload(seed int64, sc Scale) platform.Workload {
	return platform.Workload{
		Trajectories:      sc.traj(200),
		Quanta:            sc.quanta(576),
		SamplesPerQuantum: 1,
		QuantumCost:       0.1167, // EC2-core seconds per 4h-of-biology quantum
		TrajSigma:         0.08,
		QuantumSigma:      0.30,
		SampleBytes:       64,
		AlignPerSample:    5e-4,
		StatBase:          0,
		StatPerTraj:       0.020, // ≈4.0 core-seconds per cut at N=200
		StatExponent:      1,
		StatChunk:         0.05,
		Seed:              seed,
	}
}

// Fig5 reproduces the single quad-core EC2 VM run: execution time (in
// minutes) and speedup against the number of virtualised cores used.
func Fig5(seed int64, sc Scale) (*Experiment, error) {
	e := &Experiment{
		ID: "fig5", Title: "Single quad-core EC2 VM: 96-day Neurospora run",
		XLabel: "cores", YLabel: "speedup / minutes",
		Notes: []string{
			"one 4-core VM runs sim workers, the aligner and the statistical engine",
			"exec time in minutes; speedup vs 1 sim worker",
		},
	}
	w := fig5Workload(seed, sc)
	host := platform.Platform{Hosts: []platform.Host{{Name: "ec2-vm", Cores: 4, Speed: 1}}}
	base := 0.0
	for cores := 1; cores <= 4; cores++ {
		dep := platform.Deployment{
			SimWorkerHosts: platform.SpreadWorkers([]int{0}, cores),
			MasterHost:     0,
			StatEngines:    1,
		}
		m, err := platform.Simulate(host, w, dep)
		if err != nil {
			return nil, err
		}
		if cores == 1 {
			base = m.Makespan
		}
		e.Add("speedup", float64(cores), base/m.Makespan)
		e.Add("exec time (min)", float64(cores), m.Makespan/60)
	}
	return e, nil
}

// fig6Workload is the same cloud run with the lighter streaming analysis
// (moving average of the oscillation period) used in the cluster
// deployments, spread over 4 statistical engines.
func fig6Workload(seed int64, sc Scale) platform.Workload {
	w := fig5Workload(seed, sc)
	w.StatPerTraj = 0.002 // ≈0.4 core-seconds per cut at N=200
	w.AlignPerSample = 2e-4
	return w
}

// Fig6Top reproduces the virtual cluster of eight quad-core EC2 VMs:
// speedup against virtualised cores, relative to one sim worker on one VM.
func Fig6Top(seed int64, sc Scale) (*Experiment, error) {
	e := &Experiment{
		ID: "fig6-top", Title: "EC2 virtual cluster of 8 quad-core VMs",
		XLabel: "cores", YLabel: "speedup",
		Notes: []string{"speedup vs 1 sim worker on 1 VM; 4 statistical engines; static per-host partition"},
	}
	w := fig6Workload(seed, sc)
	base := 0.0
	for hosts := 1; hosts <= 8; hosts++ {
		p := platform.EC2Cluster(hosts, 4)
		hostIdx := make([]int, hosts)
		for i := range hostIdx {
			hostIdx[i] = i
		}
		dep := platform.Deployment{
			SimWorkerHosts:  platform.WorkersPerHost(hostIdx, 4),
			MasterHost:      0,
			StatEngines:     4,
			StaticPartition: true,
		}
		m, err := platform.Simulate(p, w, dep)
		if err != nil {
			return nil, err
		}
		if hosts == 1 {
			// Baseline: single worker on this 1-VM platform.
			m1, err := platform.Simulate(p, w, platform.Deployment{
				SimWorkerHosts: []int{0}, MasterHost: 0, StatEngines: 4,
			})
			if err != nil {
				return nil, err
			}
			base = m1.Makespan
		}
		e.Add("speedup", float64(hosts*4), base/m.Makespan)
	}
	return e, nil
}

// Fig6Bottom reproduces the heterogeneous platform: eight quad-core EC2
// VMs plus the 32-core Nehalem and two 16-core Sandy Bridge workstations,
// up to 96 aggregated cores. Execution time in seconds and gain vs a
// single EC2 core.
func Fig6Bottom(seed int64, sc Scale) (*Experiment, error) {
	e := &Experiment{
		ID: "fig6-bottom", Title: "Heterogeneous platform (EC2 + Nehalem + 2x Sandy Bridge)",
		XLabel: "aggregated cores", YLabel: "speedup / seconds",
		Notes: []string{
			"gain vs 1 sim worker on 1 EC2 VM; master on the Nehalem host",
			"EC2 VMs reach the lab over a WAN link",
		},
	}
	w := fig6Workload(seed, sc)
	p := platform.Heterogeneous()

	// Baseline: one worker on one EC2 VM (plain EC2 platform).
	m1, err := platform.Simulate(platform.EC2Cluster(1, 4), w, platform.Deployment{
		SimWorkerHosts: []int{0}, MasterHost: 0, StatEngines: 4,
	})
	if err != nil {
		return nil, err
	}

	// Growth steps: 1 VM (4 cores) → 8 VMs (32) → +SB (48, 64) → +Nehalem (96).
	steps := []struct {
		cores   int
		workers []int
		master  int
	}{
		{4, platform.WorkersPerHost([]int{0}, 4), 0},
		{32, platform.WorkersPerHost([]int{0, 1, 2, 3, 4, 5, 6, 7}, 4), 0},
		{48, append(platform.WorkersPerHost([]int{0, 1, 2, 3, 4, 5, 6, 7}, 4),
			platform.WorkersPerHost([]int{9}, 16)...), platform.HeterogeneousMaster},
		{64, append(platform.WorkersPerHost([]int{0, 1, 2, 3, 4, 5, 6, 7}, 4),
			platform.WorkersPerHost([]int{9, 10}, 16)...), platform.HeterogeneousMaster},
		{96, append(append(platform.WorkersPerHost([]int{0, 1, 2, 3, 4, 5, 6, 7}, 4),
			platform.WorkersPerHost([]int{9, 10}, 16)...),
			platform.WorkersPerHost([]int{platform.HeterogeneousMaster}, 32)...), platform.HeterogeneousMaster},
	}
	for _, st := range steps {
		dep := platform.Deployment{
			SimWorkerHosts:  st.workers,
			MasterHost:      st.master,
			StatEngines:     4,
			StaticPartition: true,
		}
		m, err := platform.Simulate(p, w, dep)
		if err != nil {
			return nil, err
		}
		e.Add("speedup", float64(st.cores), m1.Makespan/m.Makespan)
		e.Add("exec time (s)", float64(st.cores), m.Makespan)
	}
	return e, nil
}
