// Package stats provides the statistical engines of the on-line analysis
// pipeline: streaming moments (Welford), exact quantiles, histograms,
// k-means clustering of trajectory ensembles, moving averages and
// oscillation-period estimation.
//
// These are the "mean / variance / k-means" filters of the paper's
// analysis stage (Fig. 2): each operates on a single cut or on a sliding
// window of cuts, independently of every other cut/window, which is what
// makes the analysis stage farm-parallel.
package stats

import (
	"errors"
	"fmt"
	"math"
	"slices"
	"sync"
)

// Welford is a numerically stable streaming accumulator for mean and
// variance. The zero value is ready to use.
type Welford struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	if w.n == 0 {
		w.min, w.max = x, x
	} else {
		w.min = math.Min(w.min, x)
		w.max = math.Max(w.max, x)
	}
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int64 { return w.n }

// Mean returns the running mean (0 with no observations).
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the unbiased sample variance (0 with fewer than 2
// observations).
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the sample standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// Min returns the smallest observation (0 with none).
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest observation (0 with none).
func (w *Welford) Max() float64 { return w.max }

// Merge combines another accumulator into w (parallel reduction of
// partial statistics, Chan et al.).
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	d := o.mean - w.mean
	w.m2 += o.m2 + d*d*float64(w.n)*float64(o.n)/float64(n)
	w.mean += d * float64(o.n) / float64(n)
	w.min = math.Min(w.min, o.min)
	w.max = math.Max(w.max, o.max)
	w.n = n
}

// Moments is a value snapshot of a Welford accumulator.
type Moments struct {
	N                   int64
	Mean, Var, Min, Max float64
}

// Snapshot returns the accumulated moments.
func (w *Welford) Snapshot() Moments {
	return Moments{N: w.n, Mean: w.Mean(), Var: w.Var(), Min: w.min, Max: w.max}
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. xs is not modified.
func Quantile(xs []float64, q float64) (float64, error) {
	sorted := append([]float64(nil), xs...)
	return QuantileInPlace(sorted, q)
}

// QuantileInPlace is Quantile without the defensive copy: it sorts xs in
// place, so callers that own a scratch buffer (the statistical engines do)
// compute quantiles allocation-free.
func QuantileInPlace(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, errors.New("stats: quantile of empty sample")
	}
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("stats: quantile %g out of [0,1]", q)
	}
	slices.Sort(xs)
	pos := q * float64(len(xs)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return xs[lo], nil
	}
	frac := pos - float64(lo)
	return xs[lo]*(1-frac) + xs[hi]*frac, nil
}

// Histogram counts observations into equal-width bins over [lo, hi);
// values outside the range are clamped into the first/last bin.
type Histogram struct {
	Lo, Hi float64
	Counts []int64
}

// NewHistogram returns a histogram with the given bin count over [lo, hi).
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if bins < 1 {
		return nil, fmt.Errorf("stats: need >= 1 bin, got %d", bins)
	}
	if !(lo < hi) {
		return nil, fmt.Errorf("stats: invalid histogram range [%g, %g)", lo, hi)
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int64, bins)}, nil
}

// Add counts one observation.
func (h *Histogram) Add(x float64) {
	bin := int(float64(len(h.Counts)) * (x - h.Lo) / (h.Hi - h.Lo))
	if bin < 0 {
		bin = 0
	}
	if bin >= len(h.Counts) {
		bin = len(h.Counts) - 1
	}
	h.Counts[bin]++
}

// Total returns the number of observations counted.
func (h *Histogram) Total() int64 {
	var t int64
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// KMeansResult is the outcome of a k-means clustering.
type KMeansResult struct {
	// Centroids are the final cluster centres.
	Centroids [][]float64
	// Assign maps each input point to its centroid index.
	Assign []int
	// Inertia is the total squared distance of points to their centroids.
	Inertia float64
	// Iterations actually run.
	Iterations int
}

// enginePool backs the convenience entry points (KMeans, core.AnalyseWindow)
// that have no caller-owned Engine to reuse.
var enginePool = sync.Pool{New: func() any { return NewEngine() }}

// GetEngine borrows an engine from the shared pool; return it with
// PutEngine. Long-lived analysis loops should own a private NewEngine
// instead.
func GetEngine() *Engine { return enginePool.Get().(*Engine) }

// PutEngine returns a borrowed engine to the shared pool.
func PutEngine(e *Engine) { enginePool.Put(e) }

// KMeans clusters points into k groups with Lloyd's algorithm and
// k-means++ seeding (deterministic for a given seed). maxIter bounds the
// Lloyd iterations. It is the convenience form of Engine.KMeansFlat:
// points are flattened into a pooled engine's arena and the result is
// freshly allocated.
func KMeans(points [][]float64, k int, seed int64, maxIter int) (KMeansResult, error) {
	var res KMeansResult
	if len(points) == 0 {
		return res, errors.New("stats: k-means of empty point set")
	}
	dim := len(points[0])
	for i, p := range points {
		if len(p) != dim {
			return res, fmt.Errorf("stats: point %d has dimension %d, want %d", i, len(p), dim)
		}
	}
	e := GetEngine()
	defer PutEngine(e)
	flat := e.Points(len(points), dim)
	for i, p := range points {
		copy(flat[i*dim:(i+1)*dim], p)
	}
	err := e.KMeansFlat(&res, flat, len(points), dim, k, seed, maxIter)
	return res, err
}

func sqDist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// MovingAverage smooths xs with a centred window of 2*halfWin+1 samples
// (shrunk at the borders).
func MovingAverage(xs []float64, halfWin int) []float64 {
	if halfWin < 0 {
		halfWin = 0
	}
	out := make([]float64, len(xs))
	movingAverageInto(out, xs, halfWin)
	return out
}

// Peaks returns the indices of local maxima of xs after smoothing with a
// centred window of 2*halfWin+1. Peaks closer than halfWin samples are
// merged (first wins).
func Peaks(xs []float64, halfWin int) []int {
	if len(xs) == 0 {
		return nil
	}
	if halfWin < 0 {
		halfWin = 0
	}
	sm := MovingAverage(xs, halfWin)
	return peaksInto(nil, sm, halfWin)
}

// Period estimates the oscillation period of the series xs sampled every
// dt time units, as the mean gap between detected peaks. ok is false when
// fewer than two peaks are found. Engine.Period is the allocation-free
// equivalent.
func Period(xs []float64, dt float64, halfWin int) (period float64, ok bool) {
	peaks := Peaks(xs, halfWin)
	if len(peaks) < 2 {
		return 0, false
	}
	gap := float64(peaks[len(peaks)-1]-peaks[0]) / float64(len(peaks)-1)
	return gap * dt, true
}
