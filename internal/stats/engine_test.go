package stats

import (
	"math/rand"
	"testing"
)

func flatten(points [][]float64) ([]float64, int, int) {
	dim := len(points[0])
	flat := make([]float64, 0, len(points)*dim)
	for _, p := range points {
		flat = append(flat, p...)
	}
	return flat, len(points), dim
}

func clusteredPoints(n int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	points := make([][]float64, 0, 2*n)
	for i := 0; i < n; i++ {
		points = append(points, []float64{rng.NormFloat64(), rng.NormFloat64()})
	}
	for i := 0; i < n; i++ {
		points = append(points, []float64{30 + rng.NormFloat64(), 30 + rng.NormFloat64()})
	}
	return points
}

// TestKMeansFlatMatchesKMeans pins that the engine's flat-arena path and
// the convenience wrapper produce identical clusterings (the wrapper is
// the flat path, so this guards the flattening and result-reuse plumbing).
func TestKMeansFlatMatchesKMeans(t *testing.T) {
	points := clusteredPoints(40, 5)
	ref, err := KMeans(points, 2, 9, 100)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine()
	flat, n, dim := flatten(points)
	var res KMeansResult
	for run := 0; run < 3; run++ { // cover the buffer-reuse path
		if err := e.KMeansFlat(&res, flat, n, dim, 2, 9, 100); err != nil {
			t.Fatal(err)
		}
	}
	if res.Inertia != ref.Inertia || res.Iterations != ref.Iterations {
		t.Fatalf("flat: inertia %g/%d iters, want %g/%d", res.Inertia, res.Iterations, ref.Inertia, ref.Iterations)
	}
	for i := range ref.Assign {
		if res.Assign[i] != ref.Assign[i] {
			t.Fatalf("assign[%d] = %d, want %d", i, res.Assign[i], ref.Assign[i])
		}
	}
	for j := range ref.Centroids {
		for d := range ref.Centroids[j] {
			if res.Centroids[j][d] != ref.Centroids[j][d] {
				t.Fatalf("centroid[%d][%d] = %g, want %g", j, d, res.Centroids[j][d], ref.Centroids[j][d])
			}
		}
	}
}

// TestKMeansFlatAllocationFree pins the engine property: clustering into a
// reused result with a warmed engine allocates nothing.
func TestKMeansFlatAllocationFree(t *testing.T) {
	points := clusteredPoints(128, 3)
	flat, n, dim := flatten(points)
	e := NewEngine()
	var res KMeansResult
	if err := e.KMeansFlat(&res, flat, n, dim, 4, 1, 100); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if err := e.KMeansFlat(&res, flat, n, dim, 4, 1, 100); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("KMeansFlat allocates %.1f times per run in steady state, want 0", allocs)
	}
}

// TestEnginePeriodMatchesPeriod pins that the engine's buffered period
// detector computes exactly what the allocating package function computes.
func TestEnginePeriodMatchesPeriod(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	e := NewEngine()
	for trial := 0; trial < 20; trial++ {
		xs := make([]float64, 60)
		for i := range xs {
			xs[i] = 10*float64(i%9) + rng.Float64()
		}
		for _, hw := range []int{0, 1, 3} {
			wantP, wantOK := Period(xs, 0.5, hw)
			gotP, gotOK := e.Period(xs, 0.5, hw)
			if gotP != wantP || gotOK != wantOK {
				t.Fatalf("halfWin=%d: engine period (%g,%v), want (%g,%v)", hw, gotP, gotOK, wantP, wantOK)
			}
		}
	}
}

func TestEnginePeriodAllocationFree(t *testing.T) {
	xs := make([]float64, 120)
	for i := range xs {
		xs[i] = float64(10 * (i % 11))
	}
	e := NewEngine()
	e.Period(xs, 0.5, 2)
	allocs := testing.AllocsPerRun(50, func() { e.Period(xs, 0.5, 2) })
	if allocs != 0 {
		t.Fatalf("Engine.Period allocates %.1f times per run, want 0", allocs)
	}
}

// TestKMeansFlatValidation covers the flat-path error surface.
func TestKMeansFlatValidation(t *testing.T) {
	e := NewEngine()
	var res KMeansResult
	if err := e.KMeansFlat(&res, nil, 0, 1, 2, 1, 10); err == nil {
		t.Fatal("empty point set accepted")
	}
	if err := e.KMeansFlat(&res, []float64{1}, 1, 1, 0, 1, 10); err == nil {
		t.Fatal("k=0 accepted")
	}
	if err := e.KMeansFlat(&res, []float64{1, 2, 3}, 2, 2, 1, 1, 10); err == nil {
		t.Fatal("mis-sized flat buffer accepted")
	}
	// k > n clamps; identical points give zero inertia.
	if err := e.KMeansFlat(&res, []float64{3, 3, 3}, 3, 1, 5, 1, 10); err != nil {
		t.Fatal(err)
	}
	if len(res.Centroids) != 3 || res.Inertia != 0 {
		t.Fatalf("clamped identical points: %d centroids, inertia %g", len(res.Centroids), res.Inertia)
	}
}
