package stats

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Engine is the reusable scratch state of one statistical engine: every
// buffer the per-window analyses (quantiles, k-means, period detection)
// would otherwise allocate, grown on demand and reused across windows. One
// Engine per analysis goroutine makes the whole per-window statistics path
// allocation-free in steady state; an Engine is not safe for concurrent
// use.
//
// The zero value is ready to use (NewEngine is provided for symmetry).
type Engine struct {
	scratch []float64 // general float scratch (quantiles, traces)
	smooth  []float64 // moving-average output for period detection
	peaks   []int     // peak indices for period detection

	// k-means state, all flat:
	points []float64 // caller-filled point arena, n*dim
	cent   []float64 // centroids, k*dim
	cnorm  []float64 // per-centroid squared norms
	sums   []float64 // per-cluster coordinate sums, k*dim
	counts []int
	assign []int
	d2     []float64 // k-means++ seeding distances

	src rand.Source
	rng *rand.Rand
}

// NewEngine returns an empty engine; buffers grow on first use.
func NewEngine() *Engine { return &Engine{} }

// Floats returns a zero-length float scratch slice with capacity at least
// n, valid until the next Floats call on this engine. Callers append their
// values and may pass the result to QuantileInPlace or Engine.Period.
func (e *Engine) Floats(n int) []float64 {
	if cap(e.scratch) < n {
		e.scratch = make([]float64, 0, n)
	}
	return e.scratch[:0]
}

// Points returns the engine's flat point arena resized to n*dim, for the
// caller to fill row-major (point i occupies [i*dim, (i+1)*dim)) and pass
// to KMeansFlat. Valid until the next Points call.
func (e *Engine) Points(n, dim int) []float64 {
	need := n * dim
	if cap(e.points) < need {
		e.points = make([]float64, need)
	}
	e.points = e.points[:need]
	return e.points
}

// seed (re)seeds the engine's private RNG. Reusing one source keeps the
// deterministic stream identical to rand.New(rand.NewSource(seed)) without
// allocating per call.
func (e *Engine) seed(seed int64) *rand.Rand {
	if e.src == nil {
		e.src = rand.NewSource(seed)
		e.rng = rand.New(e.src)
	} else {
		e.src.Seed(seed)
	}
	return e.rng
}

func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// KMeansFlat clusters n points of the given dimension, laid out row-major
// in pts (typically the slice returned by Points), into k groups with
// Lloyd's algorithm and k-means++ seeding, writing the outcome into res —
// whose slices are reused when already large enough, so a caller that
// keeps both the engine and the result across windows clusters without
// allocating. The algorithm is deterministic for a given seed.
//
// Seeding and the final inertia use exact squared distances (the D²
// seeding weights are differences of nearby values, where the expanded
// ‖x‖² − 2x·c + ‖c‖² form would cancel catastrophically for large
// coordinate magnitudes); only the Lloyd assignment scan uses the
// expanded form with per-iteration precomputed centroid norms, where a
// rounding flip can at worst move a point between equidistant centroids.
// A Lloyd iteration exits early as soon as no assignment changed.
func (e *Engine) KMeansFlat(res *KMeansResult, pts []float64, n, dim, k int, seed int64, maxIter int) error {
	if k < 1 {
		return fmt.Errorf("stats: k must be >= 1, got %d", k)
	}
	if n == 0 {
		return errors.New("stats: k-means of empty point set")
	}
	if dim < 1 {
		return fmt.Errorf("stats: k-means needs dimension >= 1, got %d", dim)
	}
	if len(pts) != n*dim {
		return fmt.Errorf("stats: flat point buffer holds %d values, want %d", len(pts), n*dim)
	}
	if k > n {
		k = n
	}
	if maxIter < 1 {
		maxIter = 100
	}
	rng := e.seed(seed)

	point := func(i int) []float64 { return pts[i*dim : (i+1)*dim] }

	e.cent = growFloats(e.cent, k*dim)
	e.cnorm = growFloats(e.cnorm, k)
	cent := func(j int) []float64 { return e.cent[j*dim : (j+1)*dim] }

	// k-means++ seeding: the first centroid uniformly, the rest with
	// probability proportional to the squared distance to the nearest
	// centroid chosen so far.
	e.d2 = growFloats(e.d2, n)
	copy(cent(0), point(rng.Intn(n)))
	for c := 1; c < k; c++ {
		total := 0.0
		for i := 0; i < n; i++ {
			best := math.Inf(1)
			for j := 0; j < c; j++ {
				if d := sqDist(point(i), cent(j)); d < best {
					best = d
				}
			}
			e.d2[i] = best
			total += best
		}
		pick := n - 1
		if total == 0 {
			// All remaining points coincide with existing centroids.
			pick = rng.Intn(n)
		} else {
			target := rng.Float64() * total
			acc := 0.0
			for i, d := range e.d2[:n] {
				acc += d
				if target < acc {
					pick = i
					break
				}
			}
		}
		copy(cent(c), point(pick))
	}

	e.assign = growInts(e.assign, n)
	e.counts = growInts(e.counts, k)
	e.sums = growFloats(e.sums, k*dim)
	iter := 0
	for ; iter < maxIter; iter++ {
		for j := 0; j < k; j++ {
			e.cnorm[j] = dot(cent(j), cent(j))
		}
		changed := false
		for i := 0; i < n; i++ {
			p := point(i)
			// argmin over centroids of ‖p−c‖² = pnorm − 2p·c + cnorm; the
			// constant pnorm term drops out of the comparison.
			best, bestScore := 0, math.Inf(1)
			for j := 0; j < k; j++ {
				if s := e.cnorm[j] - 2*dot(p, cent(j)); s < bestScore {
					best, bestScore = j, s
				}
			}
			if iter == 0 || e.assign[i] != best {
				changed = changed || e.assign[i] != best
				e.assign[i] = best
			}
		}
		if iter > 0 && !changed {
			break // early exit: assignments (hence centroids) are stable
		}
		for j := 0; j < k; j++ {
			e.counts[j] = 0
		}
		for i := range e.sums[:k*dim] {
			e.sums[i] = 0
		}
		for i := 0; i < n; i++ {
			j := e.assign[i]
			e.counts[j]++
			row := e.sums[j*dim : (j+1)*dim]
			for d, v := range point(i) {
				row[d] += v
			}
		}
		for j := 0; j < k; j++ {
			if e.counts[j] == 0 {
				continue // keep empty cluster's centroid in place
			}
			inv := 1 / float64(e.counts[j])
			c := cent(j)
			row := e.sums[j*dim : (j+1)*dim]
			for d := range c {
				c[d] = row[d] * inv
			}
		}
	}

	// Publish into res, reusing its storage when possible.
	if cap(res.Centroids) < k {
		res.Centroids = make([][]float64, k)
	}
	res.Centroids = res.Centroids[:k]
	for j := 0; j < k; j++ {
		if cap(res.Centroids[j]) < dim {
			res.Centroids[j] = make([]float64, dim)
		}
		res.Centroids[j] = res.Centroids[j][:dim]
		copy(res.Centroids[j], cent(j))
	}
	res.Assign = growInts(res.Assign, n)
	copy(res.Assign, e.assign[:n])
	inertia := 0.0
	for i := 0; i < n; i++ {
		inertia += sqDist(point(i), res.Centroids[e.assign[i]])
	}
	res.Inertia = inertia
	res.Iterations = iter
	return nil
}

// Period estimates the oscillation period of the series xs sampled every
// dt time units, exactly as the package-level Period, but using the
// engine's reusable smoothing and peak buffers instead of allocating.
func (e *Engine) Period(xs []float64, dt float64, halfWin int) (period float64, ok bool) {
	if len(xs) == 0 {
		return 0, false
	}
	if halfWin < 0 {
		halfWin = 0
	}
	e.smooth = growFloats(e.smooth, len(xs))
	movingAverageInto(e.smooth, xs, halfWin)
	e.peaks = peaksInto(e.peaks[:0], e.smooth, halfWin)
	if len(e.peaks) < 2 {
		return 0, false
	}
	gap := float64(e.peaks[len(e.peaks)-1]-e.peaks[0]) / float64(len(e.peaks)-1)
	return gap * dt, true
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// movingAverageInto writes the centred moving average of xs into dst
// (len(dst) == len(xs)).
func movingAverageInto(dst, xs []float64, halfWin int) {
	for i := range xs {
		lo, hi := i-halfWin, i+halfWin
		if lo < 0 {
			lo = 0
		}
		if hi >= len(xs) {
			hi = len(xs) - 1
		}
		s := 0.0
		for j := lo; j <= hi; j++ {
			s += xs[j]
		}
		dst[i] = s / float64(hi-lo+1)
	}
}

// peaksInto appends the local-maxima indices of the smoothed series sm to
// dst (peaks closer than halfWin samples are merged, first wins).
func peaksInto(dst []int, sm []float64, halfWin int) []int {
	for i := halfWin; i < len(sm)-halfWin; i++ {
		isPeak := true
		for j := i - halfWin; j <= i+halfWin && isPeak; j++ {
			if sm[j] > sm[i] {
				isPeak = false
			}
		}
		if isPeak && (len(dst) == 0 || i-dst[len(dst)-1] > halfWin) {
			dst = append(dst, i)
		}
	}
	return dst
}
