package stats

import (
	"fmt"
	"sort"
)

// P2Quantile is a streaming estimator of a single quantile using the P²
// algorithm (Jain & Chlamtac, CACM 1985): five markers track the running
// quantile in O(1) space and O(1) time per observation, with no buffering
// of the sample. It is the streaming counterpart of the batch Quantile
// function, for consumers that observe an unbounded stream (e.g. the job
// service tracking per-window analysis latency percentiles).
//
// The zero value is not usable; construct with NewP2Quantile.
type P2Quantile struct {
	q       float64
	n       int64
	heights [5]float64 // marker heights
	pos     [5]float64 // actual marker positions (1-based)
	want    [5]float64 // desired marker positions
	incr    [5]float64 // desired-position increments per observation
}

// NewP2Quantile returns an estimator of the q-quantile (0 <= q <= 1).
func NewP2Quantile(q float64) (*P2Quantile, error) {
	if q < 0 || q > 1 {
		return nil, fmt.Errorf("stats: quantile %g out of [0,1]", q)
	}
	p := &P2Quantile{q: q}
	p.want = [5]float64{1, 1 + 2*q, 1 + 4*q, 3 + 2*q, 5}
	p.incr = [5]float64{0, q / 2, q, (1 + q) / 2, 1}
	return p, nil
}

// Q returns the quantile this estimator tracks.
func (p *P2Quantile) Q() float64 { return p.q }

// N returns the number of observations folded in.
func (p *P2Quantile) N() int64 { return p.n }

// Add folds one observation into the estimator.
func (p *P2Quantile) Add(x float64) {
	if p.n < 5 {
		p.heights[p.n] = x
		p.n++
		if p.n == 5 {
			sort.Float64s(p.heights[:])
			for i := range p.pos {
				p.pos[i] = float64(i + 1)
			}
		}
		return
	}
	p.n++

	// Find the cell the observation falls into, adjusting the extremes.
	var k int
	switch {
	case x < p.heights[0]:
		p.heights[0] = x
		k = 0
	case x >= p.heights[4]:
		p.heights[4] = x
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if x < p.heights[k+1] {
				break
			}
		}
	}

	// Shift positions above the cell, advance desired positions.
	for i := k + 1; i < 5; i++ {
		p.pos[i]++
	}
	for i := range p.want {
		p.want[i] += p.incr[i]
	}

	// Nudge the three interior markers toward their desired positions with
	// a piecewise-parabolic (P²) height interpolation, falling back to
	// linear when the parabola would leave the bracketing heights.
	for i := 1; i <= 3; i++ {
		d := p.want[i] - p.pos[i]
		if (d >= 1 && p.pos[i+1]-p.pos[i] > 1) || (d <= -1 && p.pos[i-1]-p.pos[i] < -1) {
			s := 1.0
			if d < 0 {
				s = -1.0
			}
			h := p.parabolic(i, s)
			if p.heights[i-1] < h && h < p.heights[i+1] {
				p.heights[i] = h
			} else {
				p.heights[i] = p.linear(i, s)
			}
			p.pos[i] += s
		}
	}
}

func (p *P2Quantile) parabolic(i int, s float64) float64 {
	return p.heights[i] + s/(p.pos[i+1]-p.pos[i-1])*
		((p.pos[i]-p.pos[i-1]+s)*(p.heights[i+1]-p.heights[i])/(p.pos[i+1]-p.pos[i])+
			(p.pos[i+1]-p.pos[i]-s)*(p.heights[i]-p.heights[i-1])/(p.pos[i]-p.pos[i-1]))
}

func (p *P2Quantile) linear(i int, s float64) float64 {
	j := i + int(s)
	return p.heights[i] + s*(p.heights[j]-p.heights[i])/(p.pos[j]-p.pos[i])
}

// Value returns the current quantile estimate. With fewer than five
// observations it degrades to the exact batch quantile of what was seen
// (and 0 with no observations).
func (p *P2Quantile) Value() float64 {
	if p.n == 0 {
		return 0
	}
	if p.n < 5 {
		seen := append([]float64(nil), p.heights[:p.n]...)
		v, err := Quantile(seen, p.q)
		if err != nil {
			return 0
		}
		return v
	}
	return p.heights[2]
}
