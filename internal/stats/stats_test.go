package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWelfordAgainstTwoPass(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 7
	}
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	// Two-pass reference.
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(len(xs))
	ss := 0.0
	for _, x := range xs {
		ss += (x - mean) * (x - mean)
	}
	variance := ss / float64(len(xs)-1)
	if math.Abs(w.Mean()-mean) > 1e-9 {
		t.Fatalf("mean %g vs %g", w.Mean(), mean)
	}
	if math.Abs(w.Var()-variance) > 1e-9 {
		t.Fatalf("var %g vs %g", w.Var(), variance)
	}
	if w.N() != 1000 {
		t.Fatalf("n = %d", w.N())
	}
}

func TestWelfordEdgeCases(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Var() != 0 || w.Std() != 0 {
		t.Fatal("empty accumulator not zero")
	}
	w.Add(5)
	if w.Mean() != 5 || w.Var() != 0 || w.Min() != 5 || w.Max() != 5 {
		t.Fatal("single observation wrong")
	}
}

// Property: merging two accumulators equals accumulating the concatenation.
func TestWelfordProperty_MergeEquivalent(t *testing.T) {
	f := func(a, b []float64) bool {
		clean := func(xs []float64) []float64 {
			out := xs[:0:0]
			for _, x := range xs {
				if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
					out = append(out, x)
				}
			}
			return out
		}
		a, b = clean(a), clean(b)
		var wa, wb, all Welford
		for _, x := range a {
			wa.Add(x)
			all.Add(x)
		}
		for _, x := range b {
			wb.Add(x)
			all.Add(x)
		}
		wa.Merge(wb)
		if wa.N() != all.N() {
			return false
		}
		if all.N() == 0 {
			return true
		}
		scale := math.Max(1, math.Abs(all.Mean()))
		if math.Abs(wa.Mean()-all.Mean()) > 1e-8*scale {
			return false
		}
		vscale := math.Max(1, all.Var())
		return math.Abs(wa.Var()-all.Var()) <= 1e-6*vscale
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2, 5}
	cases := []struct {
		q, want float64
	}{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.75, 4},
	}
	for _, c := range cases {
		got, err := Quantile(xs, c.q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
	if _, err := Quantile(nil, 0.5); err == nil {
		t.Fatal("empty sample accepted")
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Fatal("q > 1 accepted")
	}
	// Input must not be reordered.
	if xs[0] != 4 {
		t.Fatal("Quantile mutated its input")
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0, 1.9, 2, 5, 9.9, -3, 42} {
		h.Add(x)
	}
	want := []int64{3, 1, 1, 0, 2} // -3 and 0,1.9 in bin0; 42 clamps to bin4
	for i, c := range h.Counts {
		if c != want[i] {
			t.Fatalf("bin %d = %d, want %d (all: %v)", i, c, want[i], h.Counts)
		}
	}
	if h.Total() != 7 {
		t.Fatalf("total = %d", h.Total())
	}
	if _, err := NewHistogram(3, 3, 4); err == nil {
		t.Fatal("degenerate range accepted")
	}
	if _, err := NewHistogram(0, 1, 0); err == nil {
		t.Fatal("zero bins accepted")
	}
}

func TestKMeansSeparatesObviousClusters(t *testing.T) {
	var points [][]float64
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 50; i++ {
		points = append(points, []float64{rng.NormFloat64() * 0.5, rng.NormFloat64() * 0.5})
	}
	for i := 0; i < 50; i++ {
		points = append(points, []float64{20 + rng.NormFloat64()*0.5, 20 + rng.NormFloat64()*0.5})
	}
	res, err := KMeans(points, 2, 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	// All of the first 50 in one cluster, all of the last 50 in the other.
	c0 := res.Assign[0]
	for i := 0; i < 50; i++ {
		if res.Assign[i] != c0 {
			t.Fatalf("point %d escaped cluster %d", i, c0)
		}
	}
	c1 := res.Assign[50]
	if c1 == c0 {
		t.Fatal("two obvious clusters merged")
	}
	for i := 50; i < 100; i++ {
		if res.Assign[i] != c1 {
			t.Fatalf("point %d escaped cluster %d", i, c1)
		}
	}
}

func TestKMeansDeterministicPerSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var points [][]float64
	for i := 0; i < 100; i++ {
		points = append(points, []float64{rng.Float64() * 10})
	}
	a, err := KMeans(points, 3, 7, 50)
	if err != nil {
		t.Fatal(err)
	}
	b, err := KMeans(points, 3, 7, 50)
	if err != nil {
		t.Fatal(err)
	}
	if a.Inertia != b.Inertia {
		t.Fatal("same seed, different inertia")
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("same seed, different assignment")
		}
	}
}

func TestKMeansEdgeCases(t *testing.T) {
	if _, err := KMeans(nil, 2, 1, 10); err == nil {
		t.Fatal("empty points accepted")
	}
	if _, err := KMeans([][]float64{{1}}, 0, 1, 10); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := KMeans([][]float64{{1}, {1, 2}}, 1, 1, 10); err == nil {
		t.Fatal("ragged dimensions accepted")
	}
	// k > n clamps.
	res, err := KMeans([][]float64{{1}, {2}}, 5, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centroids) != 2 {
		t.Fatalf("centroids = %d, want 2", len(res.Centroids))
	}
	// Identical points: zero inertia.
	res, err = KMeans([][]float64{{3}, {3}, {3}}, 2, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Inertia != 0 {
		t.Fatalf("inertia = %g, want 0", res.Inertia)
	}
}

// Property: k-means assignment is locally optimal — every point is at
// least as close to its own centroid as to any other.
func TestKMeansProperty_AssignmentOptimal(t *testing.T) {
	f := func(seed int64, nRaw, kRaw uint8) bool {
		n := int(nRaw%40) + 2
		k := int(kRaw%4) + 1
		rng := rand.New(rand.NewSource(seed))
		points := make([][]float64, n)
		for i := range points {
			points[i] = []float64{rng.Float64() * 100, rng.Float64() * 100}
		}
		res, err := KMeans(points, k, seed, 100)
		if err != nil {
			return false
		}
		for i, p := range points {
			own := sqDist(p, res.Centroids[res.Assign[i]])
			for _, c := range res.Centroids {
				if sqDist(p, c) < own-1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMovingAverage(t *testing.T) {
	xs := []float64{0, 10, 0, 10, 0}
	sm := MovingAverage(xs, 1)
	want := []float64{5, 10.0 / 3, 20.0 / 3, 10.0 / 3, 5}
	for i := range want {
		if math.Abs(sm[i]-want[i]) > 1e-12 {
			t.Fatalf("sm[%d] = %g, want %g", i, sm[i], want[i])
		}
	}
	if got := MovingAverage(xs, 0); !equalSlices(got, xs) {
		t.Fatal("halfWin=0 must be identity")
	}
}

func TestPeriodOnSinusoid(t *testing.T) {
	const dt = 0.25
	var xs []float64
	for tt := 0.0; tt < 100; tt += dt {
		xs = append(xs, math.Sin(2*math.Pi*tt/8)) // period 8
	}
	p, ok := Period(xs, dt, 4)
	if !ok {
		t.Fatal("no period found on a pure sinusoid")
	}
	if math.Abs(p-8) > 0.5 {
		t.Fatalf("period = %g, want 8 +- 0.5", p)
	}
}

func TestPeriodTooFewPeaks(t *testing.T) {
	if _, ok := Period([]float64{1, 2, 3, 2, 1}, 1, 1); ok {
		t.Fatal("found a period on a single bump")
	}
	if _, ok := Period(nil, 1, 1); ok {
		t.Fatal("found a period on empty series")
	}
}

func equalSlices(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func BenchmarkWelfordAdd(b *testing.B) {
	var w Welford
	for i := 0; i < b.N; i++ {
		w.Add(float64(i % 97))
	}
}

func BenchmarkKMeans1024x2(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	points := make([][]float64, 1024)
	for i := range points {
		points[i] = []float64{rng.Float64(), rng.Float64()}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := KMeans(points, 4, 1, 50); err != nil {
			b.Fatal(err)
		}
	}
}
