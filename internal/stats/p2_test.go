package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestP2QuantileAgainstBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	dists := map[string]func() float64{
		"uniform":   rng.Float64,
		"normal":    rng.NormFloat64,
		"lognormal": func() float64 { return math.Exp(rng.NormFloat64()) },
	}
	for name, draw := range dists {
		for _, q := range []float64{0.5, 0.9, 0.95} {
			p, err := NewP2Quantile(q)
			if err != nil {
				t.Fatal(err)
			}
			xs := make([]float64, 0, 20000)
			for i := 0; i < 20000; i++ {
				x := draw()
				p.Add(x)
				xs = append(xs, x)
			}
			exact, err := Quantile(xs, q)
			if err != nil {
				t.Fatal(err)
			}
			got := p.Value()
			// P² is an approximation: accept a few percent of the sample
			// spread around the exact order statistic.
			lo, _ := Quantile(xs, math.Max(0, q-0.03))
			hi, _ := Quantile(xs, math.Min(1, q+0.03))
			if got < lo || got > hi {
				t.Errorf("%s q=%g: estimate %g outside [%g, %g] (exact %g)", name, q, got, lo, hi, exact)
			}
			if p.N() != 20000 {
				t.Errorf("N() = %d, want 20000", p.N())
			}
		}
	}
}

func TestP2QuantileSmallSamples(t *testing.T) {
	p, err := NewP2Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if p.Value() != 0 {
		t.Errorf("empty estimator Value() = %g, want 0", p.Value())
	}
	for _, x := range []float64{3, 1, 2} {
		p.Add(x)
	}
	if got := p.Value(); got != 2 {
		t.Errorf("median of {3,1,2} = %g, want 2 (exact small-sample path)", got)
	}
}

func TestP2QuantileRejectsBadQ(t *testing.T) {
	if _, err := NewP2Quantile(-0.1); err == nil {
		t.Error("accepted q = -0.1")
	}
	if _, err := NewP2Quantile(1.5); err == nil {
		t.Error("accepted q = 1.5")
	}
}
