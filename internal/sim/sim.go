// Package sim turns a stochastic simulation engine into quantum-based,
// restartable simulation tasks producing time-aligned samples.
//
// A Task owns one trajectory: a live simulator (either the flat Gillespie
// engine or the CWC term-rewriting engine — anything implementing
// Simulator), the trajectory's end time, the simulation quantum (how much
// simulated time one scheduling step advances) and the sampling period τ.
// Each RunQuantum call advances the simulator by one quantum and emits the
// samples whose nominal instants were crossed, using the exact SSA
// piecewise-constant state semantics (the state at time t is the state
// after the last reaction at or before t).
//
// Tasks are the unit of work dispatched to the simulation-engine farm: an
// unfinished task is rescheduled through the farm's feedback channel, which
// is what gives the pipeline its load-balancing behaviour on heavily uneven
// trajectories.
//
// The batching entry point, RunQuantumBatch, writes a quantum's samples
// into a Batch backed by a single flat arena — one allocation per quantum
// (amortised to none once the Batch pool warms up) instead of one per
// sample — which is what keeps the sim→align→stats path allocation-free in
// steady state.
package sim

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
)

// Simulator is the stepping contract shared by the SSA engines
// (gillespie.Direct, gillespie.NextReaction, cwc.Engine).
type Simulator interface {
	// Time returns the current simulation time.
	Time() float64
	// Step fires one reaction, returning false in a dead state.
	Step() bool
	// NumSpecies is the dimension of the observable vector.
	NumSpecies() int
	// Observe copies the current observable state into out
	// (len(out) == NumSpecies()).
	Observe(out []int64)
}

// SnapshotSimulator is the optional Simulator extension for engines whose
// complete dynamic state (species counts, clock, RNG) can be exported and
// restored — the gillespie engines implement it, the CWC term-rewriting
// engine does not (its state is an arbitrary compartment tree). A restored
// engine must continue its trajectory bit-identically. Tasks over plain
// Simulators are still recoverable by deterministic replay from the seed;
// a snapshot just skips the replayed prefix.
type SnapshotSimulator interface {
	Simulator
	// Snapshot exports the engine's complete dynamic state.
	Snapshot() ([]byte, error)
	// Restore replaces the engine's dynamic state with a snapshot taken
	// from an engine over the same model.
	Restore([]byte) error
}

// Sample is one observation of one trajectory at an aligned instant
// k·Period. Samples from all trajectories at equal Index form a "cut".
type Sample struct {
	Traj  int
	Index int
	Time  float64
	State []int64
}

// Batch is one quantum's worth of samples from one trajectory, every
// State backed by a single flat arena: filling a batch costs one arena
// allocation however many samples the quantum crossed, and a recycled
// batch costs none.
//
// Ownership protocol: the producer fills the batch (RunQuantumBatch or
// Append), hands it downstream, and exactly one consumer calls Release
// after the last read of Samples. After Release neither the batch nor any
// Sample.State obtained from it may be touched — the arena is reused by
// the next GetBatch caller. Consumers that need a sample's state beyond
// the batch's lifetime must copy it (the window.Aligner does).
type Batch struct {
	Samples []Sample
	arena   []int64
}

var batchPool = sync.Pool{New: func() any { return new(Batch) }}

// GetBatch returns an empty batch from the shared pool.
func GetBatch() *Batch { return batchPool.Get().(*Batch) }

// Release empties the batch and returns it (arena included) to the shared
// pool. The caller must not retain the batch, its Samples slice, or any
// Sample.State backed by it.
func (b *Batch) Release() {
	b.Reset()
	batchPool.Put(b)
}

// Reset empties the batch, keeping its capacity, without returning it to
// the pool — for single-owner reuse across quanta.
func (b *Batch) Reset() {
	b.Samples = b.Samples[:0]
	b.arena = b.arena[:0]
}

// Append copies one sample into the batch, its state into the arena.
func (b *Batch) Append(s Sample) {
	b.add(s.Traj, s.Index, s.Time, s.State)
}

// add appends a sample whose state is copied into the arena. All samples
// of a batch must share one state width (true for a batch filled from one
// trajectory), which is what lets grow re-point earlier samples.
func (b *Batch) add(traj, idx int, t float64, state []int64) {
	ns := len(state)
	off := len(b.arena)
	if cap(b.arena) < off+ns {
		b.grow(off+ns, ns)
	}
	b.arena = b.arena[:off+ns]
	copy(b.arena[off:], state)
	b.Samples = append(b.Samples, Sample{
		Traj:  traj,
		Index: idx,
		Time:  t,
		State: b.arena[off : off+ns : off+ns],
	})
}

// grow relocates the arena to a larger backing array and re-points every
// emitted sample's State into it (samples are laid out contiguously:
// sample i occupies arena[i*ns : (i+1)*ns]).
func (b *Batch) grow(need, ns int) {
	newCap := 2*cap(b.arena) + need
	na := make([]int64, len(b.arena), newCap)
	copy(na, b.arena)
	b.arena = na
	for i := range b.Samples {
		off := i * ns
		b.Samples[i].State = na[off : off+ns : off+ns]
	}
}

// Task is one trajectory's simulation work, advanced one quantum at a time.
type Task struct {
	Traj    int
	End     float64
	Quantum float64
	Period  float64

	sim     Simulator
	nextIdx int
	lastIdx int
	dead    bool
	scratch []int64
}

// NewTask wraps a simulator into a task for trajectory traj. end is the
// simulated horizon, quantum the amount of simulated time advanced per
// RunQuantum call, and period the sampling interval τ. Samples are emitted
// at k·period for k = 0 .. floor(end/period).
func NewTask(traj int, s Simulator, end, quantum, period float64) (*Task, error) {
	if s == nil {
		return nil, errors.New("sim: nil simulator")
	}
	if end <= 0 || quantum <= 0 || period <= 0 {
		return nil, fmt.Errorf("sim: end, quantum and period must be positive (got %g, %g, %g)", end, quantum, period)
	}
	return &Task{
		Traj:    traj,
		End:     end,
		Quantum: quantum,
		Period:  period,
		sim:     s,
		lastIdx: int(math.Floor(end / period)),
		scratch: make([]int64, s.NumSpecies()),
	}, nil
}

// NumSamples returns the total number of samples the task will emit.
func (t *Task) NumSamples() int { return t.lastIdx + 1 }

// Done reports whether every sample has been emitted.
func (t *Task) Done() bool { return t.nextIdx > t.lastIdx }

// Dead reports whether the underlying system reached a dead state (no
// reaction can fire). A dead task still emits its remaining samples — the
// state is frozen forever — and then completes.
func (t *Task) Dead() bool { return t.dead }

// Time returns the simulator's current time.
func (t *Task) Time() float64 { return t.sim.Time() }

// Steps returns the number of reactions fired, when the simulator exposes
// it (both provided engines do); otherwise 0.
func (t *Task) Steps() uint64 {
	if s, ok := t.sim.(interface{ Steps() uint64 }); ok {
		return s.Steps()
	}
	return 0
}

// NextIndex returns the index of the next sample the task will emit —
// samples below it have already been delivered.
func (t *Task) NextIndex() int { return t.nextIdx }

// taskSnapVersion guards the Task checkpoint layout.
const taskSnapVersion = 1

// Snapshot captures the task's resume point — the next sample index, the
// dead flag and the simulator's full state — as an opaque checkpoint for
// the durable job store. ok is false (with no error) when the simulator
// does not implement SnapshotSimulator: such tasks are recovered by
// replaying the trajectory from its seed instead.
func (t *Task) Snapshot() (data []byte, ok bool, err error) {
	ss, ok := t.sim.(SnapshotSimulator)
	if !ok {
		return nil, false, nil
	}
	sim, err := ss.Snapshot()
	if err != nil {
		return nil, false, err
	}
	data = make([]byte, 0, 10+len(sim))
	data = append(data, taskSnapVersion)
	data = binary.LittleEndian.AppendUint64(data, uint64(t.nextIdx))
	var dead byte
	if t.dead {
		dead = 1
	}
	data = append(data, dead)
	data = append(data, sim...)
	return data, true, nil
}

// Restore rewinds a freshly built task (same trajectory, same spec) to a
// checkpoint taken by Snapshot: the simulator state, the dead flag and
// the next sample index are restored, so the next RunQuantum continues
// the trajectory bit-identically from the checkpoint.
func (t *Task) Restore(data []byte) error {
	ss, ok := t.sim.(SnapshotSimulator)
	if !ok {
		return errors.New("sim: simulator does not support snapshots")
	}
	if len(data) < 10 {
		return errors.New("sim: truncated task checkpoint")
	}
	if data[0] != taskSnapVersion {
		return fmt.Errorf("sim: task checkpoint version %d, want %d", data[0], taskSnapVersion)
	}
	nextIdx := int(binary.LittleEndian.Uint64(data[1:9]))
	if nextIdx < 0 || nextIdx > t.lastIdx+1 {
		return fmt.Errorf("sim: checkpoint sample index %d out of range (task has %d samples)", nextIdx, t.lastIdx+1)
	}
	if err := ss.Restore(data[10:]); err != nil {
		return err
	}
	t.nextIdx = nextIdx
	t.dead = data[9] != 0
	return nil
}

// RunQuantum advances the trajectory by one simulation quantum (or to the
// end time, whichever is closer), emitting every sample whose instant was
// crossed. It is a no-op on a completed task. Each emitted sample's State
// is a fresh allocation owned by the callee; use RunQuantumBatch for the
// allocation-free batched form.
func (t *Task) RunQuantum(emit func(Sample) error) error {
	return t.runQuantum(func() error {
		state := make([]int64, len(t.scratch))
		copy(state, t.scratch)
		return emit(Sample{
			Traj:  t.Traj,
			Index: t.nextIdx,
			Time:  float64(t.nextIdx) * t.Period,
			State: state,
		})
	})
}

// RunQuantumBatch advances the trajectory by one simulation quantum like
// RunQuantum, but gathers the quantum's samples into b — every state
// copied into the batch's shared arena, so the whole quantum costs at most
// one allocation (none once the arena has grown to the quantum's sample
// count). This is the batching entry point used by streaming consumers
// that ship one message per quantum rather than one per sample — the
// shared-memory pipeline's simulation farm and the job service's worker
// pool both route a quantum's samples through their collector in a single
// hop and recycle the batch afterwards.
//
// The emitted samples alias the batch arena, never the task's scratch
// state: they stay valid (and mutually independent) until the batch is
// Released or Reset.
func (t *Task) RunQuantumBatch(b *Batch) error {
	return t.runQuantum(func() error {
		b.add(t.Traj, t.nextIdx, float64(t.nextIdx)*t.Period, t.scratch)
		return nil
	})
}

// runQuantum advances the simulator by one quantum, invoking emitCurrent
// for every sample instant crossed. emitCurrent must publish the sample at
// index t.nextIdx from t.scratch; runQuantum advances nextIdx afterwards.
func (t *Task) runQuantum(emitCurrent func() error) error {
	if t.Done() {
		return nil
	}
	target := math.Min(t.sim.Time()+t.Quantum, t.End)
	for !t.dead && t.sim.Time() < target {
		// The current state holds on [Time, nextStepTime): snapshot it
		// before stepping, then emit the samples inside that interval.
		t.sim.Observe(t.scratch)
		if !t.sim.Step() {
			t.dead = true
			break
		}
		tAfter := t.sim.Time()
		// Emit all pending samples with instant strictly before tAfter
		// (the state in scratch holds on that half-open interval).
		for t.nextIdx <= t.lastIdx && float64(t.nextIdx)*t.Period < tAfter {
			if err := emitCurrent(); err != nil {
				return err
			}
			t.nextIdx++
		}
	}
	// A dead system's state is frozen: all remaining samples equal the
	// current state. Similarly, if the simulator landed exactly on the end
	// time, flush the samples at or before it.
	if t.dead || t.sim.Time() >= t.End {
		t.sim.Observe(t.scratch)
		limit := t.sim.Time()
		if t.dead {
			limit = math.Inf(1)
		}
		for t.nextIdx <= t.lastIdx && float64(t.nextIdx)*t.Period <= limit {
			if err := emitCurrent(); err != nil {
				return err
			}
			t.nextIdx++
		}
	}
	return nil
}
