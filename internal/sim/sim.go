// Package sim turns a stochastic simulation engine into quantum-based,
// restartable simulation tasks producing time-aligned samples.
//
// A Task owns one trajectory: a live simulator (either the flat Gillespie
// engine or the CWC term-rewriting engine — anything implementing
// Simulator), the trajectory's end time, the simulation quantum (how much
// simulated time one scheduling step advances) and the sampling period τ.
// Each RunQuantum call advances the simulator by one quantum and emits the
// samples whose nominal instants were crossed, using the exact SSA
// piecewise-constant state semantics (the state at time t is the state
// after the last reaction at or before t).
//
// Tasks are the unit of work dispatched to the simulation-engine farm: an
// unfinished task is rescheduled through the farm's feedback channel, which
// is what gives the pipeline its load-balancing behaviour on heavily uneven
// trajectories.
package sim

import (
	"errors"
	"fmt"
	"math"
)

// Simulator is the stepping contract shared by the SSA engines
// (gillespie.Direct, gillespie.NextReaction, cwc.Engine).
type Simulator interface {
	// Time returns the current simulation time.
	Time() float64
	// Step fires one reaction, returning false in a dead state.
	Step() bool
	// NumSpecies is the dimension of the observable vector.
	NumSpecies() int
	// Observe copies the current observable state into out
	// (len(out) == NumSpecies()).
	Observe(out []int64)
}

// Sample is one observation of one trajectory at an aligned instant
// k·Period. Samples from all trajectories at equal Index form a "cut".
type Sample struct {
	Traj  int
	Index int
	Time  float64
	State []int64
}

// Task is one trajectory's simulation work, advanced one quantum at a time.
type Task struct {
	Traj    int
	End     float64
	Quantum float64
	Period  float64

	sim     Simulator
	nextIdx int
	lastIdx int
	dead    bool
	scratch []int64
}

// NewTask wraps a simulator into a task for trajectory traj. end is the
// simulated horizon, quantum the amount of simulated time advanced per
// RunQuantum call, and period the sampling interval τ. Samples are emitted
// at k·period for k = 0 .. floor(end/period).
func NewTask(traj int, s Simulator, end, quantum, period float64) (*Task, error) {
	if s == nil {
		return nil, errors.New("sim: nil simulator")
	}
	if end <= 0 || quantum <= 0 || period <= 0 {
		return nil, fmt.Errorf("sim: end, quantum and period must be positive (got %g, %g, %g)", end, quantum, period)
	}
	return &Task{
		Traj:    traj,
		End:     end,
		Quantum: quantum,
		Period:  period,
		sim:     s,
		lastIdx: int(math.Floor(end / period)),
		scratch: make([]int64, s.NumSpecies()),
	}, nil
}

// NumSamples returns the total number of samples the task will emit.
func (t *Task) NumSamples() int { return t.lastIdx + 1 }

// Done reports whether every sample has been emitted.
func (t *Task) Done() bool { return t.nextIdx > t.lastIdx }

// Dead reports whether the underlying system reached a dead state (no
// reaction can fire). A dead task still emits its remaining samples — the
// state is frozen forever — and then completes.
func (t *Task) Dead() bool { return t.dead }

// Time returns the simulator's current time.
func (t *Task) Time() float64 { return t.sim.Time() }

// Steps returns the number of reactions fired, when the simulator exposes
// it (both provided engines do); otherwise 0.
func (t *Task) Steps() uint64 {
	if s, ok := t.sim.(interface{ Steps() uint64 }); ok {
		return s.Steps()
	}
	return 0
}

// RunQuantum advances the trajectory by one simulation quantum (or to the
// end time, whichever is closer), emitting every sample whose instant was
// crossed. It is a no-op on a completed task.
func (t *Task) RunQuantum(emit func(Sample) error) error {
	if t.Done() {
		return nil
	}
	target := math.Min(t.sim.Time()+t.Quantum, t.End)
	for !t.dead && t.sim.Time() < target {
		// The current state holds on [Time, nextStepTime): snapshot it
		// before stepping, then emit the samples inside that interval.
		t.sim.Observe(t.scratch)
		if !t.sim.Step() {
			t.dead = true
			break
		}
		tAfter := t.sim.Time()
		if err := t.emitUpTo(tAfter, emit); err != nil {
			return err
		}
	}
	// A dead system's state is frozen: all remaining samples equal the
	// current state. Similarly, if the simulator landed exactly on the end
	// time, flush the samples at or before it.
	if t.dead || t.sim.Time() >= t.End {
		t.sim.Observe(t.scratch)
		limit := t.sim.Time()
		if t.dead {
			limit = math.Inf(1)
		}
		for t.nextIdx <= t.lastIdx && float64(t.nextIdx)*t.Period <= limit {
			if err := t.emitOne(emit); err != nil {
				return err
			}
		}
	}
	return nil
}

// RunQuantumBatch advances the trajectory by one simulation quantum like
// RunQuantum, but gathers the quantum's samples into a slice (appending to
// buf, which may be nil or a recycled buffer) instead of invoking a
// callback per sample. This is the batching entry point used by streaming
// consumers that ship one message per quantum rather than one per sample —
// e.g. the job service's shared worker pool, which routes a whole quantum's
// worth of samples through the collector in a single hop.
func (t *Task) RunQuantumBatch(buf []Sample) ([]Sample, error) {
	err := t.RunQuantum(func(s Sample) error {
		buf = append(buf, s)
		return nil
	})
	return buf, err
}

// emitUpTo emits all pending samples with instant strictly before tAfter
// (the state in scratch holds on that half-open interval).
func (t *Task) emitUpTo(tAfter float64, emit func(Sample) error) error {
	for t.nextIdx <= t.lastIdx && float64(t.nextIdx)*t.Period < tAfter {
		if err := t.emitOne(emit); err != nil {
			return err
		}
	}
	return nil
}

func (t *Task) emitOne(emit func(Sample) error) error {
	state := make([]int64, len(t.scratch))
	copy(state, t.scratch)
	s := Sample{
		Traj:  t.Traj,
		Index: t.nextIdx,
		Time:  float64(t.nextIdx) * t.Period,
		State: state,
	}
	t.nextIdx++
	return emit(s)
}
