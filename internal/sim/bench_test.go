package sim

import "testing"

// BenchmarkQuantumBatch times one quantum of the batching hot path — 5
// samples gathered into a recycled arena-backed batch — on a fast fake
// simulator, isolating the task/batch overhead from SSA stepping cost.
func BenchmarkQuantumBatch(b *testing.B) {
	task, err := NewTask(0, &fakeSim{dt: 0.01}, 1e15, 5, 1)
	if err != nil {
		b.Fatal(err)
	}
	batch := GetBatch()
	defer batch.Release()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := task.RunQuantumBatch(batch); err != nil {
			b.Fatal(err)
		}
		batch.Reset()
	}
}

// BenchmarkQuantumCallback is the per-sample callback path (one State
// allocation per sample), for comparison with BenchmarkQuantumBatch.
func BenchmarkQuantumCallback(b *testing.B) {
	task, err := NewTask(0, &fakeSim{dt: 0.01}, 1e15, 5, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := task.RunQuantum(func(Sample) error { return nil }); err != nil {
			b.Fatal(err)
		}
	}
}
