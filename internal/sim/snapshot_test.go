package sim

import (
	"testing"

	"cwcflow/internal/gillespie"
	"cwcflow/internal/models"
)

// newDirectTask builds a task over a real (snapshotable) SSA engine.
func newDirectTask(t *testing.T, traj int, seed int64) *Task {
	t.Helper()
	d, err := gillespie.NewDirect(models.Neurospora(50), seed)
	if err != nil {
		t.Fatal(err)
	}
	task, err := NewTask(traj, d, 24, 0.5, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	return task
}

// sampleEqual compares two samples field by field, state included.
func sampleEqual(a, b Sample) bool {
	if a.Traj != b.Traj || a.Index != b.Index || a.Time != b.Time || len(a.State) != len(b.State) {
		return false
	}
	for i := range a.State {
		if a.State[i] != b.State[i] {
			return false
		}
	}
	return true
}

// TestTaskSnapshotResume: a task restored from a mid-run checkpoint emits
// exactly the samples the original task would have emitted from there.
func TestTaskSnapshotResume(t *testing.T) {
	ref := newDirectTask(t, 3, 11)
	all := collect(t, ref)

	orig := newDirectTask(t, 3, 11)
	var prefix []Sample
	quanta := 0
	for len(prefix) < len(all)/2 {
		if err := orig.RunQuantum(func(s Sample) error {
			prefix = append(prefix, s)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		quanta++
	}
	snap, ok, err := orig.Snapshot()
	if err != nil || !ok {
		t.Fatalf("Snapshot: ok=%v err=%v", ok, err)
	}
	if orig.NextIndex() != len(prefix) {
		t.Fatalf("NextIndex = %d after %d samples", orig.NextIndex(), len(prefix))
	}

	resumed := newDirectTask(t, 3, 11)
	if err := resumed.Restore(snap); err != nil {
		t.Fatal(err)
	}
	tail := collect(t, resumed)
	if len(prefix)+len(tail) != len(all) {
		t.Fatalf("prefix %d + tail %d != full run %d samples", len(prefix), len(tail), len(all))
	}
	for i, s := range tail {
		if !sampleEqual(s, all[len(prefix)+i]) {
			t.Fatalf("resumed sample %d = %+v, want %+v", i, s, all[len(prefix)+i])
		}
	}
}

// TestTaskSnapshotUnsupported: a task over a plain Simulator reports
// ok=false (recover-by-replay) and refuses Restore.
func TestTaskSnapshotUnsupported(t *testing.T) {
	task, err := NewTask(0, &fakeSim{dt: 0.1}, 1, 0.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if data, ok, err := task.Snapshot(); ok || err != nil || data != nil {
		t.Fatalf("Snapshot on plain simulator: data=%v ok=%v err=%v", data, ok, err)
	}
	if err := task.Restore([]byte{taskSnapVersion, 0, 0, 0, 0, 0, 0, 0, 0, 0}); err == nil {
		t.Fatal("Restore on plain simulator succeeded")
	}
}

// TestTaskRestoreRejectsCorrupt: truncated, wrong-version and
// out-of-range checkpoints fail cleanly.
func TestTaskRestoreRejectsCorrupt(t *testing.T) {
	orig := newDirectTask(t, 0, 5)
	if err := orig.RunQuantum(func(Sample) error { return nil }); err != nil {
		t.Fatal(err)
	}
	snap, ok, err := orig.Snapshot()
	if !ok || err != nil {
		t.Fatalf("Snapshot: ok=%v err=%v", ok, err)
	}
	fresh := newDirectTask(t, 0, 5)
	if err := fresh.Restore(snap[:5]); err == nil {
		t.Fatal("truncated checkpoint restored")
	}
	bad := append([]byte(nil), snap...)
	bad[0] = 99
	if err := fresh.Restore(bad); err == nil {
		t.Fatal("wrong-version checkpoint restored")
	}
	bad = append([]byte(nil), snap...)
	bad[1] = 0xff // nextIdx far beyond the task's sample count
	bad[2] = 0xff
	if err := fresh.Restore(bad); err == nil {
		t.Fatal("out-of-range checkpoint restored")
	}
	if err := fresh.Restore(snap); err != nil {
		t.Fatalf("valid checkpoint rejected: %v", err)
	}
}
