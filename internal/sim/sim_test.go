package sim

import (
	"math"
	"testing"
	"testing/quick"

	"cwcflow/internal/gillespie"
	"cwcflow/internal/models"
)

// fakeSim is a deterministic simulator: one reaction every dt, each
// incrementing the single observable by 1.
type fakeSim struct {
	t    float64
	dt   float64
	x    int64
	maxX int64 // dead once x reaches maxX (0 = never)
}

func (f *fakeSim) Time() float64 { return f.t }
func (f *fakeSim) Step() bool {
	if f.maxX > 0 && f.x >= f.maxX {
		return false
	}
	f.t += f.dt
	f.x++
	return true
}
func (f *fakeSim) NumSpecies() int     { return 1 }
func (f *fakeSim) Observe(out []int64) { out[0] = f.x }

func collect(t *testing.T, task *Task) []Sample {
	t.Helper()
	var out []Sample
	for !task.Done() {
		if err := task.RunQuantum(func(s Sample) error {
			out = append(out, s)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	return out
}

func TestNewTaskValidation(t *testing.T) {
	if _, err := NewTask(0, nil, 1, 1, 1); err == nil {
		t.Fatal("nil simulator accepted")
	}
	bad := [][3]float64{{0, 1, 1}, {1, 0, 1}, {1, 1, 0}, {-1, 1, 1}}
	for _, b := range bad {
		if _, err := NewTask(0, &fakeSim{dt: 1}, b[0], b[1], b[2]); err == nil {
			t.Fatalf("accepted end=%g quantum=%g period=%g", b[0], b[1], b[2])
		}
	}
}

func TestSampleCountAndTimes(t *testing.T) {
	task, err := NewTask(3, &fakeSim{dt: 0.3}, 10, 2.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if task.NumSamples() != 11 {
		t.Fatalf("NumSamples = %d, want 11", task.NumSamples())
	}
	samples := collect(t, task)
	if len(samples) != 11 {
		t.Fatalf("len(samples) = %d, want 11", len(samples))
	}
	for k, s := range samples {
		if s.Index != k {
			t.Fatalf("samples[%d].Index = %d", k, s.Index)
		}
		if s.Time != float64(k) {
			t.Fatalf("samples[%d].Time = %g", k, s.Time)
		}
		if s.Traj != 3 {
			t.Fatalf("samples[%d].Traj = %d", k, s.Traj)
		}
	}
}

func TestPiecewiseConstantSemantics(t *testing.T) {
	// Steps at t=0.3, 0.6, 0.9, ... x increments at each. Sample at k=1
	// (t=1.0): the last step at or before 1.0 is at 0.9, after which x=3.
	task, err := NewTask(0, &fakeSim{dt: 0.3}, 2, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	samples := collect(t, task)
	if got := samples[0].State[0]; got != 0 {
		t.Fatalf("sample at t=0: x = %d, want 0", got)
	}
	if got := samples[1].State[0]; got != 3 {
		t.Fatalf("sample at t=1: x = %d, want 3 (steps at .3 .6 .9)", got)
	}
	if got := samples[2].State[0]; got != 6 {
		t.Fatalf("sample at t=2: x = %d, want 6", got)
	}
}

func TestQuantumGranularityDoesNotChangeSamples(t *testing.T) {
	run := func(quantum float64) []Sample {
		task, err := NewTask(0, &fakeSim{dt: 0.37}, 20, quantum, 1)
		if err != nil {
			t.Fatal(err)
		}
		return collect(t, task)
	}
	ref := run(20) // single quantum
	for _, q := range []float64{0.5, 1, 3.3, 7} {
		got := run(q)
		if len(got) != len(ref) {
			t.Fatalf("quantum %g: %d samples, want %d", q, len(got), len(ref))
		}
		for i := range ref {
			if got[i].State[0] != ref[i].State[0] {
				t.Fatalf("quantum %g: sample %d = %d, want %d", q, i, got[i].State[0], ref[i].State[0])
			}
		}
	}
}

func TestDeadSystemEmitsFrozenSamples(t *testing.T) {
	// Dies after 4 steps (t=2.0, x=4); remaining samples must all be 4.
	task, err := NewTask(0, &fakeSim{dt: 0.5, maxX: 4}, 10, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	samples := collect(t, task)
	if len(samples) != 11 {
		t.Fatalf("len = %d, want 11", len(samples))
	}
	if !task.Dead() {
		t.Fatal("task not marked dead")
	}
	for k := 2; k <= 10; k++ {
		if samples[k].State[0] != 4 {
			t.Fatalf("frozen sample %d = %d, want 4", k, samples[k].State[0])
		}
	}
}

func TestRunQuantumAdvancesByQuantum(t *testing.T) {
	task, err := NewTask(0, &fakeSim{dt: 0.1}, 100, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := task.RunQuantum(func(Sample) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if task.Time() < 5 || task.Time() > 5.2 {
		t.Fatalf("after one quantum Time = %g, want ~5", task.Time())
	}
	if task.Done() {
		t.Fatal("task done after one of twenty quanta")
	}
}

func TestDoneTaskIsNoOp(t *testing.T) {
	task, err := NewTask(0, &fakeSim{dt: 0.5}, 2, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	collect(t, task)
	called := false
	if err := task.RunQuantum(func(Sample) error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Fatal("completed task emitted another sample")
	}
}

func TestStatesAreIndependentCopies(t *testing.T) {
	task, err := NewTask(0, &fakeSim{dt: 0.4}, 5, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	samples := collect(t, task)
	seen := map[int64]bool{}
	for _, s := range samples {
		seen[s.State[0]] = true
	}
	if len(seen) < 3 {
		t.Fatal("sample states alias a shared buffer (all equal)")
	}
}

func TestWithRealEngines(t *testing.T) {
	// Both engine families must satisfy Simulator and produce exactly the
	// expected sample count on the Neurospora model.
	sys := models.Neurospora(20)
	d, err := gillespie.NewDirect(sys, 5)
	if err != nil {
		t.Fatal(err)
	}
	task, err := NewTask(0, d, 24, 6, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	samples := collect(t, task)
	if len(samples) != 49 {
		t.Fatalf("samples = %d, want 49", len(samples))
	}
	if task.Steps() == 0 {
		t.Fatal("engine reported zero steps")
	}
	// Sanity: M stays non-negative and the trajectory moved.
	moved := false
	for _, s := range samples {
		if s.State[models.NeuroM] < 0 {
			t.Fatal("negative count sampled")
		}
		if s.State[models.NeuroM] != samples[0].State[models.NeuroM] {
			moved = true
		}
	}
	if !moved {
		t.Fatal("trajectory never changed")
	}
}

// Property: for any (end, quantum, period) the task emits exactly
// floor(end/period)+1 samples with strictly increasing indices.
func TestProperty_ExactSampleSchedule(t *testing.T) {
	f := func(endRaw, quantumRaw, periodRaw, dtRaw uint8) bool {
		end := float64(endRaw%50) + 1
		quantum := float64(quantumRaw%20)*0.5 + 0.5
		period := float64(periodRaw%10)*0.3 + 0.2
		dt := float64(dtRaw%10)*0.07 + 0.05
		task, err := NewTask(0, &fakeSim{dt: dt}, end, quantum, period)
		if err != nil {
			return false
		}
		want := int(math.Floor(end/period)) + 1
		var got []Sample
		guard := 0
		for !task.Done() {
			if guard++; guard > 100000 {
				return false
			}
			if err := task.RunQuantum(func(s Sample) error {
				got = append(got, s)
				return nil
			}); err != nil {
				return false
			}
		}
		if len(got) != want {
			return false
		}
		for i, s := range got {
			if s.Index != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// collectBatched drains a task through RunQuantumBatch, copying each
// batch's samples out before the batch is recycled (as a real consumer
// must).
func collectBatched(t *testing.T, task *Task) []Sample {
	t.Helper()
	var out []Sample
	for !task.Done() {
		b := GetBatch()
		if err := task.RunQuantumBatch(b); err != nil {
			t.Fatal(err)
		}
		for _, s := range b.Samples {
			out = append(out, Sample{
				Traj:  s.Traj,
				Index: s.Index,
				Time:  s.Time,
				State: append([]int64(nil), s.State...),
			})
		}
		b.Release()
	}
	return out
}

// TestBatchMatchesCallback: RunQuantumBatch must emit exactly the samples
// RunQuantum does, for identical simulators.
func TestBatchMatchesCallback(t *testing.T) {
	mk := func() *Task {
		task, err := NewTask(2, &fakeSim{dt: 0.37}, 20, 3.3, 1)
		if err != nil {
			t.Fatal(err)
		}
		return task
	}
	ref := collect(t, mk())
	got := collectBatched(t, mk())
	if len(got) != len(ref) {
		t.Fatalf("batched emitted %d samples, callback %d", len(got), len(ref))
	}
	for i := range ref {
		if got[i].Traj != ref[i].Traj || got[i].Index != ref[i].Index ||
			got[i].Time != ref[i].Time || got[i].State[0] != ref[i].State[0] {
			t.Fatalf("sample %d differs: batched %+v, callback %+v", i, got[i], ref[i])
		}
	}
}

// TestBatchSampleOnQuantumAndEndBoundary: a sample instant landing exactly
// on a quantum boundary (and on the end time itself) must be emitted
// exactly once, in the right quantum.
func TestBatchSampleOnQuantumAndEndBoundary(t *testing.T) {
	// dt=0.5 → the simulator lands exactly on every sample instant and on
	// end; quantum = period = 1 → every boundary coincides.
	task, err := NewTask(0, &fakeSim{dt: 0.5}, 4, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	var perQuantum []int
	var all []Sample
	for !task.Done() {
		b := GetBatch()
		if err := task.RunQuantumBatch(b); err != nil {
			t.Fatal(err)
		}
		perQuantum = append(perQuantum, len(b.Samples))
		for _, s := range b.Samples {
			all = append(all, Sample{Index: s.Index, Time: s.Time, State: append([]int64(nil), s.State...)})
		}
		b.Release()
	}
	if len(all) != 5 {
		t.Fatalf("emitted %d samples, want 5 (0,1,2,3,4)", len(all))
	}
	for i, s := range all {
		if s.Index != i || s.Time != float64(i) {
			t.Fatalf("sample %d: index %d time %g", i, s.Index, s.Time)
		}
	}
	// The final quantum must flush the end-boundary sample (index 4,
	// t=4.0) even though no reaction strictly after t=4 was fired.
	if last := perQuantum[len(perQuantum)-1]; last == 0 {
		t.Fatal("end-boundary quantum emitted no samples")
	}
}

// TestBatchDeadStateFreeze: a dying simulator's frozen tail must be
// replayed into the batch — every remaining sample carrying the frozen
// state — and the task must finish in that same quantum.
func TestBatchDeadStateFreeze(t *testing.T) {
	task, err := NewTask(0, &fakeSim{dt: 0.5, maxX: 4}, 10, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	samples := collectBatched(t, task)
	if !task.Dead() {
		t.Fatal("task not marked dead")
	}
	if len(samples) != 11 {
		t.Fatalf("len = %d, want 11", len(samples))
	}
	for k := 2; k <= 10; k++ {
		if samples[k].State[0] != 4 {
			t.Fatalf("frozen sample %d = %d, want 4", k, samples[k].State[0])
		}
	}
}

// TestBatchSamplesDoNotAliasScratch: emitted samples must not share
// mutable backing with the task's scratch state or with each other —
// advancing the task further must never mutate previously emitted
// samples while their batch is alive.
func TestBatchSamplesDoNotAliasScratch(t *testing.T) {
	task, err := NewTask(0, &fakeSim{dt: 0.1}, 100, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	b := GetBatch()
	if err := task.RunQuantumBatch(b); err != nil {
		t.Fatal(err)
	}
	if len(b.Samples) < 2 {
		t.Fatalf("want ≥2 samples in first quantum, got %d", len(b.Samples))
	}
	snapshot := make([]int64, len(b.Samples))
	for i, s := range b.Samples {
		snapshot[i] = s.State[0]
	}
	// Advance the task with a second batch: scratch mutates heavily.
	b2 := GetBatch()
	if err := task.RunQuantumBatch(b2); err != nil {
		t.Fatal(err)
	}
	for i, s := range b.Samples {
		if s.State[0] != snapshot[i] {
			t.Fatalf("sample %d mutated from %d to %d after further quanta (aliases scratch)", i, snapshot[i], s.State[0])
		}
	}
	// Samples within one batch must be mutually independent regions.
	b.Samples[0].State[0] = -999
	if b.Samples[1].State[0] == -999 {
		t.Fatal("samples within a batch share a state region")
	}
	b.Release()
	b2.Release()
}

// TestBatchArenaGrowthRepoints: when the arena grows mid-quantum (many
// samples), earlier samples must be re-pointed, staying readable and
// contiguous.
func TestBatchArenaGrowthRepoints(t *testing.T) {
	// Dead at x=1: the flush emits all 1001 remaining samples in one
	// quantum, forcing repeated arena growth.
	task, err := NewTask(0, &fakeSim{dt: 1, maxX: 1}, 1000, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	b := GetBatch()
	defer b.Release()
	for !task.Done() {
		if err := task.RunQuantumBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	if len(b.Samples) != 1001 {
		t.Fatalf("emitted %d samples, want 1001", len(b.Samples))
	}
	for i, s := range b.Samples {
		if s.Index != i {
			t.Fatalf("sample %d has index %d", i, s.Index)
		}
		if i > 0 && s.State[0] != 1 {
			t.Fatalf("sample %d state = %d, want frozen 1", i, s.State[0])
		}
	}
}

// TestBatchReuseAllocationFree pins the steady-state contract: driving a
// task through a reused batch allocates nothing once the arena has grown.
func TestBatchReuseAllocationFree(t *testing.T) {
	task, err := NewTask(0, &fakeSim{dt: 0.01}, 1e12, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	b := GetBatch()
	defer b.Release()
	// Warm up the arena.
	if err := task.RunQuantumBatch(b); err != nil {
		t.Fatal(err)
	}
	b.Reset()
	if avg := testing.AllocsPerRun(100, func() {
		if err := task.RunQuantumBatch(b); err != nil {
			t.Fatal(err)
		}
		b.Reset()
	}); avg != 0 {
		t.Fatalf("RunQuantumBatch allocates %.1f objects per quantum with a reused batch, want 0", avg)
	}
}
