package sim

import (
	"math"
	"testing"
	"testing/quick"

	"cwcflow/internal/gillespie"
	"cwcflow/internal/models"
)

// fakeSim is a deterministic simulator: one reaction every dt, each
// incrementing the single observable by 1.
type fakeSim struct {
	t    float64
	dt   float64
	x    int64
	maxX int64 // dead once x reaches maxX (0 = never)
}

func (f *fakeSim) Time() float64 { return f.t }
func (f *fakeSim) Step() bool {
	if f.maxX > 0 && f.x >= f.maxX {
		return false
	}
	f.t += f.dt
	f.x++
	return true
}
func (f *fakeSim) NumSpecies() int     { return 1 }
func (f *fakeSim) Observe(out []int64) { out[0] = f.x }

func collect(t *testing.T, task *Task) []Sample {
	t.Helper()
	var out []Sample
	for !task.Done() {
		if err := task.RunQuantum(func(s Sample) error {
			out = append(out, s)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	return out
}

func TestNewTaskValidation(t *testing.T) {
	if _, err := NewTask(0, nil, 1, 1, 1); err == nil {
		t.Fatal("nil simulator accepted")
	}
	bad := [][3]float64{{0, 1, 1}, {1, 0, 1}, {1, 1, 0}, {-1, 1, 1}}
	for _, b := range bad {
		if _, err := NewTask(0, &fakeSim{dt: 1}, b[0], b[1], b[2]); err == nil {
			t.Fatalf("accepted end=%g quantum=%g period=%g", b[0], b[1], b[2])
		}
	}
}

func TestSampleCountAndTimes(t *testing.T) {
	task, err := NewTask(3, &fakeSim{dt: 0.3}, 10, 2.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if task.NumSamples() != 11 {
		t.Fatalf("NumSamples = %d, want 11", task.NumSamples())
	}
	samples := collect(t, task)
	if len(samples) != 11 {
		t.Fatalf("len(samples) = %d, want 11", len(samples))
	}
	for k, s := range samples {
		if s.Index != k {
			t.Fatalf("samples[%d].Index = %d", k, s.Index)
		}
		if s.Time != float64(k) {
			t.Fatalf("samples[%d].Time = %g", k, s.Time)
		}
		if s.Traj != 3 {
			t.Fatalf("samples[%d].Traj = %d", k, s.Traj)
		}
	}
}

func TestPiecewiseConstantSemantics(t *testing.T) {
	// Steps at t=0.3, 0.6, 0.9, ... x increments at each. Sample at k=1
	// (t=1.0): the last step at or before 1.0 is at 0.9, after which x=3.
	task, err := NewTask(0, &fakeSim{dt: 0.3}, 2, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	samples := collect(t, task)
	if got := samples[0].State[0]; got != 0 {
		t.Fatalf("sample at t=0: x = %d, want 0", got)
	}
	if got := samples[1].State[0]; got != 3 {
		t.Fatalf("sample at t=1: x = %d, want 3 (steps at .3 .6 .9)", got)
	}
	if got := samples[2].State[0]; got != 6 {
		t.Fatalf("sample at t=2: x = %d, want 6", got)
	}
}

func TestQuantumGranularityDoesNotChangeSamples(t *testing.T) {
	run := func(quantum float64) []Sample {
		task, err := NewTask(0, &fakeSim{dt: 0.37}, 20, quantum, 1)
		if err != nil {
			t.Fatal(err)
		}
		return collect(t, task)
	}
	ref := run(20) // single quantum
	for _, q := range []float64{0.5, 1, 3.3, 7} {
		got := run(q)
		if len(got) != len(ref) {
			t.Fatalf("quantum %g: %d samples, want %d", q, len(got), len(ref))
		}
		for i := range ref {
			if got[i].State[0] != ref[i].State[0] {
				t.Fatalf("quantum %g: sample %d = %d, want %d", q, i, got[i].State[0], ref[i].State[0])
			}
		}
	}
}

func TestDeadSystemEmitsFrozenSamples(t *testing.T) {
	// Dies after 4 steps (t=2.0, x=4); remaining samples must all be 4.
	task, err := NewTask(0, &fakeSim{dt: 0.5, maxX: 4}, 10, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	samples := collect(t, task)
	if len(samples) != 11 {
		t.Fatalf("len = %d, want 11", len(samples))
	}
	if !task.Dead() {
		t.Fatal("task not marked dead")
	}
	for k := 2; k <= 10; k++ {
		if samples[k].State[0] != 4 {
			t.Fatalf("frozen sample %d = %d, want 4", k, samples[k].State[0])
		}
	}
}

func TestRunQuantumAdvancesByQuantum(t *testing.T) {
	task, err := NewTask(0, &fakeSim{dt: 0.1}, 100, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := task.RunQuantum(func(Sample) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if task.Time() < 5 || task.Time() > 5.2 {
		t.Fatalf("after one quantum Time = %g, want ~5", task.Time())
	}
	if task.Done() {
		t.Fatal("task done after one of twenty quanta")
	}
}

func TestDoneTaskIsNoOp(t *testing.T) {
	task, err := NewTask(0, &fakeSim{dt: 0.5}, 2, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	collect(t, task)
	called := false
	if err := task.RunQuantum(func(Sample) error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Fatal("completed task emitted another sample")
	}
}

func TestStatesAreIndependentCopies(t *testing.T) {
	task, err := NewTask(0, &fakeSim{dt: 0.4}, 5, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	samples := collect(t, task)
	seen := map[int64]bool{}
	for _, s := range samples {
		seen[s.State[0]] = true
	}
	if len(seen) < 3 {
		t.Fatal("sample states alias a shared buffer (all equal)")
	}
}

func TestWithRealEngines(t *testing.T) {
	// Both engine families must satisfy Simulator and produce exactly the
	// expected sample count on the Neurospora model.
	sys := models.Neurospora(20)
	d, err := gillespie.NewDirect(sys, 5)
	if err != nil {
		t.Fatal(err)
	}
	task, err := NewTask(0, d, 24, 6, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	samples := collect(t, task)
	if len(samples) != 49 {
		t.Fatalf("samples = %d, want 49", len(samples))
	}
	if task.Steps() == 0 {
		t.Fatal("engine reported zero steps")
	}
	// Sanity: M stays non-negative and the trajectory moved.
	moved := false
	for _, s := range samples {
		if s.State[models.NeuroM] < 0 {
			t.Fatal("negative count sampled")
		}
		if s.State[models.NeuroM] != samples[0].State[models.NeuroM] {
			moved = true
		}
	}
	if !moved {
		t.Fatal("trajectory never changed")
	}
}

// Property: for any (end, quantum, period) the task emits exactly
// floor(end/period)+1 samples with strictly increasing indices.
func TestProperty_ExactSampleSchedule(t *testing.T) {
	f := func(endRaw, quantumRaw, periodRaw, dtRaw uint8) bool {
		end := float64(endRaw%50) + 1
		quantum := float64(quantumRaw%20)*0.5 + 0.5
		period := float64(periodRaw%10)*0.3 + 0.2
		dt := float64(dtRaw%10)*0.07 + 0.05
		task, err := NewTask(0, &fakeSim{dt: dt}, end, quantum, period)
		if err != nil {
			return false
		}
		want := int(math.Floor(end/period)) + 1
		var got []Sample
		guard := 0
		for !task.Done() {
			if guard++; guard > 100000 {
				return false
			}
			if err := task.RunQuantum(func(s Sample) error {
				got = append(got, s)
				return nil
			}); err != nil {
				return false
			}
		}
		if len(got) != want {
			return false
		}
		for i, s := range got {
			if s.Index != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
