package platform

import (
	"math"
	"testing"
	"testing/quick"
)

// uniformWorkload has no noise and negligible analysis cost: the pure
// compute-bound case with analytic makespan.
func uniformWorkload(traj, quanta int) Workload {
	return Workload{
		Trajectories:      traj,
		Quanta:            quanta,
		SamplesPerQuantum: 1,
		QuantumCost:       1.0,
		AlignPerSample:    1e-12,
		StatPerTraj:       1e-12,
		Seed:              1,
	}
}

func smpDeploy(workers, engines int) Deployment {
	return Deployment{
		SimWorkerHosts: SpreadWorkers([]int{0}, workers),
		MasterHost:     0,
		StatEngines:    engines,
	}
}

func TestUniformPerfectBalance(t *testing.T) {
	// 8 trajectories x 5 quanta of cost 1 on 4 workers with enough cores:
	// ideal makespan = 40/4 = 10.
	p := SharedMemory(16)
	m, err := Simulate(p, uniformWorkload(8, 5), smpDeploy(4, 1))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Makespan-10) > 0.01 {
		t.Fatalf("makespan = %g, want ~10", m.Makespan)
	}
	if math.Abs(m.SimBusy-40) > 1e-9 {
		t.Fatalf("SimBusy = %g, want 40", m.SimBusy)
	}
	if m.Cuts != 5 {
		t.Fatalf("cuts = %d, want 5", m.Cuts)
	}
}

func TestSingleWorkerIsSerial(t *testing.T) {
	p := SharedMemory(4)
	m, err := Simulate(p, uniformWorkload(6, 3), smpDeploy(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Makespan-18) > 0.01 {
		t.Fatalf("makespan = %g, want ~18", m.Makespan)
	}
}

func TestSpeedupScalesWithWorkers(t *testing.T) {
	p := SharedMemory(64)
	w := NeurosporaWorkload(128, 40, 10, 7)
	base, err := Simulate(p, w, smpDeploy(1, 4))
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for _, n := range []int{2, 4, 8, 16, 32} {
		m, err := Simulate(p, w, smpDeploy(n, 4))
		if err != nil {
			t.Fatal(err)
		}
		sp := base.Makespan / m.Makespan
		if sp < prev-0.2 {
			t.Fatalf("speedup dropped: %g workers → %.2f (prev %.2f)", float64(n), sp, prev)
		}
		if sp > float64(n)+0.01 {
			t.Fatalf("superlinear speedup %g on %d workers", sp, n)
		}
		prev = sp
	}
	if prev < 20 {
		t.Fatalf("32-worker speedup = %.2f, want >= 20 (near-ideal case)", prev)
	}
}

func TestStatEngineBottleneck(t *testing.T) {
	// With one stat engine and heavy per-cut analysis, adding sim workers
	// stops helping; 4 stat engines relieve the bottleneck (the Fig. 3
	// effect).
	p := SharedMemory(64)
	w := NeurosporaWorkload(1024, 20, 10, 3)
	one, err := Simulate(p, w, smpDeploy(30, 1))
	if err != nil {
		t.Fatal(err)
	}
	four, err := Simulate(p, w, smpDeploy(30, 4))
	if err != nil {
		t.Fatal(err)
	}
	if four.Makespan >= one.Makespan {
		t.Fatalf("4 stat engines (%.2fs) not faster than 1 (%.2fs)", four.Makespan, one.Makespan)
	}
	// The single-engine run must be analysis-bound: makespan close to the
	// serial stat time.
	serialStat := w.statCostPerCut() * float64(w.Quanta*w.SamplesPerQuantum)
	if one.Makespan < serialStat*0.95 {
		t.Fatalf("single-engine makespan %.2f below serial stat floor %.2f", one.Makespan, serialStat)
	}
}

func TestAlignerIsSequentialFloor(t *testing.T) {
	w := uniformWorkload(4, 10)
	w.AlignPerSample = 5.0 // absurdly expensive alignment
	p := SharedMemory(32)
	m, err := Simulate(p, w, smpDeploy(8, 4))
	if err != nil {
		t.Fatal(err)
	}
	// 4 trajectories x 10 quanta x 1 sample x 5 s, strictly sequential.
	if m.Makespan < 200 {
		t.Fatalf("makespan %.2f below the sequential alignment floor 200", m.Makespan)
	}
}

func TestNetworkDelaySlowsRemoteWorkers(t *testing.T) {
	w := uniformWorkload(8, 5)
	w.SampleBytes = 1 << 20 // 1 MiB per sample to make bandwidth visible
	local := Platform{Hosts: []Host{{Name: "a", Cores: 8, Speed: 1}, {Name: "b", Cores: 8, Speed: 1}}}
	remote := Platform{
		Hosts: local.Hosts,
		LinkFn: func(from, to int) Link {
			return Link{LatencySec: 50e-3, BytesPerSec: 10e6}
		},
	}
	dep := Deployment{
		SimWorkerHosts: []int{1, 1, 1, 1}, // all workers on host b
		MasterHost:     0,
		StatEngines:    1,
	}
	mLocal, err := Simulate(local, w, dep)
	if err != nil {
		t.Fatal(err)
	}
	mRemote, err := Simulate(remote, w, dep)
	if err != nil {
		t.Fatal(err)
	}
	if mRemote.Makespan <= mLocal.Makespan {
		t.Fatalf("network-crossing run (%.3f) not slower than local (%.3f)", mRemote.Makespan, mLocal.Makespan)
	}
	if mRemote.NetBytes == 0 || mLocal.NetBytes != 0 {
		t.Fatalf("net accounting wrong: local %d, remote %d", mLocal.NetBytes, mRemote.NetBytes)
	}
}

func TestCoreContentionBetweenStages(t *testing.T) {
	// On a 4-core host, 4 sim workers + aligner + stat engine contend for
	// cores: the makespan must exceed the pure-sim ideal (Fig. 5's
	// sub-linear speedup on the quad-core VM).
	w := NeurosporaWorkload(64, 30, 10, 5)
	w.AlignPerSample = 0.02 // service stages at ~20% of the sim work
	w.StatPerTraj = 5e-3
	p := SharedMemory(4)
	m4, err := Simulate(p, w, smpDeploy(4, 1))
	if err != nil {
		t.Fatal(err)
	}
	m1, err := Simulate(p, w, smpDeploy(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	sp := m1.Makespan / m4.Makespan
	if sp >= 3.9 {
		t.Fatalf("speedup %g on 4 cores with contention: expected visibly sub-linear", sp)
	}
	if sp < 2 {
		t.Fatalf("speedup %g unreasonably poor", sp)
	}
}

func TestFasterHostsFinishSooner(t *testing.T) {
	w := uniformWorkload(16, 4)
	slow := Platform{Hosts: []Host{{Name: "s", Cores: 4, Speed: 1}}}
	fast := Platform{Hosts: []Host{{Name: "f", Cores: 4, Speed: 2}}}
	dep := smpDeploy(4, 1)
	ms, err := Simulate(slow, w, dep)
	if err != nil {
		t.Fatal(err)
	}
	mf, err := Simulate(fast, w, dep)
	if err != nil {
		t.Fatal(err)
	}
	ratio := ms.Makespan / mf.Makespan
	if math.Abs(ratio-2) > 0.05 {
		t.Fatalf("speed-2 host ratio = %g, want ~2", ratio)
	}
}

func TestDeterminism(t *testing.T) {
	p := InfinibandCluster(4, 8)
	w := NeurosporaWorkload(64, 10, 10, 42)
	dep := Deployment{
		SimWorkerHosts: WorkersPerHost([]int{0, 1, 2, 3}, 4),
		MasterHost:     0,
		StatEngines:    4,
	}
	a, err := Simulate(p, w, dep)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(p, w, dep)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same inputs, different metrics: %+v vs %+v", a, b)
	}
}

func TestValidationErrors(t *testing.T) {
	p := SharedMemory(4)
	good := uniformWorkload(2, 2)
	cases := []struct {
		name string
		w    Workload
		d    Deployment
		p    Platform
	}{
		{"no trajectories", Workload{Quanta: 1, SamplesPerQuantum: 1, QuantumCost: 1}, smpDeploy(1, 1), p},
		{"no cost", Workload{Trajectories: 1, Quanta: 1, SamplesPerQuantum: 1}, smpDeploy(1, 1), p},
		{"no workers", good, Deployment{MasterHost: 0, StatEngines: 1}, p},
		{"bad worker host", good, Deployment{SimWorkerHosts: []int{7}, StatEngines: 1}, p},
		{"bad master", good, Deployment{SimWorkerHosts: []int{0}, MasterHost: 9, StatEngines: 1}, p},
		{"no stat engines", good, Deployment{SimWorkerHosts: []int{0}}, p},
		{"no hosts", good, smpDeploy(1, 1), Platform{}},
	}
	for _, tc := range cases {
		if _, err := Simulate(tc.p, tc.w, tc.d); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestWorkloadHelpers(t *testing.T) {
	if got := SpreadWorkers([]int{0, 1}, 5); len(got) != 5 || got[4] != 0 {
		t.Fatalf("SpreadWorkers = %v", got)
	}
	if got := WorkersPerHost([]int{2, 3}, 2); len(got) != 4 || got[0] != 2 || got[3] != 3 {
		t.Fatalf("WorkersPerHost = %v", got)
	}
	w := NeurosporaWorkload(10, 5, 10, 1)
	if w.statCostPerCut() <= w.StatBase {
		t.Fatal("stat cost must grow with trajectories")
	}
}

// Property: makespan respects the standard scheduling lower bounds:
// total-sim-work/capacity and the longest trajectory chain.
func TestProperty_MakespanLowerBounds(t *testing.T) {
	f := func(seed int64, trajRaw, quantaRaw, workersRaw uint8) bool {
		traj := int(trajRaw%30) + 1
		quanta := int(quantaRaw%10) + 1
		workers := int(workersRaw%8) + 1
		w := Workload{
			Trajectories:      traj,
			Quanta:            quanta,
			SamplesPerQuantum: 2,
			QuantumCost:       0.5,
			TrajSigma:         0.4,
			QuantumSigma:      0.3,
			AlignPerSample:    1e-9,
			StatPerTraj:       1e-9,
			Seed:              seed,
		}
		p := SharedMemory(workers + 2)
		m, err := Simulate(p, w, smpDeploy(workers, 1))
		if err != nil {
			return false
		}
		if m.Makespan < m.SimBusy/float64(workers)-1e-6 {
			return false
		}
		// Longest chain: a trajectory's quanta are serial.
		return m.Makespan >= 0 && m.SimBusy > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestStaticPartitionNeverBeatsOnDemand(t *testing.T) {
	// With uneven trajectories, host-local scheduling (the distributed
	// deployment) suffers stragglers that global on-demand avoids.
	p := InfinibandCluster(4, 4)
	w := NeurosporaWorkload(64, 20, 10, 9)
	base := Deployment{
		SimWorkerHosts: WorkersPerHost([]int{0, 1, 2, 3}, 4),
		MasterHost:     0,
		StatEngines:    4,
	}
	static := base
	static.StaticPartition = true
	mOn, err := Simulate(p, w, base)
	if err != nil {
		t.Fatal(err)
	}
	mStatic, err := Simulate(p, w, static)
	if err != nil {
		t.Fatal(err)
	}
	// Allow scheduling noise: static must never win by more than 2%.
	if mStatic.Makespan < mOn.Makespan*0.98 {
		t.Fatalf("static partition (%.3f) beat on-demand (%.3f)", mStatic.Makespan, mOn.Makespan)
	}
}

func TestLognormalMeanIsOne(t *testing.T) {
	for _, sigma := range []float64{0.1, 0.5, 1.0} {
		sum := 0.0
		const n = 200000
		for i := 0; i < n; i++ {
			sum += lognormal(hash3(1, uint64(i), 7), sigma)
		}
		mean := sum / n
		if math.Abs(mean-1) > 0.03 {
			t.Fatalf("sigma=%g: mean = %g, want ~1", sigma, mean)
		}
	}
	if lognormal(123, 0) != 1 {
		t.Fatal("sigma=0 must be exactly 1")
	}
}

func BenchmarkSimulate1024x32(b *testing.B) {
	p := SharedMemory(64)
	w := NeurosporaWorkload(1024, 20, 10, 1)
	dep := smpDeploy(32, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(p, w, dep); err != nil {
			b.Fatal(err)
		}
	}
}
