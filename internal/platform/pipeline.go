package platform

import (
	"fmt"
	"math"
)

// Host is a modelled machine: cores execute work at Speed times the
// reference-core rate.
type Host struct {
	Name  string
	Cores int
	Speed float64
}

// Link models a network edge: per-message latency plus size/bandwidth
// serialisation delay. BytesPerSec <= 0 means infinite bandwidth.
type Link struct {
	LatencySec  float64
	BytesPerSec float64
}

// Platform is a set of hosts and the links between them. LinkFn returns
// the link from host i to host j; nil means everything is local
// (shared memory, zero cost).
type Platform struct {
	Hosts  []Host
	LinkFn func(from, to int) Link
}

func (p Platform) link(from, to int) Link {
	if from == to || p.LinkFn == nil {
		return Link{}
	}
	return p.LinkFn(from, to)
}

// Workload calibrates the pipeline's per-stage service times (in
// reference-core seconds) for one experiment.
type Workload struct {
	// Trajectories is the Monte Carlo ensemble size.
	Trajectories int
	// Quanta is the number of simulation quanta per trajectory.
	Quanta int
	// SamplesPerQuantum is the quantum/τ ratio (Q/τ in Table I).
	SamplesPerQuantum int
	// QuantumCost is the mean service time of one quantum.
	QuantumCost float64
	// TrajSigma is the lognormal sigma of the per-trajectory speed factor:
	// trajectories are "typically heavily unbalanced" (paper §I).
	TrajSigma float64
	// QuantumSigma is the lognormal sigma of per-quantum noise (random
	// walk of simulation time).
	QuantumSigma float64
	// SampleBytes sizes the per-sample network payload.
	SampleBytes int
	// AlignPerSample is the sequential aligner's cost per sample.
	AlignPerSample float64
	// StatBase and StatPerTraj give the statistics cost per cut:
	// StatBase + StatPerTraj * Trajectories^StatExponent.
	StatBase    float64
	StatPerTraj float64
	// StatExponent models the superlinear growth of the windowed analysis
	// with the ensemble size (memory traffic, reordering, clustering
	// iterations); 0 defaults to 1 (linear).
	StatExponent float64
	// StatChunk splits each per-cut analysis activity into service chunks
	// of at most this many seconds, approximating OS time-sharing between
	// the long-running statistics and the fine-grained simulation quanta
	// on a shared host (0 = unchunked).
	StatChunk float64
	// Seed drives the deterministic service-time noise.
	Seed int64
}

func (w Workload) validate() error {
	if w.Trajectories < 1 || w.Quanta < 1 || w.SamplesPerQuantum < 1 {
		return fmt.Errorf("platform: trajectories, quanta and samples per quantum must be >= 1 (got %d, %d, %d)",
			w.Trajectories, w.Quanta, w.SamplesPerQuantum)
	}
	if w.QuantumCost <= 0 {
		return fmt.Errorf("platform: quantum cost must be positive, got %g", w.QuantumCost)
	}
	return nil
}

// statCostPerCut returns the per-cut analysis service time.
func (w Workload) statCostPerCut() float64 {
	alpha := w.StatExponent
	if alpha <= 0 {
		alpha = 1
	}
	return w.StatBase + w.StatPerTraj*math.Pow(float64(w.Trajectories), alpha)
}

// Deployment maps pipeline threads onto hosts.
type Deployment struct {
	// SimWorkerHosts has one entry per simulation engine: the index of
	// the host it runs on.
	SimWorkerHosts []int
	// MasterHost runs the aligner and the statistics farm.
	MasterHost int
	// StatEngines is the width of the statistics farm.
	StatEngines int
	// StaticPartition, when true, pre-assigns trajectories round-robin to
	// hosts and lets workers steal only within their own host — the
	// distributed deployment's behaviour, where rescheduling crosses no
	// host boundary. False models the shared-memory on-demand farm.
	StaticPartition bool
}

func (d Deployment) validate(nHosts int) error {
	if len(d.SimWorkerHosts) == 0 {
		return fmt.Errorf("platform: no sim workers deployed")
	}
	for i, h := range d.SimWorkerHosts {
		if h < 0 || h >= nHosts {
			return fmt.Errorf("platform: sim worker %d on unknown host %d", i, h)
		}
	}
	if d.MasterHost < 0 || d.MasterHost >= nHosts {
		return fmt.Errorf("platform: master on unknown host %d", d.MasterHost)
	}
	if d.StatEngines < 1 {
		return fmt.Errorf("platform: need at least 1 stat engine")
	}
	return nil
}

// Metrics reports one simulated execution.
type Metrics struct {
	// Makespan is the modelled wall-clock duration in seconds.
	Makespan float64
	// SimBusy, AlignBusy and StatBusy are aggregate service seconds spent
	// in each stage (reference-core units).
	SimBusy, AlignBusy, StatBusy float64
	// Cuts is the number of time cuts analysed.
	Cuts int
	// NetBytes is the total traffic that crossed host boundaries.
	NetBytes int64
}

// Simulate runs the pipeline model and returns its metrics. The model is
// fully deterministic for a given (workload seed, deployment) pair.
func Simulate(p Platform, w Workload, d Deployment) (Metrics, error) {
	var m Metrics
	if err := w.validate(); err != nil {
		return m, err
	}
	if len(p.Hosts) == 0 {
		return m, fmt.Errorf("platform: no hosts")
	}
	if err := d.validate(len(p.Hosts)); err != nil {
		return m, err
	}

	eng := &engine{}
	pools := make([]*corePool, len(p.Hosts))
	for i, h := range p.Hosts {
		pool, err := newCorePool(eng, h.Name, h.Cores, h.Speed)
		if err != nil {
			return m, err
		}
		pools[i] = pool
	}

	// Per-trajectory speed factors (mean-1 lognormal).
	trajFactor := make([]float64, w.Trajectories)
	for i := range trajFactor {
		trajFactor[i] = lognormal(hash3(w.Seed, uint64(i), 0xa11ce), w.TrajSigma)
	}
	quantumCost := func(traj, q int) float64 {
		noise := lognormal(hash3(w.Seed, uint64(traj), uint64(q)+1), w.QuantumSigma)
		return w.QuantumCost * trajFactor[traj] * noise
	}

	// Sim workers: on-demand dispatch of (traj, quantum) tasks, with the
	// feedback constraint that quantum q+1 of a trajectory becomes ready
	// only when its quantum q completed. With StaticPartition, dispatch is
	// scoped per host: each host has its own ready queue and idle list.
	type task struct{ traj, q int }
	workers := make([]*thread, len(d.SimWorkerHosts))
	workerHost := d.SimWorkerHosts
	for i, h := range workerHost {
		workers[i] = newThread(pools[h])
	}

	// partition[traj] = dispatch domain of the trajectory. With global
	// on-demand scheduling there is a single domain 0.
	domains := 1
	domainOf := func(traj int) int { return 0 }
	workerDomain := make([]int, len(workers))
	if d.StaticPartition {
		// Hosts that run at least one worker, in first-appearance order.
		hostDomain := make(map[int]int)
		for i, h := range workerHost {
			if _, ok := hostDomain[h]; !ok {
				hostDomain[h] = len(hostDomain)
			}
			workerDomain[i] = hostDomain[h]
		}
		domains = len(hostDomain)
		// Capacity-aware partition: trajectories are dealt out
		// proportionally to each host's worker count (the distributed
		// master knows the per-host farm width).
		counts := make([]int, domains)
		for _, dom := range workerDomain {
			counts[dom]++
		}
		var slots []int
		for dom, c := range counts {
			for i := 0; i < c; i++ {
				slots = append(slots, dom)
			}
		}
		domainOf = func(traj int) int { return slots[traj%len(slots)] }
	}

	ready := make([][]task, domains)
	idle := make([][]int, domains)
	for i := 0; i < w.Trajectories; i++ {
		dom := domainOf(i)
		ready[dom] = append(ready[dom], task{traj: i})
	}
	for i := range workers {
		dom := workerDomain[i]
		idle[dom] = append(idle[dom], i)
	}

	// Aligner and stat farm on the master host.
	aligner := newThread(pools[d.MasterHost])
	statThreads := make([]*thread, d.StatEngines)
	for i := range statThreads {
		statThreads[i] = newThread(pools[d.MasterHost])
	}
	statIdle := make([]int, 0, d.StatEngines)
	for i := range statThreads {
		statIdle = append(statIdle, i)
	}
	statReady := []int{} // cut indices awaiting a stat engine
	statCost := w.statCostPerCut()

	// Cut bookkeeping: samplesAligned[i] = aligned samples of trajectory
	// i; a cut k is complete when every trajectory has > k aligned
	// samples.
	samplesAligned := make([]int, w.Trajectories)
	totalCuts := w.Quanta * w.SamplesPerQuantum
	cutsReleased := 0

	var dispatch func(dom int)
	var releaseCuts func()
	var dispatchStats func()

	dispatchStats = func() {
		for len(statReady) > 0 && len(statIdle) > 0 {
			statReady = statReady[1:]
			eid := statIdle[0]
			statIdle = statIdle[1:]
			m.StatBusy += statCost
			chunks := 1
			if w.StatChunk > 0 && statCost > w.StatChunk {
				chunks = int(math.Ceil(statCost / w.StatChunk))
			}
			per := statCost / float64(chunks)
			// Post the cut's analysis as a serial chain of chunks on the
			// engine's thread; the core is released between chunks.
			done := func() {
				statIdle = append(statIdle, eid)
				m.Cuts++
				dispatchStats()
			}
			for c := 0; c < chunks; c++ {
				if c == chunks-1 {
					statThreads[eid].post(per, done)
				} else {
					statThreads[eid].post(per, func() {})
				}
			}
		}
	}

	releaseCuts = func() {
		minAligned := math.MaxInt
		for _, s := range samplesAligned {
			if s < minAligned {
				minAligned = s
			}
		}
		for cutsReleased < minAligned && cutsReleased < totalCuts {
			statReady = append(statReady, cutsReleased)
			cutsReleased++
		}
		dispatchStats()
	}

	alignBatch := func(traj int) {
		dur := float64(w.SamplesPerQuantum) * w.AlignPerSample
		m.AlignBusy += dur
		aligner.post(dur, func() {
			samplesAligned[traj] += w.SamplesPerQuantum
			releaseCuts()
		})
	}

	dispatch = func(dom int) {
		for len(ready[dom]) > 0 && len(idle[dom]) > 0 {
			tk := ready[dom][0]
			ready[dom] = ready[dom][1:]
			wid := idle[dom][0]
			idle[dom] = idle[dom][1:]
			cost := quantumCost(tk.traj, tk.q)
			m.SimBusy += cost
			workers[wid].post(cost, func() {
				// Ship the quantum's samples to the aligner, crossing the
				// network if the worker is remote.
				link := p.link(workerHost[wid], d.MasterHost)
				delay := 0.0
				if link.LatencySec > 0 || link.BytesPerSec > 0 {
					bytes := float64(w.SamplesPerQuantum * w.SampleBytes)
					delay = link.LatencySec
					if link.BytesPerSec > 0 {
						delay += bytes / link.BytesPerSec
					}
					m.NetBytes += int64(bytes)
				}
				traj := tk.traj
				eng.after(delay, func() { alignBatch(traj) })
				// Feedback: reschedule the trajectory's next quantum.
				if tk.q+1 < w.Quanta {
					ready[dom] = append(ready[dom], task{traj: tk.traj, q: tk.q + 1})
				}
				idle[dom] = append(idle[dom], wid)
				dispatch(dom)
			})
		}
	}

	for dom := 0; dom < domains; dom++ {
		dispatch(dom)
	}
	m.Makespan = eng.run()
	if m.Cuts != totalCuts {
		return m, fmt.Errorf("platform: internal error: %d cuts analysed, want %d", m.Cuts, totalCuts)
	}
	return m, nil
}

// LognormalHash returns the deterministic mean-1 lognormal factor derived
// from (seed, a, b) with the given sigma — the same noise process the
// pipeline model uses, exported for companion models (e.g. the GPU run of
// Table I) that must draw from an identical trajectory-unevenness
// distribution.
func LognormalHash(seed int64, a, b uint64, sigma float64) float64 {
	return lognormal(hash3(seed, a, b), sigma)
}

// hash3 mixes a seed and two indices into a 64-bit value (splitmix64).
func hash3(seed int64, a, b uint64) uint64 {
	x := uint64(seed) ^ a*0x9e3779b97f4a7c15 ^ b*0xbf58476d1ce4e5b9
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// lognormal maps a hash to a mean-1 lognormal factor with the given sigma.
func lognormal(h uint64, sigma float64) float64 {
	if sigma <= 0 {
		return 1
	}
	// Two uniforms from one hash via splitting.
	u1 := float64(h>>11) / float64(1<<53)
	u2 := float64((h*0x9e3779b97f4a7c15)>>11) / float64(1<<53)
	if u1 < 1e-300 {
		u1 = 1e-300
	}
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return math.Exp(sigma*z - sigma*sigma/2)
}
