// Package platform is a discrete-event simulator (DES) of the CWC
// simulation-analysis pipeline running on modelled hardware: hosts with a
// given core count and speed, connected by links with latency and
// bandwidth.
//
// The paper evaluates on machines this environment does not have (a
// 32-core Nehalem, an Infiniband cluster, Amazon EC2, a Tesla K40). Per
// the substitution rules in DESIGN.md, the speedup figures are reproduced
// on this model: the per-stage service times are calibrated against the
// real single-core engines, and the qualitative effects the paper's curves
// show — load imbalance across uneven trajectories, the sequential
// alignment stage, the statistics farm bottleneck, network overhead per
// host, core contention between pipeline stages — all emerge from the
// simulation structure rather than being curve-fitted.
package platform

import (
	"container/heap"
	"fmt"
)

// event is one scheduled callback.
type event struct {
	at  float64
	seq uint64 // FIFO tie-break for simultaneous events (determinism)
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// engine is the DES core: a clock and an event queue.
type engine struct {
	now    float64
	seq    uint64
	events eventHeap
}

// after schedules fn at now+delay.
func (e *engine) after(delay float64, fn func()) {
	if delay < 0 {
		delay = 0
	}
	e.seq++
	heap.Push(&e.events, event{at: e.now + delay, seq: e.seq, fn: fn})
}

// run drains the event queue, advancing the clock. It returns the time of
// the last event.
func (e *engine) run() float64 {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(event)
		e.now = ev.at
		ev.fn()
	}
	return e.now
}

// corePool models one host's cores as a multi-server FCFS resource. Work
// posted while all cores are busy queues up.
type corePool struct {
	eng   *engine
	name  string
	cores int
	free  int
	speed float64 // service-rate multiplier of each core (1.0 = reference)
	queue []pendingWork

	busyTime float64 // aggregate core-seconds of service
}

type pendingWork struct {
	dur    float64 // reference-core seconds
	onDone func()
}

func newCorePool(eng *engine, name string, cores int, speed float64) (*corePool, error) {
	if cores < 1 {
		return nil, fmt.Errorf("platform: host %s needs at least 1 core", name)
	}
	if speed <= 0 {
		return nil, fmt.Errorf("platform: host %s needs positive speed", name)
	}
	return &corePool{eng: eng, name: name, cores: cores, free: cores, speed: speed}, nil
}

// post requests dur reference-core seconds of service; onDone fires at
// completion.
func (p *corePool) post(dur float64, onDone func()) {
	w := pendingWork{dur: dur, onDone: onDone}
	if p.free > 0 {
		p.start(w)
		return
	}
	p.queue = append(p.queue, w)
}

func (p *corePool) start(w pendingWork) {
	p.free--
	service := w.dur / p.speed
	p.busyTime += service
	p.eng.after(service, func() {
		p.free++
		if len(p.queue) > 0 {
			next := p.queue[0]
			p.queue = p.queue[1:]
			p.start(next)
		}
		w.onDone()
	})
}

// thread serialises activities of one logical pipeline thread (a sim
// worker, the aligner, one stat engine) onto its host's core pool: a
// thread runs one activity at a time, competing with every other thread on
// the host for cores.
type thread struct {
	pool    *corePool
	busy    bool
	backlog []pendingWork
}

func newThread(pool *corePool) *thread { return &thread{pool: pool} }

// post enqueues an activity on the thread.
func (t *thread) post(dur float64, onDone func()) {
	w := pendingWork{dur: dur, onDone: onDone}
	if t.busy {
		t.backlog = append(t.backlog, w)
		return
	}
	t.run(w)
}

func (t *thread) run(w pendingWork) {
	t.busy = true
	t.pool.post(w.dur, func() {
		t.busy = false
		if len(t.backlog) > 0 {
			next := t.backlog[0]
			t.backlog = t.backlog[1:]
			t.run(next)
		}
		w.onDone()
	})
}
