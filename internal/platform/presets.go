package platform

// Presets model the paper's testbeds. Speeds are relative to the reference
// core (one core of the 2.0 GHz Nehalem E7-4820 of the multi-core
// experiments); link parameters are typical figures for the named fabric.

// Nehalem32 models the paper's Intel workstation: 4 x 8-core E7-4820
// @2.0 GHz, treated as one 32-core shared-memory host.
func Nehalem32() Platform {
	return Platform{Hosts: []Host{{Name: "nehalem", Cores: 32, Speed: 1.0}}}
}

// SharedMemory models a single multi-core host with the given core count.
func SharedMemory(cores int) Platform {
	return Platform{Hosts: []Host{{Name: "smp", Cores: cores, Speed: 1.0}}}
}

// InfinibandCluster models the paper's cluster: hosts with 2 x six-core
// Xeon X5670 @3.0 GHz (speed 1.4 vs the Nehalem reference) on Infiniband
// used via IPoIB (TCP over IB): ~25 us latency, ~1.2 GB/s effective.
func InfinibandCluster(hosts, coresPerHost int) Platform {
	hs := make([]Host, hosts)
	for i := range hs {
		hs[i] = Host{Name: "xeon", Cores: coresPerHost, Speed: 1.4}
	}
	return Platform{
		Hosts: hs,
		LinkFn: func(from, to int) Link {
			return Link{LatencySec: 25e-6, BytesPerSec: 1.2e9}
		},
	}
}

// EthernetCluster is the same cluster on gigabit Ethernet: ~100 us
// latency, ~117 MB/s.
func EthernetCluster(hosts, coresPerHost int) Platform {
	hs := make([]Host, hosts)
	for i := range hs {
		hs[i] = Host{Name: "xeon", Cores: coresPerHost, Speed: 1.4}
	}
	return Platform{
		Hosts: hs,
		LinkFn: func(from, to int) Link {
			return Link{LatencySec: 100e-6, BytesPerSec: 117e6}
		},
	}
}

// EC2Cluster models the paper's Amazon EC2 virtual cluster: VMs with four
// Intel E-2670 @2.6 GHz cores (speed 1.25) on the EC2 network (~200 us,
// ~120 MB/s).
func EC2Cluster(vms, coresPerVM int) Platform {
	hs := make([]Host, vms)
	for i := range hs {
		hs[i] = Host{Name: "ec2-vm", Cores: coresPerVM, Speed: 1.25}
	}
	return Platform{
		Hosts: hs,
		LinkFn: func(from, to int) Link {
			return Link{LatencySec: 200e-6, BytesPerSec: 120e6}
		},
	}
}

// Heterogeneous models the paper's mixed platform: eight quad-core EC2
// VMs, one 32-core Nehalem workstation, and two 16-core Sandy Bridge
// workstations (speed 1.3). The lab hosts see each other over gigabit
// Ethernet; the EC2 VMs reach the lab over the WAN (~20 ms, ~40 MB/s).
// Host 8 (the Nehalem) is the conventional master host.
func Heterogeneous() Platform {
	var hs []Host
	for i := 0; i < 8; i++ {
		hs = append(hs, Host{Name: "ec2-vm", Cores: 4, Speed: 1.25})
	}
	hs = append(hs, Host{Name: "nehalem", Cores: 32, Speed: 1.0})
	hs = append(hs, Host{Name: "sandy-bridge", Cores: 16, Speed: 1.3})
	hs = append(hs, Host{Name: "sandy-bridge", Cores: 16, Speed: 1.3})
	return Platform{
		Hosts: hs,
		LinkFn: func(from, to int) Link {
			ec2 := func(h int) bool { return h < 8 }
			if ec2(from) != ec2(to) {
				return Link{LatencySec: 20e-3, BytesPerSec: 40e6}
			}
			if ec2(from) && ec2(to) {
				return Link{LatencySec: 200e-6, BytesPerSec: 120e6}
			}
			return Link{LatencySec: 100e-6, BytesPerSec: 117e6}
		},
	}
}

// HeterogeneousMaster is the master host index of Heterogeneous().
const HeterogeneousMaster = 8

// SpreadWorkers deploys totalWorkers sim engines round-robin over the
// given host indices.
func SpreadWorkers(hostIdx []int, totalWorkers int) []int {
	out := make([]int, totalWorkers)
	for i := range out {
		out[i] = hostIdx[i%len(hostIdx)]
	}
	return out
}

// WorkersPerHost deploys exactly perHost sim engines on each listed host.
func WorkersPerHost(hostIdx []int, perHost int) []int {
	out := make([]int, 0, len(hostIdx)*perHost)
	for _, h := range hostIdx {
		for i := 0; i < perHost; i++ {
			out = append(out, h)
		}
	}
	return out
}

// NeurosporaWorkload returns the calibrated workload of the paper's
// Neurospora runs: per-quantum cost calibrated from the real single-core
// Gillespie engine of this repository (BenchmarkNeurosporaStep: ~0.45 us
// per reaction at omega=100, ~330 reactions per simulated hour), with the
// heavy per-trajectory imbalance the paper reports. quanta x samples gives
// the run length; see internal/bench for the per-figure instantiations.
func NeurosporaWorkload(trajectories, quanta, samplesPerQuantum int, seed int64) Workload {
	const (
		reactionsPerSample = 330.0  // one sampling period τ = 1 h of biology
		secPerReaction     = 4.5e-4 // calibrated so Table I magnitudes match
	)
	return Workload{
		Trajectories:      trajectories,
		Quanta:            quanta,
		SamplesPerQuantum: samplesPerQuantum,
		QuantumCost:       reactionsPerSample * secPerReaction * float64(samplesPerQuantum),
		// Imbalance is mostly instantaneous (per-quantum random walk of
		// simulation time, absorbed by on-demand scheduling); the
		// persistent per-trajectory spread is small — a large persistent
		// spread would let one straggler gate every cut, which the paper's
		// near-ideal curves exclude.
		TrajSigma:      0.10,
		QuantumSigma:   0.30,
		SampleBytes:    64,
		AlignPerSample: 2e-5,
		StatBase:       1e-4,
		StatPerTraj:    1.8e-3,
		StatExponent:   1.2,
		StatChunk:      0.05,
		Seed:           seed,
	}
}
