package platform

import "fmt"

// EstimateMakespan runs the pipeline DES for a shared-memory deployment —
// cores physical cores hosting simWorkers simulation engines and
// statEngines statistical engines — and returns the modelled wall-clock
// duration. It is the capacity-planning entry point used by the job
// service: given per-quantum service times measured from a running job, it
// projects the job's total runtime on the current pool.
func EstimateMakespan(cores, simWorkers, statEngines int, w Workload) (float64, error) {
	if cores < 1 {
		return 0, fmt.Errorf("platform: need at least 1 core, got %d", cores)
	}
	if simWorkers < 1 {
		simWorkers = 1
	}
	if statEngines < 1 {
		statEngines = 1
	}
	d := Deployment{
		SimWorkerHosts: make([]int, simWorkers),
		MasterHost:     0,
		StatEngines:    statEngines,
	}
	m, err := Simulate(SharedMemory(cores), w, d)
	if err != nil {
		return 0, err
	}
	return m.Makespan, nil
}
