package cwc

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseFlatTerm(t *testing.T) {
	a := NewAlphabet()
	term, err := ParseTerm("a a b 3*c", a)
	if err != nil {
		t.Fatal(err)
	}
	av, _ := a.Lookup("a")
	bv, _ := a.Lookup("b")
	cv, _ := a.Lookup("c")
	if term.Atoms.Count(av) != 2 || term.Atoms.Count(bv) != 1 || term.Atoms.Count(cv) != 3 {
		t.Fatalf("counts wrong: %s", term.Format(a))
	}
	if len(term.Comps) != 0 {
		t.Fatal("flat term has compartments")
	}
}

func TestParseNestedTerm(t *testing.T) {
	a := NewAlphabet()
	term, err := ParseTerm("M (k | F F (p | N):nuc):cell", a)
	if err != nil {
		t.Fatal(err)
	}
	if len(term.Comps) != 1 {
		t.Fatalf("top compartments = %d, want 1", len(term.Comps))
	}
	cell := term.Comps[0]
	if cell.Label != "cell" {
		t.Fatalf("label = %q, want cell", cell.Label)
	}
	k, _ := a.Lookup("k")
	if cell.Wrap.Count(k) != 1 {
		t.Fatal("wrap atom k missing")
	}
	if len(cell.Content.Comps) != 1 || cell.Content.Comps[0].Label != "nuc" {
		t.Fatal("nested nucleus missing")
	}
	if term.Depth() != 2 {
		t.Fatalf("depth = %d, want 2", term.Depth())
	}
}

func TestParseDefaultLabel(t *testing.T) {
	a := NewAlphabet()
	term, err := ParseTerm("( | x)", a)
	if err != nil {
		t.Fatal(err)
	}
	if term.Comps[0].Label != "comp" {
		t.Fatalf("default label = %q, want comp", term.Comps[0].Label)
	}
}

func TestParseEmptyTerm(t *testing.T) {
	a := NewAlphabet()
	for _, src := range []string{"", "   ", "·"} {
		term, err := ParseTerm(src, a)
		if err != nil {
			t.Fatalf("ParseTerm(%q): %v", src, err)
		}
		if term.Atoms.Size() != 0 || len(term.Comps) != 0 {
			t.Fatalf("ParseTerm(%q) non-empty", src)
		}
	}
}

func TestParseErrors(t *testing.T) {
	a := NewAlphabet()
	cases := []string{
		"(a",             // unclosed
		"(a | b",         // unclosed after content
		"a)",             // stray close
		"3a",             // count without *
		"((x|y):in | z)", // compartment inside wrap
		"( | x):",        // missing label after colon
		"*a",             // stray star
	}
	for _, src := range cases {
		if _, err := ParseTerm(src, a); err == nil {
			t.Errorf("ParseTerm(%q): expected error", src)
		}
	}
}

func TestFormatRoundTrip(t *testing.T) {
	a := NewAlphabet()
	srcs := []string{
		"a a b",
		"M (k | F F (p | N):nuc):cell",
		"( | ):empty",
		"2*a (m m | 3*b):c1 (m | b):c2",
	}
	for _, src := range srcs {
		t1, err := ParseTerm(src, a)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		rendered := t1.Format(a)
		t2, err := ParseTerm(strings.ReplaceAll(rendered, "·", ""), a)
		if err != nil {
			t.Fatalf("re-parse %q: %v", rendered, err)
		}
		if !t1.Equal(t2) {
			t.Fatalf("round trip changed term: %q -> %q", src, t2.Format(a))
		}
	}
}

func TestTermCloneIsDeep(t *testing.T) {
	a := NewAlphabet()
	orig := MustParseTerm("x (w | y):c", a)
	cl := orig.Clone()
	y, _ := a.Lookup("y")
	cl.Comps[0].Content.Atoms.Add(y, 10)
	if orig.Comps[0].Content.Atoms.Count(y) != 1 {
		t.Fatal("Clone shares compartment content")
	}
}

func TestTermEqualUpToReordering(t *testing.T) {
	a := NewAlphabet()
	t1 := MustParseTerm("(m | x):c1 (n | y):c2", a)
	t2 := MustParseTerm("(n | y):c2 (m | x):c1", a)
	if !t1.Equal(t2) {
		t.Fatal("Equal must ignore compartment order")
	}
	t3 := MustParseTerm("(m | x):c1 (n | y y):c2", a)
	if t1.Equal(t3) {
		t.Fatal("Equal must detect content differences")
	}
}

func TestTotalAtomsIncludesWraps(t *testing.T) {
	a := NewAlphabet()
	term := MustParseTerm("x (x | x (x | x):in):out", a)
	x, _ := a.Lookup("x")
	if got := term.TotalAtoms(x); got != 5 {
		t.Fatalf("TotalAtoms = %d, want 5", got)
	}
}

func TestCountCompartments(t *testing.T) {
	a := NewAlphabet()
	term := MustParseTerm("( | ( | ):b ( | ):b):a ( | ):b", a)
	if got := term.CountCompartments("b"); got != 3 {
		t.Fatalf("count b = %d, want 3", got)
	}
	if got := term.CountCompartments(""); got != 4 {
		t.Fatalf("count all = %d, want 4", got)
	}
}

func TestWalkOrder(t *testing.T) {
	a := NewAlphabet()
	term := MustParseTerm("( | ( | ):inner):outer ( | ):side", a)
	var labels []string
	term.Walk(func(label string, _ *Term, _ *Compartment, _ *Term) {
		labels = append(labels, label)
	})
	want := []string{TopLabel, "outer", "inner", "side"}
	if len(labels) != len(want) {
		t.Fatalf("labels = %v, want %v", labels, want)
	}
	for i := range want {
		if labels[i] != want[i] {
			t.Fatalf("labels = %v, want %v", labels, want)
		}
	}
}

// TestProperty_FormatParseRoundTrip: any randomly generated term tree
// survives Format → ParseTerm structurally intact.
func TestProperty_FormatParseRoundTrip(t *testing.T) {
	alpha := NewAlphabet("a", "b", "c", "d")
	var build func(rng *rand.Rand, depth int) *Term
	build = func(rng *rand.Rand, depth int) *Term {
		term := NewTerm()
		for s := 0; s < alpha.Len(); s++ {
			if n := rng.Intn(4); n > 0 {
				term.Atoms.Add(Species(s), int64(n))
			}
		}
		if depth > 0 {
			for i := rng.Intn(3); i > 0; i-- {
				c := &Compartment{Label: []string{"cell", "nuc", "ves"}[rng.Intn(3)]}
				if rng.Intn(2) == 0 {
					c.Wrap.Add(Species(rng.Intn(alpha.Len())), int64(rng.Intn(3)+1))
				}
				c.Content = *build(rng, depth-1)
				term.AddComp(c)
			}
		}
		return term
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		orig := build(rng, 3)
		rendered := strings.ReplaceAll(orig.Format(alpha), "·", "")
		back, err := ParseTerm(rendered, alpha)
		if err != nil {
			t.Logf("parse of %q: %v", rendered, err)
			return false
		}
		return orig.Equal(back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveComp(t *testing.T) {
	a := NewAlphabet()
	term := MustParseTerm("( | x):a ( | y):b ( | z):c", a)
	term.RemoveComp(0)
	if len(term.Comps) != 2 {
		t.Fatalf("len = %d, want 2", len(term.Comps))
	}
	if term.CountCompartments("a") != 0 {
		t.Fatal("compartment a still present")
	}
}
