package cwc

import (
	"fmt"
	"sort"
	"strings"
)

// TopLabel is the label of the implicit outermost compartment every CWC
// term lives in.
const TopLabel = "top"

// Term is the content of a compartment: a multiset of atoms plus a list of
// nested compartments. The root of a system state is a Term (the content of
// the implicit top-level compartment).
//
// The zero value is the empty term, ready to use.
type Term struct {
	Atoms Multiset
	Comps []*Compartment
}

// Compartment is a wrapped term: a membrane (multiset of atoms on the wrap)
// enclosing a content term, tagged with a type label.
type Compartment struct {
	Label   string
	Wrap    Multiset
	Content Term
}

// NewTerm returns an empty term.
func NewTerm() *Term { return &Term{} }

// AddComp appends a compartment to the term.
func (t *Term) AddComp(c *Compartment) { t.Comps = append(t.Comps, c) }

// RemoveComp removes the i-th compartment (order is not preserved).
func (t *Term) RemoveComp(i int) {
	last := len(t.Comps) - 1
	t.Comps[i] = t.Comps[last]
	t.Comps[last] = nil
	t.Comps = t.Comps[:last]
}

// Clone returns a deep copy of the term.
func (t *Term) Clone() *Term {
	c := &Term{Atoms: *t.Atoms.Clone()}
	if len(t.Comps) > 0 {
		c.Comps = make([]*Compartment, len(t.Comps))
		for i, comp := range t.Comps {
			c.Comps[i] = comp.Clone()
		}
	}
	return c
}

// Clone returns a deep copy of the compartment.
func (c *Compartment) Clone() *Compartment {
	return &Compartment{
		Label:   c.Label,
		Wrap:    *c.Wrap.Clone(),
		Content: *c.Content.Clone(),
	}
}

// Walk visits every compartment content in the tree, starting from the root
// term itself (with label TopLabel and nil compartment). The visit order is
// depth-first, parents before children. parent is nil for the root.
func (t *Term) Walk(visit func(label string, content *Term, comp *Compartment, parent *Term)) {
	visit(TopLabel, t, nil, nil)
	t.walkChildren(visit)
}

func (t *Term) walkChildren(visit func(label string, content *Term, comp *Compartment, parent *Term)) {
	for _, c := range t.Comps {
		visit(c.Label, &c.Content, c, t)
		c.Content.walkChildren(visit)
	}
}

// TotalAtoms sums the multiplicity of species s over the whole tree,
// including wraps.
func (t *Term) TotalAtoms(s Species) int64 {
	total := t.Atoms.Count(s)
	for _, c := range t.Comps {
		total += c.Wrap.Count(s)
		total += c.Content.TotalAtoms(s)
	}
	return total
}

// CountCompartments returns the number of compartments with the given label
// anywhere in the tree ("" counts all).
func (t *Term) CountCompartments(label string) int {
	n := 0
	for _, c := range t.Comps {
		if label == "" || c.Label == label {
			n++
		}
		n += c.Content.CountCompartments(label)
	}
	return n
}

// Depth returns the maximum nesting depth (0 for a flat term).
func (t *Term) Depth() int {
	d := 0
	for _, c := range t.Comps {
		if cd := c.Content.Depth() + 1; cd > d {
			d = cd
		}
	}
	return d
}

// Format renders the term with names from the alphabet. Compartments render
// as "(wrap | content):label". Compartments are sorted by rendering for
// determinism.
func (t *Term) Format(a *Alphabet) string {
	var parts []string
	if t.Atoms.Size() > 0 {
		parts = append(parts, t.Atoms.Format(a))
	}
	comps := make([]string, 0, len(t.Comps))
	for _, c := range t.Comps {
		comps = append(comps, fmt.Sprintf("(%s | %s):%s", c.Wrap.Format(a), c.Content.Format(a), c.Label))
	}
	sort.Strings(comps)
	parts = append(parts, comps...)
	if len(parts) == 0 {
		return "·"
	}
	return strings.Join(parts, " ")
}

// Equal reports structural equality up to reordering of compartments.
func (t *Term) Equal(other *Term) bool {
	if !t.Atoms.Equal(&other.Atoms) {
		return false
	}
	if len(t.Comps) != len(other.Comps) {
		return false
	}
	used := make([]bool, len(other.Comps))
outer:
	for _, c := range t.Comps {
		for j, oc := range other.Comps {
			if used[j] {
				continue
			}
			if c.Label == oc.Label && c.Wrap.Equal(&oc.Wrap) && c.Content.Equal(&oc.Content) {
				used[j] = true
				continue outer
			}
		}
		return false
	}
	return true
}
