package cwc

import "fmt"

// RuleKind classifies the rewrite shape of a rule.
type RuleKind int

const (
	// KindReaction rewrites atoms inside one compartment content, possibly
	// creating new compartments there.
	KindReaction RuleKind = iota
	// KindTransportIn moves atoms from a compartment content across the
	// membrane of one of its child compartments, into the child content.
	KindTransportIn
	// KindTransportOut moves atoms from a child compartment content out
	// into the enclosing content.
	KindTransportOut
	// KindDissolve removes a child compartment, releasing its wrap and
	// content into the enclosing content.
	KindDissolve
)

// String implements fmt.Stringer.
func (k RuleKind) String() string {
	switch k {
	case KindReaction:
		return "reaction"
	case KindTransportIn:
		return "transport-in"
	case KindTransportOut:
		return "transport-out"
	case KindDissolve:
		return "dissolve"
	default:
		return "unknown"
	}
}

// Rule is a stochastic CWC rewrite rule. It applies inside compartments
// whose label equals Context ("" matches every compartment, including the
// implicit top level).
//
// Semantics per kind (all atom multisets may be nil = empty):
//
//   - KindReaction: consume Reactants from the context content, add
//     Products, and add a clone of every template in ProduceComps.
//   - KindTransportIn: additionally select a child compartment with label
//     ChildLabel whose wrap contains ChildWrap; Move atoms are consumed
//     from the context content and added to the child content.
//   - KindTransportOut: symmetric; Move atoms are consumed from the child
//     content and added to the context content.
//   - KindDissolve: the selected child is removed; its wrap atoms, content
//     atoms and nested compartments are released into the context content.
//     Reactants/Products apply to the context content as usual.
type Rule struct {
	Name    string
	Context string
	Kind    RuleKind

	Reactants *Multiset
	Products  *Multiset
	// ProduceComps are templates cloned into the context on application
	// (compartment creation).
	ProduceComps []*Compartment

	// ChildLabel selects the child compartment for transport/dissolve.
	ChildLabel string
	// ChildWrap must be contained in the selected child's wrap (membrane
	// requirement; catalytic — not consumed).
	ChildWrap *Multiset
	// Move is the multiset of atoms crossing the membrane.
	Move *Multiset

	Law RateLaw
}

// Validate checks structural consistency of the rule.
func (r *Rule) Validate() error {
	if r.Law == nil {
		return fmt.Errorf("cwc: rule %q: nil rate law", r.Name)
	}
	switch r.Kind {
	case KindReaction:
		if r.ChildLabel != "" || r.Move != nil {
			return fmt.Errorf("cwc: rule %q: reaction rules cannot name a child or move atoms", r.Name)
		}
	case KindTransportIn, KindTransportOut:
		if r.ChildLabel == "" {
			return fmt.Errorf("cwc: rule %q: transport rules need a child label", r.Name)
		}
		if r.Move == nil || r.Move.Size() == 0 {
			return fmt.Errorf("cwc: rule %q: transport rules need atoms to move", r.Name)
		}
	case KindDissolve:
		if r.ChildLabel == "" {
			return fmt.Errorf("cwc: rule %q: dissolve rules need a child label", r.Name)
		}
	default:
		return fmt.Errorf("cwc: rule %q: unknown kind %d", r.Name, int(r.Kind))
	}
	return nil
}

// Match is one way a rule can fire: a rule plus the concrete context (and,
// for transport/dissolve, the concrete child compartment) it fires in.
type Match struct {
	Rule *Rule
	// Where is the content of the compartment the rule fires in.
	Where *Term
	// Comp is that compartment (nil when Where is the root term).
	Comp *Compartment
	// Child is the selected child compartment for transport/dissolve
	// rules, with ChildIdx its index in Where.Comps; nil/-1 otherwise.
	Child    *Compartment
	ChildIdx int
}

// RateLaw computes the propensity (stochastic rate) of one concrete match.
type RateLaw interface {
	Propensity(m Match) float64
}

// MassAction is the standard stochastic mass-action law: the rate constant
// times the number of distinct reactant combinations in the matched
// context (and, for membrane rules, the distinct ways of picking the moved
// atoms and the required wrap atoms).
type MassAction struct {
	K float64
}

// Propensity implements RateLaw.
func (ma MassAction) Propensity(m Match) float64 {
	p := ma.K
	p *= m.Where.Atoms.Combinations(m.Rule.Reactants)
	switch m.Rule.Kind {
	case KindTransportIn:
		p *= m.Where.Atoms.Combinations(m.Rule.Move)
		p *= m.Child.Wrap.Combinations(m.Rule.ChildWrap)
	case KindTransportOut:
		p *= m.Child.Content.Atoms.Combinations(m.Rule.Move)
		p *= m.Child.Wrap.Combinations(m.Rule.ChildWrap)
	case KindDissolve:
		p *= m.Child.Wrap.Combinations(m.Rule.ChildWrap)
	}
	return p
}

// RateFunc is an arbitrary rate law over the matched context, used for
// non-mass-action kinetics (Hill, Michaelis–Menten, ...). The function must
// return a non-negative propensity.
type RateFunc func(m Match) float64

// Propensity implements RateLaw.
func (f RateFunc) Propensity(m Match) float64 { return f(m) }

// Hill returns a Hill-repression rate law commonly used for transcriptional
// regulation: vs * KI^n / (KI^n + [repressor]^n), where the repressor count
// is read from the matched content (divided by omega to convert molecule
// counts into concentrations; pass omega=1 for raw counts).
func Hill(vs, ki float64, n int, repressor Species, omega float64) RateFunc {
	kin := pow(ki, n)
	return func(m Match) float64 {
		x := float64(m.Where.Atoms.Count(repressor)) / omega
		return vs * kin / (kin + pow(x, n))
	}
}

// MichaelisMenten returns the saturating degradation law
// vm * [s] / (km + [s]) over the matched content, scaled by omega.
func MichaelisMenten(vm, km float64, s Species, omega float64) RateFunc {
	return func(m Match) float64 {
		x := float64(m.Where.Atoms.Count(s)) / omega
		return vm * x / (km + x)
	}
}

func pow(x float64, n int) float64 {
	r := 1.0
	for i := 0; i < n; i++ {
		r *= x
	}
	return r
}
