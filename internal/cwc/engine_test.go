package cwc

import (
	"math"
	"testing"
	"testing/quick"
)

// birthDeathModel is the simplest stochastic system: ∅ → X at rate lambda,
// X → ∅ at rate mu per molecule. Stationary mean is lambda/mu.
func birthDeathModel(lambda, mu float64, x0 int64) (*Model, Species) {
	a := NewAlphabet("X")
	x, _ := a.Lookup("X")
	m := &Model{
		Name:  "birth-death",
		Alpha: a,
		Init:  &Term{Atoms: *NewMultiset(x, x0)},
		Rules: []*Rule{
			{Name: "birth", Kind: KindReaction, Products: NewMultiset(x, 1), Law: MassAction{K: lambda}},
			{Name: "death", Kind: KindReaction, Reactants: NewMultiset(x, 1), Law: MassAction{K: mu}},
		},
	}
	return m, x
}

func TestEngineBirthDeathStationaryMean(t *testing.T) {
	// lambda=50, mu=1 => stationary distribution Poisson(50).
	m, x := birthDeathModel(50, 1, 50)
	e, err := NewEngine(m, 42)
	if err != nil {
		t.Fatal(err)
	}
	// Warm up, then time-average.
	if _, live := e.AdvanceTo(5); !live {
		t.Fatal("system died during warm-up")
	}
	sum, n := 0.0, 0
	for i := 0; i < 2000; i++ {
		e.AdvanceTo(5 + float64(i)*0.05)
		sum += float64(e.Count(x))
		n++
	}
	mean := sum / float64(n)
	if math.Abs(mean-50) > 5 {
		t.Fatalf("stationary mean = %.2f, want 50 +- 5", mean)
	}
}

func TestEngineDeterministicForSeed(t *testing.T) {
	m, x := birthDeathModel(10, 0.5, 3)
	run := func(seed int64) (float64, int64, uint64) {
		e, err := NewEngine(m, seed)
		if err != nil {
			t.Fatal(err)
		}
		e.AdvanceTo(20)
		return e.Time(), e.Count(x), e.Steps()
	}
	t1, c1, s1 := run(7)
	t2, c2, s2 := run(7)
	if t1 != t2 || c1 != c2 || s1 != s2 {
		t.Fatalf("same seed diverged: (%g,%d,%d) vs (%g,%d,%d)", t1, c1, s1, t2, c2, s2)
	}
	_, c3, _ := run(8)
	_, c4, _ := run(9)
	if c1 == c3 && c3 == c4 {
		t.Fatal("three different seeds produced identical counts; RNG plumbing suspect")
	}
}

func TestEngineDeadState(t *testing.T) {
	a := NewAlphabet("X")
	x, _ := a.Lookup("X")
	m := &Model{
		Name:  "decay-only",
		Alpha: a,
		Init:  &Term{Atoms: *NewMultiset(x, 5)},
		Rules: []*Rule{
			{Name: "death", Kind: KindReaction, Reactants: NewMultiset(x, 1), Law: MassAction{K: 1}},
		},
	}
	e, err := NewEngine(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	fired, live := e.AdvanceTo(1e9)
	if live {
		t.Fatal("pure-decay system should die")
	}
	if fired != 5 {
		t.Fatalf("fired = %d, want 5", fired)
	}
	if e.Count(x) != 0 {
		t.Fatalf("X = %d, want 0", e.Count(x))
	}
}

func TestEngineInitNotShared(t *testing.T) {
	m, x := birthDeathModel(10, 1, 5)
	e1, _ := NewEngine(m, 1)
	e1.AdvanceTo(10)
	if m.Init.TotalAtoms(x) != 5 {
		t.Fatal("engine mutated the model's initial term")
	}
	e2, _ := NewEngine(m, 2)
	if e2.Count(x) != 5 {
		t.Fatal("second engine does not start from the initial term")
	}
}

func TestDimerisationConservesMassInvariant(t *testing.T) {
	// 2A -> D and D -> 2A conserve the invariant A + 2D.
	a := NewAlphabet("A", "D")
	av, _ := a.Lookup("A")
	dv, _ := a.Lookup("D")
	m := &Model{
		Name:  "dimer",
		Alpha: a,
		Init:  &Term{Atoms: *NewMultiset(av, 100)},
		Rules: []*Rule{
			{Name: "dimerise", Kind: KindReaction, Reactants: NewMultiset(av, 2), Products: NewMultiset(dv, 1), Law: MassAction{K: 0.01}},
			{Name: "split", Kind: KindReaction, Reactants: NewMultiset(dv, 1), Products: NewMultiset(av, 2), Law: MassAction{K: 0.5}},
		},
	}
	e, err := NewEngine(m, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if !e.Step() {
			t.Fatal("dimer system died unexpectedly")
		}
		if inv := e.Count(av) + 2*e.Count(dv); inv != 100 {
			t.Fatalf("step %d: invariant A+2D = %d, want 100", i, inv)
		}
	}
}

func TestTransportRules(t *testing.T) {
	// A enters the cell, B leaves it.
	a := NewAlphabet("A", "B", "m")
	av, _ := a.Lookup("A")
	bv, _ := a.Lookup("B")
	mv, _ := a.Lookup("m")
	init := MustParseTerm("5*A (m | 5*B):cell", a)
	model := &Model{
		Name:  "transport",
		Alpha: a,
		Init:  init,
		Rules: []*Rule{
			{
				Name: "in", Kind: KindTransportIn, Context: TopLabel,
				ChildLabel: "cell", ChildWrap: NewMultiset(mv, 1),
				Move: NewMultiset(av, 1), Law: MassAction{K: 1},
			},
			{
				Name: "out", Kind: KindTransportOut, Context: TopLabel,
				ChildLabel: "cell",
				Move:       NewMultiset(bv, 1), Law: MassAction{K: 1},
			},
		},
	}
	e, err := NewEngine(model, 11)
	if err != nil {
		t.Fatal(err)
	}
	fired, _ := e.AdvanceTo(100)
	if fired != 10 {
		t.Fatalf("fired = %d, want 10 (5 in + 5 out)", fired)
	}
	state := e.State()
	cell := state.Comps[0]
	if cell.Content.Atoms.Count(av) != 5 || cell.Content.Atoms.Count(bv) != 0 {
		t.Fatalf("cell content wrong: %s", cell.Content.Format(a))
	}
	if state.Atoms.Count(bv) != 5 || state.Atoms.Count(av) != 0 {
		t.Fatalf("top content wrong: %s", state.Format(a))
	}
	// Wrap atom is catalytic: must still be there.
	if cell.Wrap.Count(mv) != 1 {
		t.Fatal("membrane atom consumed by transport")
	}
}

func TestTransportInRequiresWrap(t *testing.T) {
	a := NewAlphabet("A", "m")
	av, _ := a.Lookup("A")
	mv, _ := a.Lookup("m")
	init := MustParseTerm("A ( | ):cell", a) // no membrane atom
	model := &Model{
		Name:  "gated",
		Alpha: a,
		Init:  init,
		Rules: []*Rule{{
			Name: "in", Kind: KindTransportIn, Context: TopLabel,
			ChildLabel: "cell", ChildWrap: NewMultiset(mv, 1),
			Move: NewMultiset(av, 1), Law: MassAction{K: 1},
		}},
	}
	e, err := NewEngine(model, 1)
	if err != nil {
		t.Fatal(err)
	}
	if e.Step() {
		t.Fatal("transport fired without required membrane atom")
	}
}

func TestDissolveReleasesEverything(t *testing.T) {
	a := NewAlphabet("x", "w", "T")
	xv, _ := a.Lookup("x")
	wv, _ := a.Lookup("w")
	tv, _ := a.Lookup("T")
	init := MustParseTerm("T (w | 3*x ( | x):inner):vesicle", a)
	model := &Model{
		Name:  "dissolve",
		Alpha: a,
		Init:  init,
		Rules: []*Rule{{
			Name: "burst", Kind: KindDissolve, Context: TopLabel,
			ChildLabel: "vesicle",
			Reactants:  NewMultiset(tv, 1), // trigger consumed
			Law:        MassAction{K: 1},
		}},
	}
	e, err := NewEngine(model, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !e.Step() {
		t.Fatal("dissolve did not fire")
	}
	state := e.State()
	if state.CountCompartments("vesicle") != 0 {
		t.Fatal("vesicle still present")
	}
	if state.CountCompartments("inner") != 1 {
		t.Fatal("inner compartment lost on dissolve")
	}
	if state.Atoms.Count(xv) != 3 || state.Atoms.Count(wv) != 1 {
		t.Fatalf("released atoms wrong: %s", state.Format(a))
	}
	if state.Atoms.Count(tv) != 0 {
		t.Fatal("trigger not consumed")
	}
}

func TestCompartmentCreation(t *testing.T) {
	a := NewAlphabet("A", "m")
	av, _ := a.Lookup("A")
	mv, _ := a.Lookup("m")
	model := &Model{
		Name:  "mitosis",
		Alpha: a,
		Init:  MustParseTerm("3*A", a),
		Rules: []*Rule{{
			Name: "bud", Kind: KindReaction, Context: TopLabel,
			Reactants: NewMultiset(av, 1),
			ProduceComps: []*Compartment{
				{Label: "cell", Wrap: *NewMultiset(mv, 1), Content: Term{Atoms: *NewMultiset(av, 1)}},
			},
			Law: MassAction{K: 1},
		}},
	}
	e, err := NewEngine(model, 9)
	if err != nil {
		t.Fatal(err)
	}
	fired, _ := e.AdvanceTo(1e9)
	if fired != 3 {
		t.Fatalf("fired = %d, want 3", fired)
	}
	if got := e.State().CountCompartments("cell"); got != 3 {
		t.Fatalf("cells = %d, want 3", got)
	}
}

func TestContextLabelScopesRules(t *testing.T) {
	// The decay rule applies only inside "cell"; the top-level A must
	// survive.
	a := NewAlphabet("A")
	av, _ := a.Lookup("A")
	model := &Model{
		Name:  "scoped",
		Alpha: a,
		Init:  MustParseTerm("A ( | A A):cell", a),
		Rules: []*Rule{{
			Name: "decay", Kind: KindReaction, Context: "cell",
			Reactants: NewMultiset(av, 1), Law: MassAction{K: 1},
		}},
	}
	e, err := NewEngine(model, 2)
	if err != nil {
		t.Fatal(err)
	}
	fired, _ := e.AdvanceTo(1e9)
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
	if e.State().Atoms.Count(av) != 1 {
		t.Fatal("top-level A was decayed by a cell-scoped rule")
	}
}

func TestEnumerateMatchesMultiCompartment(t *testing.T) {
	a := NewAlphabet("A")
	av, _ := a.Lookup("A")
	term := MustParseTerm("( | A):c ( | A):c ( | ):c", a)
	rules := []*Rule{{
		Name: "r", Kind: KindReaction, Context: "c",
		Reactants: NewMultiset(av, 1), Law: MassAction{K: 2},
	}}
	matches := EnumerateMatches(rules, term, nil)
	if len(matches) != 2 {
		t.Fatalf("matches = %d, want 2 (two cells hold A)", len(matches))
	}
	for _, m := range matches {
		if p := m.Rule.Law.Propensity(m); p != 2 {
			t.Fatalf("propensity = %g, want 2", p)
		}
	}
}

func TestHillLaw(t *testing.T) {
	a := NewAlphabet("R")
	r, _ := a.Lookup("R")
	law := Hill(8.0, 1.0, 4, r, 1)
	mkMatch := func(n int64) Match {
		return Match{Where: &Term{Atoms: *NewMultiset(r, n)}}
	}
	// No repressor: full rate.
	if got := law.Propensity(mkMatch(0)); math.Abs(got-8.0) > 1e-12 {
		t.Fatalf("Hill(0) = %g, want 8", got)
	}
	// Repressor at KI: half rate.
	if got := law.Propensity(mkMatch(1)); math.Abs(got-4.0) > 1e-12 {
		t.Fatalf("Hill(KI) = %g, want 4", got)
	}
	// Strong repression.
	if got := law.Propensity(mkMatch(10)); got > 0.01 {
		t.Fatalf("Hill(10) = %g, want near 0", got)
	}
}

func TestMichaelisMentenLaw(t *testing.T) {
	a := NewAlphabet("S")
	s, _ := a.Lookup("S")
	law := MichaelisMenten(2.0, 3.0, s, 1)
	m := Match{Where: &Term{Atoms: *NewMultiset(s, 3)}}
	if got := law.Propensity(m); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("MM(Km) = %g, want vm/2 = 1", got)
	}
	empty := Match{Where: &Term{}}
	if got := law.Propensity(empty); got != 0 {
		t.Fatalf("MM(0) = %g, want 0", got)
	}
}

func TestRuleValidate(t *testing.T) {
	valid := &Rule{Name: "ok", Kind: KindReaction, Law: MassAction{K: 1}}
	if err := valid.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []*Rule{
		{Name: "no-law", Kind: KindReaction},
		{Name: "reaction-with-child", Kind: KindReaction, ChildLabel: "c", Law: MassAction{K: 1}},
		{Name: "transport-no-child", Kind: KindTransportIn, Move: NewMultiset(Species(0), 1), Law: MassAction{K: 1}},
		{Name: "transport-no-move", Kind: KindTransportIn, ChildLabel: "c", Law: MassAction{K: 1}},
		{Name: "dissolve-no-child", Kind: KindDissolve, Law: MassAction{K: 1}},
		{Name: "bad-kind", Kind: RuleKind(99), Law: MassAction{K: 1}},
	}
	for _, r := range cases {
		if err := r.Validate(); err == nil {
			t.Errorf("rule %q: expected validation error", r.Name)
		}
	}
}

func TestModelValidate(t *testing.T) {
	m, _ := birthDeathModel(1, 1, 1)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &Model{Name: "empty"}
	if err := bad.Validate(); err == nil {
		t.Fatal("expected error for empty model")
	}
}

// Property: for any birth/death parameters, simulation time is
// non-decreasing and counts are never negative.
func TestEngineProperty_TimeMonotoneCountsNonNegative(t *testing.T) {
	f := func(seed int64, lamRaw, muRaw uint8) bool {
		lambda := float64(lamRaw%50) + 1
		mu := float64(muRaw%20)*0.1 + 0.1
		m, x := birthDeathModel(lambda, mu, 10)
		e, err := NewEngine(m, seed)
		if err != nil {
			return false
		}
		prev := 0.0
		for i := 0; i < 300; i++ {
			if !e.Step() {
				break
			}
			if e.Time() < prev {
				return false
			}
			prev = e.Time()
			if e.Count(x) < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEngineStepFlat(b *testing.B) {
	m, _ := birthDeathModel(100, 1, 100)
	e, err := NewEngine(m, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

func BenchmarkEngineStepNested(b *testing.B) {
	a := NewAlphabet("A", "m")
	av, _ := a.Lookup("A")
	init := MustParseTerm("10*A (m | 10*A (m | 10*A):n2):n1 (m | 10*A):n3", a)
	model := &Model{
		Name:  "nested-bench",
		Alpha: a,
		Init:  init,
		Rules: []*Rule{
			{Name: "churn", Kind: KindReaction, Reactants: NewMultiset(av, 1), Products: NewMultiset(av, 1), Law: MassAction{K: 1}},
		},
	}
	e, err := NewEngine(model, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}
