package cwc

import (
	"testing"
	"testing/quick"
)

func TestAlphabetIntern(t *testing.T) {
	a := NewAlphabet()
	x := a.Intern("x")
	y := a.Intern("y")
	if x == y {
		t.Fatal("distinct names interned to same species")
	}
	if got := a.Intern("x"); got != x {
		t.Fatal("re-interning changed index")
	}
	if a.Name(x) != "x" || a.Name(y) != "y" {
		t.Fatal("Name mismatch")
	}
	if _, ok := a.Lookup("z"); ok {
		t.Fatal("Lookup of unknown name succeeded")
	}
	if a.Len() != 2 {
		t.Fatalf("Len = %d, want 2", a.Len())
	}
}

func TestMultisetBasics(t *testing.T) {
	a := NewAlphabet("x", "y")
	x, _ := a.Lookup("x")
	y, _ := a.Lookup("y")
	m := NewMultiset(x, 3, y, 1)
	if m.Count(x) != 3 || m.Count(y) != 1 {
		t.Fatalf("counts wrong: %d %d", m.Count(x), m.Count(y))
	}
	if m.Size() != 4 || m.Distinct() != 2 {
		t.Fatalf("Size=%d Distinct=%d", m.Size(), m.Distinct())
	}
	m.Add(x, -3)
	if m.Count(x) != 0 || m.Distinct() != 1 {
		t.Fatal("Add(-3) did not zero out species")
	}
}

func TestMultisetAddNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative multiplicity")
		}
	}()
	a := NewAlphabet("x")
	x, _ := a.Lookup("x")
	m := NewMultiset(x, 1)
	m.Add(x, -2)
}

func TestMultisetContains(t *testing.T) {
	a := NewAlphabet("x", "y")
	x, _ := a.Lookup("x")
	y, _ := a.Lookup("y")
	m := NewMultiset(x, 2, y, 1)
	tests := []struct {
		need *Multiset
		want bool
	}{
		{nil, true},
		{NewMultiset(), true},
		{NewMultiset(x, 2), true},
		{NewMultiset(x, 3), false},
		{NewMultiset(x, 1, y, 1), true},
		{NewMultiset(y, 2), false},
	}
	for i, tt := range tests {
		if got := m.Contains(tt.need); got != tt.want {
			t.Errorf("case %d: Contains = %v, want %v", i, got, tt.want)
		}
	}
}

func TestMultisetCombinations(t *testing.T) {
	a := NewAlphabet("x", "y")
	x, _ := a.Lookup("x")
	y, _ := a.Lookup("y")
	m := NewMultiset(x, 5, y, 3)
	tests := []struct {
		need *Multiset
		want float64
	}{
		{nil, 1},
		{NewMultiset(x, 1), 5},
		{NewMultiset(x, 2), 10}, // C(5,2)
		{NewMultiset(x, 2, y, 1), 30},
		{NewMultiset(x, 6), 0},
		{NewMultiset(y, 3), 1},
	}
	for i, tt := range tests {
		if got := m.Combinations(tt.need); got != tt.want {
			t.Errorf("case %d: Combinations = %g, want %g", i, got, tt.want)
		}
	}
}

func TestMultisetCloneIsDeep(t *testing.T) {
	a := NewAlphabet("x")
	x, _ := a.Lookup("x")
	m := NewMultiset(x, 1)
	c := m.Clone()
	c.Add(x, 5)
	if m.Count(x) != 1 {
		t.Fatal("Clone shares storage")
	}
	if !m.Equal(m.Clone()) {
		t.Fatal("Clone not equal to original")
	}
}

func TestMultisetFormat(t *testing.T) {
	a := NewAlphabet("b", "a")
	b, _ := a.Lookup("b")
	aa, _ := a.Lookup("a")
	m := NewMultiset(b, 2, aa, 1)
	if got := m.Format(a); got != "2*b a" {
		t.Fatalf("Format = %q", got)
	}
	if got := (&Multiset{}).Format(a); got != "·" {
		t.Fatalf("empty Format = %q", got)
	}
}

// Property: AddAll(other, 1) then AddAll(other, -1) restores the original.
func TestMultisetProperty_AddAllInverse(t *testing.T) {
	f := func(counts [6]uint8, deltas [6]uint8) bool {
		m := &Multiset{}
		d := &Multiset{}
		for i := range counts {
			if counts[i] > 0 {
				m.Add(Species(i), int64(counts[i]))
			}
			if deltas[i] > 0 {
				d.Add(Species(i), int64(deltas[i]))
			}
		}
		before := m.Clone()
		m.AddAll(d, 1)
		m.AddAll(d, -1)
		return m.Equal(before)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Combinations is zero exactly when Contains is false (for
// non-empty requirements).
func TestMultisetProperty_CombinationsConsistentWithContains(t *testing.T) {
	f := func(counts [4]uint8, need [4]uint8) bool {
		m := &Multiset{}
		n := &Multiset{}
		for i := range counts {
			if counts[i] > 0 {
				m.Add(Species(i), int64(counts[i]))
			}
			if need[i] > 0 {
				n.Add(Species(i), int64(need[i]))
			}
		}
		c := m.Combinations(n)
		if m.Contains(n) {
			return c >= 1
		}
		return c == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
