package cwc

import (
	"fmt"
	"math"
	"math/rand"
)

// Model is a complete CWC system: an alphabet, a rule set and an initial
// term.
type Model struct {
	Name  string
	Alpha *Alphabet
	Rules []*Rule
	Init  *Term
}

// Validate checks the model's rules.
func (m *Model) Validate() error {
	if m.Alpha == nil {
		return fmt.Errorf("cwc: model %q: nil alphabet", m.Name)
	}
	if m.Init == nil {
		return fmt.Errorf("cwc: model %q: nil initial term", m.Name)
	}
	if len(m.Rules) == 0 {
		return fmt.Errorf("cwc: model %q: no rules", m.Name)
	}
	for _, r := range m.Rules {
		if err := r.Validate(); err != nil {
			return fmt.Errorf("cwc: model %q: %w", m.Name, err)
		}
	}
	return nil
}

// EnumerateMatches appends every (rule, context) match of the rule set in
// the term to dst, returning the extended slice. Matching visits
// compartments depth-first, parents first, so the enumeration order is
// deterministic for a given term layout.
func EnumerateMatches(rules []*Rule, state *Term, dst []Match) []Match {
	state.Walk(func(label string, content *Term, comp *Compartment, _ *Term) {
		for _, r := range rules {
			if r.Context != "" && r.Context != label {
				continue
			}
			switch r.Kind {
			case KindReaction:
				if content.Atoms.Contains(r.Reactants) {
					dst = append(dst, Match{Rule: r, Where: content, Comp: comp, ChildIdx: -1})
				}
			case KindTransportIn:
				if !content.Atoms.Contains(r.Reactants) || !content.Atoms.Contains(r.Move) {
					continue
				}
				for i, child := range content.Comps {
					if child.Label == r.ChildLabel && child.Wrap.Contains(r.ChildWrap) {
						dst = append(dst, Match{Rule: r, Where: content, Comp: comp, Child: child, ChildIdx: i})
					}
				}
			case KindTransportOut:
				if !content.Atoms.Contains(r.Reactants) {
					continue
				}
				for i, child := range content.Comps {
					if child.Label == r.ChildLabel && child.Wrap.Contains(r.ChildWrap) && child.Content.Atoms.Contains(r.Move) {
						dst = append(dst, Match{Rule: r, Where: content, Comp: comp, Child: child, ChildIdx: i})
					}
				}
			case KindDissolve:
				if !content.Atoms.Contains(r.Reactants) {
					continue
				}
				for i, child := range content.Comps {
					if child.Label == r.ChildLabel && child.Wrap.Contains(r.ChildWrap) {
						dst = append(dst, Match{Rule: r, Where: content, Comp: comp, Child: child, ChildIdx: i})
					}
				}
			}
		}
	})
	return dst
}

// Apply rewrites the term in place according to the match. The match must
// have been produced by EnumerateMatches on the current state.
func Apply(m Match) {
	r := m.Rule
	if r.Reactants != nil {
		m.Where.Atoms.AddAll(r.Reactants, -1)
	}
	if r.Products != nil {
		m.Where.Atoms.AddAll(r.Products, +1)
	}
	for _, tmpl := range r.ProduceComps {
		m.Where.AddComp(tmpl.Clone())
	}
	switch r.Kind {
	case KindTransportIn:
		m.Where.Atoms.AddAll(r.Move, -1)
		m.Child.Content.Atoms.AddAll(r.Move, +1)
	case KindTransportOut:
		m.Child.Content.Atoms.AddAll(r.Move, -1)
		m.Where.Atoms.AddAll(r.Move, +1)
	case KindDissolve:
		// Release wrap atoms, content atoms and nested compartments into
		// the enclosing content, then delete the child.
		m.Where.Atoms.AddAll(&m.Child.Wrap, +1)
		m.Where.Atoms.AddAll(&m.Child.Content.Atoms, +1)
		m.Where.Comps = append(m.Where.Comps[:m.ChildIdx], m.Where.Comps[m.ChildIdx+1:]...)
		m.Where.Comps = append(m.Where.Comps, m.Child.Content.Comps...)
	}
}

// Engine runs the Gillespie direct method over a CWC term: at each step it
// enumerates all rule matches in the current term (tree matching), draws
// the next firing time from the exponential distribution of the total
// propensity, selects a match proportionally to its propensity, and
// rewrites the term.
type Engine struct {
	model *Model
	state *Term
	now   float64
	rng   *rand.Rand

	// scratch buffers reused across steps
	matches []Match
	props   []float64

	steps uint64
}

// NewEngine returns an engine with its own deep copy of the initial term
// and a private RNG (so engines can run concurrently).
func NewEngine(m *Model, seed int64) (*Engine, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &Engine{
		model: m,
		state: m.Init.Clone(),
		rng:   rand.New(rand.NewSource(seed)),
	}, nil
}

// Time returns the current simulation time.
func (e *Engine) Time() float64 { return e.now }

// Steps returns the number of reactions fired so far.
func (e *Engine) Steps() uint64 { return e.steps }

// State returns the current term (not a copy; do not mutate).
func (e *Engine) State() *Term { return e.state }

// Count returns the total count of species s in the current term.
func (e *Engine) Count(s Species) int64 { return e.state.TotalAtoms(s) }

// NumSpecies returns the dimension of the observable vector (the alphabet
// size).
func (e *Engine) NumSpecies() int { return e.model.Alpha.Len() }

// Observe fills out with the total count of every species in index order.
// len(out) must be the alphabet length.
func (e *Engine) Observe(out []int64) {
	for i := range out {
		out[i] = e.state.TotalAtoms(Species(i))
	}
}

// Step fires one reaction. It returns false — leaving time unchanged —
// when no rule matches or the total propensity is zero (a dead state).
func (e *Engine) Step() bool {
	e.matches = EnumerateMatches(e.model.Rules, e.state, e.matches[:0])
	if len(e.matches) == 0 {
		return false
	}
	if cap(e.props) < len(e.matches) {
		e.props = make([]float64, len(e.matches))
	}
	e.props = e.props[:len(e.matches)]
	total := 0.0
	for i, m := range e.matches {
		p := m.Rule.Law.Propensity(m)
		if p < 0 || math.IsNaN(p) {
			panic(fmt.Sprintf("cwc: rule %q produced invalid propensity %g", m.Rule.Name, p))
		}
		e.props[i] = p
		total += p
	}
	if total <= 0 {
		return false
	}
	// Exponential waiting time.
	e.now += e.rng.ExpFloat64() / total
	// Select the match by linear scan over the cumulative distribution.
	target := e.rng.Float64() * total
	acc := 0.0
	idx := len(e.matches) - 1
	for i, p := range e.props {
		acc += p
		if target < acc {
			idx = i
			break
		}
	}
	Apply(e.matches[idx])
	e.steps++
	return true
}

// AdvanceTo runs Step until the simulation time reaches at least t or the
// system goes dead. It returns the number of reactions fired and whether
// the system is still live.
func (e *Engine) AdvanceTo(t float64) (fired uint64, live bool) {
	start := e.steps
	for e.now < t {
		if !e.Step() {
			return e.steps - start, false
		}
	}
	return e.steps - start, true
}
