package cwc

import (
	"strings"
	"testing"
)

// TestParseTermHappyPath pins the shapes the grammar accepts (previously
// only exercised indirectly through the model fixtures).
func TestParseTermHappyPath(t *testing.T) {
	alpha := NewAlphabet()
	cases := []struct {
		src       string
		atoms     int64 // total atom multiplicity at top level
		comps     int   // top-level compartments
		wantLabel string
	}{
		{"", 0, 0, ""},
		{"·", 0, 0, ""},
		{"a a b", 3, 0, ""},
		{"2*a b", 3, 0, ""},
		{"10*x", 10, 0, ""},
		{"(m | F F):cell", 0, 1, "cell"},
		{"( | a)", 0, 1, "comp"}, // empty wrap, default label
		{"M (k | (p | N):nuc):cell", 1, 1, "cell"},
		{"a'b _x1", 2, 0, ""},
	}
	for _, tc := range cases {
		term, err := ParseTerm(tc.src, alpha)
		if err != nil {
			t.Errorf("ParseTerm(%q): %v", tc.src, err)
			continue
		}
		atoms := term.Atoms.Size()
		if atoms != tc.atoms || len(term.Comps) != tc.comps {
			t.Errorf("ParseTerm(%q): %d atoms, %d comps (want %d, %d)", tc.src, atoms, len(term.Comps), tc.atoms, tc.comps)
		}
		if tc.comps > 0 && term.Comps[0].Label != tc.wantLabel {
			t.Errorf("ParseTerm(%q): label %q, want %q", tc.src, term.Comps[0].Label, tc.wantLabel)
		}
	}
}

// TestParseTermErrors walks every grammar error path: malformed
// compartments, bad multiplicities, stray tokens, wrap violations.
func TestParseTermErrors(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"unclosed compartment", "(m | a", "expected ')'"},
		{"missing wrap separator", "(m a)", "expected '|'"},
		{"compartment in wrap", "((x | y) | a)", "atoms only"},
		{"count without star", "3a", "expected '*' after count 3"},
		{"count without species", "3*", "expected identifier"},
		{"count overflow", "99999999999999999999*a", "bad count"},
		{"stray close paren", "a ) b", "unexpected ')'"},
		{"stray pipe", "a | b", "unexpected '|'"},
		{"stray star", "* a", "unexpected '*'"},
		{"label without ident", "(m | a):", "expected identifier"},
		{"label bad char", "(m | a):9", "expected identifier"},
	}
	alpha := NewAlphabet()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			term, err := ParseTerm(tc.src, alpha)
			if err == nil {
				t.Fatalf("ParseTerm(%q) succeeded: %v", tc.src, term)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("ParseTerm(%q) error %q, want it to mention %q", tc.src, err, tc.wantErr)
			}
			if !strings.Contains(err.Error(), "offset") {
				t.Fatalf("ParseTerm(%q) error %q does not locate the offset", tc.src, err)
			}
		})
	}
}

// TestMustParseTermPanics: the fixture helper panics on malformed input.
func TestMustParseTermPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParseTerm on malformed input did not panic")
		}
	}()
	MustParseTerm("(broken", NewAlphabet())
}
