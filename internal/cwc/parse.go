package cwc

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// ParseTerm parses the textual representation of a CWC term, interning
// species into the alphabet. The grammar is:
//
//	term        := item*
//	item        := atom | compartment
//	atom        := [count "*"] ident
//	compartment := "(" wrap "|" term ")" [":" ident]
//	wrap        := atom*          (wraps hold atoms only)
//
// Examples:
//
//	"a a b"                      three atoms (a twice)
//	"2*a b"                      the same with a multiplicity
//	"(m | F F):cell"             a cell compartment with membrane atom m
//	"M (k | (p | N):nuc):cell"   nested compartments
//
// "·" (or an empty string) denotes the empty term.
func ParseTerm(src string, alpha *Alphabet) (*Term, error) {
	p := &parser{src: src, alpha: alpha}
	t, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos < len(p.src) {
		return nil, p.errorf("unexpected %q", rune(p.src[p.pos]))
	}
	return t, nil
}

// MustParseTerm is ParseTerm panicking on error; for tests and fixtures.
func MustParseTerm(src string, alpha *Alphabet) *Term {
	t, err := ParseTerm(src, alpha)
	if err != nil {
		panic(err)
	}
	return t
}

type parser struct {
	src   string
	pos   int
	alpha *Alphabet
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("cwc: parse error at offset %d: %s", p.pos, fmt.Sprintf(format, args...))
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) && unicode.IsSpace(rune(p.src[p.pos])) {
		p.pos++
	}
}

func (p *parser) peek() byte {
	if p.pos >= len(p.src) {
		return 0
	}
	return p.src[p.pos]
}

// parseTerm parses items until ')' , '|' or end of input.
func (p *parser) parseTerm() (*Term, error) {
	t := NewTerm()
	for {
		p.skipSpace()
		switch c := p.peek(); {
		case c == 0, c == ')', c == '|':
			return t, nil
		case c == '(':
			comp, err := p.parseCompartment()
			if err != nil {
				return nil, err
			}
			t.AddComp(comp)
		case c == 0xC2 && strings.HasPrefix(p.src[p.pos:], "·"):
			p.pos += len("·") // explicit empty-term marker
		case isIdentStart(rune(c)) || isDigit(rune(c)):
			s, n, err := p.parseAtom()
			if err != nil {
				return nil, err
			}
			t.Atoms.Add(s, n)
		default:
			return nil, p.errorf("unexpected %q", rune(c))
		}
	}
}

func (p *parser) parseCompartment() (*Compartment, error) {
	if p.peek() != '(' {
		return nil, p.errorf("expected '('")
	}
	p.pos++
	wrapTerm, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	if len(wrapTerm.Comps) != 0 {
		return nil, p.errorf("compartment wrap must contain atoms only")
	}
	p.skipSpace()
	if p.peek() != '|' {
		return nil, p.errorf("expected '|' separating wrap and content")
	}
	p.pos++
	content, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.peek() != ')' {
		return nil, p.errorf("expected ')'")
	}
	p.pos++
	label := "comp"
	p.skipSpace()
	if p.peek() == ':' {
		p.pos++
		p.skipSpace()
		label, err = p.parseIdent()
		if err != nil {
			return nil, err
		}
	}
	return &Compartment{Label: label, Wrap: wrapTerm.Atoms, Content: *content}, nil
}

// parseAtom parses "[count*]ident" and returns the species and count.
func (p *parser) parseAtom() (Species, int64, error) {
	count := int64(1)
	if isDigit(rune(p.peek())) {
		start := p.pos
		for p.pos < len(p.src) && isDigit(rune(p.src[p.pos])) {
			p.pos++
		}
		n, err := strconv.ParseInt(p.src[start:p.pos], 10, 64)
		if err != nil {
			return 0, 0, p.errorf("bad count: %v", err)
		}
		if p.peek() != '*' {
			return 0, 0, p.errorf("expected '*' after count %d", n)
		}
		p.pos++
		count = n
	}
	name, err := p.parseIdent()
	if err != nil {
		return 0, 0, err
	}
	return p.alpha.Intern(name), count, nil
}

func (p *parser) parseIdent() (string, error) {
	p.skipSpace()
	start := p.pos
	if p.pos >= len(p.src) || !isIdentStart(rune(p.src[p.pos])) {
		return "", p.errorf("expected identifier")
	}
	p.pos++
	for p.pos < len(p.src) && isIdentRune(rune(p.src[p.pos])) {
		p.pos++
	}
	return p.src[start:p.pos], nil
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentRune(r rune) bool {
	return r == '_' || r == '\'' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func isDigit(r rune) bool { return r >= '0' && r <= '9' }
