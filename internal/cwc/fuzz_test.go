package cwc

import "testing"

// FuzzParse throws arbitrary strings at the CWC term grammar. Invalid
// input must produce an error, never a panic, and valid input must
// round-trip through the canonical formatter: parse → Format → reparse
// yields the identical canonical string.
func FuzzParse(f *testing.F) {
	// The documented grammar shapes, plus edge cases around multiplicity,
	// nesting and the empty-term glyph.
	for _, seed := range []string{
		"a a b",
		"2*a b",
		"(m | F F):cell",
		"M (k | (p | N):nuc):cell",
		"·",
		"",
		"(| a)",
		"3*Gene 2*mRNA Protein",
		"((a | b):in | c):out",
		"0*a",
		"(m n | 4*F (| x)):cell y",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		alpha := NewAlphabet()
		term, err := ParseTerm(src, alpha)
		if err != nil {
			return
		}
		canon := term.Format(alpha)
		again, err := ParseTerm(canon, alpha)
		if err != nil {
			t.Fatalf("canonical form %q (from %q) does not reparse: %v", canon, src, err)
		}
		if got := again.Format(alpha); got != canon {
			t.Fatalf("round-trip not canonical:\n  input  %q\n  first  %q\n  second %q", src, canon, got)
		}
	})
}
