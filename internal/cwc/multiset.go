// Package cwc implements the Calculus of Wrapped Compartments (CWC), a
// term-rewriting formalism for biological systems: terms are multisets of
// atomic elements and nested compartments (trees), and the evolution of a
// system is driven by stochastic rewrite rules matched against the term
// (Gillespie semantics over rule matches).
//
// The package provides the term algebra (Multiset, Term, Compartment), a
// text parser for terms, rewrite rules with mass-action and custom rate
// laws, the tree-matching engine that enumerates rule matches with their
// propensities, and a stochastic simulation engine over terms.
package cwc

import (
	"fmt"
	"sort"
	"strings"
)

// Species is an interned atomic-element name.
type Species int

// Alphabet interns species names to dense indices.
//
// The zero value is ready to use.
type Alphabet struct {
	names []string
	index map[string]Species
}

// NewAlphabet returns an alphabet pre-populated with the given names.
func NewAlphabet(names ...string) *Alphabet {
	a := &Alphabet{}
	for _, n := range names {
		a.Intern(n)
	}
	return a
}

// Intern returns the index for name, adding it if unseen.
func (a *Alphabet) Intern(name string) Species {
	if a.index == nil {
		a.index = make(map[string]Species)
	}
	if s, ok := a.index[name]; ok {
		return s
	}
	s := Species(len(a.names))
	a.names = append(a.names, name)
	a.index[name] = s
	return s
}

// Lookup returns the index for name without interning.
func (a *Alphabet) Lookup(name string) (Species, bool) {
	s, ok := a.index[name]
	return s, ok
}

// Name returns the name of species s.
func (a *Alphabet) Name(s Species) string {
	if int(s) < 0 || int(s) >= len(a.names) {
		return fmt.Sprintf("species#%d", int(s))
	}
	return a.names[s]
}

// Len returns the number of interned species.
func (a *Alphabet) Len() int { return len(a.names) }

// Names returns the interned names in index order.
func (a *Alphabet) Names() []string { return append([]string(nil), a.names...) }

// Multiset is a multiset of species with non-negative multiplicities.
//
// The zero value is the empty multiset, ready to use.
type Multiset struct {
	counts map[Species]int64
}

// NewMultiset builds a multiset from (species, count) pairs given as an
// alternating list, e.g. NewMultiset(a, 2, b, 1).
func NewMultiset(pairs ...any) *Multiset {
	if len(pairs)%2 != 0 {
		panic("cwc: NewMultiset needs species/count pairs")
	}
	m := &Multiset{}
	for i := 0; i < len(pairs); i += 2 {
		s, ok := pairs[i].(Species)
		if !ok {
			panic(fmt.Sprintf("cwc: NewMultiset pair %d: not a Species", i))
		}
		var n int64
		switch v := pairs[i+1].(type) {
		case int:
			n = int64(v)
		case int64:
			n = v
		default:
			panic(fmt.Sprintf("cwc: NewMultiset pair %d: count must be int or int64", i))
		}
		m.Add(s, n)
	}
	return m
}

func (m *Multiset) ensure() {
	if m.counts == nil {
		m.counts = make(map[Species]int64)
	}
}

// Count returns the multiplicity of s.
func (m *Multiset) Count(s Species) int64 {
	if m == nil || m.counts == nil {
		return 0
	}
	return m.counts[s]
}

// Add increases the multiplicity of s by n (n may be negative; the
// multiplicity must stay non-negative, otherwise Add panics — a rule
// application that would drive a count negative is a matching bug).
func (m *Multiset) Add(s Species, n int64) {
	m.ensure()
	c := m.counts[s] + n
	switch {
	case c < 0:
		panic(fmt.Sprintf("cwc: multiplicity of species %d would become negative (%d)", int(s), c))
	case c == 0:
		delete(m.counts, s)
	default:
		m.counts[s] = c
	}
}

// AddAll adds every element of other (scaled by k) into m.
func (m *Multiset) AddAll(other *Multiset, k int64) {
	if other == nil {
		return
	}
	for s, n := range other.counts {
		m.Add(s, n*k)
	}
}

// Contains reports whether m contains other (with multiplicities).
func (m *Multiset) Contains(other *Multiset) bool {
	if other == nil {
		return true
	}
	for s, n := range other.counts {
		if m.Count(s) < n {
			return false
		}
	}
	return true
}

// Size returns the total number of elements (sum of multiplicities).
func (m *Multiset) Size() int64 {
	if m == nil {
		return 0
	}
	var total int64
	for _, n := range m.counts {
		total += n
	}
	return total
}

// Distinct returns the number of distinct species present.
func (m *Multiset) Distinct() int {
	if m == nil {
		return 0
	}
	return len(m.counts)
}

// Clone returns a deep copy.
func (m *Multiset) Clone() *Multiset {
	c := &Multiset{}
	if m == nil || m.counts == nil {
		return c
	}
	c.counts = make(map[Species]int64, len(m.counts))
	for s, n := range m.counts {
		c.counts[s] = n
	}
	return c
}

// Equal reports multiset equality.
func (m *Multiset) Equal(other *Multiset) bool {
	if m.Distinct() != other.Distinct() {
		return false
	}
	if m == nil || m.counts == nil {
		return other.Size() == 0
	}
	for s, n := range m.counts {
		if other.Count(s) != n {
			return false
		}
	}
	return true
}

// ForEach visits species in ascending index order (deterministic).
func (m *Multiset) ForEach(f func(s Species, n int64)) {
	if m == nil || m.counts == nil {
		return
	}
	keys := make([]Species, 0, len(m.counts))
	for s := range m.counts {
		keys = append(keys, s)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, s := range keys {
		f(s, m.counts[s])
	}
}

// Format renders the multiset using names from the alphabet, e.g. "2*a b".
func (m *Multiset) Format(a *Alphabet) string {
	if m == nil || len(m.counts) == 0 {
		return "·"
	}
	var parts []string
	m.ForEach(func(s Species, n int64) {
		if n == 1 {
			parts = append(parts, a.Name(s))
		} else {
			parts = append(parts, fmt.Sprintf("%d*%s", n, a.Name(s)))
		}
	})
	return strings.Join(parts, " ")
}

// Combinations returns the number of distinct ways of choosing the
// sub-multiset need out of m: the product over species of C(count, need).
// This is the combinatorial factor of mass-action propensities.
// The result saturates at math.MaxFloat64 ranges well beyond any realistic
// propensity, so it is returned as float64.
func (m *Multiset) Combinations(need *Multiset) float64 {
	if need == nil {
		return 1
	}
	result := 1.0
	for s, k := range need.counts {
		have := m.Count(s)
		if have < k {
			return 0
		}
		// C(have, k) computed multiplicatively.
		c := 1.0
		for j := int64(0); j < k; j++ {
			c *= float64(have-j) / float64(j+1)
		}
		result *= c
	}
	return result
}
