// Package gpu provides a software model of a CUDA-like GPGPU device
// executing kernels under the Single-Instruction-Multiple-Thread (SIMT)
// model.
//
// The paper offloads CWC simulation quanta to an NVidia K40 through
// FastFlow's mapCUDA node; this environment has no GPU, so the device is
// simulated (see DESIGN.md, substitutions). The simulation is functional
// *and* temporal:
//
//   - functionally, every work item runs its real Go kernel closure, so the
//     offloaded computation produces exactly the results the CPU path
//     produces;
//   - temporally, each work item reports an abstract cost, and the device
//     computes the kernel's simulated execution time under SIMT semantics:
//     the 32 lanes of a warp advance in lockstep, so a warp costs as much as
//     its slowest lane (thread divergence), warps are list-scheduled on the
//     available warp slots, and each launch pays a fixed overhead plus a
//     global barrier at kernel end.
//
// Thread divergence and kernel-granularity effects — the two phenomena
// Table I of the paper demonstrates — therefore *emerge* from the model
// rather than being hard-coded.
package gpu

import (
	"container/heap"
	"context"
	"errors"
	"fmt"

	"cwcflow/internal/ff/parallel"
)

// Device models a CUDA-like accelerator.
//
// The zero value is not usable; construct with NewDevice or use a preset
// such as TeslaK40.
type Device struct {
	cfg DeviceConfig
}

// DeviceConfig describes the modelled hardware.
type DeviceConfig struct {
	// Name labels the device in reports.
	Name string
	// SMs is the number of streaming multiprocessors.
	SMs int
	// CoresPerSM is the number of scalar cores per SM.
	CoresPerSM int
	// WarpSize is the number of lanes advancing in lockstep (32 on CUDA
	// hardware).
	WarpSize int
	// LaunchOverhead is the fixed simulated cost of one kernel launch,
	// in seconds (host-device round trip, kernel setup).
	LaunchOverhead float64
	// SecondsPerCost converts one unit of kernel-reported cost into
	// simulated seconds on one lane. It calibrates the model against a
	// concrete device's single-thread throughput.
	SecondsPerCost float64
	// HostParallelism bounds the goroutines used to actually execute
	// kernel closures; 0 means 1 (adequate for the timing model — the
	// functional result never depends on it).
	HostParallelism int
}

// TeslaK40 returns a configuration approximating the NVidia Tesla K40 used
// in the paper: 15 SMX x 192 cores = 2880 scalar cores.
// GPU scalar cores are individually much slower than a Xeon core;
// SecondsPerCost reflects that (roughly 10x slower per lane), which is why
// a GPU only wins through massive parallelism.
func TeslaK40() DeviceConfig {
	return DeviceConfig{
		Name:            "tesla-k40",
		SMs:             15,
		CoresPerSM:      192,
		WarpSize:        32,
		LaunchOverhead:  20e-6,
		SecondsPerCost:  10e-9,
		HostParallelism: 1,
	}
}

// NewDevice validates the configuration and returns a Device.
func NewDevice(cfg DeviceConfig) (*Device, error) {
	if cfg.SMs < 1 || cfg.CoresPerSM < 1 {
		return nil, fmt.Errorf("gpu: need at least 1 SM and 1 core per SM, got %d x %d", cfg.SMs, cfg.CoresPerSM)
	}
	if cfg.WarpSize < 1 {
		return nil, fmt.Errorf("gpu: warp size must be >= 1, got %d", cfg.WarpSize)
	}
	if cfg.CoresPerSM%cfg.WarpSize != 0 {
		return nil, fmt.Errorf("gpu: cores per SM (%d) must be a multiple of warp size (%d)", cfg.CoresPerSM, cfg.WarpSize)
	}
	if cfg.SecondsPerCost <= 0 {
		return nil, errors.New("gpu: SecondsPerCost must be positive")
	}
	if cfg.LaunchOverhead < 0 {
		return nil, errors.New("gpu: LaunchOverhead must be non-negative")
	}
	if cfg.HostParallelism < 1 {
		cfg.HostParallelism = 1
	}
	return &Device{cfg: cfg}, nil
}

// Config returns the device configuration.
func (d *Device) Config() DeviceConfig { return d.cfg }

// WarpSlots is the number of warps the device can execute concurrently.
func (d *Device) WarpSlots() int { return d.cfg.SMs * d.cfg.CoresPerSM / d.cfg.WarpSize }

// Cores is the total number of scalar cores.
func (d *Device) Cores() int { return d.cfg.SMs * d.cfg.CoresPerSM }

// Kernel is one work item of a launch: it receives its global index and
// returns the abstract cost of the work it performed (e.g. the number of
// SSA steps executed). The closure runs real host code; cost feeds only the
// timing model.
type Kernel func(idx int) (cost float64, err error)

// LaunchStats reports the simulated execution of one kernel launch.
type LaunchStats struct {
	// Items is the number of work items (CUDA threads) launched.
	Items int
	// Warps is ceil(Items/WarpSize).
	Warps int
	// SimTime is the simulated wall-clock duration of the launch in
	// seconds, including LaunchOverhead.
	SimTime float64
	// BusyCost is the total cost actually executed by all lanes.
	BusyCost float64
	// LockstepCost is the cost charged under SIMT lockstep semantics
	// (warp width x max lane cost, summed over warps). The gap between
	// LockstepCost and BusyCost is pure divergence waste.
	LockstepCost float64
}

// Utilization is the fraction of charged lane time doing useful work:
// BusyCost / LockstepCost (1.0 = no divergence). Zero items yield 1.
func (s LaunchStats) Utilization() float64 {
	if s.LockstepCost == 0 {
		return 1
	}
	return s.BusyCost / s.LockstepCost
}

// Launch executes n work items as one kernel. It blocks until every item
// has completed (the CUDA kernel-wide barrier: results of a launch are not
// observable before the whole kernel finishes) and returns the simulated
// timing under the SIMT model.
func (d *Device) Launch(ctx context.Context, n int, k Kernel) (LaunchStats, error) {
	stats := LaunchStats{Items: n}
	if n <= 0 {
		stats.SimTime = d.cfg.LaunchOverhead
		return stats, nil
	}
	costs := make([]float64, n)
	err := parallel.For(ctx, d.cfg.HostParallelism, n, 0, func(i int) error {
		c, err := k(i)
		if err != nil {
			return fmt.Errorf("gpu: kernel item %d: %w", i, err)
		}
		if c < 0 {
			return fmt.Errorf("gpu: kernel item %d reported negative cost %g", i, c)
		}
		costs[i] = c
		return nil
	})
	if err != nil {
		return LaunchStats{}, err
	}

	ws := d.cfg.WarpSize
	nWarps := (n + ws - 1) / ws
	warpCosts := make([]float64, nWarps)
	for w := 0; w < nWarps; w++ {
		lo := w * ws
		hi := lo + ws
		if hi > n {
			hi = n
		}
		maxLane := 0.0
		for i := lo; i < hi; i++ {
			stats.BusyCost += costs[i]
			if costs[i] > maxLane {
				maxLane = costs[i]
			}
		}
		warpCosts[w] = maxLane
		// Lockstep charges the full warp width for the slowest lane, even
		// for the ragged last warp: inactive lanes still occupy the SIMT
		// unit.
		stats.LockstepCost += maxLane * float64(ws)
	}
	stats.Warps = nWarps
	stats.SimTime = d.cfg.LaunchOverhead + d.makespan(warpCosts)*d.cfg.SecondsPerCost
	return stats, nil
}

// makespan list-schedules the warps onto the device's warp slots (FCFS onto
// the earliest-free slot) and returns the finishing time in cost units.
func (d *Device) makespan(warpCosts []float64) float64 {
	slots := d.WarpSlots()
	if slots >= len(warpCosts) {
		maxCost := 0.0
		for _, c := range warpCosts {
			if c > maxCost {
				maxCost = c
			}
		}
		return maxCost
	}
	h := make(slotHeap, slots)
	heap.Init(&h)
	for _, c := range warpCosts {
		t := h[0]
		h[0] = t + c
		heap.Fix(&h, 0)
	}
	maxT := 0.0
	for _, t := range h {
		if t > maxT {
			maxT = t
		}
	}
	return maxT
}

type slotHeap []float64

func (h slotHeap) Len() int           { return len(h) }
func (h slotHeap) Less(i, j int) bool { return h[i] < h[j] }
func (h slotHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *slotHeap) Push(x any)        { *h = append(*h, x.(float64)) }
func (h *slotHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }
